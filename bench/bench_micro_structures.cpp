// Google-benchmark microbenchmarks of the simulator's hot structures:
// L1 probes, TLB lookups, Way Table lookups, WDU searches, arbitration and
// the end-to-end cycle loop. These measure *simulator* throughput (host
// nanoseconds), not modelled energy — useful when extending the model.
#include <benchmark/benchmark.h>

#include "common/address.h"
#include "common/rng.h"
#include "core/arbitration_unit.h"
#include "mem/l1_cache.h"
#include "sim/experiment.h"
#include "sim/presets.h"
#include "tlb/tlb.h"
#include "trace/synth_generator.h"
#include "trace/workloads.h"
#include "waydet/way_table.h"
#include "waydet/wdu.h"

namespace {

using namespace malec;

void BM_L1Probe(benchmark::State& state) {
  mem::L1Cache::Params p;
  mem::L1Cache l1(p);
  Rng rng(7);
  for (int i = 0; i < 512; ++i)
    l1.fill(0x1000'0000ull + rng.below(1u << 20) * 64);
  Addr a = 0x1000'0000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l1.probe(a));
    a += 64;
    a &= 0x1FFF'FFFF;
  }
}
BENCHMARK(BM_L1Probe);

void BM_TlbLookup(benchmark::State& state) {
  tlb::Tlb::Params p;
  p.entries = static_cast<std::uint32_t>(state.range(0));
  tlb::Tlb t(p);
  for (std::uint32_t i = 0; i < p.entries; ++i) t.insert(i, i + 100);
  PageId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.lookupV(v));
    v = (v + 1) % p.entries;
  }
}
BENCHMARK(BM_TlbLookup)->Arg(16)->Arg(64);

void BM_WayTableLookup(benchmark::State& state) {
  waydet::WayTable wt(64, 64, 4, 4);
  for (std::uint32_t s = 0; s < 64; ++s)
    for (std::uint32_t l = 0; l < 64; ++l) wt.record(s, l, s, (l + 1) % 4);
  std::uint32_t s = 0, l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wt.lookup(s, l, s));
    l = (l + 1) & 63;
    s = (s + (l == 0)) & 63;
  }
}
BENCHMARK(BM_WayTableLookup);

void BM_WduSearch(benchmark::State& state) {
  waydet::Wdu wdu(static_cast<std::uint32_t>(state.range(0)));
  for (std::uint32_t i = 0; i < wdu.entries(); ++i)
    wdu.record(0x40000 + i, static_cast<WayIdx>(i % 4));
  LineAddr line = 0x40000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wdu.lookup(line));
    line = 0x40000 + ((line + 1) % (2 * wdu.entries()));
  }
}
BENCHMARK(BM_WduSearch)->Arg(8)->Arg(16)->Arg(32);

void BM_Arbitrate(benchmark::State& state) {
  core::ArbitrationUnit arb(core::ArbitrationUnit::Params{});
  std::vector<core::ArbCandidate> cands;
  Rng rng(3);
  for (std::size_t i = 0; i < 6; ++i) {
    core::ArbCandidate c;
    c.ib_index = i;
    c.vaddr = 0x1000'0000ull + rng.below(4096);
    c.size = 8;
    cands.push_back(c);
  }
  for (auto _ : state) benchmark::DoNotOptimize(arb.arbitrate(cands));
}
BENCHMARK(BM_Arbitrate);

void BM_TraceGeneration(benchmark::State& state) {
  const auto wl = trace::workloadByName("gcc");
  trace::SyntheticTraceGenerator gen(wl, AddressLayout{}, 0, 1);
  trace::InstrRecord r;
  for (auto _ : state) {
    gen.next(r);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_EndToEndSim(benchmark::State& state) {
  // Whole-pipeline throughput: instructions simulated per host second.
  for (auto _ : state) {
    sim::RunConfig rc;
    rc.workload = trace::workloadByName("eon");
    rc.interface_cfg = sim::presetMalec();
    rc.system = sim::defaultSystem();
    rc.instructions = 20'000;
    const auto out = sim::runOne(rc);
    benchmark::DoNotOptimize(out.cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          20'000);
}
BENCHMARK(BM_EndToEndSim)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
