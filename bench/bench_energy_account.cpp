// Thin compat wrapper: the energy-accounting throughput microbenchmark is
// the "energy_account" experiment spec (specs.cpp); prefer
// `malec_bench --suite energy_account --instr <counts>`.
//
//   ./bench_energy_account [iterations]
#include <cstdlib>

#include "sim/suite.h"

int main(int argc, char** argv) {
  // The legacy binary always ran 20M counts (or the argv override) and
  // never read MALEC_INSTR — keep that: a CI-shrunk budget would turn the
  // timing windows into noise. An explicit 0 still means the minimal run.
  std::uint64_t iters = 20'000'000;
  if (argc > 1) {
    iters = malec::sim::parseU64Strict(argv[1], "iteration count");
    if (iters == 0) iters = 1;  // the spec rounds up to one event pass
  }
  return malec::sim::benchCompatMain("energy_account", iters);
}
