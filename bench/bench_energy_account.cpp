// Micro-benchmark for the energy-accounting hot path: events/sec through
// the legacy string-keyed count() (per-call name resolution through the
// sorted index) versus the interned EventId count() (bounds-checked array
// increment). The event mix mirrors the simulator's real per-access pattern
// (L1 control + tag + data, translation searches, way-table traffic).
//
//   ./bench_energy_account [iterations]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "energy/energy_account.h"

namespace {

using malec::energy::EnergyAccount;

const char* const kEventNames[] = {
    "l1.ctrl",      "l1.tag_read",   "l1.data_read", "l1.data_write",
    "l1.tag_write", "l1.line_write", "l1.line_read", "utlb.search",
    "tlb.search",   "utlb.psearch",  "tlb.psearch",  "uwt.read",
    "uwt.write",    "wt.read",       "wt.write",     "wdu.search",
};
constexpr std::size_t kNumEvents = std::size(kEventNames);

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000'000;
  // Round down to a whole number of passes over the event mix so the
  // per-event sanity check below holds for any requested count.
  iters -= iters % kNumEvents;
  if (iters == 0) iters = kNumEvents;

  EnergyAccount ea;
  std::vector<EnergyAccount::EventId> ids;
  for (const char* name : kEventNames)
    ids.push_back(ea.defineEvent(name, 1.0));

  // String path: what every count() call site paid before interning.
  const auto t_str = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i)
    ea.count(kEventNames[i % kNumEvents]);
  const double s_str = secondsSince(t_str);

  // EventId path: resolve once (done above), then array increments.
  const auto t_id = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i)
    ea.count(ids[i % kNumEvents]);
  const double s_id = secondsSince(t_id);

  // Keep the optimiser honest and sanity-check both paths counted equally.
  const std::uint64_t per_event = 2 * iters / kNumEvents;
  for (const char* name : kEventNames) {
    if (ea.eventCount(name) != per_event) {
      std::fprintf(stderr, "count mismatch on %s: %llu != %llu\n", name,
                   static_cast<unsigned long long>(ea.eventCount(name)),
                   static_cast<unsigned long long>(per_event));
      return 1;
    }
  }

  const double mps_str = static_cast<double>(iters) / s_str / 1e6;
  const double mps_id = static_cast<double>(iters) / s_id / 1e6;
  std::printf("events: %zu types, %llu counts per path\n", kNumEvents,
              static_cast<unsigned long long>(iters));
  std::printf("string API : %8.1f Mevents/s  (%.3f s)\n", mps_str, s_str);
  std::printf("EventId API: %8.1f Mevents/s  (%.3f s)\n", mps_id, s_id);
  std::printf("speedup    : %8.1fx\n", mps_id / mps_str);
  return 0;
}
