// Thin compat wrapper: the Sec. VI-D sensitivity analysis is six
// experiment specs (specs.cpp), run here in the legacy order; prefer
// `malec_bench --suite sensitivity_latency` etc. to run them individually.
#include "sim/suite.h"

int main() {
  for (const char* name :
       {"sensitivity_latency", "sensitivity_carry", "sensitivity_buses",
        "sensitivity_waydet", "sensitivity_adaptive",
        "sensitivity_scaling"}) {
    const int rc = malec::sim::benchCompatMain(name);
    if (rc != 0) return rc;
  }
  return 0;
}
