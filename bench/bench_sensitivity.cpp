// Sec. VI-D sensitivity analysis:
//   * L1 latency (1/2/3 cycles) for both MALEC and Base2ld1st;
//   * Input Buffer carry capacity (how many loads may be held);
//   * result buses available per cycle;
//   * streaming workloads (mcf-like) where Page-Based Way Determination
//     shows negative energy benefit.
//
// Each table's full (benchmark x configuration) cross product is dispatched
// as ONE parallel batch (runManyParallel / MALEC_JOBS), so the whole worker
// pool stays busy instead of being capped at one table row's config count.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/reporting.h"
#include "trace/workloads.h"

namespace {

using namespace malec;

/// Run every (benchmark, config) pair as one parallel batch; result is
/// indexed [benchmark][config] in input order. One stderr dot per table
/// keeps a minimal progress signal.
std::vector<std::vector<sim::RunOutput>> sweep(
    const std::vector<std::string>& benches,
    const std::vector<core::InterfaceConfig>& cfgs, std::uint64_t n) {
  std::vector<trace::WorkloadProfile> wls;
  wls.reserve(benches.size());
  for (const auto& bench : benches) wls.push_back(trace::workloadByName(bench));
  auto all = sim::runMatrixParallel(wls, cfgs, n, 1);
  std::fprintf(stderr, ".");
  return all;
}

}  // namespace

int main() {
  const std::uint64_t n = sim::instructionBudget(80'000);
  const std::vector<std::string> picks = {"gcc", "gap", "mcf", "djpeg",
                                          "swim"};

  // --- L1 latency sweep ----------------------------------------------------
  {
    std::vector<core::InterfaceConfig> cfgs;
    std::vector<std::string> cols;
    for (Cycle lat : {1u, 2u, 3u}) {
      core::InterfaceConfig m = sim::presetMalec();
      m.l1_latency = lat;
      m.name = "MALEC_" + std::to_string(lat) + "cyc";
      cfgs.push_back(m);
      cols.push_back(m.name);
      core::InterfaceConfig b = sim::presetBase2ld1st();
      b.l1_latency = lat;
      b.name = "Base2_" + std::to_string(lat) + "cyc";
      cfgs.push_back(b);
      cols.push_back(b.name);
    }
    sim::Table t("Execution time [%] vs L1 latency (MALEC_2cyc = 100)",
                 cols);
    const auto all = sweep(picks, cfgs, n);
    for (std::size_t b = 0; b < picks.size(); ++b) {
      const auto& outs = all[b];
      const double ref = static_cast<double>(outs[2].cycles);  // MALEC 2cyc
      std::vector<double> row;
      for (const auto& o : outs)
        row.push_back(100.0 * static_cast<double>(o.cycles) / ref);
      t.addRow(picks[b], row);
    }
    t.addOverallGeomeanRow("geo.mean");
    std::printf("%s\n", t.render(1).c_str());
  }

  // --- Input Buffer carry slots ---------------------------------------------
  {
    std::vector<core::InterfaceConfig> cfgs;
    std::vector<std::string> cols;
    for (std::uint32_t carry : {0u, 1u, 2u, 4u, 8u}) {
      core::InterfaceConfig m = sim::presetMalec();
      m.ib_carry_slots = carry;
      m.name = "carry" + std::to_string(carry);
      cfgs.push_back(m);
      cols.push_back(m.name);
    }
    sim::Table t("Execution time [%] vs Input Buffer carry slots "
                 "(carry2 = 100)", cols);
    const auto all = sweep(picks, cfgs, n);
    for (std::size_t b = 0; b < picks.size(); ++b) {
      const auto& outs = all[b];
      const double ref = static_cast<double>(outs[2].cycles);
      std::vector<double> row;
      for (const auto& o : outs)
        row.push_back(100.0 * static_cast<double>(o.cycles) / ref);
      t.addRow(picks[b], row);
    }
    t.addOverallGeomeanRow("geo.mean");
    std::printf("%s\n", t.render(1).c_str());
  }

  // --- result buses ---------------------------------------------------------
  {
    std::vector<core::InterfaceConfig> cfgs;
    std::vector<std::string> cols;
    for (std::uint32_t buses : {1u, 2u, 3u, 4u}) {
      core::InterfaceConfig m = sim::presetMalec();
      m.result_buses = buses;
      m.name = "bus" + std::to_string(buses);
      cfgs.push_back(m);
      cols.push_back(m.name);
    }
    sim::Table t("Execution time [%] vs result buses (bus3 = 100)", cols);
    const auto all = sweep(picks, cfgs, n);
    for (std::size_t b = 0; b < picks.size(); ++b) {
      const auto& outs = all[b];
      const double ref = static_cast<double>(outs[2].cycles);
      std::vector<double> row;
      for (const auto& o : outs)
        row.push_back(100.0 * static_cast<double>(o.cycles) / ref);
      t.addRow(picks[b], row);
    }
    t.addOverallGeomeanRow("geo.mean");
    std::printf("%s\n", t.render(1).c_str());
  }

  // --- streaming workloads: way determination energy benefit ---------------
  {
    sim::Table t("Way-table energy benefit [%] (MALEC_noWayDet / MALEC)",
                 {"dyn ratio %", "coverage %"});
    const auto cfgs = std::vector<core::InterfaceConfig>{
        sim::presetMalec(), sim::presetMalecNoWaydet()};
    const auto all = sweep(picks, cfgs, n);
    for (std::size_t b = 0; b < picks.size(); ++b) {
      const auto& outs = all[b];
      t.addRow(picks[b], {100.0 * outs[1].dynamic_pj / outs[0].dynamic_pj,
                          100.0 * outs[0].way_coverage});
    }
    std::printf("%s", t.render(1).c_str());
    std::printf("(ratios < 100 mean way determination loses energy — "
                "expected for streaming mcf/swim, paper VI-D)\n");
  }
  // --- adaptive run-time bypass (extension) ---------------------------------
  {
    sim::Table t("Adaptive bypass: total energy [%] (plain MALEC = 100)",
                 {"adaptive E%", "plain cover%", "adaptive cover%"});
    const auto cfgs = std::vector<core::InterfaceConfig>{
        sim::presetMalec(), sim::presetMalecAdaptive()};
    const auto all = sweep(picks, cfgs, n);
    for (std::size_t b = 0; b < picks.size(); ++b) {
      const auto& outs = all[b];
      t.addRow(picks[b], {100.0 * outs[1].total_pj / outs[0].total_pj,
                          100.0 * outs[0].way_coverage + 1e-6,
                          100.0 * outs[1].way_coverage + 1e-6});
    }
    std::printf("\n%s", t.render(1).c_str());
    std::printf("(the coverage guard keeps the bypass off whenever way\n"
                " determination still pays for itself — on these benchmarks\n"
                " it never engages, i.e. the scheme is strictly no-harm; it\n"
                " triggers only on coverage-free streams, see the\n"
                " AdaptiveBypass tests)\n");
  }

  // --- scaled Fig. 2a configuration (4 ld + 2 st) ---------------------------
  {
    sim::Table t("Scaling: execution time [%] (MALEC 3-AGU = 100)",
                 {"MALEC", "MALEC_4ld2st", "Base2ld1st"});
    const auto cfgs = std::vector<core::InterfaceConfig>{
        sim::presetMalec(), sim::presetMalec4ld2st(),
        sim::presetBase2ld1st()};
    const auto all = sweep(picks, cfgs, n);
    for (std::size_t b = 0; b < picks.size(); ++b) {
      const auto& outs = all[b];
      const double ref = static_cast<double>(outs[0].cycles);
      t.addRow(picks[b],
               {100.0, 100.0 * static_cast<double>(outs[1].cycles) / ref,
                100.0 * static_cast<double>(outs[2].cycles) / ref});
    }
    t.addOverallGeomeanRow("geo.mean");
    std::printf("\n%s", t.render(1).c_str());
    std::printf("(Fig. 2a's 4ld+2st MALEC: grouping scales — the energy per\n"
                " WT evaluation is independent of the reference count)\n");
  }
  std::fprintf(stderr, "\n");
  return 0;
}
