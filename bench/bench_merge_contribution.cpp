// Reproduces the Sec. VI-B merged-load analysis: how much of MALEC's
// speedup over Base1ldst comes from merging loads to the same cache line
// (the rest comes from accessing multiple banks in parallel).
//
// Paper anchors: merging contributes ~21 % of the overall speedup on
// average; gap 56 % and equake 66 % (very suitable access patterns);
// mgrid < 2 % (low intra-line locality). mcf flips from −51 % to +5 %
// dynamic energy without load sharing.
#include <cstdio>
#include <vector>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/reporting.h"
#include "trace/workloads.h"

int main() {
  using namespace malec;
  const std::uint64_t n = sim::instructionBudget(100'000);

  const std::vector<core::InterfaceConfig> cfgs = {
      sim::presetBase1ldst(), sim::presetMalec(), sim::presetMalecNoMerge()};

  sim::Table t("Merged-load contribution to MALEC's speedup",
               {"speedup %", "speedup noMerge %", "merge contrib %",
                "merged loads %", "dynE noMerge/merge %"});

  for (const auto& wl : trace::allWorkloads()) {
    const auto outs = sim::runConfigs(wl, cfgs, n, /*seed=*/1);
    const double base = static_cast<double>(outs[0].cycles);
    const double sp_full = base / static_cast<double>(outs[1].cycles) - 1.0;
    const double sp_nomerge =
        base / static_cast<double>(outs[2].cycles) - 1.0;
    const double contrib =
        sp_full > 1e-9 ? 100.0 * (sp_full - sp_nomerge) / sp_full : 0.0;
    t.addRow(wl.name,
             {100.0 * sp_full, 100.0 * sp_nomerge,
              std::max(0.0, std::min(100.0, contrib)) + 1e-6,
              100.0 * outs[1].merged_load_fraction + 1e-6,
              100.0 * outs[2].dynamic_pj / outs[1].dynamic_pj});
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  std::printf("%s\n", t.render(1).c_str());
  std::printf("Paper: merging contributes ~21%% of MALEC's speedup on "
              "average (gap 56%%, equake 66%%, mgrid <2%%)\n");
  return 0;
}
