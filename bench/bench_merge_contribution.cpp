// Thin compat wrapper: the Sec. VI-B merged-load analysis is the
// "merge_contribution" experiment spec (specs.cpp); prefer
// `malec_bench --suite merge_contribution`.
#include "sim/suite.h"

int main() { return malec::sim::benchCompatMain("merge_contribution"); }
