// Thin compat wrapper: the Sec. IV merge-window sweep is the
// "arbitration_window" experiment spec (specs.cpp); prefer
// `malec_bench --suite arbitration_window`.
#include "sim/suite.h"

int main() { return malec::sim::benchCompatMain("arbitration_window"); }
