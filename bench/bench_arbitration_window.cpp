// Reproduces the Sec. IV arbitration-window claim: restricting the
// same-line merge comparison to the three loads consecutive to the initial
// Input Buffer entry costs less than 0.5 % performance compared to an
// unrestricted comparison, while keeping the comparators narrow and cheap.
// Sweeps the window from 0 (no merging possible) to 7 (effectively
// unlimited for this input-buffer size).
#include <cstdio>
#include <vector>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/reporting.h"
#include "trace/workloads.h"

int main() {
  using namespace malec;
  const std::uint64_t n = sim::instructionBudget(80'000);
  const std::vector<std::uint32_t> windows = {0, 1, 2, 3, 5, 7};

  std::vector<core::InterfaceConfig> cfgs;
  std::vector<std::string> cols;
  for (std::uint32_t w : windows) {
    core::InterfaceConfig c = sim::presetMalec();
    c.merge_window = w;
    c.merge_loads = w > 0;
    c.name = "win" + std::to_string(w);
    cfgs.push_back(c);
    cols.push_back(c.name);
  }

  sim::Table t("Execution time [%] vs merge window (win7 = 100)", cols);

  // A representative subset keeps this sweep fast; the paper's claim is an
  // average, so we use one benchmark per behaviour class.
  const std::vector<std::string> picks = {"gcc",    "gap",  "equake",
                                          "mgrid",  "mcf",  "djpeg",
                                          "h264enc"};
  for (const auto& name : picks) {
    const auto outs =
        sim::runConfigs(trace::workloadByName(name), cfgs, n, /*seed=*/1);
    const double ref = static_cast<double>(outs.back().cycles);
    std::vector<double> row;
    for (const auto& o : outs)
      row.push_back(100.0 * static_cast<double>(o.cycles) / ref);
    t.addRow(name, row);
    std::fprintf(stderr, ".");
  }
  t.addOverallGeomeanRow("geo.mean");
  std::fprintf(stderr, "\n");
  std::printf("%s\n", t.render(2).c_str());
  std::printf("Paper: window=3 within 0.5%% of unrestricted comparison\n");
  return 0;
}
