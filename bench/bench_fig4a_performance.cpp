// Reproduces Fig. 4a: execution time of Base1ldst, Base2ld1st_1cycleL1,
// Base2ld1st, MALEC and MALEC_3cycleL1, normalised to Base1ldst (= 100 %),
// per benchmark with suite and overall geometric means.
//
// Paper anchors: MALEC −14 % overall (−10 % at 3-cycle L1); Base2ld1st
// −15 % (−20 % at 1-cycle); per suite −14/−12/−21 %; outliers mcf & art
// (almost no gain), djpeg & h263dec (~−30 %), gap (~−17 %).
#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/reporting.h"
#include "trace/workloads.h"

int main() {
  using namespace malec;
  const std::uint64_t n = sim::instructionBudget(120'000);
  const auto cfgs = sim::fig4Configs();

  std::vector<std::string> cols;
  for (const auto& c : cfgs) cols.push_back(c.name);
  sim::Table t("Fig. 4a — normalized execution time [%] (Base1ldst = 100)",
               cols);

  std::string current_suite;
  for (const auto& wl : trace::allWorkloads()) {
    if (!current_suite.empty() && wl.suite != current_suite)
      t.addGeomeanRow("geo.mean " + current_suite);
    current_suite = wl.suite;

    const auto outs = sim::runConfigs(wl, cfgs, n, /*seed=*/1);
    const double base = static_cast<double>(outs[0].cycles);
    std::vector<double> row;
    for (const auto& o : outs)
      row.push_back(100.0 * static_cast<double>(o.cycles) / base);
    t.addRow(wl.name, row);
    std::fprintf(stderr, ".");
  }
  t.addGeomeanRow("geo.mean " + current_suite);
  t.addOverallGeomeanRow("geo.mean Overall");
  std::fprintf(stderr, "\n");
  std::printf("%s\n", t.render(1).c_str());
  if (t.maybeWriteCsv("fig4a_time"))
    std::printf("(CSV written to $MALEC_CSV_DIR/fig4a_time.csv)\n");
  std::printf("Paper: MALEC 86 / MALEC_3cyc 90 / Base2ld1st 85 / "
              "Base2ld1st_1cyc 80 (overall geo.means)\n");
  return 0;
}
