// Thin compat wrapper: Fig. 4a is the "fig4a" experiment spec (specs.cpp),
// executed by the declarative suite layer as one runMatrixParallel batch —
// prefer `malec_bench --suite fig4a`, which adds --filter/--sink/--jobs.
#include "sim/suite.h"

int main() { return malec::sim::benchCompatMain("fig4a"); }
