// Thin compat wrapper: the Table I/II methodology dump is the "tab1_tab2"
// experiment spec (specs.cpp); prefer `malec_bench --suite tab1_tab2`.
#include "sim/suite.h"

int main() { return malec::sim::benchCompatMain("tab1_tab2"); }
