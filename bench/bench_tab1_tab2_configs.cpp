// Prints Table I (the analysed interface configurations) and Table II (the
// simulation parameters) exactly as the presets encode them, plus the
// mini-CACTI array inventory each configuration implies — the reproduction
// of the paper's methodology tables.
// A final section spot-checks each configuration with a short simulation,
// dispatched as one parallel sweep (runConfigsParallel / MALEC_JOBS).
#include <cstdio>
#include <vector>

#include "energy/energy_account.h"
#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/structures.h"
#include "trace/workloads.h"

namespace {

void printInterfaceRow(const malec::core::InterfaceConfig& c) {
  using malec::core::InterfaceKind;
  const char* addr_comp =
      c.kind == InterfaceKind::kBase1LdSt   ? "1 ld/st"
      : c.kind == InterfaceKind::kBase2Ld1St ? "2 ld + 1 st"
                                             : "1 ld + 2 ld/st";
  char tlb[32], l1[32];
  std::snprintf(tlb, sizeof tlb, "1 rd/wt%s",
                c.tlb_extra_rd_ports ? " + 2 rd" : "");
  std::snprintf(l1, sizeof l1, "1 rd/wt%s",
                c.l1_extra_rd_ports ? " + 1 rd" : "");
  std::printf("%-22s %-16s %-18s %-16s\n", c.name.c_str(), addr_comp, tlb,
              l1);
}

}  // namespace

int main() {
  using namespace malec;
  const core::SystemConfig sys = sim::defaultSystem();

  std::printf("TABLE I — BASIC CONFIGURATIONS\n");
  std::printf("%-22s %-16s %-18s %-16s\n", "Config", "Addr.Comp./cycle",
              "uTLB/TLB ports", "Cache ports");
  printInterfaceRow(sim::presetBase1ldst());
  printInterfaceRow(sim::presetBase2ld1st());
  printInterfaceRow(sim::presetMalec());

  std::printf("\nTABLE II — RELEVANT SIMULATION PARAMETERS\n");
  std::printf("Processor     single-core out-of-order, %.0f GHz, %u ROB, "
              "%u-wide fetch/dispatch, %u-wide issue\n",
              sys.clock_ghz, sys.rob_entries, sys.fetch_width,
              sys.issue_width);
  std::printf("L1 interface  %u TLB, %u uTLB, %u LQ, %u SB, %u MB entries, "
              "%u-bit addresses, %u KByte pages\n",
              sys.tlb_entries, sys.utlb_entries, sys.lq_entries,
              sys.sb_entries, sys.mb_entries, sys.layout.addrBits(),
              sys.layout.pageBytes() / 1024);
  std::printf("L1 D-cache    %u KByte, %llu cycle latency, %u byte lines, "
              "%u-way set-assoc., %u banks, PIPT, %u-bit sub-blocks\n",
              sys.layout.l1Bytes() / 1024,
              static_cast<unsigned long long>(sim::presetMalec().l1_latency),
              sys.layout.lineBytes(), sys.layout.l1Assoc(),
              sys.layout.l1Banks(), sys.layout.subBlockBytes() * 8);
  std::printf("L2 cache      1 MByte, %llu cycle latency, 16-way set-assoc.\n",
              static_cast<unsigned long long>(sys.l2_latency));
  std::printf("DRAM          256 MByte, %llu cycle latency\n",
              static_cast<unsigned long long>(sys.dram_latency));
  std::printf("Energy model  mini-CACTI, 32 nm, low-dynamic-power objective, "
              "LSTP data/tag cells\n");

  std::printf("\nARRAY INVENTORY (mini-CACTI estimates per configuration)\n");
  for (const auto& cfg : {sim::presetBase1ldst(), sim::presetBase2ld1st(),
                          sim::presetMalec(), sim::presetMalecWdu(16)}) {
    energy::EnergyAccount ea;
    const auto inv = sim::defineEnergies(ea, cfg, sys);
    std::printf("\n  %s:\n", cfg.name.c_str());
    std::printf("  %-12s %8s %9s %6s %9s %9s %9s\n", "array", "entries",
                "bits/row", "inst", "read[pJ]", "write[pJ]", "leak[mW]");
    for (const auto& s : inv) {
      std::printf("  %-12s %8llu %9u %6u %9.3f %9.3f %9.3f\n",
                  s.spec.name.c_str(),
                  static_cast<unsigned long long>(s.spec.entries),
                  s.spec.entry_bits, s.instances, s.est.read_pj,
                  s.est.write_pj, s.est.leak_mw * s.instances);
    }
  }

  // --- configuration spot-check (one parallel sweep) -----------------------
  const std::uint64_t n = sim::instructionBudget(40'000);
  const auto outs = sim::runConfigsParallel(
      trace::workloadByName("gcc"), sim::fig4Configs(), n);
  std::printf("\nSPOT CHECK — gcc, %llu instructions, %u jobs\n",
              static_cast<unsigned long long>(n), sim::parallelJobs());
  std::printf("%-22s %8s %12s %12s\n", "Config", "IPC", "dyn[uJ]",
              "total[uJ]");
  for (const auto& o : outs)
    std::printf("%-22s %8.3f %12.3f %12.3f\n", o.config.c_str(), o.ipc,
                o.dynamic_pj * 1e-6, o.total_pj * 1e-6);
  return 0;
}
