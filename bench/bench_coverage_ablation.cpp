// Thin compat wrapper: the Sec. V feedback ablation is the
// "coverage_ablation" experiment spec (specs.cpp); prefer
// `malec_bench --suite coverage_ablation`.
#include "sim/suite.h"

int main() { return malec::sim::benchCompatMain("coverage_ablation"); }
