// Reproduces the Sec. V update-mechanism ablation: the last-entry register
// feeds way information discovered by conventional hits (after a "way
// unknown" answer) back into the uWT without a uTLB lookup. The paper
// reports this raises Page-Based Way Determination coverage from 75 % to
// 94 %.
#include <cstdio>
#include <vector>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/reporting.h"
#include "trace/workloads.h"

int main() {
  using namespace malec;
  const std::uint64_t n = sim::instructionBudget(100'000);

  const std::vector<core::InterfaceConfig> cfgs = {
      sim::presetMalecNoFeedback(), sim::presetMalec()};

  sim::Table t("WT coverage [%] without / with last-entry feedback",
               {"no feedback", "feedback", "energy no-fb %"});

  for (const auto& wl : trace::allWorkloads()) {
    const auto outs = sim::runConfigs(wl, cfgs, n, /*seed=*/1);
    t.addRow(wl.name,
             {100.0 * outs[0].way_coverage, 100.0 * outs[1].way_coverage,
              100.0 * outs[0].total_pj / outs[1].total_pj});
    std::fprintf(stderr, ".");
  }
  t.addOverallGeomeanRow("geo.mean");
  std::fprintf(stderr, "\n");
  std::printf("%s\n", t.render(1).c_str());
  std::printf("Paper: 75%% coverage without the update mechanism, 94%% "
              "with it\n");
  return 0;
}
