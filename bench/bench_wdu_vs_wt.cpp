// Reproduces Sec. VI-C's comparison of Page-Based Way Determination (Way
// Tables) against Nicolaescu et al.'s validity-extended Way Determination
// Unit with 8, 16 and 32 entries, on the same MALEC pipeline.
//
// Paper anchors: WDU coverage 68/76/78 % (8/16/32 entries) vs 94 % for the
// WT; substituting the WT with a WDU costs +4/+5/+8 % energy — the WDU
// needs four fully-associative tag-sized lookup ports, while the WT is
// single-ported and lookup-free (indexed by the TLB hit).
#include <cstdio>
#include <vector>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/reporting.h"
#include "trace/workloads.h"

int main() {
  using namespace malec;
  const std::uint64_t n = sim::instructionBudget(100'000);

  const std::vector<core::InterfaceConfig> cfgs = {
      sim::presetMalec(), sim::presetMalecWdu(8), sim::presetMalecWdu(16),
      sim::presetMalecWdu(32)};

  sim::Table tc("Way-determination coverage [%]",
                {"WT", "WDU8", "WDU16", "WDU32"});
  sim::Table te("Total energy relative to MALEC with Way Tables [%]",
                {"WT", "WDU8", "WDU16", "WDU32"});

  for (const auto& wl : trace::allWorkloads()) {
    const auto outs = sim::runConfigs(wl, cfgs, n, /*seed=*/1);
    std::vector<double> cov, en;
    for (const auto& o : outs) {
      cov.push_back(100.0 * o.way_coverage);
      en.push_back(100.0 * o.total_pj / outs[0].total_pj);
    }
    tc.addRow(wl.name, cov);
    te.addRow(wl.name, en);
    std::fprintf(stderr, ".");
  }
  tc.addOverallGeomeanRow("geo.mean");
  te.addOverallGeomeanRow("geo.mean");
  std::fprintf(stderr, "\n");

  std::printf("%s\n", tc.render(1).c_str());
  std::printf("%s\n", te.render(1).c_str());
  tc.maybeWriteCsv("wdu_coverage");
  te.maybeWriteCsv("wdu_energy");
  std::printf("Paper: coverage 94 (WT) vs 68/76/78 (WDU 8/16/32); energy "
              "+4/+5/+8%% for the WDU variants\n");
  return 0;
}
