// Thin compat wrapper: the Sec. VI-C WDU comparison is the "wdu_vs_wt"
// experiment spec (specs.cpp); prefer `malec_bench --suite wdu_vs_wt`.
#include "sim/suite.h"

int main() { return malec::sim::benchCompatMain("wdu_vs_wt"); }
