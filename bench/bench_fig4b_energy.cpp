// Reproduces Fig. 4b: dynamic and total (dynamic + leakage) energy of the
// L1 data memory subsystem for the five Fig. 4 configurations, normalised
// to Base1ldst.
//
// Paper anchors: Base2ld1st +42 % dynamic / +48 % total; MALEC −33 %
// dynamic / −22 % total (−48 % relative to Base2ld1st); mcf −51 % dynamic
// for MALEC thanks to load sharing; latency variants track their parents.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/reporting.h"
#include "trace/workloads.h"

int main() {
  using namespace malec;
  const std::uint64_t n = sim::instructionBudget(120'000);
  const auto cfgs = sim::fig4Configs();

  std::vector<std::string> cols;
  for (const auto& c : cfgs) cols.push_back(c.name);
  sim::Table td("Fig. 4b — normalized dynamic energy [%] (Base1ldst = 100)",
                cols);
  sim::Table tt("Fig. 4b — normalized total energy [%] (dynamic + leakage)",
                cols);

  std::string current_suite;
  for (const auto& wl : trace::allWorkloads()) {
    if (!current_suite.empty() && wl.suite != current_suite) {
      td.addGeomeanRow("geo.mean " + current_suite);
      tt.addGeomeanRow("geo.mean " + current_suite);
    }
    current_suite = wl.suite;

    const auto outs = sim::runConfigs(wl, cfgs, n, /*seed=*/1);
    std::vector<double> dyn_row, tot_row;
    for (const auto& o : outs) {
      dyn_row.push_back(100.0 * o.dynamic_pj / outs[0].dynamic_pj);
      tot_row.push_back(100.0 * o.total_pj / outs[0].total_pj);
    }
    td.addRow(wl.name, dyn_row);
    tt.addRow(wl.name, tot_row);
    std::fprintf(stderr, ".");
  }
  td.addGeomeanRow("geo.mean " + current_suite);
  tt.addGeomeanRow("geo.mean " + current_suite);
  td.addOverallGeomeanRow("geo.mean Overall");
  tt.addOverallGeomeanRow("geo.mean Overall");
  std::fprintf(stderr, "\n");

  std::printf("%s\n", td.render(1).c_str());
  std::printf("%s\n", tt.render(1).c_str());
  td.maybeWriteCsv("fig4b_dynamic");
  tt.maybeWriteCsv("fig4b_total");
  std::printf("Paper: dynamic — Base2ld1st 142, MALEC 67; "
              "total — Base2ld1st 148, MALEC 78 (overall)\n");
  return 0;
}
