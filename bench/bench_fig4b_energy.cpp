// Thin compat wrapper: Fig. 4b is the "fig4b" experiment spec (specs.cpp);
// prefer `malec_bench --suite fig4b`.
#include "sim/suite.h"

int main() { return malec::sim::benchCompatMain("fig4b"); }
