// Reproduces Fig. 1 (paper Sec. III): the number of consecutive read
// accesses to the same page, allowing 0/1/2/3/4/8 intermediate accesses to
// a different page, as group-size fractions per suite — plus the headline
// motivation numbers: 70 % of loads directly followed by a same-page load
// (85/90/92 % with 1/2/3 intermediates) and 46 % same-line follow rate.
#include <cstdio>
#include <map>
#include <vector>

#include "sim/experiment.h"
#include "sim/reporting.h"
#include "trace/locality_analyzer.h"
#include "trace/synth_generator.h"
#include "trace/workloads.h"

int main() {
  using namespace malec;
  const std::uint64_t n = sim::instructionBudget(120'000);
  const AddressLayout layout;
  const std::vector<std::uint32_t> allowances = {0, 1, 2, 3, 4, 8};

  std::printf("Fig. 1 — consecutive accesses to the same page\n");
  std::printf("(group-size fractions of all loads, x = allowed intermediate"
              " accesses to a different page)\n\n");

  struct SuiteAcc {
    std::map<std::uint32_t, std::vector<double>> followed;  // x -> values
    std::vector<double> same_line;
    std::vector<double> store_page;
  };
  std::map<std::string, SuiteAcc> suites;
  SuiteAcc overall;

  sim::Table t("Fig.1 bar segments at x=0 (fraction of loads, %)",
               {"grp=1", "grp=2", "grp3-4", "grp5-8", "grp>8", "followed"});

  for (const auto& wl : trace::allWorkloads()) {
    trace::SyntheticTraceGenerator gen(wl, layout, n, /*seed=*/42);
    trace::LocalityAnalyzer an(layout, allowances);
    trace::InstrRecord r;
    while (gen.next(r)) an.observe(r);

    const auto groups = an.pageGroups();
    const auto& g0 = groups[0];
    t.addRow(wl.name, {100 * g0.frac_group_1, 100 * g0.frac_group_2,
                       100 * g0.frac_group_3to4, 100 * g0.frac_group_5to8,
                       100 * g0.frac_group_gt8, 100 * g0.frac_followed});

    SuiteAcc& sa = suites[wl.suite];
    for (const auto& g : groups) {
      sa.followed[g.allowed_intermediates].push_back(g.frac_followed);
      overall.followed[g.allowed_intermediates].push_back(g.frac_followed);
    }
    sa.same_line.push_back(an.sameLineFollowedFraction());
    overall.same_line.push_back(an.sameLineFollowedFraction());
    sa.store_page.push_back(an.storeSamePageFollowedFraction());
    overall.store_page.push_back(an.storeSamePageFollowedFraction());
  }
  t.addOverallGeomeanRow("geo. mean");
  std::printf("%s\n", t.render(1).c_str());
  t.maybeWriteCsv("fig1_groups");

  std::printf("Loads followed by >=1 same-page load, by allowance x"
              " (arith. mean, %%):\n");
  std::printf("%-14s", "suite");
  for (std::uint32_t x : allowances) std::printf("  x=%-5u", x);
  std::printf("\n");
  auto meanOf = [](const std::vector<double>& v) {
    double s = 0;
    for (double d : v) s += d;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  for (const auto& suite : trace::suiteNames()) {
    std::printf("%-14s", suite.c_str());
    for (std::uint32_t x : allowances)
      std::printf("  %6.1f", 100 * meanOf(suites[suite].followed[x]));
    std::printf("\n");
  }
  std::printf("%-14s", "Overall");
  for (std::uint32_t x : allowances)
    std::printf("  %6.1f", 100 * meanOf(overall.followed[x]));
  std::printf("\n\n");

  std::printf("Paper anchors: x=0 ~70%%, x=1 ~85%%, x=2 ~90%%, x=3 ~92%%\n");
  std::printf("Same-line follow rate (paper ~46%%):   %.1f%%\n",
              100 * meanOf(overall.same_line));
  std::printf("Store same-page follow (higher than loads): %.1f%%\n",
              100 * meanOf(overall.store_page));
  return 0;
}
