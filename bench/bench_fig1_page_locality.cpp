// Thin compat wrapper: the Fig. 1 locality analysis is the "fig1"
// experiment spec (specs.cpp); prefer `malec_bench --suite fig1`.
#include "sim/suite.h"

int main() { return malec::sim::benchCompatMain("fig1"); }
