// Reproduces the Sec. V way-encoding analysis:
//   1. the combined 2-bit validity+way format stores 128 bits per WT entry
//      vs 192 bits for the naive separate-fields format — one third less
//      WT area and leakage;
//   2. restricting each line to the three encodable ways causes no
//      measurable L1 miss-rate increase (working sets still use all four
//      ways because the excluded way rotates with line index and page).
#include <cstdio>
#include <vector>

#include "energy/array_model.h"
#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/reporting.h"
#include "trace/workloads.h"
#include "waydet/segmented_wt.h"
#include "waydet/way_table.h"

int main() {
  using namespace malec;
  const core::SystemConfig sys = sim::defaultSystem();

  // --- storage and leakage of the two entry formats -----------------------
  waydet::WayTable wt(sys.tlb_entries, sys.layout.linesPerPage(),
                      sys.layout.l1Banks(), sys.layout.l1Assoc());
  std::printf("WT entry: combined format %u bits, naive format %u bits "
              "(-%.0f%%)\n",
              wt.entryBits(), wt.naiveEntryBits(),
              100.0 * (1.0 - static_cast<double>(wt.entryBits()) /
                                 wt.naiveEntryBits()));

  const auto tech = energy::tech32nm();
  for (const char* fmt : {"combined", "naive"}) {
    energy::SramArraySpec s;
    s.name = fmt;
    s.entries = sys.tlb_entries;
    s.entry_bits =
        fmt == std::string("combined") ? wt.entryBits() : wt.naiveEntryBits();
    s.read_bits = 16;
    const auto est = energy::SramArrayModel::estimate(s, tech);
    std::printf("  %-9s WT: leak %.4f mW, area %.5f mm2\n", fmt, est.leak_mw,
                est.area_mm2);
  }

  // --- segmented WT for wide pages (Sec. VI-D extension) -------------------
  std::printf("\nSegmented WT (wide pages, Sec. VI-D): storage vs flat\n");
  std::printf("  %-10s %-8s %12s %12s\n", "page", "chunks", "seg bits",
              "flat bits");
  for (std::uint32_t page_kb : {4u, 16u, 64u}) {
    const std::uint32_t lines = page_kb * 1024 / sys.layout.lineBytes();
    for (std::uint32_t chunks : {64u, 128u}) {
      waydet::SegmentedWayTable::Params sp;
      sp.slots = sys.tlb_entries;
      sp.lines_per_page = lines;
      sp.lines_per_chunk = 16;
      sp.chunks = chunks;
      waydet::SegmentedWayTable seg(sp);
      std::printf("  %6u KB %8u %12u %12u\n", page_kb, chunks,
                  seg.storageBits(), seg.flatStorageBits());
    }
  }

  // --- L1 miss-rate effect of the 3-way allocation restriction -----------
  const std::uint64_t n = sim::instructionBudget(100'000);
  core::InterfaceConfig with = sim::presetMalec();
  core::InterfaceConfig without = sim::presetMalec();
  without.waydet = core::WayDetKind::kNone;  // no allocation restriction
  without.name = "MALEC_unrestricted";

  sim::Table t("L1 load miss rate [%]: 3-way-restricted vs unrestricted",
               {"restricted", "unrestricted"});
  for (const auto& wl : trace::allWorkloads()) {
    const auto outs = sim::runConfigs(wl, {with, without}, n, /*seed=*/1);
    t.addRow(wl.name, {100.0 * outs[0].l1_load_miss_rate + 1e-6,
                       100.0 * outs[1].l1_load_miss_rate + 1e-6});
    std::fprintf(stderr, ".");
  }
  t.addOverallGeomeanRow("geo.mean");
  std::fprintf(stderr, "\n");
  std::printf("\n%s\n", t.render(2).c_str());
  std::printf("Paper: no measurable L1 miss-rate increase from the 3-way "
              "limitation\n");
  return 0;
}
