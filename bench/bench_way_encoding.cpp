// Thin compat wrapper: the Sec. V way-encoding analysis is the
// "way_encoding" experiment spec (specs.cpp); prefer
// `malec_bench --suite way_encoding`.
#include "sim/suite.h"

int main() { return malec::sim::benchCompatMain("way_encoding"); }
