// The one experiment driver: runs any registered experiment spec through
// the declarative suite layer, replacing the per-figure bench binaries.
//
//   malec_bench --list                      enumerate registered specs
//   malec_bench --suite fig4a               run one suite (repeatable)
//   malec_bench --all                       run every registered suite
//   malec_bench --filter gcc                only workloads matching substring
//   malec_bench --sink table|csv|json       select sinks (repeatable)
//   malec_bench --csv-dir DIR               CSV output directory
//   malec_bench --json PATH                 JSON-lines output file ('-' = stdout)
//   malec_bench --instr N --seed N --jobs N budget / seed / worker overrides
//
// Fault-tolerant process sharding (docs/ARCHITECTURE.md, "Fault-tolerance
// contract"): one suite's grid spread over supervised worker PROCESSES
// with a crash-resumable journal —
//
//   malec_bench --suite fig4a --workers 4 --journal sweep.mjournal
//   malec_bench --suite fig4a --workers 4 --resume sweep.mjournal
//   malec_bench ... --task-timeout 60000      per-task SIGKILL timeout [ms]
//
// (--worker is the internal per-task entry the coordinator fork/execs;
// MALEC_TASK_TIMEOUT / MALEC_SWEEP_RETRIES / MALEC_SWEEP_BACKOFF_MS tune
// supervision, MALEC_FAULT_SPEC injects deterministic faults for tests.)
//
// Result store (docs/FILE_FORMATS.md, ".mstore v1"): every sink run can
// land durably in a queryable store, and three subcommands work on it —
//
//   malec_bench --suite fig4a --sink store --store results.mstore
//   malec_bench merge --suite fig4a --journal sweep.mjournal
//                     --store results.mstore      sweep artifacts -> store
//   malec_bench query --store results.mstore
//                     [--select COLS] [--where-suite/-workload/-config SUB]
//                     [--seed N] [--sort COL [--desc]] [--group-geomean]
//                     [--limit N] [--format table|json]
//   malec_bench explore --suite fig4a --store ex.mstore
//                       [--objective ipc,energy] [--rounds N] [--batch N]
//                       [--resume]                adaptive Pareto search
//
// Defaults: console table sink; a CSV sink is added when MALEC_CSV_DIR is
// set (the legacy behaviour, now just one sink among several), a store
// sink when MALEC_STORE is set; MALEC_INSTR and MALEC_JOBS keep working
// unless --instr / --jobs override them.
// Setting MALEC_TRACE_DIR registers every *.mtrace capture in it as a
// "trace:<stem>" workload — `--suite trace_replay` runs them through the
// Table-I interfaces (capture files with `trace_tools gen`), and
// `--suite phase_sampled` compares sampled vs full replay for captures
// with a `.mplan` sidecar (write plans with `trace_tools phases`).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "explore/explorer.h"
#include "sim/suite.h"
#include "store/query.h"
#include "store/result_store.h"
#include "store/store_sink.h"
#include "sweep/coordinator.h"
#include "store/store_merge.h"

namespace {

using namespace malec;

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--list] [--suite NAME]... [--all] [--filter SUB]\n"
               "          [--sink table|csv|json|store]... [--csv-dir DIR]\n"
               "          [--json PATH] [--store PATH]\n"
               "          [--instr N] [--seed N] [--jobs N]\n"
               "          [--workers N --journal PATH | --resume PATH]\n"
               "          [--task-timeout MS]\n"
               "       %s query --store PATH [--select COL,...]\n"
               "          [--where-suite SUB] [--where-workload SUB]\n"
               "          [--where-config SUB] [--seed N] [--sort COL]\n"
               "          [--desc] [--group-geomean] [--limit N]\n"
               "          [--format table|json]\n"
               "       %s merge --suite NAME --store PATH\n"
               "          [--journal PATH] [--mres PATH]...\n"
               "          [--filter SUB] [--instr N] [--seed N]\n"
               "       %s explore --suite NAME --store PATH\n"
               "          [--objective ipc,energy|...] [--rounds N]\n"
               "          [--batch N] [--resume] [--filter SUB]\n"
               "          [--instr N] [--seed N] [--jobs N]\n",
               argv0, argv0, argv0, argv0);
  return code;
}

/// Path of this very binary, for the coordinator to fork/exec workers —
/// /proc/self/exe is immune to cwd changes and PATH games; argv[0] is the
/// fallback for exotic mounts.
std::string selfPath(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

void listSpecs() {
  const auto& reg = sim::specRegistry();
  std::printf("registered experiment specs (%zu):\n", reg.size());
  for (const auto& name : reg.names()) {
    const sim::ExperimentSpec& spec = reg.get(name);
    std::printf("  %-22s %s\n", name.c_str(), spec.title.c_str());
  }
  std::printf(
      "\nworkloads: %zu registered, presets: %zu registered "
      "(see sim/registry.h)\n",
      sim::workloadRegistry().size(), sim::presetRegistry().size());
}

/// Shared "--flag needs a value" helper for the subcommand parsers.
const char* needValueAt(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s requires a value\n", argv[i]);
    std::exit(usage(argv[0], 2));
  }
  return argv[++i];
}

/// Split a comma list strictly: empty items ("a,,b", trailing comma) are
/// hard errors, matching the explorer's objective parsing.
std::vector<std::string> splitCommaList(const std::string& s,
                                        const char* what) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (at <= s.size()) {
    const std::size_t comma = std::min(s.find(',', at), s.size());
    const std::string tok = s.substr(at, comma - at);
    if (tok.empty()) {
      std::fprintf(stderr, "%s has an empty item in '%s'\n", what, s.c_str());
      std::exit(2);
    }
    out.push_back(tok);
    at = comma + 1;
  }
  return out;
}

/// `malec_bench query`: load a store, run one query, render it.
int cmdQuery(int argc, char** argv) {
  std::string store_path, format = "table";
  store::QueryOptions q;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store") {
      store_path = needValueAt(argc, argv, i);
    } else if (arg == "--select") {
      q.select = splitCommaList(needValueAt(argc, argv, i), "--select");
    } else if (arg == "--where-suite") {
      q.suite_contains = needValueAt(argc, argv, i);
    } else if (arg == "--where-workload") {
      q.workload_contains = needValueAt(argc, argv, i);
    } else if (arg == "--where-config") {
      q.config_contains = needValueAt(argc, argv, i);
    } else if (arg == "--seed") {
      q.seed = sim::parseU64Strict(needValueAt(argc, argv, i), "--seed");
      q.have_seed = true;
    } else if (arg == "--sort") {
      q.sort_by = needValueAt(argc, argv, i);
    } else if (arg == "--desc") {
      q.sort_desc = true;
    } else if (arg == "--group-geomean") {
      q.group_geomean = true;
    } else if (arg == "--limit") {
      q.limit = sim::parseU64Strict(needValueAt(argc, argv, i), "--limit");
    } else if (arg == "--format") {
      format = needValueAt(argc, argv, i);
      if (format != "table" && format != "json") {
        std::fprintf(stderr, "unknown --format '%s' (table|json)\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "query: unknown option '%s'\n", argv[i]);
      return usage(argv[0], 2);
    }
  }
  if (store_path.empty()) {
    if (const char* env = std::getenv("MALEC_STORE");
        env != nullptr && env[0] != '\0')
      store_path = env;
  }
  if (store_path.empty()) {
    std::fprintf(stderr, "query needs --store PATH (or MALEC_STORE)\n");
    return 2;
  }
  store::ResultStore rs;
  std::string err;
  if (!rs.load(store_path, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  const store::QueryResult r = store::runQuery(rs, q);
  if (format == "json")
    store::printQueryJson(r, stdout);
  else
    store::printQueryTable(r, stdout);
  return 0;
}

/// `malec_bench merge`: sweep artifacts (journal and/or .mres files) ->
/// one store segment, nothing re-run.
int cmdMerge(int argc, char** argv) {
  std::string suite, store_path, journal;
  std::vector<std::string> mres;
  sim::SuiteOptions opts;
  opts.progress = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--suite") {
      suite = needValueAt(argc, argv, i);
    } else if (arg == "--store") {
      store_path = needValueAt(argc, argv, i);
    } else if (arg == "--journal") {
      journal = needValueAt(argc, argv, i);
    } else if (arg == "--mres") {
      mres.push_back(needValueAt(argc, argv, i));
    } else if (arg == "--filter") {
      opts.workload_filter = needValueAt(argc, argv, i);
    } else if (arg == "--instr") {
      opts.instructions =
          sim::parseU64Strict(needValueAt(argc, argv, i), "--instr");
    } else if (arg == "--seed") {
      opts.seed = sim::parseU64Strict(needValueAt(argc, argv, i), "--seed");
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "merge: unknown option '%s'\n", argv[i]);
      return usage(argv[0], 2);
    }
  }
  if (suite.empty() || store_path.empty()) {
    std::fprintf(stderr, "merge needs --suite NAME and --store PATH\n");
    return 2;
  }
  const sim::ExperimentSpec* spec = sim::specRegistry().tryGet(suite);
  if (spec == nullptr) {
    std::fprintf(stderr, "merge: unknown suite '%s'\n", suite.c_str());
    return 1;
  }
  sweep::mergeIntoStore(*spec, opts, journal, mres, store_path);
  return 0;
}

/// `malec_bench explore`: adaptive Pareto search over the MALEC axes.
int cmdExplore(int argc, char** argv) {
  explore::ExploreOptions ex;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--suite") {
      ex.suite = needValueAt(argc, argv, i);
    } else if (arg == "--store") {
      ex.store = needValueAt(argc, argv, i);
    } else if (arg == "--objective") {
      ex.objectives = needValueAt(argc, argv, i);
    } else if (arg == "--rounds") {
      ex.rounds = sim::parseU64Strict(needValueAt(argc, argv, i), "--rounds");
    } else if (arg == "--batch") {
      ex.batch = sim::parseU64Strict(needValueAt(argc, argv, i), "--batch");
    } else if (arg == "--resume") {
      ex.resume = true;
    } else if (arg == "--filter") {
      ex.workload_filter = needValueAt(argc, argv, i);
    } else if (arg == "--instr") {
      ex.instructions =
          sim::parseU64Strict(needValueAt(argc, argv, i), "--instr");
    } else if (arg == "--seed") {
      ex.seed = sim::parseU64Strict(needValueAt(argc, argv, i), "--seed");
    } else if (arg == "--jobs") {
      const std::uint64_t jobs =
          sim::parseU64Strict(needValueAt(argc, argv, i), "--jobs");
      if (jobs > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "--jobs %llu exceeds the supported range\n",
                     static_cast<unsigned long long>(jobs));
        return 2;
      }
      ex.jobs = static_cast<unsigned>(jobs);
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "explore: unknown option '%s'\n", argv[i]);
      return usage(argv[0], 2);
    }
  }
  if (ex.suite.empty() || ex.store.empty()) {
    std::fprintf(stderr, "explore needs --suite NAME and --store PATH\n");
    return 2;
  }
  sim::ConsoleSink console;
  std::vector<sim::ResultSink*> sinks = {&console};
  return explore::runExplore(ex, sinks);
}

}  // namespace

int main(int argc, char** argv) {
  // Subcommand dispatch first: `query` / `merge` / `explore` have their
  // own flag sets (a flag-style first arg falls through to the classic
  // suite-runner parser).
  if (argc >= 2 && std::strcmp(argv[1], "query") == 0)
    return cmdQuery(argc, argv);
  if (argc >= 2 && std::strcmp(argv[1], "merge") == 0)
    return cmdMerge(argc, argv);
  if (argc >= 2 && std::strcmp(argv[1], "explore") == 0)
    return cmdExplore(argc, argv);
  bool list = false, all = false;
  bool want_table = false, want_csv = false, want_json = false;
  bool want_store = false;
  std::string csv_dir, json_path, store_path;
  std::vector<std::string> suites;
  sim::SuiteOptions opts;

  // Sweep-coordinator / worker-mode state.
  bool worker_mode = false;
  bool have_task = false, have_result = false;
  std::uint32_t worker_task = 0, worker_attempt = 0;
  std::string worker_result;
  sweep::SweepOptions sweep_opts;
  bool want_workers = false, want_journal = false, want_resume = false;
  bool want_timeout = false;

  auto needValue = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", argv[i]);
      std::exit(usage(argv[0], 2));
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--suite") {
      suites.push_back(needValue(i));
    } else if (arg == "--filter") {
      opts.workload_filter = needValue(i);
    } else if (arg == "--sink") {
      const std::string kind = needValue(i);
      if (kind == "table") want_table = true;
      else if (kind == "csv") want_csv = true;
      else if (kind == "json") want_json = true;
      else if (kind == "store") want_store = true;
      else {
        std::fprintf(stderr, "unknown sink '%s' (table|csv|json|store)\n",
                     kind.c_str());
        return usage(argv[0], 2);
      }
    } else if (arg == "--csv-dir") {
      csv_dir = needValue(i);
      want_csv = true;
    } else if (arg == "--json") {
      json_path = needValue(i);
      want_json = true;
    } else if (arg == "--store") {
      store_path = needValue(i);
      want_store = true;
    } else if (arg == "--instr") {
      opts.instructions = sim::parseU64Strict(needValue(i), "--instr");
    } else if (arg == "--seed") {
      opts.seed = sim::parseU64Strict(needValue(i), "--seed");
    } else if (arg == "--jobs") {
      const std::uint64_t jobs = sim::parseU64Strict(needValue(i), "--jobs");
      if (jobs > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "--jobs %llu exceeds the supported range\n",
                     static_cast<unsigned long long>(jobs));
        return 2;
      }
      opts.jobs = static_cast<unsigned>(jobs);
    } else if (arg == "--workers") {
      const std::uint64_t w = sim::parseU64Strict(needValue(i), "--workers");
      if (w == 0 || w > sweep::kMaxWorkers) {
        std::fprintf(stderr, "--workers must be in [1, %llu]\n",
                     static_cast<unsigned long long>(sweep::kMaxWorkers));
        return 2;
      }
      sweep_opts.workers = static_cast<unsigned>(w);
      want_workers = true;
    } else if (arg == "--journal") {
      sweep_opts.journal = needValue(i);
      want_journal = true;
    } else if (arg == "--resume") {
      sweep_opts.journal = needValue(i);
      sweep_opts.resume = true;
      want_resume = true;
    } else if (arg == "--task-timeout") {
      sweep_opts.task_timeout_ms =
          sim::parseU64Strict(needValue(i), "--task-timeout");
      want_timeout = true;
    } else if (arg == "--worker") {
      worker_mode = true;
    } else if (arg == "--task") {
      worker_task = static_cast<std::uint32_t>(
          sim::parseU64Strict(needValue(i), "--task"));
      have_task = true;
    } else if (arg == "--attempt") {
      worker_attempt = static_cast<std::uint32_t>(
          sim::parseU64Strict(needValue(i), "--attempt"));
    } else if (arg == "--result") {
      worker_result = needValue(i);
      have_result = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return usage(argv[0], 2);
    }
  }

  if (list) {
    listSpecs();
    return 0;
  }

  // --- internal worker mode -------------------------------------------------
  // The coordinator fork/execs `malec_bench --worker --suite S --task K
  // --attempt A --result PATH [--instr N --seed N --filter SUB]`: run ONE
  // grid cell with the exact RunConfig the in-process matrix would build
  // and hand the RunOutput back through a checksummed result file.
  if (worker_mode) {
    if (suites.size() != 1 || !have_task || !have_result || all) {
      std::fprintf(stderr,
                   "--worker needs exactly one --suite plus --task and "
                   "--result (coordinator-internal mode)\n");
      return 2;
    }
    const sim::ExperimentSpec* spec = sim::specRegistry().tryGet(suites[0]);
    if (spec == nullptr) {
      std::fprintf(stderr, "worker: unknown suite '%s'\n", suites[0].c_str());
      return 1;
    }
    opts.progress = false;
    return sweep::runWorkerTask(*spec, opts, worker_task, worker_attempt,
                                worker_result);
  }
  if (have_task || have_result) {
    std::fprintf(stderr, "--task/--attempt/--result need --worker\n");
    return 2;
  }

  // --- sharded-sweep flag validation ----------------------------------------
  const bool sharded = want_workers || want_journal || want_resume;
  if (want_timeout && !sharded) {
    std::fprintf(stderr,
                 "--task-timeout only applies to sharded sweeps "
                 "(--workers/--journal/--resume)\n");
    return 2;
  }
  if (sharded) {
    if (want_journal && want_resume) {
      std::fprintf(stderr, "--journal and --resume are mutually exclusive "
                           "(--resume names the journal)\n");
      return 2;
    }
    if (!want_journal && !want_resume) {
      std::fprintf(stderr,
                   "--workers needs a journal: add --journal PATH (fresh "
                   "sweep) or --resume PATH (continue a crashed one)\n");
      return 2;
    }
    if (all || suites.size() != 1) {
      std::fprintf(stderr,
                   "a sharded sweep coordinates exactly one --suite "
                   "(the journal binds to one grid)\n");
      return 2;
    }
  }
  if (all) {
    // --all means "everything runnable": a suite whose preconditions this
    // sweep cannot meet is skipped with a note, never a mid-run abort.
    // Each trace-dependent spec declares its precondition via all_skip
    // (no captures registered / no .mplan sidecars); an explicit --suite
    // <name> bypasses the gates and fails loudly inside the suite.
    for (const auto& name : sim::specRegistry().names()) {
      const sim::ExperimentSpec& spec = sim::specRegistry().get(name);
      if (spec.whole_stream_only && opts.instructions > 0) {
        std::fprintf(stderr,
                     "skipping suite '%s' (replays whole traces/plans — "
                     "--instr does not compose with it)\n",
                     name.c_str());
        continue;
      }
      if (spec.all_skip) {
        const std::string reason = spec.all_skip(opts);
        if (!reason.empty()) {
          std::fprintf(stderr, "skipping suite '%s' (%s)\n", name.c_str(),
                       reason.c_str());
          continue;
        }
      } else if (std::find(spec.workloads.begin(), spec.workloads.end(),
                           "trace:*") != spec.workloads.end()) {
        // Fallback for a future trace:*-wanting spec registered without
        // its own all_skip gate: the trace:* expansion aborts when no
        // captures are registered, and --all must never abort mid-sweep.
        bool have_traces = false;
        for (const auto& wl : sim::workloadRegistry().names())
          have_traces = have_traces || wl.rfind("trace:", 0) == 0;
        if (!have_traces) {
          std::fprintf(stderr,
                       "skipping suite '%s' (no trace workloads registered "
                       "— set MALEC_TRACE_DIR to include it)\n",
                       name.c_str());
          continue;
        }
      }
      // Generic --filter gate, after the per-spec gates: their
      // diagnostics (MALEC_TRACE_DIR / trace_tools hints) are more
      // actionable than a filter mismatch.
      // A suite none of whose workloads match the filter
      // would abort inside runSuite's empty-filter-match check — under
      // --all that suite is simply not what the filter was aimed at.
      if (!opts.workload_filter.empty()) {
        const auto names = sim::suiteWorkloadNames(spec);
        const bool any = std::any_of(
            names.begin(), names.end(), [&](const std::string& n) {
              return n.find(opts.workload_filter) != std::string::npos;
            });
        if (!any) {
          std::fprintf(stderr,
                       "skipping suite '%s' (workload filter '%s' matches "
                       "none of its workloads)\n",
                       name.c_str(), opts.workload_filter.c_str());
          continue;
        }
      }
      suites.push_back(name);
    }
  }
  if (suites.empty()) {
    std::fprintf(stderr, "nothing to do: pass --list, --suite NAME or --all\n");
    return usage(argv[0], 2);
  }

  // Resolve every suite name up front so a typo fails before hours of
  // simulation, with the full inventory in the message.
  for (const auto& name : suites) {
    if (sim::specRegistry().tryGet(name) == nullptr) {
      std::fprintf(stderr, "unknown suite '%s' — registered suites:\n",
                   name.c_str());
      for (const auto& known : sim::specRegistry().names())
        std::fprintf(stderr, "  %s\n", known.c_str());
      return 1;
    }
  }

  // --- sink assembly --------------------------------------------------------
  // No explicit --sink selection = legacy behaviour: console table plus a
  // CSV sink when MALEC_CSV_DIR is set (and a store sink when MALEC_STORE
  // is set).
  if (!want_table && !want_csv && !want_json && !want_store) {
    want_table = true;
    if (const char* dir = std::getenv("MALEC_CSV_DIR");
        dir != nullptr && dir[0] != '\0') {
      want_csv = true;
      csv_dir = dir;
    }
    if (const char* sp = std::getenv("MALEC_STORE");
        sp != nullptr && sp[0] != '\0') {
      want_store = true;
      store_path = sp;
    }
  }
  if (want_csv && csv_dir.empty()) {
    if (const char* dir = std::getenv("MALEC_CSV_DIR");
        dir != nullptr && dir[0] != '\0')
      csv_dir = dir;
    else {
      std::fprintf(stderr,
                   "--sink csv needs --csv-dir DIR (or MALEC_CSV_DIR)\n");
      return 2;
    }
  }
  if (want_store && store_path.empty()) {
    if (const char* sp = std::getenv("MALEC_STORE");
        sp != nullptr && sp[0] != '\0')
      store_path = sp;
    else {
      std::fprintf(stderr,
                   "--sink store needs --store PATH (or MALEC_STORE)\n");
      return 2;
    }
  }

  std::vector<std::unique_ptr<sim::ResultSink>> owned;
  std::FILE* json_file = nullptr;
  if (want_table) owned.push_back(std::make_unique<sim::ConsoleSink>());
  if (want_csv) owned.push_back(std::make_unique<sim::CsvDirSink>(csv_dir));
  if (want_store)
    owned.push_back(std::make_unique<store::StoreSink>(store_path));
  if (want_json) {
    if (json_path.empty() || json_path == "-") {
      owned.push_back(std::make_unique<sim::JsonLinesSink>(stdout));
    } else {
      json_file = std::fopen(json_path.c_str(), "w");
      if (json_file == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     json_path.c_str());
        return 1;
      }
      owned.push_back(std::make_unique<sim::JsonLinesSink>(json_file));
    }
  }
  std::vector<sim::ResultSink*> sinks;
  for (const auto& s : owned) sinks.push_back(s.get());

  int code = 0;
  if (sharded) {
    sweep::resolveSweepTuning(sweep_opts);
    sweep_opts.worker_path = selfPath(argv[0]);
    code = sweep::runSuiteCoordinated(sim::specRegistry().get(suites[0]), opts,
                                      sweep_opts, sinks);
  } else {
    for (const auto& name : suites)
      sim::runSuite(sim::specRegistry().get(name), opts, sinks);
  }

  owned.clear();
  if (json_file != nullptr) std::fclose(json_file);
  return code;
}
