// The one experiment driver: runs any registered experiment spec through
// the declarative suite layer, replacing the per-figure bench binaries.
//
//   malec_bench --list                      enumerate registered specs
//   malec_bench --suite fig4a               run one suite (repeatable)
//   malec_bench --all                       run every registered suite
//   malec_bench --filter gcc                only workloads matching substring
//   malec_bench --sink table|csv|json       select sinks (repeatable)
//   malec_bench --csv-dir DIR               CSV output directory
//   malec_bench --json PATH                 JSON-lines output file ('-' = stdout)
//   malec_bench --instr N --seed N --jobs N budget / seed / worker overrides
//
// Defaults: console table sink; a CSV sink is added when MALEC_CSV_DIR is
// set (the legacy behaviour, now just one sink among several); MALEC_INSTR
// and MALEC_JOBS keep working unless --instr / --jobs override them.
// Setting MALEC_TRACE_DIR registers every *.mtrace capture in it as a
// "trace:<stem>" workload — `--suite trace_replay` runs them through the
// Table-I interfaces (capture files with `trace_tools gen`), and
// `--suite phase_sampled` compares sampled vs full replay for captures
// with a `.mplan` sidecar (write plans with `trace_tools phases`).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/suite.h"

namespace {

using namespace malec;

int usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s [--list] [--suite NAME]... [--all] [--filter SUB]\n"
               "          [--sink table|csv|json]... [--csv-dir DIR]\n"
               "          [--json PATH] [--instr N] [--seed N] [--jobs N]\n",
               argv0);
  return code;
}

void listSpecs() {
  const auto& reg = sim::specRegistry();
  std::printf("registered experiment specs (%zu):\n", reg.size());
  for (const auto& name : reg.names()) {
    const sim::ExperimentSpec& spec = reg.get(name);
    std::printf("  %-22s %s\n", name.c_str(), spec.title.c_str());
  }
  std::printf(
      "\nworkloads: %zu registered, presets: %zu registered "
      "(see sim/registry.h)\n",
      sim::workloadRegistry().size(), sim::presetRegistry().size());
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false, all = false;
  bool want_table = false, want_csv = false, want_json = false;
  std::string csv_dir, json_path;
  std::vector<std::string> suites;
  sim::SuiteOptions opts;

  auto needValue = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", argv[i]);
      std::exit(usage(argv[0], 2));
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--suite") {
      suites.push_back(needValue(i));
    } else if (arg == "--filter") {
      opts.workload_filter = needValue(i);
    } else if (arg == "--sink") {
      const std::string kind = needValue(i);
      if (kind == "table") want_table = true;
      else if (kind == "csv") want_csv = true;
      else if (kind == "json") want_json = true;
      else {
        std::fprintf(stderr, "unknown sink '%s' (table|csv|json)\n",
                     kind.c_str());
        return usage(argv[0], 2);
      }
    } else if (arg == "--csv-dir") {
      csv_dir = needValue(i);
      want_csv = true;
    } else if (arg == "--json") {
      json_path = needValue(i);
      want_json = true;
    } else if (arg == "--instr") {
      opts.instructions = sim::parseU64Strict(needValue(i), "--instr");
    } else if (arg == "--seed") {
      opts.seed = sim::parseU64Strict(needValue(i), "--seed");
    } else if (arg == "--jobs") {
      const std::uint64_t jobs = sim::parseU64Strict(needValue(i), "--jobs");
      if (jobs > std::numeric_limits<unsigned>::max()) {
        std::fprintf(stderr, "--jobs %llu exceeds the supported range\n",
                     static_cast<unsigned long long>(jobs));
        return 2;
      }
      opts.jobs = static_cast<unsigned>(jobs);
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return usage(argv[0], 2);
    }
  }

  if (list) {
    listSpecs();
    return 0;
  }
  if (all) {
    // --all means "everything runnable": a suite whose preconditions this
    // sweep cannot meet is skipped with a note, never a mid-run abort.
    // Each trace-dependent spec declares its precondition via all_skip
    // (no captures registered / no .mplan sidecars); an explicit --suite
    // <name> bypasses the gates and fails loudly inside the suite.
    for (const auto& name : sim::specRegistry().names()) {
      const sim::ExperimentSpec& spec = sim::specRegistry().get(name);
      if (spec.whole_stream_only && opts.instructions > 0) {
        std::fprintf(stderr,
                     "skipping suite '%s' (replays whole traces/plans — "
                     "--instr does not compose with it)\n",
                     name.c_str());
        continue;
      }
      if (spec.all_skip) {
        const std::string reason = spec.all_skip(opts);
        if (!reason.empty()) {
          std::fprintf(stderr, "skipping suite '%s' (%s)\n", name.c_str(),
                       reason.c_str());
          continue;
        }
      } else if (std::find(spec.workloads.begin(), spec.workloads.end(),
                           "trace:*") != spec.workloads.end()) {
        // Fallback for a future trace:*-wanting spec registered without
        // its own all_skip gate: the trace:* expansion aborts when no
        // captures are registered, and --all must never abort mid-sweep.
        bool have_traces = false;
        for (const auto& wl : sim::workloadRegistry().names())
          have_traces = have_traces || wl.rfind("trace:", 0) == 0;
        if (!have_traces) {
          std::fprintf(stderr,
                       "skipping suite '%s' (no trace workloads registered "
                       "— set MALEC_TRACE_DIR to include it)\n",
                       name.c_str());
          continue;
        }
      }
      // Generic --filter gate, after the per-spec gates: their
      // diagnostics (MALEC_TRACE_DIR / trace_tools hints) are more
      // actionable than a filter mismatch.
      // A suite none of whose workloads match the filter
      // would abort inside runSuite's empty-filter-match check — under
      // --all that suite is simply not what the filter was aimed at.
      if (!opts.workload_filter.empty()) {
        const auto names = sim::suiteWorkloadNames(spec);
        const bool any = std::any_of(
            names.begin(), names.end(), [&](const std::string& n) {
              return n.find(opts.workload_filter) != std::string::npos;
            });
        if (!any) {
          std::fprintf(stderr,
                       "skipping suite '%s' (workload filter '%s' matches "
                       "none of its workloads)\n",
                       name.c_str(), opts.workload_filter.c_str());
          continue;
        }
      }
      suites.push_back(name);
    }
  }
  if (suites.empty()) {
    std::fprintf(stderr, "nothing to do: pass --list, --suite NAME or --all\n");
    return usage(argv[0], 2);
  }

  // Resolve every suite name up front so a typo fails before hours of
  // simulation, with the full inventory in the message.
  for (const auto& name : suites) {
    if (sim::specRegistry().tryGet(name) == nullptr) {
      std::fprintf(stderr, "unknown suite '%s' — registered suites:\n",
                   name.c_str());
      for (const auto& known : sim::specRegistry().names())
        std::fprintf(stderr, "  %s\n", known.c_str());
      return 1;
    }
  }

  // --- sink assembly --------------------------------------------------------
  // No explicit --sink selection = legacy behaviour: console table plus a
  // CSV sink when MALEC_CSV_DIR is set.
  if (!want_table && !want_csv && !want_json) {
    want_table = true;
    if (const char* dir = std::getenv("MALEC_CSV_DIR");
        dir != nullptr && dir[0] != '\0') {
      want_csv = true;
      csv_dir = dir;
    }
  }
  if (want_csv && csv_dir.empty()) {
    if (const char* dir = std::getenv("MALEC_CSV_DIR");
        dir != nullptr && dir[0] != '\0')
      csv_dir = dir;
    else {
      std::fprintf(stderr,
                   "--sink csv needs --csv-dir DIR (or MALEC_CSV_DIR)\n");
      return 2;
    }
  }

  std::vector<std::unique_ptr<sim::ResultSink>> owned;
  std::FILE* json_file = nullptr;
  if (want_table) owned.push_back(std::make_unique<sim::ConsoleSink>());
  if (want_csv) owned.push_back(std::make_unique<sim::CsvDirSink>(csv_dir));
  if (want_json) {
    if (json_path.empty() || json_path == "-") {
      owned.push_back(std::make_unique<sim::JsonLinesSink>(stdout));
    } else {
      json_file = std::fopen(json_path.c_str(), "w");
      if (json_file == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     json_path.c_str());
        return 1;
      }
      owned.push_back(std::make_unique<sim::JsonLinesSink>(json_file));
    }
  }
  std::vector<sim::ResultSink*> sinks;
  for (const auto& s : owned) sinks.push_back(s.get());

  for (const auto& name : suites)
    sim::runSuite(sim::specRegistry().get(name), opts, sinks);

  owned.clear();
  if (json_file != nullptr) std::fclose(json_file);
  return 0;
}
