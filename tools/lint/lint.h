// malec_lint — static contract checker for the MALEC determinism stack.
//
// The repo's evaluation rests on invariants (bit-identical sweeps,
// checkpoint->restore->continue identity, EventId-only hot paths) that used
// to be enforced only by runtime tests and one-shot manual audits. This
// tool parses `src/` headers/sources lexically (comment/string-aware, brace
// matched — not a full C++ frontend) and enforces the written contracts as
// machine-checked rules:
//
//   checkpoint-state  (R1) every data member of a class declaring
//                     saveState/loadState must be referenced in BOTH
//                     bodies, or carry `// lint:no-state(<reason>)` on its
//                     declaration line or the line above.
//   eventid           (R2) no string-keyed `count("...")`-style energy
//                     APIs or allocation-prone string machinery
//                     (to_string, stringstream, string-keyed maps) in the
//                     per-cycle directories (src/core, src/cpu, src/lsq,
//                     src/tlb, src/mem).
//   determinism       (R3a) rand()/srand()/std::random_device/time()/
//                     `*_clock::now()` are banned outside the allowlist —
//                     simulated state must be a pure function of the seed.
//   udc-order         (R3b) iterating an unordered_map/unordered_set (or
//                     taking begin()/end() on one) in a file that also
//                     writes serialized bytes (StateIO, ResultSink) is
//                     flagged — hash/pointer order must never reach
//                     checkpoint or report output. Sort first, then waive
//                     with `// lint:allow(udc-order: <reason>)`.
//   strict-parse      (R4) raw atoi/stoi/strtol/sscanf-family parsing is
//                     banned outside sim::parseU64Strict's home — sloppy
//                     numeric parsing silently misreads budgets and seeds.
//
// Waivers: `// lint:no-state(<reason>)` (R1 only) and
// `// lint:allow(<rule>: <reason>)` (all rules), both requiring a
// non-empty reason, on the flagged line or the line immediately above.
// File-scope exemptions live in an allowlist file of
// `<rule> <path-suffix> <reason...>` lines.
//
// Everything is deterministic: files are scanned in sorted order and
// findings are emitted in (file, line, rule) order.
#pragma once

#include <string>
#include <vector>

namespace malec::lint {

struct Finding {
  std::string file;  ///< path relative to the scan root, '/'-separated
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

struct AllowEntry {
  std::string rule;
  std::string path_suffix;  ///< matches when the relative path ends with it
  std::string reason;       ///< must be non-empty
};

struct Options {
  /// Repo root; `<root>/src` is scanned (see `scan_dirs`).
  std::string root;
  /// Directories under `root` to scan (default: {"src"}).
  std::vector<std::string> scan_dirs = {"src"};
  /// Directories (relative to root) subject to the eventid rule.
  std::vector<std::string> per_cycle_dirs = {"src/core", "src/cpu",
                                             "src/lsq", "src/tlb",
                                             "src/mem"};
  std::vector<AllowEntry> allow;
};

struct Report {
  std::vector<Finding> findings;
  /// Concrete classes declaring both saveState and loadState, sorted —
  /// the stateful inventory the checkpoint-matrix drift check consumes.
  std::vector<std::string> stateful_classes;
};

/// Parse an allowlist file. Returns entries; appends human-readable
/// problems (malformed line, missing reason) to `errors`.
std::vector<AllowEntry> parseAllowlistFile(const std::string& path,
                                           std::vector<std::string>& errors);

/// Run every rule over `<root>/<scan_dir>` and return the report.
Report runLint(const Options& opt);

/// One "path:line: [rule] message" line per finding.
std::string formatFindings(const Report& report);

}  // namespace malec::lint
