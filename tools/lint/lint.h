// malec_lint — static contract checker for the MALEC determinism stack.
//
// The repo's evaluation rests on invariants (bit-identical sweeps,
// checkpoint->restore->continue identity, EventId-only hot paths) that used
// to be enforced only by runtime tests and one-shot manual audits. This
// tool parses `src/` headers/sources lexically (comment/string-aware, brace
// matched — not a full C++ frontend) and enforces the written contracts as
// machine-checked rules:
//
//   checkpoint-state  (R1) every data member of a class declaring
//                     saveState/loadState must be referenced in BOTH
//                     bodies, or carry `// lint:no-state(<reason>)` on its
//                     declaration line or the line above.
//   eventid           (R2) no string-keyed `count("...")`-style energy
//                     APIs or allocation-prone string machinery
//                     (to_string, stringstream, string-keyed maps) in the
//                     per-cycle directories (src/core, src/cpu, src/lsq,
//                     src/tlb, src/mem).
//   determinism       (R3a) rand()/srand()/std::random_device/time()/
//                     `*_clock::now()` are banned outside the allowlist —
//                     simulated state must be a pure function of the seed.
//                     Also scanned over tools/ and bench/ (fixtures
//                     excluded), where a stray wall-clock call corrupts
//                     reproducibility just the same.
//   udc-order         (R3b) iterating an unordered_map/unordered_set (or
//                     taking begin()/end() on one) in a file that also
//                     writes serialized bytes (StateIO, ResultSink) is
//                     flagged — hash/pointer order must never reach
//                     checkpoint or report output. Sort first, then waive
//                     with `// lint:allow(udc-order: <reason>)`.
//   strict-parse      (R4) raw atoi/stoi/strtol/sscanf-family parsing is
//                     banned outside sim::parseU64Strict's home — sloppy
//                     numeric parsing silently misreads budgets and seeds.
//                     Also scanned over tools/ and bench/.
//   ckpt-symmetry     (R5) for every stateful class, the ordered sequence
//                     of StateWriter primitive calls in saveState must
//                     mirror the ordered StateReader calls in loadState —
//                     same count, same widths, nested saveState/loadState
//                     and writer/reader-taking helpers pairing up
//                     position by position. A divergent pair is the exact
//                     bug class the runtime bit-identity matrix catches
//                     only when a workload happens to exercise the
//                     asymmetric field. Loop/branch shapes the lexical
//                     pass cannot pair are waived per method with
//                     `// lint:allow(ckpt-symmetry: <reason>)` on (or
//                     above) the class or either method definition.
//   layering          (R6) the docs/ARCHITECTURE.md layer DAG, as an
//                     allowed-edges table: an `#include "<comp>/..."`
//                     from src/<a> into src/<b> is legal only when b is
//                     in a's allowed dependency set. Up-stack includes
//                     (src/core -> src/sim, src/ckpt -> src/sweep) fail.
//   hot-alloc         (R7) allocation machinery (new, malloc/calloc/
//                     realloc, make_unique/make_shared, push_back/
//                     emplace_back, resize) is banned in the per-cycle
//                     directories outside constructor, destructor and
//                     saveState/loadState bodies — the run loop must not
//                     allocate. Steady-state appends into retained
//                     capacity are waived per site with
//                     `// lint:allow(hot-alloc: <reason>)`.
//
// Beyond findings, the analyzer extracts a serialization *schema* per
// stateful class — the ordered (primitive width -> expression) field list
// of its saveState body. `--emit-schema <dir>` writes one deterministic
// text file per class; goldens committed under tools/lint/schemas/ pin
// the `.mckpt` byte layout, and scripts/check_lint.sh regenerates and
// diffs both ways so a silent layout change becomes an explicit, reviewed
// schema regeneration.
//
// Waivers: `// lint:no-state(<reason>)` (R1 only) and
// `// lint:allow(<rule>: <reason>)` (all rules), both requiring a
// non-empty reason, on the flagged line or the line immediately above.
// File-scope exemptions live in an allowlist file of
// `<rule> <path-suffix> <reason...>` lines; suffixes match at path
// component boundaries only (`core/foo.h` never matches
// `src/othercore/foo.h`).
//
// Everything is deterministic: files are scanned in sorted order, findings
// are emitted in (file, line, rule) order, schemas in class-name order.
#pragma once

#include <string>
#include <vector>

namespace malec::lint {

struct Finding {
  std::string file;  ///< path relative to the scan root, '/'-separated
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

struct AllowEntry {
  std::string rule;
  /// Matches when the relative path ends with it at a '/' boundary
  /// (or equals it exactly).
  std::string path_suffix;
  std::string reason;  ///< must be non-empty
};

struct Options {
  /// Repo root; `<root>/src` is scanned (see `scan_dirs`).
  std::string root;
  /// Directories under `root` subject to every rule (default: {"src"}).
  std::vector<std::string> scan_dirs = {"src"};
  /// Directories scanned for the determinism and strict-parse families
  /// only (tool/bench code never serializes simulated state but must stay
  /// reproducible). Paths containing a "fixtures" component are skipped —
  /// the lint fixtures seed deliberate violations.
  std::vector<std::string> restricted_scan_dirs = {"tools", "bench"};
  /// Directories (relative to root) subject to the eventid and hot-alloc
  /// rules.
  std::vector<std::string> per_cycle_dirs = {"src/core", "src/cpu",
                                             "src/lsq", "src/tlb",
                                             "src/mem"};
  /// Rule families to run (empty = all). Unknown names are rejected by
  /// ruleFamilies() lookup in the driver.
  std::vector<std::string> rule_filter;
  std::vector<AllowEntry> allow;
};

/// One stateful class's ordered serialization schema, rendered as one
/// line per saveState operation:
///   u8|u32|u64|f64|str|bytes <argument expression>   (primitive append)
///   sub  <owner expression>                          (nested saveState)
///   call <helper call text>                          (writer-taking helper)
struct ClassSchema {
  std::string class_name;
  std::string file;  ///< file holding the saveState body
  std::vector<std::string> lines;
};

struct Report {
  std::vector<Finding> findings;
  /// Concrete classes declaring both saveState and loadState, sorted —
  /// the stateful inventory the checkpoint-matrix drift check consumes.
  std::vector<std::string> stateful_classes;
  /// One schema per stateful class with a located saveState body, sorted
  /// by (class_name, file).
  std::vector<ClassSchema> schemas;
};

/// The valid `--rule` family names, sorted.
const std::vector<std::string>& ruleFamilies();

/// Parse an allowlist file. Returns entries; appends human-readable
/// problems (malformed line, missing reason) to `errors`.
std::vector<AllowEntry> parseAllowlistFile(const std::string& path,
                                           std::vector<std::string>& errors);

/// Run every (filtered) rule over the scan dirs and return the report.
Report runLint(const Options& opt);

/// One "path:line: [rule] message" line per finding.
std::string formatFindings(const Report& report);

/// Render one schema as the deterministic text `--emit-schema` writes.
std::string formatSchema(const ClassSchema& schema);

}  // namespace malec::lint
