// malec_lint — CLI driver. See lint.h for the rule inventory.
//
//   malec_lint --root <repo-root> [--allowlist <file>] [--list-stateful]
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage/config error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --root <repo-root> [--allowlist <file>] [--list-stateful]\n"
      "\n"
      "Scans <repo-root>/src and enforces the repo contracts:\n"
      "  checkpoint-state  saveState/loadState must cover every member\n"
      "  eventid           no string-keyed energy APIs in per-cycle dirs\n"
      "  determinism       no rand()/random_device/time()/*_clock::now()\n"
      "  udc-order         no unordered iteration near serialized output\n"
      "  strict-parse      no raw atoi/stoi/strtol outside parseU64Strict\n"
      "\n"
      "--list-stateful prints the stateful-class inventory (one name per\n"
      "line) instead of linting — consumed by scripts/check_lint.sh to\n"
      "cross-check the test_checkpoint matrix.\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  malec::lint::Options opt;
  std::string allowlist_path;
  bool list_stateful = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--list-stateful") {
      list_stateful = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "malec_lint: unknown argument '%s'\n",
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.root.empty()) {
    std::fprintf(stderr, "malec_lint: --root is required\n");
    usage(argv[0]);
    return 2;
  }
  if (!std::filesystem::exists(std::filesystem::path(opt.root) / "src")) {
    std::fprintf(stderr, "malec_lint: '%s/src' does not exist\n",
                 opt.root.c_str());
    return 2;
  }
  if (!allowlist_path.empty()) {
    std::vector<std::string> errors;
    opt.allow = malec::lint::parseAllowlistFile(allowlist_path, errors);
    if (!errors.empty()) {
      for (const std::string& e : errors)
        std::fprintf(stderr, "malec_lint: %s\n", e.c_str());
      return 2;
    }
  }

  const malec::lint::Report report = malec::lint::runLint(opt);

  if (list_stateful) {
    for (const std::string& cls : report.stateful_classes)
      std::printf("%s\n", cls.c_str());
    return 0;
  }

  if (!report.findings.empty()) {
    std::fputs(malec::lint::formatFindings(report).c_str(), stdout);
    std::fprintf(stderr,
                 "malec_lint: FAILED — %zu finding(s). Fix them or waive "
                 "with // lint:no-state(reason) / // lint:allow(rule: "
                 "reason) / the allowlist.\n",
                 report.findings.size());
    return 1;
  }
  std::printf("malec_lint: OK — %zu stateful classes, 0 findings\n",
              report.stateful_classes.size());
  return 0;
}
