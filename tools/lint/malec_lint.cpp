// malec_lint — CLI driver. See lint.h for the rule inventory.
//
//   malec_lint --root <repo-root> [--allowlist <file>] [--rule <family>]
//              [--list-stateful | --emit-schema <dir>]
//
// Exit codes: 0 = clean, 1 = findings, 2 = usage/config error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

namespace fs = std::filesystem;

void usage(const char* argv0) {
  std::string families;
  for (const std::string& f : malec::lint::ruleFamilies())
    families += (families.empty() ? "" : ", ") + f;
  std::fprintf(
      stderr,
      "usage: %s --root <repo-root> [--allowlist <file>]\n"
      "          [--rule <family>]... [--list-stateful]\n"
      "          [--emit-schema <dir>]\n"
      "\n"
      "Scans <repo-root>/src (plus tools/ and bench/ for the determinism\n"
      "and strict-parse families) and enforces the repo contracts:\n"
      "  checkpoint-state  saveState/loadState must cover every member\n"
      "  ckpt-symmetry     saveState writes must mirror loadState reads\n"
      "  eventid           no string-keyed energy APIs in per-cycle dirs\n"
      "  determinism       no rand()/random_device/time()/*_clock::now()\n"
      "  udc-order         no unordered iteration near serialized output\n"
      "  strict-parse      no raw atoi/stoi/strtol outside parseU64Strict\n"
      "  layering          no #include pointing up the layer DAG\n"
      "  hot-alloc         no allocation in per-cycle dirs outside\n"
      "                    ctor/saveState/loadState bodies\n"
      "\n"
      "--rule <family> restricts the run to one family (repeatable);\n"
      "valid families: %s.\n"
      "--list-stateful prints the stateful-class inventory (one name per\n"
      "line) instead of linting — consumed by scripts/check_lint.sh to\n"
      "cross-check the test_checkpoint matrix.\n"
      "--emit-schema <dir> writes one <Class>.schema file per stateful\n"
      "class (the ordered .mckpt field layout) into <dir> and exits;\n"
      "goldens live under tools/lint/schemas/ and are diffed by\n"
      "scripts/check_lint.sh.\n",
      argv0, families.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  malec::lint::Options opt;
  std::string allowlist_path;
  std::string schema_dir;
  bool list_stateful = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      const std::string family = argv[++i];
      const auto& known = malec::lint::ruleFamilies();
      if (std::find(known.begin(), known.end(), family) == known.end()) {
        std::fprintf(stderr, "malec_lint: unknown rule family '%s'\n",
                     family.c_str());
        usage(argv[0]);
        return 2;
      }
      opt.rule_filter.push_back(family);
    } else if (arg == "--emit-schema" && i + 1 < argc) {
      schema_dir = argv[++i];
    } else if (arg == "--list-stateful") {
      list_stateful = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "malec_lint: unknown argument '%s'\n",
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (opt.root.empty()) {
    std::fprintf(stderr, "malec_lint: --root is required\n");
    usage(argv[0]);
    return 2;
  }
  if (list_stateful && !schema_dir.empty()) {
    std::fprintf(stderr,
                 "malec_lint: --list-stateful and --emit-schema are "
                 "mutually exclusive\n");
    return 2;
  }
  if (!fs::exists(fs::path(opt.root) / "src")) {
    std::fprintf(stderr, "malec_lint: '%s/src' does not exist\n",
                 opt.root.c_str());
    return 2;
  }
  if (!allowlist_path.empty()) {
    std::vector<std::string> errors;
    opt.allow = malec::lint::parseAllowlistFile(allowlist_path, errors);
    if (!errors.empty()) {
      for (const std::string& e : errors)
        std::fprintf(stderr, "malec_lint: %s\n", e.c_str());
      return 2;
    }
  }

  const malec::lint::Report report = malec::lint::runLint(opt);

  if (list_stateful) {
    for (const std::string& cls : report.stateful_classes)
      std::printf("%s\n", cls.c_str());
    return 0;
  }

  if (!schema_dir.empty()) {
    std::error_code ec;
    fs::create_directories(schema_dir, ec);
    if (ec) {
      std::fprintf(stderr, "malec_lint: cannot create '%s': %s\n",
                   schema_dir.c_str(), ec.message().c_str());
      return 2;
    }
    // Regeneration replaces the directory's schema set: stale .schema
    // files from renamed/deleted classes must not linger.
    for (const auto& entry : fs::directory_iterator(schema_dir)) {
      if (entry.path().extension() == ".schema")
        fs::remove(entry.path(), ec);
    }
    std::string prev_name;
    std::ofstream out;
    for (const malec::lint::ClassSchema& s : report.schemas) {
      if (s.class_name != prev_name) {
        out.close();
        out.open(fs::path(schema_dir) / (s.class_name + ".schema"),
                 std::ios::binary | std::ios::trunc);
        prev_name = s.class_name;
      } else {
        out << "\n";  // same-named class in another file: append block
      }
      if (!out) {
        std::fprintf(stderr, "malec_lint: cannot write schema for '%s'\n",
                     s.class_name.c_str());
        return 2;
      }
      out << malec::lint::formatSchema(s);
    }
    out.close();
    std::printf("malec_lint: wrote %zu schema(s) to %s\n",
                report.schemas.size(), schema_dir.c_str());
    return 0;
  }

  if (!report.findings.empty()) {
    std::fputs(malec::lint::formatFindings(report).c_str(), stdout);
    std::fprintf(stderr,
                 "malec_lint: FAILED — %zu finding(s). Fix them or waive "
                 "with // lint:no-state(reason) / // lint:allow(rule: "
                 "reason) / the allowlist.\n",
                 report.findings.size());
    return 1;
  }
  std::printf("malec_lint: OK — %zu stateful classes, 0 findings\n",
              report.stateful_classes.size());
  return 0;
}
