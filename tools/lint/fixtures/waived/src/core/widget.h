// Negative fixture for waiver handling: the same shapes the bad_* trees
// seed, each carrying a justified inline waiver (on the flagged line or
// the line directly above). Expected: zero findings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

struct StateWriter;
struct StateReader;

struct EnergyAccount {
  void count(const std::string&, std::uint64_t = 1) {}
};

class Widget {
 public:
  explicit Widget(EnergyAccount& ea) : ea_(ea) {
    // lint:allow(eventid: construction-time definition, not per-cycle)
    ea_.count("widget.built");
  }

  void tick() {
    // lint:allow(hot-alloc: samples ring retains its high-water capacity)
    samples_.push_back(value_);
  }

  void saveState(StateWriter& w) const { put(w, value_); }
  void loadState(StateReader& r) { value_ = get(r); }

 private:
  static void put(StateWriter&, std::uint64_t) {}
  static std::uint64_t get(StateReader&) { return 0; }

  EnergyAccount& ea_;  // lint:no-state(wiring ref; checkpoints itself)
  std::uint64_t value_ = 0;
  std::uint64_t scratch_ = 0;  // lint:no-state(per-cycle scratch; rebuilt every tick)
  std::vector<std::uint64_t> samples_;  // lint:no-state(diagnostic ring; rebuilt every run)
};

// A save/load pair the lexical symmetry pass cannot line up: save writes
// two fields through a helper each, load restores both through one
// bounds-checked helper. Semantically symmetric, so the class carries a
// reasoned waiver.
// lint:allow(ckpt-symmetry: restore() consumes exactly the two fields the save helpers write; runtime matrix pins the identity)
class Gauge {
 public:
  void saveState(StateWriter& w) const {
    put(w, ticks_);
    put(w, peak_);
  }
  void loadState(StateReader& r) { restore(r, ticks_, peak_); }

 private:
  static void put(StateWriter&, std::uint64_t) {}
  static void restore(StateReader&, std::uint64_t&, std::uint64_t&) {}

  std::uint64_t ticks_ = 0;
  std::uint64_t peak_ = 0;
};

}  // namespace fixture
