// Negative fixture for waiver handling: the same shapes the bad_* trees
// seed, each carrying a justified inline waiver (on the flagged line or
// the line directly above). Expected: zero findings.
#pragma once

#include <cstdint>
#include <string>

namespace fixture {

struct StateWriter;
struct StateReader;

struct EnergyAccount {
  void count(const std::string&, std::uint64_t = 1) {}
};

class Widget {
 public:
  explicit Widget(EnergyAccount& ea) : ea_(ea) {
    // lint:allow(eventid: construction-time definition, not per-cycle)
    ea_.count("widget.built");
  }

  void saveState(StateWriter& w) const { put(w, value_); }
  void loadState(StateReader& r) { value_ = get(r); }

 private:
  static void put(StateWriter&, std::uint64_t) {}
  static std::uint64_t get(StateReader&) { return 0; }

  EnergyAccount& ea_;  // lint:no-state(wiring ref; checkpoints itself)
  std::uint64_t value_ = 0;
  std::uint64_t scratch_ = 0;  // lint:no-state(per-cycle scratch; rebuilt every tick)
};

}  // namespace fixture
