// Wall-clock use waived at file scope: this fixture file is covered by
// tools/lint/allowlist.txt (determinism entry), mirroring how the real
// tree exempts the sweep coordinator's worker-supervision timers.
#include <chrono>

namespace fixture {

long long wallClockMs() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count() / 1000000;
}

}  // namespace fixture
