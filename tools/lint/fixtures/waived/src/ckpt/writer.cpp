// Inline udc-order waiver: the unordered container is copied out and
// sorted before any serialized byte is written, which is exactly the
// pattern the rule exists to force.
#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace fixture {

struct StateWriter {
  void u64(std::uint64_t) {}
};

void dump(StateWriter& w, const std::unordered_set<std::uint64_t>& live) {
  // lint:allow(udc-order: sorted below before any byte is written)
  std::vector<std::uint64_t> sorted(live.begin(), live.end());
  std::sort(sorted.begin(), sorted.end());
  w.u64(sorted.size());
  for (const std::uint64_t s : sorted) w.u64(s);
}

}  // namespace fixture
