// Inline strict-parse waiver: the result is range-checked on the next
// line, so the sloppy parse cannot smuggle a bad value further in.
#include <cstdlib>

namespace fixture {

int parsePercent(const char* arg) {
  const int v = std::atoi(arg);  // lint:allow(strict-parse: clamped to [0,100] below)
  if (v < 0) return 0;
  if (v > 100) return 100;
  return v;
}

}  // namespace fixture
