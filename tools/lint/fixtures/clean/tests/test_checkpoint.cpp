// Fixture checkpoint matrix matching the tree: drift check must pass.
// lint-checkpoint-matrix-begin
constexpr const char* kCheckpointAuditedClasses[] = {
    "Widget",
};
// lint-checkpoint-matrix-end
