// Positive fixture for the EventId rule (R2): string-keyed accounting and
// string allocation in a per-cycle directory (src/core). Expected: an
// eventid finding for the string-keyed count() and one for to_string.
#pragma once

#include <cstdint>
#include <string>

namespace fixture {

struct EnergyAccount {
  void count(const std::string&, std::uint64_t = 1) {}
};

class Pipeline {
 public:
  explicit Pipeline(EnergyAccount& ea) : ea_(ea) {}

  void tick() {
    // Per-cycle hot path: resolves the event name hash every access.
    ea_.count("l1.hit");
    label_ = std::to_string(cycle_);
    ++cycle_;
  }

 private:
  EnergyAccount& ea_;
  std::uint64_t cycle_ = 0;
  std::string label_;
};

}  // namespace fixture
