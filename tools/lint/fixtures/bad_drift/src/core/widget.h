// Negative fixture: a per-cycle-directory class that follows every repo
// contract. Expected: zero findings, stateful inventory == {Widget}.
#pragma once

#include <cstdint>
#include <vector>

namespace fixture {

struct StateWriter;
struct StateReader;

class Widget {
 public:
  void tick() { ++value_; }

  void saveState(StateWriter& w) const {
    put(w, value_);
    put(w, history_.size());
    for (const std::uint64_t h : history_) put(w, h);
  }
  void loadState(StateReader& r) {
    value_ = get(r);
    history_.assign(get(r), 0);
    for (auto& h : history_) h = get(r);
  }

 private:
  static void put(StateWriter&, std::uint64_t) {}
  static std::uint64_t get(StateReader&) { return 0; }

  std::uint64_t value_ = 0;
  std::vector<std::uint64_t> history_;
  std::uint32_t depth_limit_ = 8;  // lint:no-state(config; fixed at construction)
};

}  // namespace fixture
