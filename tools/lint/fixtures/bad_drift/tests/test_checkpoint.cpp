// Positive fixture for the drift check: the source tree's stateful class
// (Widget) is missing from the matrix, and the matrix audits a class
// (GhostUnit) that no longer exists. The lint itself is clean — only
// scripts/check_lint.sh's cross-check fails, in both directions.
// lint-checkpoint-matrix-begin
constexpr const char* kCheckpointAuditedClasses[] = {
    "GhostUnit",
};
// lint-checkpoint-matrix-end
