// Positive fixture for the schema-drift gate: the tree itself lints
// clean (symmetric save/load, every member serialized), but the
// committed golden under tools/lint/schemas/ records the two u64 fields
// in the opposite order — as if someone reordered the saveState body
// without regenerating. Expected: zero lint findings, check_lint.sh
// exit 1 from the regenerate-and-diff gate.
#pragma once

#include <cstdint>

namespace fixture {

struct StateWriter {
  void u64(std::uint64_t) {}
};
struct StateReader {
  std::uint64_t u64() { return 0; }
};

class Widget {
 public:
  void tick() { ++value_; }

  void saveState(StateWriter& w) const {
    w.u64(value_);
    w.u64(extra_);
  }
  void loadState(StateReader& r) {
    value_ = r.u64();
    extra_ = r.u64();
  }

 private:
  std::uint64_t value_ = 0;
  std::uint64_t extra_ = 0;
};

}  // namespace fixture
