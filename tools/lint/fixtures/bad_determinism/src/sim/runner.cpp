// Positive fixture for the determinism rule (R3a): wall-clock and libc
// randomness reaching simulated state. Expected: determinism findings for
// srand(), rand() and steady_clock::now().
#include <chrono>
#include <cstdlib>

namespace fixture {

int rollDice(unsigned seed) {
  std::srand(seed);
  return std::rand() % 6;
}

long long stampRun() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

}  // namespace fixture
