// Positive fixture for hot-alloc: a per-cycle class that allocates in
// its tick path. The constructor's push_back is exempt by design (the
// rule bans steady-state allocation, not setup); the one in tick() is
// the violation. Expected: exactly one hot-alloc finding.
#pragma once

#include <cstdint>
#include <vector>

namespace fixture {

class Pipeline {
 public:
  Pipeline() { slots_.push_back(0); }

  void tick() {
    slots_.push_back(next_);
    ++next_;
  }

 private:
  std::vector<std::uint64_t> slots_;
  std::uint64_t next_ = 1;
};

}  // namespace fixture
