// Positive fixture for layering: src/core reaching up the stack into
// src/sim. The layer DAG says core may depend on {common, ckpt, mem,
// tlb, waydet, lsq, energy} only. Expected: exactly one layering
// finding on the sim include (the ckpt include below is legal).
#pragma once

#include "ckpt/state_io.h"
#include "sim/suite.h"

namespace fixture {

inline int engineTick() { return 0; }

}  // namespace fixture
