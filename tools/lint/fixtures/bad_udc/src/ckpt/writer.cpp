// Positive fixture for the udc-order rule (R3b): this file writes
// serialized bytes (StateWriter) and iterates an unordered_map in hash
// order while doing so — checkpoint bytes would vary run to run.
// Expected: udc-order findings for the range-for and the .begin() copy.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

struct StateWriter {
  void u64(std::uint64_t) {}
};

void dump(StateWriter& w) {
  std::unordered_map<std::uint64_t, std::uint64_t> pending;
  pending[3] = 4;
  for (const auto& kv : pending) {
    w.u64(kv.first);
    w.u64(kv.second);
  }
  std::vector<std::uint64_t> keys;
  for (auto it = pending.begin(); it != pending.end(); ++it)
    keys.push_back(it->first);
  w.u64(keys.size());
}

}  // namespace fixture
