// Positive fixture for the strict-parse rule (R4): raw atoi/strtoul
// outside parseU64Strict's home accept sloppy numerics ("12abc" -> 12,
// overflow wraps). Expected: strict-parse findings for both calls.
#include <cstdlib>

namespace fixture {

unsigned long parseCount(const char* arg) {
  const int quick = std::atoi(arg);
  if (quick < 0) return 0;
  return std::strtoul(arg, nullptr, 10);
}

}  // namespace fixture
