// Positive fixture for the checkpoint-state rule (R1): `missed_` is
// mutated every tick but never serialized and never waived — a restored
// Widget would silently diverge. Expected: one checkpoint-state finding
// naming `missed_`.
#pragma once

#include <cstdint>

namespace fixture {

struct StateWriter;
struct StateReader;

class Widget {
 public:
  void tick() {
    ++value_;
    missed_ += value_;
  }

  void saveState(StateWriter& w) const { put(w, value_); }
  void loadState(StateReader& r) { value_ = get(r); }

 private:
  static void put(StateWriter&, std::uint64_t) {}
  static std::uint64_t get(StateReader&) { return 0; }

  std::uint64_t value_ = 0;
  std::uint64_t missed_ = 0;
};

}  // namespace fixture
