// Positive fixture for ckpt-symmetry: loadState reads the two fields in
// the opposite order (and widths) from the one saveState writes — the
// restored checkpoint would put flag_ bytes into value_. Expected:
// exactly one ckpt-symmetry finding (checkpoint-state is satisfied;
// both members appear in both bodies).
#pragma once

#include <cstdint>

namespace fixture {

struct StateWriter {
  void u64(std::uint64_t) {}
  void u8(std::uint8_t) {}
};
struct StateReader {
  std::uint64_t u64() { return 0; }
  std::uint8_t u8() { return 0; }
};

class Widget {
 public:
  void tick() { ++value_; }

  void saveState(StateWriter& w) const {
    w.u64(value_);
    w.u8(flag_);
  }
  void loadState(StateReader& r) {
    flag_ = r.u8();
    value_ = r.u64();
  }

 private:
  std::uint64_t value_ = 0;
  std::uint8_t flag_ = 0;
};

}  // namespace fixture
