#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace malec::lint {
namespace {

namespace fs = std::filesystem;

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool wordAt(const std::string& s, std::size_t pos, const std::string& word) {
  if (s.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && isIdentChar(s[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < s.size() && isIdentChar(s[end])) return false;
  return true;
}

/// Whole-word token presence anywhere in `s`.
bool containsWord(const std::string& s, const std::string& word) {
  for (std::size_t pos = s.find(word); pos != std::string::npos;
       pos = s.find(word, pos + 1)) {
    if (wordAt(s, pos, word)) return true;
  }
  return false;
}

std::size_t skipSpaces(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0)
    ++i;
  return i;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0)
    --e;
  return s.substr(b, e - b);
}

// --- waivers ----------------------------------------------------------------

struct Waiver {
  int line = 0;
  bool no_state = false;  ///< lint:no-state(reason)
  std::string rule;       ///< lint:allow(rule: reason)
  std::string reason;
};

/// Extract `lint:no-state(...)` / `lint:allow(...)` markers from the raw
/// (pre-scrub) text so waivers written in comments survive.
std::vector<Waiver> extractWaivers(const std::string& raw,
                                   std::vector<Finding>& findings,
                                   const std::string& rel_path) {
  std::vector<Waiver> out;
  int line = 1;
  std::size_t line_start = 0;
  auto scanLine = [&](std::size_t begin, std::size_t end) {
    const std::string text = raw.substr(begin, end - begin);
    for (const char* marker : {"lint:no-state(", "lint:allow("}) {
      std::size_t pos = text.find(marker);
      if (pos == std::string::npos) continue;
      const std::size_t open = pos + std::string(marker).size() - 1;
      const std::size_t close = text.find(')', open);
      if (close == std::string::npos) {
        findings.push_back({rel_path, line, "waiver-syntax",
                            "unterminated lint waiver (missing ')')"});
        continue;
      }
      const std::string inner = text.substr(open + 1, close - open - 1);
      Waiver w;
      w.line = line;
      if (std::string(marker) == "lint:no-state(") {
        w.no_state = true;
        w.reason = trim(inner);
      } else {
        const std::size_t colon = inner.find(':');
        w.rule = trim(colon == std::string::npos ? inner
                                                 : inner.substr(0, colon));
        w.reason = colon == std::string::npos
                       ? std::string()
                       : trim(inner.substr(colon + 1));
      }
      if (w.reason.empty()) {
        findings.push_back(
            {rel_path, line, "waiver-syntax",
             "lint waiver needs a non-empty reason, e.g. "
             "// lint:allow(determinism: wall-clock timeout only)"});
        continue;
      }
      if (!w.no_state && w.rule.empty()) {
        findings.push_back({rel_path, line, "waiver-syntax",
                            "lint:allow waiver needs a rule name"});
        continue;
      }
      out.push_back(w);
    }
  };
  for (std::size_t i = 0; i <= raw.size(); ++i) {
    if (i == raw.size() || raw[i] == '\n') {
      scanLine(line_start, i);
      line_start = i + 1;
      ++line;
    }
  }
  return out;
}

// --- scrubbing --------------------------------------------------------------

/// Replace comment text and string/char-literal *contents* with spaces
/// (delimiting quotes are kept so "literal present here" is still visible),
/// preserving every newline so line numbers survive.
std::string scrub(const std::string& raw) {
  std::string out = raw;
  std::size_t i = 0;
  const std::size_t n = raw.size();
  auto blank = [&](std::size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < n) {
    const char c = raw[i];
    if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
      while (i < n && raw[i] != '\n') blank(i++);
    } else if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
      blank(i++);
      blank(i++);
      while (i + 1 < n && !(raw[i] == '*' && raw[i + 1] == '/')) blank(i++);
      if (i + 1 < n) {
        blank(i++);
        blank(i++);
      }
    } else if (c == '"') {
      // Raw string literal? R"delim( ... )delim"
      bool is_raw = false;
      if (i > 0 && raw[i - 1] == 'R' &&
          (i < 2 || !isIdentChar(raw[i - 2]))) {
        is_raw = true;
      }
      if (is_raw) {
        std::size_t p = i + 1;
        std::string delim;
        while (p < n && raw[p] != '(') delim += raw[p++];
        const std::string closer = ")" + delim + "\"";
        const std::size_t close = raw.find(closer, p);
        const std::size_t end =
            close == std::string::npos ? n : close + closer.size();
        ++i;  // keep the opening quote
        while (i < end - (close == std::string::npos ? 0 : 1)) blank(i++);
        if (close != std::string::npos) ++i;  // keep the closing quote
      } else {
        ++i;  // keep the opening quote
        while (i < n && raw[i] != '"') {
          if (raw[i] == '\\' && i + 1 < n) blank(i++);
          blank(i++);
        }
        if (i < n) ++i;  // keep the closing quote
      }
    } else if (c == '\'') {
      // Digit separators (1'000'000) and UDLs follow an identifier char;
      // real char literals never do.
      if (i > 0 && isIdentChar(raw[i - 1])) {
        ++i;
        continue;
      }
      ++i;  // keep the opening quote
      while (i < n && raw[i] != '\'') {
        if (raw[i] == '\\' && i + 1 < n) blank(i++);
        blank(i++);
      }
      if (i < n) ++i;
    } else {
      ++i;
    }
  }
  return out;
}

// --- line bookkeeping -------------------------------------------------------

class LineIndex {
 public:
  explicit LineIndex(const std::string& text) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') starts_.push_back(i + 1);
    }
  }
  [[nodiscard]] int lineOf(std::size_t offset) const {
    const auto it =
        std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<int>(it - starts_.begin());
  }

 private:
  std::vector<std::size_t> starts_;
};

// --- brace/angle helpers ----------------------------------------------------

/// Offset just past the brace matching the '{' at `open` (or text.size()).
std::size_t matchBrace(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return text.size();
}

/// Remove the contents of balanced <...> groups (template args). `<` that
/// never closes (comparison) is left alone.
std::string stripAngles(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '<') {
      int depth = 1;
      std::size_t j = i + 1;
      for (; j < s.size() && depth > 0; ++j) {
        if (s[j] == '<') ++depth;
        if (s[j] == '>') --depth;
        if (s[j] == ';' || s[j] == '{') break;  // not a template group
      }
      if (depth == 0) {
        out += "<>";
        i = j - 1;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::string lastIdentifier(const std::string& s) {
  std::size_t end = s.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0)
    --end;
  std::size_t begin = end;
  while (begin > 0 && isIdentChar(s[begin - 1])) --begin;
  if (begin == end) return {};
  const std::string id = s.substr(begin, end - begin);
  if (std::isdigit(static_cast<unsigned char>(id[0])) != 0) return {};
  return id;
}

// --- per-file analysis state ------------------------------------------------

struct MemberDecl {
  std::string name;
  int line = 0;
};

struct ClassInfo {
  std::string name;
  std::string file;  ///< relative path of the defining header/source
  int line = 0;
  std::vector<MemberDecl> members;
  bool declares_save = false;
  bool declares_load = false;
  bool pure_save = false;
  bool pure_load = false;
  std::string save_body;  ///< inline or out-of-line definition text
  std::string load_body;
};

struct FileData {
  std::string rel_path;
  std::string raw;
  std::string scrubbed;
  std::vector<Waiver> waivers;
};

bool hasWaiver(const FileData& f, int line, const std::string& rule,
               bool want_no_state) {
  for (const Waiver& w : f.waivers) {
    if (w.line != line && w.line != line - 1) continue;
    if (want_no_state && w.no_state) return true;
    if (!want_no_state && !w.no_state && w.rule == rule) return true;
  }
  return false;
}

bool allowlisted(const Options& opt, const std::string& rel_path,
                 const std::string& rule) {
  for (const AllowEntry& e : opt.allow) {
    if (e.rule != rule) continue;
    if (rel_path.size() < e.path_suffix.size()) continue;
    if (rel_path.compare(rel_path.size() - e.path_suffix.size(),
                         e.path_suffix.size(), e.path_suffix) == 0)
      return true;
  }
  return false;
}

// --- class / member parsing (R1) --------------------------------------------

/// Walk one class body (scrubbed text in [begin, end)), collecting member
/// declarations, saveState/loadState declarations and inline bodies.
/// Nested classes are found by the outer scan; their bodies are skipped
/// here so their members don't leak into the enclosing class.
void walkClassBody(const std::string& text, std::size_t begin,
                   std::size_t end, const LineIndex& lines, ClassInfo& ci) {
  std::string buf;
  std::size_t buf_start = begin;  // offset of first char in buf
  bool buf_dirty = false;
  auto resetBuf = [&](std::size_t at) {
    buf.clear();
    buf_start = at;
    buf_dirty = false;
  };
  auto firstToken = [&]() {
    const std::string t = trim(buf);
    std::size_t e = 0;
    while (e < t.size() && isIdentChar(t[e])) ++e;
    return t.substr(0, e);
  };
  auto classify = [&](bool pure_candidate) {
    const std::string t = trim(buf);
    if (t.empty()) return;
    const std::string stripped = stripAngles(t);
    const bool is_function = stripped.find('(') != std::string::npos;
    if (is_function) {
      const bool pure =
          pure_candidate && stripped.find("= 0") != std::string::npos;
      if (containsWord(stripped, "saveState")) {
        ci.declares_save = true;
        ci.pure_save = pure;
      }
      if (containsWord(stripped, "loadState")) {
        ci.declares_load = true;
        ci.pure_load = pure;
      }
      return;
    }
    const std::string head = firstToken();
    static const std::set<std::string> kSkipHeads = {
        "using",  "typedef", "friend",   "template", "struct",
        "class",  "union",   "enum",     "public",   "protected",
        "private"};
    if (kSkipHeads.count(head) != 0) return;
    if (containsWord(stripped, "static") ||
        containsWord(stripped, "constexpr"))
      return;  // not instance state
    // Split top-level comma declarators: `int a_, b_;`
    std::vector<std::string> chunks;
    std::string cur;
    int bracket = 0;
    for (char c : stripped) {
      if (c == '[' || c == '(') ++bracket;
      if (c == ']' || c == ')') --bracket;
      if (c == ',' && bracket == 0) {
        chunks.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    chunks.push_back(cur);
    for (std::size_t ci_idx = 0; ci_idx < chunks.size(); ++ci_idx) {
      std::string chunk = chunks[ci_idx];
      // Truncate at initializer.
      for (const char stop : {'=', '{'}) {
        const std::size_t p = chunk.find(stop);
        if (p != std::string::npos) chunk = chunk.substr(0, p);
      }
      // Strip array extents.
      const std::size_t br = chunk.find('[');
      if (br != std::string::npos) chunk = chunk.substr(0, br);
      const std::string name = lastIdentifier(chunk);
      if (name.empty()) continue;
      // A lone identifier in the first chunk is a type name, not a
      // declarator (continuation chunks of `int a_, b_;` ARE lone).
      if (ci_idx == 0 && trim(chunk) == name) continue;
      ci.members.push_back({name, lines.lineOf(buf_start)});
    }
  };

  std::size_t i = begin;
  while (i < end) {
    const char c = text[i];
    if (c == '{') {
      const std::string stripped = stripAngles(buf);
      const bool fn = stripped.find('(') != std::string::npos;
      const std::string head = firstToken();
      const bool nested = head == "struct" || head == "class" ||
                          head == "union" || head == "enum";
      const std::size_t close = matchBrace(text, i);
      if (fn) {
        // Function definition (or a brace in its ctor-init-list). Capture
        // saveState/loadState inline bodies.
        const std::string body = text.substr(i, close - i);
        const std::size_t after = skipSpaces(text, close);
        const char nxt = after < end ? text[after] : ';';
        const bool continues = nxt == ':' || nxt == ',' || nxt == '{';
        if (!continues) {
          if (containsWord(stripped, "saveState")) {
            ci.declares_save = true;
            ci.save_body += body;
          }
          if (containsWord(stripped, "loadState")) {
            ci.declares_load = true;
            ci.load_body += body;
          }
          i = close;
          if (i < end && text[skipSpaces(text, i)] == ';')
            i = skipSpaces(text, i) + 1;
          resetBuf(i);
          continue;
        }
        i = close;
        continue;  // keep buffer: init-list continues
      }
      if (nested) {
        i = close;  // outer scan records the nested class separately
        // keep the buffer: `} name_;` declares a member of *this* class,
        // classified at the `;` (head `struct` is skipped unless a
        // declarator follows — handled below by rewriting the head).
        buf += " ";
        continue;
      }
      // Paren-less brace: member aggregate-init `staged_{}` — skip the
      // initializer, keep the declarator collected so far.
      i = close;
      buf += " =";  // ensure classify() truncates at the initializer
      continue;
    }
    if (c == ';') {
      const std::string head = firstToken();
      if ((head == "struct" || head == "class" || head == "union" ||
           head == "enum")) {
        // `struct Foo { ... } foo_;` / `struct Foo foo_;`: a declarator
        // identifier after the type name is a member of *this* class. A
        // plain nested definition or forward declaration ends with the
        // type name itself, which directly follows the keyword — skip.
        const std::string t = trim(buf);
        const std::string name = lastIdentifier(stripAngles(t));
        std::size_t p = skipSpaces(t, head.size());
        std::size_t e = p;
        while (e < t.size() && isIdentChar(t[e])) ++e;
        const std::string type_name = t.substr(p, e - p);
        if (!name.empty() && name != head && name != type_name)
          ci.members.push_back({name, lines.lineOf(buf_start)});
      } else {
        classify(true);
      }
      ++i;
      resetBuf(i);
      continue;
    }
    if (!buf_dirty &&
        std::isspace(static_cast<unsigned char>(c)) == 0) {
      buf_start = i;
      buf_dirty = true;
    }
    // Access-specifier labels clear the buffer.
    if (c == ':' && i + 1 < end && text[i + 1] != ':' &&
        (i == begin || text[i - 1] != ':')) {
      const std::string t = trim(buf);
      if (t == "public" || t == "private" || t == "protected" ||
          t == "signals") {
        ++i;
        resetBuf(i);
        continue;
      }
    }
    buf += c;
    ++i;
  }
}

/// Find every class/struct definition in scrubbed text (recursing into
/// nested bodies) and record those declaring saveState/loadState.
void scanClasses(const FileData& f, const LineIndex& lines,
                 std::vector<ClassInfo>& classes) {
  const std::string& text = f.scrubbed;
  for (std::size_t i = 0; i + 5 < text.size(); ++i) {
    const bool is_class = wordAt(text, i, "class");
    const bool is_struct = wordAt(text, i, "struct");
    if (!is_class && !is_struct) continue;
    // `enum class` is not a class.
    if (i >= 5) {
      std::size_t p = i;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(text[p - 1])) != 0)
        --p;
      if (p >= 4 && text.compare(p - 4, 4, "enum") == 0) continue;
    }
    std::size_t p = i + (is_class ? 5 : 6);
    p = skipSpaces(text, p);
    // Skip attributes / export macros (all-caps identifiers) before the
    // name: take the last identifier before ':' '{' ';' '<'.
    std::size_t name_begin = p;
    while (p < text.size() && isIdentChar(text[p])) ++p;
    const std::string name = text.substr(name_begin, p - name_begin);
    if (name.empty()) continue;
    p = skipSpaces(text, p);
    if (p < text.size() && text[p] == '<') continue;  // specialization
    // Scan to the body '{' or a ';' (forward decl) at paren depth 0.
    int paren = 0;
    std::size_t body = std::string::npos;
    for (std::size_t j = p; j < text.size(); ++j) {
      const char c = text[j];
      if (c == '(') ++paren;
      if (c == ')') --paren;
      if (paren == 0 && c == ';') break;
      if (paren == 0 && c == '{') {
        body = j;
        break;
      }
      if (c == '=') break;  // `using X = class ...`? bail out
    }
    if (body == std::string::npos) continue;
    const std::size_t close = matchBrace(text, body);
    ClassInfo ci;
    ci.name = name;
    ci.file = f.rel_path;
    ci.line = lines.lineOf(i);
    walkClassBody(text, body + 1, close > 0 ? close - 1 : close, lines,
                  ci);
    classes.push_back(std::move(ci));
  }
}

/// Attach out-of-line `X::saveState` / `X::loadState` bodies.
void attachOutOfLineBodies(const std::vector<const FileData*>& files,
                           std::vector<ClassInfo>& classes) {
  for (ClassInfo& ci : classes) {
    if (!ci.declares_save && !ci.declares_load) continue;
    for (const char* method : {"saveState", "loadState"}) {
      std::string& body =
          std::string(method) == "saveState" ? ci.save_body : ci.load_body;
      if (!body.empty()) continue;
      const std::string pattern = ci.name + "::" + method;
      for (const FileData* fp : files) {
        const std::string& text = fp->scrubbed;
        for (std::size_t pos = text.find(pattern);
             pos != std::string::npos;
             pos = text.find(pattern, pos + 1)) {
          if (pos > 0 && isIdentChar(text[pos - 1])) continue;
          const std::size_t open = text.find('{', pos);
          if (open == std::string::npos) continue;
          // Reject declarations (a ';' before the '{' means this wasn't
          // a definition).
          const std::string between = text.substr(pos, open - pos);
          if (between.find(';') != std::string::npos) continue;
          body += text.substr(open, matchBrace(text, open) - open);
          break;
        }
        if (!body.empty()) break;
      }
    }
  }
}

// --- token rules (R2/R3a/R4) ------------------------------------------------

struct TokenRule {
  std::string rule;
  std::string token;    ///< word-boundary token
  bool call_only;       ///< require '(' as the next non-space char
  bool string_keyed;    ///< require '"' right after the '('
  std::string message;
  bool scope_call = false;  ///< require the token be preceded by "::"
};

const std::vector<TokenRule>& determinismRules() {
  static const std::vector<TokenRule> kRules = {
      {"determinism", "rand", true, false,
       "rand() breaks seeded determinism — use common/rng.h Rng"},
      {"determinism", "srand", true, false,
       "srand() breaks seeded determinism — use common/rng.h Rng"},
      {"determinism", "random_device", false, false,
       "std::random_device is nondeterministic — seed a common/rng.h Rng"},
      {"determinism", "time", true, false,
       "time() makes runs irreproducible — derive everything from the "
       "seed"},
      {"determinism", "clock", true, false,
       "clock() makes runs irreproducible — derive everything from the "
       "seed"},
      {"determinism", "now", true, false,
       "*_clock::now() makes runs irreproducible — simulated state must "
       "be a pure function of the seed",
       /*scope_call=*/true},
  };
  return kRules;
}

const std::vector<TokenRule>& strictParseRules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> v;
    for (const char* fn :
         {"atoi", "atol", "atoll", "atof", "stoi", "stol", "stoll",
          "stoul", "stoull", "stof", "stod", "strtol", "strtoul",
          "strtoll", "strtoull", "strtof", "strtod", "sscanf"}) {
      v.push_back({"strict-parse", fn, true, false,
                   std::string(fn) +
                       "() accepts sloppy numerics — use "
                       "sim::parseU64Strict"});
    }
    return v;
  }();
  return kRules;
}

const std::vector<TokenRule>& eventIdRules() {
  static const std::vector<TokenRule> kRules = {
      {"eventid", "count", true, true,
       "string-keyed count() in a per-cycle directory — cache an EventId "
       "at construction and use count(EventId)"},
      {"eventid", "eventCount", true, true,
       "string-keyed eventCount() in a per-cycle directory — use the "
       "EventId overload"},
      {"eventid", "eventEnergyPj", true, true,
       "string-keyed eventEnergyPj() in a per-cycle directory — use the "
       "EventId overload"},
      {"eventid", "to_string", true, false,
       "to_string allocates — keep strings out of per-cycle directories"},
      {"eventid", "ostringstream", false, false,
       "string streams allocate — keep them out of per-cycle directories"},
      {"eventid", "stringstream", false, false,
       "string streams allocate — keep them out of per-cycle directories"},
  };
  return kRules;
}

void applyTokenRules(const Options& opt, const FileData& f,
                     const LineIndex& lines,
                     const std::vector<TokenRule>& rules,
                     std::vector<Finding>& findings) {
  const std::string& text = f.scrubbed;
  for (const TokenRule& r : rules) {
    if (allowlisted(opt, f.rel_path, r.rule)) continue;
    for (std::size_t pos = text.find(r.token); pos != std::string::npos;
         pos = text.find(r.token, pos + 1)) {
      if (!wordAt(text, pos, r.token)) continue;
      if (r.scope_call &&
          (pos < 2 || text.compare(pos - 2, 2, "::") != 0))
        continue;
      std::size_t after = skipSpaces(text, pos + r.token.size());
      if (r.call_only) {
        if (after >= text.size() || text[after] != '(') continue;
        if (r.string_keyed) {
          after = skipSpaces(text, after + 1);
          if (after >= text.size() || text[after] != '"') continue;
        }
        // `.count(` on containers is std::map/set API, not the energy
        // API — still flagged for `count` in per-cycle dirs ONLY when
        // string-keyed, which containers of strings would be; accept.
      }
      const int line = lines.lineOf(pos);
      if (hasWaiver(f, line, r.rule, false)) continue;
      findings.push_back({f.rel_path, line, r.rule, r.message});
    }
  }
}

// --- unordered-container ordering rule (R3b) --------------------------------

/// Collect identifiers declared with an unordered_map/unordered_set type
/// anywhere in the file (members and locals alike).
std::set<std::string> unorderedNames(const std::string& text) {
  std::set<std::string> names;
  for (const char* kw : {"unordered_map", "unordered_set"}) {
    for (std::size_t pos = text.find(kw); pos != std::string::npos;
         pos = text.find(kw, pos + 1)) {
      if (!wordAt(text, pos, kw)) continue;
      std::size_t p = skipSpaces(text, pos + std::string(kw).size());
      if (p >= text.size() || text[p] != '<') continue;
      int depth = 0;
      for (; p < text.size(); ++p) {
        if (text[p] == '<') ++depth;
        if (text[p] == '>' && --depth == 0) {
          ++p;
          break;
        }
        if (text[p] == ';') break;
      }
      if (depth != 0) continue;
      p = skipSpaces(text, p);
      if (p < text.size() && text[p] == '&') p = skipSpaces(text, p + 1);
      std::size_t b = p;
      while (p < text.size() && isIdentChar(text[p])) ++p;
      if (p > b) names.insert(text.substr(b, p - b));
    }
  }
  return names;
}

bool writesSerializedBytes(const std::string& text) {
  return containsWord(text, "StateWriter") ||
         containsWord(text, "ResultSink");
}

void applyUnorderedOrderRule(const Options& opt, const FileData& f,
                             const LineIndex& lines,
                             const std::set<std::string>& global_names,
                             std::vector<Finding>& findings) {
  if (allowlisted(opt, f.rel_path, "udc-order")) return;
  const std::string& text = f.scrubbed;
  if (!writesSerializedBytes(text)) return;
  // Names declared unordered anywhere in the scanned tree: a member
  // declared in the header is iterated from the .cpp.
  const std::set<std::string>& names = global_names;
  if (names.empty()) return;
  std::set<std::pair<int, std::string>> flagged;  // dedupe per line+name
  auto flag = [&](std::size_t pos, const std::string& name,
                  const std::string& what) {
    const int line = lines.lineOf(pos);
    if (hasWaiver(f, line, "udc-order", false)) return;
    if (!flagged.insert({line, name}).second) return;
    findings.push_back(
        {f.rel_path, line, "udc-order",
         what + " over unordered container '" + name +
             "' in a file that writes serialized bytes — hash order "
             "must never reach checkpoints or reports; sort into a "
             "vector first (then waive the sorted copy)"});
  };
  // Range-for: `for (decl : expr)` where expr's last identifier is an
  // unordered container.
  for (std::size_t pos = text.find("for"); pos != std::string::npos;
       pos = text.find("for", pos + 1)) {
    if (!wordAt(text, pos, "for")) continue;
    std::size_t p = skipSpaces(text, pos + 3);
    if (p >= text.size() || text[p] != '(') continue;
    int depth = 0;
    std::size_t close = p;
    for (; close < text.size(); ++close) {
      if (text[close] == '(') ++depth;
      if (text[close] == ')' && --depth == 0) break;
    }
    if (close >= text.size()) continue;
    const std::string inner = text.substr(p + 1, close - p - 1);
    // top-level single ':' split (ignore '::')
    std::size_t colon = std::string::npos;
    int d2 = 0;
    for (std::size_t k = 0; k < inner.size(); ++k) {
      const char ch = inner[k];
      if (ch == '(' || ch == '[' || ch == '{' || ch == '<') ++d2;
      if (ch == ')' || ch == ']' || ch == '}' || ch == '>') --d2;
      if (ch == ':' && d2 == 0) {
        if (k + 1 < inner.size() && inner[k + 1] == ':') {
          ++k;
          continue;
        }
        if (k > 0 && inner[k - 1] == ':') continue;
        colon = k;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = trim(inner.substr(colon + 1));
    const std::string name = lastIdentifier(range);
    if (!name.empty() && names.count(name) != 0)
      flag(pos, name, "range-for");
  }
  // begin()/cbegin() on a known unordered name starts an iteration in
  // hash order (`find(x) != end()` alone is an order-free lookup, so a
  // bare .end() is not flagged).
  for (const std::string& name : names) {
    for (std::size_t pos = text.find(name); pos != std::string::npos;
         pos = text.find(name, pos + 1)) {
      if (!wordAt(text, pos, name)) continue;
      std::size_t p = pos + name.size();
      if (p >= text.size() || text[p] != '.') continue;
      ++p;
      for (const char* m : {"begin", "cbegin"}) {
        if (wordAt(text, p, m)) {
          const std::size_t q = skipSpaces(text, p + std::string(m).size());
          if (q < text.size() && text[q] == '(')
            flag(pos, name, std::string(".") + m + "()");
        }
      }
    }
  }
}

// --- checkpoint completeness (R1) -------------------------------------------

void applyCheckpointRule(const Options& opt,
                         const std::map<std::string, FileData>& files,
                         std::vector<ClassInfo>& classes,
                         std::vector<Finding>& findings,
                         std::vector<std::string>& stateful) {
  for (ClassInfo& ci : classes) {
    if (!(ci.declares_save && ci.declares_load)) continue;
    if (ci.pure_save || ci.pure_load) continue;  // abstract interface
    stateful.push_back(ci.name);
    if (allowlisted(opt, ci.file, "checkpoint-state")) continue;
    const FileData& f = files.at(ci.file);
    if (ci.save_body.empty() || ci.load_body.empty()) {
      findings.push_back(
          {ci.file, ci.line, "checkpoint-state",
           "could not locate the " +
               std::string(ci.save_body.empty() ? "saveState"
                                                : "loadState") +
               " definition for stateful class '" + ci.name + "'"});
      continue;
    }
    for (const MemberDecl& m : ci.members) {
      const bool in_save = containsWord(ci.save_body, m.name);
      const bool in_load = containsWord(ci.load_body, m.name);
      if (in_save && in_load) continue;
      if (hasWaiver(f, m.line, "checkpoint-state", true)) continue;
      std::string where =
          !in_save && !in_load
              ? "saveState or loadState"
              : (!in_save ? "saveState" : "loadState");
      findings.push_back(
          {ci.file, m.line, "checkpoint-state",
           "member '" + m.name + "' of stateful class '" + ci.name +
               "' is not referenced in " + where +
               " — serialize it or waive with // lint:no-state(reason)"});
    }
  }
  std::sort(stateful.begin(), stateful.end());
  stateful.erase(std::unique(stateful.begin(), stateful.end()),
                 stateful.end());
}

}  // namespace

// --- public API -------------------------------------------------------------

std::vector<AllowEntry> parseAllowlistFile(
    const std::string& path, std::vector<std::string>& errors) {
  std::vector<AllowEntry> out;
  std::ifstream in(path);
  if (!in) {
    errors.push_back("cannot open allowlist '" + path + "'");
    return out;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream ss(t);
    AllowEntry e;
    ss >> e.rule >> e.path_suffix;
    std::getline(ss, e.reason);
    e.reason = trim(e.reason);
    if (e.rule.empty() || e.path_suffix.empty() || e.reason.empty()) {
      errors.push_back(path + ":" + std::to_string(lineno) +
                       ": allowlist entries are '<rule> <path-suffix> "
                       "<reason>' — reason is mandatory");
      continue;
    }
    out.push_back(e);
  }
  return out;
}

Report runLint(const Options& opt) {
  Report report;

  // Collect files (sorted for determinism).
  std::vector<std::string> rel_paths;
  for (const std::string& dir : opt.scan_dirs) {
    const fs::path base = fs::path(opt.root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc")
        continue;
      rel_paths.push_back(
          fs::relative(entry.path(), fs::path(opt.root)).generic_string());
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::map<std::string, FileData> files;
  for (const std::string& rel : rel_paths) {
    FileData f;
    f.rel_path = rel;
    std::ifstream in(fs::path(opt.root) / rel, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    f.raw = ss.str();
    f.waivers = extractWaivers(f.raw, report.findings, rel);
    f.scrubbed = scrub(f.raw);
    files.emplace(rel, std::move(f));
  }

  auto inPerCycleDir = [&](const std::string& rel) {
    for (const std::string& d : opt.per_cycle_dirs) {
      if (rel.rfind(d + "/", 0) == 0) return true;
    }
    return false;
  };

  std::set<std::string> all_unordered;
  for (const std::string& rel : rel_paths) {
    const std::set<std::string> names =
        unorderedNames(files.at(rel).scrubbed);
    all_unordered.insert(names.begin(), names.end());
  }

  std::vector<ClassInfo> classes;
  for (const std::string& rel : rel_paths) {
    const FileData& f = files.at(rel);
    const LineIndex lines(f.scrubbed);
    applyTokenRules(opt, f, lines, determinismRules(), report.findings);
    applyTokenRules(opt, f, lines, strictParseRules(), report.findings);
    if (inPerCycleDir(rel))
      applyTokenRules(opt, f, lines, eventIdRules(), report.findings);
    applyUnorderedOrderRule(opt, f, lines, all_unordered, report.findings);
    scanClasses(f, lines, classes);
  }

  std::vector<const FileData*> file_list;
  file_list.reserve(files.size());
  for (const auto& [rel, f] : files) file_list.push_back(&f);
  attachOutOfLineBodies(file_list, classes);
  applyCheckpointRule(opt, files, classes, report.findings,
                      report.stateful_classes);

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

std::string formatFindings(const Report& report) {
  std::ostringstream out;
  for (const Finding& f : report.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

}  // namespace malec::lint
