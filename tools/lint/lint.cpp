#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace malec::lint {
namespace {

namespace fs = std::filesystem;

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool wordAt(const std::string& s, std::size_t pos, const std::string& word) {
  if (s.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && isIdentChar(s[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < s.size() && isIdentChar(s[end])) return false;
  return true;
}

/// Whole-word token presence anywhere in `s`.
bool containsWord(const std::string& s, const std::string& word) {
  for (std::size_t pos = s.find(word); pos != std::string::npos;
       pos = s.find(word, pos + 1)) {
    if (wordAt(s, pos, word)) return true;
  }
  return false;
}

std::size_t skipSpaces(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0)
    ++i;
  return i;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0)
    --e;
  return s.substr(b, e - b);
}

/// Collapse whitespace runs to single spaces and trim — schema lines and
/// finding details must not depend on source formatting.
std::string normalizeSpace(const std::string& s) {
  std::string out;
  bool pending = false;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending = !out.empty();
      continue;
    }
    if (pending) out += ' ';
    pending = false;
    out += c;
  }
  return out;
}

// --- waivers ----------------------------------------------------------------

struct Waiver {
  int line = 0;
  bool no_state = false;  ///< lint:no-state(reason)
  std::string rule;       ///< lint:allow(rule: reason)
  std::string reason;
};

/// Extract `lint:no-state` / `lint:allow` waiver markers. The input is
/// the string-blanked (comments kept) text: waivers live in comments, and
/// literals spelling a marker must not register as waivers.
std::vector<Waiver> extractWaivers(const std::string& raw,
                                   std::vector<Finding>& findings,
                                   const std::string& rel_path) {
  std::vector<Waiver> out;
  int line = 1;
  std::size_t line_start = 0;
  auto scanLine = [&](std::size_t begin, std::size_t end) {
    const std::string text = raw.substr(begin, end - begin);
    for (const char* marker : {"lint:no-state(", "lint:allow("}) {
      std::size_t pos = text.find(marker);
      if (pos == std::string::npos) continue;
      const std::size_t open = pos + std::string(marker).size() - 1;
      const std::size_t close = text.find(')', open);
      if (close == std::string::npos) {
        findings.push_back({rel_path, line, "waiver-syntax",
                            "unterminated lint waiver (missing ')')"});
        continue;
      }
      const std::string inner = text.substr(open + 1, close - open - 1);
      Waiver w;
      w.line = line;
      if (std::string(marker) == "lint:no-state(") {
        w.no_state = true;
        w.reason = trim(inner);
      } else {
        const std::size_t colon = inner.find(':');
        w.rule = trim(colon == std::string::npos ? inner
                                                 : inner.substr(0, colon));
        w.reason = colon == std::string::npos
                       ? std::string()
                       : trim(inner.substr(colon + 1));
      }
      if (w.reason.empty()) {
        findings.push_back(
            {rel_path, line, "waiver-syntax",
             "lint waiver needs a non-empty reason, e.g. "
             "// lint:allow(determinism: wall-clock timeout only)"});
        continue;
      }
      if (!w.no_state && w.rule.empty()) {
        findings.push_back({rel_path, line, "waiver-syntax",
                            "lint:allow waiver needs a rule name"});
        continue;
      }
      out.push_back(w);
    }
  };
  for (std::size_t i = 0; i <= raw.size(); ++i) {
    if (i == raw.size() || raw[i] == '\n') {
      scanLine(line_start, i);
      line_start = i + 1;
      ++line;
    }
  }
  return out;
}

// --- scrubbing --------------------------------------------------------------

/// Replace string/char-literal *contents* — and, when `blank_comments`,
/// comment text — with spaces (delimiting quotes are kept so "literal
/// present here" is still visible), preserving every newline so line
/// numbers survive. Waiver extraction scrubs literals but keeps comments
/// (waivers live in comments; a rule-message string that happens to spell
/// a waiver marker must not register).
std::string scrub(const std::string& raw, bool blank_comments = true) {
  std::string out = raw;
  std::size_t i = 0;
  const std::size_t n = raw.size();
  auto blank = [&](std::size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < n) {
    const char c = raw[i];
    if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
      while (i < n && raw[i] != '\n') {
        if (blank_comments) blank(i);
        ++i;
      }
    } else if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
      auto step = [&] {
        if (blank_comments) blank(i);
        ++i;
      };
      step();
      step();
      while (i + 1 < n && !(raw[i] == '*' && raw[i + 1] == '/')) step();
      if (i + 1 < n) {
        step();
        step();
      }
    } else if (c == '"') {
      // Raw string literal? R"delim( ... )delim"
      bool is_raw = false;
      if (i > 0 && raw[i - 1] == 'R' &&
          (i < 2 || !isIdentChar(raw[i - 2]))) {
        is_raw = true;
      }
      if (is_raw) {
        std::size_t p = i + 1;
        std::string delim;
        while (p < n && raw[p] != '(') delim += raw[p++];
        const std::string closer = ")" + delim + "\"";
        const std::size_t close = raw.find(closer, p);
        const std::size_t end =
            close == std::string::npos ? n : close + closer.size();
        ++i;  // keep the opening quote
        while (i < end - (close == std::string::npos ? 0 : 1)) blank(i++);
        if (close != std::string::npos) ++i;  // keep the closing quote
      } else {
        ++i;  // keep the opening quote
        while (i < n && raw[i] != '"') {
          if (raw[i] == '\\' && i + 1 < n) blank(i++);
          blank(i++);
        }
        if (i < n) ++i;  // keep the closing quote
      }
    } else if (c == '\'') {
      // Digit separators (1'000'000) and UDLs follow an identifier char;
      // real char literals never do.
      if (i > 0 && isIdentChar(raw[i - 1])) {
        ++i;
        continue;
      }
      ++i;  // keep the opening quote
      while (i < n && raw[i] != '\'') {
        if (raw[i] == '\\' && i + 1 < n) blank(i++);
        blank(i++);
      }
      if (i < n) ++i;
    } else {
      ++i;
    }
  }
  return out;
}

// --- line bookkeeping -------------------------------------------------------

class LineIndex {
 public:
  explicit LineIndex(const std::string& text) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') starts_.push_back(i + 1);
    }
  }
  [[nodiscard]] int lineOf(std::size_t offset) const {
    const auto it =
        std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<int>(it - starts_.begin());
  }

 private:
  std::vector<std::size_t> starts_;
};

// --- brace/angle helpers ----------------------------------------------------

/// Offset just past the brace matching the '{' at `open` (or text.size()).
std::size_t matchBrace(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return text.size();
}

/// Offset just past the paren matching the '(' at `open` (or text.size()).
std::size_t matchParen(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i + 1;
  }
  return text.size();
}

/// Remove the contents of balanced <...> groups (template args). `<` that
/// never closes (comparison) is left alone.
std::string stripAngles(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '<') {
      int depth = 1;
      std::size_t j = i + 1;
      for (; j < s.size() && depth > 0; ++j) {
        if (s[j] == '<') ++depth;
        if (s[j] == '>') --depth;
        if (s[j] == ';' || s[j] == '{') break;  // not a template group
      }
      if (depth == 0) {
        out += "<>";
        i = j - 1;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::string lastIdentifier(const std::string& s) {
  std::size_t end = s.size();
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0)
    --end;
  std::size_t begin = end;
  while (begin > 0 && isIdentChar(s[begin - 1])) --begin;
  if (begin == end) return {};
  const std::string id = s.substr(begin, end - begin);
  if (std::isdigit(static_cast<unsigned char>(id[0])) != 0) return {};
  return id;
}

/// Parameter name of a saveState/loadState signature: the last identifier
/// inside the first balanced paren group (`(ckpt::StateWriter& w) const`
/// -> "w"). Empty when no paren group or no parameter.
std::string signatureParamName(const std::string& signature) {
  const std::size_t open = signature.find('(');
  if (open == std::string::npos) return {};
  const std::size_t close = matchParen(signature, open);
  if (close <= open + 2) return {};  // "()" or unbalanced
  std::string inner = signature.substr(open + 1, close - open - 2);
  // Drop a default argument if one ever appears.
  const std::size_t eq = inner.find('=');
  if (eq != std::string::npos) inner = inner.substr(0, eq);
  return lastIdentifier(inner);
}

// --- per-file analysis state ------------------------------------------------

struct MemberDecl {
  std::string name;
  int line = 0;
};

/// Where one saveState/loadState definition body lives — the symmetry
/// pass anchors findings and waiver lookups here.
struct MethodDef {
  std::string file;
  int line = 0;
  std::string param;  ///< the StateWriter/StateReader parameter name
};

struct ClassInfo {
  std::string name;
  std::string file;  ///< relative path of the defining header/source
  int line = 0;
  std::vector<MemberDecl> members;
  bool declares_save = false;
  bool declares_load = false;
  bool pure_save = false;
  bool pure_load = false;
  std::string save_body;  ///< inline or out-of-line definition text
  std::string load_body;
  MethodDef save_def;
  MethodDef load_def;
};

/// [begin, end) offset ranges exempt from the hot-alloc rule: constructor,
/// destructor, saveState and loadState bodies.
using ExemptRanges = std::vector<std::pair<std::size_t, std::size_t>>;

struct FileData {
  std::string rel_path;
  std::string raw;
  std::string scrubbed;
  std::vector<Waiver> waivers;
  /// Restricted files (tools/, bench/) get only the determinism and
  /// strict-parse families — they never serialize simulated state.
  bool restricted = false;
  ExemptRanges alloc_exempt;
};

bool hasWaiver(const FileData& f, int line, const std::string& rule,
               bool want_no_state) {
  for (const Waiver& w : f.waivers) {
    if (w.line != line && w.line != line - 1) continue;
    if (want_no_state && w.no_state) return true;
    if (!want_no_state && !w.no_state && w.rule == rule) return true;
  }
  return false;
}

bool hasWaiverIn(const std::map<std::string, FileData>& files,
                 const std::string& rel_path, int line,
                 const std::string& rule) {
  const auto it = files.find(rel_path);
  return it != files.end() && hasWaiver(it->second, line, rule, false);
}

/// Component-boundary-aware suffix match: `core/foo.h` matches
/// `src/core/foo.h` but NOT `src/othercore/foo.h` — the suffix must be
/// the whole path or begin right after a '/'.
bool pathSuffixMatches(const std::string& rel_path,
                       const std::string& suffix) {
  if (rel_path.size() < suffix.size()) return false;
  if (rel_path.compare(rel_path.size() - suffix.size(), suffix.size(),
                       suffix) != 0)
    return false;
  if (rel_path.size() == suffix.size()) return true;
  return rel_path[rel_path.size() - suffix.size() - 1] == '/';
}

bool allowlisted(const Options& opt, const std::string& rel_path,
                 const std::string& rule) {
  for (const AllowEntry& e : opt.allow) {
    if (e.rule != rule) continue;
    if (pathSuffixMatches(rel_path, e.path_suffix)) return true;
  }
  return false;
}

bool ruleEnabled(const Options& opt, const std::string& rule) {
  if (opt.rule_filter.empty()) return true;
  return std::find(opt.rule_filter.begin(), opt.rule_filter.end(), rule) !=
         opt.rule_filter.end();
}

// --- class / member parsing (R1) --------------------------------------------

/// Walk one class body (scrubbed text in [begin, end)), collecting member
/// declarations, saveState/loadState declarations and inline bodies, and
/// the hot-alloc-exempt body ranges (ctor/dtor/saveState/loadState).
/// Nested classes are found by the outer scan; their bodies are skipped
/// here so their members don't leak into the enclosing class.
void walkClassBody(const std::string& text, std::size_t begin,
                   std::size_t end, const LineIndex& lines,
                   const std::string& rel_path, ClassInfo& ci,
                   ExemptRanges& exempt) {
  std::string buf;
  std::size_t buf_start = begin;  // offset of first char in buf
  bool buf_dirty = false;
  auto resetBuf = [&](std::size_t at) {
    buf.clear();
    buf_start = at;
    buf_dirty = false;
  };
  auto firstToken = [&]() {
    const std::string t = trim(buf);
    std::size_t e = 0;
    while (e < t.size() && isIdentChar(t[e])) ++e;
    return t.substr(0, e);
  };
  auto classify = [&](bool pure_candidate) {
    const std::string t = trim(buf);
    if (t.empty()) return;
    const std::string stripped = stripAngles(t);
    const bool is_function = stripped.find('(') != std::string::npos;
    if (is_function) {
      const bool pure =
          pure_candidate && stripped.find("= 0") != std::string::npos;
      if (containsWord(stripped, "saveState")) {
        ci.declares_save = true;
        ci.pure_save = pure;
      }
      if (containsWord(stripped, "loadState")) {
        ci.declares_load = true;
        ci.pure_load = pure;
      }
      return;
    }
    const std::string head = firstToken();
    static const std::set<std::string> kSkipHeads = {
        "using",  "typedef", "friend",   "template", "struct",
        "class",  "union",   "enum",     "public",   "protected",
        "private"};
    if (kSkipHeads.count(head) != 0) return;
    if (containsWord(stripped, "static") ||
        containsWord(stripped, "constexpr"))
      return;  // not instance state
    // Split top-level comma declarators: `int a_, b_;`
    std::vector<std::string> chunks;
    std::string cur;
    int bracket = 0;
    for (char c : stripped) {
      if (c == '[' || c == '(') ++bracket;
      if (c == ']' || c == ')') --bracket;
      if (c == ',' && bracket == 0) {
        chunks.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    chunks.push_back(cur);
    for (std::size_t ci_idx = 0; ci_idx < chunks.size(); ++ci_idx) {
      std::string chunk = chunks[ci_idx];
      // Truncate at initializer.
      for (const char stop : {'=', '{'}) {
        const std::size_t p = chunk.find(stop);
        if (p != std::string::npos) chunk = chunk.substr(0, p);
      }
      // Strip array extents.
      const std::size_t br = chunk.find('[');
      if (br != std::string::npos) chunk = chunk.substr(0, br);
      const std::string name = lastIdentifier(chunk);
      if (name.empty()) continue;
      // A lone identifier in the first chunk is a type name, not a
      // declarator (continuation chunks of `int a_, b_;` ARE lone).
      if (ci_idx == 0 && trim(chunk) == name) continue;
      ci.members.push_back({name, lines.lineOf(buf_start)});
    }
  };

  std::size_t i = begin;
  while (i < end) {
    const char c = text[i];
    if (c == '{') {
      const std::string stripped = stripAngles(buf);
      const bool fn = stripped.find('(') != std::string::npos;
      const std::string head = firstToken();
      const bool nested = head == "struct" || head == "class" ||
                          head == "union" || head == "enum";
      const std::size_t close = matchBrace(text, i);
      if (fn) {
        // Function definition (or a brace in its ctor-init-list). Capture
        // saveState/loadState inline bodies.
        const std::string body = text.substr(i, close - i);
        const std::size_t after = skipSpaces(text, close);
        const char nxt = after < end ? text[after] : ';';
        const bool continues = nxt == ':' || nxt == ',' || nxt == '{';
        if (!continues) {
          // Function name = last identifier before the signature's
          // first '(' — tells ctors/dtors and the state methods apart.
          const std::size_t sig_paren = stripped.find('(');
          const std::string fname =
              lastIdentifier(stripped.substr(0, sig_paren));
          if (containsWord(stripped, "saveState")) {
            ci.declares_save = true;
            ci.save_body += body;
            ci.save_def = {rel_path, lines.lineOf(buf_start),
                           signatureParamName(stripped)};
          }
          if (containsWord(stripped, "loadState")) {
            ci.declares_load = true;
            ci.load_body += body;
            ci.load_def = {rel_path, lines.lineOf(buf_start),
                           signatureParamName(stripped)};
          }
          if (fname == ci.name || fname == "saveState" ||
              fname == "loadState")
            exempt.push_back({i, close});
          i = close;
          if (i < end && text[skipSpaces(text, i)] == ';')
            i = skipSpaces(text, i) + 1;
          resetBuf(i);
          continue;
        }
        i = close;
        continue;  // keep buffer: init-list continues
      }
      if (nested) {
        i = close;  // outer scan records the nested class separately
        // keep the buffer: `} name_;` declares a member of *this* class,
        // classified at the `;` (head `struct` is skipped unless a
        // declarator follows — handled below by rewriting the head).
        buf += " ";
        continue;
      }
      // Paren-less brace: member aggregate-init `staged_{}` — skip the
      // initializer, keep the declarator collected so far.
      i = close;
      buf += " =";  // ensure classify() truncates at the initializer
      continue;
    }
    if (c == ';') {
      const std::string head = firstToken();
      if ((head == "struct" || head == "class" || head == "union" ||
           head == "enum")) {
        // `struct Foo { ... } foo_;` / `struct Foo foo_;`: a declarator
        // identifier after the type name is a member of *this* class. A
        // plain nested definition or forward declaration ends with the
        // type name itself, which directly follows the keyword — skip.
        const std::string t = trim(buf);
        const std::string name = lastIdentifier(stripAngles(t));
        std::size_t p = skipSpaces(t, head.size());
        std::size_t e = p;
        while (e < t.size() && isIdentChar(t[e])) ++e;
        const std::string type_name = t.substr(p, e - p);
        if (!name.empty() && name != head && name != type_name)
          ci.members.push_back({name, lines.lineOf(buf_start)});
      } else {
        classify(true);
      }
      ++i;
      resetBuf(i);
      continue;
    }
    if (!buf_dirty &&
        std::isspace(static_cast<unsigned char>(c)) == 0) {
      buf_start = i;
      buf_dirty = true;
    }
    // Access-specifier labels clear the buffer.
    if (c == ':' && i + 1 < end && text[i + 1] != ':' &&
        (i == begin || text[i - 1] != ':')) {
      const std::string t = trim(buf);
      if (t == "public" || t == "private" || t == "protected" ||
          t == "signals") {
        ++i;
        resetBuf(i);
        continue;
      }
    }
    buf += c;
    ++i;
  }
}

/// Find every class/struct definition in scrubbed text (recursing into
/// nested bodies) and record those declaring saveState/loadState.
void scanClasses(FileData& f, const LineIndex& lines,
                 std::vector<ClassInfo>& classes) {
  const std::string& text = f.scrubbed;
  for (std::size_t i = 0; i + 5 < text.size(); ++i) {
    const bool is_class = wordAt(text, i, "class");
    const bool is_struct = wordAt(text, i, "struct");
    if (!is_class && !is_struct) continue;
    // `enum class` is not a class.
    if (i >= 5) {
      std::size_t p = i;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(text[p - 1])) != 0)
        --p;
      if (p >= 4 && text.compare(p - 4, 4, "enum") == 0) continue;
    }
    std::size_t p = i + (is_class ? 5 : 6);
    p = skipSpaces(text, p);
    // Skip attributes / export macros (all-caps identifiers) before the
    // name: take the last identifier before ':' '{' ';' '<'.
    std::size_t name_begin = p;
    while (p < text.size() && isIdentChar(text[p])) ++p;
    const std::string name = text.substr(name_begin, p - name_begin);
    if (name.empty()) continue;
    p = skipSpaces(text, p);
    if (p < text.size() && text[p] == '<') continue;  // specialization
    // Scan to the body '{' or a ';' (forward decl) at paren depth 0.
    int paren = 0;
    std::size_t body = std::string::npos;
    for (std::size_t j = p; j < text.size(); ++j) {
      const char c = text[j];
      if (c == '(') ++paren;
      if (c == ')') --paren;
      if (paren == 0 && c == ';') break;
      if (paren == 0 && c == '{') {
        body = j;
        break;
      }
      if (c == '=') break;  // `using X = class ...`? bail out
    }
    if (body == std::string::npos) continue;
    const std::size_t close = matchBrace(text, body);
    ClassInfo ci;
    ci.name = name;
    ci.file = f.rel_path;
    ci.line = lines.lineOf(i);
    walkClassBody(text, body + 1, close > 0 ? close - 1 : close, lines,
                  f.rel_path, ci, f.alloc_exempt);
    classes.push_back(std::move(ci));
  }
}

/// Attach out-of-line `X::saveState` / `X::loadState` bodies, recording
/// the defining file/line and parameter name for the symmetry pass.
void attachOutOfLineBodies(const std::vector<FileData*>& files,
                           std::vector<ClassInfo>& classes) {
  for (ClassInfo& ci : classes) {
    if (!ci.declares_save && !ci.declares_load) continue;
    for (const char* method : {"saveState", "loadState"}) {
      const bool is_save = std::string(method) == "saveState";
      std::string& body = is_save ? ci.save_body : ci.load_body;
      MethodDef& def = is_save ? ci.save_def : ci.load_def;
      if (!body.empty()) continue;
      const std::string pattern = ci.name + "::" + method;
      for (const FileData* fp : files) {
        if (fp->restricted) continue;
        const std::string& text = fp->scrubbed;
        for (std::size_t pos = text.find(pattern);
             pos != std::string::npos;
             pos = text.find(pattern, pos + 1)) {
          if (pos > 0 && isIdentChar(text[pos - 1])) continue;
          const std::size_t open = text.find('{', pos);
          if (open == std::string::npos) continue;
          // Reject declarations (a ';' before the '{' means this wasn't
          // a definition).
          const std::string between = text.substr(pos, open - pos);
          if (between.find(';') != std::string::npos) continue;
          body += text.substr(open, matchBrace(text, open) - open);
          def.file = fp->rel_path;
          def.line = LineIndex(text).lineOf(pos);
          def.param = signatureParamName(between);
          break;
        }
        if (!body.empty()) break;
      }
    }
  }
}

/// Out-of-line hot-alloc exemptions: `X::X(...)`, `X::~X()`,
/// `X::saveState(...)` and `X::loadState(...)` definition bodies in the
/// file's scrubbed text. The init-list walk treats each `name(...)` /
/// `name{...}` initializer as one unit, so a brace initializer is never
/// mistaken for the function body.
void collectOutOfLineExemptRanges(FileData& f) {
  const std::string& text = f.scrubbed;
  for (std::size_t pos = text.find("::"); pos != std::string::npos;
       pos = text.find("::", pos + 2)) {
    // Left identifier.
    std::size_t lb = pos;
    while (lb > 0 && isIdentChar(text[lb - 1])) --lb;
    if (lb == pos) continue;
    const std::string left = text.substr(lb, pos - lb);
    // Right token: optional '~', then an identifier.
    std::size_t rb = pos + 2;
    bool dtor = false;
    if (rb < text.size() && text[rb] == '~') {
      dtor = true;
      ++rb;
    }
    std::size_t re = rb;
    while (re < text.size() && isIdentChar(text[re])) ++re;
    const std::string right = text.substr(rb, re - rb);
    if (right.empty()) continue;
    const bool interesting =
        right == left || (dtor && right == left) ||
        (!dtor && (right == "saveState" || right == "loadState"));
    if (!interesting || (!dtor && right != left && right != "saveState" &&
                         right != "loadState"))
      continue;
    std::size_t p = skipSpaces(text, re);
    if (p >= text.size() || text[p] != '(') continue;
    p = matchParen(text, p);
    // Trailing qualifiers before the body or init-list.
    for (;;) {
      p = skipSpaces(text, p);
      if (p >= text.size()) break;
      if (isIdentChar(text[p])) {  // const, noexcept, override...
        while (p < text.size() && isIdentChar(text[p])) ++p;
        continue;
      }
      break;
    }
    if (p < text.size() && text[p] == ':' &&
        (p + 1 >= text.size() || text[p + 1] != ':')) {
      // ctor-init-list: `ident(args)` or `ident{args}` units, comma-
      // separated; the first top-level token after the list is the body.
      ++p;
      for (;;) {
        p = skipSpaces(text, p);
        while (p < text.size() &&
               (isIdentChar(text[p]) || text[p] == ':' || text[p] == '<' ||
                text[p] == '>'))
          ++p;
        p = skipSpaces(text, p);
        if (p < text.size() && text[p] == '(')
          p = matchParen(text, p);
        else if (p < text.size() && text[p] == '{')
          p = matchBrace(text, p);
        else
          break;
        p = skipSpaces(text, p);
        if (p < text.size() && text[p] == ',') {
          ++p;
          continue;
        }
        break;
      }
    }
    if (p >= text.size() || text[p] != '{') continue;  // declaration
    const std::size_t close = matchBrace(text, p);
    f.alloc_exempt.push_back({p, close});
    pos = close >= 2 ? close - 2 : close;
  }
}

// --- token rules (R2/R3a/R4/R7) ---------------------------------------------

struct TokenRule {
  std::string rule;
  std::string token;    ///< word-boundary token
  bool call_only;       ///< require '(' (or '<' template args) next
  bool string_keyed;    ///< require '"' right after the '('
  std::string message;
  bool scope_call = false;  ///< require the token be preceded by "::"
  bool bare_word = false;   ///< flag the word alone (the `new` keyword)
};

const std::vector<TokenRule>& determinismRules() {
  static const std::vector<TokenRule> kRules = {
      {"determinism", "rand", true, false,
       "rand() breaks seeded determinism — use common/rng.h Rng"},
      {"determinism", "srand", true, false,
       "srand() breaks seeded determinism — use common/rng.h Rng"},
      {"determinism", "random_device", false, false,
       "std::random_device is nondeterministic — seed a common/rng.h Rng"},
      {"determinism", "time", true, false,
       "time() makes runs irreproducible — derive everything from the "
       "seed"},
      {"determinism", "clock", true, false,
       "clock() makes runs irreproducible — derive everything from the "
       "seed"},
      {"determinism", "now", true, false,
       "*_clock::now() makes runs irreproducible — simulated state must "
       "be a pure function of the seed",
       /*scope_call=*/true},
  };
  return kRules;
}

const std::vector<TokenRule>& strictParseRules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> v;
    for (const char* fn :
         {"atoi", "atol", "atoll", "atof", "stoi", "stol", "stoll",
          "stoul", "stoull", "stof", "stod", "strtol", "strtoul",
          "strtoll", "strtoull", "strtof", "strtod", "sscanf"}) {
      v.push_back({"strict-parse", fn, true, false,
                   std::string(fn) +
                       "() accepts sloppy numerics — use "
                       "sim::parseU64Strict"});
    }
    return v;
  }();
  return kRules;
}

const std::vector<TokenRule>& eventIdRules() {
  static const std::vector<TokenRule> kRules = {
      {"eventid", "count", true, true,
       "string-keyed count() in a per-cycle directory — cache an EventId "
       "at construction and use count(EventId)"},
      {"eventid", "eventCount", true, true,
       "string-keyed eventCount() in a per-cycle directory — use the "
       "EventId overload"},
      {"eventid", "eventEnergyPj", true, true,
       "string-keyed eventEnergyPj() in a per-cycle directory — use the "
       "EventId overload"},
      {"eventid", "to_string", true, false,
       "to_string allocates — keep strings out of per-cycle directories"},
      {"eventid", "ostringstream", false, false,
       "string streams allocate — keep them out of per-cycle directories"},
      {"eventid", "stringstream", false, false,
       "string streams allocate — keep them out of per-cycle directories"},
  };
  return kRules;
}

const std::vector<TokenRule>& hotAllocRules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> v;
    const char* suffix =
        " in a per-cycle directory outside ctor/saveState/loadState — the "
        "run loop must not allocate; hoist to construction or waive with "
        "// lint:allow(hot-alloc: reason)";
    v.push_back({"hot-alloc", "new", false, false,
                 std::string("`new`") + suffix, false, /*bare_word=*/true});
    for (const char* fn : {"malloc", "calloc", "realloc", "make_unique",
                           "make_shared", "push_back", "emplace_back",
                           "resize"}) {
      v.push_back({"hot-alloc", fn, true, false,
                   std::string(fn) + "()" + suffix});
    }
    return v;
  }();
  return kRules;
}

bool inExemptRange(const ExemptRanges& ranges, std::size_t pos) {
  for (const auto& [b, e] : ranges) {
    if (pos >= b && pos < e) return true;
  }
  return false;
}

void applyTokenRules(const Options& opt, const FileData& f,
                     const LineIndex& lines,
                     const std::vector<TokenRule>& rules,
                     std::vector<Finding>& findings,
                     bool honor_exempt_ranges = false) {
  const std::string& text = f.scrubbed;
  for (const TokenRule& r : rules) {
    if (!ruleEnabled(opt, r.rule)) continue;
    if (allowlisted(opt, f.rel_path, r.rule)) continue;
    for (std::size_t pos = text.find(r.token); pos != std::string::npos;
         pos = text.find(r.token, pos + 1)) {
      if (!wordAt(text, pos, r.token)) continue;
      if (r.scope_call &&
          (pos < 2 || text.compare(pos - 2, 2, "::") != 0))
        continue;
      std::size_t after = skipSpaces(text, pos + r.token.size());
      if (r.call_only && !r.bare_word) {
        if (after >= text.size() ||
            (text[after] != '(' && text[after] != '<'))
          continue;
        if (r.string_keyed) {
          if (text[after] != '(') continue;
          after = skipSpaces(text, after + 1);
          if (after >= text.size() || text[after] != '"') continue;
        }
        // `.count(` on containers is std::map/set API, not the energy
        // API — still flagged for `count` in per-cycle dirs ONLY when
        // string-keyed, which containers of strings would be; accept.
      }
      if (honor_exempt_ranges && inExemptRange(f.alloc_exempt, pos))
        continue;
      const int line = lines.lineOf(pos);
      if (hasWaiver(f, line, r.rule, false)) continue;
      findings.push_back({f.rel_path, line, r.rule, r.message});
    }
  }
}

// --- unordered-container ordering rule (R3b) --------------------------------

/// Collect identifiers declared with an unordered_map/unordered_set type
/// anywhere in the file (members and locals alike).
std::set<std::string> unorderedNames(const std::string& text) {
  std::set<std::string> names;
  for (const char* kw : {"unordered_map", "unordered_set"}) {
    for (std::size_t pos = text.find(kw); pos != std::string::npos;
         pos = text.find(kw, pos + 1)) {
      if (!wordAt(text, pos, kw)) continue;
      std::size_t p = skipSpaces(text, pos + std::string(kw).size());
      if (p >= text.size() || text[p] != '<') continue;
      int depth = 0;
      for (; p < text.size(); ++p) {
        if (text[p] == '<') ++depth;
        if (text[p] == '>' && --depth == 0) {
          ++p;
          break;
        }
        if (text[p] == ';') break;
      }
      if (depth != 0) continue;
      p = skipSpaces(text, p);
      if (p < text.size() && text[p] == '&') p = skipSpaces(text, p + 1);
      std::size_t b = p;
      while (p < text.size() && isIdentChar(text[p])) ++p;
      if (p > b) names.insert(text.substr(b, p - b));
    }
  }
  return names;
}

bool writesSerializedBytes(const std::string& text) {
  return containsWord(text, "StateWriter") ||
         containsWord(text, "ResultSink");
}

void applyUnorderedOrderRule(const Options& opt, const FileData& f,
                             const LineIndex& lines,
                             const std::set<std::string>& global_names,
                             std::vector<Finding>& findings) {
  if (!ruleEnabled(opt, "udc-order")) return;
  if (allowlisted(opt, f.rel_path, "udc-order")) return;
  const std::string& text = f.scrubbed;
  if (!writesSerializedBytes(text)) return;
  // Names declared unordered anywhere in the scanned tree: a member
  // declared in the header is iterated from the .cpp.
  const std::set<std::string>& names = global_names;
  if (names.empty()) return;
  std::set<std::pair<int, std::string>> flagged;  // dedupe per line+name
  auto flag = [&](std::size_t pos, const std::string& name,
                  const std::string& what) {
    const int line = lines.lineOf(pos);
    if (hasWaiver(f, line, "udc-order", false)) return;
    if (!flagged.insert({line, name}).second) return;
    findings.push_back(
        {f.rel_path, line, "udc-order",
         what + " over unordered container '" + name +
             "' in a file that writes serialized bytes — hash order "
             "must never reach checkpoints or reports; sort into a "
             "vector first (then waive the sorted copy)"});
  };
  // Range-for: `for (decl : expr)` where expr's last identifier is an
  // unordered container.
  for (std::size_t pos = text.find("for"); pos != std::string::npos;
       pos = text.find("for", pos + 1)) {
    if (!wordAt(text, pos, "for")) continue;
    std::size_t p = skipSpaces(text, pos + 3);
    if (p >= text.size() || text[p] != '(') continue;
    int depth = 0;
    std::size_t close = p;
    for (; close < text.size(); ++close) {
      if (text[close] == '(') ++depth;
      if (text[close] == ')' && --depth == 0) break;
    }
    if (close >= text.size()) continue;
    const std::string inner = text.substr(p + 1, close - p - 1);
    // top-level single ':' split (ignore '::')
    std::size_t colon = std::string::npos;
    int d2 = 0;
    for (std::size_t k = 0; k < inner.size(); ++k) {
      const char ch = inner[k];
      if (ch == '(' || ch == '[' || ch == '{' || ch == '<') ++d2;
      if (ch == ')' || ch == ']' || ch == '}' || ch == '>') --d2;
      if (ch == ':' && d2 == 0) {
        if (k + 1 < inner.size() && inner[k + 1] == ':') {
          ++k;
          continue;
        }
        if (k > 0 && inner[k - 1] == ':') continue;
        colon = k;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range = trim(inner.substr(colon + 1));
    const std::string name = lastIdentifier(range);
    if (!name.empty() && names.count(name) != 0)
      flag(pos, name, "range-for");
  }
  // begin()/cbegin() on a known unordered name starts an iteration in
  // hash order (`find(x) != end()` alone is an order-free lookup, so a
  // bare .end() is not flagged).
  for (const std::string& name : names) {
    for (std::size_t pos = text.find(name); pos != std::string::npos;
         pos = text.find(name, pos + 1)) {
      if (!wordAt(text, pos, name)) continue;
      std::size_t p = pos + name.size();
      if (p >= text.size() || text[p] != '.') continue;
      ++p;
      for (const char* m : {"begin", "cbegin"}) {
        if (wordAt(text, p, m)) {
          const std::size_t q = skipSpaces(text, p + std::string(m).size());
          if (q < text.size() && text[q] == '(')
            flag(pos, name, std::string(".") + m + "()");
        }
      }
    }
  }
}

// --- checkpoint completeness (R1) -------------------------------------------

void applyCheckpointRule(const Options& opt,
                         const std::map<std::string, FileData>& files,
                         std::vector<ClassInfo>& classes,
                         std::vector<Finding>& findings,
                         std::vector<std::string>& stateful) {
  for (ClassInfo& ci : classes) {
    if (!(ci.declares_save && ci.declares_load)) continue;
    if (ci.pure_save || ci.pure_load) continue;  // abstract interface
    stateful.push_back(ci.name);
    if (!ruleEnabled(opt, "checkpoint-state")) continue;
    if (allowlisted(opt, ci.file, "checkpoint-state")) continue;
    const FileData& f = files.at(ci.file);
    if (ci.save_body.empty() || ci.load_body.empty()) {
      findings.push_back(
          {ci.file, ci.line, "checkpoint-state",
           "could not locate the " +
               std::string(ci.save_body.empty() ? "saveState"
                                                : "loadState") +
               " definition for stateful class '" + ci.name + "'"});
      continue;
    }
    for (const MemberDecl& m : ci.members) {
      const bool in_save = containsWord(ci.save_body, m.name);
      const bool in_load = containsWord(ci.load_body, m.name);
      if (in_save && in_load) continue;
      if (hasWaiver(f, m.line, "checkpoint-state", true)) continue;
      std::string where =
          !in_save && !in_load
              ? "saveState or loadState"
              : (!in_save ? "saveState" : "loadState");
      findings.push_back(
          {ci.file, m.line, "checkpoint-state",
           "member '" + m.name + "' of stateful class '" + ci.name +
               "' is not referenced in " + where +
               " — serialize it or waive with // lint:no-state(reason)"});
    }
  }
  std::sort(stateful.begin(), stateful.end());
  stateful.erase(std::unique(stateful.begin(), stateful.end()),
                 stateful.end());
}

// --- save/load symmetry + schema extraction (R5) ----------------------------

/// One StateWriter/StateReader operation in a saveState/loadState body.
struct CkptOp {
  std::string kind;    ///< u8|u32|u64|f64|str|bytes | sub | call
  std::string detail;  ///< argument / owner / helper call text
};

bool isPrimitiveOp(const std::string& name) {
  return name == "u8" || name == "u32" || name == "u64" || name == "f64" ||
         name == "str" || name == "bytes";
}

/// First argument of the call whose '(' is at `open` — text up to the
/// top-level ',' or the closing ')'.
std::string firstArgText(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return text.substr(open + 1, i - open - 1);
    }
    if (c == ',' && depth == 1)
      return text.substr(open + 1, i - open - 1);
  }
  return {};
}

/// The qualified expression ending at `end` (exclusive): identifiers
/// joined by '.', '->' and '::' — `repl_->saveState`, `lq_.saveState`.
std::string qualifiedExprEndingAt(const std::string& text,
                                  std::size_t end) {
  std::size_t b = end;
  while (b > 0) {
    const char c = text[b - 1];
    if (isIdentChar(c) || c == '.' || c == ':') {
      --b;
      continue;
    }
    if (c == '>' && b >= 2 && text[b - 2] == '-') {
      b -= 2;
      continue;
    }
    break;
  }
  return text.substr(b, end - b);
}

/// Extract the ordered StateWriter/StateReader operation sequence from a
/// saveState/loadState body, given the writer/reader parameter name:
///   param.u64(expr)            -> {u64, expr}
///   owner.saveState(param)     -> {sub, owner.saveState}
///   helper(param, more...)     -> {call, helper(...)}
/// Left-to-right textual order IS the serialization order for straight-
/// line code; loops contribute their body once (symmetric on both sides
/// when the loop bodies pair up — shapes that don't are waived).
std::vector<CkptOp> extractCkptOps(const std::string& body,
                                   const std::string& param,
                                   const std::string& method_word) {
  std::vector<CkptOp> ops;
  if (param.empty()) return ops;
  for (std::size_t pos = body.find(param); pos != std::string::npos;
       pos = body.find(param, pos + 1)) {
    if (!wordAt(body, pos, param)) continue;
    std::size_t after = skipSpaces(body, pos + param.size());
    if (after < body.size() && body[after] == '.') {
      std::size_t mb = skipSpaces(body, after + 1);
      std::size_t me = mb;
      while (me < body.size() && isIdentChar(body[me])) ++me;
      const std::string m = body.substr(mb, me - mb);
      const std::size_t open = skipSpaces(body, me);
      if (isPrimitiveOp(m) && open < body.size() && body[open] == '(') {
        ops.push_back({m, normalizeSpace(firstArgText(body, open))});
      }
      continue;
    }
    if (after >= body.size() || (body[after] != ',' && body[after] != ')'))
      continue;
    // The param is a whole argument — find the innermost enclosing call.
    int depth = 0;
    std::size_t open = std::string::npos;
    for (std::size_t j = pos; j > 0; --j) {
      const char c = body[j - 1];
      if (c == ')') ++depth;
      if (c == '(') {
        if (depth == 0) {
          open = j - 1;
          break;
        }
        --depth;
      }
    }
    if (open == std::string::npos) continue;
    std::size_t ne = open;
    while (ne > 0 &&
           std::isspace(static_cast<unsigned char>(body[ne - 1])) != 0)
      --ne;
    std::size_t nb = ne;
    while (nb > 0 && isIdentChar(body[nb - 1])) --nb;
    const std::string callee = body.substr(nb, ne - nb);
    if (callee.empty()) continue;  // parenthesized expression, not a call
    static const std::set<std::string> kKeywords = {
        "if", "while", "for", "switch", "return", "sizeof"};
    if (kKeywords.count(callee) != 0) continue;
    if (callee == method_word) {
      ops.push_back({"sub", normalizeSpace(qualifiedExprEndingAt(body, ne))});
    } else if (callee == "saveState" || callee == "loadState") {
      // A save body calling loadState (or vice versa) is still a nested
      // component hand-off — record it so the mismatch shows as order
      // divergence, not a miscount.
      ops.push_back({"sub", normalizeSpace(qualifiedExprEndingAt(body, ne))});
    } else {
      const std::size_t close =
          std::min(matchParen(body, open), body.size());
      std::string call_text =
          qualifiedExprEndingAt(body, ne) + body.substr(ne, close - ne);
      ops.push_back({"call", normalizeSpace(call_text)});
    }
  }
  return ops;
}

std::string describeOp(const CkptOp& op) {
  if (op.kind == "sub") return "sub " + op.detail;
  if (op.kind == "call") return "call " + op.detail;
  return op.kind + "(" + op.detail + ")";
}

void applySymmetryRule(const Options& opt,
                       const std::map<std::string, FileData>& files,
                       const std::vector<ClassInfo>& classes,
                       std::vector<Finding>& findings,
                       std::vector<ClassSchema>& schemas) {
  for (const ClassInfo& ci : classes) {
    if (!(ci.declares_save && ci.declares_load)) continue;
    if (ci.pure_save || ci.pure_load) continue;
    if (ci.save_body.empty() || ci.load_body.empty()) continue;
    const std::vector<CkptOp> save_ops =
        extractCkptOps(ci.save_body, ci.save_def.param, "saveState");
    const std::vector<CkptOp> load_ops =
        extractCkptOps(ci.load_body, ci.load_def.param, "loadState");

    // Schema: the ordered field layout the saveState body writes. Always
    // extracted (the drift gate needs it even when the rule is waived).
    ClassSchema schema;
    schema.class_name = ci.name;
    schema.file = ci.save_def.file.empty() ? ci.file : ci.save_def.file;
    for (const CkptOp& op : save_ops) {
      if (op.kind == "sub")
        schema.lines.push_back("sub " + op.detail);
      else if (op.kind == "call")
        schema.lines.push_back("call " + op.detail);
      else
        schema.lines.push_back(op.kind + " " + op.detail);
    }
    schemas.push_back(std::move(schema));

    if (!ruleEnabled(opt, "ckpt-symmetry")) continue;
    const std::string anchor_file =
        ci.save_def.file.empty() ? ci.file : ci.save_def.file;
    const int anchor_line =
        ci.save_def.file.empty() ? ci.line : ci.save_def.line;
    if (allowlisted(opt, anchor_file, "ckpt-symmetry") ||
        allowlisted(opt, ci.file, "ckpt-symmetry"))
      continue;
    // Per-method waiver: on/above the class, saveState or loadState
    // definition line.
    if (hasWaiverIn(files, ci.file, ci.line, "ckpt-symmetry")) continue;
    if (!ci.save_def.file.empty() &&
        hasWaiverIn(files, ci.save_def.file, ci.save_def.line,
                    "ckpt-symmetry"))
      continue;
    if (!ci.load_def.file.empty() &&
        hasWaiverIn(files, ci.load_def.file, ci.load_def.line,
                    "ckpt-symmetry"))
      continue;
    if (ci.save_def.param.empty() || ci.load_def.param.empty())
      continue;  // signature the lexical pass can't see through

    const std::size_t n = std::min(save_ops.size(), load_ops.size());
    std::size_t diverge = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (save_ops[i].kind != load_ops[i].kind) {
        diverge = i;
        break;
      }
    }
    if (diverge < n) {
      findings.push_back(
          {anchor_file, anchor_line, "ckpt-symmetry",
           "stateful class '" + ci.name + "': op #" +
               std::to_string(diverge + 1) + " diverges — saveState " +
               describeOp(save_ops[diverge]) + " vs loadState " +
               describeOp(load_ops[diverge]) +
               " — a restored checkpoint would misread every later "
               "field; reorder the bodies or waive with "
               "// lint:allow(ckpt-symmetry: reason)"});
    } else if (save_ops.size() != load_ops.size()) {
      const bool save_more = save_ops.size() > load_ops.size();
      const CkptOp& extra =
          save_more ? save_ops[n] : load_ops[n];
      findings.push_back(
          {anchor_file, anchor_line, "ckpt-symmetry",
           "stateful class '" + ci.name + "': saveState emits " +
               std::to_string(save_ops.size()) +
               " StateWriter ops but loadState consumes " +
               std::to_string(load_ops.size()) +
               " (first unmatched: " +
               std::string(save_more ? "saveState " : "loadState ") +
               describeOp(extra) +
               ") — pair the bodies or waive with "
               "// lint:allow(ckpt-symmetry: reason)"});
    }
  }
  std::sort(schemas.begin(), schemas.end(),
            [](const ClassSchema& a, const ClassSchema& b) {
              return std::tie(a.class_name, a.file) <
                     std::tie(b.class_name, b.file);
            });
}

// --- layer DAG (R6) ---------------------------------------------------------

/// The normative allowed-edges table: src/<key> may include headers only
/// from itself and the listed components. This is docs/ARCHITECTURE.md's
/// layer diagram, transitively closed — keep the two in sync (the doc
/// carries the same table).
const std::map<std::string, std::set<std::string>>& layerAllowedDeps() {
  static const std::map<std::string, std::set<std::string>> kTable = [] {
    std::map<std::string, std::set<std::string>> t;
    t["common"] = {};
    t["ckpt"] = {"common"};
    t["mem"] = {"common", "ckpt"};
    t["tlb"] = {"common", "ckpt", "mem"};
    t["waydet"] = {"common", "ckpt"};
    t["lsq"] = {"common", "ckpt"};
    t["energy"] = {"common", "ckpt"};
    t["trace"] = {"common", "ckpt"};
    t["phase"] = {"common", "ckpt", "trace"};
    t["core"] = {"common", "ckpt", "mem", "tlb", "waydet", "lsq",
                 "energy"};
    t["cpu"] = {"common", "ckpt", "mem",  "tlb",   "waydet",
                "lsq",    "energy", "core", "trace"};
    t["sim"] = {"common", "ckpt", "mem",  "tlb",  "waydet", "lsq",
                "energy", "core", "cpu",  "trace", "phase"};
    t["sweep"] = t["sim"];
    t["sweep"].insert("sim");
    t["store"] = t["sweep"];
    t["store"].insert("sweep");
    t["explore"] = t["store"];
    t["explore"].insert("store");
    return t;
  }();
  return kTable;
}

/// Component of a scanned path: `src/<comp>/...` -> comp, else empty.
std::string srcComponentOf(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) != 0) return {};
  const std::size_t slash = rel_path.find('/', 4);
  if (slash == std::string::npos) return {};  // file directly in src/
  return rel_path.substr(4, slash - 4);
}

void applyLayeringRule(const Options& opt, const FileData& f,
                       std::vector<Finding>& findings) {
  if (!ruleEnabled(opt, "layering")) return;
  if (allowlisted(opt, f.rel_path, "layering")) return;
  const std::string comp = srcComponentOf(f.rel_path);
  if (comp.empty()) return;
  const auto& table = layerAllowedDeps();
  const auto self = table.find(comp);
  // Includes live in string literals, which scrub() blanks — walk the RAW
  // text line by line.
  int line = 0;
  std::size_t start = 0;
  const std::string& raw = f.raw;
  while (start <= raw.size()) {
    std::size_t end = raw.find('\n', start);
    if (end == std::string::npos) end = raw.size();
    ++line;
    const std::string text = trim(raw.substr(start, end - start));
    start = end + 1;
    if (text.rfind("#include", 0) != 0) continue;
    const std::size_t q1 = text.find('"');
    if (q1 == std::string::npos) continue;  // <system> include
    const std::size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    const std::string target = text.substr(q1 + 1, q2 - q1 - 1);
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // local header
    const std::string dep = target.substr(0, slash);
    if (dep == comp) continue;
    if (table.count(dep) == 0) continue;  // not a src component path
    if (hasWaiver(f, line, "layering", false)) continue;
    if (self == table.end()) {
      findings.push_back(
          {f.rel_path, line, "layering",
           "component 'src/" + comp +
               "' is not in the layer table but includes \"" + target +
               "\" — add the component and its allowed dependencies to "
               "tools/lint layerAllowedDeps() and the "
               "docs/ARCHITECTURE.md layer DAG"});
      continue;
    }
    if (self->second.count(dep) != 0) continue;
    findings.push_back(
        {f.rel_path, line, "layering",
         "#include \"" + target + "\" points up the layer stack: src/" +
             comp + " may depend on {" +
             [&] {
               std::string s;
               for (const std::string& d : self->second)
                 s += (s.empty() ? "" : ", ") + d;
               return s;
             }() +
             "} only (docs/ARCHITECTURE.md layer DAG) — invert the "
             "dependency or move the shared piece down the stack"});
  }
}

}  // namespace

// --- public API -------------------------------------------------------------

const std::vector<std::string>& ruleFamilies() {
  static const std::vector<std::string> kFamilies = {
      "checkpoint-state", "ckpt-symmetry", "determinism", "eventid",
      "hot-alloc",        "layering",      "strict-parse", "udc-order"};
  return kFamilies;
}

std::vector<AllowEntry> parseAllowlistFile(
    const std::string& path, std::vector<std::string>& errors) {
  std::vector<AllowEntry> out;
  std::ifstream in(path);
  if (!in) {
    errors.push_back("cannot open allowlist '" + path + "'");
    return out;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream ss(t);
    AllowEntry e;
    ss >> e.rule >> e.path_suffix;
    std::getline(ss, e.reason);
    e.reason = trim(e.reason);
    if (e.rule.empty() || e.path_suffix.empty() || e.reason.empty()) {
      errors.push_back(path + ":" + std::to_string(lineno) +
                       ": allowlist entries are '<rule> <path-suffix> "
                       "<reason>' — reason is mandatory");
      continue;
    }
    out.push_back(e);
  }
  return out;
}

Report runLint(const Options& opt) {
  Report report;

  // Collect files (sorted for determinism). Restricted dirs (tools/,
  // bench/) are scanned for the determinism/strict-parse families only;
  // anything under a fixtures/ component is skipped — those trees seed
  // deliberate violations.
  std::vector<std::string> rel_paths;
  std::set<std::string> restricted;
  auto collect = [&](const std::string& dir, bool is_restricted) {
    const fs::path base = fs::path(opt.root) / dir;
    if (!fs::exists(base)) return;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc")
        continue;
      const std::string rel =
          fs::relative(entry.path(), fs::path(opt.root)).generic_string();
      if (is_restricted) {
        if (rel.find("fixtures/") != std::string::npos) continue;
        if (std::find(rel_paths.begin(), rel_paths.end(), rel) !=
            rel_paths.end())
          continue;
        restricted.insert(rel);
      }
      rel_paths.push_back(rel);
    }
  };
  for (const std::string& dir : opt.scan_dirs) collect(dir, false);
  for (const std::string& dir : opt.restricted_scan_dirs)
    collect(dir, true);
  std::sort(rel_paths.begin(), rel_paths.end());
  rel_paths.erase(std::unique(rel_paths.begin(), rel_paths.end()),
                  rel_paths.end());

  std::map<std::string, FileData> files;
  for (const std::string& rel : rel_paths) {
    FileData f;
    f.rel_path = rel;
    f.restricted = restricted.count(rel) != 0;
    std::ifstream in(fs::path(opt.root) / rel, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    f.raw = ss.str();
    f.waivers = extractWaivers(scrub(f.raw, /*blank_comments=*/false),
                               report.findings, rel);
    f.scrubbed = scrub(f.raw);
    files.emplace(rel, std::move(f));
  }

  auto inPerCycleDir = [&](const std::string& rel) {
    for (const std::string& d : opt.per_cycle_dirs) {
      if (rel.rfind(d + "/", 0) == 0) return true;
    }
    return false;
  };

  std::set<std::string> all_unordered;
  for (const std::string& rel : rel_paths) {
    if (files.at(rel).restricted) continue;
    const std::set<std::string> names =
        unorderedNames(files.at(rel).scrubbed);
    all_unordered.insert(names.begin(), names.end());
  }

  std::vector<ClassInfo> classes;
  for (const std::string& rel : rel_paths) {
    FileData& f = files.at(rel);
    const LineIndex lines(f.scrubbed);
    applyTokenRules(opt, f, lines, determinismRules(), report.findings);
    applyTokenRules(opt, f, lines, strictParseRules(), report.findings);
    if (f.restricted) continue;
    if (inPerCycleDir(rel)) {
      applyTokenRules(opt, f, lines, eventIdRules(), report.findings);
      collectOutOfLineExemptRanges(f);
    }
    applyUnorderedOrderRule(opt, f, lines, all_unordered, report.findings);
    applyLayeringRule(opt, f, report.findings);
    scanClasses(f, lines, classes);
    if (inPerCycleDir(rel)) {
      applyTokenRules(opt, f, lines, hotAllocRules(), report.findings,
                      /*honor_exempt_ranges=*/true);
    }
  }

  std::vector<FileData*> file_list;
  file_list.reserve(files.size());
  for (auto& [rel, f] : files) file_list.push_back(&f);
  attachOutOfLineBodies(file_list, classes);
  applyCheckpointRule(opt, files, classes, report.findings,
                      report.stateful_classes);
  applySymmetryRule(opt, files, classes, report.findings, report.schemas);

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

std::string formatFindings(const Report& report) {
  std::ostringstream out;
  for (const Finding& f : report.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return out.str();
}

std::string formatSchema(const ClassSchema& schema) {
  std::ostringstream out;
  out << "# .mckpt field schema — ordered StateWriter ops of the "
         "saveState body.\n"
         "# Machine-written by `malec_lint --emit-schema`; regenerate "
         "(never hand-edit):\n"
         "#   build/malec_lint --root . --emit-schema tools/lint/schemas\n"
      << "class " << schema.class_name << "\n"
      << "source " << schema.file << "\n";
  for (const std::string& line : schema.lines) out << line << "\n";
  return out.str();
}

}  // namespace malec::lint
