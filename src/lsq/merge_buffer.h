// Merge Buffer: coalesces committed stores to the same cache line before
// they are written to the L1 (4 entries, paper Table II). Evicted entries
// (MBEs) are handed to the Input Buffer / cache ports for the actual write.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/address.h"
#include "common/types.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::lsq {

class MergeBuffer {
 public:
  struct Entry {
    Addr line_base = 0;         ///< virtual line base the entry covers
    std::uint64_t byte_mask = 0;///< bit i = byte i of the line written
    std::uint64_t lru = 0;
    std::uint32_t merged_stores = 0;
  };

  /// Shared Entry checkpoint codec — the buffer itself and every holder
  /// of a pending eviction serialize through this one field list.
  static void saveEntry(ckpt::StateWriter& w, const Entry& e);
  [[nodiscard]] static Entry loadEntry(ckpt::StateReader& r);

  MergeBuffer(std::uint32_t capacity, AddressLayout layout)
      : capacity_(capacity), layout_(layout) {}

  [[nodiscard]] bool full() const { return line_base_.size() >= capacity_; }
  [[nodiscard]] std::size_t size() const { return line_base_.size(); }

  /// Try to merge a committed store into an existing entry.
  bool absorb(Addr vaddr, std::uint8_t size);

  /// Allocate a new entry for the store's line. Caller checks full().
  void allocate(Addr vaddr, std::uint8_t size);

  /// Evict the least-recently-merged entry (to be written to L1).
  [[nodiscard]] std::optional<Entry> evictLru();

  /// Forwarding: does a Merge Buffer entry hold every byte of the load?
  /// Counters mirror StoreBuffer's split vs full-width lookup organisation.
  [[nodiscard]] bool coversLoad(Addr vaddr, std::uint8_t size,
                                bool split_lookup);

  [[nodiscard]] std::uint64_t forwards() const { return forwards_; }
  [[nodiscard]] std::uint64_t mergesTotal() const { return merges_; }

  /// Checkpoint/restore of all mutable state; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  [[nodiscard]] std::uint64_t maskFor(Addr vaddr, std::uint8_t size) const;

  std::uint32_t capacity_;  // lint:no-state(config; bounds-checked on load)
  AddressLayout layout_;    // lint:no-state(config)

  // Parallel arrays in allocation order (struct-of-arrays: the per-cycle
  // forwarding scan streams cached page IDs / line bases instead of
  // striding over structs).
  std::vector<Addr> line_base_;  ///< virtual line base each entry covers
  std::vector<std::uint64_t> byte_mask_;  ///< bit i = byte i written
  std::vector<std::uint64_t> lru_;  ///< unique last-merge ticks
  std::vector<std::uint32_t> merged_;  ///< stores coalesced per entry
  // lint:no-state(derived from line_base_; recomputed in loadState)
  std::vector<PageId> page_;

  std::uint64_t tick_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t forwards_ = 0;
  std::uint64_t page_compares_ = 0;
  std::uint64_t offset_compares_ = 0;
  std::uint64_t full_compares_ = 0;
};

}  // namespace malec::lsq
