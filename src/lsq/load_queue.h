// Load Queue occupancy model (40 entries, paper Table II).
//
// The LQ tracks in-flight loads from dispatch to commit. Its energy is
// excluded from the paper's accounting (similar across configurations), so
// this model only enforces the structural limit and collects occupancy
// statistics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ckpt/state_io.h"
#include "common/check.h"
#include "common/types.h"

namespace malec::lsq {

class LoadQueue {
 public:
  explicit LoadQueue(std::uint32_t capacity = 40) : capacity_(capacity) {
    MALEC_CHECK(capacity >= 1);
  }

  [[nodiscard]] bool full() const { return live_.size() >= capacity_; }
  [[nodiscard]] std::size_t size() const { return live_.size(); }
  [[nodiscard]] std::uint32_t capacity() const { return capacity_; }

  /// Allocate at dispatch. Caller must check full() first.
  void allocate(SeqNum seq) {
    MALEC_CHECK_MSG(!full(), "LoadQueue overflow");
    const bool inserted = live_.insert(seq).second;
    MALEC_CHECK_MSG(inserted, "duplicate LQ allocation");
    peak_ = live_.size() > peak_ ? live_.size() : peak_;
  }

  /// Release at commit.
  void release(SeqNum seq) {
    const auto erased = live_.erase(seq);
    MALEC_CHECK_MSG(erased == 1, "LQ release of unknown load");
  }

  [[nodiscard]] std::size_t peakOccupancy() const { return peak_; }

  /// Checkpoint/restore of the in-flight load set and peak statistic.
  void saveState(ckpt::StateWriter& w) const {
    // live_ is an unordered set — serialize sorted so the same state
    // always produces the same checkpoint bytes.
    // lint:allow(udc-order: sorted below before any byte is written)
    std::vector<SeqNum> live(live_.begin(), live_.end());
    std::sort(live.begin(), live.end());
    w.u64(live.size());
    for (const SeqNum s : live) w.u64(s);
    w.u64(peak_);
  }
  void loadState(ckpt::StateReader& r) {
    live_.clear();
    const std::uint64_t n = r.u64();
    MALEC_CHECK_MSG(n <= capacity_, "LQ checkpoint exceeds this capacity");
    for (std::uint64_t i = 0; i < n; ++i) live_.insert(r.u64());
    peak_ = static_cast<std::size_t>(r.u64());
  }

 private:
  std::uint32_t capacity_;  // lint:no-state(config; bounds-checked on load)
  std::unordered_set<SeqNum> live_;
  std::size_t peak_ = 0;
};

}  // namespace malec::lsq
