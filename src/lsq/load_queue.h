// Load Queue occupancy model (40 entries, paper Table II).
//
// The LQ tracks in-flight loads from dispatch to commit. Its energy is
// excluded from the paper's accounting (similar across configurations), so
// this model only enforces the structural limit and collects occupancy
// statistics.
//
// Loads allocate in dispatch order (strictly ascending seq) and release at
// commit, which is program order — the LQ is a strict FIFO. The ring
// layout encodes that invariant: release checks the head instead of
// searching, and serialization walks the ring, which IS ascending-seq
// order, producing the same bytes the old sorted-set layout wrote.
#pragma once

#include <cstdint>

#include "ckpt/state_io.h"
#include "common/check.h"
#include "common/fixed_ring.h"
#include "common/types.h"

namespace malec::lsq {

class LoadQueue {
 public:
  explicit LoadQueue(std::uint32_t capacity = 40) : ring_(capacity) {
    MALEC_CHECK(capacity >= 1);
  }

  [[nodiscard]] bool full() const { return ring_.full(); }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(ring_.capacity());
  }

  /// Allocate at dispatch. Caller must check full() first.
  void allocate(SeqNum seq) {
    MALEC_CHECK_MSG(!full(), "LoadQueue overflow");
    MALEC_CHECK_MSG(ring_.empty() || seq > ring_[ring_.size() - 1],
                    "duplicate or out-of-order LQ allocation");
    // lint:allow(hot-alloc: FixedRing::push_back writes into a preallocated slab — no allocation)
    ring_.push_back(seq);
    peak_ = ring_.size() > peak_ ? ring_.size() : peak_;
  }

  /// Release at commit (program order — always the oldest live load).
  void release(SeqNum seq) {
    MALEC_CHECK_MSG(!ring_.empty() && ring_.front() == seq,
                    "LQ release of unknown or out-of-order load");
    ring_.pop_front();
  }

  [[nodiscard]] std::size_t peakOccupancy() const { return peak_; }

  /// Checkpoint/restore of the in-flight load set and peak statistic.
  /// Ring order is ascending seq, so the bytes match the sorted-set
  /// serialization this layout replaced.
  void saveState(ckpt::StateWriter& w) const {
    w.u64(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) w.u64(ring_[i]);
    w.u64(peak_);
  }
  void loadState(ckpt::StateReader& r) {
    ring_.clear();
    const std::uint64_t n = r.u64();
    MALEC_CHECK_MSG(n <= ring_.capacity(),
                    "LQ checkpoint exceeds this capacity");
    for (std::uint64_t i = 0; i < n; ++i) ring_.push_back(r.u64());
    peak_ = static_cast<std::size_t>(r.u64());
  }

 private:
  common::FixedRing<SeqNum> ring_;
  std::size_t peak_ = 0;
};

}  // namespace malec::lsq
