#include "lsq/store_buffer.h"

#include <algorithm>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::lsq {

void StoreBuffer::insert(SeqNum seq, Addr vaddr, std::uint8_t size) {
  MALEC_CHECK_MSG(!full(), "StoreBuffer overflow");
  MALEC_CHECK(size > 0);
  entries_.push_back(Entry{seq, vaddr, size, false});
}

void StoreBuffer::markCommitted(SeqNum seq) {
  for (Entry& e : entries_) {
    if (e.seq == seq) {
      e.committed = true;
      return;
    }
  }
  MALEC_CHECK_MSG(false, "commit of unknown store");
}

std::optional<StoreBuffer::Entry> StoreBuffer::popCommitted() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].committed) {
      Entry e = entries_[i];
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      return e;
    }
  }
  return std::nullopt;
}

bool StoreBuffer::coversLoad(Addr vaddr, std::uint8_t size,
                             bool split_lookup) {
  const Addr lo = vaddr;
  const Addr hi = vaddr + size;
  bool covered = false;
  for (const Entry& e : entries_) {
    if (split_lookup) {
      // Shared page-ID segment evaluated once per candidate; the narrow
      // offset comparator only fires for entries on the matching page.
      ++page_compares_;
      if (layout_.pageId(e.vaddr) != layout_.pageId(vaddr)) continue;
      ++offset_compares_;
    } else {
      ++full_compares_;
    }
    if (e.vaddr <= lo && e.vaddr + e.size >= hi) covered = true;
  }
  if (covered) ++forwards_;
  return covered;
}

bool StoreBuffer::hasOverlap(Addr vaddr, std::uint8_t size) const {
  const Addr lo = vaddr;
  const Addr hi = vaddr + size;
  return std::any_of(entries_.begin(), entries_.end(), [&](const Entry& e) {
    return e.vaddr < hi && e.vaddr + e.size > lo;
  });
}


void StoreBuffer::saveState(ckpt::StateWriter& w) const {
  w.u64(entries_.size());
  for (const Entry& e : entries_) {
    w.u64(e.seq);
    w.u64(e.vaddr);
    w.u8(e.size);
    w.u8(e.committed ? 1 : 0);
  }
  w.u64(full_compares_);
  w.u64(page_compares_);
  w.u64(offset_compares_);
  w.u64(forwards_);
}

void StoreBuffer::loadState(ckpt::StateReader& r) {
  const std::uint64_t n = r.u64();
  MALEC_CHECK_MSG(n <= capacity_,
                  "store-buffer checkpoint exceeds this capacity");
  entries_.assign(static_cast<std::size_t>(n), Entry{});
  for (Entry& e : entries_) {
    e.seq = r.u64();
    e.vaddr = r.u64();
    e.size = r.u8();
    e.committed = r.u8() != 0;
  }
  full_compares_ = r.u64();
  page_compares_ = r.u64();
  offset_compares_ = r.u64();
  forwards_ = r.u64();
}

}  // namespace malec::lsq
