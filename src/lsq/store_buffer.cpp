#include "lsq/store_buffer.h"

#include <algorithm>

#include "common/check.h"

namespace malec::lsq {

void StoreBuffer::insert(SeqNum seq, Addr vaddr, std::uint8_t size) {
  MALEC_CHECK_MSG(!full(), "StoreBuffer overflow");
  MALEC_CHECK(size > 0);
  entries_.push_back(Entry{seq, vaddr, size, false});
}

void StoreBuffer::markCommitted(SeqNum seq) {
  for (Entry& e : entries_) {
    if (e.seq == seq) {
      e.committed = true;
      return;
    }
  }
  MALEC_CHECK_MSG(false, "commit of unknown store");
}

std::optional<StoreBuffer::Entry> StoreBuffer::popCommitted() {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].committed) {
      Entry e = entries_[i];
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      return e;
    }
  }
  return std::nullopt;
}

bool StoreBuffer::coversLoad(Addr vaddr, std::uint8_t size,
                             bool split_lookup) {
  const Addr lo = vaddr;
  const Addr hi = vaddr + size;
  bool covered = false;
  for (const Entry& e : entries_) {
    if (split_lookup) {
      // Shared page-ID segment evaluated once per candidate; the narrow
      // offset comparator only fires for entries on the matching page.
      ++page_compares_;
      if (layout_.pageId(e.vaddr) != layout_.pageId(vaddr)) continue;
      ++offset_compares_;
    } else {
      ++full_compares_;
    }
    if (e.vaddr <= lo && e.vaddr + e.size >= hi) covered = true;
  }
  if (covered) ++forwards_;
  return covered;
}

bool StoreBuffer::hasOverlap(Addr vaddr, std::uint8_t size) const {
  const Addr lo = vaddr;
  const Addr hi = vaddr + size;
  return std::any_of(entries_.begin(), entries_.end(), [&](const Entry& e) {
    return e.vaddr < hi && e.vaddr + e.size > lo;
  });
}

}  // namespace malec::lsq
