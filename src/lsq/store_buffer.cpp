#include "lsq/store_buffer.h"

#include "ckpt/state_io.h"

namespace malec::lsq {

void StoreBuffer::insert(SeqNum seq, Addr vaddr, std::uint8_t size) {
  MALEC_CHECK_MSG(!full(), "StoreBuffer overflow");
  MALEC_CHECK(size > 0);
  seq_.push_back(seq);
  vaddr_.push_back(vaddr);
  size8_.push_back(size);
  page_.push_back(layout_.pageId(vaddr));
}

void StoreBuffer::markCommitted(SeqNum seq) {
  for (std::size_t i = 0; i < seq_.size(); ++i) {
    if (seq_[i] == seq) {
      committed_mask_ |= std::uint64_t{1} << i;
      return;
    }
  }
  MALEC_CHECK_MSG(false, "commit of unknown store");
}

std::optional<StoreBuffer::Entry> StoreBuffer::popCommitted() {
  if (committed_mask_ == 0) return std::nullopt;
  // Oldest committed first (buffer order, not commit order): the lowest
  // set bit is the lowest index = oldest entry.
  const std::size_t i =
      static_cast<std::size_t>(__builtin_ctzll(committed_mask_));
  Entry e{seq_[i], vaddr_[i], size8_[i], true};
  seq_.erase(seq_.begin() + static_cast<std::ptrdiff_t>(i));
  vaddr_.erase(vaddr_.begin() + static_cast<std::ptrdiff_t>(i));
  size8_.erase(size8_.begin() + static_cast<std::ptrdiff_t>(i));
  page_.erase(page_.begin() + static_cast<std::ptrdiff_t>(i));
  // Close the gap in the mask: bits below i keep their position, bits
  // above shift down by one.
  const std::uint64_t below = committed_mask_ & ((std::uint64_t{1} << i) - 1);
  const std::uint64_t above = committed_mask_ >> (i + 1);
  committed_mask_ = below | (above << i);
  return e;
}

bool StoreBuffer::coversLoad(Addr vaddr, std::uint8_t size,
                             bool split_lookup) {
  const Addr lo = vaddr;
  const Addr hi = vaddr + size;
  bool covered = false;
  if (split_lookup) {
    // Shared page-ID segment evaluated once per candidate; the narrow
    // offset comparator only fires for entries on the matching page.
    const PageId page = layout_.pageId(vaddr);
    page_compares_ += seq_.size();
    for (std::size_t i = 0; i < seq_.size(); ++i) {
      if (page_[i] != page) continue;
      ++offset_compares_;
      if (vaddr_[i] <= lo && vaddr_[i] + size8_[i] >= hi) covered = true;
    }
  } else {
    full_compares_ += seq_.size();
    for (std::size_t i = 0; i < seq_.size(); ++i)
      if (vaddr_[i] <= lo && vaddr_[i] + size8_[i] >= hi) covered = true;
  }
  if (covered) ++forwards_;
  return covered;
}

bool StoreBuffer::hasOverlap(Addr vaddr, std::uint8_t size) const {
  const Addr lo = vaddr;
  const Addr hi = vaddr + size;
  for (std::size_t i = 0; i < seq_.size(); ++i)
    if (vaddr_[i] < hi && vaddr_[i] + size8_[i] > lo) return true;
  return false;
}

void StoreBuffer::saveState(ckpt::StateWriter& w) const {
  w.u64(seq_.size());
  for (std::size_t i = 0; i < seq_.size(); ++i) {
    w.u64(seq_[i]);
    w.u64(vaddr_[i]);
    w.u8(size8_[i]);
    w.u8(((committed_mask_ >> i) & 1) != 0 ? 1 : 0);
  }
  w.u64(full_compares_);
  w.u64(page_compares_);
  w.u64(offset_compares_);
  w.u64(forwards_);
}

void StoreBuffer::loadState(ckpt::StateReader& r) {
  const std::uint64_t n = r.u64();
  MALEC_CHECK_MSG(n <= capacity_,
                  "store-buffer checkpoint exceeds this capacity");
  seq_.clear();
  vaddr_.clear();
  size8_.clear();
  page_.clear();
  committed_mask_ = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    seq_.push_back(r.u64());
    vaddr_.push_back(r.u64());
    size8_.push_back(r.u8());
    if (r.u8() != 0) committed_mask_ |= std::uint64_t{1} << i;
    page_.push_back(layout_.pageId(vaddr_.back()));
  }
  full_compares_ = r.u64();
  page_compares_ = r.u64();
  offset_compares_ = r.u64();
  forwards_ = r.u64();
}

}  // namespace malec::lsq
