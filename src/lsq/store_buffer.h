// Store Buffer: speculative stores between address computation and commit
// (24 entries, paper Table II).
//
// Loads must search the SB for younger-store forwarding. MALEC splits that
// lookup into one shared page-ID comparison (all in-flight candidates are
// known to share the page being accessed this cycle) plus narrow per-port
// offset comparators (paper Sec. IV); the baselines compare full addresses
// on every port. The SB's energy is excluded from the paper's totals, but
// we still count comparator activity so the simplification is visible in
// the stats.
//
// Layout: struct-of-arrays in buffer (allocation) order plus a committed
// bitmask, so the per-cycle forwarding scan streams flat arrays of cached
// page IDs and popCommitted() finds the oldest committed store with a
// count-trailing-zeros instead of a scan.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/address.h"
#include "common/check.h"
#include "common/types.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::lsq {

class StoreBuffer {
 public:
  struct Entry {
    SeqNum seq = 0;
    Addr vaddr = 0;
    std::uint8_t size = 0;
    bool committed = false;
  };

  StoreBuffer(std::uint32_t capacity, AddressLayout layout)
      : capacity_(capacity), layout_(layout) {
    MALEC_CHECK_MSG(capacity <= 64, "StoreBuffer capacity exceeds bitmask");
  }

  [[nodiscard]] bool full() const { return seq_.size() >= capacity_; }
  [[nodiscard]] std::size_t size() const { return seq_.size(); }

  /// Insert a store that finished address computation. Caller checks full().
  void insert(SeqNum seq, Addr vaddr, std::uint8_t size);

  /// ROB commit reached this store; it becomes eligible to drain.
  void markCommitted(SeqNum seq);

  /// Pop the oldest committed store (drains into the Merge Buffer).
  [[nodiscard]] std::optional<Entry> popCommitted();

  /// Forwarding check: does some store fully cover [vaddr, vaddr+size)?
  /// `split_lookup` selects MALEC's shared-page + narrow-offset comparator
  /// organisation for the activity counters (result is identical).
  [[nodiscard]] bool coversLoad(Addr vaddr, std::uint8_t size,
                                bool split_lookup);

  /// True if any store to the same line is older than `seq` (used to hold
  /// loads that would bypass an unresolved overlapping store).
  [[nodiscard]] bool hasOverlap(Addr vaddr, std::uint8_t size) const;

  // --- activity counters (informational; energy excluded per paper VI-A) ---
  [[nodiscard]] std::uint64_t fullWidthCompares() const {
    return full_compares_;
  }
  [[nodiscard]] std::uint64_t pageCompares() const { return page_compares_; }
  [[nodiscard]] std::uint64_t offsetCompares() const {
    return offset_compares_;
  }
  [[nodiscard]] std::uint64_t forwards() const { return forwards_; }

  /// Checkpoint/restore of all mutable state; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  std::uint32_t capacity_;  // lint:no-state(config; bounds-checked on load)
  AddressLayout layout_;    // lint:no-state(config)

  // Parallel arrays ordered oldest -> youngest (buffer order).
  std::vector<SeqNum> seq_;
  std::vector<Addr> vaddr_;
  std::vector<std::uint8_t> size8_;
  // lint:no-state(derived from vaddr_; recomputed in loadState)
  std::vector<PageId> page_;
  /// Bit i set = entry i committed. Commits can arrive out of buffer order
  /// (test_store_buffer pins this), so this is a mask, not a prefix
  /// counter; the lowest set bit is always the oldest committed store in
  /// buffer order — exactly what popCommitted must drain first.
  std::uint64_t committed_mask_ = 0;

  std::uint64_t full_compares_ = 0;
  std::uint64_t page_compares_ = 0;
  std::uint64_t offset_compares_ = 0;
  std::uint64_t forwards_ = 0;
};

}  // namespace malec::lsq
