#include "lsq/merge_buffer.h"

#include <algorithm>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::lsq {

std::uint64_t MergeBuffer::maskFor(Addr vaddr, std::uint8_t size) const {
  const std::uint32_t off = static_cast<std::uint32_t>(
      layout_.lineOffset(vaddr));
  MALEC_DCHECK(off + size <= layout_.lineBytes());
  MALEC_DCHECK(layout_.lineBytes() <= 64);
  const std::uint64_t ones =
      size >= 64 ? ~0ull : ((1ull << size) - 1);
  return ones << off;
}

bool MergeBuffer::absorb(Addr vaddr, std::uint8_t size) {
  const Addr line = layout_.lineBase(vaddr);
  for (Entry& e : entries_) {
    if (e.line_base == line) {
      e.byte_mask |= maskFor(vaddr, size);
      e.lru = ++tick_;
      ++e.merged_stores;
      ++merges_;
      return true;
    }
  }
  return false;
}

void MergeBuffer::allocate(Addr vaddr, std::uint8_t size) {
  MALEC_CHECK_MSG(!full(), "MergeBuffer overflow");
  Entry e;
  e.line_base = layout_.lineBase(vaddr);
  e.byte_mask = maskFor(vaddr, size);
  e.lru = ++tick_;
  e.merged_stores = 1;
  entries_.push_back(e);
}

std::optional<MergeBuffer::Entry> MergeBuffer::evictLru() {
  if (entries_.empty()) return std::nullopt;
  auto it = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.lru < b.lru; });
  Entry e = *it;
  entries_.erase(it);
  return e;
}

bool MergeBuffer::coversLoad(Addr vaddr, std::uint8_t size,
                             bool split_lookup) {
  const Addr line = layout_.lineBase(vaddr);
  const std::uint64_t need = maskFor(vaddr, size);
  bool covered = false;
  for (const Entry& e : entries_) {
    if (split_lookup) {
      ++page_compares_;
      if (layout_.pageId(e.line_base) != layout_.pageId(vaddr)) continue;
      ++offset_compares_;
    } else {
      ++full_compares_;
    }
    if (e.line_base == line && (e.byte_mask & need) == need) covered = true;
  }
  if (covered) ++forwards_;
  return covered;
}


void MergeBuffer::saveEntry(ckpt::StateWriter& w, const Entry& e) {
  w.u64(e.line_base);
  w.u64(e.byte_mask);
  w.u64(e.lru);
  w.u32(e.merged_stores);
}

MergeBuffer::Entry MergeBuffer::loadEntry(ckpt::StateReader& r) {
  Entry e;
  e.line_base = r.u64();
  e.byte_mask = r.u64();
  e.lru = r.u64();
  e.merged_stores = r.u32();
  return e;
}

void MergeBuffer::saveState(ckpt::StateWriter& w) const {
  w.u64(entries_.size());
  for (const Entry& e : entries_) saveEntry(w, e);
  w.u64(tick_);
  w.u64(merges_);
  w.u64(forwards_);
  w.u64(page_compares_);
  w.u64(offset_compares_);
  w.u64(full_compares_);
}

void MergeBuffer::loadState(ckpt::StateReader& r) {
  const std::uint64_t n = r.u64();
  MALEC_CHECK_MSG(n <= capacity_,
                  "merge-buffer checkpoint exceeds this capacity");
  entries_.assign(static_cast<std::size_t>(n), Entry{});
  for (Entry& e : entries_) e = loadEntry(r);
  tick_ = r.u64();
  merges_ = r.u64();
  forwards_ = r.u64();
  page_compares_ = r.u64();
  offset_compares_ = r.u64();
  full_compares_ = r.u64();
}

}  // namespace malec::lsq
