#include "lsq/merge_buffer.h"

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::lsq {

std::uint64_t MergeBuffer::maskFor(Addr vaddr, std::uint8_t size) const {
  const std::uint32_t off = static_cast<std::uint32_t>(
      layout_.lineOffset(vaddr));
  MALEC_DCHECK(off + size <= layout_.lineBytes());
  MALEC_DCHECK(layout_.lineBytes() <= 64);
  const std::uint64_t ones =
      size >= 64 ? ~0ull : ((1ull << size) - 1);
  return ones << off;
}

bool MergeBuffer::absorb(Addr vaddr, std::uint8_t size) {
  const Addr line = layout_.lineBase(vaddr);
  for (std::size_t i = 0; i < line_base_.size(); ++i) {
    if (line_base_[i] == line) {
      byte_mask_[i] |= maskFor(vaddr, size);
      lru_[i] = ++tick_;
      ++merged_[i];
      ++merges_;
      return true;
    }
  }
  return false;
}

void MergeBuffer::allocate(Addr vaddr, std::uint8_t size) {
  MALEC_CHECK_MSG(!full(), "MergeBuffer overflow");
  line_base_.push_back(layout_.lineBase(vaddr));
  byte_mask_.push_back(maskFor(vaddr, size));
  lru_.push_back(++tick_);
  merged_.push_back(1);
  page_.push_back(layout_.pageId(line_base_.back()));
}

std::optional<MergeBuffer::Entry> MergeBuffer::evictLru() {
  if (line_base_.empty()) return std::nullopt;
  // LRU ticks are unique (each merge/allocate takes a fresh ++tick_), so
  // the minimum is unambiguous; scanning low-to-high and keeping the first
  // strict improvement preserves the old min_element tie-break regardless.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < lru_.size(); ++i)
    if (lru_[i] < lru_[victim]) victim = i;
  Entry e{line_base_[victim], byte_mask_[victim], lru_[victim],
          merged_[victim]};
  line_base_.erase(line_base_.begin() + static_cast<std::ptrdiff_t>(victim));
  byte_mask_.erase(byte_mask_.begin() + static_cast<std::ptrdiff_t>(victim));
  lru_.erase(lru_.begin() + static_cast<std::ptrdiff_t>(victim));
  merged_.erase(merged_.begin() + static_cast<std::ptrdiff_t>(victim));
  page_.erase(page_.begin() + static_cast<std::ptrdiff_t>(victim));
  return e;
}

bool MergeBuffer::coversLoad(Addr vaddr, std::uint8_t size,
                             bool split_lookup) {
  const Addr line = layout_.lineBase(vaddr);
  const std::uint64_t need = maskFor(vaddr, size);
  bool covered = false;
  if (split_lookup) {
    const PageId page = layout_.pageId(vaddr);
    page_compares_ += line_base_.size();
    for (std::size_t i = 0; i < line_base_.size(); ++i) {
      if (page_[i] != page) continue;
      ++offset_compares_;
      if (line_base_[i] == line && (byte_mask_[i] & need) == need)
        covered = true;
    }
  } else {
    full_compares_ += line_base_.size();
    for (std::size_t i = 0; i < line_base_.size(); ++i)
      if (line_base_[i] == line && (byte_mask_[i] & need) == need)
        covered = true;
  }
  if (covered) ++forwards_;
  return covered;
}

void MergeBuffer::saveEntry(ckpt::StateWriter& w, const Entry& e) {
  w.u64(e.line_base);
  w.u64(e.byte_mask);
  w.u64(e.lru);
  w.u32(e.merged_stores);
}

MergeBuffer::Entry MergeBuffer::loadEntry(ckpt::StateReader& r) {
  Entry e;
  e.line_base = r.u64();
  e.byte_mask = r.u64();
  e.lru = r.u64();
  e.merged_stores = r.u32();
  return e;
}

void MergeBuffer::saveState(ckpt::StateWriter& w) const {
  w.u64(line_base_.size());
  for (std::size_t i = 0; i < line_base_.size(); ++i)
    saveEntry(w, Entry{line_base_[i], byte_mask_[i], lru_[i], merged_[i]});
  w.u64(tick_);
  w.u64(merges_);
  w.u64(forwards_);
  w.u64(page_compares_);
  w.u64(offset_compares_);
  w.u64(full_compares_);
}

void MergeBuffer::loadState(ckpt::StateReader& r) {
  const std::uint64_t n = r.u64();
  MALEC_CHECK_MSG(n <= capacity_,
                  "merge-buffer checkpoint exceeds this capacity");
  line_base_.clear();
  byte_mask_.clear();
  lru_.clear();
  merged_.clear();
  page_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Entry e = loadEntry(r);
    line_base_.push_back(e.line_base);
    byte_mask_.push_back(e.byte_mask);
    lru_.push_back(e.lru);
    merged_.push_back(e.merged_stores);
    page_.push_back(layout_.pageId(e.line_base));
  }
  tick_ = r.u64();
  merges_ = r.u64();
  forwards_ = r.u64();
  page_compares_ = r.u64();
  offset_compares_ = r.u64();
  full_compares_ = r.u64();
}

}  // namespace malec::lsq
