#include "lsq/merge_buffer.h"

#include <algorithm>

#include "common/check.h"

namespace malec::lsq {

std::uint64_t MergeBuffer::maskFor(Addr vaddr, std::uint8_t size) const {
  const std::uint32_t off = static_cast<std::uint32_t>(
      layout_.lineOffset(vaddr));
  MALEC_DCHECK(off + size <= layout_.lineBytes());
  MALEC_DCHECK(layout_.lineBytes() <= 64);
  const std::uint64_t ones =
      size >= 64 ? ~0ull : ((1ull << size) - 1);
  return ones << off;
}

bool MergeBuffer::absorb(Addr vaddr, std::uint8_t size) {
  const Addr line = layout_.lineBase(vaddr);
  for (Entry& e : entries_) {
    if (e.line_base == line) {
      e.byte_mask |= maskFor(vaddr, size);
      e.lru = ++tick_;
      ++e.merged_stores;
      ++merges_;
      return true;
    }
  }
  return false;
}

void MergeBuffer::allocate(Addr vaddr, std::uint8_t size) {
  MALEC_CHECK_MSG(!full(), "MergeBuffer overflow");
  Entry e;
  e.line_base = layout_.lineBase(vaddr);
  e.byte_mask = maskFor(vaddr, size);
  e.lru = ++tick_;
  e.merged_stores = 1;
  entries_.push_back(e);
}

std::optional<MergeBuffer::Entry> MergeBuffer::evictLru() {
  if (entries_.empty()) return std::nullopt;
  auto it = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.lru < b.lru; });
  Entry e = *it;
  entries_.erase(it);
  return e;
}

bool MergeBuffer::coversLoad(Addr vaddr, std::uint8_t size,
                             bool split_lookup) {
  const Addr line = layout_.lineBase(vaddr);
  const std::uint64_t need = maskFor(vaddr, size);
  bool covered = false;
  for (const Entry& e : entries_) {
    if (split_lookup) {
      ++page_compares_;
      if (layout_.pageId(e.line_base) != layout_.pageId(vaddr)) continue;
      ++offset_compares_;
    } else {
      ++full_compares_;
    }
    if (e.line_base == line && (e.byte_mask & need) == need) covered = true;
  }
  if (covered) ++forwards_;
  return covered;
}

}  // namespace malec::lsq
