// Experiment runner: one (benchmark, interface configuration) simulation,
// producing timing, behavioural and energy results — the unit of work every
// bench binary and example builds on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/interface_config.h"
#include "core/mem_interface.h"
#include "cpu/core_model.h"
#include "trace/workload_profile.h"

namespace malec::sim {

struct RunConfig {
  /// The workload doubles as the trace-source selector: a profile with an
  /// empty trace_path is synthesised (the default), one with a trace_path
  /// replays that captured file — through the same runOne/runManyParallel/
  /// runMatrixParallel and suite paths, with the synthetic path bit-identical
  /// to what it always produced.
  trace::WorkloadProfile workload;
  core::InterfaceConfig interface_cfg;
  core::SystemConfig system;
  /// Instructions to simulate. The paper uses 1B-instruction Simpoint
  /// phases; the synthetic workloads reach steady state much faster. For a
  /// replayed trace this caps the stream (0 = the whole file).
  std::uint64_t instructions = 200'000;
  std::uint64_t seed = 1;

  // --- checkpointing (docs/ARCHITECTURE.md "Checkpoint determinism") -------
  /// Non-empty = write a full-state `.mckpt` checkpoint to this path every
  /// `ckpt_every` retired instructions (0 falls back to MALEC_CKPT_EVERY;
  /// both 0 with an output path set is a hard error — a checkpoint file
  /// with no cadence would silently never be written). Each checkpoint
  /// atomically replaces the previous one, so the file always holds the
  /// newest resumable state. Not available in sampled mode.
  std::string ckpt_out;
  std::uint64_t ckpt_every = 0;
  /// Non-empty = restore this `.mckpt` and continue instead of starting
  /// fresh. The checkpoint must bind to this exact run — same interface
  /// and system configuration, seed, instruction budget and workload
  /// (trace binding by record count + checksum, like `.mplan`); anything
  /// else is a hard error. The continued run's RunOutput and energy
  /// report are bit-identical to the run that never stopped.
  std::string start_ckpt;
  /// Sampled replay only: warmup-state cache. The first run of a (trace,
  /// plan, config, seed) combination writes every pick's
  /// measurement-entry state to this file; later identical runs restore
  /// those states and skip all fast-forward decoding and warmup
  /// simulation — same RunOutput, bit for bit. Empty = derive a keyed
  /// path under MALEC_CKPT_WARMUP_DIR when that is set, else off.
  std::string warmup_ckpt;
};

struct RunOutput {
  std::string benchmark;
  std::string config;
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  double ipc = 0.0;
  double dynamic_pj = 0.0;
  double leakage_pj = 0.0;
  double total_pj = 0.0;
  double way_coverage = 0.0;    ///< reduced-access fraction of way lookups
  double l1_load_miss_rate = 0.0;
  double merged_load_fraction = 0.0;  ///< of submitted loads
  core::InterfaceStats ifc;
  cpu::CoreStats core;
  StatSet energy_detail;
};

/// Run one simulation. A workload with a sample_plan_path set runs in
/// phase-sampled mode: only the plan's representative intervals are
/// simulated (each primed by a stat-gated warmup prefix) and the output is
/// the weighted phase combination estimating the full replay — bit-identical
/// across repeated and parallel runs, several times faster than streaming
/// the whole capture. rc.instructions must be 0 in that mode.
[[nodiscard]] RunOutput runOne(const RunConfig& rc);

/// Run one benchmark across several interface configurations (shared
/// workload parameters and instruction budget).
[[nodiscard]] std::vector<RunOutput> runConfigs(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed = 1);

/// Run a batch of arbitrary configurations across a std::thread pool.
/// Every run is fully independent (own EnergyAccount, trace generator and
/// RNG state seeded from its RunConfig), so outputs are bit-identical to a
/// serial loop over runOne(); results come back in input order. `jobs` = 0
/// uses parallelJobs().
[[nodiscard]] std::vector<RunOutput> runManyParallel(
    const std::vector<RunConfig>& rcs, unsigned jobs = 0);

/// Parallel counterpart of runConfigs(): same outputs, sweep spread over
/// `jobs` worker threads.
[[nodiscard]] std::vector<RunOutput> runConfigsParallel(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed = 1, unsigned jobs = 0);

/// Full (workload x configuration) cross product as ONE parallel batch —
/// the whole pool stays busy instead of being capped at one row's config
/// count. Result is indexed [workload][config], each row identical to
/// runConfigs() for that workload.
[[nodiscard]] std::vector<std::vector<RunOutput>> runMatrixParallel(
    const std::vector<trace::WorkloadProfile>& wls,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed = 1, unsigned jobs = 0);

/// Capture the exact instruction stream `rc` would simulate into a v2
/// trace file at `path` (header carries rc.system.layout). Replaying the
/// file through runOne() is bit-identical to running `rc` directly. Aborts
/// on I/O failure or if `rc` already names a trace. Returns records written.
std::uint64_t captureTrace(const RunConfig& rc, const std::string& path);

/// Instruction budget honouring the MALEC_INSTR environment override
/// (lets CI shrink runs; benches default to `dflt`). A malformed value
/// aborts — "MALEC_INSTR=1e6" must never quietly simulate one instruction.
[[nodiscard]] std::uint64_t instructionBudget(std::uint64_t dflt);

/// Worker-thread count for parallel sweeps, honouring the MALEC_JOBS
/// environment override (alongside MALEC_INSTR; see instructionBudget).
/// Defaults to the hardware concurrency, never less than 1. Malformed
/// values abort, like instructionBudget.
[[nodiscard]] unsigned parallelJobs(unsigned dflt = 0);

/// Strict base-10 parse shared by every numeric knob (env vars and CLI
/// flags): the whole string must be digits and fit in 64 bits, anything
/// else aborts with a message naming `what` — no atoll-style "10abc" -> 10
/// or "abc" -> 0 silent acceptance.
[[nodiscard]] std::uint64_t parseU64Strict(const std::string& s,
                                           const char* what);

}  // namespace malec::sim
