#include "sim/suite.h"

#include <algorithm>
#include <cstdlib>

#include "common/binio.h"

namespace malec::sim {

// Implemented in specs.cpp: registers every builtin spec exactly once.
void registerBuiltinSpecs(Registry<ExperimentSpec>& reg);

Registry<ExperimentSpec>& specRegistry() {
  static Registry<ExperimentSpec>* r = [] {
    auto* reg = new Registry<ExperimentSpec>("spec");
    registerBuiltinSpecs(*reg);
    return reg;
  }();
  return *r;
}

void SuiteContext::emitTable(const Table& t, const std::string& name,
                             int precision) {
  for (ResultSink* s : sinks) s->table(t, name, precision);
}

void SuiteContext::emitText(const std::string& text) {
  for (ResultSink* s : sinks) s->note(text);
}

void SuiteContext::progressDots() const {
  if (!opts.progress) return;
  for (std::size_t w = 0; w < workloads.size(); ++w) std::fputc('.', stderr);
  std::fputc('\n', stderr);
}

std::vector<std::string> suiteWorkloadNames(const ExperimentSpec& spec) {
  const auto& reg = workloadRegistry();
  // "trace:*" in a spec's workload list expands to every registered
  // trace-replay workload (the MALEC_TRACE_DIR scan plus anything added at
  // startup) — how the trace_replay suite picks up a directory of captures.
  // An empty spec workload list means "the paper's benchmark set", NOT
  // "everything registered": MALEC_TRACE_DIR captures must never leak
  // extra rows (and shifted geomeans) into fig4a & friends — trace
  // workloads run only where a spec asks for them by name or "trace:*".
  std::vector<std::string> base;
  if (spec.workloads.empty()) {
    for (const auto& n : reg.names())
      if (!reg.get(n).isTrace()) base.push_back(n);
  } else {
    base = spec.workloads;
  }
  std::vector<std::string> names;
  for (const auto& name : base) {
    if (name == "trace:*") {
      // Plain replays only: the scan also registers "trace:<stem>:sampled"
      // variants, and those must not leak extra rows into trace_replay (or
      // sampled-of-sampled workloads into phase_sampled) — sampled
      // workloads run where a spec names them explicitly.
      for (const auto& n : reg.names())
        if (n.rfind("trace:", 0) == 0 && !reg.get(n).isSampled())
          names.push_back(n);
    } else {
      names.push_back(name);
    }
  }
  return names;
}

namespace {

std::vector<trace::WorkloadProfile> resolveWorkloads(
    const ExperimentSpec& spec, const SuiteOptions& opts) {
  std::vector<trace::WorkloadProfile> wls;
  const std::vector<std::string> names = suiteWorkloadNames(spec);
  const bool wants_traces =
      std::find(spec.workloads.begin(), spec.workloads.end(), "trace:*") !=
      spec.workloads.end();
  if (wants_traces &&
      std::none_of(names.begin(), names.end(), [](const std::string& n) {
        return n.rfind("trace:", 0) == 0;
      })) {
    const std::string msg =
        "suite '" + spec.name +
        "' wants trace workloads ('trace:*') but none are registered — "
        "point MALEC_TRACE_DIR at a directory of *.mtrace captures or "
        "list trace:<path> workloads explicitly";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  for (const auto& name : names) {
    if (!opts.workload_filter.empty() &&
        name.find(opts.workload_filter) == std::string::npos)
      continue;
    trace::WorkloadProfile wl = resolveWorkload(name);
    // Sampled workloads carry a plan path that would otherwise only be
    // opened mid-sweep — validate it now (the sampled counterpart of the
    // trace-header probing traceWorkload does), so a missing, corrupt or
    // stale sidecar fails before ANY simulation starts instead of after
    // other rows already ran.
    if (wl.isSampled()) validateSampledWorkload(wl);
    wls.push_back(std::move(wl));
  }
  return wls;
}

/// Build one TableSpec over the grid results, reproducing the legacy row /
/// geomean structure (per-suite boundaries in workload order, optional
/// overall geomean) bit-for-bit.
Table buildTable(const TableSpec& ts, const SuiteContext& ctx) {
  std::vector<std::string> cols = ts.columns;
  if (cols.empty())
    for (const auto& c : ctx.configs) cols.push_back(c.name);
  Table t(ts.title, cols);

  std::string current_suite;
  for (std::size_t w = 0; w < ctx.workloads.size(); ++w) {
    const auto& wl = ctx.workloads[w];
    if (ts.suite_geomeans && !current_suite.empty() &&
        wl.suite != current_suite)
      t.addGeomeanRow("geo.mean " + current_suite);
    current_suite = wl.suite;
    t.addRow(wl.name, ts.row(ctx, w));
  }
  if (ts.suite_geomeans && !current_suite.empty())
    t.addGeomeanRow("geo.mean " + current_suite);
  if (ts.overall_geomean) t.addOverallGeomeanRow(ts.overall_label);
  return t;
}

}  // namespace

void resolveSuiteContext(SuiteContext& ctx) {
  const ExperimentSpec& spec = ctx.spec;
  const SuiteOptions& opts = ctx.opts;
  if (spec.whole_stream_only) {
    if (opts.instructions > 0) {
      const std::string msg =
          "suite '" + spec.name +
          "' replays whole traces/plans — an instruction budget does not "
          "compose with it (drop --instr)";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
    ctx.instructions = 0;
  } else {
    ctx.instructions = opts.instructions > 0
                           ? opts.instructions
                           : instructionBudget(spec.default_instructions);
  }
  ctx.seed = opts.seed > 0 ? opts.seed : spec.seed;
  ctx.jobs = opts.jobs > 0 ? opts.jobs : parallelJobs();
  ctx.workloads = resolveWorkloads(spec, opts);
  if (!opts.workload_filter.empty() && ctx.workloads.empty()) {
    // An exit-0 run with an empty table and all-zero geomeans would look
    // like a successful result to scripted sink consumers.
    const std::string msg = "workload filter '" + opts.workload_filter +
                            "' matches no workload of suite '" + spec.name +
                            "'";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  if (spec.configs) ctx.configs = spec.configs();
}

SuiteInfo suiteInfo(const SuiteContext& ctx) {
  SuiteInfo info;
  info.name = ctx.spec.name;
  info.title = ctx.spec.title;
  info.instructions = ctx.instructions;
  info.seed = ctx.seed;
  info.jobs = ctx.jobs;
  // Custom suites run their own sweeps — there is no (workload x config)
  // grid to bind a fingerprint to.
  if (ctx.spec.configs) info.fingerprint = gridFingerprint(ctx);
  return info;
}

namespace {

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  std::uint8_t b[8];
  binio::put64(b, v);
  return binio::fnv1a(h, b, sizeof b);
}

std::uint64_t fold(std::uint64_t h, const std::string& s) {
  h = binio::fnv1a(h, reinterpret_cast<const std::uint8_t*>(s.data()),
                   s.size());
  // NUL terminator: ("ab","c") must not collide with ("a","bc").
  const std::uint8_t nul = 0;
  return binio::fnv1a(h, &nul, 1);
}

}  // namespace

std::uint64_t gridFingerprintParts(
    const std::string& suite, std::uint64_t instructions, std::uint64_t seed,
    const std::vector<std::string>& workload_names,
    const std::vector<std::string>& config_names) {
  std::uint64_t h = binio::kFnvOffset;
  h = fold(h, suite);
  h = fold(h, instructions);
  h = fold(h, seed);
  h = fold(h, static_cast<std::uint64_t>(workload_names.size()));
  for (const auto& n : workload_names) h = fold(h, n);
  h = fold(h, static_cast<std::uint64_t>(config_names.size()));
  for (const auto& n : config_names) h = fold(h, n);
  return h;
}

std::uint64_t gridFingerprint(const SuiteContext& ctx) {
  std::vector<std::string> wls, cfgs;
  wls.reserve(ctx.workloads.size());
  for (const auto& wl : ctx.workloads) wls.push_back(wl.name);
  cfgs.reserve(ctx.configs.size());
  for (const auto& cfg : ctx.configs) cfgs.push_back(cfg.name);
  return gridFingerprintParts(ctx.spec.name, ctx.instructions, ctx.seed, wls,
                              cfgs);
}

void emitRunResults(SuiteContext& ctx) {
  for (std::size_t w = 0; w < ctx.results.size(); ++w) {
    for (std::size_t c = 0; c < ctx.results[w].size(); ++c) {
      const RunRecord rec{ctx.workloads[w].name, ctx.configs[c].name,
                          ctx.results[w][c]};
      for (ResultSink* s : ctx.sinks) s->runResult(rec);
    }
  }
}

void emitSuiteTables(SuiteContext& ctx) {
  for (const TableSpec& ts : ctx.spec.tables)
    ctx.emitTable(buildTable(ts, ctx), ts.name, ts.precision);
  if (!ctx.spec.paper_anchor.empty()) ctx.emitText(ctx.spec.paper_anchor + "\n");
}

void runSuite(const ExperimentSpec& spec, const SuiteOptions& opts,
              const std::vector<ResultSink*>& sinks) {
  SuiteContext ctx{spec, opts};
  resolveSuiteContext(ctx);
  ctx.sinks = sinks;

  const SuiteInfo info = suiteInfo(ctx);
  for (ResultSink* s : sinks) s->beginSuite(info);

  if (spec.custom) {
    spec.custom(ctx);
    if (!spec.paper_anchor.empty()) ctx.emitText(spec.paper_anchor + "\n");
  } else {
    MALEC_CHECK_MSG(spec.configs != nullptr,
                    "spec without custom body needs a configuration set");
    // The whole grid as one batch: the pool is never capped at one row's
    // configuration count (this is what retired the serial runConfigs
    // stragglers like the old bench_fig4a main).
    ctx.results = runMatrixParallel(ctx.workloads, ctx.configs,
                                    ctx.instructions, ctx.seed, ctx.jobs);
    ctx.progressDots();
    emitRunResults(ctx);
    emitSuiteTables(ctx);
  }

  for (ResultSink* s : sinks) s->endSuite();
}

void runSuiteByName(const std::string& name, const SuiteOptions& opts,
                    const std::vector<ResultSink*>& sinks) {
  runSuite(specRegistry().get(name), opts, sinks);
}

int benchCompatMain(const std::string& name, std::uint64_t instructions) {
  SuiteOptions opts;
  opts.instructions = instructions;
  ConsoleSink console;
  std::vector<ResultSink*> sinks{&console};
  CsvDirSink csv{""};
  if (const char* dir = std::getenv("MALEC_CSV_DIR");
      dir != nullptr && dir[0] != '\0') {
    csv = CsvDirSink(dir);
    sinks.push_back(&csv);
  }
  runSuiteByName(name, opts, sinks);
  return 0;
}

}  // namespace malec::sim
