#include "sim/differential.h"

#include <cstddef>
#include <sstream>

#include "core/event_queue.h"
#include "cpu/core_model.h"
#include "core/mem_interface.h"

namespace malec::sim {

namespace {

template <class T>
void diffField(std::ostringstream& out, const char* name, const T& a,
               const T& b) {
  if (a == b) return;
  out << name << ": " << a << " != " << b << "\n";
}

/// Restores the exec-queue backend active at construction on scope exit,
/// so a failing diff (or an exception) cannot leak the toggle into later
/// tests.
class BackendGuard {
 public:
  BackendGuard() : saved_(core::execQueueLegacy()) {}
  ~BackendGuard() { core::setExecQueueLegacy(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  bool saved_;
};

}  // namespace

std::string diffOutputs(const RunOutput& a, const RunOutput& b) {
  std::ostringstream out;
  diffField(out, "benchmark", a.benchmark, b.benchmark);
  diffField(out, "config", a.config, b.config);
  diffField(out, "cycles", a.cycles, b.cycles);
  diffField(out, "instructions", a.instructions, b.instructions);
  // Doubles compare with ==, deliberately: the contract is bit identity,
  // not numerical closeness.
  diffField(out, "ipc", a.ipc, b.ipc);
  diffField(out, "dynamic_pj", a.dynamic_pj, b.dynamic_pj);
  diffField(out, "leakage_pj", a.leakage_pj, b.leakage_pj);
  diffField(out, "total_pj", a.total_pj, b.total_pj);
  diffField(out, "way_coverage", a.way_coverage, b.way_coverage);
  diffField(out, "l1_load_miss_rate", a.l1_load_miss_rate,
            b.l1_load_miss_rate);
  diffField(out, "merged_load_fraction", a.merged_load_fraction,
            b.merged_load_fraction);
  for (std::size_t i = 0; i < std::size(core::kInterfaceCounterFields); ++i) {
    const auto field = core::kInterfaceCounterFields[i];
    if (a.ifc.*field != b.ifc.*field)
      out << "ifc counter #" << i << ": " << a.ifc.*field << " != "
          << b.ifc.*field << "\n";
  }
  diffField(out, "core.cycles", a.core.cycles, b.core.cycles);
  diffField(out, "core.instructions", a.core.instructions,
            b.core.instructions);
  for (std::size_t i = 0; i < std::size(cpu::kCoreScaledCounterFields); ++i) {
    const auto field = cpu::kCoreScaledCounterFields[i];
    if (a.core.*field != b.core.*field)
      out << "core counter #" << i << ": " << a.core.*field << " != "
          << b.core.*field << "\n";
  }
  if (a.energy_detail.toTable() != b.energy_detail.toTable())
    out << "energy_detail.toTable() differs\n";
  return out.str();
}

std::string diffRuns(const RunConfig& rc) {
  BackendGuard guard;
  core::setExecQueueLegacy(true);
  const RunOutput legacy = runOne(rc);
  core::setExecQueueLegacy(false);
  const RunOutput calendar = runOne(rc);
  return diffOutputs(legacy, calendar);
}

std::string diffRunsParallel(const std::vector<RunConfig>& rcs,
                             unsigned jobs) {
  BackendGuard guard;
  core::setExecQueueLegacy(true);
  const std::vector<RunOutput> legacy = runManyParallel(rcs, jobs);
  core::setExecQueueLegacy(false);
  const std::vector<RunOutput> calendar = runManyParallel(rcs, jobs);
  for (std::size_t i = 0; i < rcs.size(); ++i) {
    const std::string diff = diffOutputs(legacy[i], calendar[i]);
    if (!diff.empty())
      return "batch run #" + std::to_string(i) + ":\n" + diff;
  }
  return "";
}

}  // namespace malec::sim
