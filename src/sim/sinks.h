// Pluggable result sinks for the declarative experiment layer: a suite run
// produces Tables and free-form notes, and every attached sink renders them
// its own way — pretty console tables, per-table CSV files (the old
// MALEC_CSV_DIR behaviour, now just one sink among several) or a JSON-lines
// event stream for downstream tooling.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/reporting.h"

namespace malec::sim {

struct RunOutput;

/// What a sink gets told about the suite whose results follow.
struct SuiteInfo {
  std::string name;          ///< registry key, e.g. "fig4a"
  std::string title;         ///< one-line description
  std::uint64_t instructions = 0;
  std::uint64_t seed = 0;
  unsigned jobs = 0;
  /// FNV-1a fingerprint of the resolved (workload x config) grid — the
  /// same value the sweep journal binds to (sim::gridFingerprint). 0 for
  /// custom suites, which have no grid to fingerprint.
  std::uint64_t fingerprint = 0;
};

/// One grid cell's result, announced to sinks between beginSuite() and the
/// tables: the raw material durable sinks (the .mstore StoreSink) persist.
/// `out` points into the suite's result matrix and is only valid for the
/// duration of the call.
struct RunRecord {
  const std::string& workload;  ///< resolved workload name
  const std::string& config;    ///< configuration (preset) name
  const RunOutput& out;
};

/// Receiver interface. A suite run calls beginSuite() once, then — for
/// grid suites — runResult() per grid cell in matrix order, then any mix
/// of table() and note() in output order, then endSuite(). Sinks are
/// expected to be cheap; heavy lifting (simulation) happened before
/// emission.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void beginSuite(const SuiteInfo&) {}
  /// Per-run hook, called in deterministic matrix order (workload-major)
  /// by both the in-process matrix path and the sharded coordinator's
  /// merge. Table-oriented sinks ignore it.
  virtual void runResult(const RunRecord&) {}
  /// `name` is the table's stable identifier (CSV file stem / JSON key);
  /// `precision` the decimal places the legacy bench rendered with.
  virtual void table(const Table& t, const std::string& name,
                     int precision) = 0;
  /// Free-form text (paper anchors, Table I/II prose). Includes its own
  /// newlines; stream sinks wrap it, the console prints it verbatim.
  virtual void note(const std::string& /*text*/) {}
  virtual void endSuite() {}
};

/// Pretty printer: renders exactly what the legacy bench binaries printed
/// to stdout — `render(precision)` plus a blank line, notes verbatim.
class ConsoleSink : public ResultSink {
 public:
  explicit ConsoleSink(std::FILE* out = stdout) : out_(out) {}
  void table(const Table& t, const std::string& name, int precision) override;
  void note(const std::string& text) override;

 private:
  std::FILE* out_;
};

/// Writes each table as `<dir>/<name>.csv` via Table::csv(). Notes are
/// ignored. Directory must exist; write failures are reported on stderr
/// once but do not abort the run.
class CsvDirSink : public ResultSink {
 public:
  explicit CsvDirSink(std::string dir) : dir_(std::move(dir)) {}
  void table(const Table& t, const std::string& name, int precision) override;

 private:
  std::string dir_;
};

/// One JSON object per line: suite_begin / table / row / note / suite_end
/// events, self-describing enough to rebuild every table downstream.
/// Writes either to a FILE* (not owned) or into a capture string (tests).
class JsonLinesSink : public ResultSink {
 public:
  explicit JsonLinesSink(std::FILE* out) : out_(out) {}
  explicit JsonLinesSink(std::string* capture) : capture_(capture) {}

  void beginSuite(const SuiteInfo& info) override;
  void table(const Table& t, const std::string& name, int precision) override;
  void note(const std::string& text) override;
  void endSuite() override;

 private:
  void writeLine(const std::string& line);

  std::FILE* out_ = nullptr;
  std::string* capture_ = nullptr;
  std::string suite_;
};

/// JSON string escaping (quotes, backslashes, control characters); UTF-8
/// passes through untouched.
[[nodiscard]] std::string jsonEscape(const std::string& s);

}  // namespace malec::sim
