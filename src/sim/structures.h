// Binds the mini-CACTI array model to a configuration: builds the physical
// array inventory of the L1 data memory subsystem (L1 tag/data arrays,
// uTLB+uWT, TLB+WT, optional WDU), derives per-event dynamic energies and
// per-structure leakage powers, and registers them with an EnergyAccount —
// the exact counterpart of the paper's CACTI step (Sec. VI-A).
#pragma once

#include <vector>

#include "core/interface_config.h"
#include "energy/array_model.h"
#include "energy/energy_account.h"
#include "energy/tech.h"

namespace malec::sim {

/// One modelled array with its estimate (for reports and tests).
struct StructureInfo {
  energy::SramArraySpec spec;
  energy::ArrayEstimate est;
  std::uint32_t instances = 1;  ///< e.g. one tag array per bank
};

/// Register all event energies and leakages for `cfg` on `ea`.
/// Returns the array inventory used (for inspection).
std::vector<StructureInfo> defineEnergies(
    energy::EnergyAccount& ea, const core::InterfaceConfig& cfg,
    const core::SystemConfig& sys,
    const energy::TechnologyParams& tech = energy::tech32nm());

}  // namespace malec::sim
