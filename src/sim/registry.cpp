#include "sim/registry.h"

#include "sim/presets.h"
#include "trace/workloads.h"

namespace malec::sim {

Registry<trace::WorkloadProfile>& workloadRegistry() {
  static Registry<trace::WorkloadProfile>* r = [] {
    auto* reg = new Registry<trace::WorkloadProfile>("workload");
    for (const auto& wl : trace::allWorkloads()) reg->add(wl.name, wl);
    return reg;
  }();
  return *r;
}

Registry<PresetFn>& presetRegistry() {
  static Registry<PresetFn>* r = [] {
    auto* reg = new Registry<PresetFn>("preset");
    auto add = [&](PresetFn fn) {
      // Sequence the name lookup before the move: argument evaluation
      // order in a single call is unspecified.
      const std::string name = fn().name;
      reg->add(name, std::move(fn));
    };
    // Table I interfaces, then the Fig. 4 latency variants, then the
    // Sec. V / VI-C / VI-D ablation and extension variants.
    add(&presetBase1ldst);
    add(&presetBase2ld1st);
    add(&presetMalec);
    add(&presetBase2ld1st1cycle);
    add(&presetMalec3cycle);
    add([] { return presetMalecWdu(8); });
    add([] { return presetMalecWdu(16); });
    add([] { return presetMalecWdu(32); });
    add(&presetMalecNoWaydet);
    add(&presetMalecNoFeedback);
    add(&presetMalecNoMerge);
    add(&presetMalecAdaptive);
    add(&presetMalec4ld2st);
    return reg;
  }();
  return *r;
}

}  // namespace malec::sim
