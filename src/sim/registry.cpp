#include "sim/registry.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "phase/sample_plan.h"
#include "sim/presets.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

namespace malec::sim {

namespace {

constexpr const char* kTraceScheme = "trace:";
constexpr const char* kTraceExt = ".mtrace";
constexpr const char* kSampledSuffix = ":sampled";

/// "traces/gcc.mtrace" -> "gcc".
std::string traceStem(const std::string& path) {
  return std::filesystem::path(path).stem().string();
}

[[nodiscard]] bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// One trace-replay workload per *.mtrace in `dir`, sorted by filename so
/// the registration (and table-row) order is stable across platforms. A
/// trace with a VALID `.mplan` sidecar additionally registers its
/// phase-sampled variant ("trace:<stem>:sampled"); a missing or unusable
/// sidecar just skips the variant — the phase_sampled suite reports why.
void registerTraceDir(Registry<trace::WorkloadProfile>& reg,
                      const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    const std::string msg =
        "MALEC_TRACE_DIR='" + dir + "' cannot be scanned: " + ec.message();
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  std::vector<std::string> paths;
  for (const auto& entry : it)
    if (entry.is_regular_file() && entry.path().extension() == kTraceExt)
      paths.push_back(entry.path().string());
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    const auto wl = traceWorkload(p);
    reg.add(wl.name, wl);
    const std::string plan_path = phase::planSidecarPath(p);
    if (!std::filesystem::exists(plan_path, ec)) continue;
    phase::SamplePlan plan;
    std::string err;
    if (!phase::loadSamplePlan(plan_path, plan, err)) continue;
    trace::TraceReader probe(p);
    if (!probe.ok() || !phase::planBindsTo(plan, probe)) continue;
    const auto sampled = sampledWorkloadUnchecked(wl);
    reg.add(sampled.name, sampled);
  }
}

}  // namespace

Registry<trace::WorkloadProfile>& workloadRegistry() {
  static Registry<trace::WorkloadProfile>* r = [] {
    auto* reg = new Registry<trace::WorkloadProfile>("workload");
    for (const auto& wl : trace::allWorkloads()) reg->add(wl.name, wl);
    if (const char* dir = std::getenv("MALEC_TRACE_DIR");
        dir != nullptr && dir[0] != '\0')
      registerTraceDir(*reg, dir);
    return reg;
  }();
  return *r;
}

void registerTraceWorkloadsFrom(const std::string& dir) {
  registerTraceDir(workloadRegistry(), dir);
}

trace::WorkloadProfile traceWorkload(const std::string& path) {
  {
    // Validate the header (magic, version, size-vs-count) now: the sweep
    // machinery should reject a bad trace before any simulation starts.
    trace::TraceReader probe(path);
    if (!probe.ok()) MALEC_CHECK_MSG(false, probe.error().c_str());
  }
  trace::WorkloadProfile wl;
  wl.name = kTraceScheme + traceStem(path);
  wl.suite = "trace";
  wl.trace_path = path;
  return wl;
}

trace::WorkloadProfile sampledWorkloadUnchecked(
    const trace::WorkloadProfile& wl, const std::string& plan_path) {
  MALEC_CHECK_MSG(wl.isTrace(),
                  "sampledWorkload() needs a trace-backed workload");
  trace::WorkloadProfile out = wl;
  out.sample_plan_path =
      plan_path.empty() ? phase::planSidecarPath(wl.trace_path) : plan_path;
  out.name = wl.name + ":sampled";
  return out;
}

trace::WorkloadProfile sampledWorkload(const trace::WorkloadProfile& wl,
                                       const std::string& plan_path,
                                       phase::SamplePlan* out_plan) {
  trace::WorkloadProfile out = sampledWorkloadUnchecked(wl, plan_path);
  phase::SamplePlan plan;
  std::string err;
  if (!phase::loadSamplePlan(out.sample_plan_path, plan, err)) {
    const std::string msg =
        err + " — write a plan with `trace_tools phases " + wl.trace_path +
        "`";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  if (out_plan != nullptr) *out_plan = std::move(plan);
  return out;
}

trace::WorkloadProfile resolveWorkload(const std::string& name) {
  const auto& reg = workloadRegistry();
  if (const trace::WorkloadProfile* p = reg.tryGet(name)) return *p;
  if (name.rfind(kTraceScheme, 0) == 0) {
    // A ":sampled" suffix selects phase-sampled replay of the named trace
    // — it must never be swallowed into the file path (a path ending in
    // ":sampled" is no trace anyone captured). The suffix only counts when
    // a non-empty base remains after stripping it: the degenerate name
    // "trace:sampled" means the path "sampled", not a sampled nothing.
    if (endsWith(name, kSampledSuffix) &&
        name.size() >
            std::string(kTraceScheme).size() +
                std::string(kSampledSuffix).size()) {
      const std::string base_name =
          name.substr(0, name.size() - std::string(kSampledSuffix).size());
      // "trace:<stem>:sampled" for a registered stem whose sidecar was
      // missing/stale at scan time: resolve through the registered base so
      // the error names the plan, not a nonexistent file called "<stem>".
      if (const trace::WorkloadProfile* base = reg.tryGet(base_name))
        return sampledWorkload(*base);
      auto wl =
          traceWorkload(base_name.substr(std::string(kTraceScheme).size()));
      wl.name = base_name;  // keep the user-supplied path form (see below)
      // sampledWorkload validates the plan sidecar up front — a missing
      // plan aborts here with the `trace_tools phases` hint — and appends
      // ":sampled", restoring exactly the name that was asked for.
      return sampledWorkload(wl);
    }
    auto wl = traceWorkload(name.substr(std::string(kTraceScheme).size()));
    // Keep the user-supplied form: two ad-hoc paths with the same stem
    // must stay distinguishable in table rows and sink records, and the
    // emitted name should match what was asked for.
    wl.name = name;
    return wl;
  }
  return reg.get(name);  // aborts with the registry inventory
}

void validateSampledWorkload(const trace::WorkloadProfile& wl) {
  MALEC_CHECK_MSG(wl.isTrace() && wl.isSampled(),
                  "validateSampledWorkload() needs a sampled trace workload");
  phase::SamplePlan plan;
  std::string err;
  if (!phase::loadSamplePlan(wl.sample_plan_path, plan, err)) {
    const std::string msg = err + " — write a plan with `trace_tools phases " +
                            wl.trace_path + "`";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  trace::TraceReader probe(wl.trace_path);
  if (!probe.ok()) MALEC_CHECK_MSG(false, probe.error().c_str());
  if (!phase::planBindsTo(plan, probe)) {
    const std::string msg =
        "sample plan '" + wl.sample_plan_path +
        "' was computed from a different trace than '" + wl.trace_path +
        "' — re-run `trace_tools phases`";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
}

Registry<PresetFn>& presetRegistry() {
  static Registry<PresetFn>* r = [] {
    auto* reg = new Registry<PresetFn>("preset");
    auto add = [&](PresetFn fn) {
      // Sequence the name lookup before the move: argument evaluation
      // order in a single call is unspecified.
      const std::string name = fn().name;
      reg->add(name, std::move(fn));
    };
    // Table I interfaces, then the Fig. 4 latency variants, then the
    // Sec. V / VI-C / VI-D ablation and extension variants.
    add(&presetBase1ldst);
    add(&presetBase2ld1st);
    add(&presetMalec);
    add(&presetBase2ld1st1cycle);
    add(&presetMalec3cycle);
    add([] { return presetMalecWdu(8); });
    add([] { return presetMalecWdu(16); });
    add([] { return presetMalecWdu(32); });
    add(&presetMalecNoWaydet);
    add(&presetMalecNoFeedback);
    add(&presetMalecNoMerge);
    add(&presetMalecAdaptive);
    add(&presetMalec4ld2st);
    return reg;
  }();
  return *r;
}

}  // namespace malec::sim
