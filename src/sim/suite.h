// The declarative experiment-suite layer: an ExperimentSpec describes one
// paper figure/table reproduction — which workloads, which interface
// configurations, which metric columns, how rows are normalised and which
// paper numbers anchor the result — and runSuite() executes the whole
// (workload x configuration) grid as ONE runMatrixParallel batch, emitting
// the results through pluggable ResultSinks.
//
// Every legacy bench binary is a ~20-line spec registration in specs.cpp
// plus a thin compat main; `malec_bench` drives any registered spec.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/registry.h"
#include "sim/sinks.h"

namespace malec::sim {

struct ExperimentSpec;

/// Per-invocation overrides (CLI flags / tests). Zero / empty = use the
/// spec's defaults and the MALEC_INSTR / MALEC_JOBS environment knobs.
struct SuiteOptions {
  std::uint64_t instructions = 0;  ///< 0 => instructionBudget(spec default)
  std::uint64_t seed = 0;          ///< 0 => spec.seed
  unsigned jobs = 0;               ///< 0 => parallelJobs()
  std::string workload_filter;     ///< substring filter on workload names
  bool progress = true;            ///< stderr progress dots
};

/// Execution state handed to row builders and custom suite bodies; also the
/// emission façade over the attached sinks.
struct SuiteContext {
  SuiteContext(const ExperimentSpec& s, const SuiteOptions& o)
      : spec(s), opts(o) {}

  const ExperimentSpec& spec;
  const SuiteOptions& opts;
  std::uint64_t instructions = 0;  ///< resolved budget for this run
  std::uint64_t seed = 1;          ///< resolved seed
  unsigned jobs = 0;               ///< resolved worker count
  std::vector<trace::WorkloadProfile> workloads;  ///< resolved + filtered
  std::vector<core::InterfaceConfig> configs;     ///< resolved
  /// Matrix results indexed [workload][config]; filled before table
  /// building for matrix specs, empty for custom suites (which run their
  /// own sweeps).
  std::vector<std::vector<RunOutput>> results;

  void emitTable(const Table& t, const std::string& name, int precision = 1);
  void emitText(const std::string& text);
  /// One stderr dot per workload (suppressed by opts.progress = false) —
  /// the legacy bench progress signal, shared by the matrix path and the
  /// custom bodies that run their own sweeps.
  void progressDots() const;

  std::vector<ResultSink*> sinks;  ///< non-owning
};

/// One output table of a spec: a title, columns (empty = the configuration
/// names) and a row rule mapping one workload's RunOutputs to column values
/// — the normalisation lives here.
struct TableSpec {
  std::string name;   ///< stable identifier (CSV stem / JSON key)
  std::string title;
  std::vector<std::string> columns;
  std::function<std::vector<double>(const SuiteContext&, std::size_t wl_idx)>
      row;
  /// Insert per-suite geometric-mean rows ("geo.mean SPEC-INT", ...) at
  /// suite boundaries, the way Fig. 4 is plotted.
  bool suite_geomeans = false;
  /// Append an overall geometric-mean row labelled `overall_label`.
  bool overall_geomean = false;
  std::string overall_label = "geo.mean";
  int precision = 1;  ///< decimal places for the rendered form
};

/// The declarative unit: everything `malec_bench --suite <name>` needs.
struct ExperimentSpec {
  std::string name;         ///< registry key, e.g. "fig4a"
  std::string title;        ///< one-line description for --list
  std::string paper_anchor; ///< trailing note with the paper's numbers
  /// Workload names (resolved through workloadRegistry()); empty = all.
  std::vector<std::string> workloads;
  /// Configuration set factory; null for custom suites without a grid.
  std::function<std::vector<core::InterfaceConfig>()> configs;
  std::uint64_t default_instructions = 100'000;
  /// This suite always streams whole traces/plans (phase_sampled): an
  /// explicit --instr is a hard error — a cap does not compose with a
  /// sample plan — while the blanket MALEC_INSTR knob resolves to 0 so a
  /// job-wide CI budget neither breaks `--all` nor shows up untruthfully
  /// in SuiteInfo (0 = whole stream, which is what actually runs).
  bool whole_stream_only = false;
  /// Optional `--all` gate: return a non-empty reason and the suite is
  /// skipped (with a note) in an --all sweep whose preconditions it cannot
  /// meet — an --all run must never abort mid-stream over one
  /// inapplicable suite. Receives the sweep's options so the gate can
  /// honour --filter exactly like the suite body will. An explicit
  /// `--suite <name>` ignores this and fails loudly inside the suite.
  std::function<std::string(const SuiteOptions&)> all_skip;
  std::uint64_t seed = 1;
  std::vector<TableSpec> tables;
  /// Escape hatch for suites that are not a plain (workload x config)
  /// grid (Fig. 1 locality analysis, the Table I/II methodology dump, the
  /// host microbenchmarks): when set, runSuite() resolves options and
  /// workloads, then hands control to this body instead of the matrix +
  /// tables path.
  std::function<void(SuiteContext&)> custom;
};

/// All registered experiment specs. First use registers the builtin specs
/// covering every legacy bench binary.
[[nodiscard]] Registry<ExperimentSpec>& specRegistry();

/// The workload names `spec` resolves to BEFORE --filter is applied: an
/// empty spec list expands to the paper set, "trace:*" to every
/// registered trace workload (possibly none here — resolveWorkloads
/// aborts on that with a MALEC_TRACE_DIR hint, the --all gating in
/// malec_bench skips with a note instead).
[[nodiscard]] std::vector<std::string> suiteWorkloadNames(
    const ExperimentSpec& spec);

/// Resolve a SuiteContext's options, workloads and configurations —
/// everything runSuite does BEFORE any simulation. Shared with the sweep
/// coordinator (src/sweep/), which must shard the exact grid an
/// in-process run would execute: budget/seed/jobs fallbacks, workload
/// resolution + filtering (sampled sidecars validated up front), the
/// empty-filter-match hard error and the config-set factory all live here
/// once.
void resolveSuiteContext(SuiteContext& ctx);

/// The SuiteInfo sinks are introduced with, derived from a resolved ctx.
[[nodiscard]] SuiteInfo suiteInfo(const SuiteContext& ctx);

/// FNV-1a fingerprint over an explicit grid identity: suite name, resolved
/// budget, seed, ordered workload names, ordered config names. The one
/// definition every durable surface binds to — the sweep journal
/// (`.mjournal`), the result store (`.mstore`) and the explorer's
/// resume check all compare THIS value, so "same grid" means the same
/// thing everywhere. Workload names are post-filter: a different --filter
/// is a different grid.
[[nodiscard]] std::uint64_t gridFingerprintParts(
    const std::string& suite, std::uint64_t instructions, std::uint64_t seed,
    const std::vector<std::string>& workload_names,
    const std::vector<std::string>& config_names);

/// gridFingerprintParts over a resolved SuiteContext.
[[nodiscard]] std::uint64_t gridFingerprint(const SuiteContext& ctx);

/// Announce every grid cell of ctx.results to the attached sinks via
/// runResult(), in matrix order (workload-major) — the emission step that
/// feeds durable sinks. Shared by runSuite and the sweep coordinator's
/// merge so both paths produce identical store contents. No-op when
/// ctx.results is empty (custom suites).
void emitRunResults(SuiteContext& ctx);

/// Build each TableSpec over ctx.results and emit tables + the paper
/// anchor through ctx.sinks — the emission half of runSuite, shared with
/// the sweep coordinator so a sharded sweep's merged report is
/// byte-identical to the in-process run. Callers bracket this with
/// beginSuite()/endSuite() themselves.
void emitSuiteTables(SuiteContext& ctx);

/// Execute one spec: resolve workloads/configs, run the grid through
/// runMatrixParallel (or the custom body), build each TableSpec with its
/// geomean rows, and emit tables + paper anchor through `sinks`.
void runSuite(const ExperimentSpec& spec, const SuiteOptions& opts,
              const std::vector<ResultSink*>& sinks);

/// Registry-resolving convenience; unknown names abort with the spec
/// inventory (CLI callers should tryGet first for a friendly exit).
void runSuiteByName(const std::string& name, const SuiteOptions& opts,
                    const std::vector<ResultSink*>& sinks);

/// Shared main() body for the thin legacy bench wrappers: runs `name` with
/// a console sink, plus a CSV sink when MALEC_CSV_DIR is set — the exact
/// legacy bench behaviour. `instructions` > 0 overrides the budget.
int benchCompatMain(const std::string& name, std::uint64_t instructions = 0);

}  // namespace malec::sim
