#include "sim/structures.h"

#include "common/address.h"

namespace malec::sim {

namespace {
using energy::ArrayEstimate;
using energy::ArrayKind;
using energy::CellType;
using energy::SramArraySpec;
using energy::SramArrayModel;
}  // namespace

std::vector<StructureInfo> defineEnergies(
    energy::EnergyAccount& ea, const core::InterfaceConfig& cfg,
    const core::SystemConfig& sys, const energy::TechnologyParams& tech) {
  std::vector<StructureInfo> inv;
  const AddressLayout& L = sys.layout;
  const bool way_tables = cfg.waydet == core::WayDetKind::kWayTables;
  const bool wdu = cfg.waydet == core::WayDetKind::kWdu;

  const std::uint32_t tag_bits =
      L.addrBits() - log2Exact(L.l1Sets()) - log2Exact(L.lineBytes());
  const std::uint32_t state_bits = 2;  // valid + dirty

  // --- L1 tag arrays (one per bank; a read compares all ways) -------------
  SramArraySpec tag;
  tag.name = "l1.tag";
  tag.entries = L.l1SetsPerBank();
  tag.entry_bits = L.l1Assoc() * (tag_bits + state_bits);
  tag.rw_ports = 1;
  tag.rd_ports = cfg.l1_extra_rd_ports;
  tag.cell = CellType::kLowStandbyPower;
  const ArrayEstimate tag_est = SramArrayModel::estimate(tag, tech);
  inv.push_back({tag, tag_est, L.l1Banks()});

  // --- L1 data arrays (one per bank per way; a read delivers one
  //     sub-block pair: two adjacent 128-bit sub-blocks, Sec. IV) ----------
  // Sub-blocked data arrays: a plain access reads one 128-bit sub-block
  // per way; MALEC configurations read two adjacent sub-blocks per access
  // to double load-merge opportunities (Sec. IV) and therefore pay a wider
  // read. The paper's conventional access fires all ways in parallel.
  SramArraySpec data;
  data.name = "l1.data";
  data.entries = L.l1SetsPerBank();
  data.entry_bits = L.lineBytes() * 8;
  data.read_bits = (cfg.subblocked_pair_read ? 2 : 1) * L.subBlockBytes() * 8;
  data.rw_ports = 1;
  data.rd_ports = cfg.l1_extra_rd_ports;
  data.cell = CellType::kLowStandbyPower;
  const ArrayEstimate data_est = SramArrayModel::estimate(data, tech);
  inv.push_back({data, data_est, L.l1Banks() * L.l1Assoc()});

  // --- uTLB / TLB: fully-associative virtual tag CAM over a payload RAM.
  //     With way tables, a second physical tag CAM provides the reverse
  //     lookups used by WT validity maintenance (paper VI-A).
  const std::uint32_t page_bits = L.pageIdBits();
  auto makeTlbCam = [&](const char* name, std::uint32_t entries) {
    SramArraySpec s;
    s.name = name;
    s.kind = ArrayKind::kCam;
    s.entries = entries;
    s.entry_bits = page_bits + 2;  // ppage + flags payload
    s.search_bits = page_bits;
    s.rw_ports = 1;
    s.rd_ports = cfg.tlb_extra_rd_ports;
    s.cell = CellType::kLowStandbyPower;
    return s;
  };
  const SramArraySpec utlb_v = makeTlbCam("utlb.vtag", sys.utlb_entries);
  const SramArraySpec tlb_v = makeTlbCam("tlb.vtag", sys.tlb_entries);
  const ArrayEstimate utlb_v_est = SramArrayModel::estimate(utlb_v, tech);
  const ArrayEstimate tlb_v_est = SramArrayModel::estimate(tlb_v, tech);
  inv.push_back({utlb_v, utlb_v_est, 1});
  inv.push_back({tlb_v, tlb_v_est, 1});

  ArrayEstimate utlb_p_est{}, tlb_p_est{};
  if (way_tables) {
    // Reverse (physical) tag arrays are single-ported: fills/evictions are
    // not parallel events.
    SramArraySpec utlb_p = makeTlbCam("utlb.ptag", sys.utlb_entries);
    utlb_p.rd_ports = 0;
    SramArraySpec tlb_p = makeTlbCam("tlb.ptag", sys.tlb_entries);
    tlb_p.rd_ports = 0;
    utlb_p_est = SramArrayModel::estimate(utlb_p, tech);
    tlb_p_est = SramArrayModel::estimate(tlb_p, tech);
    inv.push_back({utlb_p, utlb_p_est, 1});
    inv.push_back({tlb_p, tlb_p_est, 1});
  }

  // --- Way Tables: single-ported RAMs, one entry per TLB slot, 2 bits per
  //     line of the page (128-bit entries, Sec. V).
  ArrayEstimate uwt_est{}, wt_est{};
  if (way_tables) {
    SramArraySpec uwt;
    uwt.name = "uwt";
    uwt.entries = sys.utlb_entries;
    uwt.entry_bits = 2 * L.linesPerPage();
    // Column-muxed: a lookup delivers only the 2-bit codes of the (at most
    // banks) lines accessed this cycle, not the full 128-bit entry.
    uwt.read_bits = 2 * L.l1Banks() * 2;
    uwt.rw_ports = 1;
    uwt.cell = CellType::kLowStandbyPower;
    uwt_est = SramArrayModel::estimate(uwt, tech);
    inv.push_back({uwt, uwt_est, 1});

    SramArraySpec wt = uwt;
    wt.name = "wt";
    wt.entries = sys.tlb_entries;
    wt_est = SramArrayModel::estimate(wt, tech);
    inv.push_back({wt, wt_est, 1});
  }

  // --- WDU: fully-associative line-tag CAM; needs one search port per
  //     parallel memory reference (four for the evaluated MALEC, VI-C).
  ArrayEstimate wdu_est{};
  if (wdu) {
    SramArraySpec w;
    w.name = "wdu";
    w.kind = ArrayKind::kCam;
    w.entries = cfg.wdu_entries;
    w.entry_bits = 4;  // way + valid payload
    w.search_bits = L.addrBits() - log2Exact(L.lineBytes());
    w.rw_ports = 1;
    w.rd_ports = 3;  // 4 total search ports
    w.cell = CellType::kLowStandbyPower;
    wdu_est = SramArrayModel::estimate(w, tech);
    inv.push_back({w, wdu_est, 1});
  }

  // === events ==============================================================
  // L1 control logic: decoders/muxes/comparators outside the arrays.
  const double ctrl_pj = 0.45;
  ea.defineEvent("l1.tag_read", tag_est.read_pj);
  ea.defineEvent("l1.tag_write", tag_est.write_pj);
  ea.defineEvent("l1.data_read", data_est.read_pj);
  ea.defineEvent("l1.data_write", data_est.write_pj);
  // A full line transfer moves lineBytes/read_bits beats.
  const double pairs_per_line =
      static_cast<double>(L.lineBytes() * 8) / data.read_bits;
  ea.defineEvent("l1.line_write", data_est.write_pj * pairs_per_line);
  ea.defineEvent("l1.line_read", data_est.read_pj * pairs_per_line);
  ea.defineEvent("l1.ctrl", ctrl_pj);

  ea.defineEvent("utlb.search", utlb_v_est.search_pj);
  ea.defineEvent("tlb.search", tlb_v_est.search_pj);
  ea.defineEvent("utlb.psearch", way_tables ? utlb_p_est.search_pj : 0.0);
  ea.defineEvent("tlb.psearch", way_tables ? tlb_p_est.search_pj : 0.0);

  ea.defineEvent("uwt.read", way_tables ? uwt_est.read_pj : 0.0);
  ea.defineEvent("uwt.write", way_tables ? uwt_est.write_pj : 0.0);
  ea.defineEvent("wt.read", way_tables ? wt_est.read_pj : 0.0);
  ea.defineEvent("wt.write", way_tables ? wt_est.write_pj : 0.0);

  ea.defineEvent("wdu.search", wdu ? wdu_est.search_pj : 0.0);
  ea.defineEvent("wdu.write", wdu ? wdu_est.write_pj : 0.0);

  // === leakage =============================================================
  for (const StructureInfo& s : inv)
    ea.defineLeakage(s.spec.name, s.est.leak_mw * s.instances);
  ea.defineLeakage("l1.ctrl", 0.05);

  return inv;
}

}  // namespace malec::sim
