// Differential bit-identity harness: run the same configuration under two
// implementation variants and prove the outputs equal, field for field.
//
// The concrete variant pair this PR introduces is the exec-event queue
// backend (legacy std::priority_queue vs the calendar/bucket queue, toggled
// via core::setExecQueueLegacy / MALEC_LEGACY_EXEC_QUEUE) — but the
// comparison half (diffOutputs) is generic and is also what the checkpoint
// round-trip tests assert with.
//
// The contract matches docs/ARCHITECTURE.md "Checkpoint determinism":
// "bit-identical" means every RunOutput scalar, every interface and core
// counter, and the byte-exact energy report table.
#pragma once

#include <string>
#include <vector>

#include "sim/experiment.h"

namespace malec::sim {

/// Compare two RunOutputs exhaustively: identity fields, timing, the
/// derived doubles (compared bit-exactly, not within a tolerance), every
/// InterfaceStats and CoreStats counter, and the full energy report via
/// StatSet::toTable(). Returns "" when identical, otherwise a newline-
/// separated list of the differing fields with both values.
[[nodiscard]] std::string diffOutputs(const RunOutput& a, const RunOutput& b);

/// Run `rc` once under the legacy heap backend and once under the calendar
/// queue, and diffOutputs() the results. The backend active on entry is
/// restored before returning (the toggle only ever flips between runs —
/// every EventQueue binds its backend at construction).
[[nodiscard]] std::string diffRuns(const RunConfig& rc);

/// Batched variant: the whole batch goes through runManyParallel under one
/// backend, then the other — the toggle never flips inside a batch — and
/// results are diffed pairwise. Returns "" or the first run's differences
/// prefixed with its batch index.
[[nodiscard]] std::string diffRunsParallel(const std::vector<RunConfig>& rcs,
                                           unsigned jobs = 0);

}  // namespace malec::sim
