#include "sim/presets.h"

#include "common/check.h"

namespace malec::sim {

core::SystemConfig defaultSystem() {
  return core::SystemConfig{};  // defaults encode Table II
}

core::InterfaceConfig presetBase1ldst() {
  core::InterfaceConfig c;
  c.name = "Base1ldst";
  c.kind = core::InterfaceKind::kBase1LdSt;
  c.l1_latency = 2;
  c.agu_load_only = 0;
  c.agu_load_store = 1;  // 1 ld/st per cycle
  c.agu_store_only = 0;
  c.l1_extra_rd_ports = 0;
  c.tlb_extra_rd_ports = 0;
  c.waydet = core::WayDetKind::kNone;
  c.merge_loads = false;
  c.subblocked_pair_read = false;  // plain single-sub-block reads
  return c;
}

core::InterfaceConfig presetBase2ld1st() {
  core::InterfaceConfig c;
  c.name = "Base2ld1st";
  c.kind = core::InterfaceKind::kBase2Ld1St;
  c.l1_latency = 2;
  c.agu_load_only = 2;  // 2 ld + 1 st per cycle
  c.agu_load_store = 0;
  c.agu_store_only = 1;
  c.l1_extra_rd_ports = 1;   // 1 rd/wt + 1 rd
  c.tlb_extra_rd_ports = 2;  // 1 rd/wt + 2 rd
  c.waydet = core::WayDetKind::kNone;
  c.merge_loads = false;
  c.subblocked_pair_read = false;  // plain single-sub-block reads
  return c;
}

core::InterfaceConfig presetMalec() {
  core::InterfaceConfig c;
  c.name = "MALEC";
  c.kind = core::InterfaceKind::kMalec;
  c.l1_latency = 2;
  c.agu_load_only = 1;  // 1 ld + 2 ld/st (Table I)
  c.agu_load_store = 2;
  c.agu_store_only = 0;
  c.l1_extra_rd_ports = 0;   // single-ported banks
  c.tlb_extra_rd_ports = 0;  // single-ported uTLB/TLB
  c.ib_carry_slots = 2;      // storage for up to two loads (VI-A)
  c.ib_group_comparators = 5;// five 20-bit comparators (VI-A)
  c.result_buses = 2;        // same LQ write bandwidth as Base2ld1st (2 ld)
  c.merge_window = 3;
  c.merge_loads = true;
  c.subblocked_pair_read = true;
  c.waydet = core::WayDetKind::kWayTables;
  c.last_entry_feedback = true;
  return c;
}

core::InterfaceConfig presetBase2ld1st1cycle() {
  core::InterfaceConfig c = presetBase2ld1st();
  c.name = "Base2ld1st_1cycleL1";
  c.l1_latency = 1;
  return c;
}

core::InterfaceConfig presetMalec3cycle() {
  core::InterfaceConfig c = presetMalec();
  c.name = "MALEC_3cycleL1";
  c.l1_latency = 3;
  return c;
}

core::InterfaceConfig presetMalecWdu(std::uint32_t entries) {
  core::InterfaceConfig c = presetMalec();
  c.name = "MALEC_WDU" + std::to_string(entries);
  c.waydet = core::WayDetKind::kWdu;
  c.wdu_entries = entries;
  return c;
}

core::InterfaceConfig presetMalecNoWaydet() {
  core::InterfaceConfig c = presetMalec();
  c.name = "MALEC_noWayDet";
  c.waydet = core::WayDetKind::kNone;
  return c;
}

core::InterfaceConfig presetMalecNoFeedback() {
  core::InterfaceConfig c = presetMalec();
  c.name = "MALEC_noFeedback";
  c.last_entry_feedback = false;
  return c;
}

core::InterfaceConfig presetMalecNoMerge() {
  core::InterfaceConfig c = presetMalec();
  c.name = "MALEC_noMerge";
  c.merge_loads = false;
  return c;
}

core::InterfaceConfig presetMalecAdaptive() {
  core::InterfaceConfig c = presetMalec();
  c.name = "MALEC_adaptive";
  c.adaptive_bypass = true;
  return c;
}

core::InterfaceConfig presetMalec4ld2st() {
  core::InterfaceConfig c = presetMalec();
  c.name = "MALEC_4ld2st";
  c.agu_load_only = 4;  // Fig. 2a: 4 loads + 2 stores in parallel
  c.agu_load_store = 0;
  c.agu_store_only = 2;
  c.ib_carry_slots = 3;        // "up to three loads from previous cycles"
  c.ib_group_comparators = 7;  // 3 carried + 4 new - head + 1 MBE
  c.result_buses = 4;          // Fig. 2a result busses 0..3
  return c;
}

std::vector<core::InterfaceConfig> fig4Configs() {
  return {presetBase1ldst(), presetBase2ld1st1cycle(), presetBase2ld1st(),
          presetMalec(), presetMalec3cycle()};
}

std::unique_ptr<core::MemInterface> makeInterface(
    const core::InterfaceConfig& cfg, const core::SystemConfig& sys,
    energy::EnergyAccount& ea) {
  switch (cfg.kind) {
    case core::InterfaceKind::kMalec:
      return std::make_unique<core::MalecInterface>(cfg, sys, ea);
    case core::InterfaceKind::kBase1LdSt:
    case core::InterfaceKind::kBase2Ld1St:
      return std::make_unique<core::BaselineInterface>(cfg, sys, ea);
  }
  MALEC_CHECK(false);
  return nullptr;
}

}  // namespace malec::sim
