#include "sim/experiment.h"

#include <cstdlib>

#include "energy/energy_account.h"
#include "sim/presets.h"
#include "sim/structures.h"
#include "trace/synth_generator.h"

namespace malec::sim {

RunOutput runOne(const RunConfig& rc) {
  energy::EnergyAccount ea;
  defineEnergies(ea, rc.interface_cfg, rc.system);

  trace::SyntheticTraceGenerator gen(rc.workload, rc.system.layout,
                                     rc.instructions, rc.seed);
  auto ifc = makeInterface(rc.interface_cfg, rc.system, ea);
  cpu::CoreModel core(rc.system, rc.interface_cfg, gen, *ifc);

  // Safety bound: no workload should need 60 cycles per instruction.
  const cpu::CoreStats cs = core.run(rc.instructions * 60 + 100'000);

  RunOutput out;
  out.benchmark = rc.workload.name;
  out.config = rc.interface_cfg.name;
  out.cycles = cs.cycles;
  out.instructions = cs.instructions;
  out.ipc = cs.ipc();
  out.core = cs;
  out.ifc = ifc->stats();
  out.dynamic_pj = ea.dynamicPj();
  out.leakage_pj = ea.leakagePj(cs.cycles, rc.system.clock_ghz);
  out.total_pj = out.dynamic_pj + out.leakage_pj;
  out.way_coverage = out.ifc.wayCoverage();
  out.l1_load_miss_rate =
      out.ifc.load_l1_accesses == 0
          ? 0.0
          : static_cast<double>(out.ifc.load_l1_misses) /
                static_cast<double>(out.ifc.load_l1_accesses);
  out.merged_load_fraction =
      out.ifc.loads_submitted == 0
          ? 0.0
          : static_cast<double>(out.ifc.merged_loads) /
                static_cast<double>(out.ifc.loads_submitted);
  out.energy_detail = ea.report(cs.cycles, rc.system.clock_ghz);
  return out;
}

std::vector<RunOutput> runConfigs(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed) {
  std::vector<RunOutput> outs;
  outs.reserve(cfgs.size());
  for (const auto& cfg : cfgs) {
    RunConfig rc;
    rc.workload = wl;
    rc.interface_cfg = cfg;
    rc.system = defaultSystem();
    rc.instructions = instructions;
    rc.seed = seed;
    outs.push_back(runOne(rc));
  }
  return outs;
}

std::uint64_t instructionBudget(std::uint64_t dflt) {
  if (const char* env = std::getenv("MALEC_INSTR"); env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return dflt;
}

}  // namespace malec::sim
