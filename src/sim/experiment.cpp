#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include <cmath>
#include <iterator>

#include "ckpt/state_io.h"
#include "common/binio.h"
#include "common/check.h"
#include "energy/energy_account.h"
#include "phase/sample_plan.h"
#include "sim/presets.h"
#include "sim/structures.h"
#include "trace/synth_generator.h"
#include "trace/trace_io.h"

namespace malec::sim {

namespace {

/// Env knob accessor — defined with the other env helpers below.
std::uint64_t envU64(const char* name, std::uint64_t dflt);

/// The pluggable trace source behind runOne(): a synthetic generator for
/// profile workloads (the original, bit-identical path) or a file reader
/// for trace-backed ones. `reader` stays null for synthetic sources and
/// lets the caller verify the stream survived intact after the run;
/// `synth`/`limited` expose the concrete objects the checkpoint layer
/// saves and restores.
struct ResolvedSource {
  std::unique_ptr<trace::TraceSource> src;
  trace::TraceReader* reader = nullptr;
  trace::SyntheticTraceGenerator* synth = nullptr;
  trace::LimitedTraceSource* limited = nullptr;
  std::uint64_t instructions = 0;  ///< effective stream length
};

/// Abort unless the trace's captured AddressLayout (v2 headers) matches the
/// layout this run simulates — shared by the full-replay and phase-sampled
/// paths.
void checkReplayLayout(const trace::TraceReader& rd, const RunConfig& rc) {
  if (!rd.hasLayout()) return;
  const auto& p = rd.layoutParams();
  const AddressLayout& l = rc.system.layout;
  const bool match =
      p.addr_bits == l.addrBits() && p.page_bytes == l.pageBytes() &&
      p.line_bytes == l.lineBytes() &&
      p.sub_block_bytes == l.subBlockBytes() && p.l1_bytes == l.l1Bytes() &&
      p.l1_assoc == l.l1Assoc() && p.l1_banks == l.l1Banks();
  if (!match) {
    const std::string msg =
        "trace '" + rc.workload.trace_path +
        "' was captured under a different AddressLayout than the one this "
        "run simulates — replaying it would decompose every address "
        "differently";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
}

/// A replay must never report results off a stream that died mid-file or a
/// file whose payload is corrupt beyond the replayed prefix:
/// finishChecksum() hashes whatever an instruction cap (or sample plan)
/// left unread, so a partial replay is held to the same integrity bar as a
/// full one. A file is fully verified at most once per process (keyed by
/// path + record count + expected checksum, so a changed file re-verifies)
/// — a sweep of many configs over one big capped trace must not re-read the
/// remainder once per run.
void verifyReaderTail(trace::TraceReader& reader, const std::string& path) {
  static std::mutex verified_mu;
  static std::set<std::string>* verified = new std::set<std::string>();
  const std::string key = path + "\n" + std::to_string(reader.total()) +
                          "\n" +
                          std::to_string(reader.expectedChecksum());
  bool skip_tail_verify;
  {
    std::lock_guard<std::mutex> lock(verified_mu);
    skip_tail_verify = verified->count(key) != 0;
  }
  const bool good =
      skip_tail_verify ? reader.ok() : reader.finishChecksum();
  if (!good) MALEC_CHECK_MSG(false, reader.error().c_str());
  if (!skip_tail_verify) {
    std::lock_guard<std::mutex> lock(verified_mu);
    verified->insert(key);
  }
}

ResolvedSource makeTraceSource(const RunConfig& rc) {
  ResolvedSource rs;
  if (!rc.workload.isTrace()) {
    auto gen = std::make_unique<trace::SyntheticTraceGenerator>(
        rc.workload, rc.system.layout, rc.instructions, rc.seed);
    rs.synth = gen.get();
    rs.src = std::move(gen);
    rs.instructions = rc.instructions;
    return rs;
  }
  auto rd = std::make_unique<trace::TraceReader>(rc.workload.trace_path);
  if (!rd->ok()) MALEC_CHECK_MSG(false, rd->error().c_str());
  checkReplayLayout(*rd, rc);
  trace::TraceReader* reader = rd.get();
  const std::uint64_t total = rd->total();
  std::uint64_t n = rc.instructions == 0 ? total
                                         : std::min(rc.instructions, total);
  if (n < total) {
    auto lim = std::make_unique<trace::LimitedTraceSource>(std::move(rd), n);
    rs.limited = lim.get();
    rs.src = std::move(lim);
  } else {
    rs.src = std::move(rd);
  }
  rs.reader = reader;
  rs.instructions = n;
  return rs;
}

/// Serves the next `count` records of a shared reader with seq rebased to
/// start at 0 — a CoreModel's ROB indexing assumes the first dispatched
/// record's seq matches its (zero-initialised) head pointer. Dependency
/// distances reaching back past the segment start exceed the rebased seq
/// and are dropped by the core's addDep bound check, which is exactly the
/// sampling approximation we want.
class SegmentSource final : public trace::TraceSource {
 public:
  SegmentSource(trace::TraceReader& rd, std::uint64_t count)
      : rd_(rd), remaining_(count) {}

  bool next(trace::InstrRecord& out) override {
    if (remaining_ == 0 || !rd_.next(out)) return false;
    if (!have_base_) {
      base_ = out.seq;
      have_base_ = true;
    }
    out.seq -= base_;
    --remaining_;
    return true;
  }
  void reset() override {
    MALEC_CHECK_MSG(false, "segment sources cannot rewind a shared reader");
  }

 private:
  trace::TraceReader& rd_;
  std::uint64_t remaining_;
  std::uint64_t base_ = 0;
  bool have_base_ = false;
};

RunOutput runOneSampled(const RunConfig& rc);

// --- checkpoint orchestration (.mckpt, src/ckpt) ----------------------------
//
// A checkpoint binds to one exact run: the full interface + system
// configuration, seed and instruction budget are fingerprinted into the
// meta section, the workload by its statistical profile (synthetic) or by
// the trace's record count + checksum (like `.mplan`). Restoring under
// anything else is a hard error — a checkpoint silently applied to a
// different run would produce plausible-looking nonsense.

/// Canonical little-endian byte stream of a value sequence, FNV-1a hashed.
class BindingHasher {
 public:
  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    binio::put64(b, v);
    h_ = binio::fnv1a(h_, b, sizeof b);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    h_ = binio::fnv1a(h_, reinterpret_cast<const std::uint8_t*>(s.data()),
                      s.size());
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = binio::kFnvOffset;
};

void hashLayout(BindingHasher& h, const AddressLayout& l) {
  h.u64(l.addrBits());
  h.u64(l.pageBytes());
  h.u64(l.lineBytes());
  h.u64(l.subBlockBytes());
  h.u64(l.l1Bytes());
  h.u64(l.l1Assoc());
  h.u64(l.l1Banks());
}

void hashProfile(BindingHasher& h, const trace::WorkloadProfile& wl) {
  // Every statistical parameter the generator draws from. The trace and
  // plan paths are deliberately NOT hashed — files may move; trace-backed
  // runs bind by record count + checksum instead.
  h.f64(wl.mem_fraction);
  h.f64(wl.load_share);
  h.u64(wl.streams);
  h.f64(wl.p_switch_stream);
  h.f64(wl.p_same_page);
  h.f64(wl.p_sequential);
  h.u64(wl.stride_bytes);
  h.f64(wl.p_same_line);
  h.u64(wl.ws_pages);
  h.f64(wl.hot_fraction);
  h.u64(wl.hot_pages);
  h.f64(wl.p_stream_advance);
  h.f64(wl.dep_on_load);
  h.u64(wl.dep_distance_cap);
  h.f64(wl.addr_dep_on_load);
  h.f64(wl.dep_on_prev);
  h.f64(wl.store_p_same_page);
  h.f64(wl.store_p_adjacent);
  h.f64(wl.store_near_load);
  h.u64(wl.access_size);
}

/// Fingerprint of everything that shapes a run besides the trace bytes:
/// interface config, system config, seed, budget and the workload's
/// synthetic statistics.
std::uint64_t runBindingHash(const RunConfig& rc) {
  BindingHasher h;
  const core::InterfaceConfig& c = rc.interface_cfg;
  h.str(c.name);
  h.u64(static_cast<std::uint64_t>(c.kind));
  h.u64(c.l1_latency);
  h.u64(c.agu_load_only);
  h.u64(c.agu_load_store);
  h.u64(c.agu_store_only);
  h.u64(c.l1_extra_rd_ports);
  h.u64(c.tlb_extra_rd_ports);
  h.u64(c.ib_carry_slots);
  h.u64(c.ib_group_comparators);
  h.u64(c.result_buses);
  h.u64(c.merge_window);
  h.u64(c.merge_loads ? 1 : 0);
  h.u64(c.subblocked_pair_read ? 1 : 0);
  h.u64(static_cast<std::uint64_t>(c.waydet));
  h.u64(c.wdu_entries);
  h.u64(c.last_entry_feedback ? 1 : 0);
  h.u64(c.last_entry_depth);
  h.u64(c.adaptive_bypass ? 1 : 0);
  h.u64(c.bypass_window);
  h.f64(c.bypass_threshold);
  h.f64(c.bypass_min_coverage);
  const core::SystemConfig& s = rc.system;
  hashLayout(h, s.layout);
  h.u64(s.rob_entries);
  h.u64(s.fetch_width);
  h.u64(s.issue_width);
  h.u64(s.commit_width);
  h.u64(s.lq_entries);
  h.u64(s.sb_entries);
  h.u64(s.mb_entries);
  h.u64(s.utlb_entries);
  h.u64(s.tlb_entries);
  h.u64(s.l2_latency);
  h.u64(s.dram_latency);
  h.u64(s.page_walk_latency);
  h.u64(s.mshrs);
  h.f64(s.clock_ghz);
  h.u64(s.seed);
  h.u64(rc.seed);
  h.u64(rc.instructions);
  hashProfile(h, rc.workload);
  return h.value();
}

void writeMetaSection(ckpt::StateWriter& w, const RunConfig& rc,
                      const ResolvedSource& src) {
  w.beginSection("meta");
  w.u64(runBindingHash(rc));
  w.str(rc.workload.name);
  w.u8(rc.workload.isTrace() ? 1 : 0);
  if (src.reader != nullptr) {
    w.u64(src.reader->total());
    w.u64(src.reader->expectedChecksum());
  }
  w.endSection();
}

/// Validate the meta section against `rc` + the freshly-opened source.
/// Aborts with a specific message per mismatch class.
void checkMetaSection(ckpt::StateReader& r, const std::string& path,
                      const RunConfig& rc, const ResolvedSource& src) {
  r.openSection("meta");
  if (r.u64() != runBindingHash(rc)) {
    const std::string msg =
        "checkpoint '" + path +
        "' was taken under a different run configuration (interface/system "
        "parameters, seed, instruction budget or workload statistics) — it "
        "cannot resume this run";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  const std::string wl_name = r.str();
  if (wl_name != rc.workload.name) {
    const std::string msg = "checkpoint '" + path + "' was taken from "
                            "workload '" + wl_name + "', not '" +
                            rc.workload.name + "'";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  const bool was_trace = r.u8() != 0;
  MALEC_CHECK_MSG(was_trace == rc.workload.isTrace(),
                  "checkpoint disagrees with this run about the trace "
                  "source kind");
  if (was_trace) {
    const std::uint64_t total = r.u64();
    const std::uint64_t sum = r.u64();
    if (total != src.reader->total() ||
        sum != src.reader->expectedChecksum()) {
      const std::string msg =
          "checkpoint '" + path + "' was taken from a different trace than "
          "'" + rc.workload.trace_path + "' (record count or checksum "
          "mismatch) — a checkpoint never applies across captures";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
  }
  r.endSection();
}

void saveSourceState(ckpt::StateWriter& w, const ResolvedSource& src) {
  w.beginSection("source");
  if (src.reader != nullptr) {
    w.u64(src.reader->consumed());
    w.u64(src.reader->runningChecksum());
  } else {
    src.synth->saveState(w);
  }
  w.endSection();
}

void loadSourceState(ckpt::StateReader& r, ResolvedSource& src) {
  r.openSection("source");
  if (src.reader != nullptr) {
    const std::uint64_t pos = r.u64();
    const std::uint64_t sum = r.u64();
    if (!src.reader->seekTo(pos, sum))
      MALEC_CHECK_MSG(false, src.reader->error().c_str());
    if (src.limited != nullptr) src.limited->setServed(pos);
  } else {
    src.synth->loadState(r);
  }
  r.endSection();
}

/// Snapshot the complete simulation state into `rc.ckpt_out` — called from
/// the core's end-of-cycle hook, so everything sits at a consistent
/// instruction boundary.
void saveRunState(const RunConfig& rc, const ResolvedSource& src,
                  const energy::EnergyAccount& ea,
                  const core::MemInterface& ifc, const cpu::CoreModel& core) {
  ckpt::StateWriter w;
  writeMetaSection(w, rc, src);
  saveSourceState(w, src);
  w.beginSection("core");
  core.saveState(w);
  w.endSection();
  w.beginSection("interface");
  ifc.saveState(w);
  w.endSection();
  w.beginSection("energy");
  ea.saveState(w);
  w.endSection();
  std::string err;
  if (!w.writeTo(rc.ckpt_out, err)) MALEC_CHECK_MSG(false, err.c_str());
}

/// Fingerprint of a sample plan — the warmup cache binds to the exact pick
/// set, not just the trace.
std::uint64_t planFingerprint(const phase::SamplePlan& plan) {
  BindingHasher h;
  h.u64(plan.interval_size);
  h.u64(plan.warmup_instructions);
  h.u64(plan.trace_records);
  h.u64(plan.trace_checksum);
  h.u64(plan.picks.size());
  for (const phase::PhasePick& p : plan.picks) {
    h.u64(p.interval_index);
    h.u64(p.weight_instructions);
  }
  return h.value();
}

/// Restore `rc.start_ckpt` into the freshly-constructed simulation stack.
void restoreRunState(const RunConfig& rc, ResolvedSource& src,
                     energy::EnergyAccount& ea, core::MemInterface& ifc,
                     cpu::CoreModel& core) {
  ckpt::StateReader r(rc.start_ckpt);
  if (!r.ok()) MALEC_CHECK_MSG(false, r.error().c_str());
  checkMetaSection(r, rc.start_ckpt, rc, src);
  loadSourceState(r, src);
  r.openSection("core");
  core.loadState(r);
  r.endSection();
  r.openSection("interface");
  ifc.loadState(r);
  r.endSection();
  r.openSection("energy");
  ea.loadState(r);
  r.endSection();
}

/// The metrics every run derives identically from its counters: energy
/// rollups from the account and the rate fields from out.ifc. Shared by
/// the full-replay and phase-sampled paths so the two can never diverge
/// on a derivation or zero-guard — the phase_sampled suite's error
/// columns depend on both paths deriving metrics the same way.
void finalizeDerivedMetrics(RunOutput& out, const energy::EnergyAccount& ea,
                            Cycle cycles, double clock_ghz) {
  out.dynamic_pj = ea.dynamicPj();
  out.leakage_pj = ea.leakagePj(cycles, clock_ghz);
  out.total_pj = out.dynamic_pj + out.leakage_pj;
  out.way_coverage = out.ifc.wayCoverage();
  out.l1_load_miss_rate =
      out.ifc.load_l1_accesses == 0
          ? 0.0
          : static_cast<double>(out.ifc.load_l1_misses) /
                static_cast<double>(out.ifc.load_l1_accesses);
  out.merged_load_fraction =
      out.ifc.loads_submitted == 0
          ? 0.0
          : static_cast<double>(out.ifc.merged_loads) /
                static_cast<double>(out.ifc.loads_submitted);
  out.energy_detail = ea.report(cycles, clock_ghz);
}

}  // namespace

RunOutput runOne(const RunConfig& rc) {
  if (rc.workload.isSampled()) return runOneSampled(rc);
  MALEC_CHECK_MSG(rc.warmup_ckpt.empty(),
                  "warmup_ckpt is a sampled-replay feature — full runs "
                  "checkpoint via ckpt_out/start_ckpt");

  energy::EnergyAccount ea;
  defineEnergies(ea, rc.interface_cfg, rc.system);

  ResolvedSource src = makeTraceSource(rc);
  auto ifc = makeInterface(rc.interface_cfg, rc.system, ea);
  cpu::CoreModel core(rc.system, rc.interface_cfg, *src.src, *ifc);

  MALEC_CHECK_MSG(rc.ckpt_every == 0 || !rc.ckpt_out.empty(),
                  "ckpt_every has nowhere to write — set ckpt_out too");
  if (!rc.start_ckpt.empty()) restoreRunState(rc, src, ea, *ifc, core);
  bool wrote_ckpt = false;
  if (!rc.ckpt_out.empty()) {
    const std::uint64_t every =
        rc.ckpt_every != 0 ? rc.ckpt_every : envU64("MALEC_CKPT_EVERY", 0);
    MALEC_CHECK_MSG(every != 0,
                    "a checkpoint output path needs an interval — set "
                    "ckpt_every (--ckpt-every) or MALEC_CKPT_EVERY");
    core.setCheckpointHook(
        every, [&rc, &src, &ea, &ifc, &core, &wrote_ckpt] {
          saveRunState(rc, src, ea, *ifc, core);
          wrote_ckpt = true;
        });
  }

  // Safety bound: no workload should need 60 cycles per instruction.
  const cpu::CoreStats cs = core.run(src.instructions * 60 + 100'000);

  // A FRESH run that asked for checkpoints but retired fewer instructions
  // than one interval would exit 0 with no file — and the user would only
  // find out at resume time, after the expensive run is gone. (A resumed
  // run legitimately ends without crossing another boundary.)
  if (!rc.ckpt_out.empty() && rc.start_ckpt.empty() && !wrote_ckpt) {
    const std::string msg =
        "checkpoint interval exceeds the run: no checkpoint was written to "
        "'" + rc.ckpt_out + "' — lower ckpt_every/MALEC_CKPT_EVERY below "
        "the instruction budget";
    MALEC_CHECK_MSG(false, msg.c_str());
  }

  if (src.reader != nullptr)
    verifyReaderTail(*src.reader, rc.workload.trace_path);

  RunOutput out;
  out.benchmark = rc.workload.name;
  out.config = rc.interface_cfg.name;
  out.cycles = cs.cycles;
  out.instructions = cs.instructions;
  out.ipc = cs.ipc();
  out.core = cs;
  out.ifc = ifc->stats();
  finalizeDerivedMetrics(out, ea, cs.cycles, rc.system.clock_ghz);
  return out;
}

namespace {

/// Phase-sampled replay: simulate only the plan's representative intervals
/// — each primed by a warmup prefix whose stats and energy are gated off —
/// and report the weighted phase combination as the full-trace estimate.
///
/// ONE interface (caches, TLB, way tables, WDU) lives across the whole
/// pass, so memory-system state accumulates from segment to segment the
/// way it would across a full replay; fast-forwarded stretches leave it
/// untouched (the staleness this introduces is the sampling
/// approximation, bounded by the per-pick warmup that re-primes the hot
/// set). Warmup segments run with the EnergyAccount's StatGate closed and
/// their interface counters snapshotted away; each segment gets a fresh
/// CoreModel, so the pipeline resets at segment boundaries exactly like
/// at a SimPoint boundary. Every estimate is a deterministic fold in pick
/// order, so repeated and parallel runs are bit-identical.
RunOutput runOneSampled(const RunConfig& rc) {
  MALEC_CHECK_MSG(rc.workload.isTrace(),
                  "a sample plan needs a trace-backed workload — synthetic "
                  "profiles replay in full");
  MALEC_CHECK_MSG(rc.instructions == 0,
                  "sampled replay does not compose with an instruction cap "
                  "(the plan determines what is simulated) — run with "
                  "--instr 0 / MALEC_INSTR unset");

  phase::SamplePlan plan;
  std::string err;
  if (!phase::loadSamplePlan(rc.workload.sample_plan_path, plan, err))
    MALEC_CHECK_MSG(false, err.c_str());

  trace::TraceReader rd(rc.workload.trace_path);
  if (!rd.ok()) MALEC_CHECK_MSG(false, rd.error().c_str());
  checkReplayLayout(rd, rc);
  // The plan binds to one exact trace: record count always, payload
  // checksum when the trace format carries one (v2).
  if (!phase::planBindsTo(plan, rd)) {
    const std::string msg =
        "sample plan '" + rc.workload.sample_plan_path +
        "' was computed from a different trace than '" +
        rc.workload.trace_path + "' — re-run `trace_tools phases`";
    MALEC_CHECK_MSG(false, msg.c_str());
  }

  MALEC_CHECK_MSG(rc.ckpt_out.empty() && rc.start_ckpt.empty(),
                  "sampled replay does not compose with ckpt_out/start_ckpt "
                  "— its checkpoint reuse is the warmup cache (warmup_ckpt "
                  "/ MALEC_CKPT_WARMUP_DIR)");

  // Warmup cache: a `.mckpt` holding every pick's measurement-entry state.
  // First run of a (trace, plan, config, seed) combination writes it;
  // later identical runs restore each pick's state and skip all
  // fast-forward decoding and warmup simulation. Results are bit-identical
  // either way: the restored states are exactly what the skipped work
  // would have recomputed.
  std::string cache_path = rc.warmup_ckpt;
  if (cache_path.empty()) {
    if (const char* dir = std::getenv("MALEC_CKPT_WARMUP_DIR");
        dir != nullptr && dir[0] != '\0') {
      BindingHasher key;
      key.u64(runBindingHash(rc));
      key.u64(planFingerprint(plan));
      char hex[17];
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(key.value()));
      cache_path = std::string(dir) + "/warmup_" + hex + ".mckpt";
    }
  }
  std::unique_ptr<ckpt::StateReader> cache_in;
  std::unique_ptr<ckpt::StateWriter> cache_out;
  if (!cache_path.empty()) {
    std::error_code ec;
    if (std::filesystem::exists(cache_path, ec)) {
      cache_in = std::make_unique<ckpt::StateReader>(cache_path);
      if (!cache_in->ok()) MALEC_CHECK_MSG(false, cache_in->error().c_str());
      cache_in->openSection("meta");
      if (cache_in->u64() != runBindingHash(rc) ||
          cache_in->u64() != planFingerprint(plan)) {
        const std::string msg =
            "warmup cache '" + cache_path + "' was written for a different "
            "(trace, plan, config, seed) combination — delete it or point "
            "warmup_ckpt elsewhere";
        MALEC_CHECK_MSG(false, msg.c_str());
      }
      const std::uint64_t total = cache_in->u64();
      const std::uint64_t sum = cache_in->u64();
      if (total != rd.total() || sum != rd.expectedChecksum()) {
        const std::string msg =
            "warmup cache '" + cache_path + "' was computed from a "
            "different trace than '" + rc.workload.trace_path + "'";
        MALEC_CHECK_MSG(false, msg.c_str());
      }
      MALEC_CHECK_MSG(cache_in->u64() == plan.picks.size(),
                      "warmup cache pick count disagrees with the plan");
      cache_in->endSection();
    } else {
      cache_out = std::make_unique<ckpt::StateWriter>();
      cache_out->beginSection("meta");
      cache_out->u64(runBindingHash(rc));
      cache_out->u64(planFingerprint(plan));
      cache_out->u64(rd.total());
      cache_out->u64(rd.expectedChecksum());
      cache_out->u64(plan.picks.size());
      cache_out->endSection();
    }
  }

  // Weighted-combination accumulators: full-trace estimates as doubles,
  // folded in pick order. est += measured * (cluster weight / measured
  // instructions) scales each representative to the phase it stands for.
  double cycles_est = 0.0;
  std::vector<double> event_est;
  constexpr std::size_t kNumIfcFields = std::size(core::kInterfaceCounterFields);
  constexpr std::size_t kNumCoreFields = std::size(cpu::kCoreScaledCounterFields);
  std::vector<double> ifc_est(kNumIfcFields, 0.0);
  std::vector<double> core_est(kNumCoreFields, 0.0);

  energy::EnergyAccount ea;
  defineEnergies(ea, rc.interface_cfg, rc.system);
  auto ifc = makeInterface(rc.interface_cfg, rc.system, ea);
  // The event-id space is fixed once the interface is constructed — the
  // run only counts — so per-segment event deltas are plain snapshots.
  event_est.resize(ea.eventTypes(), 0.0);
  std::vector<std::uint64_t> ev_snap(ea.eventTypes(), 0);

  std::uint64_t pos = 0;  // records consumed from the reader so far
  // One continuous simulated timeline across every segment: the shared
  // interface keys busy windows and miss ready times to absolute cycles,
  // so each segment's core resumes the clock where the previous one left
  // off instead of restarting at 0 (see CoreModel::run's start_cycle).
  Cycle sim_clock = 0;
  trace::InstrRecord skip;
  for (std::size_t k = 0; k < plan.picks.size(); ++k) {
    const phase::PhasePick& pick = plan.picks[k];
    const std::uint64_t start = pick.interval_index * plan.interval_size;
    const std::uint64_t end =
        std::min(start + plan.interval_size, plan.trace_records);
    // The warmup prefix is clamped at the trace start AND at the previous
    // segment's end: a representative adjacent to the previous pick has
    // (part of) its warmup window already consumed by the sequential
    // reader, so it runs with whatever prefix the gap affords — a bias
    // that is part of the sampling approximation, and deterministic.
    const std::uint64_t warm =
        std::min(plan.warmup_instructions, start - std::min(start, pos));
    const std::uint64_t warm_start = start - warm;

    const std::string pick_key = "pick" + std::to_string(k);
    if (cache_in != nullptr) {
      // Warm-state restore: jump the reader and the whole memory system
      // straight to this pick's measurement entry — the state the skipped
      // fast-forward + warmup would have recomputed, bit for bit.
      cache_in->openSection(pick_key + ".source");
      const std::uint64_t saved_pos = cache_in->u64();
      const std::uint64_t saved_sum = cache_in->u64();
      cache_in->endSection();
      MALEC_CHECK_MSG(saved_pos == start,
                      "warmup cache pick position disagrees with the plan");
      if (!rd.seekTo(saved_pos, saved_sum))
        MALEC_CHECK_MSG(false, rd.error().c_str());
      pos = saved_pos;
      cache_in->openSection(pick_key + ".clock");
      sim_clock = cache_in->u64();
      cache_in->endSection();
      cache_in->openSection(pick_key + ".interface");
      ifc->loadState(*cache_in);
      cache_in->endSection();
      cache_in->openSection(pick_key + ".energy");
      ea.loadState(*cache_in);
      cache_in->endSection();
    } else {
      // Fast-forward: decode-only, no simulation — this skip is where the
      // wall-clock win over a full replay comes from.
      while (pos < warm_start && rd.next(skip)) ++pos;
      MALEC_CHECK_MSG(pos == warm_start, rd.error().c_str());

      if (warm > 0) {
        // Warmup: primes caches/TLB/WDU; the StatGate drops its energy and
        // the stats snapshot below removes its counters.
        energy::StatGate gate(ea);
        SegmentSource wsrc(rd, warm);
        cpu::CoreModel wcore(rc.system, rc.interface_cfg, wsrc, *ifc);
        const cpu::CoreStats ws = wcore.run(warm * 60 + 100'000, sim_clock);
        sim_clock += ws.cycles;
        // An under-consumed warmup (reader failure or the safety bound)
        // would silently desynchronise `pos` from the reader and shift
        // every later segment onto the wrong intervals.
        MALEC_CHECK_MSG(ws.instructions == warm,
                        "sampled warmup did not retire every instruction");
        pos += warm;
        gate.open();
      }
      if (cache_out != nullptr) {
        // Measurement-entry snapshot — exactly what the restore path above
        // loads back on the next run of this combination.
        cache_out->beginSection(pick_key + ".source");
        cache_out->u64(rd.consumed());
        cache_out->u64(rd.runningChecksum());
        cache_out->endSection();
        cache_out->beginSection(pick_key + ".clock");
        cache_out->u64(sim_clock);
        cache_out->endSection();
        cache_out->beginSection(pick_key + ".interface");
        ifc->saveState(*cache_out);
        cache_out->endSection();
        cache_out->beginSection(pick_key + ".energy");
        ea.saveState(*cache_out);
        cache_out->endSection();
      }
    }
    const core::InterfaceStats warm_snap = ifc->stats();
    for (energy::EnergyAccount::EventId id = 0; id < ea.eventTypes(); ++id)
      ev_snap[id] = ea.eventCount(id);

    SegmentSource msrc(rd, end - start);
    cpu::CoreModel core(rc.system, rc.interface_cfg, msrc, *ifc);
    const cpu::CoreStats cs =
        core.run((end - start) * 60 + 100'000, sim_clock);
    sim_clock += cs.cycles;
    pos += end - start;
    MALEC_CHECK_MSG(rd.ok(), rd.error().c_str());
    MALEC_CHECK_MSG(cs.instructions == end - start,
                    "sampled interval did not retire every instruction");
    if (cache_out != nullptr) {
      // Running checksum at measurement end — the restore path's per-pick
      // integrity reference (see below).
      cache_out->beginSection(pick_key + ".endsum");
      cache_out->u64(rd.runningChecksum());
      cache_out->endSection();
    }
    if (cache_in != nullptr) {
      // Each restore seeds the reader with the CACHED running checksum, so
      // the final tail verification alone would only vouch for the last
      // measured window. Holding every window's measured hash against the
      // value recorded at cache-write time closes that gap: a byte flipped
      // inside any simulated stretch is a hard error, exactly like the
      // sequential sampled path. (The skipped gaps were fully verified
      // when the cache was written; skipping them is the cache's point.)
      cache_in->openSection(pick_key + ".endsum");
      const std::uint64_t end_sum = cache_in->u64();
      cache_in->endSection();
      if (rd.runningChecksum() != end_sum) {
        const std::string msg =
            "'" + rc.workload.trace_path + "': record checksum mismatch "
            "inside a sampled measurement window — the trace changed since "
            "warmup cache '" + cache_path + "' was written";
        MALEC_CHECK_MSG(false, msg.c_str());
      }
    }

    const double scale = static_cast<double>(pick.weight_instructions) /
                         static_cast<double>(cs.instructions);
    cycles_est += static_cast<double>(cs.cycles) * scale;
    for (std::size_t i = 0; i < kNumCoreFields; ++i)
      core_est[i] +=
          static_cast<double>(cs.*cpu::kCoreScaledCounterFields[i]) * scale;

    const core::InterfaceStats delta =
        core::statsDelta(ifc->stats(), warm_snap);
    for (std::size_t i = 0; i < kNumIfcFields; ++i)
      ifc_est[i] += static_cast<double>(
                        delta.*core::kInterfaceCounterFields[i]) *
                    scale;
    for (energy::EnergyAccount::EventId id = 0; id < ea.eventTypes(); ++id)
      event_est[id] +=
          static_cast<double>(ea.eventCount(id) - ev_snap[id]) * scale;
  }

  // Hash the remainder so a sampled replay vouches for the whole file's
  // integrity exactly like a capped full replay does.
  verifyReaderTail(rd, rc.workload.trace_path);

  // The warmup cache is only written after the whole pass (tail checksum
  // included) succeeded — and atomically, so parallel runs of the same
  // combination race benignly (all write identical bytes).
  if (cache_out != nullptr) {
    std::string err;
    if (!cache_out->writeTo(cache_path, err))
      MALEC_CHECK_MSG(false, err.c_str());
  }

  // One internally-consistent estimate: round the combined counters once,
  // then derive every reported rate and energy from the rounded values the
  // same way the full-replay path derives them from measured ones.
  RunOutput out;
  out.benchmark = rc.workload.name;
  out.config = rc.interface_cfg.name;
  out.instructions = plan.trace_records;
  out.cycles = static_cast<Cycle>(std::llround(cycles_est));
  if (out.cycles == 0) out.cycles = 1;
  out.ipc = static_cast<double>(out.instructions) /
            static_cast<double>(out.cycles);
  for (std::size_t i = 0; i < kNumIfcFields; ++i)
    out.ifc.*core::kInterfaceCounterFields[i] =
        static_cast<std::uint64_t>(std::llround(ifc_est[i]));
  out.core.cycles = out.cycles;
  out.core.instructions = out.instructions;
  for (std::size_t i = 0; i < kNumCoreFields; ++i)
    out.core.*cpu::kCoreScaledCounterFields[i] =
        static_cast<std::uint64_t>(std::llround(core_est[i]));

  ea.clearCounts();
  for (energy::EnergyAccount::EventId id = 0; id < ea.eventTypes(); ++id)
    ea.count(id, static_cast<std::uint64_t>(std::llround(event_est[id])));
  finalizeDerivedMetrics(out, ea, out.cycles, rc.system.clock_ghz);
  return out;
}

}  // namespace

namespace {

/// Shared batch assembly for the serial and parallel sweep entry points,
/// so the two can never diverge in how a run is configured.
std::vector<RunConfig> buildRunConfigs(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed) {
  std::vector<RunConfig> rcs;
  rcs.reserve(cfgs.size());
  for (const auto& cfg : cfgs) {
    RunConfig rc;
    rc.workload = wl;
    rc.interface_cfg = cfg;
    rc.system = defaultSystem();
    rc.instructions = instructions;
    rc.seed = seed;
    rcs.push_back(std::move(rc));
  }
  return rcs;
}

}  // namespace

std::vector<RunOutput> runConfigs(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed) {
  return runManyParallel(buildRunConfigs(wl, cfgs, instructions, seed),
                         /*jobs=*/1);
}

std::vector<RunOutput> runManyParallel(const std::vector<RunConfig>& rcs,
                                       unsigned jobs) {
  if (jobs == 0) jobs = parallelJobs();
  std::vector<RunOutput> outs(rcs.size());
  if (rcs.empty()) return outs;

  if (jobs <= 1 || rcs.size() == 1) {
    for (std::size_t i = 0; i < rcs.size(); ++i) outs[i] = runOne(rcs[i]);
    return outs;
  }

  // Work-stealing over an atomic index: each run owns its EnergyAccount,
  // trace generator and interface, so no simulator state is shared; the
  // output slot is fixed by the input index, keeping result order (and every
  // value in it) identical to the serial loop.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= rcs.size()) return;
      outs[i] = runOne(rcs[i]);
    }
  };
  std::vector<std::thread> pool;
  const unsigned n_threads =
      static_cast<unsigned>(std::min<std::size_t>(jobs, rcs.size()));
  pool.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  return outs;
}

std::vector<RunOutput> runConfigsParallel(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed, unsigned jobs) {
  return runManyParallel(buildRunConfigs(wl, cfgs, instructions, seed), jobs);
}

std::vector<std::vector<RunOutput>> runMatrixParallel(
    const std::vector<trace::WorkloadProfile>& wls,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed, unsigned jobs) {
  std::vector<RunConfig> rcs;
  rcs.reserve(wls.size() * cfgs.size());
  for (const auto& wl : wls) {
    auto row = buildRunConfigs(wl, cfgs, instructions, seed);
    for (auto& rc : row) rcs.push_back(std::move(rc));
  }
  const auto flat = runManyParallel(rcs, jobs);
  std::vector<std::vector<RunOutput>> by_wl(wls.size());
  for (std::size_t w = 0; w < wls.size(); ++w)
    by_wl[w].assign(flat.begin() + static_cast<std::ptrdiff_t>(w * cfgs.size()),
                    flat.begin() +
                        static_cast<std::ptrdiff_t>((w + 1) * cfgs.size()));
  return by_wl;
}

std::uint64_t captureTrace(const RunConfig& rc, const std::string& path) {
  MALEC_CHECK_MSG(!rc.workload.isTrace(),
                  "captureTrace() needs a synthetic workload, not a trace "
                  "replay — copy the file instead");
  trace::SyntheticTraceGenerator gen(rc.workload, rc.system.layout,
                                     rc.instructions, rc.seed);
  trace::TraceWriter w(path, rc.system.layout);
  if (!w.ok()) MALEC_CHECK_MSG(false, w.error().c_str());
  trace::InstrRecord r;
  while (gen.next(r)) w.write(r);
  if (!w.close()) MALEC_CHECK_MSG(false, w.error().c_str());
  return w.written();
}

std::uint64_t parseU64Strict(const std::string& s, const char* what) {
  bool valid = !s.empty();
  for (const char c : s)
    valid = valid && std::isdigit(static_cast<unsigned char>(c)) != 0;
  std::uint64_t v = 0;
  if (valid) {
    errno = 0;
    char* end = nullptr;
    v = std::strtoull(s.c_str(), &end, 10);
    valid = errno == 0 && end == s.c_str() + s.size();
  }
  if (!valid) {
    const std::string msg = std::string("invalid ") + what + ": '" + s +
                            "' is not an unsigned base-10 integer";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  return v;
}

namespace {

/// Env knobs: unset or empty = fall back; "0" = fall back (documented as
/// "use the default"); anything non-numeric aborts via parseU64Strict.
std::uint64_t envU64(const char* name, std::uint64_t dflt) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return dflt;
  const std::uint64_t v = parseU64Strict(env, name);
  return v > 0 ? v : dflt;
}

}  // namespace

std::uint64_t instructionBudget(std::uint64_t dflt) {
  return envU64("MALEC_INSTR", dflt);
}

unsigned parallelJobs(unsigned dflt) {
  const std::uint64_t v = envU64("MALEC_JOBS", 0);
  // A worker count past unsigned range would truncate in the cast below —
  // the silent-reinterpretation bug class strict parsing exists to kill.
  MALEC_CHECK_MSG(v <= std::numeric_limits<unsigned>::max(),
                  "MALEC_JOBS exceeds the supported worker-count range");
  if (v > 0) return static_cast<unsigned>(v);
  if (dflt > 0) return dflt;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace malec::sim
