#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "common/check.h"
#include "energy/energy_account.h"
#include "sim/presets.h"
#include "sim/structures.h"
#include "trace/synth_generator.h"
#include "trace/trace_io.h"

namespace malec::sim {

namespace {

/// The pluggable trace source behind runOne(): a synthetic generator for
/// profile workloads (the original, bit-identical path) or a file reader
/// for trace-backed ones. `reader` stays null for synthetic sources and
/// lets the caller verify the stream survived intact after the run.
struct ResolvedSource {
  std::unique_ptr<trace::TraceSource> src;
  trace::TraceReader* reader = nullptr;
  std::uint64_t instructions = 0;  ///< effective stream length
};

ResolvedSource makeTraceSource(const RunConfig& rc) {
  ResolvedSource rs;
  if (!rc.workload.isTrace()) {
    rs.src = std::make_unique<trace::SyntheticTraceGenerator>(
        rc.workload, rc.system.layout, rc.instructions, rc.seed);
    rs.instructions = rc.instructions;
    return rs;
  }
  auto rd = std::make_unique<trace::TraceReader>(rc.workload.trace_path);
  if (!rd->ok()) MALEC_CHECK_MSG(false, rd->error().c_str());
  if (rd->hasLayout()) {
    const auto& p = rd->layoutParams();
    const AddressLayout& l = rc.system.layout;
    const bool match =
        p.addr_bits == l.addrBits() && p.page_bytes == l.pageBytes() &&
        p.line_bytes == l.lineBytes() &&
        p.sub_block_bytes == l.subBlockBytes() && p.l1_bytes == l.l1Bytes() &&
        p.l1_assoc == l.l1Assoc() && p.l1_banks == l.l1Banks();
    if (!match) {
      const std::string msg =
          "trace '" + rc.workload.trace_path +
          "' was captured under a different AddressLayout than the one this "
          "run simulates — replaying it would decompose every address "
          "differently";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
  }
  trace::TraceReader* reader = rd.get();
  const std::uint64_t total = rd->total();
  std::uint64_t n = rc.instructions == 0 ? total
                                         : std::min(rc.instructions, total);
  if (n < total) {
    rs.src = std::make_unique<trace::LimitedTraceSource>(std::move(rd), n);
  } else {
    rs.src = std::move(rd);
  }
  rs.reader = reader;
  rs.instructions = n;
  return rs;
}

}  // namespace

RunOutput runOne(const RunConfig& rc) {
  energy::EnergyAccount ea;
  defineEnergies(ea, rc.interface_cfg, rc.system);

  ResolvedSource src = makeTraceSource(rc);
  auto ifc = makeInterface(rc.interface_cfg, rc.system, ea);
  cpu::CoreModel core(rc.system, rc.interface_cfg, *src.src, *ifc);

  // Safety bound: no workload should need 60 cycles per instruction.
  const cpu::CoreStats cs = core.run(src.instructions * 60 + 100'000);

  // A replay must never report results off a stream that died mid-file or
  // a file whose payload is corrupt beyond the replayed prefix:
  // finishChecksum() hashes whatever an instruction cap left unread, so a
  // capped replay is held to the same integrity bar as a full one. A file
  // is fully verified at most once per process (keyed by path + record
  // count + expected checksum, so a changed file re-verifies) — a sweep of
  // many configs over one big capped trace must not re-read the remainder
  // once per run.
  if (src.reader != nullptr) {
    static std::mutex verified_mu;
    static std::set<std::string>* verified = new std::set<std::string>();
    const std::string key = rc.workload.trace_path + "\n" +
                            std::to_string(src.reader->total()) + "\n" +
                            std::to_string(src.reader->expectedChecksum());
    bool skip_tail_verify;
    {
      std::lock_guard<std::mutex> lock(verified_mu);
      skip_tail_verify = verified->count(key) != 0;
    }
    const bool good =
        skip_tail_verify ? src.reader->ok() : src.reader->finishChecksum();
    if (!good) MALEC_CHECK_MSG(false, src.reader->error().c_str());
    if (!skip_tail_verify) {
      std::lock_guard<std::mutex> lock(verified_mu);
      verified->insert(key);
    }
  }

  RunOutput out;
  out.benchmark = rc.workload.name;
  out.config = rc.interface_cfg.name;
  out.cycles = cs.cycles;
  out.instructions = cs.instructions;
  out.ipc = cs.ipc();
  out.core = cs;
  out.ifc = ifc->stats();
  out.dynamic_pj = ea.dynamicPj();
  out.leakage_pj = ea.leakagePj(cs.cycles, rc.system.clock_ghz);
  out.total_pj = out.dynamic_pj + out.leakage_pj;
  out.way_coverage = out.ifc.wayCoverage();
  out.l1_load_miss_rate =
      out.ifc.load_l1_accesses == 0
          ? 0.0
          : static_cast<double>(out.ifc.load_l1_misses) /
                static_cast<double>(out.ifc.load_l1_accesses);
  out.merged_load_fraction =
      out.ifc.loads_submitted == 0
          ? 0.0
          : static_cast<double>(out.ifc.merged_loads) /
                static_cast<double>(out.ifc.loads_submitted);
  out.energy_detail = ea.report(cs.cycles, rc.system.clock_ghz);
  return out;
}

namespace {

/// Shared batch assembly for the serial and parallel sweep entry points,
/// so the two can never diverge in how a run is configured.
std::vector<RunConfig> buildRunConfigs(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed) {
  std::vector<RunConfig> rcs;
  rcs.reserve(cfgs.size());
  for (const auto& cfg : cfgs) {
    RunConfig rc;
    rc.workload = wl;
    rc.interface_cfg = cfg;
    rc.system = defaultSystem();
    rc.instructions = instructions;
    rc.seed = seed;
    rcs.push_back(std::move(rc));
  }
  return rcs;
}

}  // namespace

std::vector<RunOutput> runConfigs(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed) {
  return runManyParallel(buildRunConfigs(wl, cfgs, instructions, seed),
                         /*jobs=*/1);
}

std::vector<RunOutput> runManyParallel(const std::vector<RunConfig>& rcs,
                                       unsigned jobs) {
  if (jobs == 0) jobs = parallelJobs();
  std::vector<RunOutput> outs(rcs.size());
  if (rcs.empty()) return outs;

  if (jobs <= 1 || rcs.size() == 1) {
    for (std::size_t i = 0; i < rcs.size(); ++i) outs[i] = runOne(rcs[i]);
    return outs;
  }

  // Work-stealing over an atomic index: each run owns its EnergyAccount,
  // trace generator and interface, so no simulator state is shared; the
  // output slot is fixed by the input index, keeping result order (and every
  // value in it) identical to the serial loop.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= rcs.size()) return;
      outs[i] = runOne(rcs[i]);
    }
  };
  std::vector<std::thread> pool;
  const unsigned n_threads =
      static_cast<unsigned>(std::min<std::size_t>(jobs, rcs.size()));
  pool.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  return outs;
}

std::vector<RunOutput> runConfigsParallel(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed, unsigned jobs) {
  return runManyParallel(buildRunConfigs(wl, cfgs, instructions, seed), jobs);
}

std::vector<std::vector<RunOutput>> runMatrixParallel(
    const std::vector<trace::WorkloadProfile>& wls,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed, unsigned jobs) {
  std::vector<RunConfig> rcs;
  rcs.reserve(wls.size() * cfgs.size());
  for (const auto& wl : wls) {
    auto row = buildRunConfigs(wl, cfgs, instructions, seed);
    for (auto& rc : row) rcs.push_back(std::move(rc));
  }
  const auto flat = runManyParallel(rcs, jobs);
  std::vector<std::vector<RunOutput>> by_wl(wls.size());
  for (std::size_t w = 0; w < wls.size(); ++w)
    by_wl[w].assign(flat.begin() + static_cast<std::ptrdiff_t>(w * cfgs.size()),
                    flat.begin() +
                        static_cast<std::ptrdiff_t>((w + 1) * cfgs.size()));
  return by_wl;
}

std::uint64_t captureTrace(const RunConfig& rc, const std::string& path) {
  MALEC_CHECK_MSG(!rc.workload.isTrace(),
                  "captureTrace() needs a synthetic workload, not a trace "
                  "replay — copy the file instead");
  trace::SyntheticTraceGenerator gen(rc.workload, rc.system.layout,
                                     rc.instructions, rc.seed);
  trace::TraceWriter w(path, rc.system.layout);
  if (!w.ok()) MALEC_CHECK_MSG(false, w.error().c_str());
  trace::InstrRecord r;
  while (gen.next(r)) w.write(r);
  if (!w.close()) MALEC_CHECK_MSG(false, w.error().c_str());
  return w.written();
}

std::uint64_t parseU64Strict(const std::string& s, const char* what) {
  bool valid = !s.empty();
  for (const char c : s)
    valid = valid && std::isdigit(static_cast<unsigned char>(c)) != 0;
  std::uint64_t v = 0;
  if (valid) {
    errno = 0;
    char* end = nullptr;
    v = std::strtoull(s.c_str(), &end, 10);
    valid = errno == 0 && end == s.c_str() + s.size();
  }
  if (!valid) {
    const std::string msg = std::string("invalid ") + what + ": '" + s +
                            "' is not an unsigned base-10 integer";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  return v;
}

namespace {

/// Env knobs: unset or empty = fall back; "0" = fall back (documented as
/// "use the default"); anything non-numeric aborts via parseU64Strict.
std::uint64_t envU64(const char* name, std::uint64_t dflt) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return dflt;
  const std::uint64_t v = parseU64Strict(env, name);
  return v > 0 ? v : dflt;
}

}  // namespace

std::uint64_t instructionBudget(std::uint64_t dflt) {
  return envU64("MALEC_INSTR", dflt);
}

unsigned parallelJobs(unsigned dflt) {
  const std::uint64_t v = envU64("MALEC_JOBS", 0);
  // A worker count past unsigned range would truncate in the cast below —
  // the silent-reinterpretation bug class strict parsing exists to kill.
  MALEC_CHECK_MSG(v <= std::numeric_limits<unsigned>::max(),
                  "MALEC_JOBS exceeds the supported worker-count range");
  if (v > 0) return static_cast<unsigned>(v);
  if (dflt > 0) return dflt;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace malec::sim
