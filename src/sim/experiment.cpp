#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include <cmath>
#include <iterator>

#include "common/check.h"
#include "energy/energy_account.h"
#include "phase/sample_plan.h"
#include "sim/presets.h"
#include "sim/structures.h"
#include "trace/synth_generator.h"
#include "trace/trace_io.h"

namespace malec::sim {

namespace {

/// The pluggable trace source behind runOne(): a synthetic generator for
/// profile workloads (the original, bit-identical path) or a file reader
/// for trace-backed ones. `reader` stays null for synthetic sources and
/// lets the caller verify the stream survived intact after the run.
struct ResolvedSource {
  std::unique_ptr<trace::TraceSource> src;
  trace::TraceReader* reader = nullptr;
  std::uint64_t instructions = 0;  ///< effective stream length
};

/// Abort unless the trace's captured AddressLayout (v2 headers) matches the
/// layout this run simulates — shared by the full-replay and phase-sampled
/// paths.
void checkReplayLayout(const trace::TraceReader& rd, const RunConfig& rc) {
  if (!rd.hasLayout()) return;
  const auto& p = rd.layoutParams();
  const AddressLayout& l = rc.system.layout;
  const bool match =
      p.addr_bits == l.addrBits() && p.page_bytes == l.pageBytes() &&
      p.line_bytes == l.lineBytes() &&
      p.sub_block_bytes == l.subBlockBytes() && p.l1_bytes == l.l1Bytes() &&
      p.l1_assoc == l.l1Assoc() && p.l1_banks == l.l1Banks();
  if (!match) {
    const std::string msg =
        "trace '" + rc.workload.trace_path +
        "' was captured under a different AddressLayout than the one this "
        "run simulates — replaying it would decompose every address "
        "differently";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
}

/// A replay must never report results off a stream that died mid-file or a
/// file whose payload is corrupt beyond the replayed prefix:
/// finishChecksum() hashes whatever an instruction cap (or sample plan)
/// left unread, so a partial replay is held to the same integrity bar as a
/// full one. A file is fully verified at most once per process (keyed by
/// path + record count + expected checksum, so a changed file re-verifies)
/// — a sweep of many configs over one big capped trace must not re-read the
/// remainder once per run.
void verifyReaderTail(trace::TraceReader& reader, const std::string& path) {
  static std::mutex verified_mu;
  static std::set<std::string>* verified = new std::set<std::string>();
  const std::string key = path + "\n" + std::to_string(reader.total()) +
                          "\n" +
                          std::to_string(reader.expectedChecksum());
  bool skip_tail_verify;
  {
    std::lock_guard<std::mutex> lock(verified_mu);
    skip_tail_verify = verified->count(key) != 0;
  }
  const bool good =
      skip_tail_verify ? reader.ok() : reader.finishChecksum();
  if (!good) MALEC_CHECK_MSG(false, reader.error().c_str());
  if (!skip_tail_verify) {
    std::lock_guard<std::mutex> lock(verified_mu);
    verified->insert(key);
  }
}

ResolvedSource makeTraceSource(const RunConfig& rc) {
  ResolvedSource rs;
  if (!rc.workload.isTrace()) {
    rs.src = std::make_unique<trace::SyntheticTraceGenerator>(
        rc.workload, rc.system.layout, rc.instructions, rc.seed);
    rs.instructions = rc.instructions;
    return rs;
  }
  auto rd = std::make_unique<trace::TraceReader>(rc.workload.trace_path);
  if (!rd->ok()) MALEC_CHECK_MSG(false, rd->error().c_str());
  checkReplayLayout(*rd, rc);
  trace::TraceReader* reader = rd.get();
  const std::uint64_t total = rd->total();
  std::uint64_t n = rc.instructions == 0 ? total
                                         : std::min(rc.instructions, total);
  if (n < total) {
    rs.src = std::make_unique<trace::LimitedTraceSource>(std::move(rd), n);
  } else {
    rs.src = std::move(rd);
  }
  rs.reader = reader;
  rs.instructions = n;
  return rs;
}

/// Serves the next `count` records of a shared reader with seq rebased to
/// start at 0 — a CoreModel's ROB indexing assumes the first dispatched
/// record's seq matches its (zero-initialised) head pointer. Dependency
/// distances reaching back past the segment start exceed the rebased seq
/// and are dropped by the core's addDep bound check, which is exactly the
/// sampling approximation we want.
class SegmentSource final : public trace::TraceSource {
 public:
  SegmentSource(trace::TraceReader& rd, std::uint64_t count)
      : rd_(rd), remaining_(count) {}

  bool next(trace::InstrRecord& out) override {
    if (remaining_ == 0 || !rd_.next(out)) return false;
    if (!have_base_) {
      base_ = out.seq;
      have_base_ = true;
    }
    out.seq -= base_;
    --remaining_;
    return true;
  }
  void reset() override {
    MALEC_CHECK_MSG(false, "segment sources cannot rewind a shared reader");
  }

 private:
  trace::TraceReader& rd_;
  std::uint64_t remaining_;
  std::uint64_t base_ = 0;
  bool have_base_ = false;
};

RunOutput runOneSampled(const RunConfig& rc);

/// The metrics every run derives identically from its counters: energy
/// rollups from the account and the rate fields from out.ifc. Shared by
/// the full-replay and phase-sampled paths so the two can never diverge
/// on a derivation or zero-guard — the phase_sampled suite's error
/// columns depend on both paths deriving metrics the same way.
void finalizeDerivedMetrics(RunOutput& out, const energy::EnergyAccount& ea,
                            Cycle cycles, double clock_ghz) {
  out.dynamic_pj = ea.dynamicPj();
  out.leakage_pj = ea.leakagePj(cycles, clock_ghz);
  out.total_pj = out.dynamic_pj + out.leakage_pj;
  out.way_coverage = out.ifc.wayCoverage();
  out.l1_load_miss_rate =
      out.ifc.load_l1_accesses == 0
          ? 0.0
          : static_cast<double>(out.ifc.load_l1_misses) /
                static_cast<double>(out.ifc.load_l1_accesses);
  out.merged_load_fraction =
      out.ifc.loads_submitted == 0
          ? 0.0
          : static_cast<double>(out.ifc.merged_loads) /
                static_cast<double>(out.ifc.loads_submitted);
  out.energy_detail = ea.report(cycles, clock_ghz);
}

}  // namespace

RunOutput runOne(const RunConfig& rc) {
  if (rc.workload.isSampled()) return runOneSampled(rc);

  energy::EnergyAccount ea;
  defineEnergies(ea, rc.interface_cfg, rc.system);

  ResolvedSource src = makeTraceSource(rc);
  auto ifc = makeInterface(rc.interface_cfg, rc.system, ea);
  cpu::CoreModel core(rc.system, rc.interface_cfg, *src.src, *ifc);

  // Safety bound: no workload should need 60 cycles per instruction.
  const cpu::CoreStats cs = core.run(src.instructions * 60 + 100'000);

  if (src.reader != nullptr)
    verifyReaderTail(*src.reader, rc.workload.trace_path);

  RunOutput out;
  out.benchmark = rc.workload.name;
  out.config = rc.interface_cfg.name;
  out.cycles = cs.cycles;
  out.instructions = cs.instructions;
  out.ipc = cs.ipc();
  out.core = cs;
  out.ifc = ifc->stats();
  finalizeDerivedMetrics(out, ea, cs.cycles, rc.system.clock_ghz);
  return out;
}

namespace {

/// Phase-sampled replay: simulate only the plan's representative intervals
/// — each primed by a warmup prefix whose stats and energy are gated off —
/// and report the weighted phase combination as the full-trace estimate.
///
/// ONE interface (caches, TLB, way tables, WDU) lives across the whole
/// pass, so memory-system state accumulates from segment to segment the
/// way it would across a full replay; fast-forwarded stretches leave it
/// untouched (the staleness this introduces is the sampling
/// approximation, bounded by the per-pick warmup that re-primes the hot
/// set). Warmup segments run with the EnergyAccount's StatGate closed and
/// their interface counters snapshotted away; each segment gets a fresh
/// CoreModel, so the pipeline resets at segment boundaries exactly like
/// at a SimPoint boundary. Every estimate is a deterministic fold in pick
/// order, so repeated and parallel runs are bit-identical.
RunOutput runOneSampled(const RunConfig& rc) {
  MALEC_CHECK_MSG(rc.workload.isTrace(),
                  "a sample plan needs a trace-backed workload — synthetic "
                  "profiles replay in full");
  MALEC_CHECK_MSG(rc.instructions == 0,
                  "sampled replay does not compose with an instruction cap "
                  "(the plan determines what is simulated) — run with "
                  "--instr 0 / MALEC_INSTR unset");

  phase::SamplePlan plan;
  std::string err;
  if (!phase::loadSamplePlan(rc.workload.sample_plan_path, plan, err))
    MALEC_CHECK_MSG(false, err.c_str());

  trace::TraceReader rd(rc.workload.trace_path);
  if (!rd.ok()) MALEC_CHECK_MSG(false, rd.error().c_str());
  checkReplayLayout(rd, rc);
  // The plan binds to one exact trace: record count always, payload
  // checksum when the trace format carries one (v2).
  if (!phase::planBindsTo(plan, rd)) {
    const std::string msg =
        "sample plan '" + rc.workload.sample_plan_path +
        "' was computed from a different trace than '" +
        rc.workload.trace_path + "' — re-run `trace_tools phases`";
    MALEC_CHECK_MSG(false, msg.c_str());
  }

  // Weighted-combination accumulators: full-trace estimates as doubles,
  // folded in pick order. est += measured * (cluster weight / measured
  // instructions) scales each representative to the phase it stands for.
  double cycles_est = 0.0;
  std::vector<double> event_est;
  constexpr std::size_t kNumIfcFields = std::size(core::kInterfaceCounterFields);
  constexpr std::size_t kNumCoreFields = std::size(cpu::kCoreScaledCounterFields);
  std::vector<double> ifc_est(kNumIfcFields, 0.0);
  std::vector<double> core_est(kNumCoreFields, 0.0);

  energy::EnergyAccount ea;
  defineEnergies(ea, rc.interface_cfg, rc.system);
  auto ifc = makeInterface(rc.interface_cfg, rc.system, ea);
  // The event-id space is fixed once the interface is constructed — the
  // run only counts — so per-segment event deltas are plain snapshots.
  event_est.resize(ea.eventTypes(), 0.0);
  std::vector<std::uint64_t> ev_snap(ea.eventTypes(), 0);

  std::uint64_t pos = 0;  // records consumed from the reader so far
  // One continuous simulated timeline across every segment: the shared
  // interface keys busy windows and miss ready times to absolute cycles,
  // so each segment's core resumes the clock where the previous one left
  // off instead of restarting at 0 (see CoreModel::run's start_cycle).
  Cycle sim_clock = 0;
  trace::InstrRecord skip;
  for (std::size_t k = 0; k < plan.picks.size(); ++k) {
    const phase::PhasePick& pick = plan.picks[k];
    const std::uint64_t start = pick.interval_index * plan.interval_size;
    const std::uint64_t end =
        std::min(start + plan.interval_size, plan.trace_records);
    // The warmup prefix is clamped at the trace start AND at the previous
    // segment's end: a representative adjacent to the previous pick has
    // (part of) its warmup window already consumed by the sequential
    // reader, so it runs with whatever prefix the gap affords — a bias
    // that is part of the sampling approximation, and deterministic.
    const std::uint64_t warm =
        std::min(plan.warmup_instructions, start - std::min(start, pos));
    const std::uint64_t warm_start = start - warm;

    // Fast-forward: decode-only, no simulation — this skip is where the
    // wall-clock win over a full replay comes from.
    while (pos < warm_start && rd.next(skip)) ++pos;
    MALEC_CHECK_MSG(pos == warm_start, rd.error().c_str());

    if (warm > 0) {
      // Warmup: primes caches/TLB/WDU; the StatGate drops its energy and
      // the stats snapshot below removes its counters.
      energy::StatGate gate(ea);
      SegmentSource wsrc(rd, warm);
      cpu::CoreModel wcore(rc.system, rc.interface_cfg, wsrc, *ifc);
      const cpu::CoreStats ws = wcore.run(warm * 60 + 100'000, sim_clock);
      sim_clock += ws.cycles;
      // An under-consumed warmup (reader failure or the safety bound) would
      // silently desynchronise `pos` from the reader and shift every later
      // segment onto the wrong intervals.
      MALEC_CHECK_MSG(ws.instructions == warm,
                      "sampled warmup did not retire every instruction");
      pos += warm;
      gate.open();
    }
    const core::InterfaceStats warm_snap = ifc->stats();
    for (energy::EnergyAccount::EventId id = 0; id < ea.eventTypes(); ++id)
      ev_snap[id] = ea.eventCount(id);

    SegmentSource msrc(rd, end - start);
    cpu::CoreModel core(rc.system, rc.interface_cfg, msrc, *ifc);
    const cpu::CoreStats cs =
        core.run((end - start) * 60 + 100'000, sim_clock);
    sim_clock += cs.cycles;
    pos += end - start;
    MALEC_CHECK_MSG(rd.ok(), rd.error().c_str());
    MALEC_CHECK_MSG(cs.instructions == end - start,
                    "sampled interval did not retire every instruction");

    const double scale = static_cast<double>(pick.weight_instructions) /
                         static_cast<double>(cs.instructions);
    cycles_est += static_cast<double>(cs.cycles) * scale;
    for (std::size_t i = 0; i < kNumCoreFields; ++i)
      core_est[i] +=
          static_cast<double>(cs.*cpu::kCoreScaledCounterFields[i]) * scale;

    const core::InterfaceStats delta =
        core::statsDelta(ifc->stats(), warm_snap);
    for (std::size_t i = 0; i < kNumIfcFields; ++i)
      ifc_est[i] += static_cast<double>(
                        delta.*core::kInterfaceCounterFields[i]) *
                    scale;
    for (energy::EnergyAccount::EventId id = 0; id < ea.eventTypes(); ++id)
      event_est[id] +=
          static_cast<double>(ea.eventCount(id) - ev_snap[id]) * scale;
  }

  // Hash the remainder so a sampled replay vouches for the whole file's
  // integrity exactly like a capped full replay does.
  verifyReaderTail(rd, rc.workload.trace_path);

  // One internally-consistent estimate: round the combined counters once,
  // then derive every reported rate and energy from the rounded values the
  // same way the full-replay path derives them from measured ones.
  RunOutput out;
  out.benchmark = rc.workload.name;
  out.config = rc.interface_cfg.name;
  out.instructions = plan.trace_records;
  out.cycles = static_cast<Cycle>(std::llround(cycles_est));
  if (out.cycles == 0) out.cycles = 1;
  out.ipc = static_cast<double>(out.instructions) /
            static_cast<double>(out.cycles);
  for (std::size_t i = 0; i < kNumIfcFields; ++i)
    out.ifc.*core::kInterfaceCounterFields[i] =
        static_cast<std::uint64_t>(std::llround(ifc_est[i]));
  out.core.cycles = out.cycles;
  out.core.instructions = out.instructions;
  for (std::size_t i = 0; i < kNumCoreFields; ++i)
    out.core.*cpu::kCoreScaledCounterFields[i] =
        static_cast<std::uint64_t>(std::llround(core_est[i]));

  ea.clearCounts();
  for (energy::EnergyAccount::EventId id = 0; id < ea.eventTypes(); ++id)
    ea.count(id, static_cast<std::uint64_t>(std::llround(event_est[id])));
  finalizeDerivedMetrics(out, ea, out.cycles, rc.system.clock_ghz);
  return out;
}

}  // namespace

namespace {

/// Shared batch assembly for the serial and parallel sweep entry points,
/// so the two can never diverge in how a run is configured.
std::vector<RunConfig> buildRunConfigs(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed) {
  std::vector<RunConfig> rcs;
  rcs.reserve(cfgs.size());
  for (const auto& cfg : cfgs) {
    RunConfig rc;
    rc.workload = wl;
    rc.interface_cfg = cfg;
    rc.system = defaultSystem();
    rc.instructions = instructions;
    rc.seed = seed;
    rcs.push_back(std::move(rc));
  }
  return rcs;
}

}  // namespace

std::vector<RunOutput> runConfigs(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed) {
  return runManyParallel(buildRunConfigs(wl, cfgs, instructions, seed),
                         /*jobs=*/1);
}

std::vector<RunOutput> runManyParallel(const std::vector<RunConfig>& rcs,
                                       unsigned jobs) {
  if (jobs == 0) jobs = parallelJobs();
  std::vector<RunOutput> outs(rcs.size());
  if (rcs.empty()) return outs;

  if (jobs <= 1 || rcs.size() == 1) {
    for (std::size_t i = 0; i < rcs.size(); ++i) outs[i] = runOne(rcs[i]);
    return outs;
  }

  // Work-stealing over an atomic index: each run owns its EnergyAccount,
  // trace generator and interface, so no simulator state is shared; the
  // output slot is fixed by the input index, keeping result order (and every
  // value in it) identical to the serial loop.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= rcs.size()) return;
      outs[i] = runOne(rcs[i]);
    }
  };
  std::vector<std::thread> pool;
  const unsigned n_threads =
      static_cast<unsigned>(std::min<std::size_t>(jobs, rcs.size()));
  pool.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  return outs;
}

std::vector<RunOutput> runConfigsParallel(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed, unsigned jobs) {
  return runManyParallel(buildRunConfigs(wl, cfgs, instructions, seed), jobs);
}

std::vector<std::vector<RunOutput>> runMatrixParallel(
    const std::vector<trace::WorkloadProfile>& wls,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed, unsigned jobs) {
  std::vector<RunConfig> rcs;
  rcs.reserve(wls.size() * cfgs.size());
  for (const auto& wl : wls) {
    auto row = buildRunConfigs(wl, cfgs, instructions, seed);
    for (auto& rc : row) rcs.push_back(std::move(rc));
  }
  const auto flat = runManyParallel(rcs, jobs);
  std::vector<std::vector<RunOutput>> by_wl(wls.size());
  for (std::size_t w = 0; w < wls.size(); ++w)
    by_wl[w].assign(flat.begin() + static_cast<std::ptrdiff_t>(w * cfgs.size()),
                    flat.begin() +
                        static_cast<std::ptrdiff_t>((w + 1) * cfgs.size()));
  return by_wl;
}

std::uint64_t captureTrace(const RunConfig& rc, const std::string& path) {
  MALEC_CHECK_MSG(!rc.workload.isTrace(),
                  "captureTrace() needs a synthetic workload, not a trace "
                  "replay — copy the file instead");
  trace::SyntheticTraceGenerator gen(rc.workload, rc.system.layout,
                                     rc.instructions, rc.seed);
  trace::TraceWriter w(path, rc.system.layout);
  if (!w.ok()) MALEC_CHECK_MSG(false, w.error().c_str());
  trace::InstrRecord r;
  while (gen.next(r)) w.write(r);
  if (!w.close()) MALEC_CHECK_MSG(false, w.error().c_str());
  return w.written();
}

std::uint64_t parseU64Strict(const std::string& s, const char* what) {
  bool valid = !s.empty();
  for (const char c : s)
    valid = valid && std::isdigit(static_cast<unsigned char>(c)) != 0;
  std::uint64_t v = 0;
  if (valid) {
    errno = 0;
    char* end = nullptr;
    v = std::strtoull(s.c_str(), &end, 10);
    valid = errno == 0 && end == s.c_str() + s.size();
  }
  if (!valid) {
    const std::string msg = std::string("invalid ") + what + ": '" + s +
                            "' is not an unsigned base-10 integer";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  return v;
}

namespace {

/// Env knobs: unset or empty = fall back; "0" = fall back (documented as
/// "use the default"); anything non-numeric aborts via parseU64Strict.
std::uint64_t envU64(const char* name, std::uint64_t dflt) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return dflt;
  const std::uint64_t v = parseU64Strict(env, name);
  return v > 0 ? v : dflt;
}

}  // namespace

std::uint64_t instructionBudget(std::uint64_t dflt) {
  return envU64("MALEC_INSTR", dflt);
}

unsigned parallelJobs(unsigned dflt) {
  const std::uint64_t v = envU64("MALEC_JOBS", 0);
  // A worker count past unsigned range would truncate in the cast below —
  // the silent-reinterpretation bug class strict parsing exists to kill.
  MALEC_CHECK_MSG(v <= std::numeric_limits<unsigned>::max(),
                  "MALEC_JOBS exceeds the supported worker-count range");
  if (v > 0) return static_cast<unsigned>(v);
  if (dflt > 0) return dflt;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace malec::sim
