#include "sim/experiment.h"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "energy/energy_account.h"
#include "sim/presets.h"
#include "sim/structures.h"
#include "trace/synth_generator.h"

namespace malec::sim {

RunOutput runOne(const RunConfig& rc) {
  energy::EnergyAccount ea;
  defineEnergies(ea, rc.interface_cfg, rc.system);

  trace::SyntheticTraceGenerator gen(rc.workload, rc.system.layout,
                                     rc.instructions, rc.seed);
  auto ifc = makeInterface(rc.interface_cfg, rc.system, ea);
  cpu::CoreModel core(rc.system, rc.interface_cfg, gen, *ifc);

  // Safety bound: no workload should need 60 cycles per instruction.
  const cpu::CoreStats cs = core.run(rc.instructions * 60 + 100'000);

  RunOutput out;
  out.benchmark = rc.workload.name;
  out.config = rc.interface_cfg.name;
  out.cycles = cs.cycles;
  out.instructions = cs.instructions;
  out.ipc = cs.ipc();
  out.core = cs;
  out.ifc = ifc->stats();
  out.dynamic_pj = ea.dynamicPj();
  out.leakage_pj = ea.leakagePj(cs.cycles, rc.system.clock_ghz);
  out.total_pj = out.dynamic_pj + out.leakage_pj;
  out.way_coverage = out.ifc.wayCoverage();
  out.l1_load_miss_rate =
      out.ifc.load_l1_accesses == 0
          ? 0.0
          : static_cast<double>(out.ifc.load_l1_misses) /
                static_cast<double>(out.ifc.load_l1_accesses);
  out.merged_load_fraction =
      out.ifc.loads_submitted == 0
          ? 0.0
          : static_cast<double>(out.ifc.merged_loads) /
                static_cast<double>(out.ifc.loads_submitted);
  out.energy_detail = ea.report(cs.cycles, rc.system.clock_ghz);
  return out;
}

namespace {

/// Shared batch assembly for the serial and parallel sweep entry points,
/// so the two can never diverge in how a run is configured.
std::vector<RunConfig> buildRunConfigs(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed) {
  std::vector<RunConfig> rcs;
  rcs.reserve(cfgs.size());
  for (const auto& cfg : cfgs) {
    RunConfig rc;
    rc.workload = wl;
    rc.interface_cfg = cfg;
    rc.system = defaultSystem();
    rc.instructions = instructions;
    rc.seed = seed;
    rcs.push_back(std::move(rc));
  }
  return rcs;
}

}  // namespace

std::vector<RunOutput> runConfigs(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed) {
  return runManyParallel(buildRunConfigs(wl, cfgs, instructions, seed),
                         /*jobs=*/1);
}

std::vector<RunOutput> runManyParallel(const std::vector<RunConfig>& rcs,
                                       unsigned jobs) {
  if (jobs == 0) jobs = parallelJobs();
  std::vector<RunOutput> outs(rcs.size());
  if (rcs.empty()) return outs;

  if (jobs <= 1 || rcs.size() == 1) {
    for (std::size_t i = 0; i < rcs.size(); ++i) outs[i] = runOne(rcs[i]);
    return outs;
  }

  // Work-stealing over an atomic index: each run owns its EnergyAccount,
  // trace generator and interface, so no simulator state is shared; the
  // output slot is fixed by the input index, keeping result order (and every
  // value in it) identical to the serial loop.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= rcs.size()) return;
      outs[i] = runOne(rcs[i]);
    }
  };
  std::vector<std::thread> pool;
  const unsigned n_threads =
      static_cast<unsigned>(std::min<std::size_t>(jobs, rcs.size()));
  pool.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  return outs;
}

std::vector<RunOutput> runConfigsParallel(
    const trace::WorkloadProfile& wl,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed, unsigned jobs) {
  return runManyParallel(buildRunConfigs(wl, cfgs, instructions, seed), jobs);
}

std::vector<std::vector<RunOutput>> runMatrixParallel(
    const std::vector<trace::WorkloadProfile>& wls,
    const std::vector<core::InterfaceConfig>& cfgs,
    std::uint64_t instructions, std::uint64_t seed, unsigned jobs) {
  std::vector<RunConfig> rcs;
  rcs.reserve(wls.size() * cfgs.size());
  for (const auto& wl : wls) {
    auto row = buildRunConfigs(wl, cfgs, instructions, seed);
    for (auto& rc : row) rcs.push_back(std::move(rc));
  }
  const auto flat = runManyParallel(rcs, jobs);
  std::vector<std::vector<RunOutput>> by_wl(wls.size());
  for (std::size_t w = 0; w < wls.size(); ++w)
    by_wl[w].assign(flat.begin() + static_cast<std::ptrdiff_t>(w * cfgs.size()),
                    flat.begin() +
                        static_cast<std::ptrdiff_t>((w + 1) * cfgs.size()));
  return by_wl;
}

std::uint64_t instructionBudget(std::uint64_t dflt) {
  if (const char* env = std::getenv("MALEC_INSTR"); env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return dflt;
}

unsigned parallelJobs(unsigned dflt) {
  if (const char* env = std::getenv("MALEC_JOBS"); env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<unsigned>(v);
  }
  if (dflt > 0) return dflt;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace malec::sim
