// Name-keyed registries behind the declarative experiment layer: one for
// workload profiles, one for interface-configuration presets and one for
// experiment specs. A registry remembers registration order (it drives
// `malec_bench --list` and table row order) and fails lookups with a
// message that names the registry and enumerates what IS registered —
// "unknown workload 'gc'" should never need a debugger.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/interface_config.h"
#include "trace/workload_profile.h"

namespace malec::phase {
struct SamplePlan;
}

namespace malec::sim {

template <typename T>
class Registry {
 public:
  /// `kind` names the registry in error messages ("workload", "preset", ...).
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  /// Register under `name`; duplicate names abort (specs must not shadow
  /// each other silently).
  void add(const std::string& name, T value) {
    if (map_.count(name) != 0) {
      const std::string msg = "duplicate " + kind_ + " '" + name + "'";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
    order_.push_back(name);
    map_.emplace(name, std::move(value));
  }

  /// Lookup; unknown names abort with the known-name inventory.
  [[nodiscard]] const T& get(const std::string& name) const {
    const T* p = tryGet(name);
    if (p == nullptr) {
      std::string msg = "unknown " + kind_ + " '" + name + "' — known " +
                        kind_ + "s:";
      for (const auto& n : order_) msg += " " + n;
      MALEC_CHECK_MSG(false, msg.c_str());
    }
    return *p;
  }

  /// Lookup without aborting; nullptr when absent (for CLI-friendly errors).
  [[nodiscard]] const T* tryGet(const std::string& name) const {
    const auto it = map_.find(name);
    return it == map_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return map_.count(name) != 0;
  }

  /// Registered names in registration order.
  [[nodiscard]] const std::vector<std::string>& names() const {
    return order_;
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }

 private:
  std::string kind_;
  std::vector<std::string> order_;
  std::map<std::string, T> map_;
};

/// A preset is a factory, not a value: configurations are cheap to build
/// and callers usually tweak the copy they get back.
using PresetFn = std::function<core::InterfaceConfig()>;

/// All workload profiles, pre-populated from trace::allWorkloads() in the
/// paper's plotting order, followed by one trace-replay workload per
/// *.mtrace file found in $MALEC_TRACE_DIR (sorted by filename, registered
/// as "trace:<stem>"). Additional (synthetic / scenario / trace) workloads
/// may be added at startup before any suite runs.
[[nodiscard]] Registry<trace::WorkloadProfile>& workloadRegistry();

/// Build a replay workload for a captured trace file: name "trace:<stem>",
/// suite "trace". The file's header is validated up front — a missing,
/// truncated or corrupt trace aborts here with the reader's message rather
/// than deep inside a sweep. Does not register the profile.
[[nodiscard]] trace::WorkloadProfile traceWorkload(const std::string& path);

/// Resolve a workload name: registry hit first; otherwise a "trace:<path>"
/// name is treated as a trace file path and built on the fly — with an
/// optional ":sampled" suffix selecting phase-sampled replay through the
/// trace's `.mplan` sidecar (validated up front, `trace_tools phases` hint
/// on a missing plan); anything else aborts with the registry inventory.
[[nodiscard]] trace::WorkloadProfile resolveWorkload(const std::string& name);

/// Up-front probing for an already-built sampled workload — the sampled
/// counterpart of the header validation traceWorkload() performs: loads
/// the plan and checks it binds to the trace, aborting (with a
/// `trace_tools phases` hint) BEFORE any simulation starts. Suite
/// materialization calls this for every sampled profile so a bad sidecar
/// can never abort a sweep after other rows already ran.
void validateSampledWorkload(const trace::WorkloadProfile& wl);

/// Register every *.mtrace in `dir` (sorted by filename) as a trace-replay
/// workload — the MALEC_TRACE_DIR scan, callable directly for additional
/// directories. Aborts on an unscannable directory, an invalid trace file
/// or a name collision.
void registerTraceWorkloadsFrom(const std::string& dir);

/// Phase-sampled variant of a trace workload: a copy of `wl` with
/// sample_plan_path attached (empty `plan_path` = the conventional .mplan
/// sidecar next to the trace, see phase::planSidecarPath) and the name
/// suffixed ":sampled". The plan file is loaded and validated up front so a
/// missing or corrupt plan aborts here — with a `trace_tools phases` hint —
/// rather than deep inside a sweep. `out_plan` (optional) receives that
/// parsed plan, so callers that report on it (the phase_sampled suite)
/// need no second load. This helper owns the sidecar/naming convention —
/// never hand-build sampled profiles elsewhere.
[[nodiscard]] trace::WorkloadProfile sampledWorkload(
    const trace::WorkloadProfile& wl, const std::string& plan_path = "",
    phase::SamplePlan* out_plan = nullptr);

/// The naming/sidecar convention alone — no plan load, no validation.
/// Only for callers that have ALREADY validated the plan themselves (the
/// phase_sampled suite); everything else goes through sampledWorkload.
[[nodiscard]] trace::WorkloadProfile sampledWorkloadUnchecked(
    const trace::WorkloadProfile& wl, const std::string& plan_path = "");

/// All interface-configuration presets of presets.h, keyed by the
/// configuration name they produce (e.g. "MALEC", "MALEC_WDU16").
[[nodiscard]] Registry<PresetFn>& presetRegistry();

}  // namespace malec::sim
