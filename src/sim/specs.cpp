// Builtin experiment-spec registrations: every figure/table reproduction
// that used to be a hand-rolled bench main() is a declarative spec here —
// workload set, configuration set, metric columns, normalisation rule and
// paper anchors. The legacy bench binaries are thin wrappers over
// benchCompatMain(); `malec_bench` drives any spec by name.
#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "energy/array_model.h"
#include "energy/energy_account.h"
#include "phase/sample_plan.h"
#include "sim/presets.h"
#include "trace/trace_io.h"
#include "sim/structures.h"
#include "sim/suite.h"
#include "trace/locality_analyzer.h"
#include "trace/synth_generator.h"
#include "trace/workloads.h"
#include "waydet/segmented_wt.h"
#include "waydet/way_table.h"

namespace malec::sim {
namespace {

std::string strf(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

using RowFn =
    std::function<std::vector<double>(const SuiteContext&, std::size_t)>;

/// Row rule: cycles of every configuration as a percentage of the
/// configuration at `ref` (the normalisation used by Fig. 4a and all the
/// sensitivity sweeps).
RowFn cyclesVsRefFn(std::size_t ref) {
  return [ref](const SuiteContext& ctx, std::size_t w) {
    const auto& outs = ctx.results[w];
    const double base = static_cast<double>(outs[ref].cycles);
    std::vector<double> row;
    row.reserve(outs.size());
    for (const auto& o : outs)
      row.push_back(100.0 * static_cast<double>(o.cycles) / base);
    return row;
  };
}

// --- Fig. 4a ----------------------------------------------------------------

ExperimentSpec specFig4a() {
  ExperimentSpec s;
  s.name = "fig4a";
  s.title = "Fig. 4a — normalized execution time per benchmark";
  s.paper_anchor =
      "Paper: MALEC 86 / MALEC_3cyc 90 / Base2ld1st 85 / "
      "Base2ld1st_1cyc 80 (overall geo.means)";
  s.configs = &fig4Configs;
  s.default_instructions = 120'000;
  TableSpec t;
  t.name = "fig4a_time";
  t.title = "Fig. 4a — normalized execution time [%] (Base1ldst = 100)";
  t.row = cyclesVsRefFn(0);
  t.suite_geomeans = true;
  t.overall_geomean = true;
  t.overall_label = "geo.mean Overall";
  s.tables.push_back(std::move(t));
  return s;
}

// --- Fig. 4b ----------------------------------------------------------------

ExperimentSpec specFig4b() {
  ExperimentSpec s;
  s.name = "fig4b";
  s.title = "Fig. 4b — normalized dynamic and total L1 energy";
  s.paper_anchor =
      "Paper: dynamic — Base2ld1st 142, MALEC 67; "
      "total — Base2ld1st 148, MALEC 78 (overall)";
  s.configs = &fig4Configs;
  s.default_instructions = 120'000;
  TableSpec td;
  td.name = "fig4b_dynamic";
  td.title = "Fig. 4b — normalized dynamic energy [%] (Base1ldst = 100)";
  td.row = [](const SuiteContext& ctx, std::size_t w) {
    const auto& outs = ctx.results[w];
    std::vector<double> row;
    for (const auto& o : outs)
      row.push_back(100.0 * o.dynamic_pj / outs[0].dynamic_pj);
    return row;
  };
  td.suite_geomeans = true;
  td.overall_geomean = true;
  td.overall_label = "geo.mean Overall";
  s.tables.push_back(std::move(td));
  TableSpec tt;
  tt.name = "fig4b_total";
  tt.title = "Fig. 4b — normalized total energy [%] (dynamic + leakage)";
  tt.row = [](const SuiteContext& ctx, std::size_t w) {
    const auto& outs = ctx.results[w];
    std::vector<double> row;
    for (const auto& o : outs)
      row.push_back(100.0 * o.total_pj / outs[0].total_pj);
    return row;
  };
  tt.suite_geomeans = true;
  tt.overall_geomean = true;
  tt.overall_label = "geo.mean Overall";
  s.tables.push_back(std::move(tt));
  return s;
}

// --- Sec. VI-C: WDU vs Way Tables -------------------------------------------

ExperimentSpec specWduVsWt() {
  ExperimentSpec s;
  s.name = "wdu_vs_wt";
  s.title = "Sec. VI-C — WDU (8/16/32 entries) vs Way Tables";
  s.paper_anchor =
      "Paper: coverage 94 (WT) vs 68/76/78 (WDU 8/16/32); energy "
      "+4/+5/+8% for the WDU variants";
  s.configs = [] {
    return std::vector<core::InterfaceConfig>{
        presetMalec(), presetMalecWdu(8), presetMalecWdu(16),
        presetMalecWdu(32)};
  };
  s.default_instructions = 100'000;
  TableSpec tc;
  tc.name = "wdu_coverage";
  tc.title = "Way-determination coverage [%]";
  tc.columns = {"WT", "WDU8", "WDU16", "WDU32"};
  tc.row = [](const SuiteContext& ctx, std::size_t w) {
    std::vector<double> row;
    for (const auto& o : ctx.results[w])
      row.push_back(100.0 * o.way_coverage);
    return row;
  };
  tc.overall_geomean = true;
  s.tables.push_back(std::move(tc));
  TableSpec te;
  te.name = "wdu_energy";
  te.title = "Total energy relative to MALEC with Way Tables [%]";
  te.columns = {"WT", "WDU8", "WDU16", "WDU32"};
  te.row = [](const SuiteContext& ctx, std::size_t w) {
    const auto& outs = ctx.results[w];
    std::vector<double> row;
    for (const auto& o : outs)
      row.push_back(100.0 * o.total_pj / outs[0].total_pj);
    return row;
  };
  te.overall_geomean = true;
  s.tables.push_back(std::move(te));
  return s;
}

// --- Sec. V: last-entry-register feedback ablation --------------------------

ExperimentSpec specCoverageAblation() {
  ExperimentSpec s;
  s.name = "coverage_ablation";
  s.title = "Sec. V — WT coverage without/with last-entry feedback";
  s.paper_anchor =
      "Paper: 75% coverage without the update mechanism, 94% with it";
  s.configs = [] {
    return std::vector<core::InterfaceConfig>{presetMalecNoFeedback(),
                                              presetMalec()};
  };
  s.default_instructions = 100'000;
  TableSpec t;
  t.name = "coverage_ablation";
  t.title = "WT coverage [%] without / with last-entry feedback";
  t.columns = {"no feedback", "feedback", "energy no-fb %"};
  t.row = [](const SuiteContext& ctx, std::size_t w) {
    const auto& outs = ctx.results[w];
    return std::vector<double>{100.0 * outs[0].way_coverage,
                               100.0 * outs[1].way_coverage,
                               100.0 * outs[0].total_pj / outs[1].total_pj};
  };
  t.overall_geomean = true;
  s.tables.push_back(std::move(t));
  return s;
}

// --- Sec. VI-B: merged-load contribution ------------------------------------

ExperimentSpec specMergeContribution() {
  ExperimentSpec s;
  s.name = "merge_contribution";
  s.title = "Sec. VI-B — merged-load contribution to MALEC's speedup";
  s.paper_anchor =
      "Paper: merging contributes ~21% of MALEC's speedup on "
      "average (gap 56%, equake 66%, mgrid <2%)";
  s.configs = [] {
    return std::vector<core::InterfaceConfig>{
        presetBase1ldst(), presetMalec(), presetMalecNoMerge()};
  };
  s.default_instructions = 100'000;
  TableSpec t;
  t.name = "merge_contribution";
  t.title = "Merged-load contribution to MALEC's speedup";
  t.columns = {"speedup %", "speedup noMerge %", "merge contrib %",
               "merged loads %", "dynE noMerge/merge %"};
  t.row = [](const SuiteContext& ctx, std::size_t w) {
    const auto& outs = ctx.results[w];
    const double base = static_cast<double>(outs[0].cycles);
    const double sp_full = base / static_cast<double>(outs[1].cycles) - 1.0;
    const double sp_nomerge =
        base / static_cast<double>(outs[2].cycles) - 1.0;
    const double contrib =
        sp_full > 1e-9 ? 100.0 * (sp_full - sp_nomerge) / sp_full : 0.0;
    return std::vector<double>{
        100.0 * sp_full, 100.0 * sp_nomerge,
        std::max(0.0, std::min(100.0, contrib)) + 1e-6,
        100.0 * outs[1].merged_load_fraction + 1e-6,
        100.0 * outs[2].dynamic_pj / outs[1].dynamic_pj};
  };
  s.tables.push_back(std::move(t));
  return s;
}

// --- Sec. IV: arbitration (merge) window ------------------------------------

ExperimentSpec specArbitrationWindow() {
  ExperimentSpec s;
  s.name = "arbitration_window";
  s.title = "Sec. IV — merge-comparison window sweep";
  s.paper_anchor = "Paper: window=3 within 0.5% of unrestricted comparison";
  // One benchmark per behaviour class keeps the sweep fast; the paper's
  // claim is an average.
  s.workloads = {"gcc", "gap", "equake", "mgrid", "mcf", "djpeg", "h264enc"};
  s.configs = [] {
    std::vector<core::InterfaceConfig> cfgs;
    for (std::uint32_t w : {0u, 1u, 2u, 3u, 5u, 7u}) {
      core::InterfaceConfig c = presetMalec();
      c.merge_window = w;
      c.merge_loads = w > 0;
      c.name = "win" + std::to_string(w);
      cfgs.push_back(std::move(c));
    }
    return cfgs;
  };
  s.default_instructions = 80'000;
  TableSpec t;
  t.name = "arbitration_window";
  t.title = "Execution time [%] vs merge window (win7 = 100)";
  t.row = cyclesVsRefFn(5);
  t.overall_geomean = true;
  t.precision = 2;
  s.tables.push_back(std::move(t));
  return s;
}

// --- Sec. VI-D sensitivity sweeps (six specs, one per table) ----------------

const std::vector<std::string>& sensitivityPicks() {
  static const std::vector<std::string> picks = {"gcc", "gap", "mcf",
                                                 "djpeg", "swim"};
  return picks;
}

ExperimentSpec specSensitivityLatency() {
  ExperimentSpec s;
  s.name = "sensitivity_latency";
  s.title = "Sec. VI-D — L1 latency sweep (MALEC vs Base2ld1st)";
  s.workloads = sensitivityPicks();
  s.configs = [] {
    std::vector<core::InterfaceConfig> cfgs;
    for (Cycle lat : {1u, 2u, 3u}) {
      core::InterfaceConfig m = presetMalec();
      m.l1_latency = lat;
      m.name = "MALEC_" + std::to_string(lat) + "cyc";
      cfgs.push_back(std::move(m));
      core::InterfaceConfig b = presetBase2ld1st();
      b.l1_latency = lat;
      b.name = "Base2_" + std::to_string(lat) + "cyc";
      cfgs.push_back(std::move(b));
    }
    return cfgs;
  };
  s.default_instructions = 80'000;
  TableSpec t;
  t.name = "sensitivity_latency";
  t.title = "Execution time [%] vs L1 latency (MALEC_2cyc = 100)";
  t.row = cyclesVsRefFn(2);
  t.overall_geomean = true;
  s.tables.push_back(std::move(t));
  return s;
}

ExperimentSpec specSensitivityCarry() {
  ExperimentSpec s;
  s.name = "sensitivity_carry";
  s.title = "Sec. VI-D — Input Buffer carry-slot sweep";
  s.workloads = sensitivityPicks();
  s.configs = [] {
    std::vector<core::InterfaceConfig> cfgs;
    for (std::uint32_t carry : {0u, 1u, 2u, 4u, 8u}) {
      core::InterfaceConfig m = presetMalec();
      m.ib_carry_slots = carry;
      m.name = "carry" + std::to_string(carry);
      cfgs.push_back(std::move(m));
    }
    return cfgs;
  };
  s.default_instructions = 80'000;
  TableSpec t;
  t.name = "sensitivity_carry";
  t.title =
      "Execution time [%] vs Input Buffer carry slots (carry2 = 100)";
  t.row = cyclesVsRefFn(2);
  t.overall_geomean = true;
  s.tables.push_back(std::move(t));
  return s;
}

ExperimentSpec specSensitivityBuses() {
  ExperimentSpec s;
  s.name = "sensitivity_buses";
  s.title = "Sec. VI-D — result-bus sweep";
  s.workloads = sensitivityPicks();
  s.configs = [] {
    std::vector<core::InterfaceConfig> cfgs;
    for (std::uint32_t buses : {1u, 2u, 3u, 4u}) {
      core::InterfaceConfig m = presetMalec();
      m.result_buses = buses;
      m.name = "bus" + std::to_string(buses);
      cfgs.push_back(std::move(m));
    }
    return cfgs;
  };
  s.default_instructions = 80'000;
  TableSpec t;
  t.name = "sensitivity_buses";
  t.title = "Execution time [%] vs result buses (bus3 = 100)";
  t.row = cyclesVsRefFn(2);
  t.overall_geomean = true;
  s.tables.push_back(std::move(t));
  return s;
}

ExperimentSpec specSensitivityWaydet() {
  ExperimentSpec s;
  s.name = "sensitivity_waydet";
  s.title = "Sec. VI-D — way-determination benefit on streaming workloads";
  s.paper_anchor =
      "(ratios < 100 mean way determination loses energy — "
      "expected for streaming mcf/swim, paper VI-D)";
  s.workloads = sensitivityPicks();
  s.configs = [] {
    return std::vector<core::InterfaceConfig>{presetMalec(),
                                              presetMalecNoWaydet()};
  };
  s.default_instructions = 80'000;
  TableSpec t;
  t.name = "sensitivity_waydet";
  t.title = "Way-table energy benefit [%] (MALEC_noWayDet / MALEC)";
  t.columns = {"dyn ratio %", "coverage %"};
  t.row = [](const SuiteContext& ctx, std::size_t w) {
    const auto& outs = ctx.results[w];
    return std::vector<double>{
        100.0 * outs[1].dynamic_pj / outs[0].dynamic_pj,
        100.0 * outs[0].way_coverage};
  };
  s.tables.push_back(std::move(t));
  return s;
}

ExperimentSpec specSensitivityAdaptive() {
  ExperimentSpec s;
  s.name = "sensitivity_adaptive";
  s.title = "Sec. VI-D extension — adaptive run-time bypass";
  s.paper_anchor =
      "(the coverage guard keeps the bypass off whenever way\n"
      " determination still pays for itself — on these benchmarks\n"
      " it never engages, i.e. the scheme is strictly no-harm; it\n"
      " triggers only on coverage-free streams, see the\n"
      " AdaptiveBypass tests)";
  s.workloads = sensitivityPicks();
  s.configs = [] {
    return std::vector<core::InterfaceConfig>{presetMalec(),
                                              presetMalecAdaptive()};
  };
  s.default_instructions = 80'000;
  TableSpec t;
  t.name = "sensitivity_adaptive";
  t.title = "Adaptive bypass: total energy [%] (plain MALEC = 100)";
  t.columns = {"adaptive E%", "plain cover%", "adaptive cover%"};
  t.row = [](const SuiteContext& ctx, std::size_t w) {
    const auto& outs = ctx.results[w];
    return std::vector<double>{
        100.0 * outs[1].total_pj / outs[0].total_pj,
        100.0 * outs[0].way_coverage + 1e-6,
        100.0 * outs[1].way_coverage + 1e-6};
  };
  s.tables.push_back(std::move(t));
  return s;
}

ExperimentSpec specSensitivityScaling() {
  ExperimentSpec s;
  s.name = "sensitivity_scaling";
  s.title = "Fig. 2a — scaled MALEC configuration (4 ld + 2 st)";
  s.paper_anchor =
      "(Fig. 2a's 4ld+2st MALEC: grouping scales — the energy per\n"
      " WT evaluation is independent of the reference count)";
  s.workloads = sensitivityPicks();
  s.configs = [] {
    return std::vector<core::InterfaceConfig>{
        presetMalec(), presetMalec4ld2st(), presetBase2ld1st()};
  };
  s.default_instructions = 80'000;
  TableSpec t;
  t.name = "sensitivity_scaling";
  t.title = "Scaling: execution time [%] (MALEC 3-AGU = 100)";
  t.columns = {"MALEC", "MALEC_4ld2st", "Base2ld1st"};
  t.row = cyclesVsRefFn(0);
  t.overall_geomean = true;
  s.tables.push_back(std::move(t));
  return s;
}

// --- Fig. 1: page-locality motivation analysis (custom, trace-level) --------

ExperimentSpec specFig1() {
  ExperimentSpec s;
  s.name = "fig1";
  s.title = "Fig. 1 — same-page access locality of the workloads";
  s.default_instructions = 120'000;
  s.seed = 42;  // the locality analysis has always used its own seed
  s.custom = [](SuiteContext& ctx) {
    const AddressLayout layout;
    const std::vector<std::uint32_t> allowances = {0, 1, 2, 3, 4, 8};

    ctx.emitText(
        "Fig. 1 — consecutive accesses to the same page\n"
        "(group-size fractions of all loads, x = allowed intermediate"
        " accesses to a different page)\n\n");

    struct SuiteAcc {
      std::map<std::uint32_t, std::vector<double>> followed;  // x -> values
      std::vector<double> same_line;
      std::vector<double> store_page;
    };
    std::map<std::string, SuiteAcc> suites;
    SuiteAcc overall;

    Table t("Fig.1 bar segments at x=0 (fraction of loads, %)",
            {"grp=1", "grp=2", "grp3-4", "grp5-8", "grp>8", "followed"});

    for (const auto& wl : ctx.workloads) {
      trace::SyntheticTraceGenerator gen(wl, layout, ctx.instructions,
                                         ctx.seed);
      trace::LocalityAnalyzer an(layout, allowances);
      trace::InstrRecord r;
      while (gen.next(r)) an.observe(r);

      const auto groups = an.pageGroups();
      const auto& g0 = groups[0];
      t.addRow(wl.name, {100 * g0.frac_group_1, 100 * g0.frac_group_2,
                         100 * g0.frac_group_3to4, 100 * g0.frac_group_5to8,
                         100 * g0.frac_group_gt8, 100 * g0.frac_followed});

      SuiteAcc& sa = suites[wl.suite];
      for (const auto& g : groups) {
        sa.followed[g.allowed_intermediates].push_back(g.frac_followed);
        overall.followed[g.allowed_intermediates].push_back(g.frac_followed);
      }
      sa.same_line.push_back(an.sameLineFollowedFraction());
      overall.same_line.push_back(an.sameLineFollowedFraction());
      sa.store_page.push_back(an.storeSamePageFollowedFraction());
      overall.store_page.push_back(an.storeSamePageFollowedFraction());
    }
    t.addOverallGeomeanRow("geo. mean");
    ctx.emitTable(t, "fig1_groups", 1);

    auto meanOf = [](const std::vector<double>& v) {
      double sum = 0;
      for (double d : v) sum += d;
      return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
    };
    std::string txt;
    txt += "Loads followed by >=1 same-page load, by allowance x"
           " (arith. mean, %):\n";
    txt += strf("%-14s", "suite");
    for (std::uint32_t x : allowances) txt += strf("  x=%-5u", x);
    txt += "\n";
    for (const auto& suite : trace::suiteNames()) {
      txt += strf("%-14s", suite.c_str());
      for (std::uint32_t x : allowances)
        txt += strf("  %6.1f", 100 * meanOf(suites[suite].followed[x]));
      txt += "\n";
    }
    txt += strf("%-14s", "Overall");
    for (std::uint32_t x : allowances)
      txt += strf("  %6.1f", 100 * meanOf(overall.followed[x]));
    txt += "\n\n";
    txt += "Paper anchors: x=0 ~70%, x=1 ~85%, x=2 ~90%, x=3 ~92%\n";
    txt += strf("Same-line follow rate (paper ~46%%):   %.1f%%\n",
                100 * meanOf(overall.same_line));
    txt += strf("Store same-page follow (higher than loads): %.1f%%\n",
                100 * meanOf(overall.store_page));
    ctx.emitText(txt);
  };
  return s;
}

// --- Table I / Table II methodology dump (custom) ---------------------------

ExperimentSpec specTab1Tab2() {
  ExperimentSpec s;
  s.name = "tab1_tab2";
  s.title = "Tables I & II — configurations, parameters, array inventory";
  s.default_instructions = 40'000;
  s.custom = [](SuiteContext& ctx) {
    const core::SystemConfig sys = defaultSystem();

    auto interfaceRow = [](const core::InterfaceConfig& c) {
      using core::InterfaceKind;
      const char* addr_comp =
          c.kind == InterfaceKind::kBase1LdSt    ? "1 ld/st"
          : c.kind == InterfaceKind::kBase2Ld1St ? "2 ld + 1 st"
                                                 : "1 ld + 2 ld/st";
      const std::string tlb =
          strf("1 rd/wt%s", c.tlb_extra_rd_ports ? " + 2 rd" : "");
      const std::string l1 =
          strf("1 rd/wt%s", c.l1_extra_rd_ports ? " + 1 rd" : "");
      return strf("%-22s %-16s %-18s %-16s\n", c.name.c_str(), addr_comp,
                  tlb.c_str(), l1.c_str());
    };

    std::string txt;
    txt += "TABLE I — BASIC CONFIGURATIONS\n";
    txt += strf("%-22s %-16s %-18s %-16s\n", "Config", "Addr.Comp./cycle",
                "uTLB/TLB ports", "Cache ports");
    txt += interfaceRow(presetBase1ldst());
    txt += interfaceRow(presetBase2ld1st());
    txt += interfaceRow(presetMalec());

    txt += "\nTABLE II — RELEVANT SIMULATION PARAMETERS\n";
    txt += strf(
        "Processor     single-core out-of-order, %.0f GHz, %u ROB, "
        "%u-wide fetch/dispatch, %u-wide issue\n",
        sys.clock_ghz, sys.rob_entries, sys.fetch_width, sys.issue_width);
    txt += strf(
        "L1 interface  %u TLB, %u uTLB, %u LQ, %u SB, %u MB entries, "
        "%u-bit addresses, %u KByte pages\n",
        sys.tlb_entries, sys.utlb_entries, sys.lq_entries, sys.sb_entries,
        sys.mb_entries, sys.layout.addrBits(),
        sys.layout.pageBytes() / 1024);
    txt += strf(
        "L1 D-cache    %u KByte, %llu cycle latency, %u byte lines, "
        "%u-way set-assoc., %u banks, PIPT, %u-bit sub-blocks\n",
        sys.layout.l1Bytes() / 1024,
        static_cast<unsigned long long>(presetMalec().l1_latency),
        sys.layout.lineBytes(), sys.layout.l1Assoc(), sys.layout.l1Banks(),
        sys.layout.subBlockBytes() * 8);
    txt += strf("L2 cache      1 MByte, %llu cycle latency, 16-way set-assoc.\n",
                static_cast<unsigned long long>(sys.l2_latency));
    txt += strf("DRAM          256 MByte, %llu cycle latency\n",
                static_cast<unsigned long long>(sys.dram_latency));
    txt += "Energy model  mini-CACTI, 32 nm, low-dynamic-power objective, "
           "LSTP data/tag cells\n";

    txt += "\nARRAY INVENTORY (mini-CACTI estimates per configuration)\n";
    for (const auto& cfg : {presetBase1ldst(), presetBase2ld1st(),
                            presetMalec(), presetMalecWdu(16)}) {
      energy::EnergyAccount ea;
      const auto inv = defineEnergies(ea, cfg, sys);
      txt += strf("\n  %s:\n", cfg.name.c_str());
      txt += strf("  %-12s %8s %9s %6s %9s %9s %9s\n", "array", "entries",
                  "bits/row", "inst", "read[pJ]", "write[pJ]", "leak[mW]");
      for (const auto& st : inv) {
        txt += strf("  %-12s %8llu %9u %6u %9.3f %9.3f %9.3f\n",
                    st.spec.name.c_str(),
                    static_cast<unsigned long long>(st.spec.entries),
                    st.spec.entry_bits, st.instances, st.est.read_pj,
                    st.est.write_pj, st.est.leak_mw * st.instances);
      }
    }
    ctx.emitText(txt);

    // Configuration spot-check: the full Fig. 4 configuration set on one
    // benchmark, dispatched as one parallel sweep.
    const auto outs =
        runConfigsParallel(workloadRegistry().get("gcc"), fig4Configs(),
                           ctx.instructions, ctx.seed, ctx.jobs);
    std::string sc;
    sc += strf("\nSPOT CHECK — gcc, %llu instructions, %u jobs\n",
               static_cast<unsigned long long>(ctx.instructions), ctx.jobs);
    sc += strf("%-22s %8s %12s %12s\n", "Config", "IPC", "dyn[uJ]",
               "total[uJ]");
    for (const auto& o : outs)
      sc += strf("%-22s %8.3f %12.3f %12.3f\n", o.config.c_str(), o.ipc,
                 o.dynamic_pj * 1e-6, o.total_pj * 1e-6);
    ctx.emitText(sc);
  };
  return s;
}

// --- Sec. V way-encoding analysis (custom prologue + grid table) ------------

ExperimentSpec specWayEncoding() {
  ExperimentSpec s;
  s.name = "way_encoding";
  s.title = "Sec. V — combined way encoding: storage and miss-rate effect";
  s.paper_anchor =
      "Paper: no measurable L1 miss-rate increase from the 3-way "
      "limitation";
  s.default_instructions = 100'000;
  s.custom = [](SuiteContext& ctx) {
    const core::SystemConfig sys = defaultSystem();

    std::string txt;
    waydet::WayTable wt(sys.tlb_entries, sys.layout.linesPerPage(),
                        sys.layout.l1Banks(), sys.layout.l1Assoc());
    txt += strf(
        "WT entry: combined format %u bits, naive format %u bits (-%.0f%%)\n",
        wt.entryBits(), wt.naiveEntryBits(),
        100.0 * (1.0 - static_cast<double>(wt.entryBits()) /
                           wt.naiveEntryBits()));

    const auto tech = energy::tech32nm();
    for (const char* fmt : {"combined", "naive"}) {
      energy::SramArraySpec spec;
      spec.name = fmt;
      spec.entries = sys.tlb_entries;
      spec.entry_bits = fmt == std::string("combined") ? wt.entryBits()
                                                       : wt.naiveEntryBits();
      spec.read_bits = 16;
      const auto est = energy::SramArrayModel::estimate(spec, tech);
      txt += strf("  %-9s WT: leak %.4f mW, area %.5f mm2\n", fmt,
                  est.leak_mw, est.area_mm2);
    }

    txt += "\nSegmented WT (wide pages, Sec. VI-D): storage vs flat\n";
    txt += strf("  %-10s %-8s %12s %12s\n", "page", "chunks", "seg bits",
                "flat bits");
    for (std::uint32_t page_kb : {4u, 16u, 64u}) {
      const std::uint32_t lines = page_kb * 1024 / sys.layout.lineBytes();
      for (std::uint32_t chunks : {64u, 128u}) {
        waydet::SegmentedWayTable::Params sp;
        sp.slots = sys.tlb_entries;
        sp.lines_per_page = lines;
        sp.lines_per_chunk = 16;
        sp.chunks = chunks;
        waydet::SegmentedWayTable seg(sp);
        txt += strf("  %6u KB %8u %12u %12u\n", page_kb, chunks,
                    seg.storageBits(), seg.flatStorageBits());
      }
    }
    ctx.emitText(txt);

    core::InterfaceConfig with = presetMalec();
    core::InterfaceConfig without = presetMalec();
    without.waydet = core::WayDetKind::kNone;  // no allocation restriction
    without.name = "MALEC_unrestricted";
    ctx.configs = {with, without};
    ctx.results = runMatrixParallel(ctx.workloads, ctx.configs,
                                    ctx.instructions, ctx.seed, ctx.jobs);
    ctx.progressDots();

    Table t("L1 load miss rate [%]: 3-way-restricted vs unrestricted",
            {"restricted", "unrestricted"});
    for (std::size_t w = 0; w < ctx.workloads.size(); ++w) {
      const auto& outs = ctx.results[w];
      t.addRow(ctx.workloads[w].name,
               {100.0 * outs[0].l1_load_miss_rate + 1e-6,
                100.0 * outs[1].l1_load_miss_rate + 1e-6});
    }
    t.addOverallGeomeanRow("geo.mean");
    ctx.emitText("\n");
    ctx.emitTable(t, "way_encoding_missrate", 2);
  };
  return s;
}

// --- trace replay: captured traces through the Table-I interfaces -----------

ExperimentSpec specTraceReplay() {
  ExperimentSpec s;
  s.name = "trace_replay";
  s.title =
      "Trace replay — captured *.mtrace workloads through the Table-I "
      "interfaces";
  s.paper_anchor =
      "(replayed captures stand in for the paper's 1B-instruction Simpoint\n"
      " traces of SPEC CPU2000 / MediaBench2 — capture with `trace_tools\n"
      " gen`, point MALEC_TRACE_DIR at the directory; a capture of a\n"
      " synthetic workload reproduces its direct run bit for bit)";
  s.workloads = {"trace:*"};
  s.configs = [] {
    return std::vector<core::InterfaceConfig>{
        presetBase1ldst(), presetBase2ld1st(), presetMalec()};
  };
  // 0 = replay each trace in full; MALEC_INSTR / --instr still cap it.
  s.default_instructions = 0;
  // --all gate: without any registered capture matching the sweep's
  // filter, the suite body (trace:* expansion / the empty-filter-match
  // check) would abort the sweep mid-stream.
  s.all_skip = [](const SuiteOptions& opts) {
    for (const auto& name : workloadRegistry().names()) {
      if (!workloadRegistry().get(name).isTrace()) continue;
      if (!opts.workload_filter.empty() &&
          name.find(opts.workload_filter) == std::string::npos)
        continue;
      return std::string();
    }
    return std::string(
        "no trace workloads registered (or none match --filter) — set "
        "MALEC_TRACE_DIR to include it");
  };
  TableSpec tt;
  tt.name = "trace_replay_time";
  tt.title = "Trace replay — normalized execution time [%] (Base1ldst = 100)";
  tt.row = cyclesVsRefFn(0);
  tt.overall_geomean = true;
  s.tables.push_back(std::move(tt));
  TableSpec te;
  te.name = "trace_replay_energy";
  te.title = "Trace replay — normalized total energy [%] (Base1ldst = 100)";
  te.row = [](const SuiteContext& ctx, std::size_t w) {
    const auto& outs = ctx.results[w];
    std::vector<double> row;
    for (const auto& o : outs)
      row.push_back(100.0 * o.total_pj / outs[0].total_pj);
    return row;
  };
  te.overall_geomean = true;
  s.tables.push_back(std::move(te));
  TableSpec ti;
  ti.name = "trace_replay_ipc";
  ti.title = "Trace replay — IPC";
  ti.row = [](const SuiteContext& ctx, std::size_t w) {
    std::vector<double> row;
    for (const auto& o : ctx.results[w]) row.push_back(o.ipc);
    return row;
  };
  ti.precision = 3;
  s.tables.push_back(std::move(ti));
  return s;
}

// --- phase-sampled replay: sampled vs full on captured traces ---------------

/// The skip decision the phase_sampled gate and suite body share: the
/// capture's sidecar plan must load AND still bind to the capture next to
/// it (record count + v2 checksum) — a stale plan left behind by a
/// re-capture must be skipped with a note, never abort a sweep inside
/// runOneSampled's own binding check. `out`/`why` are optional.
bool usableSamplePlan(const trace::WorkloadProfile& wl,
                      phase::SamplePlan* out, std::string* why) {
  const std::string plan_path = phase::planSidecarPath(wl.trace_path);
  phase::SamplePlan plan;
  std::string err;
  if (!phase::loadSamplePlan(plan_path, plan, err)) {
    if (why != nullptr) *why = err;
    return false;
  }
  trace::TraceReader probe(wl.trace_path);
  if (!probe.ok()) {
    if (why != nullptr) *why = probe.error();
    return false;
  }
  if (!phase::planBindsTo(plan, probe)) {
    if (why != nullptr)
      *why = "sample plan '" + plan_path +
             "' was computed from a different capture";
    return false;
  }
  if (out != nullptr) *out = std::move(plan);
  return true;
}

ExperimentSpec specPhaseSampled() {
  ExperimentSpec s;
  s.name = "phase_sampled";
  s.title =
      "Phase sampling — BBV-interval sampled replay vs full replay "
      "(error + speedup)";
  s.paper_anchor =
      "(the paper simulates one representative Simpoint phase per\n"
      " benchmark instead of the whole run; this suite is the\n"
      " reproduction's analogue — k representative intervals per capture,\n"
      " warmup-primed, weighted back to a whole-trace estimate. err% =\n"
      " sampled estimate vs measured full replay; speedup = full wall\n"
      " clock / sampled wall clock. Write plans with `trace_tools phases\n"
      " <capture>`)";
  s.workloads = {"trace:*"};
  // Both replays always stream their plan/trace in full: --instr aborts
  // and MALEC_INSTR resolves to 0 (see ExperimentSpec::whole_stream_only).
  s.default_instructions = 0;
  s.whole_stream_only = true;
  // --all gate: without at least one FILTER-MATCHING capture carrying a
  // .mplan sidecar the suite body's "no plan anywhere" check would abort
  // a whole --all sweep mid-stream (the gate honours --filter exactly
  // like the body's workload resolution does). An explicit --suite
  // phase_sampled still fails loudly.
  s.all_skip = [](const SuiteOptions& opts) {
    bool any_trace = false;
    for (const auto& name : workloadRegistry().names()) {
      const trace::WorkloadProfile& wl = workloadRegistry().get(name);
      if (!wl.isTrace()) continue;
      if (!opts.workload_filter.empty() &&
          name.find(opts.workload_filter) == std::string::npos)
        continue;
      any_trace = true;
      // The suite is runnable iff at least one matching capture would NOT
      // be skipped by the body — same predicate, so the body's ran > 0
      // check can never abort a sweep this gate admitted.
      if (usableSamplePlan(wl, nullptr, nullptr)) return std::string();
    }
    if (!any_trace)
      return std::string(
          "no trace workloads registered (or none match --filter) — set "
          "MALEC_TRACE_DIR to include it");
    return std::string(
        "no matching capture has a usable .mplan sidecar — run "
        "`trace_tools phases <capture>`");
  };
  s.custom = [](SuiteContext& ctx) {
    ctx.configs = {presetBase1ldst(), presetBase2ld1st(), presetMalec()};
    Table t("Phase-sampled vs full replay (whole-capture estimates)",
            {"IPC full", "IPC smpl", "IPC err%", "E full uJ", "E smpl uJ",
             "E err%", "speedup x"});
    std::string notes;
    std::size_t ran = 0;
    auto seconds = [](std::chrono::steady_clock::time_point t0) {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    for (const auto& wl : ctx.workloads) {
      // An explicitly-named sampled workload (a registry ":sampled" entry
      // or an ad-hoc "trace:<path>:sampled") IS the sampled half of its
      // row; its full-replay half simply strips the plan. A plain trace
      // workload derives its sampled half from the .mplan sidecar.
      trace::WorkloadProfile full_wl = wl;
      trace::WorkloadProfile sampled;
      phase::SamplePlan plan;
      if (wl.isSampled()) {
        full_wl.sample_plan_path.clear();
        sampled = wl;
        std::string err;
        // Suite materialization validated this plan up front; a file that
        // changed since is a hard error, not a skip.
        if (!phase::loadSamplePlan(wl.sample_plan_path, plan, err))
          MALEC_CHECK_MSG(false, err.c_str());
      } else {
        const std::string plan_path = phase::planSidecarPath(wl.trace_path);
        // Keep a plan-less, corrupt-plan or stale-plan capture from
        // aborting a directory-wide run (malec_bench --all with
        // MALEC_TRACE_DIR set); the final check below still fails loudly —
        // with these notes emitted first — when NO capture has a usable
        // plan.
        std::string why;
        if (!usableSamplePlan(wl, &plan, &why)) {
          notes += "skipping " + wl.name + " (" + why +
                   " — run `trace_tools phases " + wl.trace_path + "`)\n";
          continue;
        }
        // Unchecked variant: usableSamplePlan just validated this exact
        // plan, so only the naming/sidecar convention is needed.
        sampled = sampledWorkloadUnchecked(wl, plan_path);
      }
      notes += strf(
          "%s: %llu records, %llu intervals of %llu, %zu phases, "
          "simulates %.1f%% (warmup %llu/pick)\n",
          wl.name.c_str(),
          static_cast<unsigned long long>(plan.trace_records),
          static_cast<unsigned long long>(plan.totalIntervals()),
          static_cast<unsigned long long>(plan.interval_size),
          plan.picks.size(),
          100.0 * static_cast<double>(plan.simulatedInstructions()) /
              static_cast<double>(plan.trace_records),
          static_cast<unsigned long long>(plan.warmup_instructions));
      for (const auto& cfg : ctx.configs) {
        RunConfig full;
        full.workload = full_wl;
        full.interface_cfg = cfg;
        full.system = defaultSystem();
        full.instructions = 0;  // whole trace / whole plan
        full.seed = ctx.seed;
        RunConfig smpl = full;
        smpl.workload = sampled;

        const auto t_full = std::chrono::steady_clock::now();
        const RunOutput o_full = runOne(full);
        const double s_full = seconds(t_full);
        const auto t_smpl = std::chrono::steady_clock::now();
        const RunOutput o_smpl = runOne(smpl);
        const double s_smpl = seconds(t_smpl);

        t.addRow(wl.name + " " + cfg.name,
                 {o_full.ipc, o_smpl.ipc,
                  100.0 * (o_smpl.ipc - o_full.ipc) / o_full.ipc,
                  o_full.total_pj * 1e-6, o_smpl.total_pj * 1e-6,
                  100.0 * (o_smpl.total_pj - o_full.total_pj) /
                      o_full.total_pj,
                  s_smpl > 0.0 ? s_full / s_smpl : 0.0});
        ++ran;
      }
    }
    ctx.progressDots();
    // Notes first: when the check below aborts an explicit --suite run,
    // the per-workload skip notes naming the searched plan paths are the
    // diagnostic the user needs.
    ctx.emitText(notes + "\n");
    MALEC_CHECK_MSG(ran > 0,
                    "phase_sampled found no capture with a .mplan sidecar — "
                    "run `trace_tools phases <capture>` first");
    ctx.emitTable(t, "phase_sampled", 3);
  };
  return s;
}

// --- host microbenchmark: energy-accounting throughput (custom) -------------

ExperimentSpec specEnergyAccount() {
  ExperimentSpec s;
  s.name = "energy_account";
  s.title =
      "host microbench — string vs EventId energy-accounting throughput";
  s.default_instructions = 20'000'000;  // counts per path, not instructions
  s.custom = [](SuiteContext& ctx) {
    static const char* const kEventNames[] = {
        "l1.ctrl",      "l1.tag_read",   "l1.data_read", "l1.data_write",
        "l1.tag_write", "l1.line_write", "l1.line_read", "utlb.search",
        "tlb.search",   "utlb.psearch",  "tlb.psearch",  "uwt.read",
        "uwt.write",    "wt.read",       "wt.write",     "wdu.search",
    };
    constexpr std::size_t kNumEvents = std::size(kEventNames);
    // Whole passes over the event mix keep the per-event sanity check
    // valid for any requested count.
    std::uint64_t iters = ctx.instructions;
    iters -= iters % kNumEvents;
    if (iters == 0) iters = kNumEvents;

    energy::EnergyAccount ea;
    std::vector<energy::EnergyAccount::EventId> ids;
    for (const char* name : kEventNames)
      ids.push_back(ea.defineEvent(name, 1.0));

    auto secondsSince = [](std::chrono::steady_clock::time_point t0) {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };

    // String path: what every count() call site paid before interning.
    const auto t_str = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
      ea.count(kEventNames[i % kNumEvents]);
    const double s_str = secondsSince(t_str);

    // EventId path: resolve once (done above), then array increments.
    const auto t_id = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
      ea.count(ids[i % kNumEvents]);
    const double s_id = secondsSince(t_id);

    const std::uint64_t per_event = 2 * iters / kNumEvents;
    for (const char* name : kEventNames)
      MALEC_CHECK_MSG(ea.eventCount(name) == per_event,
                      "energy_account microbench count mismatch");

    const double mps_str = static_cast<double>(iters) / s_str / 1e6;
    const double mps_id = static_cast<double>(iters) / s_id / 1e6;
    std::string txt;
    txt += strf("events: %zu types, %llu counts per path\n", kNumEvents,
                static_cast<unsigned long long>(iters));
    txt += strf("string API : %8.1f Mevents/s  (%.3f s)\n", mps_str, s_str);
    txt += strf("EventId API: %8.1f Mevents/s  (%.3f s)\n", mps_id, s_id);
    txt += strf("speedup    : %8.1fx\n", mps_id / mps_str);
    ctx.emitText(txt);
  };
  return s;
}

}  // namespace

void registerBuiltinSpecs(Registry<ExperimentSpec>& reg) {
  auto add = [&reg](ExperimentSpec s) {
    std::string name = s.name;
    reg.add(name, std::move(s));
  };
  add(specFig1());
  add(specTab1Tab2());
  add(specFig4a());
  add(specFig4b());
  add(specWduVsWt());
  add(specCoverageAblation());
  add(specMergeContribution());
  add(specArbitrationWindow());
  add(specWayEncoding());
  add(specSensitivityLatency());
  add(specSensitivityCarry());
  add(specSensitivityBuses());
  add(specSensitivityWaydet());
  add(specSensitivityAdaptive());
  add(specSensitivityScaling());
  add(specTraceReplay());
  add(specPhaseSampled());
  add(specEnergyAccount());
}

}  // namespace malec::sim
