// Configuration presets reproducing the paper's Table I interfaces (plus
// the latency variants of Sec. VI-B and the ablation variants of VI-C/D),
// and a factory turning a preset into a live interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/baseline_interface.h"
#include "core/interface_config.h"
#include "core/malec_interface.h"
#include "core/mem_interface.h"
#include "energy/energy_account.h"

namespace malec::sim {

/// Table II system parameters.
[[nodiscard]] core::SystemConfig defaultSystem();

// --- Table I interfaces -----------------------------------------------------
[[nodiscard]] core::InterfaceConfig presetBase1ldst();
[[nodiscard]] core::InterfaceConfig presetBase2ld1st();
[[nodiscard]] core::InterfaceConfig presetMalec();

// --- latency variants (Fig. 4) ----------------------------------------------
[[nodiscard]] core::InterfaceConfig presetBase2ld1st1cycle();
[[nodiscard]] core::InterfaceConfig presetMalec3cycle();

// --- ablation variants (Sec. V, VI-C, VI-D) ---------------------------------
/// MALEC with the WDU (8/16/32 entries) instead of Way Tables.
[[nodiscard]] core::InterfaceConfig presetMalecWdu(std::uint32_t entries);
/// MALEC without any way determination (always conventional accesses).
[[nodiscard]] core::InterfaceConfig presetMalecNoWaydet();
/// MALEC without the last-entry-register feedback (75 % coverage ablation).
[[nodiscard]] core::InterfaceConfig presetMalecNoFeedback();
/// MALEC without same-line load merging (merge-contribution ablation).
[[nodiscard]] core::InterfaceConfig presetMalecNoMerge();
/// MALEC with the run-time way-determination bypass (Sec. VI-D extension).
[[nodiscard]] core::InterfaceConfig presetMalecAdaptive();
/// The scaled Fig. 2a configuration: up to 4 loads + 2 stores per cycle,
/// 3 carried loads, 4 result buses.
[[nodiscard]] core::InterfaceConfig presetMalec4ld2st();

/// The five configurations plotted in Fig. 4, in the paper's order.
[[nodiscard]] std::vector<core::InterfaceConfig> fig4Configs();

/// Instantiate the matching interface implementation.
[[nodiscard]] std::unique_ptr<core::MemInterface> makeInterface(
    const core::InterfaceConfig& cfg, const core::SystemConfig& sys,
    energy::EnergyAccount& ea);

}  // namespace malec::sim
