#include "sim/reporting.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace malec::sim {

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : v) {
    MALEC_CHECK_MSG(x > 0.0, "geomean needs positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(v.size()));
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::addRow(const std::string& label,
                   const std::vector<double>& values) {
  MALEC_CHECK_MSG(values.size() == columns_.size(),
                  "Table::addRow: values size must equal the column count");
  rows_.push_back(Row{label, values, false});
}

void Table::addGeomeanRow(const std::string& label) {
  std::vector<double> means(columns_.size(), 0.0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::vector<double> vals;
    for (std::size_t r = mean_window_start_; r < rows_.size(); ++r)
      if (!rows_[r].is_mean) vals.push_back(rows_[r].values[c]);
    means[c] = geomean(vals);
  }
  rows_.push_back(Row{label, means, true});
  mean_window_start_ = rows_.size();
}

void Table::addOverallGeomeanRow(const std::string& label) {
  std::vector<double> means(columns_.size(), 0.0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::vector<double> vals;
    for (const Row& r : rows_)
      if (!r.is_mean) vals.push_back(r.values[c]);
    means[c] = geomean(vals);
  }
  rows_.push_back(Row{label, means, true});
}

std::string Table::render(int precision) const {
  std::size_t label_w = 10;
  for (const Row& r : rows_) label_w = std::max(label_w, r.label.size());
  std::vector<std::size_t> col_w(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    col_w[c] = std::max<std::size_t>(columns_[c].size(), 8);

  std::string out = "== " + title_ + " ==\n";
  char buf[128];
  std::snprintf(buf, sizeof buf, "%-*s", static_cast<int>(label_w),
                "benchmark");
  out += buf;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::snprintf(buf, sizeof buf, "  %*s", static_cast<int>(col_w[c]),
                  columns_[c].c_str());
    out += buf;
  }
  out += '\n';
  for (const Row& r : rows_) {
    std::snprintf(buf, sizeof buf, "%-*s", static_cast<int>(label_w),
                  r.label.c_str());
    out += buf;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      std::snprintf(buf, sizeof buf, "  %*.*f", static_cast<int>(col_w[c]),
                    precision, r.values[c]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

bool Table::maybeWriteCsv(const std::string& name, int precision) const {
  const char* dir = std::getenv("MALEC_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return false;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string data = csv(precision);
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

/// RFC-4180 field escaping: a field holding a comma, quote, CR or LF is
/// wrapped in double quotes with inner quotes doubled. Plain fields pass
/// through untouched, so ordinary benchmark/config labels keep producing
/// the exact bytes the existing goldens pin — only exotic labels
/// (`trace:<path>` workloads with commas, quotes or spaces in the path)
/// gain the quoting that keeps the CSV parseable.
std::string csvField(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string Table::csv(int precision) const {
  std::string out = "benchmark";
  for (const auto& c : columns_) out += "," + csvField(c);
  out += '\n';
  char buf[64];
  for (const Row& r : rows_) {
    out += csvField(r.label);
    for (double v : r.values) {
      std::snprintf(buf, sizeof buf, ",%.*f", precision, v);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace malec::sim
