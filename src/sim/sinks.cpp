#include "sim/sinks.h"

#include <unistd.h>

#include <cstdlib>

#include "sim/experiment.h"

namespace malec::sim {

namespace {

/// Compact, lossless-enough number formatting for the JSON stream
/// (17 significant digits would be exact but unreadable; 10 is beyond any
/// precision the tables render with).
std::string jsonNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// MALEC_SINK_FSYNC: fsync the JSON-lines stream after every record.
/// Strictly parsed like every knob; unset, empty or "0" = off. For
/// consumers that tail the stream across coordinator crashes and cannot
/// afford to lose acknowledged records to the page cache.
bool sinkFsyncEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("MALEC_SINK_FSYNC");
    if (env == nullptr || env[0] == '\0') return false;
    return parseU64Strict(env, "MALEC_SINK_FSYNC") > 0;
  }();
  return enabled;
}

}  // namespace

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

// --- ConsoleSink ------------------------------------------------------------

void ConsoleSink::table(const Table& t, const std::string&, int precision) {
  std::fprintf(out_, "%s\n", t.render(precision).c_str());
}

void ConsoleSink::note(const std::string& text) {
  std::fprintf(out_, "%s", text.c_str());
}

// --- CsvDirSink -------------------------------------------------------------

void CsvDirSink::table(const Table& t, const std::string& name,
                       int /*precision*/) {
  const std::string path = dir_ + "/" + name + ".csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "CsvDirSink: cannot open %s\n", path.c_str());
    return;
  }
  const std::string data = t.csv(/*precision=*/4);
  if (std::fwrite(data.data(), 1, data.size(), f) != data.size())
    std::fprintf(stderr, "CsvDirSink: short write to %s\n", path.c_str());
  std::fclose(f);
}

// --- JsonLinesSink ----------------------------------------------------------

void JsonLinesSink::writeLine(const std::string& line) {
  if (capture_ != nullptr) {
    *capture_ += line;
    *capture_ += '\n';
  }
  if (out_ != nullptr) {
    std::fprintf(out_, "%s\n", line.c_str());
    // JSON lines is the machine-consumed stream: a crash (or a sweep
    // worker SIGKILLed by supervision) must never truncate it mid-record,
    // so every line leaves the stdio buffer immediately. A consumer then
    // sees only whole records, the journal-style property resume relies
    // on. fsync is opt-in: full durability costs a disk round-trip per
    // line.
    std::fflush(out_);
    if (sinkFsyncEnabled()) ::fsync(::fileno(out_));
  }
}

void JsonLinesSink::beginSuite(const SuiteInfo& info) {
  suite_ = info.name;
  std::string line = "{\"event\":\"suite_begin\",\"suite\":\"" +
                     jsonEscape(info.name) + "\",\"title\":\"" +
                     jsonEscape(info.title) + "\",\"instructions\":" +
                     std::to_string(info.instructions) + ",\"seed\":" +
                     std::to_string(info.seed) + ",\"jobs\":" +
                     std::to_string(info.jobs) + "}";
  writeLine(line);
}

void JsonLinesSink::table(const Table& t, const std::string& name,
                          int precision) {
  std::string head = "{\"event\":\"table\",\"suite\":\"" +
                     jsonEscape(suite_) + "\",\"name\":\"" + jsonEscape(name) +
                     "\",\"title\":\"" + jsonEscape(t.title()) +
                     "\",\"precision\":" + std::to_string(precision) +
                     ",\"columns\":[";
  for (std::size_t c = 0; c < t.columns().size(); ++c) {
    if (c != 0) head += ',';
    head += '"' + jsonEscape(t.columns()[c]) + '"';
  }
  head += "]}";
  writeLine(head);
  for (const Table::Row& r : t.rows()) {
    std::string line = "{\"event\":\"row\",\"suite\":\"" + jsonEscape(suite_) +
                       "\",\"table\":\"" + jsonEscape(name) +
                       "\",\"label\":\"" + jsonEscape(r.label) +
                       "\",\"mean\":" + (r.is_mean ? "true" : "false") +
                       ",\"values\":[";
    for (std::size_t c = 0; c < r.values.size(); ++c) {
      if (c != 0) line += ',';
      line += jsonNumber(r.values[c]);
    }
    line += "]}";
    writeLine(line);
  }
}

void JsonLinesSink::note(const std::string& text) {
  writeLine("{\"event\":\"note\",\"suite\":\"" + jsonEscape(suite_) +
            "\",\"text\":\"" + jsonEscape(text) + "\"}");
}

void JsonLinesSink::endSuite() {
  writeLine("{\"event\":\"suite_end\",\"suite\":\"" + jsonEscape(suite_) +
            "\"}");
  suite_.clear();
}

}  // namespace malec::sim
