// Table formatting for the bench binaries: per-benchmark rows with
// suite and overall geometric means, normalised the way the paper plots
// Fig. 4 (percent of the Base1ldst value).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace malec::sim {

/// Geometric mean; empty input yields 0.
[[nodiscard]] double geomean(const std::vector<double>& v);

/// RFC-4180 CSV field escaping: fields holding a comma, quote, CR or LF
/// come back quoted with inner quotes doubled; everything else passes
/// through byte-for-byte (ordinary labels keep their golden bytes).
[[nodiscard]] std::string csvField(const std::string& s);

/// One output table: first column = row label, remaining columns numeric.
class Table {
 public:
  struct Row {
    std::string label;
    std::vector<double> values;
    bool is_mean = false;
  };

  Table(std::string title, std::vector<std::string> columns);

  /// Append one data row. `values` must have exactly one entry per column;
  /// a mismatch aborts (a silently ragged table renders misaligned and
  /// poisons every geomean downstream).
  void addRow(const std::string& label, const std::vector<double>& values);
  /// Insert a geometric-mean row over the rows added since the last mean.
  void addGeomeanRow(const std::string& label);
  /// Geometric mean over every data row added so far (excluding mean rows).
  void addOverallGeomeanRow(const std::string& label);

  /// Render with fixed-point values ("%.1f" by default).
  [[nodiscard]] std::string render(int precision = 1) const;
  /// Comma-separated form for downstream plotting.
  [[nodiscard]] std::string csv(int precision = 4) const;

  /// Write csv() to `<dir>/<name>.csv` when the MALEC_CSV_DIR environment
  /// variable is set; silently does nothing otherwise. Returns whether a
  /// file was written. (Result sinks are the preferred route; this is the
  /// legacy env-driven path, kept as a convenience wrapper.)
  bool maybeWriteCsv(const std::string& name, int precision = 4) const;

  // Structured read access for result sinks (JSON, CSV, ...).
  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
  std::size_t mean_window_start_ = 0;
};

}  // namespace malec::sim
