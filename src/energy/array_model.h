// Mini-CACTI: analytical per-access energy / leakage / area estimation for
// the SRAM and CAM structures in the L1 data memory subsystem.
//
// Each hardware structure (tag array, data array, TLB CAM, way table, ...)
// is described by an SramArraySpec; SramArrayModel::estimate() turns it into
// per-operation dynamic energies and a leakage power. The simulator then
// multiplies operation counts by these energies (EnergyAccount) exactly the
// way the paper combines gem5 statistics with CACTI numbers (Sec. VI-A).
#pragma once

#include <cstdint>
#include <string>

#include "energy/tech.h"

namespace malec::energy {

/// What kind of lookup hardware the array implements.
enum class ArrayKind {
  kRam,  ///< decoded (indexed) SRAM array
  kCam,  ///< fully-associative content-addressable search + payload read
};

/// Geometry and porting of one physical array.
struct SramArraySpec {
  std::string name;             ///< for reports ("l1.data.bank", ...)
  std::uint64_t entries = 1;    ///< rows
  std::uint32_t entry_bits = 8; ///< stored bits per row
  /// Bits actually delivered per read access (column-muxed arrays read
  /// fewer bits than a full row stores; defaults to entry_bits).
  std::uint32_t read_bits = 0;
  /// Bits compared per CAM search (CAM arrays only).
  std::uint32_t search_bits = 0;
  std::uint32_t rw_ports = 1;
  std::uint32_t rd_ports = 0;
  std::uint32_t wt_ports = 0;
  CellType cell = CellType::kLowStandbyPower;
  ArrayKind kind = ArrayKind::kRam;

  [[nodiscard]] std::uint32_t totalPorts() const {
    return rw_ports + rd_ports + wt_ports;
  }
  [[nodiscard]] std::uint64_t totalBits() const {
    return entries * entry_bits;
  }
};

/// Per-array estimate produced by the model.
struct ArrayEstimate {
  double read_pj = 0.0;    ///< one read access
  double write_pj = 0.0;   ///< one write access
  double search_pj = 0.0;  ///< one CAM search (kCam only; includes payload)
  double leak_mw = 0.0;    ///< static power of the whole array
  double area_mm2 = 0.0;   ///< rough cell-area estimate (for reports only)
};

class SramArrayModel {
 public:
  /// Estimate energies for `spec` under technology `tech`.
  [[nodiscard]] static ArrayEstimate estimate(const SramArraySpec& spec,
                                              const TechnologyParams& tech);
};

}  // namespace malec::energy
