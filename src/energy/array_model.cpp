#include "energy/array_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace malec::energy {

namespace {

/// ceil(log2(v)) for v >= 1.
std::uint32_t ceilLog2(std::uint64_t v) {
  std::uint32_t b = 0;
  while ((1ull << b) < v) ++b;
  return b;
}

double portDynFactor(const SramArraySpec& s, const TechnologyParams& t) {
  const std::uint32_t extra = s.totalPorts() > 0 ? s.totalPorts() - 1 : 0;
  return 1.0 + t.dyn_per_extra_port * extra;
}

double portLeakFactor(const SramArraySpec& s, const TechnologyParams& t) {
  const std::uint32_t extra = s.totalPorts() > 0 ? s.totalPorts() - 1 : 0;
  return 1.0 + t.leak_per_extra_port * extra;
}

double cellDynFactor(CellType c) {
  // LSTP cells use higher-Vt transistors: slightly costlier to switch.
  return c == CellType::kLowStandbyPower ? 1.18 : 1.0;
}

double cellLeakNwPerBit(CellType c, const TechnologyParams& t) {
  return c == CellType::kLowStandbyPower ? t.leak_lstp_nw_per_bit
                                         : t.leak_hp_nw_per_bit;
}

}  // namespace

ArrayEstimate SramArrayModel::estimate(const SramArraySpec& spec,
                                       const TechnologyParams& tech) {
  MALEC_CHECK(spec.entries >= 1);
  MALEC_CHECK(spec.entry_bits >= 1);
  const std::uint32_t read_bits =
      spec.read_bits != 0 ? spec.read_bits : spec.entry_bits;

  // CACTI-style mat partitioning: cap bitline length, route across mats.
  const std::uint64_t rows = spec.entries;
  const std::uint64_t rows_per_sub =
      std::min<std::uint64_t>(rows, tech.max_rows_per_subarray);
  const double subarrays =
      static_cast<double>((rows + rows_per_sub - 1) / rows_per_sub);
  const double route_factor = std::sqrt(subarrays);

  const double dyn_f = portDynFactor(spec, tech) * cellDynFactor(spec.cell);

  ArrayEstimate est;

  // --- dynamic read --------------------------------------------------------
  // Bitline discharge on the accessed columns scales with the (capped)
  // bitline length; wordline fires the full row; decoder scales with the
  // number of address bits; routing with the mat count.
  const double bl_len_factor =
      static_cast<double>(rows_per_sub) / tech.max_rows_per_subarray;
  const double e_bl_read = tech.e_bitline_read_pj_per_bit * read_bits *
                           (0.35 + 0.65 * bl_len_factor);
  const double e_wl = tech.e_wordline_pj_per_bit * spec.entry_bits;
  const double e_dec = tech.e_decode_pj_per_addr_bit * ceilLog2(rows);
  const double e_route = tech.e_route_pj_per_bit * read_bits * route_factor;
  est.read_pj =
      dyn_f * (e_bl_read + e_wl + e_dec + e_route + tech.e_periph_fixed_pj);

  // --- dynamic write -------------------------------------------------------
  const double e_bl_write = tech.e_bitline_write_pj_per_bit * read_bits *
                            (0.35 + 0.65 * bl_len_factor);
  est.write_pj =
      dyn_f * (e_bl_write + e_wl + e_dec + e_route + tech.e_periph_fixed_pj);

  // --- CAM search ----------------------------------------------------------
  if (spec.kind == ArrayKind::kCam) {
    MALEC_CHECK_MSG(spec.search_bits > 0, "CAM arrays need search_bits");
    // All match lines precharge and all search lines toggle: energy scales
    // with entries x searched bits; a hit then reads the payload row.
    const double e_match = tech.e_cam_pj_per_entry_bit *
                           static_cast<double>(spec.entries) *
                           spec.search_bits;
    est.search_pj = dyn_f * e_match + est.read_pj;
  }

  // --- leakage -------------------------------------------------------------
  const double cell_leak_mw = cellLeakNwPerBit(spec.cell, tech) *
                              static_cast<double>(spec.totalBits()) * 1e-6;
  const double periph_leak_mw = tech.leak_periph_nw_per_width_bit *
                                spec.entry_bits * 1e-6 *
                                static_cast<double>(spec.totalPorts());
  est.leak_mw = cell_leak_mw * portLeakFactor(spec, tech) + periph_leak_mw;

  // --- area (informational) ------------------------------------------------
  // 6T cell ~ 0.17 um^2 at 32 nm; multi-port cells grow linearly.
  const std::uint32_t extra_ports =
      spec.totalPorts() > 0 ? spec.totalPorts() - 1 : 0;
  const double cell_um2 = 0.17 * (1.0 + tech.area_per_extra_port * extra_ports);
  est.area_mm2 = static_cast<double>(spec.totalBits()) * cell_um2 * 1e-6 * 1.4;

  return est;
}

}  // namespace malec::energy
