// Technology-node parameters for the mini-CACTI analytical model.
//
// The paper combines gem5 access statistics with CACTI v6.5 estimates at a
// 32 nm node, design objective "low dynamic power", with low-standby-power
// (LSTP) cells for the data/tag arrays and high-performance peripherals
// (Table II). We cannot run CACTI here, so src/energy re-derives per-access
// dynamic energy and leakage power from first-order scaling laws whose
// constants are calibrated to preserve the structural ratios the paper
// reports (e.g. one extra L1 read port ≈ +80 % L1 leakage; the uWT+WT
// contribute ≈0.3 % leakage / ≈2.1 % dynamic of the L1 subsystem).
// Absolute pJ values are therefore representative, not authoritative; all
// paper comparisons are made on normalised energy, where the calibration
// constants cancel out of everything except the modelled ratios.
#pragma once

#include <cstdint>

namespace malec::energy {

/// SRAM cell flavour (CACTI "cell type").
enum class CellType {
  kLowStandbyPower,   ///< LSTP: higher access energy, tiny retention leakage
  kHighPerformance,   ///< HP: faster/cheaper dynamic, leaky
};

/// First-order technology constants. Defaults model the paper's 32 nm node.
struct TechnologyParams {
  std::uint32_t node_nm = 32;

  // --- dynamic energy (pJ) -----------------------------------------------
  /// Bitline + sense-amp energy per *read* bit column actually accessed.
  double e_bitline_read_pj_per_bit = 0.032;
  /// Bitline drive energy per *written* bit.
  double e_bitline_write_pj_per_bit = 0.040;
  /// Wordline energy per bit of row width (whole row fires on access).
  double e_wordline_pj_per_bit = 0.0022;
  /// Row-decoder energy per address bit decoded.
  double e_decode_pj_per_addr_bit = 0.055;
  /// Fixed peripheral (precharge control, output drivers) energy per access.
  double e_periph_fixed_pj = 0.35;
  /// CAM match-line + search-line energy per (entry x searched bit).
  double e_cam_pj_per_entry_bit = 0.0034;
  /// H-tree / routing energy per accessed bit per sqrt(subarray count).
  double e_route_pj_per_bit = 0.004;

  // --- leakage (mW) --------------------------------------------------------
  /// Cell retention leakage per bit, LSTP cells.
  double leak_lstp_nw_per_bit = 20.0;
  /// Cell retention leakage per bit, HP cells.
  double leak_hp_nw_per_bit = 90.0;
  /// Peripheral (HP transistors) leakage per bit of row width, per port.
  double leak_periph_nw_per_width_bit = 800.0;

  // --- porting ------------------------------------------------------------
  /// Dynamic energy multiplier per port beyond the first (extra bitline
  /// pairs and wordlines lengthen every wire).
  double dyn_per_extra_port = 0.36;
  /// Leakage/area multiplier per port beyond the first. Calibrated so one
  /// extra read port on the L1 arrays costs ≈ +80 % leakage (paper VI-C).
  double leak_per_extra_port = 0.80;
  /// Cell-array dynamic penalty of multi-ported cells (larger cells).
  double area_per_extra_port = 0.85;

  /// Maximum rows per subarray before the model splits the mat (CACTI-style
  /// partitioning caps bitline length).
  std::uint32_t max_rows_per_subarray = 128;
};

/// Returns the default 32 nm technology used throughout the evaluation.
[[nodiscard]] inline TechnologyParams tech32nm() { return TechnologyParams{}; }

}  // namespace malec::energy
