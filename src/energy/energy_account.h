// Event-based energy accounting.
//
// Mirrors the paper's methodology (Sec. VI-A): the timing simulator produces
// access statistics; those are combined with per-access energies from the
// mini-CACTI array model plus per-structure leakage powers integrated over
// the run's wall-clock (cycles / clock).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.h"
#include "common/types.h"

namespace malec::energy {

/// Accumulates (event -> count) and (structure -> leakage) and produces an
/// energy report. Event names are conventionally "structure.operation", e.g.
/// "l1.tag_read", "utlb.search", "wt.write".
class EnergyAccount {
 public:
  /// Register an event type with its per-occurrence energy. Re-defining an
  /// event overwrites its energy (used when sweeping technologies).
  void defineEvent(const std::string& name, double pj_per_event);

  /// Register a structure's static leakage power.
  void defineLeakage(const std::string& structure, double mw);

  /// Record `n` occurrences of `name`. The event must have been defined.
  void count(const std::string& name, std::uint64_t n = 1);

  [[nodiscard]] std::uint64_t eventCount(const std::string& name) const;
  [[nodiscard]] double eventEnergyPj(const std::string& name) const;
  [[nodiscard]] bool hasEvent(const std::string& name) const;

  /// Total dynamic energy in pJ.
  [[nodiscard]] double dynamicPj() const;

  /// Total leakage energy in pJ over `cycles` at `clock_ghz`.
  [[nodiscard]] double leakagePj(Cycle cycles, double clock_ghz) const;

  /// Total (dynamic + leakage) energy in pJ.
  [[nodiscard]] double totalPj(Cycle cycles, double clock_ghz) const;

  /// Total leakage power in mW.
  [[nodiscard]] double leakageMw() const;

  /// Dynamic energy contributed by events whose name starts with `prefix`.
  [[nodiscard]] double dynamicPjFor(const std::string& prefix) const;

  /// Leakage power of structures whose name starts with `prefix`.
  [[nodiscard]] double leakageMwFor(const std::string& prefix) const;

  /// Flatten into a StatSet: per-event counts and energies, per-structure
  /// leakage, dynamic/leakage/total rollups.
  [[nodiscard]] StatSet report(Cycle cycles, double clock_ghz) const;

  /// Reset counts (keeps event/leakage definitions).
  void clearCounts();

 private:
  struct Event {
    double pj = 0.0;
    std::uint64_t count = 0;
  };
  std::map<std::string, Event> events_;
  std::map<std::string, double> leakage_mw_;
};

}  // namespace malec::energy
