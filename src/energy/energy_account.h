// Event-based energy accounting.
//
// Mirrors the paper's methodology (Sec. VI-A): the timing simulator produces
// access statistics; those are combined with per-access energies from the
// mini-CACTI array model plus per-structure leakage powers integrated over
// the run's wall-clock (cycles / clock).
//
// Hot path = integer ids, edge = strings: every simulated access charges one
// or more events per cycle, so counting must not touch strings or tree-based
// containers. defineEvent()/resolveEvent() hand out dense EventId handles;
// counts live in a flat vector indexed by id, and count(EventId) is a
// bounds-checked array increment. The string-keyed API survives as a
// resolve-once wrapper for definition, tests and reporting.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/types.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::energy {

/// Accumulates (event -> count) and (structure -> leakage) and produces an
/// energy report. Event names are conventionally "structure.operation", e.g.
/// "l1.tag_read", "utlb.search", "wt.write".
class EnergyAccount {
 public:
  /// Dense handle for one event type; valid for the account's lifetime.
  using EventId = std::uint32_t;

  /// Register an event type with its per-occurrence energy and return its
  /// handle. Re-defining an event overwrites its energy but keeps its id and
  /// count (used when sweeping technologies).
  EventId defineEvent(const std::string& name, double pj_per_event);

  /// Resolve a name to its handle for construction-time caching, defining
  /// the event with 0 pJ if it does not exist yet. Components call this once
  /// in their constructors; the energy tables (defineEnergies) may attach
  /// the real per-event energies before or after.
  EventId resolveEvent(const std::string& name);

  /// Register a structure's static leakage power.
  void defineLeakage(const std::string& structure, double mw);

  /// Record `n` occurrences of event `id` — the per-access hot path.
  /// While the stat gate is closed (warmup replay of a sampled run) the
  /// increment is dropped; `counting_` is a 0/1 multiplier so the hot path
  /// stays branch-free.
  void count(EventId id, std::uint64_t n = 1) {
    MALEC_CHECK(id < events_.size());
    events_[id].count += n * counting_;
  }

  /// Stat gate (see StatGate below): false = drop all count() increments.
  /// Definitions, ids and leakage registration are unaffected — only the
  /// dynamic-event counting is gated.
  void setCounting(bool on) { counting_ = on ? 1 : 0; }
  [[nodiscard]] bool counting() const { return counting_ != 0; }

  /// Record `n` occurrences of `name`. The event must have been defined.
  /// Reporting-edge convenience; resolves through the name index per call.
  void count(const std::string& name, std::uint64_t n = 1);

  [[nodiscard]] std::uint64_t eventCount(const std::string& name) const;
  [[nodiscard]] double eventEnergyPj(const std::string& name) const;
  [[nodiscard]] bool hasEvent(const std::string& name) const;

  [[nodiscard]] std::uint64_t eventCount(EventId id) const {
    MALEC_CHECK(id < events_.size());
    return events_[id].count;
  }
  [[nodiscard]] double eventEnergyPj(EventId id) const {
    MALEC_CHECK(id < events_.size());
    return events_[id].pj;
  }
  /// Number of defined events (== one past the largest valid EventId).
  [[nodiscard]] std::size_t eventTypes() const { return events_.size(); }

  /// Total dynamic energy in pJ.
  [[nodiscard]] double dynamicPj() const;

  /// Total leakage energy in pJ over `cycles` at `clock_ghz`.
  [[nodiscard]] double leakagePj(Cycle cycles, double clock_ghz) const;

  /// Total (dynamic + leakage) energy in pJ.
  [[nodiscard]] double totalPj(Cycle cycles, double clock_ghz) const;

  /// Total leakage power in mW.
  [[nodiscard]] double leakageMw() const;

  /// Dynamic energy contributed by events whose name starts with `prefix`.
  [[nodiscard]] double dynamicPjFor(const std::string& prefix) const;

  /// Leakage power of structures whose name starts with `prefix`.
  [[nodiscard]] double leakageMwFor(const std::string& prefix) const;

  /// Flatten into a StatSet: per-event counts and energies, per-structure
  /// leakage, dynamic/leakage/total rollups.
  [[nodiscard]] StatSet report(Cycle cycles, double clock_ghz) const;

  /// Reset counts (keeps event/leakage definitions and ids).
  void clearCounts();

  /// Checkpoint/restore of the dynamic counters and gate state. The event
  /// inventory itself is NOT stored — it is reconstructed by running the
  /// same defineEnergies/constructor sequence — but a hash of the (name,
  /// id) mapping is, so a checkpoint restored into an account with a
  /// different event space aborts instead of mis-crediting counts.
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct Event {
    double pj = 0.0;
    std::uint64_t count = 0;
  };
  /// Flat storage indexed by EventId — the only state the hot path touches.
  std::vector<Event> events_;
  /// 0/1 stat-gate multiplier applied by count(EventId, n).
  std::uint64_t counting_ = 1;
  /// Name -> id, ordered so that reports and prefix rollups iterate in the
  /// same (sorted) order as the original map-based implementation.
  std::map<std::string, EventId> index_;
  /// Definitions, not run state: reconstructed by re-running the same
  /// defineEnergies sequence; the event-space hash guards mismatches.
  std::map<std::string, double> leakage_mw_;  // lint:no-state(definitions; guarded by event-space hash)
};

/// RAII stat gate for warmup-aware sampled replay: closes the account's
/// gate on construction (warmup accesses prime the caches/TLB/WDU without
/// charging energy) and restores the PRIOR gate state via open() at the
/// measurement boundary or, failing that, on destruction — a gate must
/// never outlive the scope that closed it, or every later run on the
/// account would silently count nothing. Restoring (not force-enabling)
/// keeps nested gates composable: an inner gate inside an already-gated
/// region must not un-gate the outer scope early.
class StatGate {
 public:
  explicit StatGate(EnergyAccount& ea) : ea_(ea), prev_(ea.counting()) {
    ea_.setCounting(false);
  }
  ~StatGate() { ea_.setCounting(prev_); }
  StatGate(const StatGate&) = delete;
  StatGate& operator=(const StatGate&) = delete;

  /// Open the gate: warmup is over, counting resumes (to the state it had
  /// before this gate closed it).
  void open() { ea_.setCounting(prev_); }

 private:
  EnergyAccount& ea_;
  bool prev_;
};

}  // namespace malec::energy
