#include "energy/energy_account.h"

#include "ckpt/state_io.h"
#include "common/binio.h"

namespace malec::energy {

namespace {

/// Abort with a message that owns the event name (a raw c_str() of a caller
/// temporary must not be handed to the failure path).
[[noreturn]] void unknownEventFailure(const std::string& name) {
  const std::string msg = "unknown energy event '" + name + "'";
  detail::checkFailed("hasEvent(name)", __FILE__, __LINE__, msg.c_str());
}

}  // namespace

EnergyAccount::EventId EnergyAccount::defineEvent(const std::string& name,
                                                  double pj_per_event) {
  MALEC_CHECK_MSG(pj_per_event >= 0.0, "event energy must be non-negative");
  const EventId id = resolveEvent(name);
  events_[id].pj = pj_per_event;
  return id;
}

EnergyAccount::EventId EnergyAccount::resolveEvent(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const EventId id = static_cast<EventId>(events_.size());
  events_.push_back(Event{});
  index_.emplace(name, id);
  return id;
}

void EnergyAccount::defineLeakage(const std::string& structure, double mw) {
  MALEC_CHECK_MSG(mw >= 0.0, "leakage must be non-negative");
  leakage_mw_[structure] = mw;
}

void EnergyAccount::count(const std::string& name, std::uint64_t n) {
  const auto it = index_.find(name);
  if (it == index_.end()) unknownEventFailure(name);
  // Honour the stat gate like the EventId path — the two APIs must never
  // diverge on what gets counted.
  events_[it->second].count += n * counting_;
}

std::uint64_t EnergyAccount::eventCount(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? 0 : events_[it->second].count;
}

double EnergyAccount::eventEnergyPj(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? 0.0 : events_[it->second].pj;
}

bool EnergyAccount::hasEvent(const std::string& name) const {
  return index_.count(name) != 0;
}

double EnergyAccount::dynamicPj() const {
  // Sum in name order (not id order) so the value is bit-identical no matter
  // in which order components resolved their ids.
  double sum = 0.0;
  for (const auto& [name, id] : index_) {
    const Event& ev = events_[id];
    sum += ev.pj * static_cast<double>(ev.count);
  }
  return sum;
}

double EnergyAccount::leakageMw() const {
  double sum = 0.0;
  for (const auto& [name, mw] : leakage_mw_) sum += mw;
  return sum;
}

double EnergyAccount::leakagePj(Cycle cycles, double clock_ghz) const {
  MALEC_CHECK(clock_ghz > 0.0);
  // mW * ns = pJ; one cycle at f GHz lasts 1/f ns.
  const double ns = static_cast<double>(cycles) / clock_ghz;
  return leakageMw() * ns;
}

double EnergyAccount::totalPj(Cycle cycles, double clock_ghz) const {
  return dynamicPj() + leakagePj(cycles, clock_ghz);
}

double EnergyAccount::dynamicPjFor(const std::string& prefix) const {
  double sum = 0.0;
  for (const auto& [name, id] : index_)
    if (name.rfind(prefix, 0) == 0) {
      const Event& ev = events_[id];
      sum += ev.pj * static_cast<double>(ev.count);
    }
  return sum;
}

double EnergyAccount::leakageMwFor(const std::string& prefix) const {
  double sum = 0.0;
  for (const auto& [name, mw] : leakage_mw_)
    if (name.rfind(prefix, 0) == 0) sum += mw;
  return sum;
}

StatSet EnergyAccount::report(Cycle cycles, double clock_ghz) const {
  StatSet s;
  for (const auto& [name, id] : index_) {
    const Event& ev = events_[id];
    s.set("count." + name, static_cast<double>(ev.count));
    s.set("dyn_pj." + name, ev.pj * static_cast<double>(ev.count));
  }
  for (const auto& [name, mw] : leakage_mw_) s.set("leak_mw." + name, mw);
  s.set("total.dynamic_pj", dynamicPj());
  s.set("total.leakage_pj", leakagePj(cycles, clock_ghz));
  s.set("total.energy_pj", totalPj(cycles, clock_ghz));
  s.set("total.leakage_mw", leakageMw());
  return s;
}

void EnergyAccount::clearCounts() {
  for (Event& ev : events_) ev.count = 0;
}

namespace {

/// FNV-1a over the (sorted) name -> id mapping: a cheap fingerprint of the
/// event space a checkpoint's counters index into.
std::uint64_t eventSpaceHash(const std::map<std::string, EnergyAccount::EventId>& index) {
  std::uint64_t h = binio::kFnvOffset;
  for (const auto& [name, id] : index) {
    h = binio::fnv1a(h, reinterpret_cast<const std::uint8_t*>(name.data()),
                     name.size());
    std::uint8_t idb[4];
    binio::put32(idb, id);
    h = binio::fnv1a(h, idb, sizeof idb);
  }
  return h;
}

}  // namespace

void EnergyAccount::saveState(ckpt::StateWriter& w) const {
  w.u64(eventSpaceHash(index_));
  w.u8(counting_ != 0 ? 1 : 0);
  w.u64(events_.size());
  for (const Event& ev : events_) w.u64(ev.count);
}

void EnergyAccount::loadState(ckpt::StateReader& r) {
  MALEC_CHECK_MSG(r.u64() == eventSpaceHash(index_),
                  "checkpoint was taken under a different energy-event "
                  "inventory — config mismatch");
  counting_ = r.u8() != 0 ? 1 : 0;
  MALEC_CHECK_MSG(r.u64() == events_.size(),
                  "checkpoint event-counter count disagrees with this "
                  "account");
  for (Event& ev : events_) ev.count = r.u64();
}

}  // namespace malec::energy
