#include "energy/energy_account.h"

#include "common/check.h"

namespace malec::energy {

void EnergyAccount::defineEvent(const std::string& name, double pj_per_event) {
  MALEC_CHECK_MSG(pj_per_event >= 0.0, "event energy must be non-negative");
  events_[name].pj = pj_per_event;
}

void EnergyAccount::defineLeakage(const std::string& structure, double mw) {
  MALEC_CHECK_MSG(mw >= 0.0, "leakage must be non-negative");
  leakage_mw_[structure] = mw;
}

void EnergyAccount::count(const std::string& name, std::uint64_t n) {
  auto it = events_.find(name);
  MALEC_CHECK_MSG(it != events_.end(), name.c_str());
  it->second.count += n;
}

std::uint64_t EnergyAccount::eventCount(const std::string& name) const {
  auto it = events_.find(name);
  return it == events_.end() ? 0 : it->second.count;
}

double EnergyAccount::eventEnergyPj(const std::string& name) const {
  auto it = events_.find(name);
  return it == events_.end() ? 0.0 : it->second.pj;
}

bool EnergyAccount::hasEvent(const std::string& name) const {
  return events_.count(name) != 0;
}

double EnergyAccount::dynamicPj() const {
  double sum = 0.0;
  for (const auto& [name, ev] : events_)
    sum += ev.pj * static_cast<double>(ev.count);
  return sum;
}

double EnergyAccount::leakageMw() const {
  double sum = 0.0;
  for (const auto& [name, mw] : leakage_mw_) sum += mw;
  return sum;
}

double EnergyAccount::leakagePj(Cycle cycles, double clock_ghz) const {
  MALEC_CHECK(clock_ghz > 0.0);
  // mW * ns = pJ; one cycle at f GHz lasts 1/f ns.
  const double ns = static_cast<double>(cycles) / clock_ghz;
  return leakageMw() * ns;
}

double EnergyAccount::totalPj(Cycle cycles, double clock_ghz) const {
  return dynamicPj() + leakagePj(cycles, clock_ghz);
}

double EnergyAccount::dynamicPjFor(const std::string& prefix) const {
  double sum = 0.0;
  for (const auto& [name, ev] : events_)
    if (name.rfind(prefix, 0) == 0)
      sum += ev.pj * static_cast<double>(ev.count);
  return sum;
}

double EnergyAccount::leakageMwFor(const std::string& prefix) const {
  double sum = 0.0;
  for (const auto& [name, mw] : leakage_mw_)
    if (name.rfind(prefix, 0) == 0) sum += mw;
  return sum;
}

StatSet EnergyAccount::report(Cycle cycles, double clock_ghz) const {
  StatSet s;
  for (const auto& [name, ev] : events_) {
    s.set("count." + name, static_cast<double>(ev.count));
    s.set("dyn_pj." + name, ev.pj * static_cast<double>(ev.count));
  }
  for (const auto& [name, mw] : leakage_mw_) s.set("leak_mw." + name, mw);
  s.set("total.dynamic_pj", dynamicPj());
  s.set("total.leakage_pj", leakagePj(cycles, clock_ghz));
  s.set("total.energy_pj", totalPj(cycles, clock_ghz));
  s.set("total.leakage_mw", leakageMw());
  return s;
}

void EnergyAccount::clearCounts() {
  for (auto& [name, ev] : events_) ev.count = 0;
}

}  // namespace malec::energy
