// The 38 benchmark workload models used throughout the evaluation:
// 12 SPEC CPU2000 integer, 14 SPEC CPU2000 floating-point and 12
// MediaBench2 kernels, matching the x-axes of the paper's Fig. 4.
//
// Per-benchmark parameters are calibrated from the statistics the paper
// itself documents (see workload_profile.h and DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "trace/workload_profile.h"

namespace malec::trace {

/// All benchmark profiles in the paper's plotting order.
[[nodiscard]] const std::vector<WorkloadProfile>& allWorkloads();

/// Profiles belonging to one suite ("SPEC-INT", "SPEC-FP", "MediaBench2").
[[nodiscard]] std::vector<WorkloadProfile> workloadsForSuite(
    const std::string& suite);

/// Look up a single profile by benchmark name; aborts if unknown.
[[nodiscard]] const WorkloadProfile& workloadByName(const std::string& name);

/// True if a profile with this name exists.
[[nodiscard]] bool hasWorkload(const std::string& name);

/// The three suite names in plotting order.
[[nodiscard]] const std::vector<std::string>& suiteNames();

}  // namespace malec::trace
