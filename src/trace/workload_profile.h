// Statistical workload description driving the synthetic trace generator.
//
// The paper evaluates Simpoint phases of SPEC CPU2000 and MediaBench2; we
// have no access to those binaries or traces, so each benchmark is replaced
// by a profile capturing the address-stream and ILP statistics the paper
// reports (Sec. III and VI) — see DESIGN.md for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>

namespace malec::trace {

/// NOTE: every statistical field below feeds sim::runBindingHash()
/// (checkpoint binding, src/sim/experiment.cpp) — a new generator
/// parameter MUST be added to hashProfile() there too, or checkpoints of
/// different workloads could silently resume each other.
struct WorkloadProfile {
  std::string name;
  std::string suite;  ///< "SPEC-INT", "SPEC-FP", "MediaBench2" or "trace"

  /// Non-empty = replay this captured trace file instead of synthesising a
  /// stream from the statistics below (which are then ignored). Trace-backed
  /// profiles are registered under "trace:<stem>" names — see sim/registry.h.
  std::string trace_path;
  [[nodiscard]] bool isTrace() const { return !trace_path.empty(); }

  /// Non-empty = phase-sampled replay: instead of streaming the whole
  /// capture, runOne simulates only the intervals this `.mplan` file (see
  /// phase/sample_plan.h) selects — each primed by a warmup prefix whose
  /// stats and energy are gated off — and reports the weighted phase
  /// combination. Only meaningful together with trace_path; the plan is
  /// validated against the trace's record count and checksum at run time.
  std::string sample_plan_path;
  [[nodiscard]] bool isSampled() const { return !sample_plan_path.empty(); }

  // --- instruction mix -----------------------------------------------------
  /// Fraction of instructions that reference memory (paper avg 40 %;
  /// SPEC-INT 45 %, SPEC-FP 40 %, MediaBench2 37 %).
  double mem_fraction = 0.40;
  /// Fraction of memory references that are loads (paper: 2:1 ld/st).
  double load_share = 0.667;

  // --- spatial locality ----------------------------------------------------
  /// Number of interleaved access streams (arrays/structures walked
  /// concurrently). More streams -> more "intermediate accesses to a
  /// different page" in the Fig. 1 sense.
  std::uint32_t streams = 2;
  /// Probability a memory access hops to a different stream.
  double p_switch_stream = 0.25;
  /// Probability the stream stays within its current page on an access.
  double p_same_page = 0.82;
  /// Within a page: probability of a sequential/strided step (vs a random
  /// offset within the page).
  double p_sequential = 0.70;
  /// Stride for sequential steps, bytes.
  std::uint32_t stride_bytes = 8;
  /// Probability a load re-touches the previous load's cache line (drives
  /// MALEC's load-merging opportunity; paper: 46 % same-line follow rate).
  double p_same_line = 0.35;

  // --- footprint / miss behaviour -------------------------------------
  /// Working-set size in pages. Small -> everything L1-resident; large ->
  /// capacity misses (mcf/art style).
  std::uint32_t ws_pages = 512;
  /// Fraction of page picks served from the hot subset.
  double hot_fraction = 0.85;
  /// Hot-subset size in pages.
  std::uint32_t hot_pages = 48;
  /// When leaving a page: probability of advancing to the *next* page
  /// (streaming walk) instead of picking a random working-set page.
  double p_stream_advance = 0.35;

  // --- ILP structure ---------------------------------------------------
  /// Probability an instruction's input depends on a recent load.
  double dep_on_load = 0.30;
  /// Cap for the (geometric) dependency distance draw.
  std::uint32_t dep_distance_cap = 12;
  /// Probability a memory access' *address* depends on a recent load
  /// (pointer chasing; serialises address computation).
  double addr_dep_on_load = 0.05;
  /// Probability an instruction (that did not draw a load dependency)
  /// depends on a very recent instruction — ALU dependency chains that
  /// bound ILP independently of the memory system.
  double dep_on_prev = 0.40;

  // --- stores ------------------------------------------------------
  /// Stores show higher page locality than loads (paper Sec. III).
  double store_p_same_page = 0.90;
  /// Probability a store lands adjacent to the previous store (drives
  /// Merge Buffer coalescing).
  double store_p_adjacent = 0.60;
  /// Probability a store targets the page of the most recent load
  /// (read-modify-write idiom). Keeps stores from breaking load page
  /// chains in the Fig. 1 sense.
  double store_near_load = 0.40;

  /// Typical access size in bytes (4/8 scalar, 16 for media kernels).
  std::uint32_t access_size = 8;
};

}  // namespace malec::trace
