// Binary trace file I/O.
//
// Lets users capture a synthetic stream once and replay it (or bring their
// own traces from a real simulator) — the on-disk format is a fixed-width
// little-endian record stream with a small header.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.h"

namespace malec::trace {

/// Magic bytes + version identifying a MALEC trace file.
inline constexpr std::uint32_t kTraceMagic = 0x4D414C43;  // "MALC"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Writes records to a trace file. Throws nothing; reports failures via
/// ok(). The file is finalised (header record count patched) on close().
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const InstrRecord& r);
  /// Flush, patch the header and close. Returns false on I/O failure.
  bool close();
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::uint64_t written() const { return count_; }

 private:
  std::FILE* f_ = nullptr;
  bool ok_ = false;
  std::uint64_t count_ = 0;
};

/// Streams records back from a trace file; implements TraceSource.
class TraceReader final : public TraceSource {
 public:
  explicit TraceReader(const std::string& path);
  ~TraceReader() override;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  bool next(InstrRecord& out) override;
  void reset() override;
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::FILE* f_ = nullptr;
  bool ok_ = false;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
};

/// In-memory trace source for tests and small experiments.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<InstrRecord> records)
      : records_(std::move(records)) {}

  bool next(InstrRecord& out) override {
    if (pos_ >= records_.size()) return false;
    out = records_[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }

 private:
  std::vector<InstrRecord> records_;
  std::size_t pos_ = 0;
};

/// Convenience: drain `src` into a vector (use only for bounded sources).
[[nodiscard]] std::vector<InstrRecord> drain(TraceSource& src);

}  // namespace malec::trace
