// Binary trace file I/O.
//
// Lets users capture a synthetic stream once and replay it (or bring their
// own traces from a real simulator) — the on-disk format is a fixed-width
// little-endian record stream with a small header. The byte-level format
// specification (v1/v2 header layouts, the 26-byte record, checksum and
// compatibility rules) lives in docs/FILE_FORMATS.md; this header only
// documents the API behaviour.
//
// Both ends move data in multi-record blocks (not one 26-byte stdio call
// per record), and the reader validates the header record count against the
// actual file size at open — a truncated file is a hard error, never a
// silently shorter stream.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/address.h"
#include "trace/record.h"

namespace malec::trace {

/// Magic bytes + version identifying a MALEC trace file.
inline constexpr std::uint32_t kTraceMagic = 0x4D414C43;  // "MALC"
/// Version written by TraceWriter; TraceReader also accepts v1.
inline constexpr std::uint32_t kTraceVersion = 2;
inline constexpr std::uint32_t kTraceVersionV1 = 1;

/// Writes records to a trace file (always the current v2 format). Throws
/// nothing; reports failures via ok()/error(). Records are staged in a
/// block buffer and written in bulk; the file is finalised (header record
/// count + checksum patched) on close().
class TraceWriter {
 public:
  /// `layout` is recorded in the header so a replay can verify it simulates
  /// the address space the trace was captured under.
  explicit TraceWriter(const std::string& path,
                       const AddressLayout& layout = AddressLayout{});
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const InstrRecord& r);
  /// Flush, patch the header and close. Returns false on I/O failure.
  bool close();
  [[nodiscard]] bool ok() const { return ok_; }
  /// Human-readable description of the first failure ("" while ok()).
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint64_t written() const { return count_; }

 private:
  void fail(std::string msg);
  bool flushBlock();

  std::FILE* f_ = nullptr;
  bool ok_ = false;
  std::string error_;
  std::uint64_t count_ = 0;
  std::uint64_t checksum_ = 0;
  std::vector<std::uint8_t> buf_;
};

/// Streams records back from a trace file; implements TraceSource.
///
/// Failures are sticky: once ok() is false (unreadable/truncated/corrupt
/// file, record with an out-of-range kind or size byte, v2 checksum
/// mismatch) next() keeps returning false and reset() will NOT resurrect
/// the stream — callers must check ok() after draining, or a partial trace
/// would silently masquerade as a short one.
class TraceReader final : public TraceSource {
 public:
  explicit TraceReader(const std::string& path);
  ~TraceReader() override;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  bool next(InstrRecord& out) override;
  void reset() override;
  /// Verify the v2 record checksum even when the stream was NOT drained to
  /// the end (a capped replay): hashes the unread remainder of the file and
  /// compares. Leaves the reader at end-of-stream (reset() to replay); a
  /// mismatch is a sticky failure like any other. No-op for v1 files and
  /// fully-drained streams (next() already verified those). Returns ok().
  bool finishChecksum();
  /// Records served so far — the stream position a checkpoint stores.
  [[nodiscard]] std::uint64_t consumed() const { return read_; }
  /// Running FNV-1a over the served records (v2) — stored alongside the
  /// position so a restored reader can still verify the whole file.
  [[nodiscard]] std::uint64_t runningChecksum() const {
    return checksum_run_;
  }
  /// Reposition to record `n` with the running checksum as of that point
  /// (both from a checkpoint of this exact file). The caller is
  /// responsible for the binding check (record count + header checksum);
  /// an out-of-range position is a hard error. Returns ok().
  bool seekTo(std::uint64_t n, std::uint64_t checksum_run);
  [[nodiscard]] bool ok() const { return ok_; }
  /// Human-readable description of the first failure ("" while ok()).
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// The header's record checksum (0 for v1 files, which carry none).
  [[nodiscard]] std::uint64_t expectedChecksum() const {
    return checksum_expect_;
  }
  /// Format version of the open file (1 or 2; 0 if the open failed).
  [[nodiscard]] std::uint32_t version() const { return version_; }
  /// True for v2 files, whose header records the capturing AddressLayout.
  [[nodiscard]] bool hasLayout() const { return has_layout_; }
  [[nodiscard]] const AddressLayout::Params& layoutParams() const {
    return layout_params_;
  }

 private:
  void fail(std::string msg);
  bool refill();

  std::FILE* f_ = nullptr;
  bool ok_ = false;
  std::string error_;
  std::string path_;
  std::uint32_t version_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
  long header_bytes_ = 0;
  bool has_layout_ = false;
  AddressLayout::Params layout_params_{};
  std::uint64_t checksum_expect_ = 0;
  std::uint64_t checksum_run_ = 0;
  std::vector<std::uint8_t> buf_;
  std::size_t buf_pos_ = 0;
};

/// In-memory trace source for tests and small experiments.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<InstrRecord> records)
      : records_(std::move(records)) {}

  bool next(InstrRecord& out) override {
    if (pos_ >= records_.size()) return false;
    out = records_[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }

 private:
  std::vector<InstrRecord> records_;
  std::size_t pos_ = 0;
};

/// Caps an owned source at `limit` records — how an instruction budget
/// (MALEC_INSTR / --instr) is applied to a replayed trace.
class LimitedTraceSource final : public TraceSource {
 public:
  LimitedTraceSource(std::unique_ptr<TraceSource> inner, std::uint64_t limit)
      : inner_(std::move(inner)), limit_(limit) {}

  bool next(InstrRecord& out) override {
    if (served_ >= limit_) return false;
    if (!inner_->next(out)) return false;
    ++served_;
    return true;
  }
  void reset() override {
    inner_->reset();
    served_ = 0;
  }

  /// Checkpoint support: records served through the cap so far. After the
  /// wrapped reader is repositioned (TraceReader::seekTo), setServed()
  /// realigns the cap with it.
  [[nodiscard]] std::uint64_t served() const { return served_; }
  void setServed(std::uint64_t n) { served_ = n; }

 private:
  std::unique_ptr<TraceSource> inner_;
  std::uint64_t limit_;
  std::uint64_t served_ = 0;
};

/// Convenience: drain `src` into a vector (use only for bounded sources).
[[nodiscard]] std::vector<InstrRecord> drain(TraceSource& src);

}  // namespace malec::trace
