#include "trace/trace_io.h"

#include <cstring>

#include "common/check.h"

namespace malec::trace {

namespace {

/// Fixed-width on-disk record (little-endian, packed manually for
/// portability — no struct punning).
constexpr std::size_t kRecordBytes = 8 + 8 + 1 + 1 + 4 + 4;

void put64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void put32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint64_t get64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}
std::uint32_t get32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

void encode(const InstrRecord& r, std::uint8_t* buf) {
  put64(buf + 0, r.seq);
  put64(buf + 8, r.vaddr);
  buf[16] = static_cast<std::uint8_t>(r.kind);
  buf[17] = r.size;
  put32(buf + 18, r.dep_distance);
  put32(buf + 22, r.addr_dep_distance);
}

void decode(const std::uint8_t* buf, InstrRecord& r) {
  r.seq = get64(buf + 0);
  r.vaddr = get64(buf + 8);
  r.kind = static_cast<InstrKind>(buf[16]);
  r.size = buf[17];
  r.dep_distance = get32(buf + 18);
  r.addr_dep_distance = get32(buf + 22);
}

constexpr long kHeaderBytes = 16;  // magic, version, count

}  // namespace

TraceWriter::TraceWriter(const std::string& path) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) return;
  std::uint8_t hdr[kHeaderBytes] = {};
  put32(hdr + 0, kTraceMagic);
  put32(hdr + 4, kTraceVersion);
  put64(hdr + 8, 0);  // record count patched on close
  ok_ = std::fwrite(hdr, 1, sizeof hdr, f_) == sizeof hdr;
}

TraceWriter::~TraceWriter() {
  if (f_ != nullptr) close();
}

void TraceWriter::write(const InstrRecord& r) {
  if (!ok_) return;
  std::uint8_t buf[kRecordBytes];
  encode(r, buf);
  if (std::fwrite(buf, 1, sizeof buf, f_) != sizeof buf) {
    ok_ = false;
    return;
  }
  ++count_;
}

bool TraceWriter::close() {
  if (f_ == nullptr) return ok_;
  if (ok_ && std::fseek(f_, 8, SEEK_SET) == 0) {
    std::uint8_t cnt[8];
    put64(cnt, count_);
    ok_ = std::fwrite(cnt, 1, sizeof cnt, f_) == sizeof cnt;
  }
  std::fclose(f_);
  f_ = nullptr;
  return ok_;
}

TraceReader::TraceReader(const std::string& path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (f_ == nullptr) return;
  std::uint8_t hdr[kHeaderBytes];
  if (std::fread(hdr, 1, sizeof hdr, f_) != sizeof hdr) return;
  if (get32(hdr + 0) != kTraceMagic || get32(hdr + 4) != kTraceVersion) return;
  total_ = get64(hdr + 8);
  ok_ = true;
}

TraceReader::~TraceReader() {
  if (f_ != nullptr) std::fclose(f_);
}

bool TraceReader::next(InstrRecord& out) {
  if (!ok_ || read_ >= total_) return false;
  std::uint8_t buf[kRecordBytes];
  if (std::fread(buf, 1, sizeof buf, f_) != sizeof buf) {
    ok_ = false;
    return false;
  }
  decode(buf, out);
  ++read_;
  return true;
}

void TraceReader::reset() {
  if (f_ == nullptr) return;
  std::fseek(f_, kHeaderBytes, SEEK_SET);
  read_ = 0;
  ok_ = true;
}

std::vector<InstrRecord> drain(TraceSource& src) {
  std::vector<InstrRecord> v;
  InstrRecord r;
  while (src.next(r)) v.push_back(r);
  return v;
}

}  // namespace malec::trace
