#include "trace/trace_io.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>

#include "common/binio.h"
#include "common/check.h"

namespace malec::trace {

using binio::fnv1a;
using binio::get32;
using binio::get64;
using binio::kFnvOffset;
using binio::put32;
using binio::put64;

namespace {

/// Fixed-width on-disk record (little-endian, packed manually for
/// portability — no struct punning).
constexpr std::size_t kRecordBytes = 8 + 8 + 1 + 1 + 4 + 4;

/// Records staged/read per stdio call. 4096 records = ~104 KiB blocks —
/// three orders of magnitude fewer libc calls than one fwrite/fread per
/// 26-byte record.
constexpr std::size_t kBlockRecords = 4096;
constexpr std::size_t kBlockBytes = kBlockRecords * kRecordBytes;

constexpr long kHeaderBytesV1 = 16;  // magic, version, count
constexpr long kHeaderBytesV2 = 52;  // + checksum, AddressLayout params
constexpr long kCountOffset = 8;
constexpr std::size_t kNumLayoutParams = 7;

/// Largest access size accepted for a memory record; the modelled machine
/// never issues accesses wider than two 64-byte lines' worth.
constexpr std::uint32_t kMaxAccessSize = 128;

void encode(const InstrRecord& r, std::uint8_t* buf) {
  put64(buf + 0, r.seq);
  put64(buf + 8, r.vaddr);
  buf[16] = static_cast<std::uint8_t>(r.kind);
  buf[17] = r.size;
  put32(buf + 18, r.dep_distance);
  put32(buf + 22, r.addr_dep_distance);
}

/// Decodes one record; returns false (with a message in `err`) for byte
/// values no valid producer emits — an out-of-range kind would otherwise
/// become an enum that isMem() happily treats as a memory op.
bool decode(const std::uint8_t* buf, InstrRecord& r, std::string& err) {
  r.seq = get64(buf + 0);
  r.vaddr = get64(buf + 8);
  const std::uint8_t kind = buf[16];
  if (kind > static_cast<std::uint8_t>(InstrKind::kStore)) {
    err = "invalid instruction kind byte " + std::to_string(kind);
    return false;
  }
  r.kind = static_cast<InstrKind>(kind);
  r.size = buf[17];
  if (r.isMem() && (r.size == 0 || r.size > kMaxAccessSize)) {
    err = "invalid access size " + std::to_string(r.size) +
          " for a memory record (expect 1.." + std::to_string(kMaxAccessSize) +
          ")";
    return false;
  }
  r.dep_distance = get32(buf + 18);
  r.addr_dep_distance = get32(buf + 22);
  return true;
}

}  // namespace

// --- TraceWriter ------------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, const AddressLayout& layout) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    error_ = "cannot open '" + path + "' for writing";
    return;
  }
  std::uint8_t hdr[kHeaderBytesV2] = {};
  put32(hdr + 0, kTraceMagic);
  put32(hdr + 4, kTraceVersion);
  put64(hdr + 8, 0);   // record count, patched on close
  put64(hdr + 16, 0);  // checksum, patched on close
  const std::uint32_t params[kNumLayoutParams] = {
      layout.addrBits(), layout.pageBytes(),  layout.lineBytes(),
      layout.subBlockBytes(), layout.l1Bytes(), layout.l1Assoc(),
      layout.l1Banks()};
  for (std::size_t i = 0; i < kNumLayoutParams; ++i)
    put32(hdr + 24 + 4 * i, params[i]);
  if (std::fwrite(hdr, 1, sizeof hdr, f_) != sizeof hdr) {
    error_ = "cannot write header of '" + path + "'";
    return;
  }
  checksum_ = kFnvOffset;
  buf_.reserve(kBlockBytes);
  ok_ = true;
}

TraceWriter::~TraceWriter() {
  if (f_ != nullptr) close();
}

void TraceWriter::fail(std::string msg) {
  ok_ = false;
  if (error_.empty()) error_ = std::move(msg);
}

bool TraceWriter::flushBlock() {
  if (buf_.empty()) return true;
  if (std::fwrite(buf_.data(), 1, buf_.size(), f_) != buf_.size()) {
    fail("short write while flushing a record block");
    return false;
  }
  buf_.clear();
  return true;
}

void TraceWriter::write(const InstrRecord& r) {
  if (!ok_) return;
  const std::size_t at = buf_.size();
  buf_.resize(at + kRecordBytes);
  encode(r, buf_.data() + at);
  checksum_ = fnv1a(checksum_, buf_.data() + at, kRecordBytes);
  ++count_;
  if (buf_.size() >= kBlockBytes) flushBlock();
}

bool TraceWriter::close() {
  if (f_ == nullptr) return ok_;
  if (ok_) flushBlock();
  if (ok_) {
    // An unpatched header promises 0 records — the file would fail every
    // later open, so a patch failure must fail close() too.
    if (std::fseek(f_, kCountOffset, SEEK_SET) != 0) {
      fail("cannot seek back to patch the header");
    } else {
      std::uint8_t patch[16];
      put64(patch + 0, count_);
      put64(patch + 8, checksum_);
      if (std::fwrite(patch, 1, sizeof patch, f_) != sizeof patch)
        fail("cannot patch the header record count");
    }
  }
  if (std::fclose(f_) != 0) fail("close failed");
  f_ = nullptr;
  return ok_;
}

// --- TraceReader ------------------------------------------------------------

TraceReader::TraceReader(const std::string& path) : path_(path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (f_ == nullptr) {
    error_ = "cannot open '" + path + "'";
    return;
  }
  std::uint8_t hdr[kHeaderBytesV2];
  if (std::fread(hdr, 1, kHeaderBytesV1, f_) !=
      static_cast<std::size_t>(kHeaderBytesV1)) {
    error_ = "'" + path + "' is too short to hold a trace header";
    return;
  }
  if (get32(hdr + 0) != kTraceMagic) {
    error_ = "'" + path + "' is not a MALEC trace (bad magic)";
    return;
  }
  version_ = get32(hdr + 4);
  if (version_ != kTraceVersionV1 && version_ != kTraceVersion) {
    error_ = "'" + path + "' has unsupported trace version " +
             std::to_string(version_);
    return;
  }
  total_ = get64(hdr + 8);
  header_bytes_ = version_ == kTraceVersionV1 ? kHeaderBytesV1 : kHeaderBytesV2;
  if (version_ == kTraceVersion) {
    if (std::fread(hdr + kHeaderBytesV1, 1, kHeaderBytesV2 - kHeaderBytesV1,
                   f_) !=
        static_cast<std::size_t>(kHeaderBytesV2 - kHeaderBytesV1)) {
      error_ = "'" + path + "' is truncated inside the v2 header";
      return;
    }
    checksum_expect_ = get64(hdr + 16);
    std::uint32_t params[kNumLayoutParams];
    for (std::size_t i = 0; i < kNumLayoutParams; ++i)
      params[i] = get32(hdr + 24 + 4 * i);
    layout_params_.addr_bits = params[0];
    layout_params_.page_bytes = params[1];
    layout_params_.line_bytes = params[2];
    layout_params_.sub_block_bytes = params[3];
    layout_params_.l1_bytes = params[4];
    layout_params_.l1_assoc = params[5];
    layout_params_.l1_banks = params[6];
    has_layout_ = true;
  }

  // A header count that disagrees with the file size means the capture was
  // cut short (or bytes were appended) — fail at open instead of serving a
  // partial stream as if it were complete. 64-bit arithmetic throughout:
  // Simpoint-scale captures dwarf a 32-bit `long` ftell.
  std::error_code ec;
  const std::uintmax_t fs_size = std::filesystem::file_size(path, ec);
  if (ec) {
    error_ = "cannot stat '" + path + "': " + ec.message();
    return;
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(fs_size);
  const std::uint64_t expect =
      static_cast<std::uint64_t>(header_bytes_) +
      total_ * static_cast<std::uint64_t>(kRecordBytes);
  if (file_size != expect) {
    error_ = "'" + path + "' is truncated or corrupt: header promises " +
             std::to_string(total_) + " records (" + std::to_string(expect) +
             " bytes) but the file holds " + std::to_string(file_size) +
             " bytes";
    return;
  }
  if (std::fseek(f_, header_bytes_, SEEK_SET) != 0) {
    error_ = "cannot seek in '" + path + "'";
    return;
  }
  checksum_run_ = kFnvOffset;
  ok_ = true;
}

TraceReader::~TraceReader() {
  if (f_ != nullptr) std::fclose(f_);
}

void TraceReader::fail(std::string msg) {
  ok_ = false;
  if (error_.empty()) error_ = "'" + path_ + "': " + std::move(msg);
}

bool TraceReader::refill() {
  const std::uint64_t remaining = total_ - read_;
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(remaining * kRecordBytes, kBlockBytes));
  buf_.resize(want);
  buf_pos_ = 0;
  if (std::fread(buf_.data(), 1, want, f_) != want) {
    // Unreachable for a file that passed the open-time size check unless it
    // shrank underneath us — still a hard error, not a quiet short stream.
    fail("short read mid-stream (file changed after open?)");
    return false;
  }
  return true;
}

bool TraceReader::next(InstrRecord& out) {
  if (!ok_ || read_ >= total_) return false;
  if (buf_pos_ >= buf_.size() && !refill()) return false;
  const std::uint8_t* rec = buf_.data() + buf_pos_;
  std::string err;
  if (!decode(rec, out, err)) {
    fail(err + " at record " + std::to_string(read_));
    return false;
  }
  if (version_ == kTraceVersion)
    checksum_run_ = fnv1a(checksum_run_, rec, kRecordBytes);
  buf_pos_ += kRecordBytes;
  ++read_;
  if (version_ == kTraceVersion && read_ == total_ &&
      checksum_run_ != checksum_expect_) {
    fail("record checksum mismatch — the payload is corrupt");
    return false;
  }
  return true;
}

bool TraceReader::finishChecksum() {
  if (!ok_ || version_ != kTraceVersion || read_ >= total_) return ok_;
  // Bytes already fetched into the block buffer but not yet served.
  checksum_run_ = fnv1a(checksum_run_, buf_.data() + buf_pos_,
                        buf_.size() - buf_pos_);
  std::uint64_t hashed =
      read_ + (buf_.size() - buf_pos_) / kRecordBytes;
  buf_pos_ = buf_.size();
  // Stream the rest of the payload block-wise, checksum only (no decode:
  // records beyond the cap were never simulated; the checksum is what
  // guards their — and by mixing, the whole file's — integrity).
  std::vector<std::uint8_t> block(kBlockBytes);
  while (hashed < total_) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>((total_ - hashed) * kRecordBytes,
                                kBlockBytes));
    if (std::fread(block.data(), 1, want, f_) != want) {
      fail("short read while verifying the record checksum");
      return false;
    }
    checksum_run_ = fnv1a(checksum_run_, block.data(), want);
    hashed += want / kRecordBytes;
  }
  read_ = total_;  // at end-of-stream now; next() returns false, reset() replays
  if (checksum_run_ != checksum_expect_) {
    fail("record checksum mismatch — the payload is corrupt");
    return false;
  }
  return ok_;
}

bool TraceReader::seekTo(std::uint64_t n, std::uint64_t checksum_run) {
  if (!ok_ || f_ == nullptr) return false;
  if (n > total_) {
    fail("checkpoint position " + std::to_string(n) + " exceeds the " +
         std::to_string(total_) + "-record stream");
    return false;
  }
  // u64 math first, then a range check before the narrowing to fseek's
  // long — a Simpoint-scale offset must not wrap on 32-bit-long platforms.
  const std::uint64_t off = static_cast<std::uint64_t>(header_bytes_) +
                            n * static_cast<std::uint64_t>(kRecordBytes);
  if (off > static_cast<std::uint64_t>(std::numeric_limits<long>::max())) {
    fail("checkpointed position is beyond fseek range on this platform");
    return false;
  }
  if (std::fseek(f_, static_cast<long>(off), SEEK_SET) != 0) {
    fail("cannot seek to the checkpointed position");
    return false;
  }
  read_ = n;
  buf_.clear();
  buf_pos_ = 0;
  checksum_run_ = checksum_run;
  return true;
}

void TraceReader::reset() {
  // Sticky failure: rewinding must not resurrect a reader that reported an
  // I/O or corruption error — a replay loop would re-serve bad data.
  if (!ok_ || f_ == nullptr) return;
  if (std::fseek(f_, header_bytes_, SEEK_SET) != 0) {
    fail("cannot rewind");
    return;
  }
  read_ = 0;
  buf_.clear();
  buf_pos_ = 0;
  checksum_run_ = kFnvOffset;
}

std::vector<InstrRecord> drain(TraceSource& src) {
  std::vector<InstrRecord> v;
  InstrRecord r;
  while (src.next(r)) v.push_back(r);
  return v;
}

}  // namespace malec::trace
