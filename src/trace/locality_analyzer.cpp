#include "trace/locality_analyzer.h"

#include "common/check.h"

namespace malec::trace {

LocalityAnalyzer::LocalityAnalyzer(AddressLayout layout,
                                   std::vector<std::uint32_t> allowances)
    : layout_(layout), allowances_(std::move(allowances)) {}

void LocalityAnalyzer::observe(const InstrRecord& r) {
  if (!r.isMem()) return;
  Access a;
  a.page = layout_.pageId(r.vaddr);
  a.line = layout_.lineAddr(r.vaddr);
  a.is_load = r.isLoad();
  if (a.is_load) load_pages_.push_back(static_cast<std::uint32_t>(accesses_.size()));
  accesses_.push_back(a);
}

PageGroupStats LocalityAnalyzer::analyzeAllowance(std::uint32_t x) const {
  PageGroupStats st;
  st.allowed_intermediates = x;
  st.total_loads = load_pages_.size();
  if (load_pages_.empty()) return st;

  // Walk loads in order, forming maximal chains: a chain continues when the
  // next load to the same page appears with at most `x` intervening accesses
  // to *different* pages (paper Fig. 1 definition). Accesses to the same
  // page do not count against the allowance.
  std::uint64_t g1 = 0, g2 = 0, g34 = 0, g58 = 0, g9 = 0, followed = 0;

  std::size_t li = 0;
  while (li < load_pages_.size()) {
    const PageId page = accesses_[load_pages_[li]].page;
    std::uint64_t group = 1;
    std::size_t cur = li;
    while (true) {
      // Scan forward from the access position of load `cur` looking for the
      // next load to `page` within the allowance.
      std::uint32_t strangers = 0;
      std::size_t pos = load_pages_[cur] + 1;
      bool chained = false;
      while (pos < accesses_.size() && strangers <= x) {
        const Access& a = accesses_[pos];
        if (a.page == page) {
          if (a.is_load) {
            chained = true;
            break;
          }
        } else {
          ++strangers;
        }
        ++pos;
      }
      if (!chained) break;
      // Find the load index of the chained access.
      std::size_t nli = cur + 1;
      while (nli < load_pages_.size() && load_pages_[nli] != pos) ++nli;
      if (nli >= load_pages_.size()) break;
      ++group;
      cur = nli;
      if (cur != li + group - 1) {
        // Loads between li and cur that belong to other pages stay in the
        // stream; chains may interleave. For simplicity each load belongs to
        // exactly one chain: we only chain strictly forward from `li`'s run.
      }
    }
    // Attribute the whole group's loads to the bucket.
    if (group == 1) g1 += 1;
    else if (group == 2) g2 += 2;
    else if (group <= 4) g34 += group;
    else if (group <= 8) g58 += group;
    else g9 += group;
    followed += group - 1;
    li += group;
  }

  const double total = static_cast<double>(st.total_loads);
  st.frac_group_1 = static_cast<double>(g1) / total;
  st.frac_group_2 = static_cast<double>(g2) / total;
  st.frac_group_3to4 = static_cast<double>(g34) / total;
  st.frac_group_5to8 = static_cast<double>(g58) / total;
  st.frac_group_gt8 = static_cast<double>(g9) / total;
  st.frac_followed = static_cast<double>(followed) / total;
  return st;
}

std::vector<PageGroupStats> LocalityAnalyzer::pageGroups() const {
  std::vector<PageGroupStats> out;
  out.reserve(allowances_.size());
  for (std::uint32_t x : allowances_) out.push_back(analyzeAllowance(x));
  return out;
}

double LocalityAnalyzer::sameLineFollowedFraction() const {
  if (load_pages_.size() < 2) return 0.0;
  std::uint64_t followed = 0;
  for (std::size_t i = 0; i + 1 < load_pages_.size(); ++i) {
    if (accesses_[load_pages_[i]].line == accesses_[load_pages_[i + 1]].line)
      ++followed;
  }
  return static_cast<double>(followed) /
         static_cast<double>(load_pages_.size());
}

double LocalityAnalyzer::storeSamePageFollowedFraction() const {
  std::uint64_t stores = 0, followed = 0;
  PageId prev_page = 0;
  bool have_prev = false;
  for (const Access& a : accesses_) {
    if (a.is_load) continue;
    if (have_prev) {
      if (a.page == prev_page) ++followed;
    }
    prev_page = a.page;
    have_prev = true;
    ++stores;
  }
  if (stores < 2) return 0.0;
  return static_cast<double>(followed) / static_cast<double>(stores - 1);
}

}  // namespace malec::trace
