#include "trace/synth_generator.h"

#include <algorithm>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::trace {

namespace {
/// Base of the synthetic data segment; keeps addresses away from page 0.
constexpr Addr kDataBase = 0x1000'0000ull;
}  // namespace

SyntheticTraceGenerator::SyntheticTraceGenerator(WorkloadProfile profile,
                                                 AddressLayout layout,
                                                 std::uint64_t num_instructions,
                                                 std::uint64_t seed)
    : profile_(std::move(profile)),
      layout_(layout),
      limit_(num_instructions),
      seed_(seed),
      rng_(seed) {
  MALEC_CHECK(profile_.streams >= 1);
  MALEC_CHECK(profile_.ws_pages >= 1);
  MALEC_CHECK(profile_.mem_fraction >= 0.0 && profile_.mem_fraction <= 1.0);
  MALEC_CHECK(profile_.load_share >= 0.0 && profile_.load_share <= 1.0);
  reset();
}

void SyntheticTraceGenerator::reset() {
  // Re-derive the RNG from (seed, name-hash) so two benchmarks with equal
  // seeds still see independent streams.
  std::uint64_t h = 1469598103934665603ull;
  for (char c : profile_.name) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  rng_ = Rng(seed_ ^ h);
  emitted_ = 0;
  seq_ = 0;
  streams_.assign(profile_.streams, Stream{});
  for (std::uint32_t s = 0; s < profile_.streams; ++s) {
    streams_[s].page_index = static_cast<std::uint32_t>(rng_.below(
        std::max<std::uint32_t>(1, std::min(profile_.hot_pages,
                                            profile_.ws_pages))));
    streams_[s].offset = rng_.below(layout_.pageBytes()) & ~7ull;
  }
  active_stream_ = 0;
  has_last_load_ = false;
  store_stream_ = Stream{};
  store_stream_.page_index =
      profile_.ws_pages > 1 ? profile_.ws_pages - 1 : 0;
  has_last_store_ = false;
  since_last_load_ = 0;
}

Addr SyntheticTraceGenerator::pageBase(std::uint32_t page_index) const {
  return kDataBase + static_cast<Addr>(page_index) * layout_.pageBytes();
}

std::uint32_t SyntheticTraceGenerator::pickPage(bool streaming_next,
                                                std::uint32_t current) {
  if (streaming_next) return (current + 1) % profile_.ws_pages;
  const std::uint32_t hot =
      std::min(profile_.hot_pages, profile_.ws_pages);
  if (hot > 0 && rng_.chance(profile_.hot_fraction))
    return static_cast<std::uint32_t>(rng_.below(hot));
  return static_cast<std::uint32_t>(rng_.below(profile_.ws_pages));
}

Addr SyntheticTraceGenerator::nextLoadAddr() {
  // Same-line re-touch: models the 46 % of loads directly followed by a
  // load to the same cache line (Sec. III), which feeds MALEC's merging.
  if (has_last_load_ && rng_.chance(profile_.p_same_line)) {
    const Addr off = rng_.below(layout_.lineBytes()) &
                     ~static_cast<Addr>(profile_.access_size - 1);
    return last_load_line_base_ + off;
  }

  if (rng_.chance(profile_.p_switch_stream) && streams_.size() > 1) {
    active_stream_ = static_cast<std::uint32_t>(rng_.below(streams_.size()));
  }
  Stream& st = streams_[active_stream_];

  if (!rng_.chance(profile_.p_same_page)) {
    st.page_index =
        pickPage(rng_.chance(profile_.p_stream_advance), st.page_index);
    if (!rng_.chance(profile_.p_sequential))
      st.offset = rng_.below(layout_.pageBytes());
  }

  if (rng_.chance(profile_.p_sequential)) {
    st.offset += profile_.stride_bytes;
    if (st.offset >= layout_.pageBytes()) {
      st.offset = 0;
      st.page_index = pickPage(true, st.page_index);
    }
  } else {
    st.offset = rng_.below(layout_.pageBytes());
  }
  st.offset &= ~static_cast<Addr>(profile_.access_size - 1);
  return pageBase(st.page_index) + st.offset;
}

Addr SyntheticTraceGenerator::nextStoreAddr() {
  // Read-modify-write: a good fraction of stores touch the page (often the
  // line) that was just loaded, so stores rarely break load page chains.
  if (has_last_load_ && rng_.chance(profile_.store_near_load)) {
    const Addr off = rng_.below(layout_.lineBytes()) &
                     ~static_cast<Addr>(profile_.access_size - 1);
    return last_load_line_base_ + off;
  }
  // Otherwise stores walk their own region with very high page locality and
  // frequent adjacency (exploited by the Merge Buffer, Sec. III).
  if (has_last_store_ && rng_.chance(profile_.store_p_adjacent)) {
    Addr a = last_store_addr_ + profile_.access_size;
    if (layout_.pageId(a) == layout_.pageId(last_store_addr_)) return a;
  }
  Stream& st = store_stream_;
  if (!rng_.chance(profile_.store_p_same_page)) {
    st.page_index =
        pickPage(rng_.chance(profile_.p_stream_advance), st.page_index);
  }
  if (rng_.chance(profile_.p_sequential)) {
    st.offset += profile_.access_size;
    if (st.offset >= layout_.pageBytes()) st.offset = 0;
  } else {
    st.offset = rng_.below(layout_.pageBytes());
  }
  st.offset &= ~static_cast<Addr>(profile_.access_size - 1);
  return pageBase(st.page_index) + st.offset;
}

void SyntheticTraceGenerator::emitDeps(InstrRecord& r) {
  if (since_last_load_ < 1u << 20 && rng_.chance(profile_.dep_on_load)) {
    const std::uint32_t extra =
        rng_.geometric(0.5, profile_.dep_distance_cap);
    r.dep_distance = since_last_load_ + 1 + extra;
    if (r.dep_distance > r.seq) r.dep_distance = 0;
  } else if (rng_.chance(profile_.dep_on_prev)) {
    // Serial ALU chain: depend on the immediately preceding instruction.
    r.dep_distance = r.seq >= 1 ? 1 : 0;
  }
  if (r.isMem() && rng_.chance(profile_.addr_dep_on_load)) {
    r.addr_dep_distance = since_last_load_ + 1;
    if (r.addr_dep_distance > r.seq) r.addr_dep_distance = 0;
  }
}

bool SyntheticTraceGenerator::next(InstrRecord& out) {
  if (limit_ != 0 && emitted_ >= limit_) return false;

  out = InstrRecord{};
  out.seq = seq_++;
  ++emitted_;

  if (rng_.chance(profile_.mem_fraction)) {
    const bool is_load = rng_.chance(profile_.load_share);
    out.kind = is_load ? InstrKind::kLoad : InstrKind::kStore;
    out.size = static_cast<std::uint8_t>(profile_.access_size);
    if (is_load) {
      out.vaddr = nextLoadAddr();
      last_load_line_base_ = layout_.lineBase(out.vaddr);
      has_last_load_ = true;
    } else {
      out.vaddr = nextStoreAddr();
      last_store_addr_ = out.vaddr;
      has_last_store_ = true;
    }
  }

  emitDeps(out);

  if (out.isLoad()) {
    since_last_load_ = 0;
  } else {
    ++since_last_load_;
  }
  return true;
}

void SyntheticTraceGenerator::saveState(ckpt::StateWriter& w) const {
  w.u64(rng_.state());
  w.u64(emitted_);
  w.u64(seq_);
  w.u64(streams_.size());
  for (const Stream& st : streams_) {
    w.u32(st.page_index);
    w.u64(st.offset);
  }
  w.u32(active_stream_);
  w.u8(has_last_load_ ? 1 : 0);
  w.u64(last_load_line_base_);
  w.u32(store_stream_.page_index);
  w.u64(store_stream_.offset);
  w.u8(has_last_store_ ? 1 : 0);
  w.u64(last_store_addr_);
  w.u32(since_last_load_);
}

void SyntheticTraceGenerator::loadState(ckpt::StateReader& r) {
  rng_.setState(r.u64());
  emitted_ = r.u64();
  seq_ = r.u64();
  MALEC_CHECK_MSG(r.u64() == streams_.size(),
                  "generator checkpoint does not fit this profile");
  for (Stream& st : streams_) {
    st.page_index = r.u32();
    st.offset = r.u64();
  }
  active_stream_ = r.u32();
  has_last_load_ = r.u8() != 0;
  last_load_line_base_ = r.u64();
  store_stream_.page_index = r.u32();
  store_stream_.offset = r.u64();
  has_last_store_ = r.u8() != 0;
  last_store_addr_ = r.u64();
  since_last_load_ = r.u32();
}

}  // namespace malec::trace
