// Address-stream locality analysis reproducing the paper's motivation data
// (Sec. III / Fig. 1): how many consecutive read accesses hit the same page
// when up to `x` intermediate accesses to different pages are tolerated, the
// fraction of loads directly followed by a same-page (or same-line) load,
// and the analogous store-side statistic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/address.h"
#include "common/stats.h"
#include "trace/record.h"

namespace malec::trace {

/// Result of one Fig. 1 analysis at a fixed intermediate-access allowance.
struct PageGroupStats {
  std::uint32_t allowed_intermediates = 0;
  /// Fraction of loads whose page group (chain of same-page loads tolerating
  /// the allowance) has size 1, 2, 3-4, 5-8, >8 — the Fig. 1 bar segments.
  double frac_group_1 = 0.0;
  double frac_group_2 = 0.0;
  double frac_group_3to4 = 0.0;
  double frac_group_5to8 = 0.0;
  double frac_group_gt8 = 0.0;
  /// Fraction of loads followed (within the allowance) by >=1 same-page
  /// load, i.e. loads in groups of size >= 2. Paper: 70 % at x=0.
  double frac_followed = 0.0;
  std::uint64_t total_loads = 0;
};

/// Streaming analyzer: feed records in program order, then query.
class LocalityAnalyzer {
 public:
  explicit LocalityAnalyzer(AddressLayout layout,
                            std::vector<std::uint32_t> allowances = {0, 1, 2,
                                                                     3, 4, 8});

  void observe(const InstrRecord& r);

  /// Finish and compute statistics (idempotent).
  [[nodiscard]] std::vector<PageGroupStats> pageGroups() const;

  /// Fraction of loads directly followed by >=1 load to the same line
  /// (paper: 46 %).
  [[nodiscard]] double sameLineFollowedFraction() const;

  /// Fraction of stores directly followed by >=1 store to the same page.
  [[nodiscard]] double storeSamePageFollowedFraction() const;

  [[nodiscard]] std::uint64_t loads() const { return load_pages_.size(); }

 private:
  [[nodiscard]] PageGroupStats analyzeAllowance(std::uint32_t x) const;

  AddressLayout layout_;
  std::vector<std::uint32_t> allowances_;
  /// Page ID of every access in order, with a load/store flag. Kept simple
  /// and explicit: analysis workloads are tens of millions of records at
  /// most, well within memory.
  struct Access {
    PageId page;
    LineAddr line;
    bool is_load;
  };
  std::vector<Access> accesses_;
  std::vector<std::uint32_t> load_pages_;  ///< indices into accesses_
};

}  // namespace malec::trace
