// Instruction/memory-reference records produced by trace sources and
// consumed by the out-of-order core model.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace malec::trace {

enum class InstrKind : std::uint8_t {
  kOther = 0,  ///< non-memory instruction (ALU/branch/FP)
  kLoad = 1,
  kStore = 2,
};

/// One dynamic instruction. Memory instructions carry a virtual address and
/// access size; every instruction may carry a register dependency on an
/// earlier instruction (`dep_distance` back in program order) which the core
/// model honours when scheduling. `addr_dep_distance` models address
/// computations that depend on an earlier load (pointer chasing).
struct InstrRecord {
  SeqNum seq = 0;
  InstrKind kind = InstrKind::kOther;
  Addr vaddr = 0;
  std::uint8_t size = 0;
  /// 0 = no data dependency; otherwise depends on instruction seq-N.
  std::uint32_t dep_distance = 0;
  /// 0 = address available immediately after issue; otherwise the address
  /// computation consumes the result of load at seq-N.
  std::uint32_t addr_dep_distance = 0;

  [[nodiscard]] bool isMem() const { return kind != InstrKind::kOther; }
  [[nodiscard]] bool isLoad() const { return kind == InstrKind::kLoad; }
  [[nodiscard]] bool isStore() const { return kind == InstrKind::kStore; }
};

/// Streaming source of instructions. Implementations: synthetic generator,
/// trace-file reader, in-memory vector (tests).
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  /// Fills `out` with the next instruction; returns false at end of stream.
  virtual bool next(InstrRecord& out) = 0;
  /// Restart the stream from the beginning (same sequence, deterministic).
  virtual void reset() = 0;
};

}  // namespace malec::trace
