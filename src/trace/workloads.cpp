#include "trace/workloads.h"

#include <algorithm>

#include "common/check.h"

namespace malec::trace {

namespace {

/// Builds one profile from the handful of per-benchmark knobs we vary.
/// Anything not listed stays at the WorkloadProfile default.
struct Knobs {
  const char* name;
  const char* suite;
  double mem_fraction;
  double load_share;
  double p_same_page;
  double p_same_line;
  std::uint32_t ws_pages;
  std::uint32_t streams;
  double dep_on_load;
  double addr_dep_on_load;
  double p_sequential;
  std::uint32_t access_size;
};

WorkloadProfile make(const Knobs& k) {
  WorkloadProfile p;
  p.name = k.name;
  p.suite = k.suite;
  p.mem_fraction = k.mem_fraction;
  p.load_share = k.load_share;
  p.p_same_page = std::min(0.96, k.p_same_page + 0.10);
  p.p_same_line = k.p_same_line * 0.42;
  p.ws_pages = k.ws_pages;
  p.streams = k.streams;
  p.dep_on_load = k.dep_on_load * 0.62;
  p.addr_dep_on_load = k.addr_dep_on_load;
  p.p_sequential = k.p_sequential;
  p.access_size = k.access_size;
  p.stride_bytes = k.access_size >= 16 ? 32 : 16;
  // The hot subset must fit a 32 KByte L1 (8 pages of lines) for the cache
  // to behave like it does on real SPEC code; the cold tail provides the
  // capacity-miss traffic. Streaming benchmarks (mcf/art/swim-like, large
  // working sets) walk forward through cold memory instead.
  // ALU dependency chains bound ILP so that doubling the memory ports buys
  // the ~15 % the paper reports rather than a port-count-proportional gain.
  if (p.suite == "SPEC-INT") p.dep_on_prev = 0.78;
  else if (p.suite == "SPEC-FP") p.dep_on_prev = 0.70;
  else p.dep_on_prev = 0.52;
  const bool streaming = k.ws_pages > 4096;
  p.hot_pages = std::max<std::uint32_t>(4, k.ws_pages / 400);
  p.hot_fraction = streaming ? 0.35 : 0.95;
  p.p_stream_advance = streaming ? 0.85 : 0.35;
  return p;
}

// Calibration notes (paper anchors):
//  * suite memory-op density: SPEC-INT 45 %, SPEC-FP 40 %, MB2 37 % (VI-B);
//  * global load/store ratio 2:1 (Sec. III);
//  * ~70 % of loads directly followed by a same-page load, 46 % same-line
//    (Sec. III) — p_same_page/p_same_line land the overall averages there;
//  * mcf/art: huge working sets, low locality, ~7x average miss rate (VI-B/C);
//  * gap: 37 % loads of ALL instructions + dependency chains that prevent
//    re-ordering (VI-B) -> mem_fraction .49 with load_share .75, high deps;
//  * equake/gap: unusually high line-share (merged-load benefit 56-66 %);
//    mgrid: < 2 % merge benefit -> tiny p_same_line;
//  * djpeg/h263dec: highly structured parallel media streams (30 % speedup)
//    -> high locality, many streams, low dependency density.
const Knobs kKnobs[] = {
    // name        suite       mem   ld    pgLoc line  wsPg  str dep  adep seq  sz
    {"gzip",      "SPEC-INT",  0.44, 0.66, 0.82, 0.38, 700,   2, 0.32, 0.04, 0.75, 4},
    {"vpr",       "SPEC-INT",  0.45, 0.68, 0.80, 0.34, 900,   3, 0.35, 0.06, 0.60, 4},
    {"gcc",       "SPEC-INT",  0.46, 0.70, 0.78, 0.33, 1600,  3, 0.34, 0.07, 0.55, 4},
    {"mcf",       "SPEC-INT",  0.48, 0.72, 0.75, 0.45, 24000, 2, 0.46, 0.20, 0.55, 4},
    {"crafty",    "SPEC-INT",  0.44, 0.67, 0.81, 0.36, 600,   3, 0.33, 0.05, 0.60, 8},
    {"parser",    "SPEC-INT",  0.45, 0.69, 0.79, 0.34, 1100,  2, 0.36, 0.10, 0.55, 4},
    {"eon",       "SPEC-INT",  0.43, 0.65, 0.84, 0.40, 400,   2, 0.30, 0.03, 0.70, 8},
    {"perlbmk",   "SPEC-INT",  0.46, 0.68, 0.80, 0.35, 900,   3, 0.34, 0.06, 0.55, 4},
    {"gap",       "SPEC-INT",  0.49, 0.75, 0.83, 0.90, 800,   2, 0.48, 0.12, 0.70, 4},
    {"vortex",    "SPEC-INT",  0.45, 0.67, 0.80, 0.34, 1300,  3, 0.33, 0.06, 0.55, 4},
    {"bzip2",     "SPEC-INT",  0.44, 0.66, 0.83, 0.39, 900,   2, 0.31, 0.04, 0.80, 4},
    {"twolf",     "SPEC-INT",  0.45, 0.68, 0.79, 0.33, 700,   3, 0.36, 0.07, 0.55, 4},

    {"wupwise",   "SPEC-FP",   0.40, 0.65, 0.84, 0.36, 1200,  2, 0.26, 0.02, 0.85, 8},
    {"swim",      "SPEC-FP",   0.41, 0.64, 0.80, 0.30, 6000,  3, 0.24, 0.01, 0.90, 8},
    {"mgrid",     "SPEC-FP",   0.40, 0.66, 0.83, 0.06, 3000,  2, 0.25, 0.01, 0.92, 8},
    {"applu",     "SPEC-FP",   0.40, 0.64, 0.82, 0.30, 3500,  3, 0.25, 0.02, 0.88, 8},
    {"mesa",      "SPEC-FP",   0.39, 0.66, 0.84, 0.38, 700,   2, 0.28, 0.03, 0.75, 8},
    {"galgel",    "SPEC-FP",   0.40, 0.65, 0.83, 0.35, 1500,  3, 0.26, 0.02, 0.85, 8},
    {"art",       "SPEC-FP",   0.42, 0.68, 0.74, 0.38, 16000, 2, 0.40, 0.08, 0.65, 4},
    {"equake",    "SPEC-FP",   0.41, 0.67, 0.83, 0.95, 1800,  2, 0.30, 0.04, 0.80, 8},
    {"facerec",   "SPEC-FP",   0.39, 0.65, 0.83, 0.34, 1200,  2, 0.26, 0.02, 0.82, 8},
    {"ammp",      "SPEC-FP",   0.40, 0.66, 0.80, 0.32, 1600,  3, 0.29, 0.05, 0.65, 8},
    {"lucas",     "SPEC-FP",   0.39, 0.64, 0.82, 0.31, 2500,  2, 0.25, 0.01, 0.88, 8},
    {"fma3d",     "SPEC-FP",   0.40, 0.65, 0.81, 0.33, 2000,  3, 0.27, 0.03, 0.75, 8},
    {"sixtrack",  "SPEC-FP",   0.39, 0.64, 0.84, 0.36, 900,   2, 0.26, 0.02, 0.85, 8},
    {"apsi",      "SPEC-FP",   0.40, 0.65, 0.82, 0.33, 1400,  3, 0.27, 0.03, 0.80, 8},

    {"cjpeg",      "MediaBench2", 0.37, 0.66, 0.87, 0.44, 300,  2, 0.22, 0.01, 0.90, 8},
    {"djpeg",      "MediaBench2", 0.37, 0.68, 0.90, 0.50, 250,  2, 0.18, 0.01, 0.92, 16},
    {"h263dec",    "MediaBench2", 0.36, 0.67, 0.90, 0.48, 220,  2, 0.18, 0.01, 0.92, 16},
    {"h263enc",    "MediaBench2", 0.37, 0.65, 0.86, 0.42, 350,  3, 0.24, 0.02, 0.85, 8},
    {"h264dec",    "MediaBench2", 0.37, 0.67, 0.87, 0.44, 400,  3, 0.24, 0.02, 0.85, 8},
    {"h264enc",    "MediaBench2", 0.38, 0.65, 0.85, 0.41, 500,  3, 0.26, 0.03, 0.80, 8},
    {"jpg2000dec", "MediaBench2", 0.37, 0.66, 0.86, 0.43, 350,  2, 0.23, 0.02, 0.85, 8},
    {"jpg2000enc", "MediaBench2", 0.37, 0.65, 0.86, 0.42, 400,  2, 0.24, 0.02, 0.85, 8},
    {"mpeg2dec",   "MediaBench2", 0.36, 0.67, 0.88, 0.46, 300,  2, 0.21, 0.01, 0.90, 16},
    {"mpeg2enc",   "MediaBench2", 0.37, 0.65, 0.86, 0.42, 450,  3, 0.25, 0.02, 0.85, 8},
    {"mpeg4dec",   "MediaBench2", 0.37, 0.66, 0.87, 0.45, 400,  2, 0.22, 0.01, 0.88, 16},
    {"mpeg4enc",   "MediaBench2", 0.38, 0.65, 0.85, 0.41, 550,  3, 0.26, 0.03, 0.82, 8},
};

std::vector<WorkloadProfile> buildAll() {
  std::vector<WorkloadProfile> v;
  v.reserve(std::size(kKnobs));
  for (const Knobs& k : kKnobs) v.push_back(make(k));
  return v;
}

}  // namespace

const std::vector<WorkloadProfile>& allWorkloads() {
  static const std::vector<WorkloadProfile> all = buildAll();
  return all;
}

std::vector<WorkloadProfile> workloadsForSuite(const std::string& suite) {
  std::vector<WorkloadProfile> v;
  for (const auto& p : allWorkloads())
    if (p.suite == suite) v.push_back(p);
  return v;
}

const WorkloadProfile& workloadByName(const std::string& name) {
  for (const auto& p : allWorkloads())
    if (p.name == name) return p;
  MALEC_CHECK_MSG(false, ("unknown workload: " + name).c_str());
  __builtin_unreachable();
}

bool hasWorkload(const std::string& name) {
  for (const auto& p : allWorkloads())
    if (p.name == name) return true;
  return false;
}

const std::vector<std::string>& suiteNames() {
  static const std::vector<std::string> names = {"SPEC-INT", "SPEC-FP",
                                                 "MediaBench2"};
  return names;
}

}  // namespace malec::trace
