// Deterministic synthetic instruction-stream generator.
//
// Produces an unbounded stream of InstrRecords whose aggregate statistics
// (memory-op density, load/store ratio, page/line locality per Fig. 1,
// working-set footprint, dependency structure) follow a WorkloadProfile.
// All randomness comes from a seeded Rng, so a given (profile, seed, length)
// triple always yields the identical stream.
#pragma once

#include <cstdint>
#include <vector>

#include "common/address.h"
#include "common/rng.h"
#include "trace/record.h"
#include "trace/workload_profile.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::trace {

class SyntheticTraceGenerator final : public TraceSource {
 public:
  /// `num_instructions` bounds the stream (0 = unbounded).
  SyntheticTraceGenerator(WorkloadProfile profile, AddressLayout layout,
                          std::uint64_t num_instructions,
                          std::uint64_t seed = 1);

  bool next(InstrRecord& out) override;
  void reset() override;

  [[nodiscard]] const WorkloadProfile& profile() const { return profile_; }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

  /// Checkpoint/restore of the generator's position: RNG stream, stream
  /// cursors and history registers. Restoring into a generator built from
  /// the same (profile, layout, length, seed) continues the identical
  /// record sequence.
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct Stream {
    std::uint32_t page_index = 0;  ///< index into the working set
    Addr offset = 0;               ///< current offset within the page
  };

  [[nodiscard]] Addr pageBase(std::uint32_t page_index) const;
  std::uint32_t pickPage(bool streaming_next, std::uint32_t current);
  Addr nextLoadAddr();
  Addr nextStoreAddr();
  void emitDeps(InstrRecord& r);

  WorkloadProfile profile_;  // lint:no-state(config; restore binds by fingerprint)
  AddressLayout layout_;     // lint:no-state(config)
  std::uint64_t limit_;  // lint:no-state(config; restore binds by fingerprint)
  std::uint64_t seed_;   // lint:no-state(config; restore binds by fingerprint)

  Rng rng_;
  std::uint64_t emitted_ = 0;
  SeqNum seq_ = 0;
  std::vector<Stream> streams_;
  std::uint32_t active_stream_ = 0;
  Addr last_load_line_base_ = 0;
  bool has_last_load_ = false;
  Stream store_stream_;
  Addr last_store_addr_ = 0;
  bool has_last_store_ = false;
  /// Distance (in instructions) since the most recent load, for dependency
  /// generation.
  std::uint32_t since_last_load_ = 0;
};

}  // namespace malec::trace
