#include "waydet/segmented_wt.h"

#include <algorithm>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::waydet {

SegmentedWayTable::SegmentedWayTable(const Params& p)
    : p_(p), pool_(p.chunks) {
  MALEC_CHECK(p.lines_per_chunk >= 1);
  MALEC_CHECK(p.lines_per_page % p.lines_per_chunk == 0);
  MALEC_CHECK(p.chunks >= 1);
  MALEC_CHECK(p.assoc >= 2);
  chunks_per_page_ = p.lines_per_page / p.lines_per_chunk;
  for (Chunk& c : pool_) c.codes.assign(p.lines_per_chunk, kCodeUnknown);
}

const SegmentedWayTable::Chunk* SegmentedWayTable::find(
    std::uint32_t slot, std::uint32_t index) const {
  for (const Chunk& c : pool_)
    if (c.valid && c.slot == slot && c.index == index) return &c;
  return nullptr;
}

SegmentedWayTable::Chunk* SegmentedWayTable::find(std::uint32_t slot,
                                                  std::uint32_t index) {
  for (Chunk& c : pool_)
    if (c.valid && c.slot == slot && c.index == index) return &c;
  return nullptr;
}

SegmentedWayTable::Chunk& SegmentedWayTable::allocate(std::uint32_t slot,
                                                      std::uint32_t index) {
  Chunk* victim = nullptr;
  for (Chunk& c : pool_) {
    if (!c.valid) {
      victim = &c;
      break;
    }
  }
  if (victim == nullptr) {
    victim = &*std::min_element(
        pool_.begin(), pool_.end(),
        [](const Chunk& a, const Chunk& b) { return a.lru < b.lru; });
    ++evictions_;
  }
  victim->valid = true;
  victim->slot = slot;
  victim->index = index;
  victim->lru = ++tick_;
  std::fill(victim->codes.begin(), victim->codes.end(), kCodeUnknown);
  ++allocs_;
  return *victim;
}

WayIdx SegmentedWayTable::lookup(std::uint32_t slot,
                                 std::uint32_t line_in_page,
                                 std::uint32_t page_salt) const {
  MALEC_DCHECK(slot < p_.slots && line_in_page < p_.lines_per_page);
  const std::uint32_t index = line_in_page / p_.lines_per_chunk;
  const Chunk* c = find(slot, index);
  if (c == nullptr) return kWayUnknown;
  const WayCode code = c->codes[line_in_page % p_.lines_per_chunk];
  return decodeWay(code, excludedWay(line_in_page, page_salt, p_.banks,
                                     p_.assoc),
                   p_.assoc);
}

void SegmentedWayTable::record(std::uint32_t slot,
                               std::uint32_t line_in_page,
                               std::uint32_t page_salt, std::uint32_t way) {
  MALEC_DCHECK(slot < p_.slots && line_in_page < p_.lines_per_page);
  const std::uint32_t index = line_in_page / p_.lines_per_chunk;
  Chunk* c = find(slot, index);
  if (c == nullptr) c = &allocate(slot, index);
  c->lru = ++tick_;
  c->codes[line_in_page % p_.lines_per_chunk] = encodeWay(
      way, excludedWay(line_in_page, page_salt, p_.banks, p_.assoc),
      p_.assoc);
}

void SegmentedWayTable::clearLine(std::uint32_t slot,
                                  std::uint32_t line_in_page) {
  const std::uint32_t index = line_in_page / p_.lines_per_chunk;
  if (Chunk* c = find(slot, index); c != nullptr)
    c->codes[line_in_page % p_.lines_per_chunk] = kCodeUnknown;
}

void SegmentedWayTable::invalidateSlot(std::uint32_t slot) {
  for (Chunk& c : pool_)
    if (c.valid && c.slot == slot) c.valid = false;
}

std::uint32_t SegmentedWayTable::residentChunks() const {
  std::uint32_t n = 0;
  for (const Chunk& c : pool_) n += c.valid;
  return n;
}

std::uint32_t SegmentedWayTable::storageBits() const {
  // Payload + tag per chunk: slot id + chunk index + valid.
  std::uint32_t tag_bits = 1;
  std::uint32_t v = 1;
  while (v < p_.slots) {
    v <<= 1;
    ++tag_bits;
  }
  std::uint32_t idx_bits = 0;
  v = 1;
  while (v < chunks_per_page_) {
    v <<= 1;
    ++idx_bits;
  }
  return p_.chunks * (2 * p_.lines_per_chunk + tag_bits + idx_bits);
}

std::uint32_t SegmentedWayTable::flatStorageBits() const {
  return p_.slots * 2 * p_.lines_per_page;
}


void SegmentedWayTable::saveState(ckpt::StateWriter& w) const {
  w.u64(pool_.size());
  for (const Chunk& c : pool_) {
    w.u8(c.valid ? 1 : 0);
    w.u32(c.slot);
    w.u32(c.index);
    w.u64(c.lru);
    w.u64(c.codes.size());
    for (const WayCode code : c.codes) w.u8(code);
  }
  w.u64(tick_);
  w.u64(allocs_);
  w.u64(evictions_);
}

void SegmentedWayTable::loadState(ckpt::StateReader& r) {
  MALEC_CHECK_MSG(r.u64() == pool_.size(),
                  "segmented-WT checkpoint does not fit this geometry");
  for (Chunk& c : pool_) {
    c.valid = r.u8() != 0;
    c.slot = r.u32();
    c.index = r.u32();
    c.lru = r.u64();
    const std::uint64_t codes = r.u64();
    c.codes.assign(static_cast<std::size_t>(codes), kCodeUnknown);
    for (WayCode& code : c.codes) code = r.u8();
  }
  tick_ = r.u64();
  allocs_ = r.u64();
  evictions_ = r.u64();
}

}  // namespace malec::waydet
