// Segmented Way Table — the paper's Sec. VI-D extension for wide pages.
//
// With pages larger than 4 KByte, a flat WT entry grows linearly (2 bits
// per line), which the paper flags as the one scaling concern of
// Page-Based Way Determination. Its suggested remedies: quantise TLB
// entries into 4 KByte segments, or segment the WT itself — "by allocating
// and replacing WT chunks in a FIFO or LRU manner, their number could be
// smaller than required to represent full pages".
//
// SegmentedWayTable implements the second remedy: way codes are stored in
// fixed-size chunks covering `lines_per_chunk` consecutive lines of a
// page; a small pool of chunks is shared by all TLB slots and allocated on
// demand (LRU replacement). Lookups for lines whose chunk is not resident
// return "way unknown" — a coverage loss, traded against a WT capacity
// that no longer scales with page size.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "waydet/way_info.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::waydet {

class SegmentedWayTable {
 public:
  struct Params {
    std::uint32_t slots = 64;           ///< companion TLB entries
    std::uint32_t lines_per_page = 64;  ///< grows with page size
    std::uint32_t lines_per_chunk = 16; ///< chunk granularity
    std::uint32_t chunks = 64;          ///< pooled chunk count
    std::uint32_t banks = 4;
    std::uint32_t assoc = 4;
  };

  explicit SegmentedWayTable(const Params& p);

  /// Decoded way, or kWayUnknown when the line's chunk is not resident or
  /// holds no validity for the line. Never allocates.
  [[nodiscard]] WayIdx lookup(std::uint32_t slot, std::uint32_t line_in_page,
                              std::uint32_t page_salt) const;

  /// Record a way; allocates the chunk (possibly evicting the LRU chunk of
  /// some other page region) if absent.
  void record(std::uint32_t slot, std::uint32_t line_in_page,
              std::uint32_t page_salt, std::uint32_t way);

  /// Clear one line's validity (no allocation on absence).
  void clearLine(std::uint32_t slot, std::uint32_t line_in_page);

  /// Drop every chunk belonging to a slot (TLB eviction).
  void invalidateSlot(std::uint32_t slot);

  [[nodiscard]] std::uint32_t residentChunks() const;
  [[nodiscard]] std::uint64_t chunkAllocations() const { return allocs_; }
  [[nodiscard]] std::uint64_t chunkEvictions() const { return evictions_; }

  /// Storage bits: chunk payloads + per-chunk tags (slot + chunk index).
  [[nodiscard]] std::uint32_t storageBits() const;
  /// Bits a flat WT for the same geometry would need.
  [[nodiscard]] std::uint32_t flatStorageBits() const;

  [[nodiscard]] const Params& params() const { return p_; }

  /// Checkpoint/restore of all mutable state; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct Chunk {
    bool valid = false;
    std::uint32_t slot = 0;
    std::uint32_t index = 0;  ///< chunk index within the page
    std::uint64_t lru = 0;
    std::vector<WayCode> codes;
  };

  [[nodiscard]] const Chunk* find(std::uint32_t slot,
                                  std::uint32_t index) const;
  [[nodiscard]] Chunk* find(std::uint32_t slot, std::uint32_t index);
  Chunk& allocate(std::uint32_t slot, std::uint32_t index);

  Params p_;  // lint:no-state(config)
  std::uint32_t chunks_per_page_;  // lint:no-state(geometry, derived from config)
  std::vector<Chunk> pool_;
  std::uint64_t tick_ = 0;
  std::uint64_t allocs_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace malec::waydet
