// Way Tables: the storage half of Page-Based Way Determination.
//
// A WayTable is a RAM with one entry per slot of its companion TLB; entry i
// holds the 2-bit validity+way codes for every cache line of the page that
// TLB slot i currently maps (paper Fig. 3). A TLB hit therefore delivers,
// together with the translation, way information for *all* lines of the
// page — servicing every access of the cycle's page group simultaneously.
//
// Two instances exist: the WT (64 entries, coupled to the TLB) and the uWT
// (16 entries, coupled to the uTLB). Synchronisation (Sec. V):
//   * uTLB miss / TLB hit: the WT entry is copied into the uWT slot;
//   * uWT eviction: the (possibly updated) entry is written back to the WT;
//   * TLB eviction: the WT entry is invalidated — way information for that
//     page is lost even if its lines stay resident;
//   * line fill/eviction: validity maintenance through reverse (physical)
//     TLB lookups — the uWT is updated if the page is uTLB-resident, else
//     the WT ("the WT is only updated if no corresponding uWT entry was
//     found");
//   * "way unknown" answer followed by a conventional hit: the uWT slot is
//     repaired through the last-entry register without a new uTLB lookup.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "waydet/way_info.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::waydet {

class WayTable {
 public:
  /// `slots` must equal the companion TLB's entry count.
  WayTable(std::uint32_t slots, std::uint32_t lines_per_page,
           std::uint32_t banks, std::uint32_t assoc);

  /// Decoded way for (slot, line) in a page with salt `page_salt`, or
  /// kWayUnknown.
  [[nodiscard]] WayIdx lookup(std::uint32_t slot, std::uint32_t line_in_page,
                              std::uint32_t page_salt) const;

  /// Record `way` for (slot, line). Recording the line's excluded way
  /// degrades to unknown by construction of the encoding.
  void record(std::uint32_t slot, std::uint32_t line_in_page,
              std::uint32_t page_salt, std::uint32_t way);

  /// Clear one line's validity (cache eviction).
  void clearLine(std::uint32_t slot, std::uint32_t line_in_page);

  /// Invalidate a whole entry (TLB eviction / new page allocation).
  void invalidateSlot(std::uint32_t slot);

  /// Raw 2-bit codes of a slot — full-entry uWT<->WT transfers.
  [[nodiscard]] std::vector<WayCode> entryCodes(std::uint32_t slot) const;
  void setEntryCodes(std::uint32_t slot, const std::vector<WayCode>& codes);

  /// Number of valid (known-way) lines in a slot.
  [[nodiscard]] std::uint32_t validLines(std::uint32_t slot) const;

  [[nodiscard]] std::uint32_t slots() const { return slots_; }
  [[nodiscard]] std::uint32_t linesPerPage() const { return lines_per_page_; }
  /// Bits per entry under the paper's combined encoding (128 by default).
  [[nodiscard]] std::uint32_t entryBits() const { return 2 * lines_per_page_; }
  /// Bits per entry under the naive separate valid+way encoding (192).
  [[nodiscard]] std::uint32_t naiveEntryBits() const;

  [[nodiscard]] std::uint32_t excluded(std::uint32_t line_in_page,
                                       std::uint32_t page_salt) const {
    return excludedWay(line_in_page, page_salt, banks_, assoc_);
  }

  /// Checkpoint/restore of all mutable state; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  std::uint32_t slots_;  // lint:no-state(geometry; load checks code count)
  std::uint32_t lines_per_page_;  // lint:no-state(geometry; load checks code count)
  std::uint32_t banks_;  // lint:no-state(config)
  std::uint32_t assoc_;  // lint:no-state(config)
  std::vector<WayCode> codes_;  ///< slots x lines_per_page
};

/// Last-entry register (paper Fig. 3): remembers the uWT slots used by the
/// most recent way lookups so a conventional hit that followed a "way
/// unknown" answer can repair the uWT without a uTLB lookup. A multi-cycle
/// gap between prediction and access is modelled by a small FIFO.
class LastEntryRegister {
 public:
  explicit LastEntryRegister(std::uint32_t depth = 1) : depth_(depth) {}

  /// Note that `slot` (mapping `vpage`) produced this cycle's way info.
  void push(std::uint32_t slot, PageId vpage);

  /// Find the remembered slot for `vpage`, if still tracked.
  [[nodiscard]] std::optional<std::uint32_t> match(PageId vpage) const;

  void clear() { fifo_.clear(); }

  /// Checkpoint/restore of all mutable state; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct Item {
    std::uint32_t slot;
    PageId vpage;
  };
  std::uint32_t depth_;  // lint:no-state(config; bounds-checked on load)
  std::vector<Item> fifo_;  ///< oldest first
};

}  // namespace malec::waydet
