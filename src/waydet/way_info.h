// The 2-bit combined validity+way encoding of Way Table entries.
//
// Paper Sec. V: a WT entry holds 2 bits per cache line of its page (128 bits
// for 64 lines), instead of the naive 1 valid + 2 way bits (192 bits),
// cutting WT area and leakage by one third. The trick: for each line, one
// specific way — excludedWay = (lineInPage / banks) % assoc — is declared
// unrepresentable ("way unknown"), so the remaining three ways plus the
// unknown state fit in 2 bits. The L1 allocation policy avoids the excluded
// way for that line, and working sets still use all four ways because the
// excluded way rotates with the line index.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/types.h"

namespace malec::waydet {

/// 2-bit code: 0 = way unknown / invalid; 1..3 = one of the three
/// representable ways for the line.
using WayCode = std::uint8_t;
inline constexpr WayCode kCodeUnknown = 0;

/// The way that cannot be encoded for `line_in_page` within page
/// `page_salt` (low physical-page bits). The paper fixes the excluded way
/// per line index (lines 0..3 exclude way 0, 4..7 way 1, ...); salting the
/// rotation with the page ID keeps that property per page while letting
/// different pages mapping to the same cache set exclude different ways,
/// which is what preserves full set associativity across a working set
/// ("working sets may still utilize all four ways", Sec. V).
[[nodiscard]] inline std::uint32_t excludedWay(std::uint32_t line_in_page,
                                               std::uint32_t page_salt,
                                               std::uint32_t banks,
                                               std::uint32_t assoc) {
  return (line_in_page / banks + page_salt) % assoc;
}

/// Encode a physical way for a line; the excluded way encodes as unknown.
[[nodiscard]] inline WayCode encodeWay(std::uint32_t way,
                                       std::uint32_t excluded_way,
                                       [[maybe_unused]] std::uint32_t assoc) {
  MALEC_DCHECK(way < assoc);
  MALEC_DCHECK(excluded_way < assoc);
  if (way == excluded_way) return kCodeUnknown;
  // Representable ways in increasing order map onto codes 1..assoc-1.
  const std::uint32_t rank = way < excluded_way ? way : way - 1;
  return static_cast<WayCode>(rank + 1);
}

/// Decode a code back to a way; kCodeUnknown decodes to kWayUnknown.
[[nodiscard]] inline WayIdx decodeWay(WayCode code, std::uint32_t excluded_way,
                                      [[maybe_unused]] std::uint32_t assoc) {
  if (code == kCodeUnknown) return kWayUnknown;
  MALEC_DCHECK(code < assoc);
  const std::uint32_t rank = code - 1;
  const std::uint32_t way = rank < excluded_way ? rank : rank + 1;
  return static_cast<WayIdx>(way);
}

}  // namespace malec::waydet
