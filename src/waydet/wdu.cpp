#include "waydet/wdu.h"

#include <algorithm>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::waydet {

Wdu::Wdu(std::uint32_t entries) : capacity_(entries), slots_(entries) {
  MALEC_CHECK(entries >= 1);
}

std::optional<WayIdx> Wdu::lookup(LineAddr line) {
  ++searches_;
  for (Slot& s : slots_) {
    if (s.valid && s.line == line) {
      s.lru = ++tick_;
      ++hits_;
      return s.way;
    }
  }
  return std::nullopt;
}

void Wdu::record(LineAddr line, WayIdx way) {
  MALEC_CHECK(way != kWayUnknown);
  for (Slot& s : slots_) {
    if (s.valid && s.line == line) {
      s.way = way;
      s.lru = ++tick_;
      return;
    }
  }
  // Allocate: invalid slot first, else LRU.
  Slot* victim = nullptr;
  for (Slot& s : slots_) {
    if (!s.valid) {
      victim = &s;
      break;
    }
  }
  if (victim == nullptr) {
    victim = &*std::min_element(
        slots_.begin(), slots_.end(),
        [](const Slot& a, const Slot& b) { return a.lru < b.lru; });
  }
  victim->valid = true;
  victim->line = line;
  victim->way = way;
  victim->lru = ++tick_;
}

void Wdu::invalidate(LineAddr line) {
  for (Slot& s : slots_) {
    if (s.valid && s.line == line) {
      s.valid = false;
      return;
    }
  }
}


void Wdu::saveState(ckpt::StateWriter& w) const {
  w.u64(slots_.size());
  for (const Slot& s : slots_) {
    w.u8(s.valid ? 1 : 0);
    w.u64(s.line);
    w.u8(static_cast<std::uint8_t>(s.way));
    w.u64(s.lru);
  }
  w.u64(tick_);
  w.u64(searches_);
  w.u64(hits_);
}

void Wdu::loadState(ckpt::StateReader& r) {
  MALEC_CHECK_MSG(r.u64() == slots_.size(),
                  "WDU checkpoint state does not fit this geometry");
  for (Slot& s : slots_) {
    s.valid = r.u8() != 0;
    s.line = r.u64();
    s.way = static_cast<WayIdx>(r.u8());
    s.lru = r.u64();
  }
  tick_ = r.u64();
  searches_ = r.u64();
  hits_ = r.u64();
}

}  // namespace malec::waydet
