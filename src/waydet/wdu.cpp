#include "waydet/wdu.h"

#include <algorithm>

#include "common/check.h"

namespace malec::waydet {

Wdu::Wdu(std::uint32_t entries) : capacity_(entries), slots_(entries) {
  MALEC_CHECK(entries >= 1);
}

std::optional<WayIdx> Wdu::lookup(LineAddr line) {
  ++searches_;
  for (Slot& s : slots_) {
    if (s.valid && s.line == line) {
      s.lru = ++tick_;
      ++hits_;
      return s.way;
    }
  }
  return std::nullopt;
}

void Wdu::record(LineAddr line, WayIdx way) {
  MALEC_CHECK(way != kWayUnknown);
  for (Slot& s : slots_) {
    if (s.valid && s.line == line) {
      s.way = way;
      s.lru = ++tick_;
      return;
    }
  }
  // Allocate: invalid slot first, else LRU.
  Slot* victim = nullptr;
  for (Slot& s : slots_) {
    if (!s.valid) {
      victim = &s;
      break;
    }
  }
  if (victim == nullptr) {
    victim = &*std::min_element(
        slots_.begin(), slots_.end(),
        [](const Slot& a, const Slot& b) { return a.lru < b.lru; });
  }
  victim->valid = true;
  victim->line = line;
  victim->way = way;
  victim->lru = ++tick_;
}

void Wdu::invalidate(LineAddr line) {
  for (Slot& s : slots_) {
    if (s.valid && s.line == line) {
      s.valid = false;
      return;
    }
  }
}

}  // namespace malec::waydet
