// Way Determination Unit — the line-granularity prior art MALEC's
// Page-Based Way Determination is compared against (Nicolaescu, Veidenbaum
// and Nicolau, DATE'03; paper Sec. II and VI-C).
//
// The WDU is a small fully-associative buffer of recently accessed cache
// lines, each associated with exactly one way: a line either hits in that
// way or misses the whole cache. Per the paper's comparison methodology, we
// extend the original WDU with validity bits so it too can issue *reduced*
// accesses (tag arrays bypassed) rather than mere predictions.
//
// Unlike the single-ported, lookup-free WT (indexed by the TLB hit), the
// WDU needs one fully-associative, tag-sized lookup port per parallel
// memory reference — four for the evaluated MALEC configuration — which is
// what makes it the energy-losing option at this access parallelism.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::waydet {

class Wdu {
 public:
  /// `entries`: 8, 16 or 32 in the paper's sweep.
  explicit Wdu(std::uint32_t entries);

  /// Look up the way for a line address; counts one associative search.
  [[nodiscard]] std::optional<WayIdx> lookup(LineAddr line);

  /// Record/refresh a line->way binding (on cache access or fill).
  void record(LineAddr line, WayIdx way);

  /// Drop a line (cache eviction) — the validity extension.
  void invalidate(LineAddr line);

  [[nodiscard]] std::uint32_t entries() const { return capacity_; }
  [[nodiscard]] std::uint64_t searches() const { return searches_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }

  /// Checkpoint/restore of all mutable state; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct Slot {
    bool valid = false;
    LineAddr line = 0;
    WayIdx way = kWayUnknown;
    std::uint64_t lru = 0;
  };

  std::uint32_t capacity_;  // lint:no-state(config; bounds-checked on load)
  std::vector<Slot> slots_;
  std::uint64_t tick_ = 0;
  std::uint64_t searches_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace malec::waydet
