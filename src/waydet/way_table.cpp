#include "waydet/way_table.h"

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::waydet {

WayTable::WayTable(std::uint32_t slots, std::uint32_t lines_per_page,
                   std::uint32_t banks, std::uint32_t assoc)
    : slots_(slots),
      lines_per_page_(lines_per_page),
      banks_(banks),
      assoc_(assoc),
      codes_(static_cast<std::size_t>(slots) * lines_per_page, kCodeUnknown) {
  MALEC_CHECK(slots >= 1);
  MALEC_CHECK(lines_per_page >= 1);
  MALEC_CHECK_MSG(assoc >= 2, "way encoding needs at least 2 ways");
}

WayIdx WayTable::lookup(std::uint32_t slot, std::uint32_t line_in_page,
                        std::uint32_t page_salt) const {
  MALEC_DCHECK(slot < slots_ && line_in_page < lines_per_page_);
  const WayCode c =
      codes_[static_cast<std::size_t>(slot) * lines_per_page_ + line_in_page];
  return decodeWay(c, excluded(line_in_page, page_salt), assoc_);
}

void WayTable::record(std::uint32_t slot, std::uint32_t line_in_page,
                      std::uint32_t page_salt, std::uint32_t way) {
  MALEC_DCHECK(slot < slots_ && line_in_page < lines_per_page_);
  codes_[static_cast<std::size_t>(slot) * lines_per_page_ + line_in_page] =
      encodeWay(way, excluded(line_in_page, page_salt), assoc_);
}

void WayTable::clearLine(std::uint32_t slot, std::uint32_t line_in_page) {
  MALEC_DCHECK(slot < slots_ && line_in_page < lines_per_page_);
  codes_[static_cast<std::size_t>(slot) * lines_per_page_ + line_in_page] =
      kCodeUnknown;
}

void WayTable::invalidateSlot(std::uint32_t slot) {
  MALEC_DCHECK(slot < slots_);
  for (std::uint32_t l = 0; l < lines_per_page_; ++l)
    codes_[static_cast<std::size_t>(slot) * lines_per_page_ + l] =
        kCodeUnknown;
}

std::vector<WayCode> WayTable::entryCodes(std::uint32_t slot) const {
  MALEC_DCHECK(slot < slots_);
  const auto begin =
      codes_.begin() + static_cast<std::ptrdiff_t>(slot) * lines_per_page_;
  return std::vector<WayCode>(begin, begin + lines_per_page_);
}

void WayTable::setEntryCodes(std::uint32_t slot,
                             const std::vector<WayCode>& codes) {
  MALEC_CHECK(slot < slots_);
  MALEC_CHECK(codes.size() == lines_per_page_);
  std::copy(codes.begin(), codes.end(),
            codes_.begin() + static_cast<std::ptrdiff_t>(slot) *
                                 lines_per_page_);
}

std::uint32_t WayTable::validLines(std::uint32_t slot) const {
  MALEC_DCHECK(slot < slots_);
  std::uint32_t n = 0;
  for (std::uint32_t l = 0; l < lines_per_page_; ++l)
    if (codes_[static_cast<std::size_t>(slot) * lines_per_page_ + l] !=
        kCodeUnknown)
      ++n;
  return n;
}

std::uint32_t WayTable::naiveEntryBits() const {
  // 1 valid bit + ceil(log2(assoc)) way bits per line.
  std::uint32_t way_bits = 0;
  while ((1u << way_bits) < assoc_) ++way_bits;
  return (1 + way_bits) * lines_per_page_;
}

void LastEntryRegister::push(std::uint32_t slot, PageId vpage) {
  for (const Item& it : fifo_)
    if (it.slot == slot && it.vpage == vpage) return;
  fifo_.push_back(Item{slot, vpage});
  if (fifo_.size() > depth_) fifo_.erase(fifo_.begin());
}

std::optional<std::uint32_t> LastEntryRegister::match(PageId vpage) const {
  // Newest entries take precedence.
  for (auto it = fifo_.rbegin(); it != fifo_.rend(); ++it)
    if (it->vpage == vpage) return it->slot;
  return std::nullopt;
}


void WayTable::saveState(ckpt::StateWriter& w) const {
  w.u64(codes_.size());
  for (const WayCode c : codes_) w.u8(c);
}

void WayTable::loadState(ckpt::StateReader& r) {
  MALEC_CHECK_MSG(r.u64() == codes_.size(),
                  "way-table checkpoint state does not fit this geometry");
  for (WayCode& c : codes_) c = r.u8();
}

void LastEntryRegister::saveState(ckpt::StateWriter& w) const {
  w.u64(fifo_.size());
  for (const Item& it : fifo_) {
    w.u32(it.slot);
    w.u32(it.vpage);
  }
}

void LastEntryRegister::loadState(ckpt::StateReader& r) {
  fifo_.clear();
  const std::uint64_t n = r.u64();
  MALEC_CHECK_MSG(n <= depth_, "last-entry checkpoint exceeds the FIFO depth");
  for (std::uint64_t i = 0; i < n; ++i) {
    Item it;
    it.slot = r.u32();
    it.vpage = r.u32();
    fifo_.push_back(it);
  }
}

}  // namespace malec::waydet
