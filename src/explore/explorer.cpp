#include "explore/explorer.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/check.h"
#include "sim/presets.h"
#include "sim/suite.h"
#include "store/result_store.h"

namespace malec::explore {

namespace {

/// One searchable parameter: a name tag (for the canonical candidate
/// name), the value list (index 0 = the paper's MALEC default, so the
/// all-zeros candidate IS the MALEC preset) and the setter. Axis and
/// value order are FIXED — the deterministic-search contract hangs on it.
struct Axis {
  const char* tag;
  std::vector<std::uint32_t> values;
  void (*apply)(core::InterfaceConfig&, std::uint32_t);
  std::string (*label)(std::uint32_t);
};

std::string numLabel(std::uint32_t v) { return std::to_string(v); }

const std::vector<Axis>& axes() {
  static const std::vector<Axis> a = {
      {"rb", {3, 1, 2, 4},
       [](core::InterfaceConfig& c, std::uint32_t v) { c.result_buses = v; },
       numLabel},
      {"cs", {2, 0, 1, 4},
       [](core::InterfaceConfig& c, std::uint32_t v) { c.ib_carry_slots = v; },
       numLabel},
      {"gc", {5, 3, 7},
       [](core::InterfaceConfig& c, std::uint32_t v) {
         c.ib_group_comparators = v;
       },
       numLabel},
      {"mw", {3, 0, 1, 7},
       [](core::InterfaceConfig& c, std::uint32_t v) {
         c.merge_window = v;
         c.merge_loads = v > 0;
       },
       numLabel},
      {"sp", {1, 0},
       [](core::InterfaceConfig& c, std::uint32_t v) {
         c.subblocked_pair_read = v != 0;
       },
       numLabel},
      // Way determination: 0 = way tables, 1..3 = WDU 8/16/32, 4 = none.
      {"wd", {0, 1, 2, 3, 4},
       [](core::InterfaceConfig& c, std::uint32_t v) {
         if (v == 0) {
           c.waydet = core::WayDetKind::kWayTables;
         } else if (v <= 3) {
           c.waydet = core::WayDetKind::kWdu;
           c.wdu_entries = 8u << (v - 1);
         } else {
           c.waydet = core::WayDetKind::kNone;
         }
       },
       [](std::uint32_t v) -> std::string {
         if (v == 0) return "wt";
         if (v <= 3) return "wdu" + std::to_string(8u << (v - 1));
         return "none";
       }},
      {"fb", {1, 0},
       [](core::InterfaceConfig& c, std::uint32_t v) {
         c.last_entry_feedback = v != 0;
       },
       numLabel},
      {"lat", {2, 1, 3},
       [](core::InterfaceConfig& c, std::uint32_t v) { c.l1_latency = v; },
       numLabel},
  };
  return a;
}

/// A point in the axis lattice: one value index per axis.
using Point = std::vector<std::uint8_t>;

std::string candidateName(const Point& p) {
  const auto& ax = axes();
  std::string name = "ex";
  for (std::size_t a = 0; a < ax.size(); ++a) {
    name += "_";
    name += ax[a].tag;
    name += ax[a].label(ax[a].values[p[a]]);
  }
  return name;
}

core::InterfaceConfig candidateConfig(const Point& p) {
  const auto& ax = axes();
  core::InterfaceConfig cfg = sim::presetMalec();
  for (std::size_t a = 0; a < ax.size(); ++a)
    ax[a].apply(cfg, ax[a].values[p[a]]);
  cfg.name = candidateName(p);
  return cfg;
}

struct Candidate {
  Point point;
  std::string name;
  // Geometric means over the suite's workloads, set after evaluation.
  double ipc = 0.0;
  double energy_pj = 0.0;
  double cycles = 0.0;
};

enum class Objective { kIpc, kEnergy, kCycles };

std::vector<Objective> parseObjectives(const std::string& s) {
  std::vector<Objective> objs;
  std::size_t at = 0;
  while (at <= s.size()) {
    const std::size_t comma = std::min(s.find(',', at), s.size());
    const std::string tok = s.substr(at, comma - at);
    if (tok == "ipc") {
      objs.push_back(Objective::kIpc);
    } else if (tok == "energy") {
      objs.push_back(Objective::kEnergy);
    } else if (tok == "cycles") {
      objs.push_back(Objective::kCycles);
    } else {
      const std::string msg = "unknown explore objective '" + tok +
                              "' — valid: ipc, energy, cycles";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
    at = comma + 1;
  }
  MALEC_CHECK_MSG(!objs.empty(), "explore needs at least one objective");
  for (std::size_t i = 0; i < objs.size(); ++i)
    for (std::size_t j = i + 1; j < objs.size(); ++j)
      MALEC_CHECK_MSG(objs[i] != objs[j], "duplicate explore objective");
  return objs;
}

/// Objective value with "lower is better" orientation.
double objectiveValue(const Candidate& c, Objective o) {
  switch (o) {
    case Objective::kIpc: return -c.ipc;
    case Objective::kEnergy: return c.energy_pj;
    case Objective::kCycles: return c.cycles;
  }
  return 0.0;
}

bool dominates(const Candidate& a, const Candidate& b,
               const std::vector<Objective>& objs) {
  bool strictly = false;
  for (Objective o : objs) {
    const double va = objectiveValue(a, o), vb = objectiveValue(b, o);
    if (va > vb) return false;
    if (va < vb) strictly = true;
  }
  return strictly;
}

/// Indices (ascending — the lowest-index tie-break) of the Pareto-optimal
/// evaluated candidates. A candidate equal to an earlier one on every
/// objective does not dominate it, so both stay — and ties keep file
/// order, which is evaluation order.
std::vector<std::size_t> frontierIndices(const std::vector<Candidate>& all,
                                         const std::vector<Objective>& objs) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < all.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < all.size() && !dominated; ++j)
      if (j != i && dominates(all[j], all[i], objs)) dominated = true;
    if (!dominated) front.push_back(i);
  }
  return front;
}

double geomean(const std::vector<double>& vs) {
  MALEC_CHECK_MSG(!vs.empty(), "geomean of an empty set");
  double log_sum = 0.0;
  for (double v : vs) {
    MALEC_CHECK_MSG(v > 0.0, "explore metrics must be positive for geomeans");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(vs.size()));
}

/// Strict crash-injection knob for the resume CI/tests: explore exits 17
/// immediately after persisting its N-th fresh round (1-based). Unset /
/// empty / 0 = off; a malformed value aborts (MALEC_FAULT_SPEC rules).
std::uint64_t crashAfterRounds() {
  const char* env = std::getenv("MALEC_EXPLORE_CRASH_AFTER");
  if (env == nullptr || env[0] == '\0') return 0;
  return sim::parseU64Strict(env, "MALEC_EXPLORE_CRASH_AFTER");
}

}  // namespace

int runExplore(const ExploreOptions& opts,
               const std::vector<sim::ResultSink*>& sinks) {
  MALEC_CHECK_MSG(!opts.store.empty(), "explore needs a --store path");
  MALEC_CHECK_MSG(opts.rounds >= 1 && opts.rounds <= kMaxRounds,
                  "explore rounds must be in [1, 64]");
  MALEC_CHECK_MSG(opts.batch >= 1 && opts.batch <= kMaxBatch,
                  "explore batch must be in [1, 256]");
  const std::vector<Objective> objs = parseObjectives(opts.objectives);

  // The base suite supplies workloads, budget, seed and jobs — resolved
  // exactly like a normal run (same fallbacks, same empty-filter error).
  const sim::ExperimentSpec& spec = sim::specRegistry().get(opts.suite);
  MALEC_CHECK_MSG(!spec.custom,
                  "explore needs a (workload x config) grid suite for its "
                  "workload set");
  sim::SuiteOptions sopts;
  sopts.instructions = opts.instructions;
  sopts.seed = opts.seed;
  sopts.jobs = opts.jobs;
  sopts.workload_filter = opts.workload_filter;
  sopts.progress = false;
  sim::SuiteContext ctx{spec, sopts};
  sim::resolveSuiteContext(ctx);
  std::vector<std::string> wl_names;
  for (const auto& wl : ctx.workloads) wl_names.push_back(wl.name);

  // Store state: fresh runs refuse an existing file (like the journal);
  // --resume requires one. Under resume the store must hold EXACTLY the
  // expected round sequence as a prefix — anything else is foreign.
  store::ResultStore rs;
  std::string err;
  if (opts.resume) {
    if (!rs.load(opts.store, err)) MALEC_CHECK_MSG(false, err.c_str());
  } else if (std::filesystem::exists(opts.store)) {
    const std::string msg =
        "store '" + opts.store + "' already exists — resume the "
        "exploration with --resume, or remove/redirect the store";
    MALEC_CHECK_MSG(false, msg.c_str());
  }

  const std::uint64_t crash_after = crashAfterRounds();
  std::uint64_t fresh_rounds = 0;

  std::vector<Candidate> evaluated;   ///< evaluation (= file) order
  std::vector<Point> seen;            ///< dedupe, same order
  /// Store segments accounted for so far — replayed under --resume or
  /// appended by a fresh round. Rounds replay rs.segments()[consumed] as
  /// long as one exists; a leftover after the last round means the store
  /// holds MORE rounds than requested, which resume treats as foreign.
  std::size_t consumed_segments = 0;

  auto isSeen = [&seen](const Point& p) {
    return std::find(seen.begin(), seen.end(), p) != seen.end();
  };

  for (std::uint64_t round = 0; round < opts.rounds; ++round) {
    // --- candidate generation (pure function of prior results) ------------
    std::vector<Point> batch;
    if (round == 0) {
      // The MALEC default, then its single-axis neighbours in axis/value
      // order — the seed batch.
      batch.push_back(Point(axes().size(), 0));
      for (std::size_t a = 0;
           a < axes().size() && batch.size() < opts.batch; ++a)
        for (std::size_t v = 1;
             v < axes()[a].values.size() && batch.size() < opts.batch; ++v) {
          Point p(axes().size(), 0);
          p[a] = static_cast<std::uint8_t>(v);
          batch.push_back(p);
        }
    } else {
      // Single-axis neighbours of the current frontier, frontier points in
      // evaluation order, axes/values in table order, first-appearance
      // dedupe — lowest index wins every tie.
      const std::vector<std::size_t> front = frontierIndices(evaluated, objs);
      for (std::size_t fi : front) {
        const Point& base = evaluated[fi].point;
        for (std::size_t a = 0; a < axes().size(); ++a)
          for (std::size_t v = 0; v < axes()[a].values.size(); ++v) {
            if (v == base[a]) continue;
            Point p = base;
            p[a] = static_cast<std::uint8_t>(v);
            if (isSeen(p) ||
                std::find(batch.begin(), batch.end(), p) != batch.end())
              continue;
            batch.push_back(std::move(p));
            if (batch.size() >= opts.batch) break;
          }
        if (batch.size() >= opts.batch) break;
      }
      if (batch.empty()) {
        if (opts.progress)
          std::fprintf(stderr, "explore: frontier converged after %llu "
                       "rounds\n", static_cast<unsigned long long>(round));
        break;
      }
    }

    std::vector<core::InterfaceConfig> cfgs;
    std::vector<std::string> cfg_names;
    for (const Point& p : batch) {
      cfgs.push_back(candidateConfig(p));
      cfg_names.push_back(cfgs.back().name);
    }
    const std::string round_suite =
        "explore:" + spec.name + ":round" + std::to_string(round);
    const std::uint64_t fp = sim::gridFingerprintParts(
        round_suite, ctx.instructions, ctx.seed, wl_names, cfg_names);

    // --- evaluate: decode the stored segment, or simulate + append --------
    std::vector<std::vector<sim::RunOutput>> results;
    if (consumed_segments < rs.segments().size()) {
      const store::StoreSegment& seg = rs.segments()[consumed_segments];
      if (seg.fingerprint != fp) {
        const std::string msg =
            "store '" + opts.store + "' is foreign to this exploration: "
            "segment " + std::to_string(consumed_segments) + " ('" +
            seg.suite + "', fingerprint " + std::to_string(seg.fingerprint) +
            ") does not match the expected round '" + round_suite +
            "' (fingerprint " + std::to_string(fp) + ") — same suite, "
            "--filter, budget, seed, batch and objectives required";
        MALEC_CHECK_MSG(false, msg.c_str());
      }
      MALEC_CHECK_MSG(seg.run_count == wl_names.size() * cfgs.size(),
                      "stored explore round has the wrong run count");
      // Segment runs are in matrix order; find its base row index.
      std::size_t base = 0;
      for (std::size_t s = 0; s < consumed_segments; ++s)
        base += rs.segments()[s].run_count;
      results.assign(wl_names.size(), {});
      for (std::size_t w = 0; w < wl_names.size(); ++w) {
        results[w].resize(cfgs.size());
        for (std::size_t c = 0; c < cfgs.size(); ++c) {
          sim::RunOutput out;
          std::string decode_err;
          const bool ok =
              rs.decodeRun(base + w * cfgs.size() + c, out, decode_err);
          MALEC_CHECK_MSG(ok, "stored explore run failed to decode");
          results[w][c] = std::move(out);
        }
      }
      ++consumed_segments;
      if (opts.progress)
        std::fprintf(stderr, "explore: round %llu restored from store\n",
                     static_cast<unsigned long long>(round));
    } else {
      results = sim::runMatrixParallel(ctx.workloads, cfgs, ctx.instructions,
                                       ctx.seed, ctx.jobs);
      std::vector<store::ResultStore::RunEntry> entries;
      for (std::size_t w = 0; w < wl_names.size(); ++w)
        for (std::size_t c = 0; c < cfgs.size(); ++c)
          entries.push_back({wl_names[w], cfg_names[c], &results[w][c], {}});
      store::StoreSegment seg;
      seg.suite = round_suite;
      seg.fingerprint = fp;
      seg.instructions = ctx.instructions;
      seg.seed = ctx.seed;
      rs.appendSegment(seg, entries);
      if (!rs.save(opts.store, err)) MALEC_CHECK_MSG(false, err.c_str());
      // The appended segment is this round's — consumed, so the next
      // round never mistakes it for a stored round to replay.
      ++consumed_segments;
      ++fresh_rounds;
      if (opts.progress)
        std::fprintf(stderr, "explore: round %llu evaluated %zu candidates\n",
                     static_cast<unsigned long long>(round), cfgs.size());
      if (crash_after > 0 && fresh_rounds == crash_after) {
        std::fprintf(stderr,
                     "explore: injected crash after %llu fresh rounds\n",
                     static_cast<unsigned long long>(fresh_rounds));
        std::fflush(nullptr);
        ::_exit(17);
      }
    }

    // --- score the batch ---------------------------------------------------
    for (std::size_t c = 0; c < batch.size(); ++c) {
      Candidate cand;
      cand.point = batch[c];
      cand.name = cfg_names[c];
      std::vector<double> ipcs, energies, cycles;
      for (std::size_t w = 0; w < wl_names.size(); ++w) {
        ipcs.push_back(results[w][c].ipc);
        energies.push_back(results[w][c].total_pj);
        cycles.push_back(static_cast<double>(results[w][c].cycles));
      }
      cand.ipc = geomean(ipcs);
      cand.energy_pj = geomean(energies);
      cand.cycles = geomean(cycles);
      evaluated.push_back(std::move(cand));
      seen.push_back(batch[c]);
    }
  }

  if (opts.resume && consumed_segments < rs.segments().size()) {
    const std::string msg =
        "store '" + opts.store + "' holds " +
        std::to_string(rs.segments().size()) + " explore rounds but only " +
        std::to_string(consumed_segments) + " were requested — raise "
        "--rounds or query the store as-is";
    MALEC_CHECK_MSG(false, msg.c_str());
  }

  // --- emit the frontier ----------------------------------------------------
  sim::SuiteInfo info;
  info.name = "explore:" + spec.name;
  info.title = "adaptive design-space exploration over '" + spec.title + "'";
  info.instructions = ctx.instructions;
  info.seed = ctx.seed;
  info.jobs = ctx.jobs;
  for (sim::ResultSink* s : sinks) s->beginSuite(info);

  const std::vector<std::size_t> front = frontierIndices(evaluated, objs);
  // Display order: best IPC first; exact ties keep evaluation order.
  std::vector<std::size_t> order = front;
  std::stable_sort(order.begin(), order.end(),
                   [&evaluated](std::size_t a, std::size_t b) {
                     return evaluated[a].ipc > evaluated[b].ipc;
                   });
  sim::Table t("Pareto frontier (" + opts.objectives + ") — " +
                   std::to_string(evaluated.size()) + " candidates evaluated",
               {"IPC", "energy [pJ]", "cycles"});
  for (std::size_t i : order)
    t.addRow(evaluated[i].name,
             {evaluated[i].ipc, evaluated[i].energy_pj, evaluated[i].cycles});
  for (sim::ResultSink* s : sinks) s->table(t, "explore_frontier", 4);
  for (sim::ResultSink* s : sinks)
    s->note("explored " + std::to_string(evaluated.size()) + " candidates (" +
            std::to_string(rs.segments().size()) + " rounds, objectives " +
            opts.objectives + "); every run is stored in '" + opts.store +
            "' — `malec_bench query --store " + opts.store + "`\n");
  for (sim::ResultSink* s : sinks) s->endSuite();
  return 0;
}

}  // namespace malec::explore
