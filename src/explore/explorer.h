// Adaptive design-space explorer: `malec_bench explore` — the driver that
// decides WHICH configurations to run next (ROADMAP open item 3's search
// half), on top of the result store.
//
// The explorer walks the MALEC parameter axes (result buses, input-buffer
// carry slots / comparators, merge window, sub-blocked reads, way
// determination, feedback, L1 latency — the knobs the paper's Sec. VI
// ablations vary) toward the IPC-vs-energy Pareto frontier: each round it
// evaluates a fixed-size batch of candidates over the suite's workloads
// through the ordinary runMatrixParallel path, appends the batch to a
// `.mstore` as one segment, and generates the next batch from the current
// frontier's single-axis neighbours.
//
// Determinism contract (docs/ARCHITECTURE.md): the search is a pure
// function of (suite grid, seed, budget, batch, rounds) — fixed axis and
// value order, first-appearance candidate dedupe, lowest-index tie-breaks
// — so repeated runs produce byte-identical stores and frontier reports.
// Resume replays that function against the store: a round whose segment
// (keyed by its grid fingerprint) already exists is decoded instead of
// simulated, so explore → crash → `--resume` lands on the byte-identical
// frontier. A store that does not match the expected round sequence is
// foreign and a hard error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sinks.h"

namespace malec::explore {

struct ExploreOptions {
  std::string suite;       ///< base spec: supplies workloads/budget/seed
  std::string store;       ///< `.mstore` every evaluation lands in
  std::string objectives = "ipc,energy";  ///< comma list: ipc|energy|cycles
  std::uint64_t rounds = 4;
  std::uint64_t batch = 8;         ///< candidates evaluated per round
  std::uint64_t instructions = 0;  ///< 0 = suite default / MALEC_INSTR
  std::uint64_t seed = 0;          ///< 0 = spec seed
  unsigned jobs = 0;               ///< 0 = MALEC_JOBS / hardware
  std::string workload_filter;
  bool resume = false;  ///< continue from an existing store
  bool progress = true;
};

/// Hard caps on the search knobs (strict-parsed like every sweep knob).
inline constexpr std::uint64_t kMaxRounds = 64;
inline constexpr std::uint64_t kMaxBatch = 256;

/// Run the exploration; emits the frontier table + a summary note through
/// `sinks` and returns the process exit code (0 on success). Every
/// validation failure — unknown suite/objective, out-of-range knobs, a
/// pre-existing store without --resume, --resume without a store, a
/// foreign/corrupt store — is a hard error.
[[nodiscard]] int runExplore(const ExploreOptions& opts,
                             const std::vector<sim::ResultSink*>& sinks);

}  // namespace malec::explore
