// Journal → store merge: turn a coordinated sweep's durable artifacts —
// its `.mjournal` completion records and/or stray worker `.mres` files —
// into a `.mstore` segment, WITHOUT re-running anything.
//
// The merge re-resolves the suite grid exactly like the coordinator did
// (same spec, --filter, budget, seed) and recomputes the grid fingerprint;
// a journal or result file bound to any other fingerprint is a hard error
// ("foreign"), and the merge refuses to write unless every grid cell has a
// validated result. The stored segment carries the workers' encoded
// RunOutput bytes verbatim, so the merged store is byte-identical to the
// one a live `--sink store` sweep writes — CI diffs exactly that.
#pragma once

#include <string>
#include <vector>

#include "sim/suite.h"

namespace malec::sweep {

/// Merge `journal_path` (may be empty) and `mres_paths` into the store at
/// `store_path`, as one segment of spec's resolved grid. Every validation
/// failure — unreadable/foreign/torn-beyond-repair journal, foreign or
/// conflicting result files, an incomplete grid, an invalid existing
/// store, a fingerprint already stored — is a hard error.
void mergeIntoStore(const sim::ExperimentSpec& spec,
                    const sim::SuiteOptions& opts,
                    const std::string& journal_path,
                    const std::vector<std::string>& mres_paths,
                    const std::string& store_path);

}  // namespace malec::sweep
