#include "store/result_store.h"

#include <cstring>

#include "ckpt/state_io.h"
#include "common/check.h"
#include "sweep/result_codec.h"

namespace malec::store {

namespace {

/// Doubles are compared as bit patterns everywhere in this file: the
/// directory is a cache of the blob's values, and "equal" means the exact
/// bits a re-run would produce — an epsilon here would let a corrupted
/// index hide behind rounding.
std::uint64_t bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

}  // namespace

bool ResultStore::load(const std::string& path, std::string& err) {
  segments_.clear();
  runs_.clear();
  ckpt::StateReader r(path, kStoreMagic, kStoreVersion, "result store");
  if (!r.ok()) {
    err = r.error();
    return false;
  }

  r.openSection("store_meta");
  const std::uint32_t segment_count = r.u32();
  const std::uint64_t run_count = r.u64();
  r.endSection();

  r.openSection("segments");
  segments_.reserve(segment_count);
  runs_.reserve(static_cast<std::size_t>(run_count));
  for (std::uint32_t s = 0; s < segment_count; ++s) {
    StoreSegment seg;
    seg.suite = r.str();
    seg.fingerprint = r.u64();
    seg.instructions = r.u64();
    seg.seed = r.u64();
    seg.run_count = r.u32();
    for (const StoreSegment& prev : segments_) {
      if (prev.fingerprint == seg.fingerprint) {
        err = "'" + path + "': duplicate segment fingerprint " +
              std::to_string(seg.fingerprint) + " — the store is corrupt";
        return false;
      }
    }
    for (std::uint32_t i = 0; i < seg.run_count; ++i) {
      StoreRun run;
      run.segment = s;
      run.seed = seg.seed;
      run.instructions = seg.instructions;
      const std::uint64_t blob_len = r.u64();
      run.blob.resize(static_cast<std::size_t>(blob_len));
      r.bytes(run.blob.data(), run.blob.size());
      runs_.push_back(std::move(run));
    }
    segments_.push_back(std::move(seg));
  }
  r.endSection();
  if (runs_.size() != run_count) {
    err = "'" + path + "': store_meta promises " + std::to_string(run_count) +
          " runs but the segments hold " + std::to_string(runs_.size()) +
          " — the store is corrupt";
    return false;
  }

  // The columnar directory, cross-checked field by field against the
  // decoded blobs: a query must never answer from an index the payload
  // disagrees with.
  r.openSection("columns");
  const std::uint64_t dir_count = r.u64();
  if (dir_count != run_count) {
    err = "'" + path + "': column directory holds " +
          std::to_string(dir_count) + " entries for " +
          std::to_string(run_count) + " runs — the store is corrupt";
    return false;
  }
  for (StoreRun& run : runs_) run.segment = r.u32();
  for (StoreRun& run : runs_) run.workload = r.str();
  for (StoreRun& run : runs_) run.config = r.str();
  for (StoreRun& run : runs_) run.seed = r.u64();
  for (StoreRun& run : runs_) run.instructions = r.u64();
  for (StoreRun& run : runs_) run.cycles = r.u64();
  for (StoreRun& run : runs_) run.ipc = r.f64();
  for (StoreRun& run : runs_) run.total_pj = r.f64();
  r.endSection();

  std::size_t at = 0;
  for (std::uint32_t s = 0; s < segment_count; ++s) {
    const StoreSegment& seg = segments_[s];
    for (std::uint32_t i = 0; i < seg.run_count; ++i, ++at) {
      const StoreRun& run = runs_[at];
      sim::RunOutput out;
      std::string decode_err;
      const bool index_ok =
          run.segment == s && run.seed == seg.seed &&
          run.instructions == seg.instructions &&
          sweep::decodeRunOutput(run.blob.data(), run.blob.size(), out,
                                 decode_err) &&
          out.benchmark == run.workload && out.config == run.config &&
          out.cycles == run.cycles && bits(out.ipc) == bits(run.ipc) &&
          bits(out.total_pj) == bits(run.total_pj);
      if (!index_ok) {
        err = "'" + path + "': column directory disagrees with run " +
              std::to_string(at) + "'s blob" +
              (decode_err.empty() ? "" : " (" + decode_err + ")") +
              " — the store is corrupt";
        return false;
      }
    }
  }
  return true;
}

void ResultStore::appendSegment(const StoreSegment& meta,
                                const std::vector<RunEntry>& runs) {
  MALEC_CHECK_MSG(!runs.empty(), "cannot append an empty store segment");
  if (findSegment(meta.fingerprint) != nullptr) {
    const std::string msg =
        "store already holds a segment for grid fingerprint " +
        std::to_string(meta.fingerprint) + " (suite '" + meta.suite +
        "') — appending it again would double every query row";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  StoreSegment seg = meta;
  seg.run_count = static_cast<std::uint32_t>(runs.size());
  const auto segment_idx = static_cast<std::uint32_t>(segments_.size());
  for (const RunEntry& e : runs) {
    MALEC_CHECK_MSG(e.out != nullptr, "store segment entry without a result");
    StoreRun run;
    run.segment = segment_idx;
    run.workload = e.workload;
    run.config = e.config;
    run.seed = seg.seed;
    run.instructions = seg.instructions;
    run.cycles = e.out->cycles;
    run.ipc = e.out->ipc;
    run.total_pj = e.out->total_pj;
    run.blob = e.blob.empty() ? sweep::encodeRunOutput(*e.out) : e.blob;
    runs_.push_back(std::move(run));
  }
  segments_.push_back(std::move(seg));
}

bool ResultStore::save(const std::string& path, std::string& err) const {
  ckpt::StateWriter w(kStoreMagic, kStoreVersion);

  w.beginSection("store_meta");
  w.u32(static_cast<std::uint32_t>(segments_.size()));
  w.u64(static_cast<std::uint64_t>(runs_.size()));
  w.endSection();

  w.beginSection("segments");
  std::size_t at = 0;
  for (const StoreSegment& seg : segments_) {
    w.str(seg.suite);
    w.u64(seg.fingerprint);
    w.u64(seg.instructions);
    w.u64(seg.seed);
    w.u32(seg.run_count);
    for (std::uint32_t i = 0; i < seg.run_count; ++i, ++at) {
      const StoreRun& run = runs_[at];
      w.u64(static_cast<std::uint64_t>(run.blob.size()));
      w.bytes(run.blob.data(), run.blob.size());
    }
  }
  w.endSection();

  w.beginSection("columns");
  w.u64(static_cast<std::uint64_t>(runs_.size()));
  for (const StoreRun& run : runs_) w.u32(run.segment);
  for (const StoreRun& run : runs_) w.str(run.workload);
  for (const StoreRun& run : runs_) w.str(run.config);
  for (const StoreRun& run : runs_) w.u64(run.seed);
  for (const StoreRun& run : runs_) w.u64(run.instructions);
  for (const StoreRun& run : runs_) w.u64(run.cycles);
  for (const StoreRun& run : runs_) w.f64(run.ipc);
  for (const StoreRun& run : runs_) w.f64(run.total_pj);
  w.endSection();

  return w.writeTo(path, err);
}

const StoreSegment* ResultStore::findSegment(std::uint64_t fingerprint) const {
  for (const StoreSegment& seg : segments_)
    if (seg.fingerprint == fingerprint) return &seg;
  return nullptr;
}

bool ResultStore::decodeRun(std::size_t idx, sim::RunOutput& out,
                            std::string& err) const {
  MALEC_CHECK_MSG(idx < runs_.size(), "store run index out of range");
  return sweep::decodeRunOutput(runs_[idx].blob.data(), runs_[idx].blob.size(),
                                out, err);
}

}  // namespace malec::store
