#include "store/query.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "sim/sinks.h"

namespace malec::store {

namespace {

constexpr const char* kColumns[] = {"suite",        "workload", "config",
                                    "seed",         "instructions",
                                    "cycles",       "ipc",      "energy_pj"};

std::string fmtF(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

/// One filtered row before formatting: strings + the numeric sort keys.
struct Row {
  std::string suite;
  std::string workload;
  std::string config;
  std::uint64_t seed = 0;
  std::uint64_t instructions = 0;
  double cycles = 0.0;  ///< double so plain and geomean rows share a type
  double ipc = 0.0;
  double energy_pj = 0.0;
  std::uint64_t runs = 0;  ///< group mode: rows folded into this one
};

void checkColumn(const std::string& name,
                 const std::vector<std::string>& valid, const char* what) {
  if (std::find(valid.begin(), valid.end(), name) != valid.end()) return;
  std::string msg = std::string("unknown ") + what + " column '" + name +
                    "' — valid columns:";
  for (const std::string& c : valid) msg += " " + c;
  MALEC_CHECK_MSG(false, msg.c_str());
}

/// Sort key accessors. Strings compare lexicographically, numbers
/// numerically; the sort itself is stable so equal keys keep file order.
bool rowLess(const Row& a, const Row& b, const std::string& key) {
  if (key == "suite") return a.suite < b.suite;
  if (key == "workload") return a.workload < b.workload;
  if (key == "config") return a.config < b.config;
  if (key == "seed") return a.seed < b.seed;
  if (key == "instructions") return a.instructions < b.instructions;
  if (key == "cycles") return a.cycles < b.cycles;
  if (key == "ipc") return a.ipc < b.ipc;
  if (key == "energy_pj") return a.energy_pj < b.energy_pj;
  if (key == "runs") return a.runs < b.runs;
  return false;
}

std::string cellFor(const Row& r, const std::string& col, bool grouped) {
  if (col == "suite") return r.suite;
  if (col == "workload") return r.workload;
  if (col == "config") return r.config;
  if (col == "seed") return std::to_string(r.seed);
  if (col == "instructions") return std::to_string(r.instructions);
  if (col == "runs") return std::to_string(r.runs);
  // A geomean of integer cycle counts is fractional; plain rows keep the
  // integer rendering.
  if (col == "cycles")
    return grouped ? fmtF(r.cycles, 1)
                   : std::to_string(static_cast<std::uint64_t>(r.cycles));
  if (col == "ipc") return fmtF(r.ipc, 4);
  if (col == "energy_pj") return fmtF(r.energy_pj, 3);
  MALEC_CHECK_MSG(false, "unreachable: unknown query column");
  return {};
}

bool columnIsNumeric(const std::string& col) {
  return col != "suite" && col != "workload" && col != "config";
}

}  // namespace

const std::vector<std::string>& queryColumns() {
  static const std::vector<std::string> cols(std::begin(kColumns),
                                             std::end(kColumns));
  return cols;
}

QueryResult runQuery(const ResultStore& rs, const QueryOptions& q) {
  // Filter in file order.
  std::vector<Row> rows;
  for (const StoreRun& run : rs.runs()) {
    const StoreSegment& seg = rs.segments()[run.segment];
    if (!q.suite_contains.empty() &&
        seg.suite.find(q.suite_contains) == std::string::npos)
      continue;
    if (!q.workload_contains.empty() &&
        run.workload.find(q.workload_contains) == std::string::npos)
      continue;
    if (!q.config_contains.empty() &&
        run.config.find(q.config_contains) == std::string::npos)
      continue;
    if (q.have_seed && run.seed != q.seed) continue;
    Row r;
    r.suite = seg.suite;
    r.workload = run.workload;
    r.config = run.config;
    r.seed = run.seed;
    r.instructions = run.instructions;
    r.cycles = static_cast<double>(run.cycles);
    r.ipc = run.ipc;
    r.energy_pj = run.total_pj;
    r.runs = 1;
    rows.push_back(std::move(r));
  }

  std::vector<std::string> cols;
  if (q.group_geomean) {
    // Fold rows per config, first-appearance order (deterministic: file
    // order decides which config comes first).
    std::vector<Row> grouped;
    for (const Row& r : rows) {
      MALEC_CHECK_MSG(r.cycles > 0 && r.ipc > 0 && r.energy_pj > 0,
                      "group-geomean needs positive cycles/ipc/energy in "
                      "every grouped run");
      Row* g = nullptr;
      for (Row& cand : grouped)
        if (cand.config == r.config) { g = &cand; break; }
      if (g == nullptr) {
        grouped.push_back(Row{});
        g = &grouped.back();
        g->config = r.config;
      }
      // Accumulate log-sums; finalized below.
      g->cycles += std::log(r.cycles);
      g->ipc += std::log(r.ipc);
      g->energy_pj += std::log(r.energy_pj);
      g->runs += 1;
    }
    for (Row& g : grouped) {
      const double n = static_cast<double>(g.runs);
      g.cycles = std::exp(g.cycles / n);
      g.ipc = std::exp(g.ipc / n);
      g.energy_pj = std::exp(g.energy_pj / n);
    }
    rows = std::move(grouped);
    cols = {"config", "runs", "cycles", "ipc", "energy_pj"};
  } else if (q.select.empty()) {
    cols = queryColumns();
  } else {
    for (const std::string& s : q.select) checkColumn(s, queryColumns(),
                                                      "select");
    cols = q.select;
  }

  if (!q.sort_by.empty()) {
    checkColumn(q.sort_by, cols, "sort");
    std::stable_sort(rows.begin(), rows.end(),
                     [&q](const Row& a, const Row& b) {
                       return q.sort_desc ? rowLess(b, a, q.sort_by)
                                          : rowLess(a, b, q.sort_by);
                     });
  }
  if (q.limit > 0 && rows.size() > q.limit) rows.resize(q.limit);

  QueryResult out;
  out.columns = cols;
  for (const std::string& c : cols) out.numeric.push_back(columnIsNumeric(c));
  for (const Row& r : rows) {
    std::vector<std::string> cells;
    cells.reserve(cols.size());
    for (const std::string& c : cols)
      cells.push_back(cellFor(r, c, q.group_geomean));
    out.rows.push_back(std::move(cells));
  }
  return out;
}

void printQueryTable(const QueryResult& r, std::FILE* out) {
  std::vector<std::size_t> width;
  for (const std::string& c : r.columns) width.push_back(c.size());
  for (const auto& row : r.rows)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) std::fputs("  ", out);
      const int w = static_cast<int>(width[i]);
      if (r.numeric[i])
        std::fprintf(out, "%*s", w, cells[i].c_str());
      else
        std::fprintf(out, "%-*s", w, cells[i].c_str());
    }
    std::fputc('\n', out);
  };
  line(r.columns);
  std::string rule;
  for (std::size_t i = 0; i < r.columns.size(); ++i) {
    if (i > 0) rule += "  ";
    rule.append(width[i], '-');
  }
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : r.rows) line(row);
  std::fprintf(out, "(%zu rows)\n", r.rows.size());
}

void printQueryJson(const QueryResult& r, std::FILE* out) {
  for (const auto& row : r.rows) {
    std::string line = "{";
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += ",";
      line += "\"" + sim::jsonEscape(r.columns[i]) + "\":";
      if (r.numeric[i])
        line += row[i];
      else
        line += "\"" + sim::jsonEscape(row[i]) + "\"";
    }
    line += "}";
    std::fprintf(out, "%s\n", line.c_str());
  }
}

}  // namespace malec::store
