// StoreSink: the ResultSink that lands a suite's runs in a `.mstore`
// result store — the durable sibling of the console/CSV/JSON sinks
// (`malec_bench --sink store --store results.mstore`).
//
// The sink collects every runResult() record during the suite and, at
// endSuite(), appends them to the store as ONE segment keyed by the
// suite's grid fingerprint: load existing store (an invalid existing file
// is a hard error — a corrupt store must never be silently replaced),
// appendSegment, atomic save. Both the in-process matrix path and the
// sharded coordinator emit runs in the same matrix order, so the segment
// a coordinated sweep writes is byte-identical to the in-process one —
// CI diffs exactly that.
#pragma once

#include <string>
#include <vector>

#include "sim/sinks.h"
#include "store/result_store.h"

namespace malec::store {

class StoreSink : public sim::ResultSink {
 public:
  explicit StoreSink(std::string path) : path_(std::move(path)) {}

  void beginSuite(const sim::SuiteInfo& info) override;
  void runResult(const sim::RunRecord& rec) override;
  void table(const sim::Table&, const std::string&, int) override {}
  void endSuite() override;

 private:
  /// Owned copy of one runResult() record (the RunRecord's references are
  /// only valid during the call).
  struct Collected {
    std::string workload;
    std::string config;
    sim::RunOutput out;
  };

  std::string path_;
  sim::SuiteInfo info_;
  std::vector<Collected> collected_;
};

}  // namespace malec::store
