#include "store/store_merge.h"

#include <cstdio>
#include <filesystem>

#include "ckpt/state_io.h"
#include "common/check.h"
#include "store/result_store.h"
#include "sweep/journal.h"
#include "sweep/result_codec.h"

namespace malec::sweep {

namespace {

/// Read one `.mres` file's (fingerprint, task, attempt) binding without
/// yet validating it against an expectation — the merge discovers which
/// task a stray result file belongs to, then revalidates via
/// readResultFile with exactly that binding.
void peekBinding(const std::string& path, std::uint64_t& fingerprint,
                 std::uint32_t& task, std::uint32_t& attempt) {
  ckpt::StateReader r(path);
  if (!r.ok()) MALEC_CHECK_MSG(false, r.error().c_str());
  if (!r.hasSection("binding")) {
    const std::string msg = "'" + path + "' is not a sweep result file";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  r.openSection("binding");
  fingerprint = r.u64();
  task = r.u32();
  attempt = r.u32();
  r.endSection();
}

}  // namespace

void mergeIntoStore(const sim::ExperimentSpec& spec,
                    const sim::SuiteOptions& opts,
                    const std::string& journal_path,
                    const std::vector<std::string>& mres_paths,
                    const std::string& store_path) {
  MALEC_CHECK_MSG(!journal_path.empty() || !mres_paths.empty(),
                  "merge needs at least one source (--journal / --mres)");
  MALEC_CHECK_MSG(!spec.custom,
                  "merge rebuilds (workload x config) grids only");

  sim::SuiteContext ctx{spec, opts};
  sim::resolveSuiteContext(ctx);
  MALEC_CHECK_MSG(ctx.spec.configs != nullptr,
                  "spec without custom body needs a configuration set");
  const std::uint64_t fingerprint = sim::gridFingerprint(ctx);
  const std::size_t task_count = ctx.workloads.size() * ctx.configs.size();

  // One blob slot per grid cell; empty = not yet sourced.
  std::vector<std::vector<std::uint8_t>> blobs(task_count);

  if (!journal_path.empty()) {
    const JournalScan scan = scanJournal(journal_path);
    if (!scan.ok) MALEC_CHECK_MSG(false, scan.error.c_str());
    if (scan.fingerprint != fingerprint) {
      const std::string msg =
          "journal '" + journal_path + "' binds to a different grid "
          "(fingerprint " + std::to_string(scan.fingerprint) + ", expected " +
          std::to_string(fingerprint) + ") — same suite, budget, seed and "
          "--filter required";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
    MALEC_CHECK_MSG(scan.task_count == task_count,
                    "journal task count disagrees with the resolved grid");
    for (const JournalRecord& rec : scan.records) {
      if (rec.type != RecordType::kComplete) continue;
      MALEC_CHECK_MSG(rec.task < task_count,
                      "journal completion for a task outside the grid");
      blobs[rec.task] = rec.blob;
    }
  }

  for (const std::string& path : mres_paths) {
    std::uint64_t got_fp = 0;
    std::uint32_t task = 0, attempt = 0;
    peekBinding(path, got_fp, task, attempt);
    if (got_fp != fingerprint) {
      const std::string msg =
          "result file '" + path + "' binds to a different grid "
          "(fingerprint " + std::to_string(got_fp) + ", expected " +
          std::to_string(fingerprint) + ")";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
    MALEC_CHECK_MSG(task < task_count,
                    "result file binds to a task outside the grid");
    sim::RunOutput out;
    std::vector<std::uint8_t> blob;
    std::string err;
    if (!readResultFile(path, fingerprint, task, attempt, out, blob, err))
      MALEC_CHECK_MSG(false, err.c_str());
    if (!blobs[task].empty() && blobs[task] != blob) {
      const std::string msg =
          "conflicting results for task " + std::to_string(task) + " ('" +
          path + "' disagrees with an earlier source)";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
    blobs[task] = std::move(blob);
  }

  std::size_t missing = 0;
  for (const auto& b : blobs)
    if (b.empty()) ++missing;
  if (missing > 0) {
    const std::string msg =
        "merge is incomplete: " + std::to_string(missing) + " of " +
        std::to_string(task_count) + " grid cells have no result — finish "
        "the sweep (--resume) before merging";
    MALEC_CHECK_MSG(false, msg.c_str());
  }

  // Decode every blob (strict validation + the column-directory values),
  // then append one segment in matrix order with the original bytes.
  std::vector<sim::RunOutput> outs(task_count);
  std::vector<store::ResultStore::RunEntry> entries;
  entries.reserve(task_count);
  for (std::size_t t = 0; t < task_count; ++t) {
    std::string err;
    if (!sweep::decodeRunOutput(blobs[t].data(), blobs[t].size(), outs[t],
                                err)) {
      const std::string msg =
          "task " + std::to_string(t) + " result blob is invalid: " + err;
      MALEC_CHECK_MSG(false, msg.c_str());
    }
    store::ResultStore::RunEntry e;
    e.workload = ctx.workloads[t / ctx.configs.size()].name;
    e.config = ctx.configs[t % ctx.configs.size()].name;
    e.out = &outs[t];
    e.blob = std::move(blobs[t]);
    entries.push_back(std::move(e));
  }

  store::ResultStore rs;
  std::string err;
  if (std::filesystem::exists(store_path)) {
    if (!rs.load(store_path, err)) MALEC_CHECK_MSG(false, err.c_str());
    if (rs.findSegment(fingerprint) != nullptr) {
      const std::string msg =
          "store '" + store_path + "' already holds this exact grid "
          "(fingerprint " + std::to_string(fingerprint) + ")";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
  }
  store::StoreSegment seg;
  seg.suite = ctx.spec.name;
  seg.fingerprint = fingerprint;
  seg.instructions = ctx.instructions;
  seg.seed = ctx.seed;
  rs.appendSegment(seg, entries);
  if (!rs.save(store_path, err)) MALEC_CHECK_MSG(false, err.c_str());

  std::printf("merged %zu runs of suite '%s' into '%s' (fingerprint %llu)\n",
              task_count, ctx.spec.name.c_str(), store_path.c_str(),
              static_cast<unsigned long long>(fingerprint));
}

}  // namespace malec::sweep
