#include "store/store_sink.h"

#include <cstdio>
#include <filesystem>

#include "common/check.h"

namespace malec::store {

void StoreSink::beginSuite(const sim::SuiteInfo& info) {
  info_ = info;
  collected_.clear();
}

void StoreSink::runResult(const sim::RunRecord& rec) {
  collected_.push_back({rec.workload, rec.config, rec.out});
}

void StoreSink::endSuite() {
  if (collected_.empty()) {
    // Custom suites have no grid and announce no runs — nothing durable
    // to keep, but say so instead of silently writing nothing.
    std::fprintf(stderr,
                 "store sink: suite '%s' produced no grid runs — '%s' not "
                 "touched\n",
                 info_.name.c_str(), path_.c_str());
    return;
  }
  MALEC_CHECK_MSG(info_.fingerprint != 0,
                  "store sink: suite announced runs without a grid "
                  "fingerprint");

  // Load-append-save: the store is rewritten atomically, so its bytes stay
  // a pure function of the segment history. An existing file that does not
  // validate is a HARD error — appending would destroy whatever it was.
  ResultStore rs;
  std::string err;
  if (std::filesystem::exists(path_)) {
    if (!rs.load(path_, err)) MALEC_CHECK_MSG(false, err.c_str());
    if (rs.findSegment(info_.fingerprint) != nullptr) {
      const std::string msg =
          "store '" + path_ + "' already holds this exact grid (suite '" +
          info_.name + "', fingerprint " + std::to_string(info_.fingerprint) +
          ") — re-appending would double every query row; query it instead, "
          "or write to a fresh store";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
  }

  StoreSegment seg;
  seg.suite = info_.name;
  seg.fingerprint = info_.fingerprint;
  seg.instructions = info_.instructions;
  seg.seed = info_.seed;
  std::vector<ResultStore::RunEntry> entries;
  entries.reserve(collected_.size());
  for (const Collected& c : collected_)
    entries.push_back({c.workload, c.config, &c.out, {}});
  rs.appendSegment(seg, entries);
  if (!rs.save(path_, err)) MALEC_CHECK_MSG(false, err.c_str());
}

}  // namespace malec::store
