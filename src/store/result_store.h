// The `.mstore` v1 result store: a durable, queryable home for sweep
// results — the layer between "a sweep printed tables" and "thousands of
// configs, millions of runs" (ROADMAP open item 3).
//
// A store is a StateIO container (src/ckpt/state_io.h: magic, version,
// payload checksum, atomic temp+rename writes — the same machinery as
// `.mckpt`/`.mres`, under the "MSTR" magic) holding append-only SEGMENTS.
// One segment = one executed grid: its suite name, resolved budget and
// seed, the grid fingerprint (sim::gridFingerprintParts — the identity the
// sweep journal binds to) and every cell's full RunOutput encoded with the
// sweep result codec. Beside the segments sits a columnar DIRECTORY
// (workload / config / seed / budget / cycles / IPC / energy per run) so
// queries never decode a blob; the directory is cross-checked against the
// blobs at load, so a store whose index disagrees with its payload is a
// hard error, not a wrong answer.
//
// Like every MALEC format the store is strict: bad magic, version skew,
// truncation, checksum mismatch, count mismatches, duplicate segment
// fingerprints and index/blob disagreement all fail loudly. Byte-level
// layout: docs/FILE_FORMATS.md. Writes rewrite the whole file atomically —
// append = load + appendSegment + save — which keeps the on-disk bytes a
// pure function of the segment history, the property the CI determinism
// byte-diffs pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace malec::store {

/// Magic bytes + version identifying a MALEC result store ("MSTR").
inline constexpr std::uint32_t kStoreMagic = 0x4D535452;
inline constexpr std::uint32_t kStoreVersion = 1;

/// One appended grid: the identity every run in it shares.
struct StoreSegment {
  std::string suite;             ///< suite (or explore round) name
  std::uint64_t fingerprint = 0; ///< sim::gridFingerprintParts identity
  std::uint64_t instructions = 0;
  std::uint64_t seed = 0;
  std::uint32_t run_count = 0;
};

/// One stored run: the columnar directory entry plus the full encoded
/// RunOutput blob (sweep::encodeRunOutput). The directory fields answer
/// queries without decoding; the blob holds every counter for when a
/// consumer wants the rest.
struct StoreRun {
  std::uint32_t segment = 0;  ///< index into segments()
  std::string workload;
  std::string config;
  std::uint64_t seed = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double ipc = 0.0;
  double total_pj = 0.0;
  std::vector<std::uint8_t> blob;
};

class ResultStore {
 public:
  /// Read + fully validate a `.mstore` file. Returns false with `err` on
  /// any failure — including a missing file; callers that treat absence as
  /// "start empty" (StoreSink on first write) stat the path themselves so
  /// an EXISTING-but-invalid store can never be silently replaced.
  [[nodiscard]] bool load(const std::string& path, std::string& err);

  /// One grid cell handed to appendSegment: its names + result. When
  /// `blob` is non-empty it is stored verbatim instead of re-encoding
  /// `out` — the journal merge passes the worker's bytes through, so a
  /// merged store is byte-identical to one a StoreSink wrote directly.
  struct RunEntry {
    std::string workload;
    std::string config;
    const sim::RunOutput* out = nullptr;
    std::vector<std::uint8_t> blob;
  };

  /// Append one executed grid, cells in matrix order (workload-major). A
  /// fingerprint already present in the store is a hard error — the same
  /// grid twice would double every query row; callers with skip-if-present
  /// semantics (the explorer's resume) probe findSegment() first.
  void appendSegment(const StoreSegment& meta,
                     const std::vector<RunEntry>& runs);

  /// Write the whole store to `path` atomically (StateIO temp + rename).
  [[nodiscard]] bool save(const std::string& path, std::string& err) const;

  [[nodiscard]] const std::vector<StoreSegment>& segments() const {
    return segments_;
  }
  [[nodiscard]] const std::vector<StoreRun>& runs() const { return runs_; }

  /// The segment holding `fingerprint`, or nullptr.
  [[nodiscard]] const StoreSegment* findSegment(
      std::uint64_t fingerprint) const;

  /// Decode run `idx`'s full RunOutput. Returns false with `err` on a
  /// structurally bad blob (load() already rejects those, so this failing
  /// indicates an in-memory logic error — callers abort on it).
  [[nodiscard]] bool decodeRun(std::size_t idx, sim::RunOutput& out,
                               std::string& err) const;

 private:
  std::vector<StoreSegment> segments_;
  std::vector<StoreRun> runs_;
};

}  // namespace malec::store
