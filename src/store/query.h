// Query engine over a loaded `.mstore`: select / filter / sort /
// group-geomean over the columnar directory, rendered as an aligned text
// table or JSON-lines — `malec_bench query`'s engine, separated so tests
// drive it directly.
//
// Determinism contract: rows start in file order (segment append order,
// matrix order within a segment); sorts are stable, so equal keys keep
// file order — the same store and query always render the same bytes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "store/result_store.h"

namespace malec::store {

/// The queryable columns, in default display order: suite, workload,
/// config, seed, instructions, cycles, ipc, energy_pj.
[[nodiscard]] const std::vector<std::string>& queryColumns();

struct QueryOptions {
  /// Columns to display, in order; empty = queryColumns(). Unknown names
  /// are hard errors listing the inventory. Ignored under group_geomean,
  /// which has its own fixed column set.
  std::vector<std::string> select;
  /// Substring filters; empty = no constraint.
  std::string suite_contains;
  std::string workload_contains;
  std::string config_contains;
  bool have_seed = false;  ///< exact-match seed filter when set
  std::uint64_t seed = 0;
  /// Sort key (any query column; under group_geomean: config, runs,
  /// cycles, ipc or energy_pj). Empty = file order. Stable: ties keep
  /// file order.
  std::string sort_by;
  bool sort_desc = false;
  /// Collapse rows per config: geometric means of cycles / ipc /
  /// energy_pj over the filtered rows, with a run count — the "compare
  /// presets across a benchmark suite" view the paper's figures use.
  bool group_geomean = false;
  std::uint64_t limit = 0;  ///< keep the first N rows after sorting; 0 = all
};

/// One rendered result set: column names, per-column numeric flag (drives
/// alignment and JSON typing) and formatted cells.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<bool> numeric;
  std::vector<std::vector<std::string>> rows;
};

/// Execute `q` over `rs`. Unknown select/sort columns abort with the
/// column inventory (strict, like every other knob).
[[nodiscard]] QueryResult runQuery(const ResultStore& rs,
                                   const QueryOptions& q);

/// Aligned text rendering (strings left, numbers right) + a row count.
void printQueryTable(const QueryResult& r, std::FILE* out);

/// One JSON object per row, one per line; numeric columns as JSON numbers.
void printQueryJson(const QueryResult& r, std::FILE* out);

}  // namespace malec::store
