// Replacement policies for set-associative structures.
//
// The paper uses LRU-style replacement for caches, random replacement for
// the main TLB and the second-chance (clock) algorithm for the uTLB — the
// latter chosen to reduce uWT->WT writeback traffic (Sec. V).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::mem {

/// Chooses victims within one set of `ways` ways. `allowed_mask` restricts
/// candidate ways (bit i set = way i allowed); MALEC uses this to keep lines
/// out of their WT-excluded way (Sec. V).
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  /// Note a hit on (set, way).
  virtual void touch(std::uint32_t set, std::uint32_t way) = 0;
  /// Note a fill into (set, way).
  virtual void fill(std::uint32_t set, std::uint32_t way) = 0;
  /// Pick a victim way within `set` among `allowed_mask`.
  [[nodiscard]] virtual std::uint32_t victim(std::uint32_t set,
                                             std::uint64_t allowed_mask) = 0;

  /// Checkpoint/restore of the policy's mutable state (recency stamps,
  /// clock hands, RNG stream). Restoring into an identically-configured
  /// policy makes victim selection continue bit-identically.
  virtual void saveState(ckpt::StateWriter& w) const = 0;
  virtual void loadState(ckpt::StateReader& r) = 0;
};

/// True LRU via per-set recency stamps.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(std::uint32_t sets, std::uint32_t ways);
  void touch(std::uint32_t set, std::uint32_t way) override;
  void fill(std::uint32_t set, std::uint32_t way) override;
  [[nodiscard]] std::uint32_t victim(std::uint32_t set,
                                     std::uint64_t allowed_mask) override;
  void saveState(ckpt::StateWriter& w) const override;
  void loadState(ckpt::StateReader& r) override;

 private:
  std::uint32_t ways_;  // lint:no-state(geometry; load checks sizes)
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> stamp_;  ///< sets x ways
};

/// Uniform-random victim selection (paper: TLB replacement).
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::uint32_t sets, std::uint32_t ways, Rng rng);
  void touch(std::uint32_t set, std::uint32_t way) override;
  void fill(std::uint32_t set, std::uint32_t way) override;
  [[nodiscard]] std::uint32_t victim(std::uint32_t set,
                                     std::uint64_t allowed_mask) override;
  void saveState(ckpt::StateWriter& w) const override;
  void loadState(ckpt::StateReader& r) override;

 private:
  std::uint32_t ways_;  // lint:no-state(geometry; load checks sizes)
  Rng rng_;
};

/// Second-chance (clock). Intended for fully-associative structures
/// (sets == 1); the paper uses it for the uTLB to minimise full-entry
/// uWT->WT transfers.
class SecondChancePolicy final : public ReplacementPolicy {
 public:
  SecondChancePolicy(std::uint32_t sets, std::uint32_t ways);
  void touch(std::uint32_t set, std::uint32_t way) override;
  void fill(std::uint32_t set, std::uint32_t way) override;
  [[nodiscard]] std::uint32_t victim(std::uint32_t set,
                                     std::uint64_t allowed_mask) override;
  void saveState(ckpt::StateWriter& w) const override;
  void loadState(ckpt::StateReader& r) override;

 private:
  std::uint32_t ways_;  // lint:no-state(geometry; load checks sizes)
  std::vector<std::uint8_t> ref_;     ///< reference bits, sets x ways
  std::vector<std::uint32_t> hand_;   ///< clock hand per set
};

enum class ReplacementKind { kLru, kRandom, kSecondChance };

/// Factory used by cache/TLB constructors.
[[nodiscard]] std::unique_ptr<ReplacementPolicy> makePolicy(
    ReplacementKind kind, std::uint32_t sets, std::uint32_t ways, Rng rng);

}  // namespace malec::mem
