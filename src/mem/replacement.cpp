#include "mem/replacement.h"

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::mem {

// --- LRU ---------------------------------------------------------------

LruPolicy::LruPolicy(std::uint32_t sets, std::uint32_t ways)
    : ways_(ways), stamp_(static_cast<std::size_t>(sets) * ways, 0) {
  MALEC_CHECK(sets > 0 && ways > 0 && ways <= 64);
}

void LruPolicy::touch(std::uint32_t set, std::uint32_t way) {
  stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
}

void LruPolicy::fill(std::uint32_t set, std::uint32_t way) {
  touch(set, way);
}

std::uint32_t LruPolicy::victim(std::uint32_t set, std::uint64_t allowed_mask) {
  MALEC_CHECK_MSG(allowed_mask != 0, "no allowed ways for victim selection");
  std::uint32_t best = 0;
  std::uint64_t best_stamp = ~0ull;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if ((allowed_mask & (1ull << w)) == 0) continue;
    const std::uint64_t s = stamp_[static_cast<std::size_t>(set) * ways_ + w];
    if (s <= best_stamp) {
      best_stamp = s;
      best = w;
    }
  }
  return best;
}

void LruPolicy::saveState(ckpt::StateWriter& w) const {
  w.u64(tick_);
  w.u64(stamp_.size());
  for (const std::uint64_t s : stamp_) w.u64(s);
}

void LruPolicy::loadState(ckpt::StateReader& r) {
  tick_ = r.u64();
  MALEC_CHECK_MSG(r.u64() == stamp_.size(),
                  "LRU state does not fit this geometry");
  for (std::uint64_t& s : stamp_) s = r.u64();
}

// --- Random -----------------------------------------------------------

RandomPolicy::RandomPolicy(std::uint32_t sets, std::uint32_t ways, Rng rng)
    : ways_(ways), rng_(rng) {
  MALEC_CHECK(sets > 0 && ways > 0 && ways <= 64);
}

void RandomPolicy::touch(std::uint32_t, std::uint32_t) {}
void RandomPolicy::fill(std::uint32_t, std::uint32_t) {}

std::uint32_t RandomPolicy::victim(std::uint32_t, std::uint64_t allowed_mask) {
  MALEC_CHECK_MSG(allowed_mask != 0, "no allowed ways for victim selection");
  std::uint32_t candidates[64];
  std::uint32_t n = 0;
  for (std::uint32_t w = 0; w < ways_; ++w)
    if (allowed_mask & (1ull << w)) candidates[n++] = w;
  return candidates[rng_.below(n)];
}

void RandomPolicy::saveState(ckpt::StateWriter& w) const {
  w.u64(rng_.state());
}

void RandomPolicy::loadState(ckpt::StateReader& r) { rng_.setState(r.u64()); }

// --- Second chance ------------------------------------------------------

SecondChancePolicy::SecondChancePolicy(std::uint32_t sets, std::uint32_t ways)
    : ways_(ways),
      ref_(static_cast<std::size_t>(sets) * ways, 0),
      hand_(sets, 0) {
  MALEC_CHECK(sets > 0 && ways > 0);
}

void SecondChancePolicy::touch(std::uint32_t set, std::uint32_t way) {
  ref_[static_cast<std::size_t>(set) * ways_ + way] = 1;
}

void SecondChancePolicy::fill(std::uint32_t set, std::uint32_t way) {
  // Insert with the reference bit CLEAR: a fresh entry earns its second
  // chance only once re-referenced. This protects established hot entries
  // (the property the uTLB relies on, paper Sec. V) from insertion bursts.
  ref_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

std::uint32_t SecondChancePolicy::victim(std::uint32_t set,
                                         std::uint64_t allowed_mask) {
  MALEC_CHECK_MSG(allowed_mask != 0, "no allowed ways for victim selection");
  std::uint32_t& hand = hand_[set];
  // Two sweeps suffice: the first clears reference bits, the second finds a
  // zero. Skip disallowed ways entirely.
  for (std::uint32_t sweep = 0; sweep < 2 * ways_ + 1; ++sweep) {
    const std::uint32_t w = hand;
    hand = (hand + 1) % ways_;
    if ((allowed_mask & (1ull << w)) == 0) continue;
    std::uint8_t& r = ref_[static_cast<std::size_t>(set) * ways_ + w];
    if (r == 0) return w;
    r = 0;
  }
  // All allowed ways were referenced twice around: take the current hand.
  for (std::uint32_t w = 0; w < ways_; ++w)
    if (allowed_mask & (1ull << w)) return w;
  MALEC_CHECK(false);
  return 0;
}

void SecondChancePolicy::saveState(ckpt::StateWriter& w) const {
  w.u64(ref_.size());
  for (const std::uint8_t b : ref_) w.u8(b);
  w.u64(hand_.size());
  for (const std::uint32_t h : hand_) w.u32(h);
}

void SecondChancePolicy::loadState(ckpt::StateReader& r) {
  MALEC_CHECK_MSG(r.u64() == ref_.size(),
                  "second-chance state does not fit this geometry");
  for (std::uint8_t& b : ref_) b = r.u8();
  MALEC_CHECK_MSG(r.u64() == hand_.size(),
                  "second-chance state does not fit this geometry");
  for (std::uint32_t& h : hand_) h = r.u32();
}

std::unique_ptr<ReplacementPolicy> makePolicy(ReplacementKind kind,
                                              std::uint32_t sets,
                                              std::uint32_t ways, Rng rng) {
  switch (kind) {
    case ReplacementKind::kLru:
      // lint:allow(hot-alloc: construction-time factory — every call site is a ctor init-list)
      return std::make_unique<LruPolicy>(sets, ways);
    case ReplacementKind::kRandom:
      // lint:allow(hot-alloc: construction-time factory — every call site is a ctor init-list)
      return std::make_unique<RandomPolicy>(sets, ways, rng);
    case ReplacementKind::kSecondChance:
      // lint:allow(hot-alloc: construction-time factory — every call site is a ctor init-list)
      return std::make_unique<SecondChancePolicy>(sets, ways);
  }
  MALEC_CHECK(false);
  return nullptr;
}

}  // namespace malec::mem
