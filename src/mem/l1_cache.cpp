#include "mem/l1_cache.h"

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::mem {

L1Cache::L1Cache(const Params& p)
    : layout_(p.layout),
      restrict_alloc_(p.restrict_alloc_ways),
      ways_(p.layout.l1Assoc()),
      sets_(p.layout.l1Sets()),
      lines_(static_cast<std::size_t>(sets_) * ways_),
      repl_(makePolicy(p.replacement, sets_, ways_, Rng(p.seed))) {}

L1Cache::Line& L1Cache::line(std::uint32_t set, std::uint32_t way) {
  return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

const L1Cache::Line& L1Cache::line(std::uint32_t set,
                                   std::uint32_t way) const {
  return lines_[static_cast<std::size_t>(set) * ways_ + way];
}

std::optional<WayIdx> L1Cache::probe(Addr paddr) const {
  const std::uint32_t set = layout_.l1Set(paddr);
  const std::uint64_t tag = layout_.l1Tag(paddr);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    const Line& ln = line(set, w);
    if (ln.valid && ln.tag == tag) return static_cast<WayIdx>(w);
  }
  return std::nullopt;
}

void L1Cache::touch(Addr paddr, WayIdx way) {
  MALEC_DCHECK(way >= 0 && static_cast<std::uint32_t>(way) < ways_);
  repl_->touch(layout_.l1Set(paddr), static_cast<std::uint32_t>(way));
}

std::uint32_t L1Cache::excludedWay(Addr paddr) const {
  // Lines 0..3 of a page sit in banks 0..3 and exclude way 0; lines 4..7
  // exclude way 1; and so on, cycling every banks*assoc lines (Sec. V).
  // The rotation is salted by the physical page so that different pages
  // landing in the same set exclude different ways (see way_info.h).
  return (layout_.lineInPage(paddr) / layout_.l1Banks() +
          layout_.pageId(paddr)) % ways_;
}

L1Cache::FillResult L1Cache::fill(Addr paddr) {
  const std::uint32_t set = layout_.l1Set(paddr);
  const std::uint64_t tag = layout_.l1Tag(paddr);
  MALEC_DCHECK(!probe(paddr).has_value());

  std::uint32_t allowed = (1u << ways_) - 1;
  if (restrict_alloc_) allowed &= ~(1u << excludedWay(paddr));

  // Prefer an invalid allowed way before displacing a valid line.
  std::uint32_t way = ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if ((allowed & (1u << w)) != 0 && !line(set, w).valid) {
      way = w;
      break;
    }
  }
  FillResult res;
  if (way == ways_) {
    way = repl_->victim(set, allowed);
    Line& victim = line(set, way);
    if (victim.valid) {
      res.evicted = true;
      res.evicted_dirty = victim.dirty;
      // Reconstruct the victim's line base from its tag and this set.
      const std::uint32_t line_off_bits = log2Exact(layout_.lineBytes());
      const std::uint32_t set_bits = log2Exact(layout_.l1Sets());
      res.evicted_line_base =
          (victim.tag << (line_off_bits + set_bits)) |
          (static_cast<Addr>(set) << line_off_bits);
      ++evictions_;
    }
  }
  Line& ln = line(set, way);
  ln.valid = true;
  ln.dirty = false;
  ln.tag = tag;
  repl_->fill(set, way);
  ++fills_;
  res.way = static_cast<WayIdx>(way);
  return res;
}

void L1Cache::markDirty(Addr paddr, WayIdx way) {
  MALEC_DCHECK(way >= 0 && static_cast<std::uint32_t>(way) < ways_);
  Line& ln = line(layout_.l1Set(paddr), static_cast<std::uint32_t>(way));
  MALEC_DCHECK(ln.valid && ln.tag == layout_.l1Tag(paddr));
  ln.dirty = true;
}

std::optional<bool> L1Cache::invalidate(Addr paddr) {
  const auto way = probe(paddr);
  if (!way.has_value()) return std::nullopt;
  Line& ln = line(layout_.l1Set(paddr), static_cast<std::uint32_t>(*way));
  const bool was_dirty = ln.dirty;
  ln.valid = false;
  ln.dirty = false;
  return was_dirty;
}

std::uint64_t L1Cache::validLines() const {
  std::uint64_t n = 0;
  for (const Line& ln : lines_)
    if (ln.valid) ++n;
  return n;
}


void L1Cache::saveState(ckpt::StateWriter& w) const {
  w.u64(lines_.size());
  for (const Line& ln : lines_) {
    w.u8(static_cast<std::uint8_t>((ln.valid ? 1 : 0) | (ln.dirty ? 2 : 0)));
    w.u64(ln.tag);
  }
  repl_->saveState(w);
  w.u64(fills_);
  w.u64(evictions_);
}

void L1Cache::loadState(ckpt::StateReader& r) {
  MALEC_CHECK_MSG(r.u64() == lines_.size(),
                  "L1 checkpoint state does not fit this cache geometry");
  for (Line& ln : lines_) {
    const std::uint8_t f = r.u8();
    ln.valid = (f & 1) != 0;
    ln.dirty = (f & 2) != 0;
    ln.tag = r.u64();
  }
  repl_->loadState(r);
  fills_ = r.u64();
  evictions_ = r.u64();
}

}  // namespace malec::mem
