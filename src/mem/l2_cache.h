// Unified L2 cache model: 1 MByte, 16-way set-associative, 12-cycle latency
// (paper Table II). Tag/state only; timing is applied by MemoryHierarchy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/address.h"
#include "common/types.h"
#include "mem/replacement.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::mem {

class L2Cache {
 public:
  struct Params {
    std::uint64_t capacity_bytes = 1ull << 20;  ///< 1 MByte
    std::uint32_t assoc = 16;
    std::uint32_t line_bytes = 64;
    ReplacementKind replacement = ReplacementKind::kLru;
    std::uint64_t seed = 11;
  };

  struct FillResult {
    std::uint32_t way = 0;
    bool evicted = false;
    Addr evicted_line_base = 0;
    bool evicted_dirty = false;
  };

  explicit L2Cache(const Params& p);

  [[nodiscard]] std::optional<std::uint32_t> probe(Addr paddr) const;
  void touch(Addr paddr, std::uint32_t way);
  FillResult fill(Addr paddr);
  void markDirty(Addr paddr, std::uint32_t way);
  std::optional<bool> invalidate(Addr paddr);

  [[nodiscard]] std::uint32_t sets() const { return sets_; }
  [[nodiscard]] std::uint64_t fills() const { return fills_; }

  /// Checkpoint/restore of all mutable state; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
  };

  [[nodiscard]] std::uint32_t setOf(Addr paddr) const;
  [[nodiscard]] std::uint64_t tagOf(Addr paddr) const;
  [[nodiscard]] Line& line(std::uint32_t set, std::uint32_t way);
  [[nodiscard]] const Line& line(std::uint32_t set, std::uint32_t way) const;

  Params p_;               // lint:no-state(config)
  std::uint32_t sets_;      // lint:no-state(geometry; load checks line count)
  std::uint32_t line_bits_;  // lint:no-state(geometry)
  std::uint32_t set_bits_;   // lint:no-state(geometry)
  std::vector<Line> lines_;
  std::unique_ptr<ReplacementPolicy> repl_;
  std::uint64_t fills_ = 0;
};

}  // namespace malec::mem
