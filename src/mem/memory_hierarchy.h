// Glue between L1, L2 and DRAM with miss-status handling.
//
// The interface models (MALEC / baselines) probe the L1 themselves — they
// need the hit way and access mode for energy accounting. On a miss they
// call missAccess(), which walks L2 -> DRAM, performs the L1 (and L2) fills,
// fires fill/eviction callbacks (used to maintain Way Table validity bits,
// Sec. V) and returns the cycle at which data is available. Outstanding
// misses to the same line are merged MSHR-style.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.h"
#include "mem/l1_cache.h"
#include "mem/l2_cache.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::mem {

class MemoryHierarchy {
 public:
  struct Params {
    Cycle l2_latency = 12;    ///< Table II
    Cycle dram_latency = 54;  ///< Table II
    std::uint32_t mshrs = 8;  ///< outstanding distinct line misses
  };

  /// Fired when a line is filled into / evicted from the L1. Way Table
  /// validity maintenance hooks in here (paper Sec. V).
  using FillCallback = std::function<void(Addr line_base, WayIdx way)>;
  using EvictCallback = std::function<void(Addr line_base)>;

  MemoryHierarchy(L1Cache& l1, L2Cache& l2, const Params& p);

  void setFillCallback(FillCallback cb) { on_fill_ = std::move(cb); }
  void setEvictCallback(EvictCallback cb) { on_evict_ = std::move(cb); }

  struct MissOutcome {
    bool l2_hit = false;
    Cycle ready_cycle = 0;   ///< when the load's data is available
    bool merged_mshr = false;///< piggybacked on an outstanding miss
    WayIdx l1_way = kWayUnknown;  ///< way the line was filled into
  };

  /// Handle an established L1 miss for `paddr` at time `now`; performs the
  /// fills eagerly (tag state) and returns data-ready timing. `is_store`
  /// marks the filled line dirty (write-allocate).
  MissOutcome missAccess(Addr paddr, Cycle now, bool is_store);

  /// True if a new distinct line miss can be tracked at `now`.
  [[nodiscard]] bool mshrAvailable(Cycle now) const;

  // --- statistics ----------------------------------------------------------
  [[nodiscard]] std::uint64_t l2Hits() const { return l2_hits_; }
  [[nodiscard]] std::uint64_t l2Misses() const { return l2_misses_; }
  [[nodiscard]] std::uint64_t l1Writebacks() const { return l1_writebacks_; }
  [[nodiscard]] std::uint64_t mshrMerges() const { return mshr_merges_; }

  /// Checkpoint/restore of outstanding-miss tracking and counters; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  void dropExpired(Cycle now);

  L1Cache& l1_;  // lint:no-state(wiring ref; checkpoints itself)
  L2Cache& l2_;  // lint:no-state(wiring ref; checkpoints itself)
  Params p_;     // lint:no-state(config)
  FillCallback on_fill_;   // lint:no-state(wiring callback, rebuilt at construction)
  EvictCallback on_evict_;  // lint:no-state(wiring callback, rebuilt at construction)
  /// line base -> (ready cycle, filled way): outstanding line fills.
  std::unordered_map<Addr, std::pair<Cycle, WayIdx>> pending_;
  std::uint64_t l2_hits_ = 0;
  std::uint64_t l2_misses_ = 0;
  std::uint64_t l1_writebacks_ = 0;
  std::uint64_t mshr_merges_ = 0;
};

}  // namespace malec::mem
