#include "mem/memory_hierarchy.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::mem {

MemoryHierarchy::MemoryHierarchy(L1Cache& l1, L2Cache& l2, const Params& p)
    : l1_(l1), l2_(l2), p_(p) {
  MALEC_CHECK(p.mshrs >= 1);
}

void MemoryHierarchy::dropExpired(Cycle now) {
  // lint:allow(udc-order: order-independent conditional erase, no output)
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.first <= now) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

bool MemoryHierarchy::mshrAvailable(Cycle now) const {
  std::uint32_t live = 0;
  // lint:allow(udc-order: order-independent count, no output)
  for (const auto& [line, entry] : pending_)
    if (entry.first > now) ++live;
  return live < p_.mshrs;
}

MemoryHierarchy::MissOutcome MemoryHierarchy::missAccess(Addr paddr,
                                                         Cycle now,
                                                         bool is_store) {
  dropExpired(now);
  const Addr line_base = l1_.layout().lineBase(paddr);

  // MSHR merge: a miss to an in-flight line completes with it and performs
  // no additional fill or L2 traffic.
  if (auto it = pending_.find(line_base); it != pending_.end()) {
    ++mshr_merges_;
    MissOutcome out;
    out.ready_cycle = it->second.first;
    out.merged_mshr = true;
    out.l1_way = it->second.second;
    if (is_store) l1_.markDirty(paddr, it->second.second);
    return out;
  }

  MissOutcome out;
  Cycle latency = p_.l2_latency;
  if (auto l2way = l2_.probe(paddr); l2way.has_value()) {
    out.l2_hit = true;
    ++l2_hits_;
    l2_.touch(paddr, *l2way);
  } else {
    ++l2_misses_;
    latency += p_.dram_latency;
    const auto l2fill = l2_.fill(paddr);
    (void)l2fill;  // L2 victim writeback to DRAM is outside the energy scope
  }

  // Eager tag-state fill (data arrives at ready_cycle; the simulator only
  // observes timing through the returned cycle).
  const auto fill = l1_.fill(paddr);
  if (fill.evicted) {
    if (fill.evicted_dirty) {
      ++l1_writebacks_;
      // Write the victim back into L2 (allocate on writeback miss).
      if (auto w = l2_.probe(fill.evicted_line_base); w.has_value()) {
        l2_.markDirty(fill.evicted_line_base, *w);
      } else {
        const auto wb = l2_.fill(fill.evicted_line_base);
        l2_.markDirty(fill.evicted_line_base, wb.way);
      }
    }
    if (on_evict_) on_evict_(fill.evicted_line_base);
  }
  if (is_store) l1_.markDirty(paddr, fill.way);
  if (on_fill_) on_fill_(line_base, fill.way);

  out.ready_cycle = now + latency;
  out.l1_way = fill.way;
  pending_[line_base] = {out.ready_cycle, fill.way};
  return out;
}


void MemoryHierarchy::saveState(ckpt::StateWriter& w) const {
  // pending_ is an unordered map — serialize sorted by line base so the
  // same state always produces the same checkpoint bytes.
  std::vector<std::pair<Addr, std::pair<Cycle, WayIdx>>> pend(
      // lint:allow(udc-order: sorted below before any byte is written)
      pending_.begin(), pending_.end());
  std::sort(pend.begin(), pend.end());
  w.u64(pend.size());
  for (const auto& [line, rdy] : pend) {
    w.u64(line);
    w.u64(rdy.first);
    w.u8(static_cast<std::uint8_t>(rdy.second));
  }
  w.u64(l2_hits_);
  w.u64(l2_misses_);
  w.u64(l1_writebacks_);
  w.u64(mshr_merges_);
}

void MemoryHierarchy::loadState(ckpt::StateReader& r) {
  pending_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Addr line = r.u64();
    const Cycle ready = r.u64();
    const WayIdx way = static_cast<WayIdx>(r.u8());
    pending_[line] = {ready, way};
  }
  l2_hits_ = r.u64();
  l2_misses_ = r.u64();
  l1_writebacks_ = r.u64();
  mshr_merges_ = r.u64();
}

}  // namespace malec::mem
