#include "mem/l2_cache.h"

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::mem {

L2Cache::L2Cache(const Params& p) : p_(p) {
  MALEC_CHECK(isPow2(p.capacity_bytes));
  MALEC_CHECK(isPow2(p.assoc));
  MALEC_CHECK(isPow2(p.line_bytes));
  const std::uint64_t total_lines = p.capacity_bytes / p.line_bytes;
  sets_ = static_cast<std::uint32_t>(total_lines / p.assoc);
  MALEC_CHECK(isPow2(sets_));
  line_bits_ = log2Exact(p.line_bytes);
  set_bits_ = log2Exact(sets_);
  lines_.resize(static_cast<std::size_t>(sets_) * p.assoc);
  repl_ = makePolicy(p.replacement, sets_, p.assoc, Rng(p.seed));
}

std::uint32_t L2Cache::setOf(Addr paddr) const {
  return static_cast<std::uint32_t>((paddr >> line_bits_) & (sets_ - 1));
}

std::uint64_t L2Cache::tagOf(Addr paddr) const {
  return paddr >> (line_bits_ + set_bits_);
}

L2Cache::Line& L2Cache::line(std::uint32_t set, std::uint32_t way) {
  return lines_[static_cast<std::size_t>(set) * p_.assoc + way];
}

const L2Cache::Line& L2Cache::line(std::uint32_t set,
                                   std::uint32_t way) const {
  return lines_[static_cast<std::size_t>(set) * p_.assoc + way];
}

std::optional<std::uint32_t> L2Cache::probe(Addr paddr) const {
  const std::uint32_t set = setOf(paddr);
  const std::uint64_t tag = tagOf(paddr);
  for (std::uint32_t w = 0; w < p_.assoc; ++w) {
    const Line& ln = line(set, w);
    if (ln.valid && ln.tag == tag) return w;
  }
  return std::nullopt;
}

void L2Cache::touch(Addr paddr, std::uint32_t way) {
  repl_->touch(setOf(paddr), way);
}

L2Cache::FillResult L2Cache::fill(Addr paddr) {
  const std::uint32_t set = setOf(paddr);
  MALEC_DCHECK(!probe(paddr).has_value());
  const std::uint32_t all = (p_.assoc >= 32) ? 0xFFFFFFFFu
                                             : ((1u << p_.assoc) - 1);
  FillResult res;
  std::uint32_t way = p_.assoc;
  for (std::uint32_t w = 0; w < p_.assoc; ++w) {
    if (!line(set, w).valid) {
      way = w;
      break;
    }
  }
  if (way == p_.assoc) {
    way = repl_->victim(set, all);
    Line& victim = line(set, way);
    res.evicted = true;
    res.evicted_dirty = victim.dirty;
    res.evicted_line_base = (victim.tag << (line_bits_ + set_bits_)) |
                            (static_cast<Addr>(set) << line_bits_);
  }
  Line& ln = line(set, way);
  ln.valid = true;
  ln.dirty = false;
  ln.tag = tagOf(paddr);
  repl_->fill(set, way);
  ++fills_;
  res.way = way;
  return res;
}

void L2Cache::markDirty(Addr paddr, std::uint32_t way) {
  Line& ln = line(setOf(paddr), way);
  MALEC_DCHECK(ln.valid && ln.tag == tagOf(paddr));
  ln.dirty = true;
}

std::optional<bool> L2Cache::invalidate(Addr paddr) {
  const auto way = probe(paddr);
  if (!way.has_value()) return std::nullopt;
  Line& ln = line(setOf(paddr), *way);
  const bool was_dirty = ln.dirty;
  ln.valid = false;
  ln.dirty = false;
  return was_dirty;
}


void L2Cache::saveState(ckpt::StateWriter& w) const {
  w.u64(lines_.size());
  for (const Line& ln : lines_) {
    w.u8(static_cast<std::uint8_t>((ln.valid ? 1 : 0) | (ln.dirty ? 2 : 0)));
    w.u64(ln.tag);
  }
  repl_->saveState(w);
  w.u64(fills_);
}

void L2Cache::loadState(ckpt::StateReader& r) {
  MALEC_CHECK_MSG(r.u64() == lines_.size(),
                  "L2 checkpoint state does not fit this cache geometry");
  for (Line& ln : lines_) {
    const std::uint8_t f = r.u8();
    ln.valid = (f & 1) != 0;
    ln.dirty = (f & 2) != 0;
    ln.tag = r.u64();
  }
  repl_->loadState(r);
  fills_ = r.u64();
}

}  // namespace malec::mem
