// L1 data cache tag/state model.
//
// 32 KByte, 4-way set-associative, PIPT, 64-byte lines split over four
// independently addressed single-ported banks with 128-bit sub-blocks
// (paper Table II). This class models tag state and replacement only;
// timing (latencies, ports, MSHRs) lives in the memory hierarchy and the
// interface models, and energy is accounted by the simulation layer from
// the access-mode outcomes this class reports.
//
// When `restrict_alloc_ways` is set (MALEC with Way Tables), a line is never
// allocated into its WT-excluded way — the way that the 2-bit validity+way
// encoding cannot express for that line (Sec. V): excludedWay(line) =
// (lineInPage / banks) % assoc. Working sets still use all four ways because
// the excluded way rotates with the line index.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/address.h"
#include "common/rng.h"
#include "common/types.h"
#include "mem/replacement.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::mem {

class L1Cache {
 public:
  struct Params {
    AddressLayout layout;
    /// Forbid allocation into the per-line WT-excluded way.
    bool restrict_alloc_ways = false;
    ReplacementKind replacement = ReplacementKind::kLru;
    std::uint64_t seed = 7;
  };

  struct FillResult {
    WayIdx way = kWayUnknown;        ///< way the new line landed in
    bool evicted = false;            ///< a valid line was displaced
    Addr evicted_line_base = 0;      ///< physical line base of the victim
    bool evicted_dirty = false;      ///< victim needs writeback
  };

  explicit L1Cache(const Params& p);

  /// Pure tag probe: hit way or nullopt. Does not update replacement state.
  [[nodiscard]] std::optional<WayIdx> probe(Addr paddr) const;

  /// Record a hit for replacement purposes.
  void touch(Addr paddr, WayIdx way);

  /// Allocate `paddr`'s line, evicting if needed. The caller is responsible
  /// for having established the miss (probe() == nullopt).
  FillResult fill(Addr paddr);

  /// Mark a resident line dirty (stores / merge-buffer writes).
  void markDirty(Addr paddr, WayIdx way);

  /// Invalidate a line if present; returns whether it was dirty.
  std::optional<bool> invalidate(Addr paddr);

  /// The way the WT 2-bit encoding cannot represent for this address' line.
  [[nodiscard]] std::uint32_t excludedWay(Addr paddr) const;

  [[nodiscard]] const AddressLayout& layout() const { return layout_; }
  [[nodiscard]] std::uint64_t fills() const { return fills_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Number of valid lines (tests / occupancy checks).
  [[nodiscard]] std::uint64_t validLines() const;

  /// Checkpoint/restore of all mutable state; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
  };

  [[nodiscard]] Line& line(std::uint32_t set, std::uint32_t way);
  [[nodiscard]] const Line& line(std::uint32_t set, std::uint32_t way) const;

  AddressLayout layout_;  // lint:no-state(config)
  bool restrict_alloc_;   // lint:no-state(config)
  std::uint32_t ways_;    // lint:no-state(geometry; load checks line count)
  std::uint32_t sets_;    // lint:no-state(geometry; load checks line count)
  std::vector<Line> lines_;  ///< sets x ways
  std::unique_ptr<ReplacementPolicy> repl_;
  std::uint64_t fills_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace malec::mem
