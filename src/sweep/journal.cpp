#include "sweep/journal.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>

#include "common/binio.h"
#include "common/check.h"

namespace malec::sweep {

using binio::get32;
using binio::get64;
using binio::put32;
using binio::put64;

namespace {

/// Header: magic, version, task count, reserved, fingerprint — 24 bytes
/// (see docs/FILE_FORMATS.md).
constexpr std::size_t kHeaderBytes = 24;
/// Frame overhead around a record payload: type(1) + length(4) + FNV(8).
constexpr std::size_t kFrameBytes = 13;

void putU32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  const std::size_t at = v.size();
  v.resize(at + 4);
  put32(v.data() + at, x);
}

void putU64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  const std::size_t at = v.size();
  v.resize(at + 8);
  put64(v.data() + at, x);
}

void putStr(std::vector<std::uint8_t>& v, const std::string& s) {
  putU32(v, static_cast<std::uint32_t>(s.size()));
  v.insert(v.end(), s.begin(), s.end());
}

/// Bounds-checked payload reader for the scan side; any overrun flips
/// `ok` and the caller reports the record as corrupt (the checksum already
/// passed, so an overrun here means a buggy or incompatible producer).
struct PayloadReader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t at = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (n - at < 4) { ok = false; return 0; }
    const std::uint32_t v = get32(p + at);
    at += 4;
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (!ok || n - at < len) { ok = false; return {}; }
    std::string s(reinterpret_cast<const char*>(p + at), len);
    at += len;
    return s;
  }
  std::vector<std::uint8_t> rest() {
    std::vector<std::uint8_t> b(p + at, p + n);
    at = n;
    return b;
  }
};

}  // namespace

// --- scan -------------------------------------------------------------------

JournalScan scanJournal(const std::string& path) {
  JournalScan scan;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    scan.error = "cannot open sweep journal '" + path + "'";
    return scan;
  }
  std::fseek(f, 0, SEEK_END);
  const long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> data(fsize > 0 ? static_cast<std::size_t>(fsize)
                                           : 0);
  const bool read_ok =
      std::fread(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  if (!read_ok) {
    scan.error = "short read from sweep journal '" + path + "'";
    return scan;
  }

  if (data.size() < kHeaderBytes) {
    scan.error = "'" + path + "' is too short to hold a journal header";
    return scan;
  }
  if (get32(data.data() + 0) != kJournalMagic) {
    scan.error = "'" + path + "' is not a MALEC sweep journal (bad magic)";
    return scan;
  }
  const std::uint32_t version = get32(data.data() + 4);
  if (version != kJournalVersion) {
    scan.error = "'" + path + "' has unsupported journal version " +
                 std::to_string(version);
    return scan;
  }
  scan.task_count = get32(data.data() + 8);
  scan.fingerprint = get64(data.data() + 16);

  // Record frames, back to back. A frame that promises more bytes than the
  // file holds is the torn tail of a crashed append: tolerated ONCE, by
  // construction at most once (the scan stops there). A complete frame
  // whose checksum does not match is corruption and rejects the journal.
  std::size_t at = kHeaderBytes;
  while (at < data.size()) {
    const std::size_t remaining = data.size() - at;
    if (remaining < kFrameBytes) {
      scan.torn = true;
      break;
    }
    const std::uint8_t type = data[at];
    const std::uint32_t len = get32(data.data() + at + 1);
    if (remaining - kFrameBytes < len) {
      scan.torn = true;
      break;
    }
    const std::uint64_t want = get64(data.data() + at + 5 + len);
    const std::uint64_t got =
        binio::fnv1a(binio::kFnvOffset, data.data() + at, 5 + len);
    if (want != got) {
      scan.error = "'" + path + "': record " +
                   std::to_string(scan.records.size()) +
                   " checksum mismatch — the journal is corrupt (only a "
                   "torn TRAILING record is recoverable)";
      return scan;
    }

    JournalRecord rec;
    PayloadReader pr{data.data() + at + 5, len};
    rec.task = pr.u32();
    rec.attempt = pr.u32();
    switch (type) {
      case static_cast<std::uint8_t>(RecordType::kGrant):
        rec.type = RecordType::kGrant;
        break;
      case static_cast<std::uint8_t>(RecordType::kComplete):
        rec.type = RecordType::kComplete;
        rec.blob = pr.rest();
        break;
      case static_cast<std::uint8_t>(RecordType::kFail): {
        rec.type = RecordType::kFail;
        const std::uint32_t kind = pr.u32();
        if (kind < 1 || kind > 4) pr.ok = false;
        rec.fail_kind = static_cast<FailKind>(kind);
        rec.fail_code = pr.u32();
        rec.message = pr.str();
        break;
      }
      case static_cast<std::uint8_t>(RecordType::kQuarantine):
        rec.type = RecordType::kQuarantine;
        rec.message = pr.str();
        break;
      default:
        pr.ok = false;
        break;
    }
    if (!pr.ok || (rec.type != RecordType::kComplete && pr.at != pr.n)) {
      scan.error = "'" + path + "': record " +
                   std::to_string(scan.records.size()) +
                   " has a malformed payload — incompatible producer";
      return scan;
    }
    if (scan.task_count != 0 && rec.task >= scan.task_count) {
      scan.error = "'" + path + "': record " +
                   std::to_string(scan.records.size()) + " names task " +
                   std::to_string(rec.task) + " of a " +
                   std::to_string(scan.task_count) + "-task grid";
      return scan;
    }
    scan.records.push_back(std::move(rec));
    at += kFrameBytes + len;
  }
  scan.valid_bytes = at < data.size() ? at : data.size();
  if (scan.torn) scan.valid_bytes = at;
  scan.ok = true;
  return scan;
}

// --- writer -----------------------------------------------------------------

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

bool JournalWriter::create(const std::string& path, std::uint64_t fingerprint,
                           std::uint32_t task_count, std::string& err) {
  MALEC_CHECK_MSG(f_ == nullptr, "journal writer is already open");
  if (std::filesystem::exists(path)) {
    err = "sweep journal '" + path +
          "' already exists — resume it with --resume or remove it first";
    return false;
  }
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) {
    err = "cannot create sweep journal '" + path + "'";
    return false;
  }
  std::uint8_t hdr[kHeaderBytes] = {};
  put32(hdr + 0, kJournalMagic);
  put32(hdr + 4, kJournalVersion);
  put32(hdr + 8, task_count);
  put32(hdr + 12, 0);  // reserved
  put64(hdr + 16, fingerprint);
  if (std::fwrite(hdr, 1, sizeof hdr, f_) != sizeof hdr ||
      std::fflush(f_) != 0 || ::fsync(::fileno(f_)) != 0) {
    err = "short write to sweep journal '" + path + "'";
    close();
    std::remove(path.c_str());
    return false;
  }
  path_ = path;
  bytes_ = kHeaderBytes;
  return true;
}

bool JournalWriter::reopen(const std::string& path, std::uint64_t valid_bytes,
                           std::string& err) {
  MALEC_CHECK_MSG(f_ == nullptr, "journal writer is already open");
  MALEC_CHECK_MSG(valid_bytes >= kHeaderBytes,
                  "cannot reopen a journal below its header size");
  // Drop a torn trailing record before appending; with no tear this is a
  // size-preserving no-op.
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    err = "cannot truncate sweep journal '" + path + "': " + ec.message();
    return false;
  }
  f_ = std::fopen(path.c_str(), "ab");
  if (f_ == nullptr) {
    err = "cannot reopen sweep journal '" + path + "'";
    return false;
  }
  path_ = path;
  bytes_ = valid_bytes;
  return true;
}

void JournalWriter::append(RecordType type,
                           const std::vector<std::uint8_t>& payload) {
  MALEC_CHECK_MSG(f_ != nullptr, "journal writer is not open");
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameBytes + payload.size());
  frame.push_back(static_cast<std::uint8_t>(type));
  putU32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  putU64(frame,
         binio::fnv1a(binio::kFnvOffset, frame.data(), frame.size()));
  // Append + flush + fsync: the record is durable before the coordinator
  // acts on it. A failed append is fatal — simulating on without it would
  // make the journal silently lie about what survives a crash.
  const bool ok =
      std::fwrite(frame.data(), 1, frame.size(), f_) == frame.size() &&
      std::fflush(f_) == 0 && ::fsync(::fileno(f_)) == 0;
  if (!ok) {
    const std::string msg =
        "append to sweep journal '" + path_ + "' failed — aborting the "
        "sweep rather than running without crash-safety";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  bytes_ += frame.size();
}

void JournalWriter::grant(std::uint32_t task, std::uint32_t attempt) {
  std::vector<std::uint8_t> p;
  putU32(p, task);
  putU32(p, attempt);
  append(RecordType::kGrant, p);
}

void JournalWriter::complete(std::uint32_t task, std::uint32_t attempt,
                             const std::vector<std::uint8_t>& blob) {
  std::vector<std::uint8_t> p;
  putU32(p, task);
  putU32(p, attempt);
  p.insert(p.end(), blob.begin(), blob.end());
  append(RecordType::kComplete, p);
}

void JournalWriter::fail(std::uint32_t task, std::uint32_t attempt,
                         FailKind kind, std::uint32_t code,
                         const std::string& message) {
  std::vector<std::uint8_t> p;
  putU32(p, task);
  putU32(p, attempt);
  putU32(p, static_cast<std::uint32_t>(kind));
  putU32(p, code);
  putStr(p, message);
  append(RecordType::kFail, p);
}

void JournalWriter::quarantine(std::uint32_t task, std::uint32_t attempts,
                               const std::string& last_error) {
  std::vector<std::uint8_t> p;
  putU32(p, task);
  putU32(p, attempts);
  putStr(p, last_error);
  append(RecordType::kQuarantine, p);
}

}  // namespace malec::sweep
