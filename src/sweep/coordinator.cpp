#include "sweep/coordinator.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/check.h"
#include "sim/presets.h"
#include "sweep/fault.h"
#include "sweep/journal.h"
#include "sweep/result_codec.h"

namespace malec::sweep {

namespace {

using Clock = std::chrono::steady_clock;

/// Strict env fallback shared by the sweep knobs: unset/empty/"0" keeps
/// `current` (the PR 3 convention — 0 is documented as "use the default"),
/// anything non-numeric aborts via parseU64Strict.
std::uint64_t envOr(const char* name, std::uint64_t current) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return current;
  const std::uint64_t v = sim::parseU64Strict(env, name);
  return v > 0 ? v : current;
}

void checkRange(std::uint64_t v, std::uint64_t max, const char* what) {
  if (v > max) {
    const std::string msg = std::string(what) + " = " + std::to_string(v) +
                            " exceeds the supported range (max " +
                            std::to_string(max) + ")";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
}

const char* failKindName(FailKind k) {
  switch (k) {
    case FailKind::kExit: return "non-zero exit";
    case FailKind::kSignal: return "killed by signal";
    case FailKind::kTimeout: return "task timeout (SIGKILL sent)";
    case FailKind::kBadResult: return "invalid result file";
  }
  return "unknown failure";
}

std::string describeFailure(std::uint32_t attempt, FailKind kind,
                            std::uint32_t code, const std::string& message) {
  std::string s = "attempt " + std::to_string(attempt) + ": " +
                  failKindName(kind) + " (code " + std::to_string(code) + ")";
  if (!message.empty()) s += " — " + message;
  return s;
}

struct TaskState {
  bool done = false;
  bool quarantined = false;
  std::uint32_t attempts = 0;  ///< attempts launched so far
  std::vector<std::string> history;
  sim::RunOutput out;
};

struct Pending {
  std::uint32_t task = 0;
  Clock::time_point eligible;
};

struct Slot {
  ::pid_t pid = -1;
  std::uint32_t task = 0;
  std::uint32_t attempt = 0;
  Clock::time_point started;
  std::string result_path;
};

std::string taskLabel(const sim::SuiteContext& ctx, std::uint32_t task) {
  const std::size_t c_count = ctx.configs.size();
  const std::size_t w = task / c_count;
  const std::size_t c = task % c_count;
  return ctx.workloads[w].name + " x " + ctx.configs[c].name;
}

/// fork/exec one worker for (task, attempt). Aborts on fork failure — a
/// coordinator that cannot spawn is not degrading gracefully, it is
/// broken. exec failure exits the child with 127 (journaled as a normal
/// attempt failure, so a bad --worker path is visible per task).
::pid_t spawnWorker(const SweepOptions& sw, const sim::SuiteContext& ctx,
                    std::uint32_t task, std::uint32_t attempt,
                    const std::string& result_path) {
  const std::string task_s = std::to_string(task);
  const std::string attempt_s = std::to_string(attempt);
  const std::string instr_s = std::to_string(ctx.instructions);
  const std::string seed_s = std::to_string(ctx.seed);
  std::vector<std::string> args = {
      sw.worker_path, "--worker", "--suite", ctx.spec.name,
      "--task", task_s, "--attempt", attempt_s,
      "--result", result_path, "--instr", instr_s, "--seed", seed_s};
  if (!ctx.opts.workload_filter.empty()) {
    args.push_back("--filter");
    args.push_back(ctx.opts.workload_filter);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const ::pid_t pid = ::fork();
  MALEC_CHECK_MSG(pid >= 0, "fork() failed — cannot spawn sweep worker");
  if (pid == 0) {
    ::execv(sw.worker_path.c_str(), argv.data());
    std::fprintf(stderr, "execv(%s) failed: %s\n", sw.worker_path.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

}  // namespace

void resolveSweepTuning(SweepOptions& sw) {
  sw.task_timeout_ms = envOr("MALEC_TASK_TIMEOUT", sw.task_timeout_ms);
  sw.retries = envOr("MALEC_SWEEP_RETRIES", sw.retries);
  sw.backoff_ms = envOr("MALEC_SWEEP_BACKOFF_MS", sw.backoff_ms);
  checkRange(sw.task_timeout_ms, kMaxTaskTimeoutMs, "task timeout [ms]");
  checkRange(sw.retries, kMaxRetries, "sweep retries");
  checkRange(sw.backoff_ms, kMaxBackoffMs, "sweep backoff [ms]");
  checkRange(sw.workers, kMaxWorkers, "worker count");
  MALEC_CHECK_MSG(sw.workers >= 1, "a sharded sweep needs at least 1 worker");
}

std::uint64_t gridFingerprint(const sim::SuiteContext& ctx) {
  // One definition of grid identity for the whole repo: the journal, the
  // result store and the explorer all bind to sim::gridFingerprint.
  return sim::gridFingerprint(ctx);
}

int runWorkerTask(const sim::ExperimentSpec& spec,
                  const sim::SuiteOptions& opts, std::uint32_t task,
                  std::uint32_t attempt, const std::string& result_path) {
  MALEC_CHECK_MSG(!spec.custom,
                  "worker mode shards (workload x config) grids only");
  sim::SuiteContext ctx{spec, opts};
  sim::resolveSuiteContext(ctx);
  const std::uint64_t grid =
      static_cast<std::uint64_t>(ctx.workloads.size()) * ctx.configs.size();
  if (task >= grid) {
    std::fprintf(stderr,
                 "worker: task %u is outside the %llu-cell grid of suite "
                 "'%s' — coordinator/worker grid mismatch\n",
                 task, static_cast<unsigned long long>(grid),
                 spec.name.c_str());
    return 1;
  }

  const FaultSpec faults = faultSpecFromEnv();
  maybeInjectStartFault(faults, task, attempt);

  // The EXACT RunConfig the in-process runMatrixParallel flattening builds
  // for this cell — same system, budget and seed — so the sharded sweep
  // is bit-identical to the in-process run.
  sim::RunConfig rc;
  rc.workload = ctx.workloads[task / ctx.configs.size()];
  rc.interface_cfg = ctx.configs[task % ctx.configs.size()];
  rc.system = sim::defaultSystem();
  rc.instructions = ctx.instructions;
  rc.seed = ctx.seed;
  const sim::RunOutput out = sim::runOne(rc);

  writeResultFile(result_path, sweep::gridFingerprint(ctx), task, attempt, out);
  maybeCorruptResult(faults, task, attempt, result_path);
  return 0;
}

int runSuiteCoordinated(const sim::ExperimentSpec& spec,
                        const sim::SuiteOptions& opts,
                        const SweepOptions& sweep,
                        const std::vector<sim::ResultSink*>& sinks) {
  if (spec.custom) {
    const std::string msg =
        "suite '" + spec.name + "' is not a (workload x config) grid — "
        "--workers shards matrix suites only";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  MALEC_CHECK_MSG(!sweep.journal.empty(),
                  "a sharded sweep needs a journal path (--journal/--resume)");
  MALEC_CHECK_MSG(!sweep.worker_path.empty(),
                  "sweep coordinator needs the malec_bench worker binary path");

  sim::SuiteContext ctx{spec, opts};
  sim::resolveSuiteContext(ctx);
  MALEC_CHECK_MSG(ctx.spec.configs != nullptr,
                  "spec without custom body needs a configuration set");
  // The jobs slot of SuiteInfo reports the parallelism actually used —
  // worker processes here, threads in-process.
  ctx.jobs = sweep.workers;
  ctx.sinks = sinks;

  const std::uint64_t fingerprint = sweep::gridFingerprint(ctx);
  const std::uint64_t grid =
      static_cast<std::uint64_t>(ctx.workloads.size()) * ctx.configs.size();
  MALEC_CHECK_MSG(grid > 0, "cannot shard an empty grid");
  checkRange(grid, 0xFFFFFFFFull, "sweep grid size");
  const auto task_count = static_cast<std::uint32_t>(grid);

  std::vector<TaskState> states(task_count);
  JournalWriter journal;
  std::string err;

  if (sweep.resume) {
    const JournalScan scan = scanJournal(sweep.journal);
    if (!scan.ok) MALEC_CHECK_MSG(false, scan.error.c_str());
    if (scan.fingerprint != fingerprint || scan.task_count != task_count) {
      const std::string msg =
          "sweep journal '" + sweep.journal + "' was written by a different "
          "sweep (suite, budget, seed, filter or registry content differ) — "
          "refusing to merge foreign results";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
    std::uint32_t replayed = 0;
    for (const JournalRecord& rec : scan.records) {
      TaskState& st = states[rec.task];
      switch (rec.type) {
        case RecordType::kGrant:
          break;  // orphaned grants simply leave the task pending
        case RecordType::kComplete: {
          MALEC_CHECK_MSG(!st.done, "journal holds a duplicate completion");
          std::string decode_err;
          const bool ok = decodeRunOutput(rec.blob.data(), rec.blob.size(),
                                          st.out, decode_err);
          MALEC_CHECK_MSG(ok, decode_err.c_str());
          st.done = true;
          ++replayed;
          break;
        }
        case RecordType::kFail:
          st.history.push_back(describeFailure(rec.attempt, rec.fail_kind,
                                               rec.fail_code, rec.message));
          break;
        case RecordType::kQuarantine:
          // A resumed sweep gives quarantined tasks a fresh retry budget:
          // the operator restarted on purpose, presumably after fixing
          // the cause (the failure history is kept for the report).
          st.history.push_back("previously quarantined: " + rec.message);
          break;
      }
    }
    if (!journal.reopen(sweep.journal, scan.valid_bytes, err))
      MALEC_CHECK_MSG(false, err.c_str());
    std::fprintf(stderr,
                 "resuming sweep from %s: %u/%u tasks already complete%s\n",
                 sweep.journal.c_str(), replayed, task_count,
                 scan.torn ? " (dropped a torn trailing record)" : "");
  } else {
    if (!journal.create(sweep.journal, fingerprint, task_count, err))
      MALEC_CHECK_MSG(false, err.c_str());
  }

  const FaultSpec faults = faultSpecFromEnv();

  for (sim::ResultSink* s : sinks) s->beginSuite(sim::suiteInfo(ctx));

  // --- supervision loop -----------------------------------------------------
  std::vector<Pending> pending;
  for (std::uint32_t t = 0; t < task_count; ++t)
    if (!states[t].done) pending.push_back({t, Clock::now()});
  std::vector<Slot> slots;
  std::uint32_t outstanding = static_cast<std::uint32_t>(pending.size());

  auto handleFailure = [&](const Slot& slot, FailKind kind,
                           std::uint32_t code, const std::string& message) {
    TaskState& st = states[slot.task];
    journal.fail(slot.task, slot.attempt, kind, code, message);
    st.history.push_back(
        describeFailure(slot.attempt, kind, code, message));
    std::fprintf(stderr, "sweep: task %u (%s) attempt %u failed: %s\n",
                 slot.task, taskLabel(ctx, slot.task).c_str(), slot.attempt,
                 st.history.back().c_str());
    if (st.attempts > sweep.retries) {
      journal.quarantine(slot.task, st.attempts, st.history.back());
      st.quarantined = true;
      --outstanding;
      std::fprintf(stderr,
                   "sweep: task %u quarantined after %u attempts — "
                   "finishing the rest of the grid\n",
                   slot.task, st.attempts);
      return;
    }
    // Exponential backoff, re-entering the queue in deterministic order
    // (the scheduler always picks the lowest eligible task id first).
    const std::uint64_t shift =
        slot.attempt < 20 ? slot.attempt : 20;  // clamp 2^k
    const std::uint64_t wait_ms =
        std::min<std::uint64_t>(sweep.backoff_ms << shift, 60'000);
    pending.push_back(
        {slot.task, Clock::now() + std::chrono::milliseconds(wait_ms)});
  };

  auto handleExit = [&](const Slot& slot, int status) {
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      sim::RunOutput out;
      std::vector<std::uint8_t> blob;
      std::string read_err;
      if (readResultFile(slot.result_path, fingerprint, slot.task,
                         slot.attempt, out, blob, read_err)) {
        journal.complete(slot.task, slot.attempt, blob);
        std::remove(slot.result_path.c_str());
        TaskState& st = states[slot.task];
        st.out = std::move(out);
        st.done = true;
        --outstanding;
        if (ctx.opts.progress) std::fputc('.', stderr);
        // Fault injection: tear the journal mid-append right after this
        // completion and die — the crash window --resume exists for.
        if (faults.match(FaultClause::Kind::kTruncateJournal, slot.task,
                         slot.attempt) != nullptr) {
          std::fprintf(stderr,
                       "\n[fault] tearing journal after task %u and "
                       "exiting\n", slot.task);
          std::error_code ec;
          std::filesystem::resize_file(journal.path(), journal.bytes() - 9,
                                       ec);
          std::_Exit(17);
        }
        return;
      }
      handleFailure(slot, FailKind::kBadResult, 0, read_err);
      std::remove(slot.result_path.c_str());
      return;
    }
    if (WIFSIGNALED(status)) {
      const char* sig_name = ::strsignal(WTERMSIG(status));
      handleFailure(slot, FailKind::kSignal,
                    static_cast<std::uint32_t>(WTERMSIG(status)),
                    sig_name != nullptr ? sig_name : "");
    } else {
      handleFailure(slot, FailKind::kExit,
                    static_cast<std::uint32_t>(WEXITSTATUS(status)), "");
    }
  };

  while (outstanding > 0) {
    // Grant work to free slots: lowest eligible task id first — the
    // deterministic reassignment order of the robustness contract.
    bool progressed = false;
    while (slots.size() < sweep.workers) {
      const auto now = Clock::now();
      auto best = pending.end();
      for (auto it = pending.begin(); it != pending.end(); ++it)
        if (it->eligible <= now &&
            (best == pending.end() || it->task < best->task))
          best = it;
      if (best == pending.end()) break;
      const std::uint32_t task = best->task;
      pending.erase(best);
      TaskState& st = states[task];
      const std::uint32_t attempt = st.attempts++;
      Slot slot;
      slot.task = task;
      slot.attempt = attempt;
      slot.result_path = sweep.journal + ".t" + std::to_string(task) +
                         ".mres";
      std::remove(slot.result_path.c_str());
      journal.grant(task, attempt);
      slot.started = Clock::now();
      slot.pid = spawnWorker(sweep, ctx, task, attempt, slot.result_path);
      slots.push_back(std::move(slot));
      progressed = true;
    }

    // Reap exits and enforce timeouts.
    for (std::size_t i = 0; i < slots.size();) {
      Slot& slot = slots[i];
      int status = 0;
      const ::pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
      MALEC_CHECK_MSG(r >= 0, "waitpid() failed in the sweep coordinator");
      if (r == slot.pid) {
        const Slot finished = std::move(slot);
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
        handleExit(finished, status);
        progressed = true;
        continue;
      }
      if (sweep.task_timeout_ms > 0 &&
          Clock::now() - slot.started >=
              std::chrono::milliseconds(sweep.task_timeout_ms)) {
        // SIGKILL escalation: a hung worker gets no grace — SIGTERM could
        // be blocked or ignored by the very hang we are defending against.
        ::kill(slot.pid, SIGKILL);
        ::waitpid(slot.pid, &status, 0);
        const Slot timed_out = std::move(slot);
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(i));
        handleFailure(timed_out, FailKind::kTimeout,
                      static_cast<std::uint32_t>(sweep.task_timeout_ms),
                      "exceeded " + std::to_string(sweep.task_timeout_ms) +
                          " ms");
        progressed = true;
        continue;
      }
      ++i;
    }

    if (!progressed && outstanding > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (ctx.opts.progress) std::fputc('\n', stderr);
  journal.close();

  // --- merge + report -------------------------------------------------------
  std::vector<std::uint32_t> quarantined;
  for (std::uint32_t t = 0; t < task_count; ++t)
    if (states[t].quarantined) quarantined.push_back(t);

  if (!quarantined.empty()) {
    // Graceful degradation: every other cell is journaled and DONE — a
    // later --resume (after the cause is fixed) only re-runs these — but
    // emitting a table with silently missing cells would be a lie, so the
    // sweep reports per-task failure histories and exits non-zero.
    std::string report = "sweep incomplete: " +
                         std::to_string(quarantined.size()) + " of " +
                         std::to_string(task_count) +
                         " tasks quarantined after exhausting " +
                         std::to_string(sweep.retries + 1) + " attempts\n";
    for (const std::uint32_t t : quarantined) {
      report += "  task " + std::to_string(t) + " (" + taskLabel(ctx, t) +
                "):\n";
      for (const std::string& h : states[t].history)
        report += "    " + h + "\n";
    }
    report += "fix the cause and re-run with --resume " + sweep.journal +
              " to finish the remaining tasks\n";
    std::fputs(report.c_str(), stderr);
    ctx.emitText(report);
    for (sim::ResultSink* s : sinks) s->endSuite();
    return 3;
  }

  ctx.results.assign(ctx.workloads.size(), {});
  for (std::size_t w = 0; w < ctx.workloads.size(); ++w) {
    ctx.results[w].resize(ctx.configs.size());
    for (std::size_t c = 0; c < ctx.configs.size(); ++c)
      ctx.results[w][c] =
          std::move(states[w * ctx.configs.size() + c].out);
  }
  sim::emitRunResults(ctx);
  sim::emitSuiteTables(ctx);
  for (sim::ResultSink* s : sinks) s->endSuite();
  return 0;
}

}  // namespace malec::sweep
