// RunOutput wire codec + the worker result file (`.mres`).
//
// A sweep worker hands its RunOutput back to the coordinator as a file:
// a `.mckpt`-style StateIO container (atomic temp+rename write, payload
// checksum, strict validation at open — see src/ckpt/state_io.h) holding a
// "binding" section that pins the result to one (grid fingerprint, task,
// attempt) and a "run_output" section with the encoded RunOutput blob. The
// same blob encoding is embedded verbatim in the journal's completion
// records, so a resumed coordinator rebuilds results without re-reading
// any worker file.
//
// Every field of RunOutput travels — the scalar metrics, every
// InterfaceStats counter (kInterfaceCounterFields keeps the listing
// complete by static_assert), every CoreStats counter, and the full
// energy-report StatSet — because table row rules are arbitrary functions
// over RunOutput: a partial result would silently zero whichever metric
// the next spec reads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace malec::sweep {

/// Serialize `out` into a self-delimiting byte blob.
[[nodiscard]] std::vector<std::uint8_t> encodeRunOutput(
    const sim::RunOutput& out);

/// Decode a blob produced by encodeRunOutput. Returns false (with `err`
/// set) on any structural problem — short blob, trailing bytes, bad field
/// counts — without aborting: the coordinator treats a bad result file as
/// a retryable worker failure, not a crash.
[[nodiscard]] bool decodeRunOutput(const std::uint8_t* p, std::size_t n,
                                   sim::RunOutput& out, std::string& err);

/// Write a worker result file: binding + blob, atomically. Aborts on I/O
/// failure (the worker has nothing useful to do but die loudly — the
/// coordinator will journal the failure and retry).
void writeResultFile(const std::string& path, std::uint64_t fingerprint,
                     std::uint32_t task, std::uint32_t attempt,
                     const sim::RunOutput& out);

/// Read + validate a worker result file against the expected binding.
/// Returns false with `err` on ANY mismatch or corruption — including a
/// checksum failure from a worker killed mid-write or a fault-injected
/// `corrupt-result` — so the coordinator's retry path owns the decision.
[[nodiscard]] bool readResultFile(const std::string& path,
                                  std::uint64_t fingerprint,
                                  std::uint32_t task, std::uint32_t attempt,
                                  sim::RunOutput& out,
                                  std::vector<std::uint8_t>& blob,
                                  std::string& err);

}  // namespace malec::sweep
