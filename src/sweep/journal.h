// Sweep journal: the `.mjournal` v1 append-only log that makes a sharded
// sweep crash-resumable.
//
// A coordinated sweep records every scheduling decision durably BEFORE the
// matching side effect: a task grant before the worker process is spawned,
// a completion (with the full serialized RunOutput) after its result file
// validated, a failure after a worker died / hung / returned garbage, and a
// quarantine once a task exhausted its retry budget. A coordinator killed
// at ANY instant leaves a journal from which `malec_bench --resume`
// reconstructs the exact sweep state: completed tasks are never re-run,
// orphaned grants are re-granted, and the merged report is bit-identical
// to a sweep that was never interrupted.
//
// The byte-level format is specified in docs/FILE_FORMATS.md. Like every
// MALEC on-disk format it is strict — bad magic, version skew, a foreign
// fingerprint (different suite / grid / seed / budget) and any mid-file
// checksum mismatch are hard errors. The ONE tolerated irregularity is a
// torn trailing record (fewer bytes on disk than its frame promises): that
// is the signature of a crash mid-append, and resume drops exactly that
// tail and re-runs the affected task. Appends are fsynced so the tolerated
// window really is just the last record.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace malec::sweep {

/// Magic bytes + version identifying a MALEC sweep journal ("MJNL").
inline constexpr std::uint32_t kJournalMagic = 0x4D4A4E4C;
inline constexpr std::uint32_t kJournalVersion = 1;

/// Record types, in the order the coordinator emits them per task.
enum class RecordType : std::uint8_t {
  kGrant = 1,       ///< task handed to a worker process (before spawn)
  kComplete = 2,    ///< validated result; payload carries the RunOutput blob
  kFail = 3,        ///< one attempt died (exit / signal / timeout / bad result)
  kQuarantine = 4,  ///< retry budget exhausted; sweep continues without it
};

/// Why an attempt failed — journaled so the per-task failure report can
/// say "SIGKILL on attempt 0, timeout on attempt 1" after a resume.
enum class FailKind : std::uint8_t {
  kExit = 1,       ///< worker exited non-zero; code = exit status
  kSignal = 2,     ///< worker died on a signal; code = signal number
  kTimeout = 3,    ///< wall clock exceeded the task timeout; SIGKILL sent
  kBadResult = 4,  ///< worker exited 0 but its result file did not validate
};

/// One parsed journal record. `task`/`attempt` are meaningful for every
/// type; the remaining fields depend on `type` (see docs/FILE_FORMATS.md).
struct JournalRecord {
  RecordType type = RecordType::kGrant;
  std::uint32_t task = 0;
  std::uint32_t attempt = 0;
  FailKind fail_kind = FailKind::kExit;   ///< kFail only
  std::uint32_t fail_code = 0;            ///< kFail only
  std::string message;                    ///< kFail / kQuarantine detail
  std::vector<std::uint8_t> blob;         ///< kComplete: RunOutput bytes
};

/// Everything a journal scan recovers. `valid_bytes` is the file offset
/// just past the last intact record — what resume truncates to before
/// appending — and `torn` says whether a torn trailing record was dropped
/// to get there.
struct JournalScan {
  bool ok = false;
  std::string error;
  std::uint64_t fingerprint = 0;  ///< grid identity (see gridFingerprint)
  std::uint32_t task_count = 0;
  std::vector<JournalRecord> records;
  std::uint64_t valid_bytes = 0;
  bool torn = false;
};

/// Parse and validate `path` fully. Never aborts — the caller decides
/// whether a bad journal is fatal (the resume path) with the scan error.
[[nodiscard]] JournalScan scanJournal(const std::string& path);

/// Append-side handle. Every append is flushed AND fsynced before it
/// returns, so the journal on disk always reflects every decision made —
/// a crash can tear at most the append in flight.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Create a fresh journal at `path`. Refuses to overwrite an existing
  /// file — a stale journal is either resumed or explicitly removed,
  /// never silently clobbered. Returns false with `err` set on failure.
  [[nodiscard]] bool create(const std::string& path, std::uint64_t fingerprint,
                            std::uint32_t task_count, std::string& err);

  /// Reopen an existing (already scanned) journal for appending, first
  /// truncating it to `valid_bytes` — dropping a torn trailing record.
  [[nodiscard]] bool reopen(const std::string& path, std::uint64_t valid_bytes,
                            std::string& err);

  /// Append one record (fsynced). Aborts on I/O failure — a sweep whose
  /// journal cannot grow has lost its crash-safety story and must not
  /// keep simulating on top of silently dropped records.
  void grant(std::uint32_t task, std::uint32_t attempt);
  void complete(std::uint32_t task, std::uint32_t attempt,
                const std::vector<std::uint8_t>& blob);
  void fail(std::uint32_t task, std::uint32_t attempt, FailKind kind,
            std::uint32_t code, const std::string& message);
  void quarantine(std::uint32_t task, std::uint32_t attempts,
                  const std::string& last_error);

  /// The journal file path (for fault-injection truncation in tests).
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Current on-disk size (header + all appended records).
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

  void close();

 private:
  void append(RecordType type, const std::vector<std::uint8_t>& payload);

  std::FILE* f_ = nullptr;
  std::string path_;
  std::uint64_t bytes_ = 0;
};

}  // namespace malec::sweep
