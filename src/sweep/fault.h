// Deterministic fault injection for sweep tests and CI (MALEC_FAULT_SPEC).
//
// Every failure mode the coordinator defends against can be triggered on
// purpose, at an exact (task, attempt), so the fault matrix is a set of
// reproducible tests instead of a hope:
//
//   MALEC_FAULT_SPEC="kill:task=7"            worker SIGKILLs itself when
//                                             granted task 7 (attempt 0)
//   MALEC_FAULT_SPEC="hang:task=3"            worker hangs forever on task 3
//                                             until the task timeout trips
//   MALEC_FAULT_SPEC="corrupt-result:task=5"  worker completes task 5 but
//                                             flips a byte in its result file
//   MALEC_FAULT_SPEC="truncate-journal:task=1" the COORDINATOR tears its own
//                                             journal mid-append right after
//                                             journaling task 1's completion
//                                             and exits — the crash-mid-
//                                             append scenario --resume exists
//                                             for
//
// Clauses compose comma-separated. Worker-side clauses default to firing on
// attempt 0 only (so retry-then-succeed is the natural shape); an explicit
// `:attempts=N` fires on every attempt < N (attempts=99 ≈ always, the
// quarantine scenario). The grammar is strict: an unknown clause or key, a
// missing task= on a worker fault, or a malformed number aborts — a typo'd
// fault spec must never silently test nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace malec::sweep {

struct FaultClause {
  enum class Kind : std::uint8_t {
    kKill,
    kHang,
    kCorruptResult,
    kTruncateJournal,
  };
  Kind kind = Kind::kKill;
  std::uint32_t task = 0;
  bool has_task = false;       ///< truncate-journal may omit task (= any)
  std::uint32_t attempts = 1;  ///< fires while attempt < attempts
};

struct FaultSpec {
  std::vector<FaultClause> clauses;

  /// First matching clause of `kind` for (task, attempt), or nullptr.
  [[nodiscard]] const FaultClause* match(FaultClause::Kind kind,
                                         std::uint32_t task,
                                         std::uint32_t attempt) const;
};

/// Parse a spec string (strict; aborts on malformed input). Empty = none.
[[nodiscard]] FaultSpec parseFaultSpec(const std::string& spec);

/// The MALEC_FAULT_SPEC environment clause set (empty when unset).
[[nodiscard]] FaultSpec faultSpecFromEnv();

/// Worker-side injection point, called when a granted task starts:
/// executes a matching kill (raise SIGKILL) or hang (sleep forever).
void maybeInjectStartFault(const FaultSpec& spec, std::uint32_t task,
                           std::uint32_t attempt);

/// Worker-side injection point after the result file was written: a
/// matching corrupt-result clause flips one payload byte in `path`.
void maybeCorruptResult(const FaultSpec& spec, std::uint32_t task,
                        std::uint32_t attempt, const std::string& path);

}  // namespace malec::sweep
