#include "sweep/fault.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/check.h"
#include "sim/experiment.h"

namespace malec::sweep {

namespace {

[[noreturn]] void badSpec(const std::string& spec, const std::string& why) {
  const std::string msg = "invalid MALEC_FAULT_SPEC clause '" + spec + "': " +
                          why +
                          " (grammar: kill|hang|corrupt-result:task=K"
                          "[:attempts=N] or truncate-journal[:task=K])";
  MALEC_CHECK_MSG(false, msg.c_str());
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t at = 0;
  while (at <= s.size()) {
    const std::size_t next = s.find(sep, at);
    if (next == std::string::npos) {
      parts.push_back(s.substr(at));
      break;
    }
    parts.push_back(s.substr(at, next - at));
    at = next + 1;
  }
  return parts;
}

FaultClause parseClause(const std::string& clause) {
  const std::vector<std::string> parts = split(clause, ':');
  FaultClause fc;
  if (parts[0] == "kill") fc.kind = FaultClause::Kind::kKill;
  else if (parts[0] == "hang") fc.kind = FaultClause::Kind::kHang;
  else if (parts[0] == "corrupt-result")
    fc.kind = FaultClause::Kind::kCorruptResult;
  else if (parts[0] == "truncate-journal")
    fc.kind = FaultClause::Kind::kTruncateJournal;
  else badSpec(clause, "unknown fault '" + parts[0] + "'");

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::size_t eq = parts[i].find('=');
    if (eq == std::string::npos)
      badSpec(clause, "expected key=value, got '" + parts[i] + "'");
    const std::string key = parts[i].substr(0, eq);
    const std::string val = parts[i].substr(eq + 1);
    if (key == "task") {
      fc.task = static_cast<std::uint32_t>(
          sim::parseU64Strict(val, "MALEC_FAULT_SPEC task"));
      fc.has_task = true;
    } else if (key == "attempts") {
      fc.attempts = static_cast<std::uint32_t>(
          sim::parseU64Strict(val, "MALEC_FAULT_SPEC attempts"));
    } else {
      badSpec(clause, "unknown key '" + key + "'");
    }
  }
  if (!fc.has_task && fc.kind != FaultClause::Kind::kTruncateJournal)
    badSpec(clause, "worker faults need an explicit task=K");
  return fc;
}

}  // namespace

const FaultClause* FaultSpec::match(FaultClause::Kind kind,
                                    std::uint32_t task,
                                    std::uint32_t attempt) const {
  for (const FaultClause& fc : clauses) {
    if (fc.kind != kind) continue;
    if (fc.has_task && fc.task != task) continue;
    if (attempt >= fc.attempts) continue;
    return &fc;
  }
  return nullptr;
}

FaultSpec parseFaultSpec(const std::string& spec) {
  FaultSpec fs;
  if (spec.empty()) return fs;
  for (const std::string& clause : split(spec, ',')) {
    if (clause.empty()) badSpec(spec, "empty clause");
    fs.clauses.push_back(parseClause(clause));
  }
  return fs;
}

FaultSpec faultSpecFromEnv() {
  const char* env = std::getenv("MALEC_FAULT_SPEC");
  return parseFaultSpec(env == nullptr ? "" : env);
}

void maybeInjectStartFault(const FaultSpec& spec, std::uint32_t task,
                           std::uint32_t attempt) {
  if (spec.match(FaultClause::Kind::kKill, task, attempt) != nullptr) {
    std::fprintf(stderr, "[fault] SIGKILL self on task %u attempt %u\n",
                 task, attempt);
    ::raise(SIGKILL);
  }
  if (spec.match(FaultClause::Kind::kHang, task, attempt) != nullptr) {
    std::fprintf(stderr, "[fault] hanging on task %u attempt %u\n", task,
                 attempt);
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

void maybeCorruptResult(const FaultSpec& spec, std::uint32_t task,
                        std::uint32_t attempt, const std::string& path) {
  if (spec.match(FaultClause::Kind::kCorruptResult, task, attempt) == nullptr)
    return;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  MALEC_CHECK_MSG(f != nullptr, "fault injection: cannot reopen result file");
  // Flip one byte of the last 8 (inside the payload / checksum region) so
  // the StateIO container fails validation at the coordinator.
  std::fseek(f, -5, SEEK_END);
  const int c = std::fgetc(f);
  std::fseek(f, -5, SEEK_END);
  std::fputc((c == EOF ? 0 : c) ^ 0xFF, f);
  std::fclose(f);
  std::fprintf(stderr, "[fault] corrupted result of task %u attempt %u\n",
               task, attempt);
}

}  // namespace malec::sweep
