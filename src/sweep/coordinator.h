// Fault-tolerant sweep coordinator: shards one experiment spec's
// (workload x configuration) grid across supervised worker PROCESSES and
// journals every scheduling decision, so the sweep survives worker
// crashes, hangs, corrupt results and even the coordinator's own death
// (docs/ARCHITECTURE.md, "Fault-tolerance contract").
//
// Execution model: each grid cell is one task (task = w * configs + c,
// the runMatrixParallel flattening). The coordinator keeps up to
// `workers` children alive, each a fork/exec of `malec_bench --worker`
// granted exactly one task; the worker simulates it with the identical
// RunConfig the in-process matrix would build and hands the full
// RunOutput back through a checksummed result file. Supervision:
//
//   - per-task wall-clock timeout (MALEC_TASK_TIMEOUT / --task-timeout,
//     milliseconds) with SIGKILL escalation,
//   - bounded retries (MALEC_SWEEP_RETRIES) with exponential backoff
//     (MALEC_SWEEP_BACKOFF_MS doubling per attempt) and a deterministic
//     reassignment order (lowest eligible task id first),
//   - quarantine once a task exhausts its retries: the sweep finishes
//     every other cell, emits a per-task failure report and exits
//     non-zero instead of aborting the grid,
//   - crash recovery: `--resume <journal>` replays the `.mjournal`,
//     skips completed tasks, re-grants orphaned or quarantined ones, and
//     the merged report is bit-identical to an uninterrupted run.
//
// Custom-body suites (fig1, tab1_tab2, the host microbenches) are not a
// grid and cannot be sharded — asking for --workers on one is a hard
// error naming the suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/suite.h"

namespace malec::sweep {

/// Process-sharding options, on top of the usual SuiteOptions.
struct SweepOptions {
  unsigned workers = 1;         ///< concurrent worker processes (>= 1)
  std::string journal;          ///< `.mjournal` path (required)
  bool resume = false;          ///< journal must already exist and be valid
  std::uint64_t task_timeout_ms = 0;  ///< 0 = no timeout
  std::uint64_t retries = 2;          ///< re-attempts after the first failure
  std::uint64_t backoff_ms = 250;     ///< base backoff, doubled per attempt
  std::string worker_path;      ///< malec_bench binary to exec for workers
};

/// Range limits for the strictly-parsed knobs (docs/README env table).
inline constexpr std::uint64_t kMaxTaskTimeoutMs = 86'400'000;  ///< one day
inline constexpr std::uint64_t kMaxRetries = 100;
inline constexpr std::uint64_t kMaxBackoffMs = 600'000;
inline constexpr std::uint64_t kMaxWorkers = 1024;

/// Apply environment fallbacks (MALEC_TASK_TIMEOUT, MALEC_SWEEP_RETRIES,
/// MALEC_SWEEP_BACKOFF_MS — strict parses, 0/unset = keep the field's
/// current value) and range-check every knob; violations abort with the
/// offending name and limit. Called by malec_bench before coordinating
/// and directly by the knob death tests.
void resolveSweepTuning(SweepOptions& sw);

/// Identity of one resolved grid: FNV-1a over the suite name, instruction
/// budget, seed and the ordered workload + configuration names. Binds the
/// journal and every worker result file to exactly this sweep — resuming
/// a journal against a different suite, budget, seed, filter outcome or
/// registry content is a hard error, never a silent mis-merge.
[[nodiscard]] std::uint64_t gridFingerprint(const sim::SuiteContext& ctx);

/// Run `spec` sharded across worker processes (see file comment). Returns
/// the process exit code: 0 on success, 3 when quarantined tasks kept the
/// grid from completing (their failure history is reported per task).
[[nodiscard]] int runSuiteCoordinated(const sim::ExperimentSpec& spec,
                                      const sim::SuiteOptions& opts,
                                      const SweepOptions& sweep,
                                      const std::vector<sim::ResultSink*>& sinks);

/// Worker entry (`malec_bench --worker`): resolve the same grid, run task
/// `task` with the exact RunConfig the in-process matrix would build, and
/// write the result file to `result_path`. Returns the worker exit code.
[[nodiscard]] int runWorkerTask(const sim::ExperimentSpec& spec,
                                const sim::SuiteOptions& opts,
                                std::uint32_t task, std::uint32_t attempt,
                                const std::string& result_path);

}  // namespace malec::sweep
