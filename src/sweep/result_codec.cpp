#include "sweep/result_codec.h"

#include <cstring>
#include <iterator>

#include "ckpt/state_io.h"
#include "common/binio.h"
#include "common/check.h"

namespace malec::sweep {

namespace {

void putU32(std::vector<std::uint8_t>& v, std::uint32_t x) {
  const std::size_t at = v.size();
  v.resize(at + 4);
  binio::put32(v.data() + at, x);
}

void putU64(std::vector<std::uint8_t>& v, std::uint64_t x) {
  const std::size_t at = v.size();
  v.resize(at + 8);
  binio::put64(v.data() + at, x);
}

void putF64(std::vector<std::uint8_t>& v, double x) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof x, "IEEE-754 double expected");
  std::memcpy(&bits, &x, sizeof bits);
  putU64(v, bits);
}

void putStr(std::vector<std::uint8_t>& v, const std::string& s) {
  putU32(v, static_cast<std::uint32_t>(s.size()));
  v.insert(v.end(), s.begin(), s.end());
}

struct BlobReader {
  const std::uint8_t* p;
  std::size_t n;
  std::size_t at = 0;
  bool ok = true;

  std::uint32_t u32() {
    if (n - at < 4) { ok = false; return 0; }
    const std::uint32_t v = binio::get32(p + at);
    at += 4;
    return v;
  }
  std::uint64_t u64() {
    if (n - at < 8) { ok = false; return 0; }
    const std::uint64_t v = binio::get64(p + at);
    at += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (!ok || n - at < len) { ok = false; return {}; }
    std::string s(reinterpret_cast<const char*>(p + at), len);
    at += len;
    return s;
  }
};

constexpr std::size_t kIfcFields = std::size(core::kInterfaceCounterFields);
constexpr std::size_t kCoreFields = std::size(cpu::kCoreScaledCounterFields);

}  // namespace

std::vector<std::uint8_t> encodeRunOutput(const sim::RunOutput& out) {
  std::vector<std::uint8_t> b;
  putStr(b, out.benchmark);
  putStr(b, out.config);
  putU64(b, out.cycles);
  putU64(b, out.instructions);
  putF64(b, out.ipc);
  putF64(b, out.dynamic_pj);
  putF64(b, out.leakage_pj);
  putF64(b, out.total_pj);
  putF64(b, out.way_coverage);
  putF64(b, out.l1_load_miss_rate);
  putF64(b, out.merged_load_fraction);
  // Field counts travel explicitly: a blob written by a build with a new
  // counter must fail a decode in an old build at the count, not shift
  // every later field.
  putU32(b, static_cast<std::uint32_t>(kIfcFields));
  for (const auto field : core::kInterfaceCounterFields)
    putU64(b, out.ifc.*field);
  putU64(b, out.core.cycles);
  putU64(b, out.core.instructions);
  putU32(b, static_cast<std::uint32_t>(kCoreFields));
  for (const auto field : cpu::kCoreScaledCounterFields)
    putU64(b, out.core.*field);
  putU32(b, static_cast<std::uint32_t>(out.energy_detail.all().size()));
  for (const auto& [name, value] : out.energy_detail.all()) {
    putStr(b, name);
    putF64(b, value);
  }
  return b;
}

bool decodeRunOutput(const std::uint8_t* p, std::size_t n,
                     sim::RunOutput& out, std::string& err) {
  BlobReader r{p, n};
  out = sim::RunOutput{};
  out.benchmark = r.str();
  out.config = r.str();
  out.cycles = r.u64();
  out.instructions = r.u64();
  out.ipc = r.f64();
  out.dynamic_pj = r.f64();
  out.leakage_pj = r.f64();
  out.total_pj = r.f64();
  out.way_coverage = r.f64();
  out.l1_load_miss_rate = r.f64();
  out.merged_load_fraction = r.f64();
  if (r.u32() != kIfcFields) {
    err = "result blob interface-counter count mismatch";
    return false;
  }
  for (const auto field : core::kInterfaceCounterFields)
    out.ifc.*field = r.u64();
  out.core.cycles = r.u64();
  out.core.instructions = r.u64();
  if (r.u32() != kCoreFields) {
    err = "result blob core-counter count mismatch";
    return false;
  }
  for (const auto field : cpu::kCoreScaledCounterFields)
    out.core.*field = r.u64();
  const std::uint32_t energy_entries = r.u32();
  for (std::uint32_t i = 0; r.ok && i < energy_entries; ++i) {
    const std::string name = r.str();
    const double value = r.f64();
    if (r.ok) out.energy_detail.set(name, value);
  }
  if (!r.ok) {
    err = "result blob is truncated or malformed";
    return false;
  }
  if (r.at != r.n) {
    err = "result blob has trailing bytes";
    return false;
  }
  return true;
}

void writeResultFile(const std::string& path, std::uint64_t fingerprint,
                     std::uint32_t task, std::uint32_t attempt,
                     const sim::RunOutput& out) {
  const std::vector<std::uint8_t> blob = encodeRunOutput(out);
  ckpt::StateWriter w;
  w.beginSection("binding");
  w.u64(fingerprint);
  w.u32(task);
  w.u32(attempt);
  w.endSection();
  w.beginSection("run_output");
  w.u64(blob.size());
  w.bytes(blob.data(), blob.size());
  w.endSection();
  std::string err;
  if (!w.writeTo(path, err)) MALEC_CHECK_MSG(false, err.c_str());
}

bool readResultFile(const std::string& path, std::uint64_t fingerprint,
                    std::uint32_t task, std::uint32_t attempt,
                    sim::RunOutput& out, std::vector<std::uint8_t>& blob,
                    std::string& err) {
  ckpt::StateReader r(path);
  if (!r.ok()) {
    err = r.error();
    return false;
  }
  if (!r.hasSection("binding") || !r.hasSection("run_output")) {
    err = "'" + path + "' is not a sweep result file";
    return false;
  }
  r.openSection("binding");
  const std::uint64_t got_fp = r.u64();
  const std::uint32_t got_task = r.u32();
  const std::uint32_t got_attempt = r.u32();
  r.endSection();
  if (got_fp != fingerprint || got_task != task || got_attempt != attempt) {
    err = "'" + path + "' binds to a different (grid, task, attempt) — "
          "stale or foreign result file";
    return false;
  }
  r.openSection("run_output");
  const std::uint64_t len = r.u64();
  blob.assign(static_cast<std::size_t>(len), 0);
  r.bytes(blob.data(), blob.size());
  r.endSection();
  return decodeRunOutput(blob.data(), blob.size(), out, err);
}

}  // namespace malec::sweep
