#include "phase/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace malec::phase {

namespace {

double sqDist(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double delta = a[i] - b[i];
    d += delta * delta;
  }
  return d;
}

}  // namespace

KMeansResult kmeansCluster(const std::vector<std::vector<double>>& points,
                           const std::vector<std::uint64_t>& weights,
                           std::uint32_t k, std::uint64_t seed,
                           std::uint32_t max_iters) {
  MALEC_CHECK_MSG(!points.empty(), "kmeans needs at least one point");
  MALEC_CHECK_MSG(k > 0, "kmeans needs k > 0");
  MALEC_CHECK_MSG(weights.empty() || weights.size() == points.size(),
                  "kmeans weights must be empty or match the point count");
  const std::size_t n = points.size();
  const std::size_t dim = points[0].size();
  for (const auto& p : points)
    MALEC_CHECK_MSG(p.size() == dim, "kmeans points must share a dimension");
  auto weightOf = [&](std::size_t i) {
    return weights.empty() ? std::uint64_t{1} : weights[i];
  };
  if (k > n) k = static_cast<std::uint32_t>(n);

  // k-means++ seeding: first centre from the RNG, each further centre the
  // point farthest from every chosen centre (deterministic greedy variant —
  // no distance-weighted sampling, so ties resolve to the lowest index).
  Rng rng(seed);
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.below(n)]);
  std::vector<double> best_d(n, std::numeric_limits<double>::max());
  while (centroids.size() < k) {
    std::size_t far_idx = 0;
    double far_d = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      best_d[i] = std::min(best_d[i], sqDist(points[i], centroids.back()));
      if (best_d[i] > far_d) {
        far_d = best_d[i];
        far_idx = i;
      }
    }
    centroids.push_back(points[far_idx]);
  }

  std::vector<std::uint32_t> assign(n, 0);
  // Assignment step (ties -> lowest cluster id); returns whether any
  // point moved.
  auto assignAll = [&]() {
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t best_c = 0;
      double best = std::numeric_limits<double>::max();
      for (std::uint32_t c = 0; c < centroids.size(); ++c) {
        const double d = sqDist(points[i], centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      changed = changed || assign[i] != best_c;
      assign[i] = best_c;
    }
    return changed;
  };
  std::uint32_t iters = 0;
  for (; iters < max_iters; ++iters) {
    const bool changed = assignAll();
    if (iters > 0 && !changed) break;

    // Update step: weighted centroid means. An emptied cluster is reseeded
    // to the point farthest from its current assignment's centroid; each
    // reseed in one step takes a DISTINCT point (the far-point search is
    // otherwise identical for every emptied cluster, and duplicate
    // centroids would tie-break every point to the lower id, silently
    // collapsing the requested phase count).
    std::vector<std::vector<double>> sums(centroids.size(),
                                          std::vector<double>(dim, 0.0));
    std::vector<std::uint64_t> totals(centroids.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t w = weightOf(i);
      totals[assign[i]] += w;
      for (std::size_t d = 0; d < dim; ++d)
        sums[assign[i]][d] += points[i][d] * static_cast<double>(w);
    }
    std::vector<bool> reseed_taken(n, false);
    for (std::uint32_t c = 0; c < centroids.size(); ++c) {
      if (totals[c] == 0) {
        std::size_t far_idx = n;  // n = no eligible point found
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (reseed_taken[i]) continue;
          const double d = sqDist(points[i], centroids[assign[i]]);
          if (d > far_d) {
            far_d = d;
            far_idx = i;
          }
        }
        if (far_idx < n) {
          reseed_taken[far_idx] = true;
          centroids[c] = points[far_idx];
        }
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d)
        centroids[c][d] = sums[c][d] / static_cast<double>(totals[c]);
    }
  }
  // A max_iters exit leaves the loop right after an update step, so the
  // assignment is stale relative to the final centroids — a cluster
  // reseeded in that last update would look empty and be dropped below.
  // One more assignment re-syncs (the converged-break path is already in
  // sync: it breaks before updating).
  if (iters == max_iters) (void)assignAll();

  // Drop empty clusters, renumber densely, pick representatives.
  std::vector<std::uint64_t> member_weight(centroids.size(), 0);
  for (std::size_t i = 0; i < n; ++i) member_weight[assign[i]] += weightOf(i);
  std::vector<std::uint32_t> dense_id(centroids.size(),
                                      std::numeric_limits<std::uint32_t>::max());
  KMeansResult res;
  for (std::uint32_t c = 0; c < centroids.size(); ++c) {
    if (member_weight[c] == 0) continue;
    dense_id[c] = res.clusters++;
    res.weight.push_back(member_weight[c]);
  }
  res.assignment.resize(n);
  res.representative.assign(res.clusters, 0);
  std::vector<double> rep_d(res.clusters,
                            std::numeric_limits<double>::max());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t c = dense_id[assign[i]];
    res.assignment[i] = c;
    const double d = sqDist(points[i], centroids[assign[i]]);
    if (d < rep_d[c]) {  // strict <: ties keep the lowest index
      rep_d[c] = d;
      res.representative[c] = i;
    }
  }
  res.iterations = iters;
  return res;
}

}  // namespace malec::phase
