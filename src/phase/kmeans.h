// Deterministic k-means for phase clustering.
//
// SimPoint clusters interval BBVs with random-restart k-means; this
// reproduction needs every run to be bit-reproducible, so the clusterer is
// seeded from the run RNG (common/rng.h), uses k-means++-style farthest-
// point seeding with deterministic tie-breaks (lowest index wins) and a
// fixed iteration cap. Points may carry weights (interval instruction
// counts) so a short trailing interval pulls its centroid proportionally.
#pragma once

#include <cstdint>
#include <vector>

namespace malec::phase {

struct KMeansResult {
  /// Point index -> cluster id (0..k-1). Same size as the input.
  std::vector<std::uint32_t> assignment;
  /// Per-cluster: the member point closest to the centroid (lowest index on
  /// distance ties) — the phase's representative interval.
  std::vector<std::uint64_t> representative;
  /// Per-cluster summed point weights.
  std::vector<std::uint64_t> weight;
  /// Effective cluster count (k clamped to the number of points; empty
  /// clusters are dropped and ids renumbered densely).
  std::uint32_t clusters = 0;
  std::uint32_t iterations = 0;  ///< iterations actually run
};

/// Cluster `points` (all the same dimension) into at most `k` clusters.
/// `weights` must be empty (all points weigh 1) or match points.size().
/// Deterministic for a fixed (points, weights, k, seed, max_iters).
[[nodiscard]] KMeansResult kmeansCluster(
    const std::vector<std::vector<double>>& points,
    const std::vector<std::uint64_t>& weights, std::uint32_t k,
    std::uint64_t seed, std::uint32_t max_iters = 32);

}  // namespace malec::phase
