#include "phase/interval_profiler.h"

#include <utility>

#include "common/check.h"

namespace malec::phase {

namespace {

/// SplitMix64-style finaliser, spreading consecutive region ids across the
/// histogram buckets. Pure u64 math — identical on every platform.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Bucket index for the log2 |stride| histogram: 0 = same address,
/// otherwise 1 + floor(log2 |delta|), clamped to the last bucket. The
/// shrink-the-delta loop (rather than grow-the-shift) cannot shift past
/// the operand width, so a full-range 64-bit delta (external traces may
/// span the canonical-address halves) stays defined and terminates.
std::uint32_t strideBucket(Addr a, Addr b, std::uint32_t buckets) {
  std::uint64_t delta = a > b ? a - b : b - a;
  if (delta == 0) return 0;
  std::uint32_t lg = 0;
  while (delta > 1) {
    delta >>= 1;
    ++lg;
  }
  const std::uint32_t bucket = 1 + lg;
  return bucket < buckets ? bucket : buckets - 1;
}

}  // namespace

IntervalProfiler::IntervalProfiler(AddressLayout layout, Params params)
    : layout_(layout),
      params_(params),
      region_hist_(params.region_buckets, 0),
      stride_hist_(params.stride_buckets, 0),
      loc_(layout, {0}) {
  MALEC_CHECK_MSG(params_.interval_size > 0,
                  "interval size must be positive");
  MALEC_CHECK_MSG(params_.region_buckets > 0 && params_.stride_buckets > 0,
                  "histogram bucket counts must be positive");
  MALEC_CHECK_MSG(params_.pages_per_region > 0,
                  "pages_per_region must be positive");
}

void IntervalProfiler::observe(const trace::InstrRecord& r) {
  ++in_interval_;
  loc_.observe(r);
  if (r.isMem()) {
    ++mem_refs_;
    if (r.isLoad()) {
      ++loads_;
      if (have_prev_load_)
        ++stride_hist_[strideBucket(r.vaddr, prev_load_addr_,
                                    params_.stride_buckets)];
      prev_load_addr_ = r.vaddr;
      have_prev_load_ = true;
    } else {
      ++stores_;
    }
    const std::uint64_t region =
        static_cast<std::uint64_t>(layout_.pageId(r.vaddr)) /
        params_.pages_per_region;
    ++region_hist_[mix64(region) % params_.region_buckets];
  }
  if (in_interval_ >= params_.interval_size) closeInterval();
}

void IntervalProfiler::closeInterval() {
  IntervalFeatures f;
  f.index = intervals_.size();
  f.instructions = in_interval_;
  f.mem_refs = mem_refs_;
  f.loads = loads_;
  f.stores = stores_;

  // Normalised feature vector: region histogram, stride histogram, the
  // instruction mix and the LocalityAnalyzer follow fractions. Divisors are
  // the interval's own counts, so a short trailing interval is comparable
  // to full ones.
  f.vec.reserve(region_hist_.size() + stride_hist_.size() + 5);
  const double mem = mem_refs_ > 0 ? static_cast<double>(mem_refs_) : 1.0;
  for (const std::uint64_t c : region_hist_)
    f.vec.push_back(static_cast<double>(c) / mem);
  const double ld_pairs =
      loads_ > 1 ? static_cast<double>(loads_ - 1) : 1.0;
  for (const std::uint64_t c : stride_hist_)
    f.vec.push_back(static_cast<double>(c) / ld_pairs);
  f.vec.push_back(static_cast<double>(mem_refs_) /
                  static_cast<double>(in_interval_));
  f.vec.push_back(static_cast<double>(loads_) / mem);
  const auto groups = loc_.pageGroups();
  f.vec.push_back(groups.empty() ? 0.0 : groups[0].frac_followed);
  f.vec.push_back(loc_.sameLineFollowedFraction());
  f.vec.push_back(loc_.storeSamePageFollowedFraction());
  intervals_.push_back(std::move(f));

  in_interval_ = 0;
  mem_refs_ = loads_ = stores_ = 0;
  region_hist_.assign(params_.region_buckets, 0);
  stride_hist_.assign(params_.stride_buckets, 0);
  loc_ = trace::LocalityAnalyzer(layout_, {0});
  have_prev_load_ = false;
  prev_load_addr_ = 0;
}

std::vector<IntervalFeatures> IntervalProfiler::finish() {
  if (in_interval_ > 0) closeInterval();
  return std::move(intervals_);
}

}  // namespace malec::phase
