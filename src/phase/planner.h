// Phase planning: stream a trace (or any bounded TraceSource) through the
// interval profiler, cluster the interval feature vectors with the
// deterministic k-means, and emit a SamplePlan selecting one representative
// interval per phase — the `trace_tools phases` pipeline as a library call.
#pragma once

#include <cstdint>
#include <string>

#include "phase/interval_profiler.h"
#include "phase/kmeans.h"
#include "phase/sample_plan.h"

namespace malec::phase {

struct PlanParams {
  std::uint64_t interval_size = 10'000;  ///< instructions per interval
  std::uint32_t phases = 4;              ///< max clusters (clamped to N)
  /// Warmup prefix per pick. A warmup of about one interval re-primes the
  /// caches/TLB after a fast-forward gap (measured on the synthetic
  /// captures: cycle error falls under ~1% at warmup == interval, vs ~8%
  /// at a quarter of it); adjacent picks need none — the replay clamps the
  /// prefix to the gap actually skipped.
  std::uint64_t warmup_instructions = 10'000;
  std::uint64_t seed = 1;  ///< k-means seeding RNG
};

/// Summary of a planning run (for CLI reports and tests).
struct PlanSummary {
  std::uint64_t intervals = 0;  ///< profiled interval count
  std::uint32_t clusters = 0;   ///< phases actually found
  std::uint32_t kmeans_iterations = 0;
};

/// Profile + cluster the trace at `trace_path` and return the plan (bound
/// to the trace's record count and checksum). Aborts on an unreadable or
/// corrupt trace — planning must never bind a plan to a half-read file.
/// `summary` (optional) receives the profiling/clustering statistics.
[[nodiscard]] SamplePlan buildSamplePlan(const std::string& trace_path,
                                         const PlanParams& params,
                                         PlanSummary* summary = nullptr);

}  // namespace malec::phase
