// Sample plans: which intervals of a trace to simulate, with what warmup,
// and how to weight them — the contract between `trace_tools phases` (which
// writes a plan as a `.mplan` sidecar next to the trace) and the sampled
// replay mode of sim::runOne.
//
// On-disk `.mplan` format: see docs/FILE_FORMATS.md for the byte-level
// specification. Like trace v2 it is strict and versioned: magic + version,
// a checksum over the entry payload, an entry count validated against the
// file size at open, and the source trace's record count + checksum so a
// plan can never be applied to a different (or modified) trace than the one
// it was computed from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace malec::trace {
class TraceReader;
}

namespace malec::phase {

/// Magic bytes + version identifying a MALEC sample-plan file ("MPLN").
inline constexpr std::uint32_t kPlanMagic = 0x4D504C4E;
inline constexpr std::uint32_t kPlanVersion = 1;

/// One selected phase: the representative interval and the instruction
/// weight of the whole cluster it stands for.
struct PhasePick {
  std::uint64_t interval_index = 0;
  /// Summed instruction count of every interval in this phase's cluster.
  /// Weights are stored as exact integer counts (not floating fractions):
  /// the picks' weight_instructions sum to exactly trace_records.
  std::uint64_t weight_instructions = 0;
};

/// A validated sample plan. Invariants (enforced by load/save and by
/// MALEC_CHECKs in the sampled replay): picks sorted by strictly increasing
/// interval_index, every index < totalIntervals(), weights summing to
/// trace_records, interval_size > 0.
struct SamplePlan {
  std::uint64_t interval_size = 0;          ///< instructions per interval
  std::uint64_t warmup_instructions = 0;    ///< warmup prefix per pick
  std::uint64_t trace_records = 0;          ///< source trace record count
  std::uint64_t trace_checksum = 0;         ///< source trace v2 checksum
  std::vector<PhasePick> picks;

  [[nodiscard]] bool empty() const { return picks.empty(); }
  /// Number of intervals the source trace divides into (last one partial).
  [[nodiscard]] std::uint64_t totalIntervals() const {
    return interval_size == 0
               ? 0
               : (trace_records + interval_size - 1) / interval_size;
  }
  /// Fractional weight of pick `i` (its cluster's instruction share).
  [[nodiscard]] double weight(std::size_t i) const {
    return static_cast<double>(picks[i].weight_instructions) /
           static_cast<double>(trace_records);
  }
  /// Instructions the sampled replay actually simulates (warmup included) —
  /// the numerator of the advertised fast-forward ratio.
  [[nodiscard]] std::uint64_t simulatedInstructions() const;
};

/// Write `plan` to `path`. Returns false with a message in `err` on I/O
/// failure or an invariant violation (never writes an invalid plan).
bool saveSamplePlan(const SamplePlan& plan, const std::string& path,
                    std::string& err);

/// Read and fully validate a `.mplan` file. Returns false with a message in
/// `err` for anything malformed: bad magic/version, a file size that
/// disagrees with the pick count, a checksum mismatch, unsorted or
/// out-of-range picks, weights that do not sum to the trace record count.
bool loadSamplePlan(const std::string& path, SamplePlan& out,
                    std::string& err);

/// The conventional sidecar path for a trace: "dir/gcc.mtrace" ->
/// "dir/gcc.mplan" (extension replaced).
[[nodiscard]] std::string planSidecarPath(const std::string& trace_path);

/// Does `plan` bind to the trace opened in `rd` — record count always,
/// payload checksum when the trace format carries one (v2)? THE binding
/// predicate: the sampled replay's hard check and the phase_sampled
/// suite's skip decision both call this, so the two can never drift into
/// "gate admits what the replay rejects".
[[nodiscard]] bool planBindsTo(const SamplePlan& plan,
                               const trace::TraceReader& rd);

}  // namespace malec::phase
