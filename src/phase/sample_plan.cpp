#include "phase/sample_plan.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/binio.h"
#include "trace/trace_io.h"

namespace malec::phase {

namespace {

using binio::get32;
using binio::get64;
using binio::put32;
using binio::put64;

constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kEntryBytes = 16;

/// FNV-1a 64-bit over the entry payload — the same binio::fnv1a as the
/// trace v2 record checksum, from the offset basis.
std::uint64_t fnv1a(const std::uint8_t* p, std::size_t n) {
  return binio::fnv1a(binio::kFnvOffset, p, n);
}

/// Shared invariant check for save (refuse to write garbage) and load
/// (refuse to trust it). `err` gets the first violation.
bool validate(const SamplePlan& plan, std::string& err) {
  if (plan.interval_size == 0) {
    err = "interval size is 0";
    return false;
  }
  if (plan.picks.empty()) {
    err = "plan selects no intervals";
    return false;
  }
  if (plan.trace_records == 0) {
    err = "plan binds to an empty trace";
    return false;
  }
  const std::uint64_t total = plan.totalIntervals();
  std::uint64_t weight_sum = 0;
  std::uint64_t prev_index = 0;
  for (std::size_t i = 0; i < plan.picks.size(); ++i) {
    const PhasePick& p = plan.picks[i];
    if (p.interval_index >= total) {
      err = "pick " + std::to_string(i) + " selects interval " +
            std::to_string(p.interval_index) + " of a " +
            std::to_string(total) + "-interval trace";
      return false;
    }
    if (i > 0 && p.interval_index <= prev_index) {
      err = "picks are not sorted by strictly increasing interval index";
      return false;
    }
    prev_index = p.interval_index;
    if (p.weight_instructions == 0) {
      err = "pick " + std::to_string(i) + " has zero weight";
      return false;
    }
    // Overflow-safe accumulation: a corrupt plan whose weights wrap mod
    // 2^64 back to trace_records must not pass the equality check below.
    if (p.weight_instructions > plan.trace_records - weight_sum) {
      err = "pick weights exceed the trace record count";
      return false;
    }
    weight_sum += p.weight_instructions;
  }
  if (weight_sum != plan.trace_records) {
    err = "pick weights sum to " + std::to_string(weight_sum) +
          " but the trace holds " + std::to_string(plan.trace_records) +
          " records";
    return false;
  }
  return true;
}

}  // namespace

std::uint64_t SamplePlan::simulatedInstructions() const {
  // Mirrors the sampled-replay loop: the warmup prefix is clamped at the
  // trace start and at the previous segment's end (picks are sorted, so
  // `pos` walks forward exactly like the replay's reader).
  std::uint64_t n = 0;
  std::uint64_t pos = 0;
  for (const PhasePick& p : picks) {
    const std::uint64_t start = p.interval_index * interval_size;
    const std::uint64_t end =
        std::min(start + interval_size, trace_records);
    const std::uint64_t warm =
        std::min(warmup_instructions, start - std::min(start, pos));
    n += warm + (end - start);
    pos = end;
  }
  return n;
}

bool saveSamplePlan(const SamplePlan& plan, const std::string& path,
                    std::string& err) {
  if (!validate(plan, err)) {
    err = "refusing to write invalid plan '" + path + "': " + err;
    return false;
  }
  std::vector<std::uint8_t> entries(plan.picks.size() * kEntryBytes);
  for (std::size_t i = 0; i < plan.picks.size(); ++i) {
    put64(entries.data() + i * kEntryBytes, plan.picks[i].interval_index);
    put64(entries.data() + i * kEntryBytes + 8,
          plan.picks[i].weight_instructions);
  }
  std::uint8_t hdr[kHeaderBytes] = {};
  put32(hdr + 0, kPlanMagic);
  put32(hdr + 4, kPlanVersion);
  put64(hdr + 8, plan.interval_size);
  put64(hdr + 16, plan.warmup_instructions);
  put64(hdr + 24, plan.trace_records);
  put64(hdr + 32, plan.trace_checksum);
  put32(hdr + 40, static_cast<std::uint32_t>(plan.picks.size()));
  put32(hdr + 44, 0);  // reserved
  put64(hdr + 48, fnv1a(entries.data(), entries.size()));
  put64(hdr + 56, 0);  // reserved

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    err = "cannot open '" + path + "' for writing";
    return false;
  }
  const bool ok =
      std::fwrite(hdr, 1, sizeof hdr, f) == sizeof hdr &&
      std::fwrite(entries.data(), 1, entries.size(), f) == entries.size();
  if (std::fclose(f) != 0 || !ok) {
    err = "short write to '" + path + "'";
    return false;
  }
  return true;
}

bool loadSamplePlan(const std::string& path, SamplePlan& out,
                    std::string& err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    err = "cannot open '" + path + "'";
    return false;
  }
  std::uint8_t hdr[kHeaderBytes];
  if (std::fread(hdr, 1, sizeof hdr, f) != sizeof hdr) {
    std::fclose(f);
    err = "'" + path + "' is too short to hold a sample-plan header";
    return false;
  }
  if (get32(hdr + 0) != kPlanMagic) {
    std::fclose(f);
    err = "'" + path + "' is not a MALEC sample plan (bad magic)";
    return false;
  }
  const std::uint32_t version = get32(hdr + 4);
  if (version != kPlanVersion) {
    std::fclose(f);
    err = "'" + path + "' has unsupported sample-plan version " +
          std::to_string(version);
    return false;
  }
  SamplePlan plan;
  plan.interval_size = get64(hdr + 8);
  plan.warmup_instructions = get64(hdr + 16);
  plan.trace_records = get64(hdr + 24);
  plan.trace_checksum = get64(hdr + 32);
  const std::uint32_t picks = get32(hdr + 40);

  // File size must match the header's pick count exactly — a truncated or
  // appended-to plan is a hard error, like a truncated trace.
  std::error_code ec;
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (ec) {
    std::fclose(f);
    err = "cannot stat '" + path + "': " + ec.message();
    return false;
  }
  const std::uint64_t expect =
      kHeaderBytes + static_cast<std::uint64_t>(picks) * kEntryBytes;
  if (static_cast<std::uint64_t>(file_size) != expect) {
    std::fclose(f);
    err = "'" + path + "' is truncated or corrupt: header promises " +
          std::to_string(picks) + " picks (" + std::to_string(expect) +
          " bytes) but the file holds " + std::to_string(file_size) +
          " bytes";
    return false;
  }

  std::vector<std::uint8_t> entries(static_cast<std::size_t>(picks) *
                                    kEntryBytes);
  const bool read_ok =
      std::fread(entries.data(), 1, entries.size(), f) == entries.size();
  std::fclose(f);
  if (!read_ok) {
    err = "short read from '" + path + "'";
    return false;
  }
  if (fnv1a(entries.data(), entries.size()) != get64(hdr + 48)) {
    err = "'" + path + "': pick checksum mismatch — the payload is corrupt";
    return false;
  }
  plan.picks.resize(picks);
  for (std::uint32_t i = 0; i < picks; ++i) {
    plan.picks[i].interval_index = get64(entries.data() + i * kEntryBytes);
    plan.picks[i].weight_instructions =
        get64(entries.data() + i * kEntryBytes + 8);
  }
  if (!validate(plan, err)) {
    err = "'" + path + "': " + err;
    return false;
  }
  out = std::move(plan);
  return true;
}

std::string planSidecarPath(const std::string& trace_path) {
  return std::filesystem::path(trace_path)
      .replace_extension(".mplan")
      .string();
}

bool planBindsTo(const SamplePlan& plan, const trace::TraceReader& rd) {
  if (plan.trace_records != rd.total()) return false;
  if (rd.version() == trace::kTraceVersion)
    return plan.trace_checksum == rd.expectedChecksum();
  // Checksum-less (v1) trace: it can only be the plan's source if the
  // plan was ALSO computed from a checksum-less trace — a nonzero stored
  // checksum proves a v2 origin, so a count-matching v1 file is a
  // different capture, not the one the picks were clustered from.
  return plan.trace_checksum == 0;
}

}  // namespace malec::phase
