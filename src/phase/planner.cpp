#include "phase/planner.h"

#include <algorithm>

#include "common/check.h"
#include "trace/trace_io.h"

namespace malec::phase {

SamplePlan buildSamplePlan(const std::string& trace_path,
                           const PlanParams& params, PlanSummary* summary) {
  MALEC_CHECK_MSG(params.interval_size > 0, "interval size must be > 0");
  MALEC_CHECK_MSG(params.phases > 0, "phase count must be > 0");

  trace::TraceReader rd(trace_path);
  if (!rd.ok()) MALEC_CHECK_MSG(false, rd.error().c_str());
  // Profile under the layout the trace was captured with (v2 headers carry
  // it); v1 traces fall back to the default Table-II layout.
  const AddressLayout layout = rd.hasLayout()
                                   ? AddressLayout(rd.layoutParams())
                                   : AddressLayout{};

  IntervalProfiler::Params pp;
  pp.interval_size = params.interval_size;
  IntervalProfiler profiler(layout, pp);
  trace::InstrRecord r;
  while (rd.next(r)) profiler.observe(r);
  if (!rd.ok()) MALEC_CHECK_MSG(false, rd.error().c_str());
  MALEC_CHECK_MSG(rd.total() > 0, "cannot plan phases over an empty trace");

  const std::vector<IntervalFeatures> intervals = profiler.finish();
  std::vector<std::vector<double>> points;
  std::vector<std::uint64_t> weights;
  points.reserve(intervals.size());
  weights.reserve(intervals.size());
  for (const IntervalFeatures& f : intervals) {
    points.push_back(f.vec);
    weights.push_back(f.instructions);
  }

  const KMeansResult km =
      kmeansCluster(points, weights, params.phases, params.seed);

  SamplePlan plan;
  plan.interval_size = params.interval_size;
  plan.warmup_instructions = params.warmup_instructions;
  plan.trace_records = rd.total();
  plan.trace_checksum = rd.expectedChecksum();
  plan.picks.resize(km.clusters);
  for (std::uint32_t c = 0; c < km.clusters; ++c) {
    plan.picks[c].interval_index = km.representative[c];
    plan.picks[c].weight_instructions = km.weight[c];
  }
  std::sort(plan.picks.begin(), plan.picks.end(),
            [](const PhasePick& a, const PhasePick& b) {
              return a.interval_index < b.interval_index;
            });

  if (summary != nullptr) {
    summary->intervals = intervals.size();
    summary->clusters = km.clusters;
    summary->kmeans_iterations = km.iterations;
  }
  return plan;
}

}  // namespace malec::phase
