// BBV-style interval profiling for phase-sampled simulation.
//
// SimPoint's basic-block vectors are unavailable to a trace format that
// carries no PC, so the profiler's analogue is an address-region access
// histogram: the instruction stream is cut into fixed-size intervals and
// each interval is summarised as a feature vector — which address regions
// it touched (hashed page-region histogram), its load/store mix, its
// consecutive-load stride distribution, and the same-page/same-line follow
// fractions computed by a per-interval LocalityAnalyzer. Intervals with
// similar vectors behave similarly in the simulator, which is what the
// k-means phase clusterer (phase/kmeans.h) exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "common/address.h"
#include "trace/locality_analyzer.h"
#include "trace/record.h"

namespace malec::phase {

/// One profiled interval: raw counters plus the normalised feature vector
/// handed to the clusterer. Every vector component is in [0, 1] so no
/// single feature family dominates the Euclidean distance.
struct IntervalFeatures {
  std::uint64_t index = 0;         ///< interval number, 0-based
  std::uint64_t instructions = 0;  ///< records in this interval
  std::uint64_t mem_refs = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::vector<double> vec;
};

/// Streaming profiler: feed records in program order, then finish().
class IntervalProfiler {
 public:
  struct Params {
    /// Instructions per interval. The final interval keeps its (shorter)
    /// actual length; the clusterer weights by instruction count.
    std::uint64_t interval_size = 100'000;
    /// Buckets of the hashed page-region histogram (the BBV analogue).
    std::uint32_t region_buckets = 32;
    /// Pages per address region: consecutive pages that fall into the same
    /// histogram slot before hashing (captures medium-range locality).
    std::uint32_t pages_per_region = 16;
    /// Buckets of the log2 |consecutive-load stride| histogram.
    std::uint32_t stride_buckets = 8;
  };

  IntervalProfiler(AddressLayout layout, Params params);

  void observe(const trace::InstrRecord& r);

  /// Flush the trailing partial interval (if any) and return every interval
  /// in stream order. The profiler is spent afterwards.
  [[nodiscard]] std::vector<IntervalFeatures> finish();

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  void closeInterval();

  AddressLayout layout_;
  Params params_;
  std::vector<IntervalFeatures> intervals_;

  // --- current-interval accumulators ---------------------------------------
  std::uint64_t in_interval_ = 0;
  std::uint64_t mem_refs_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::vector<std::uint64_t> region_hist_;
  std::vector<std::uint64_t> stride_hist_;
  /// Per-interval locality analysis (same-page follow chains, same-line and
  /// store-page follow fractions) — one fresh analyzer per interval, so its
  /// access buffer never outgrows one interval.
  trace::LocalityAnalyzer loc_;
  bool have_prev_load_ = false;
  Addr prev_load_addr_ = 0;
};

}  // namespace malec::phase
