#include "core/baseline_interface.h"

#include <algorithm>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::core {

namespace {

mem::L1Cache::Params l1Params(const SystemConfig& sys) {
  mem::L1Cache::Params p;
  p.layout = sys.layout;
  p.restrict_alloc_ways = false;  // baselines use all four ways
  p.seed = sys.seed * 11 + 5;
  return p;
}

mem::L2Cache::Params l2Params(const SystemConfig& sys) {
  mem::L2Cache::Params p;
  p.line_bytes = sys.layout.lineBytes();
  p.seed = sys.seed * 13 + 7;
  return p;
}

mem::MemoryHierarchy::Params hierParams(const SystemConfig& sys) {
  mem::MemoryHierarchy::Params p;
  p.l2_latency = sys.l2_latency;
  p.dram_latency = sys.dram_latency;
  p.mshrs = sys.mshrs;
  return p;
}

TranslationEngine::Params engineParams(const SystemConfig& sys) {
  TranslationEngine::Params p;
  p.layout = sys.layout;
  p.utlb_entries = sys.utlb_entries;
  p.tlb_entries = sys.tlb_entries;
  p.way_tables = false;  // baselines have no way determination
  p.walk_latency = sys.page_walk_latency;
  p.seed = sys.seed * 17 + 9;
  return p;
}

}  // namespace

BaselineInterface::BaselineInterface(const InterfaceConfig& cfg,
                                     const SystemConfig& sys,
                                     energy::EnergyAccount& ea)
    : cfg_(cfg),
      sys_(sys),
      ea_(ea),
      id_(ea),
      l1_(l1Params(sys)),
      l2_(l2Params(sys)),
      hier_(l1_, l2_, hierParams(sys)),
      engine_(engineParams(sys), ea),
      sb_(sys.sb_entries, sys.layout),
      mb_(sys.mb_entries, sys.layout) {
  MALEC_CHECK(cfg.kind == InterfaceKind::kBase1LdSt ||
              cfg.kind == InterfaceKind::kBase2Ld1St);

  hier_.setFillCallback([this](Addr, WayIdx) {
    ea_.count(id_.tag_write);
    ea_.count(id_.line_write);
  });
  hier_.setEvictCallback([this](Addr) { ea_.count(id_.line_read); });
}

std::uint32_t BaselineInterface::loadPortsPerCycle() const {
  // Base1ldst: the single rd/wt port. Base2ld1st: rd/wt + rd.
  return cfg_.kind == InterfaceKind::kBase1LdSt ? 1 : 2;
}

void BaselineInterface::beginCycle(Cycle now) { now_ = now; }

bool BaselineInterface::canAcceptLoad() const {
  // Allow a small backlog (loads displaced by an MBE write); beyond that
  // the AGUs stall.
  return pending_loads_.size() < loadPortsPerCycle() + 2u;
}

bool BaselineInterface::canAcceptStore() const { return !sb_.full(); }

bool BaselineInterface::submit(const MemOp& op) {
  if (op.is_load) {
    if (!canAcceptLoad()) return false;
    // lint:allow(hot-alloc: pending-load list is bounded by canAcceptLoad and reuses retained capacity)
    pending_loads_.push_back(op);
    ++stats_.loads_submitted;
  } else {
    if (sb_.full()) return false;
    sb_.insert(op.seq, op.vaddr, op.size);
    ++stats_.stores_submitted;
  }
  return true;
}

void BaselineInterface::notifyStoreCommit(SeqNum seq) {
  sb_.markCommitted(seq);
}

void BaselineInterface::drainStoreBuffer() {
  if (mb_.full() && pending_mbe_.has_value()) return;
  auto entry = sb_.popCommitted();
  if (!entry.has_value()) return;
  if (mb_.absorb(entry->vaddr, entry->size)) return;
  if (mb_.full()) {
    pending_mbe_ = mb_.evictLru();
    MALEC_CHECK(pending_mbe_.has_value());
  }
  mb_.allocate(entry->vaddr, entry->size);
}

Cycle BaselineInterface::accessL1Load([[maybe_unused]] const MemOp& op, Addr paddr,
                                      Cycle now) {
  ++stats_.load_l1_accesses;
  ++stats_.conventional_accesses;
  ea_.count(id_.ctrl);
  // Conventional access: all tag and all data arrays of the addressed bank
  // fire in parallel; the matching tag selects the data (paper Sec. V).
  ea_.count(id_.tag_read);
  ea_.count(id_.data_read, sys_.layout.l1Assoc());
  const auto probe = l1_.probe(paddr);
  if (probe.has_value()) {
    ++stats_.load_l1_hits;
    l1_.touch(paddr, *probe);
    return now + cfg_.l1_latency;
  }
  ++stats_.load_l1_misses;
  const auto miss = hier_.missAccess(paddr, now, /*is_store=*/false);
  return miss.ready_cycle + cfg_.l1_latency;
}

void BaselineInterface::accessL1Write(Addr vaddr, Cycle now) {
  ++stats_.write_l1_accesses;
  ++stats_.mbe_writes;
  ++stats_.conventional_accesses;
  // The MBE write translates like any other access (multi-ported TLB).
  const auto tr = engine_.translate(sys_.layout.pageId(vaddr));
  const Addr paddr =
      sys_.layout.compose(tr.ppage, sys_.layout.pageOffset(vaddr));
  ea_.count(id_.ctrl);
  ea_.count(id_.tag_read);
  const auto probe = l1_.probe(paddr);
  if (probe.has_value()) {
    ea_.count(id_.data_write);
    l1_.markDirty(paddr, *probe);
    l1_.touch(paddr, *probe);
    return;
  }
  ++stats_.write_l1_misses;
  (void)hier_.missAccess(paddr, now, /*is_store=*/true);
  ea_.count(id_.data_write);
}

void BaselineInterface::serviceLoads(Cycle now) {
  // Port budget: the rd/wt port serves either the MBE write or a load; the
  // extra rd port (Base2ld1st) serves one more load. The MBE write takes
  // the rd/wt port when it is the only work or the Merge Buffer is under
  // pressure.
  std::uint32_t load_budget = loadPortsPerCycle();
  const bool write_now =
      pending_mbe_.has_value() && (pending_loads_.empty() || mb_.full());
  if (write_now) {
    accessL1Write(pending_mbe_->line_base, now);
    pending_mbe_.reset();
    --load_budget;
    if (!pending_loads_.empty()) ++stats_.port_conflicts;
  }

  std::uint32_t serviced = 0;
  while (serviced < load_budget && !pending_loads_.empty()) {
    const MemOp op = pending_loads_.front();
    pending_loads_.erase(pending_loads_.begin());
    ++serviced;

    const auto tr = engine_.translate(sys_.layout.pageId(op.vaddr));
    const Addr paddr =
        sys_.layout.compose(tr.ppage, sys_.layout.pageOffset(op.vaddr));

    const bool fwd_sb = sb_.coversLoad(op.vaddr, op.size, /*split=*/false);
    const bool fwd_mb =
        !fwd_sb && mb_.coversLoad(op.vaddr, op.size, /*split=*/false);
    if (fwd_sb) ++stats_.sb_forwards;
    if (fwd_mb) ++stats_.mb_forwards;

    Cycle ready;
    if (fwd_sb || fwd_mb) {
      ready = now + cfg_.l1_latency + tr.extra_latency;
    } else {
      ready = accessL1Load(op, paddr, now) + tr.extra_latency;
    }
    completions_.push(ready, op.seq);
  }
}

void BaselineInterface::endCycle(Cycle now) {
  drainStoreBuffer();
  serviceLoads(now);
}

void BaselineInterface::drainCompletions(Cycle now,
                                         std::vector<SeqNum>& out) {
  // lint:allow(hot-alloc: caller-owned completion vector retains its capacity across cycles)
  completions_.drainReady(now, [&out](SeqNum seq) { out.push_back(seq); });
}

bool BaselineInterface::quiesced() const {
  return pending_loads_.empty() && completions_.empty() && sb_.size() == 0 &&
         !pending_mbe_.has_value();
}

void BaselineInterface::saveState(ckpt::StateWriter& w) const {
  l1_.saveState(w);
  l2_.saveState(w);
  hier_.saveState(w);
  engine_.saveState(w);
  sb_.saveState(w);
  mb_.saveState(w);
  w.u64(pending_loads_.size());
  for (const MemOp& op : pending_loads_) saveMemOp(w, op);
  w.u8(pending_mbe_.has_value() ? 1 : 0);
  if (pending_mbe_.has_value()) lsq::MergeBuffer::saveEntry(w, *pending_mbe_);
  completions_.saveState(w);
  for (const auto field : kInterfaceCounterFields) w.u64(stats_.*field);
  w.u64(now_);
}

void BaselineInterface::loadState(ckpt::StateReader& r) {
  l1_.loadState(r);
  l2_.loadState(r);
  hier_.loadState(r);
  engine_.loadState(r);
  sb_.loadState(r);
  mb_.loadState(r);
  const std::uint64_t pending = r.u64();
  // canAcceptLoad() bounds the backlog at ports + 2; a checkpoint past
  // that is from a different configuration (or corrupt beyond checksums).
  MALEC_CHECK_MSG(pending <= loadPortsPerCycle() + 2u,
                  "pending-load checkpoint exceeds this port organisation");
  pending_loads_.assign(static_cast<std::size_t>(pending), MemOp{});
  for (MemOp& op : pending_loads_) op = loadMemOp(r);
  if (r.u8() != 0) {
    pending_mbe_ = lsq::MergeBuffer::loadEntry(r);
  } else {
    pending_mbe_.reset();
  }
  completions_.loadState(r);
  for (const auto field : kInterfaceCounterFields) stats_.*field = r.u64();
  now_ = r.u64();
}

}  // namespace malec::core
