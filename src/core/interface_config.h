// Configuration of an L1 data-memory interface (Table I) and of the
// surrounding system (Table II).
#pragma once

#include <cstdint>
#include <string>

#include "common/address.h"
#include "common/types.h"

namespace malec::core {

/// Way-determination scheme attached to a MALEC pipeline.
enum class WayDetKind {
  kNone,       ///< always conventional accesses
  kWayTables,  ///< Page-Based Way Determination (WT + uWT, Sec. V)
  kWdu,        ///< Nicolaescu-style WDU, validity-extended (Sec. VI-C)
};

/// One of the paper's interface organisations.
enum class InterfaceKind {
  kBase1LdSt,   ///< 1 load OR store per cycle, fully single-ported
  kBase2Ld1St,  ///< 2 loads + 1 store via physical multi-porting + banking
  kMalec,       ///< Page-Based Access Grouping (+ optional way determination)
};

/// NOTE: every field below feeds sim::runBindingHash() (checkpoint
/// binding, src/sim/experiment.cpp) — a new knob MUST be added there too,
/// or checkpoints taken under different values of it would silently
/// resume each other.
struct InterfaceConfig {
  std::string name = "MALEC";
  InterfaceKind kind = InterfaceKind::kMalec;

  /// L1 hit latency in cycles (2 in Table II; 1-/3-cycle variants in VI-B).
  Cycle l1_latency = 2;

  // --- address-computation units per cycle (Table I) ----------------------
  std::uint32_t agu_load_only = 1;   ///< MALEC: 1 ld
  std::uint32_t agu_load_store = 2;  ///< MALEC: 2 ld/st
  std::uint32_t agu_store_only = 0;

  // --- physical ports beyond the baseline rw port (energy + throughput) ---
  std::uint32_t l1_extra_rd_ports = 0;   ///< Base2ld1st: 1
  std::uint32_t tlb_extra_rd_ports = 0;  ///< Base2ld1st: 2

  // --- MALEC pipeline parameters (Sec. IV) ---------------------------------
  /// Loads from previous cycles the Input Buffer can carry (evaluated
  /// configuration: storage for up to two loads, Sec. VI-A).
  std::uint32_t ib_carry_slots = 2;
  /// Page-ID comparators: how many non-head entries can join the head's
  /// group in one cycle (evaluated configuration: five 20-bit comparators).
  std::uint32_t ib_group_comparators = 5;
  /// Result buses available for load data per cycle.
  std::uint32_t result_buses = 3;
  /// Loads consecutive to the winner examined for same-line merging
  /// (paper: 3; costs < 0.5 % performance vs unlimited).
  std::uint32_t merge_window = 3;
  /// Merge loads that hit the same line / sub-block pair (Sec. IV).
  bool merge_loads = true;
  /// Sub-blocked data arrays return two adjacent 128-bit sub-blocks per
  /// read, doubling merge opportunities (Sec. IV).
  bool subblocked_pair_read = true;

  // --- way determination ----------------------------------------------------
  WayDetKind waydet = WayDetKind::kWayTables;
  std::uint32_t wdu_entries = 16;  ///< for WayDetKind::kWdu (8/16/32 sweep)
  /// Last-entry-register feedback of conventional hits into the uWT
  /// (raises coverage from 75 % to 94 %, Sec. V).
  bool last_entry_feedback = true;
  std::uint32_t last_entry_depth = 4;

  // --- run-time bypass extension (Sec. VI-D discussion) --------------------
  /// Suspend way determination when the recent L1 load miss rate exceeds
  /// `bypass_threshold` AND coverage sits below `bypass_min_coverage`
  /// (streaming phases where the WT machinery costs more than it saves).
  /// Way tables are flushed on resume for safety. Note: under this
  /// repository's parallel-conventional-access energy model, moderate
  /// coverage still pays for itself, so the coverage guard keeps the
  /// bypass away from mcf-class workloads and reserves it for truly
  /// way-information-free streams.
  bool adaptive_bypass = false;
  std::uint32_t bypass_window = 1024;  ///< accesses per evaluation window
  double bypass_threshold = 0.15;
  double bypass_min_coverage = 0.10;

  [[nodiscard]] std::uint32_t aguTotal() const {
    return agu_load_only + agu_load_store + agu_store_only;
  }
};

/// System-level parameters (Table II).
/// NOTE: every field feeds sim::runBindingHash() (checkpoint binding) —
/// a new parameter MUST be added there too.
struct SystemConfig {
  AddressLayout layout{};
  std::uint32_t rob_entries = 168;
  std::uint32_t fetch_width = 6;
  std::uint32_t issue_width = 8;
  std::uint32_t commit_width = 6;
  std::uint32_t lq_entries = 40;
  std::uint32_t sb_entries = 24;
  std::uint32_t mb_entries = 4;
  std::uint32_t utlb_entries = 16;
  std::uint32_t tlb_entries = 64;
  Cycle l2_latency = 12;
  Cycle dram_latency = 54;
  Cycle page_walk_latency = 30;
  std::uint32_t mshrs = 8;
  double clock_ghz = 1.0;
  std::uint64_t seed = 1;
};

}  // namespace malec::core
