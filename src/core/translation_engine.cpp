#include "core/translation_engine.h"

#include "ckpt/state_io.h"
#include "common/check.h"
#include "waydet/way_info.h"

namespace malec::core {

namespace {
tlb::Tlb::Params utlbParams(const TranslationEngine::Params& p) {
  tlb::Tlb::Params tp;
  tp.entries = p.utlb_entries;
  // Second chance keeps hot pages resident, minimising full-entry uWT->WT
  // writebacks (paper Sec. V).
  tp.replacement = mem::ReplacementKind::kSecondChance;
  tp.seed = p.seed * 3 + 1;
  return tp;
}

tlb::Tlb::Params tlbParams(const TranslationEngine::Params& p) {
  tlb::Tlb::Params tp;
  tp.entries = p.tlb_entries;
  tp.replacement = mem::ReplacementKind::kRandom;
  tp.seed = p.seed * 5 + 2;
  return tp;
}
}  // namespace

TranslationEngine::EventIds::EventIds(energy::EnergyAccount& ea)
    : utlb_search(ea.resolveEvent("utlb.search")),
      tlb_search(ea.resolveEvent("tlb.search")),
      utlb_psearch(ea.resolveEvent("utlb.psearch")),
      tlb_psearch(ea.resolveEvent("tlb.psearch")),
      uwt_read(ea.resolveEvent("uwt.read")),
      uwt_write(ea.resolveEvent("uwt.write")),
      wt_read(ea.resolveEvent("wt.read")),
      wt_write(ea.resolveEvent("wt.write")) {}

TranslationEngine::TranslationEngine(const Params& p,
                                     energy::EnergyAccount& ea)
    : p_(p),
      ea_(ea),
      id_(ea),
      pt_(/*phys_pages=*/65536, p.seed * 7 + 3),
      utlb_(utlbParams(p)),
      tlb_(tlbParams(p)),
      uwt_(p.utlb_entries, p.layout.linesPerPage(), p.layout.l1Banks(),
           p.layout.l1Assoc()),
      wt_(p.tlb_entries, p.layout.linesPerPage(), p.layout.l1Banks(),
          p.layout.l1Assoc()),
      last_entry_(p.last_entry_depth) {
  pt_.setWalkLatency(p.walk_latency);

  // uTLB eviction: write the (possibly updated) uWT entry back to the WT if
  // the page is still TLB-resident; otherwise the way information is lost.
  utlb_.setEvictCallback([this](std::uint32_t slot) {
    if (!p_.way_tables) return;
    const PageId vpage = utlb_.entry(slot).vpage;
    if (auto tlb_slot = tlb_.probeV(vpage); tlb_slot.has_value()) {
      wt_.setEntryCodes(*tlb_slot, uwt_.entryCodes(slot));
      ea_.count(id_.wt_write);
    }
    uwt_.invalidateSlot(slot);
    memo_valid_ = false;
  });

  // TLB eviction invalidates the WT entry and any shadowing uTLB/uWT slot
  // (Fig. 3 note: "update uTLB&uWT on ... TLB evictions").
  tlb_.setEvictCallback([this](std::uint32_t slot) {
    if (p_.way_tables) wt_.invalidateSlot(slot);
    const PageId vpage = tlb_.entry(slot).vpage;
    if (auto uslot = utlb_.probeV(vpage); uslot.has_value()) {
      if (p_.way_tables) uwt_.invalidateSlot(*uslot);
      utlb_.invalidate(*uslot);
      memo_valid_ = false;
    }
  });
}

void TranslationEngine::installIntoUtlb(PageId vpage, PageId ppage,
                                        std::uint32_t tlb_slot,
                                        bool tlb_entry_fresh) {
  // Defensive: insert() below may recycle the memoized slot (the evict
  // callback also clears the memo, but an invalid-slot reuse does not fire
  // it). Callers re-arm the memo with the new mapping before returning.
  memo_valid_ = false;
  const std::uint32_t uslot = utlb_.insert(vpage, ppage);
  if (!p_.way_tables) return;
  if (tlb_entry_fresh) {
    // Newly walked page: no way information exists yet.
    uwt_.invalidateSlot(uslot);
  } else {
    // Copy the WT entry alongside the translation (Fig. 3 note 1).
    uwt_.setEntryCodes(uslot, wt_.entryCodes(tlb_slot));
    ea_.count(id_.wt_read);
    ea_.count(id_.uwt_write);
  }
}

TranslationEngine::Result TranslationEngine::translate(PageId vpage) {
  Result r;
  ea_.count(id_.utlb_search);
  // Memoized repeat of the previous translation: replays the exact uTLB-hit
  // bookkeeping (replacement touch, hit counter, uWT read, last-entry push)
  // without the associative scan. suspended_ is checked here, not at memo
  // install, so setSuspended() needs no invalidation.
  if (memo_valid_ && vpage == memo_vpage_) {
    utlb_.repeatHit(memo_slot_);
    r.utlb_hit = true;
    r.ppage = utlb_.entry(memo_slot_).ppage;
    r.uwt_slot = memo_slot_;
    r.extra_latency = 0;
    if (p_.way_tables && !suspended_) {
      ea_.count(id_.uwt_read);
      last_entry_.push(memo_slot_, vpage);
    }
    return r;
  }
  if (auto uslot = utlb_.lookupV(vpage); uslot.has_value()) {
    r.utlb_hit = true;
    r.ppage = utlb_.entry(*uslot).ppage;
    r.uwt_slot = *uslot;
    r.extra_latency = 0;
    if (p_.way_tables && !suspended_) {
      ea_.count(id_.uwt_read);
      last_entry_.push(*uslot, vpage);
    }
    memo_valid_ = true;
    memo_vpage_ = vpage;
    memo_slot_ = *uslot;
    return r;
  }

  ea_.count(id_.tlb_search);
  if (auto tslot = tlb_.lookupV(vpage); tslot.has_value()) {
    r.tlb_hit = true;
    r.ppage = tlb_.entry(*tslot).ppage;
    r.extra_latency = 1;
    installIntoUtlb(vpage, r.ppage, *tslot, /*tlb_entry_fresh=*/false);
    const auto uslot = utlb_.probeV(vpage);
    MALEC_CHECK(uslot.has_value());
    r.uwt_slot = *uslot;
    if (p_.way_tables) last_entry_.push(*uslot, vpage);
    memo_valid_ = true;
    memo_vpage_ = vpage;
    memo_slot_ = *uslot;
    return r;
  }

  // Page walk.
  r.ppage = pt_.translate(vpage);
  r.extra_latency = pt_.walkLatency();
  const std::uint32_t tslot = tlb_.insert(vpage, r.ppage);
  if (p_.way_tables) wt_.invalidateSlot(tslot);
  installIntoUtlb(vpage, r.ppage, tslot, /*tlb_entry_fresh=*/true);
  const auto uslot = utlb_.probeV(vpage);
  MALEC_CHECK(uslot.has_value());
  r.uwt_slot = *uslot;
  if (p_.way_tables) last_entry_.push(*uslot, vpage);
  memo_valid_ = true;
  memo_vpage_ = vpage;
  memo_slot_ = *uslot;
  return r;
}

void TranslationEngine::setSuspended(bool suspended) {
  if (suspended_ == suspended) return;
  suspended_ = suspended;
  if (!suspended) {
    // Way information accumulated before the bypass window is stale: the
    // cache changed underneath without validity maintenance. Flush.
    for (std::uint32_t s = 0; s < p_.utlb_entries; ++s)
      uwt_.invalidateSlot(s);
    for (std::uint32_t s = 0; s < p_.tlb_entries; ++s)
      wt_.invalidateSlot(s);
    last_entry_.clear();
  }
}

WayIdx TranslationEngine::wayFor(std::uint32_t uwt_slot, Addr vaddr) {
  if (!p_.way_tables || suspended_) return kWayUnknown;
  ++way_lookups_;
  const std::uint32_t salt = utlb_.entry(uwt_slot).ppage;
  const WayIdx way =
      uwt_.lookup(uwt_slot, p_.layout.lineInPage(vaddr), salt);
  if (way != kWayUnknown) ++way_known_;
  return way;
}

void TranslationEngine::feedbackConventionalHit(PageId vpage, Addr vaddr,
                                                WayIdx way) {
  if (!p_.way_tables || !p_.last_entry_feedback || suspended_) return;
  MALEC_DCHECK(way != kWayUnknown);
  const auto slot = last_entry_.match(vpage);
  if (!slot.has_value()) return;
  // The slot must still map the same page (second-chance replacement makes
  // displacement while in the FIFO unlikely but possible).
  const auto& e = utlb_.entry(*slot);
  if (!e.valid || e.vpage != vpage) return;
  uwt_.record(*slot, p_.layout.lineInPage(vaddr), e.ppage,
              static_cast<std::uint32_t>(way));
  ea_.count(id_.uwt_write);
  ++feedbacks_;
}

void TranslationEngine::onLineFill(Addr paddr_line_base, WayIdx way) {
  if (!p_.way_tables || suspended_) return;
  MALEC_DCHECK(way != kWayUnknown);
  const PageId ppage = p_.layout.pageId(paddr_line_base);
  const std::uint32_t line = p_.layout.lineInPage(paddr_line_base);
  // "The WT is only updated if no corresponding uWT entry was found."
  ea_.count(id_.utlb_psearch);
  if (auto uslot = utlb_.lookupP(ppage); uslot.has_value()) {
    uwt_.record(*uslot, line, ppage, static_cast<std::uint32_t>(way));
    ea_.count(id_.uwt_write);
    return;
  }
  ea_.count(id_.tlb_psearch);
  if (auto tslot = tlb_.lookupP(ppage); tslot.has_value()) {
    wt_.record(*tslot, line, ppage, static_cast<std::uint32_t>(way));
    ea_.count(id_.wt_write);
  }
}

void TranslationEngine::onLineEvict(Addr paddr_line_base) {
  if (!p_.way_tables || suspended_) return;
  const PageId ppage = p_.layout.pageId(paddr_line_base);
  const std::uint32_t line = p_.layout.lineInPage(paddr_line_base);
  ea_.count(id_.utlb_psearch);
  if (auto uslot = utlb_.lookupP(ppage); uslot.has_value()) {
    uwt_.clearLine(*uslot, line);
    ea_.count(id_.uwt_write);
    return;
  }
  ea_.count(id_.tlb_psearch);
  if (auto tslot = tlb_.lookupP(ppage); tslot.has_value()) {
    wt_.clearLine(*tslot, line);
    ea_.count(id_.wt_write);
  }
}

void TranslationEngine::saveState(ckpt::StateWriter& w) const {
  pt_.saveState(w);
  utlb_.saveState(w);
  tlb_.saveState(w);
  uwt_.saveState(w);
  wt_.saveState(w);
  last_entry_.saveState(w);
  w.u64(way_lookups_);
  w.u64(way_known_);
  w.u64(feedbacks_);
  w.u8(suspended_ ? 1 : 0);
}

void TranslationEngine::loadState(ckpt::StateReader& r) {
  pt_.loadState(r);
  utlb_.loadState(r);
  tlb_.loadState(r);
  uwt_.loadState(r);
  wt_.loadState(r);
  last_entry_.loadState(r);
  way_lookups_ = r.u64();
  way_known_ = r.u64();
  feedbacks_ = r.u64();
  // Restore the raw flag, NOT through setSuspended(): the transition hook
  // flushes way tables on resume, which must not fire for a state copy.
  suspended_ = r.u8() != 0;
  memo_valid_ = false;
}

}  // namespace malec::core
