// Cached L1-cache energy-event handles shared by every memory interface.
//
// Hot path = integer ids, edge = strings: interfaces resolve these once at
// construction and charge per-access events through the ids. Keeping the
// name list in one place means the MALEC and baseline interfaces can never
// drift apart on which events they count.
#pragma once

#include "energy/energy_account.h"

namespace malec::core {

struct L1EventIds {
  explicit L1EventIds(energy::EnergyAccount& ea)
      : ctrl(ea.resolveEvent("l1.ctrl")),
        tag_read(ea.resolveEvent("l1.tag_read")),
        tag_write(ea.resolveEvent("l1.tag_write")),
        data_read(ea.resolveEvent("l1.data_read")),
        data_write(ea.resolveEvent("l1.data_write")),
        line_read(ea.resolveEvent("l1.line_read")),
        line_write(ea.resolveEvent("l1.line_write")) {}

  energy::EnergyAccount::EventId ctrl;
  energy::EnergyAccount::EventId tag_read;
  energy::EnergyAccount::EventId tag_write;
  energy::EnergyAccount::EventId data_read;
  energy::EnergyAccount::EventId data_write;
  energy::EnergyAccount::EventId line_read;
  energy::EnergyAccount::EventId line_write;
};

}  // namespace malec::core
