// Shared uTLB/TLB machinery with optional Way Tables.
//
// Both the baselines and MALEC translate through a 16-entry uTLB backed by
// a 64-entry TLB (Table II). With way tables enabled (MALEC), each uTLB/TLB
// slot carries a Way Table entry, and this engine implements the full
// synchronisation protocol of Sec. V (see way_table.h for the rules) plus
// the validity maintenance on cache line fills/evictions via reverse
// physical lookups. It also counts all translation-side energy events.
#pragma once

#include <cstdint>
#include <optional>

#include "common/address.h"
#include "common/types.h"
#include "energy/energy_account.h"
#include "tlb/page_table.h"
#include "tlb/tlb.h"
#include "waydet/way_table.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::core {

class TranslationEngine {
 public:
  struct Params {
    AddressLayout layout{};
    std::uint32_t utlb_entries = 16;
    std::uint32_t tlb_entries = 64;
    bool way_tables = false;
    bool last_entry_feedback = true;
    std::uint32_t last_entry_depth = 4;
    Cycle walk_latency = 30;
    std::uint64_t seed = 17;
  };

  struct Result {
    PageId ppage = 0;
    /// Cycles beyond the uTLB-hit path: 0 (uTLB hit), 1 (TLB hit) or the
    /// page-walk latency (TLB miss).
    Cycle extra_latency = 0;
    /// uTLB/uWT slot now holding the page (always valid after translate()).
    std::uint32_t uwt_slot = 0;
    bool utlb_hit = false;
    bool tlb_hit = false;  ///< meaningful when !utlb_hit
  };

  TranslationEngine(const Params& p, energy::EnergyAccount& ea);

  /// Translate a virtual page; installs it into uTLB (and TLB) as needed
  /// and counts the corresponding energy events. With way tables enabled a
  /// uTLB hit also reads the uWT entry (one read services the whole page
  /// group, Sec. V).
  Result translate(PageId vpage);

  /// Way for a specific address given the current cycle's uWT slot.
  /// Returns kWayUnknown without way tables. Increments coverage counters.
  WayIdx wayFor(std::uint32_t uwt_slot, Addr vaddr);

  /// A conventional access hit `way` after this engine answered "unknown":
  /// repair the uWT through the last-entry register (no uTLB lookup).
  void feedbackConventionalHit(PageId vpage, Addr vaddr, WayIdx way);

  /// Suspend/resume way-table maintenance (run-time bypass, Sec. VI-D).
  /// While suspended, translations skip the uWT read, way queries answer
  /// "unknown" and fills/evictions perform no reverse lookups. Resuming
  /// invalidates all way information (it is stale by then).
  void setSuspended(bool suspended);
  [[nodiscard]] bool suspended() const { return suspended_; }

  /// Cache line filled into `way` — set validity (reverse lookup path).
  void onLineFill(Addr paddr_line_base, WayIdx way);
  /// Cache line evicted — clear validity (reverse lookup path).
  void onLineEvict(Addr paddr_line_base);

  [[nodiscard]] tlb::PageTable& pageTable() { return pt_; }
  [[nodiscard]] const tlb::Tlb& utlb() const { return utlb_; }
  [[nodiscard]] const tlb::Tlb& tlb() const { return tlb_; }
  [[nodiscard]] bool wayTablesEnabled() const { return p_.way_tables; }

  // --- statistics -----------------------------------------------------------
  [[nodiscard]] std::uint64_t wayLookups() const { return way_lookups_; }
  [[nodiscard]] std::uint64_t wayKnown() const { return way_known_; }
  [[nodiscard]] std::uint64_t feedbackUpdates() const { return feedbacks_; }

  /// Test access to the way tables.
  [[nodiscard]] const waydet::WayTable& wt() const { return wt_; }
  [[nodiscard]] const waydet::WayTable& uwt() const { return uwt_; }

  /// Checkpoint/restore of the full translation-side state: page table,
  /// uTLB/TLB (including replacement bookkeeping), uWT/WT, the last-entry
  /// register, the bypass flag and every coverage counter.
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  void installIntoUtlb(PageId vpage, PageId ppage, std::uint32_t tlb_slot,
                       bool tlb_entry_fresh);

  /// Event handles resolved once at construction (hot path = integer ids).
  struct EventIds {
    explicit EventIds(energy::EnergyAccount& ea);
    energy::EnergyAccount::EventId utlb_search;
    energy::EnergyAccount::EventId tlb_search;
    energy::EnergyAccount::EventId utlb_psearch;
    energy::EnergyAccount::EventId tlb_psearch;
    energy::EnergyAccount::EventId uwt_read;
    energy::EnergyAccount::EventId uwt_write;
    energy::EnergyAccount::EventId wt_read;
    energy::EnergyAccount::EventId wt_write;
  };

  Params p_;  // lint:no-state(config; restore binds by fingerprint)
  energy::EnergyAccount& ea_;  // lint:no-state(wiring ref; checkpoints itself)
  EventIds id_;  // lint:no-state(construction-time EventId cache)
  tlb::PageTable pt_;
  tlb::Tlb utlb_;
  tlb::Tlb tlb_;
  waydet::WayTable uwt_;
  waydet::WayTable wt_;
  waydet::LastEntryRegister last_entry_;
  std::uint64_t way_lookups_ = 0;
  std::uint64_t way_known_ = 0;
  std::uint64_t feedbacks_ = 0;
  bool suspended_ = false;

  // Last-translation memo: translate() replays the uTLB-hit bookkeeping for
  // a repeated vpage without the associative scan (hot loops translate the
  // same page many cycles in a row). Invalidated wherever a uTLB slot can
  // change underneath it and dropped on restore — never checkpointed.
  bool memo_valid_ = false;  // lint:no-state(derived cache; dropped in loadState)
  PageId memo_vpage_ = 0;  // lint:no-state(derived cache)
  std::uint32_t memo_slot_ = 0;  // lint:no-state(derived cache)
};

}  // namespace malec::core
