// Input Buffer: the entry stage of Page-Based Memory Access Grouping
// (paper Sec. IV, Fig. 2).
//
// Holds, in priority order: loads carried over from previous cycles, loads
// finishing address computation this cycle, and at most one evicted Merge
// Buffer entry (lowest priority — its stores already committed). Each cycle
// the highest-priority *ready* entry becomes the head; its virtual page ID
// is sent to the uTLB and simultaneously compared (by a small bank of
// page-wide comparators) against the other valid entries. Matching entries
// form the cycle's page group and proceed to the Arbitration Unit.
//
// If more loads need carrying than the carry capacity allows, the address
// computation units stall (canAcceptLoad() turns false).
//
// Layout: struct-of-arrays, packed by age. The parallel arrays are kept in
// insertion order (order_ strictly increasing), which the selection,
// grouping and stall scans all depend on — see the ORDER CONTRACT comments
// in the .cpp. Page IDs are cached per entry so the per-cycle group scan
// compares integers instead of re-deriving them from addresses.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/address.h"
#include "common/types.h"
#include "core/mem_interface.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::core {

class InputBuffer {
 public:
  InputBuffer(std::uint32_t carry_slots, std::uint32_t agu_slots,
              std::uint32_t group_comparators, AddressLayout layout);

  /// Can another load enter this cycle? (carry + AGU slots not exhausted)
  [[nodiscard]] bool hasLoadSpace() const;
  /// Is the single MBE slot free?
  [[nodiscard]] bool hasMbeSpace() const { return mbe_pos_ == kNoMbe; }

  void addLoad(const MemOp& op, Cycle now);
  void addMbe(const MemOp& op, Cycle now);

  /// Highest-priority entry index ready at `now`, or nullopt if idle.
  [[nodiscard]] std::optional<std::size_t> selectHead(Cycle now) const;

  /// Indices (priority order, head first) of the head's page group:
  /// entries sharing the head's vPageID among the first
  /// `group_comparators` ready candidates (hardware comparator limit).
  [[nodiscard]] std::vector<std::size_t> group(std::size_t head,
                                               Cycle now) const;

  /// Allocation-free variant for the per-cycle hot path: fills `out`
  /// (cleared first), which keeps its capacity across calls.
  void group(std::size_t head, Cycle now, std::vector<std::size_t>& out) const;

  /// Defer an entry (TLB access or page walk in flight).
  void defer(std::size_t index, Cycle until);

  /// Remove serviced entries (indices into the buffer; any order).
  void remove(const std::vector<std::size_t>& indices);

  // --- per-entry accessors (index = position in age order) ---------------
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] const MemOp& op(std::size_t i) const { return ops_[i]; }
  [[nodiscard]] bool isMbe(std::size_t i) const { return i == mbe_pos_; }
  /// Cached virtual page ID of entry `i` (layout.pageId(op(i).vaddr)).
  [[nodiscard]] PageId pageOf(std::size_t i) const { return page_[i]; }

  [[nodiscard]] std::size_t loadCount() const {
    return ops_.size() - (mbe_pos_ == kNoMbe ? 0 : 1);
  }
  [[nodiscard]] bool empty() const { return ops_.empty(); }
  /// True when loads carried over from earlier cycles exceed the carry
  /// capacity — the address-computation units must stall (paper Sec. IV:
  /// "should the Input Buffer's storage elements be insufficient, one or
  /// more address computation units are stalled").
  [[nodiscard]] bool overCommitted(Cycle now) const;

  /// Checkpoint/restore of all mutable state; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  static constexpr std::size_t kNoMbe = static_cast<std::size_t>(-1);

  std::uint32_t carry_slots_;  // lint:no-state(config; bounds-checked on load)
  std::uint32_t agu_slots_;    // lint:no-state(config; bounds-checked on load)
  std::uint32_t group_comparators_;  // lint:no-state(config)
  AddressLayout layout_;             // lint:no-state(config)

  // Parallel arrays, packed by age (oldest first; see header comment).
  std::vector<MemOp> ops_;
  std::vector<Cycle> not_before_;  ///< entry not selectable before this cycle
  std::vector<Cycle> arrival_;     ///< cycle the entry entered the buffer
  std::vector<std::uint64_t> order_;  ///< global priority: lower = older
  // lint:no-state(derived from ops_; recomputed in loadState)
  std::vector<PageId> page_;
  /// Index of the single MBE entry, kNoMbe when absent.
  std::size_t mbe_pos_ = kNoMbe;  // lint:no-state(derived from the per-entry mbe flags; recomputed in loadState)

  std::uint64_t next_order_ = 0;
};

}  // namespace malec::core
