#include "core/malec_interface.h"

#include <algorithm>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::core {

namespace {

mem::L1Cache::Params l1Params(const InterfaceConfig& cfg,
                              const SystemConfig& sys) {
  mem::L1Cache::Params p;
  p.layout = sys.layout;
  // The 3-way allocation restriction only applies when Way Tables encode
  // ways (Sec. V); the WDU and no-waydet variants use all four ways.
  p.restrict_alloc_ways = cfg.waydet == WayDetKind::kWayTables;
  p.seed = sys.seed * 11 + 5;
  return p;
}

mem::L2Cache::Params l2Params(const SystemConfig& sys) {
  mem::L2Cache::Params p;
  p.line_bytes = sys.layout.lineBytes();
  p.seed = sys.seed * 13 + 7;
  return p;
}

mem::MemoryHierarchy::Params hierParams(const SystemConfig& sys) {
  mem::MemoryHierarchy::Params p;
  p.l2_latency = sys.l2_latency;
  p.dram_latency = sys.dram_latency;
  p.mshrs = sys.mshrs;
  return p;
}

TranslationEngine::Params engineParams(const InterfaceConfig& cfg,
                                       const SystemConfig& sys) {
  TranslationEngine::Params p;
  p.layout = sys.layout;
  p.utlb_entries = sys.utlb_entries;
  p.tlb_entries = sys.tlb_entries;
  p.way_tables = cfg.waydet == WayDetKind::kWayTables;
  p.last_entry_feedback = cfg.last_entry_feedback;
  p.last_entry_depth = cfg.last_entry_depth;
  p.walk_latency = sys.page_walk_latency;
  p.seed = sys.seed * 17 + 9;
  return p;
}

}  // namespace

MalecInterface::MalecInterface(const InterfaceConfig& cfg,
                               const SystemConfig& sys,
                               energy::EnergyAccount& ea)
    : cfg_(cfg),
      sys_(sys),
      ea_(ea),
      id_(ea),
      l1_(l1Params(cfg, sys)),
      l2_(l2Params(sys)),
      hier_(l1_, l2_, hierParams(sys)),
      engine_(engineParams(cfg, sys), ea),
      sb_(sys.sb_entries, sys.layout),
      mb_(sys.mb_entries, sys.layout),
      ib_(cfg.ib_carry_slots, cfg.aguTotal(), cfg.ib_group_comparators,
          sys.layout),
      arb_(ArbitrationUnit::Params{sys.layout, cfg.result_buses,
                                   cfg.merge_window, cfg.merge_loads,
                                   cfg.subblocked_pair_read}) {
  MALEC_CHECK(cfg.kind == InterfaceKind::kMalec);
  if (cfg.waydet == WayDetKind::kWdu)
    wdu_ = std::make_unique<waydet::Wdu>(cfg.wdu_entries);

  // Line fill/eviction hooks: fill energy, WT validity and WDU maintenance.
  hier_.setFillCallback([this](Addr line_base, WayIdx way) {
    ea_.count(id_.l1.tag_write);
    ea_.count(id_.l1.line_write);
    engine_.onLineFill(line_base, way);
    if (wdu_) wdu_->record(sys_.layout.lineAddr(line_base), way);
  });
  hier_.setEvictCallback([this](Addr line_base) {
    // Dirty victims are read out for writeback; the read is charged
    // unconditionally as a conservative model of the eviction sequence.
    ea_.count(id_.l1.line_read);
    engine_.onLineEvict(line_base);
    if (wdu_) wdu_->invalidate(sys_.layout.lineAddr(line_base));
  });
}

void MalecInterface::beginCycle(Cycle now) {
  now_ = now;
  // A waiting MB eviction claims the Input Buffer's MBE slot as soon as it
  // frees up.
  if (pending_mbe_.has_value() && ib_.hasMbeSpace()) {
    MemOp op;
    op.seq = 0;
    op.is_load = false;
    op.vaddr = pending_mbe_->line_base;
    op.size = static_cast<std::uint8_t>(
        std::min<std::uint32_t>(sys_.layout.lineBytes(), 255));
    ib_.addMbe(op, now);
    pending_mbe_.reset();
  }
}

bool MalecInterface::canAcceptLoad() const {
  return ib_.hasLoadSpace() && !ib_.overCommitted(now_);
}

bool MalecInterface::canAcceptStore() const { return !sb_.full(); }

bool MalecInterface::submit(const MemOp& op) {
  if (op.is_load) {
    if (!canAcceptLoad()) return false;
    ib_.addLoad(op, now_);
    ++stats_.loads_submitted;
  } else {
    if (sb_.full()) return false;
    sb_.insert(op.seq, op.vaddr, op.size);
    ++stats_.stores_submitted;
  }
  return true;
}

void MalecInterface::notifyStoreCommit(SeqNum seq) { sb_.markCommitted(seq); }

void MalecInterface::drainStoreBuffer(Cycle now) {
  (void)now;
  // One committed store per cycle drains into the Merge Buffer.
  if (mb_.full() && pending_mbe_.has_value()) return;  // backpressure
  // Peek: only pop when we can place the store.
  auto entry = sb_.popCommitted();
  if (!entry.has_value()) return;
  if (mb_.absorb(entry->vaddr, entry->size)) return;
  if (mb_.full()) {
    pending_mbe_ = mb_.evictLru();
    MALEC_CHECK(pending_mbe_.has_value());
  }
  mb_.allocate(entry->vaddr, entry->size);
}

WayIdx MalecInterface::lookupWay(std::uint32_t uwt_slot, Addr vaddr,
                                 Addr paddr) {
  switch (cfg_.waydet) {
    case WayDetKind::kNone:
      return kWayUnknown;
    case WayDetKind::kWayTables: {
      const WayIdx w = engine_.wayFor(uwt_slot, vaddr);
      ++stats_.way_lookups;
      ++window_lookups_;
      if (w != kWayUnknown) {
        ++stats_.way_known;
        ++window_known_;
      }
      return w;
    }
    case WayDetKind::kWdu: {
      ea_.count(id_.wdu_search);
      ++stats_.way_lookups;
      const auto w = wdu_->lookup(sys_.layout.lineAddr(paddr));
      if (w.has_value()) {
        ++stats_.way_known;
        return *w;
      }
      return kWayUnknown;
    }
  }
  return kWayUnknown;
}

void MalecInterface::learnWay(PageId vpage, Addr vaddr, Addr paddr,
                              WayIdx way) {
  switch (cfg_.waydet) {
    case WayDetKind::kNone:
      return;
    case WayDetKind::kWayTables:
      engine_.feedbackConventionalHit(vpage, vaddr, way);
      return;
    case WayDetKind::kWdu:
      wdu_->record(sys_.layout.lineAddr(paddr), way);
      ea_.count(id_.wdu_write);
      return;
  }
}

Cycle MalecInterface::accessL1Load(const MemOp& op, PageId vpage, Addr paddr,
                                   std::uint32_t uwt_slot, Cycle now) {
  ++stats_.load_l1_accesses;
  ++window_accesses_;
  ea_.count(id_.l1.ctrl);
  const WayIdx way = lookupWay(uwt_slot, op.vaddr, paddr);
  const auto probe = l1_.probe(paddr);

  if (way != kWayUnknown) {
    // Reduced access: tag arrays bypassed, exactly one data way read.
    // Validity maintenance guarantees the hit (paper Sec. V).
    MALEC_CHECK_MSG(probe.has_value() && *probe == way,
                    "way determination produced a wrong way");
    ea_.count(id_.l1.data_read);
    ++stats_.reduced_accesses;
    ++stats_.load_l1_hits;
    l1_.touch(paddr, way);
    return now + cfg_.l1_latency;
  }

  // Conventional access: parallel read of all tag arrays and all data
  // arrays of the bank; the matching tag selects the data (paper Sec. V).
  ea_.count(id_.l1.tag_read);
  ea_.count(id_.l1.data_read, sys_.layout.l1Assoc());
  ++stats_.conventional_accesses;
  if (probe.has_value()) {
    ++stats_.load_l1_hits;
    l1_.touch(paddr, *probe);
    learnWay(vpage, op.vaddr, paddr, *probe);
    return now + cfg_.l1_latency;
  }

  ++stats_.load_l1_misses;
  ++window_misses_;
  const auto miss = hier_.missAccess(paddr, now, /*is_store=*/false);
  // The returning fill supplies the critical word; delivery costs one L1
  // latency on top of the fill arrival.
  return miss.ready_cycle + cfg_.l1_latency;
}

void MalecInterface::accessL1Write(const MemOp& op, PageId vpage, Addr paddr,
                                   std::uint32_t uwt_slot, Cycle now) {
  ++stats_.write_l1_accesses;
  ++stats_.mbe_writes;
  ea_.count(id_.l1.ctrl);
  const WayIdx way = lookupWay(uwt_slot, op.vaddr, paddr);
  const auto probe = l1_.probe(paddr);

  if (way != kWayUnknown) {
    MALEC_CHECK_MSG(probe.has_value() && *probe == way,
                    "way determination produced a wrong way on write");
    ea_.count(id_.l1.data_write);
    ++stats_.reduced_accesses;
    l1_.markDirty(paddr, way);
    l1_.touch(paddr, way);
    return;
  }

  ea_.count(id_.l1.tag_read);
  ++stats_.conventional_accesses;
  if (probe.has_value()) {
    ea_.count(id_.l1.data_write);
    l1_.markDirty(paddr, *probe);
    l1_.touch(paddr, *probe);
    learnWay(vpage, op.vaddr, paddr, *probe);
    return;
  }

  // Write-allocate on MBE miss.
  ++stats_.write_l1_misses;
  (void)hier_.missAccess(paddr, now, /*is_store=*/true);
  ea_.count(id_.l1.data_write);
}

void MalecInterface::complete(SeqNum seq, Cycle ready) {
  completions_.push(ready, seq);
}

void MalecInterface::serviceGroup(Cycle now) {
  const auto head = ib_.selectHead(now);
  if (!head.has_value()) return;

  const PageId vpage = ib_.pageOf(*head);
  const auto tr = engine_.translate(vpage);
  if (tr.extra_latency > 0) {
    // uTLB miss: the TLB access (or page walk) occupies the translation
    // path; the whole page group waits. The entry retries when ready —
    // by then the uTLB holds the page.
    ib_.defer(*head, now + tr.extra_latency);
    ++stats_.ib_hold_events;
    return;
  }

  // Form the page group around the head. All per-group containers are
  // member scratch buffers: this runs every cycle, so the steady state must
  // not allocate.
  std::vector<std::size_t>& members = group_scratch_;
  ib_.group(*head, now, members);
  ++stats_.groups;

  std::vector<ArbCandidate>& cands = cand_scratch_;
  cands.clear();
  cands.reserve(members.size());
  for (std::size_t ib_idx : members) {
    const MemOp& op = ib_.op(ib_idx);
    // lint:allow(hot-alloc: cand_scratch_ is reserved above and retained across cycles)
    cands.push_back(ArbCandidate{ib_idx, op.vaddr, op.size, ib_.isMbe(ib_idx)});
  }

  const ArbOutcome& arb = arb_scratch_;
  arb_.arbitrate(cands, arb_scratch_);
  stats_.bank_conflicts += arb.bank_conflicts;
  stats_.bus_rejects += arb.bus_rejects;

  // Gather per-winner parties: winner first, merged followers after.
  std::vector<std::size_t>& serviced = serviced_scratch_;  // ib indices
  serviced.clear();

  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (arb.action[i] != ArbOutcome::Action::kWinner) continue;
    const ArbCandidate& c = cands[i];
    const Addr paddr =
        sys_.layout.compose(tr.ppage, sys_.layout.pageOffset(c.vaddr));

    if (c.is_mbe) {
      accessL1Write(ib_.op(c.ib_index), vpage, paddr, tr.uwt_slot, now);
      // lint:allow(hot-alloc: serviced_scratch_ retains capacity across cycles)
      serviced.push_back(c.ib_index);
      ++stats_.group_entries;
      continue;
    }

    // Collect this winner's party (the loads merged onto it).
    std::vector<std::size_t>& party = party_scratch_;  // cand indices
    party.clear();
    // lint:allow(hot-alloc: party_scratch_ retains capacity across cycles)
    party.push_back(i);
    for (std::size_t j = 0; j < cands.size(); ++j)
      if (arb.action[j] == ArbOutcome::Action::kMerged &&
          arb.winner_of[j] == i)
        // lint:allow(hot-alloc: party_scratch_ retains capacity across cycles)
        party.push_back(j);

    // Store/Merge Buffer forwarding first; the first non-forwarded member
    // performs the L1 read, the rest share its data.
    Cycle l1_ready = 0;
    bool l1_done = false;
    for (std::size_t pj = 0; pj < party.size(); ++pj) {
      const ArbCandidate& m = cands[party[pj]];
      const MemOp& mop = ib_.op(m.ib_index);
      const bool fwd_sb = sb_.coversLoad(m.vaddr, m.size, /*split=*/true);
      const bool fwd_mb =
          !fwd_sb && mb_.coversLoad(m.vaddr, m.size, /*split=*/true);
      if (fwd_sb) ++stats_.sb_forwards;
      if (fwd_mb) ++stats_.mb_forwards;
      Cycle ready;
      if (fwd_sb || fwd_mb) {
        ready = now + cfg_.l1_latency;  // buffer read, same pipeline depth
      } else if (!l1_done) {
        const Addr mpaddr =
            sys_.layout.compose(tr.ppage, sys_.layout.pageOffset(m.vaddr));
        ready = accessL1Load(mop, vpage, mpaddr, tr.uwt_slot, now);
        l1_ready = ready;
        l1_done = true;
      } else {
        ready = l1_ready;  // shares the winner's data read
        ++stats_.merged_loads;
      }
      complete(mop.seq, ready);
      // lint:allow(hot-alloc: serviced_scratch_ retains capacity across cycles)
      serviced.push_back(m.ib_index);
      ++stats_.group_entries;
    }
  }

  // Held members stay; count the hold events for the stats.
  for (std::size_t i = 0; i < cands.size(); ++i)
    if (arb.action[i] == ArbOutcome::Action::kHeld) ++stats_.ib_hold_events;

  ib_.remove(serviced);
}

void MalecInterface::endCycle(Cycle now) {
  // Run-time bypass (Sec. VI-D): suspend way determination through
  // streaming phases where its updates cost energy without paying off.
  if (cfg_.adaptive_bypass && cfg_.waydet == WayDetKind::kWayTables &&
      window_accesses_ >= cfg_.bypass_window) {
    const double miss_rate = static_cast<double>(window_misses_) /
                             static_cast<double>(window_accesses_);
    // While suspended no lookups happen; treat coverage as zero then (the
    // resume decision rests on the miss rate alone, so no deadlock).
    const double coverage =
        window_lookups_ == 0 ? 0.0
                             : static_cast<double>(window_known_) /
                                   static_cast<double>(window_lookups_);
    // Hysteresis: suspend only after two consecutive windows that are
    // both high-miss AND low-coverage (cold-start compulsory misses must
    // not trip the bypass, and any useful coverage is worth keeping);
    // resume once the miss rate falls clearly below the threshold.
    const bool losing = miss_rate > cfg_.bypass_threshold &&
                        (engine_.suspended() ||
                         coverage < cfg_.bypass_min_coverage);
    if (losing) {
      if (++high_miss_windows_ >= 2) {
        engine_.setSuspended(true);
        ++bypass_windows_;
      }
    } else if (miss_rate < cfg_.bypass_threshold * 0.5 ||
               coverage >= cfg_.bypass_min_coverage) {
      high_miss_windows_ = 0;
      engine_.setSuspended(false);
    }
    window_accesses_ = 0;
    window_misses_ = 0;
    window_lookups_ = 0;
    window_known_ = 0;
  }
  drainStoreBuffer(now);
  serviceGroup(now);
  if (!ib_.hasLoadSpace() || ib_.overCommitted(now + 1))
    ++stats_.ib_stall_cycles;
}

void MalecInterface::drainCompletions(Cycle now, std::vector<SeqNum>& out) {
  // lint:allow(hot-alloc: caller-owned completion vector retains its capacity across cycles)
  completions_.drainReady(now, [&out](SeqNum seq) { out.push_back(seq); });
}

bool MalecInterface::quiesced() const {
  return ib_.empty() && completions_.empty() && sb_.size() == 0 &&
         !pending_mbe_.has_value();
}

void MalecInterface::saveState(ckpt::StateWriter& w) const {
  // Every live member in declaration order. The per-cycle scratch buffers
  // (group_scratch_ & co.) are rebuilt from scratch inside serviceGroup()
  // each cycle, so they carry no state across the checkpoint boundary.
  l1_.saveState(w);
  l2_.saveState(w);
  hier_.saveState(w);
  engine_.saveState(w);
  w.u8(wdu_ != nullptr ? 1 : 0);
  if (wdu_) wdu_->saveState(w);
  sb_.saveState(w);
  mb_.saveState(w);
  ib_.saveState(w);
  w.u8(pending_mbe_.has_value() ? 1 : 0);
  if (pending_mbe_.has_value()) lsq::MergeBuffer::saveEntry(w, *pending_mbe_);
  completions_.saveState(w);
  for (const auto field : kInterfaceCounterFields) w.u64(stats_.*field);
  w.u64(now_);
  w.u64(window_accesses_);
  w.u64(window_misses_);
  w.u64(window_lookups_);
  w.u64(window_known_);
  w.u64(bypass_windows_);
  w.u32(high_miss_windows_);
}

void MalecInterface::loadState(ckpt::StateReader& r) {
  l1_.loadState(r);
  l2_.loadState(r);
  hier_.loadState(r);
  engine_.loadState(r);
  const bool has_wdu = r.u8() != 0;
  MALEC_CHECK_MSG(has_wdu == (wdu_ != nullptr),
                  "checkpoint disagrees with this configuration about the "
                  "WDU — config mismatch");
  if (wdu_) wdu_->loadState(r);
  sb_.loadState(r);
  mb_.loadState(r);
  ib_.loadState(r);
  if (r.u8() != 0) {
    pending_mbe_ = lsq::MergeBuffer::loadEntry(r);
  } else {
    pending_mbe_.reset();
  }
  completions_.loadState(r);
  for (const auto field : kInterfaceCounterFields) stats_.*field = r.u64();
  now_ = r.u64();
  window_accesses_ = r.u64();
  window_misses_ = r.u64();
  window_lookups_ = r.u64();
  window_known_ = r.u64();
  bypass_windows_ = r.u64();
  high_miss_windows_ = r.u32();
}

}  // namespace malec::core
