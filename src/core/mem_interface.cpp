#include "core/mem_interface.h"

#include <iterator>

#include "ckpt/state_io.h"

namespace malec::core {

void saveMemOp(ckpt::StateWriter& w, const MemOp& op) {
  w.u64(op.seq);
  w.u8(op.is_load ? 1 : 0);
  w.u64(op.vaddr);
  w.u8(op.size);
}

MemOp loadMemOp(ckpt::StateReader& r) {
  MemOp op;
  op.seq = r.u64();
  op.is_load = r.u8() != 0;
  op.vaddr = r.u64();
  op.size = r.u8();
  return op;
}

// Every InterfaceStats field is a u64 counter enumerated in
// kInterfaceCounterFields; this trips when a field is added there or here
// but not in the other place.
static_assert(sizeof(InterfaceStats) ==
                  std::size(kInterfaceCounterFields) * sizeof(std::uint64_t),
              "kInterfaceCounterFields is out of sync with InterfaceStats");

InterfaceStats statsDelta(const InterfaceStats& after,
                          const InterfaceStats& before) {
  InterfaceStats d;
  for (const auto field : kInterfaceCounterFields)
    d.*field = after.*field - before.*field;
  return d;
}

}  // namespace malec::core
