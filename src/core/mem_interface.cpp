#include "core/mem_interface.h"

#include <iterator>

namespace malec::core {

// Every InterfaceStats field is a u64 counter enumerated in
// kInterfaceCounterFields; this trips when a field is added there or here
// but not in the other place.
static_assert(sizeof(InterfaceStats) ==
                  std::size(kInterfaceCounterFields) * sizeof(std::uint64_t),
              "kInterfaceCounterFields is out of sync with InterfaceStats");

InterfaceStats statsDelta(const InterfaceStats& after,
                          const InterfaceStats& before) {
  InterfaceStats d;
  for (const auto field : kInterfaceCounterFields)
    d.*field = after.*field - before.*field;
  return d;
}

}  // namespace malec::core
