// Arbitration Unit (paper Sec. IV, Fig. 2).
//
// Takes the cycle's page group (priority-ordered accesses all sharing one
// page) and decides which are serviced: one access per single-ported cache
// bank, same-line loads merged onto one data read (only the loads
// consecutive to the winning entry within a small window are examined —
// the paper uses 3, costing < 0.5 % performance), and at most
// `result_buses` loads delivered per cycle. Because the whole group shares
// a page ID, the merge comparators are only pageOffset-wide minus the line
// offset (narrow, fast and cheap). The MBE (a cache write) is serviced when
// its bank's port is not claimed by a load.
//
// With sub-blocked data arrays MALEC reads two adjacent 128-bit sub-blocks
// per access, so loads merge when they fall in the same sub-block *pair*
// (doubling merge probability relative to single-sub-block reads).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/address.h"
#include "common/check.h"
#include "common/types.h"

namespace malec::core {

struct ArbCandidate {
  std::size_t ib_index = 0;  ///< caller's reference (input-buffer index)
  Addr vaddr = 0;
  std::uint8_t size = 0;
  bool is_mbe = false;
};

struct ArbOutcome {
  enum class Action : std::uint8_t {
    kWinner,  ///< performs the L1 access for its line
    kMerged,  ///< shares a winner's data read
    kHeld,    ///< stays in the Input Buffer for a later cycle
  };
  /// Per input candidate, aligned with the call's `candidates`.
  std::vector<Action> action;
  /// For kMerged candidates: index (into `candidates`) of their winner.
  std::vector<std::size_t> winner_of;
  /// Serviced MBE candidate index, if any.
  std::optional<std::size_t> mbe;
  std::uint32_t bank_conflicts = 0;
  std::uint32_t bus_rejects = 0;
  /// Narrow comparator activations performed (informational).
  std::uint32_t compares = 0;
};

class ArbitrationUnit {
 public:
  struct Params {
    AddressLayout layout{};
    std::uint32_t result_buses = 3;
    std::uint32_t merge_window = 3;
    bool merge_loads = true;
    bool subblocked_pair_read = true;
  };

  explicit ArbitrationUnit(const Params& p) : p_(p) {
    // arbitrate() tracks port claims in a 32-bit bank mask and a fixed
    // winner array; enforce the capacity once here, off the hot path.
    MALEC_CHECK_MSG(p.layout.l1Banks() <= 32,
                    "ArbitrationUnit supports at most 32 banks");
  }

  /// Arbitrate one page group. `candidates` must be in priority order
  /// (loads oldest-first, MBE last — InputBuffer::group() order).
  [[nodiscard]] ArbOutcome arbitrate(
      const std::vector<ArbCandidate>& candidates) const;

  /// Allocation-free variant for the per-cycle hot path: writes into `out`,
  /// whose vectors keep their capacity across calls.
  void arbitrate(const std::vector<ArbCandidate>& candidates,
                 ArbOutcome& out) const;

  [[nodiscard]] const Params& params() const { return p_; }

 private:
  /// Merge granularity key: sub-block pair (default) or single sub-block.
  [[nodiscard]] std::uint64_t mergeKey(Addr vaddr) const;

  Params p_;
};

}  // namespace malec::core
