#include "core/arbitration_unit.h"

#include <iterator>

#include "common/check.h"

namespace malec::core {

std::uint64_t ArbitrationUnit::mergeKey(Addr vaddr) const {
  const std::uint64_t line = p_.layout.lineAddr(vaddr);
  const std::uint64_t sub = p_.subblocked_pair_read
                                ? p_.layout.subBlockPairOf(vaddr)
                                : p_.layout.subBlockOf(vaddr);
  return line * p_.layout.subBlocksPerLine() + sub;
}

ArbOutcome ArbitrationUnit::arbitrate(
    const std::vector<ArbCandidate>& candidates) const {
  ArbOutcome out;
  arbitrate(candidates, out);
  return out;
}

void ArbitrationUnit::arbitrate(const std::vector<ArbCandidate>& candidates,
                                ArbOutcome& out) const {
  out.action.assign(candidates.size(), ArbOutcome::Action::kHeld);
  out.winner_of.assign(candidates.size(), 0);
  out.mbe.reset();
  out.bank_conflicts = 0;
  out.bus_rejects = 0;
  out.compares = 0;

  // One bit per single-ported bank; the constructor enforces <= 32 banks.
  std::uint32_t bank_used = 0;

  struct Winner {
    std::size_t cand_index;
    std::uint64_t key;
  };
  // A group never has more winners than banks; a fixed-size array keeps the
  // hot path off the heap.
  Winner winners[32];
  std::size_t n_winners = 0;
  std::uint32_t buses_used = 0;

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const ArbCandidate& c = candidates[i];
    if (c.is_mbe) continue;  // handled after loads

    if (buses_used >= p_.result_buses) {
      ++out.bus_rejects;
      continue;  // kHeld
    }

    const std::uint64_t key = mergeKey(c.vaddr);
    // Try to merge with an existing winner: only the merge_window loads
    // consecutive to the winner are compared (Sec. IV).
    bool merged = false;
    if (p_.merge_loads) {
      for (std::size_t wi = 0; wi < n_winners; ++wi) {
        const Winner& w = winners[wi];
        if (i <= w.cand_index || i - w.cand_index > p_.merge_window) continue;
        ++out.compares;
        if (w.key == key) {
          out.action[i] = ArbOutcome::Action::kMerged;
          out.winner_of[i] = w.cand_index;
          ++buses_used;
          merged = true;
          break;
        }
      }
    }
    if (merged) continue;

    const BankIdx bank = p_.layout.bankOf(c.vaddr);
    if ((bank_used & (1u << bank)) != 0) {
      ++out.bank_conflicts;
      continue;  // kHeld — single-ported bank already claimed
    }
    bank_used |= 1u << bank;
    out.action[i] = ArbOutcome::Action::kWinner;
    // Cannot overflow: each winner claims a distinct bank bit and the
    // constructor enforces <= 32 banks.
    MALEC_DCHECK(n_winners < std::size(winners));
    winners[n_winners++] = Winner{i, key};
    ++buses_used;
  }

  // MBE: serviced when its bank port is free; needs no result bus.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!candidates[i].is_mbe) continue;
    const BankIdx bank = p_.layout.bankOf(candidates[i].vaddr);
    if ((bank_used & (1u << bank)) == 0) {
      bank_used |= 1u << bank;
      out.action[i] = ArbOutcome::Action::kWinner;
      out.mbe = i;
    } else {
      ++out.bank_conflicts;
    }
    break;  // at most one MBE per group
  }
}

}  // namespace malec::core
