#include "core/arbitration_unit.h"

#include "common/check.h"

namespace malec::core {

std::uint64_t ArbitrationUnit::mergeKey(Addr vaddr) const {
  const std::uint64_t line = p_.layout.lineAddr(vaddr);
  const std::uint64_t sub = p_.subblocked_pair_read
                                ? p_.layout.subBlockPairOf(vaddr)
                                : p_.layout.subBlockOf(vaddr);
  return line * p_.layout.subBlocksPerLine() + sub;
}

ArbOutcome ArbitrationUnit::arbitrate(
    const std::vector<ArbCandidate>& candidates) const {
  ArbOutcome out;
  out.action.assign(candidates.size(), ArbOutcome::Action::kHeld);
  out.winner_of.assign(candidates.size(), 0);

  const std::uint32_t banks = p_.layout.l1Banks();
  std::vector<bool> bank_used(banks, false);

  struct Winner {
    std::size_t cand_index;
    std::uint64_t key;
  };
  std::vector<Winner> winners;
  std::uint32_t buses_used = 0;

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const ArbCandidate& c = candidates[i];
    if (c.is_mbe) continue;  // handled after loads

    if (buses_used >= p_.result_buses) {
      ++out.bus_rejects;
      continue;  // kHeld
    }

    const std::uint64_t key = mergeKey(c.vaddr);
    // Try to merge with an existing winner: only the merge_window loads
    // consecutive to the winner are compared (Sec. IV).
    bool merged = false;
    if (p_.merge_loads) {
      for (const Winner& w : winners) {
        if (i <= w.cand_index || i - w.cand_index > p_.merge_window) continue;
        ++out.compares;
        if (w.key == key) {
          out.action[i] = ArbOutcome::Action::kMerged;
          out.winner_of[i] = w.cand_index;
          ++buses_used;
          merged = true;
          break;
        }
      }
    }
    if (merged) continue;

    const BankIdx bank = p_.layout.bankOf(c.vaddr);
    if (bank_used[bank]) {
      ++out.bank_conflicts;
      continue;  // kHeld — single-ported bank already claimed
    }
    bank_used[bank] = true;
    out.action[i] = ArbOutcome::Action::kWinner;
    winners.push_back(Winner{i, key});
    ++buses_used;
  }

  // MBE: serviced when its bank port is free; needs no result bus.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!candidates[i].is_mbe) continue;
    const BankIdx bank = p_.layout.bankOf(candidates[i].vaddr);
    if (!bank_used[bank]) {
      bank_used[bank] = true;
      out.action[i] = ArbOutcome::Action::kWinner;
      out.mbe = i;
    } else {
      ++out.bank_conflicts;
    }
    break;  // at most one MBE per group
  }

  return out;
}

}  // namespace malec::core
