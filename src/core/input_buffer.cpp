#include "core/input_buffer.h"

#include <algorithm>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::core {

InputBuffer::InputBuffer(std::uint32_t carry_slots, std::uint32_t agu_slots,
                         std::uint32_t group_comparators,
                         AddressLayout layout)
    : carry_slots_(carry_slots),
      agu_slots_(agu_slots),
      group_comparators_(group_comparators),
      layout_(layout) {
  MALEC_CHECK(agu_slots >= 1);
}

std::size_t InputBuffer::loadCount() const {
  std::size_t n = 0;
  for (const Entry& e : entries_)
    if (!e.is_mbe) ++n;
  return n;
}

bool InputBuffer::hasLoadSpace() const {
  return loadCount() < carry_slots_ + agu_slots_;
}

bool InputBuffer::hasMbeSpace() const {
  return std::none_of(entries_.begin(), entries_.end(),
                      [](const Entry& e) { return e.is_mbe; });
}

bool InputBuffer::overCommitted(Cycle now) const {
  std::size_t carried = 0;
  for (const Entry& e : entries_)
    if (!e.is_mbe && e.arrival < now) ++carried;
  return carried > carry_slots_;
}

void InputBuffer::addLoad(const MemOp& op, Cycle now) {
  MALEC_CHECK_MSG(hasLoadSpace(), "InputBuffer load overflow");
  MALEC_CHECK(op.is_load);
  entries_.push_back(Entry{op, false, now, now, next_order_++});
}

void InputBuffer::addMbe(const MemOp& op, Cycle now) {
  MALEC_CHECK_MSG(hasMbeSpace(), "second MBE in InputBuffer");
  MALEC_CHECK(!op.is_load);
  entries_.push_back(Entry{op, true, now, now, next_order_++});
}

std::optional<std::size_t> InputBuffer::selectHead(Cycle now) const {
  // Loads in age order first; the MBE is always lowest priority (its
  // stores already committed, Sec. IV).
  std::optional<std::size_t> mbe;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.not_before > now) continue;
    if (e.is_mbe) {
      mbe = i;
      continue;
    }
    return i;
  }
  return mbe;
}

std::vector<std::size_t> InputBuffer::group(std::size_t head,
                                            Cycle now) const {
  std::vector<std::size_t> g;
  group(head, now, g);
  return g;
}

void InputBuffer::group(std::size_t head, Cycle now,
                        std::vector<std::size_t>& g) const {
  MALEC_CHECK(head < entries_.size());
  const PageId page = layout_.pageId(entries_[head].op.vaddr);
  g.clear();
  g.push_back(head);
  std::uint32_t compared = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i == head) continue;
    if (compared >= group_comparators_) break;
    ++compared;  // every remaining valid entry consumes a comparator
    const Entry& e = entries_[i];
    if (e.not_before > now) continue;
    if (layout_.pageId(e.op.vaddr) == page) g.push_back(i);
  }
  // Keep priority order: loads by order, MBE last.
  std::sort(g.begin(), g.end(), [this](std::size_t a, std::size_t b) {
    if (entries_[a].is_mbe != entries_[b].is_mbe)
      return entries_[b].is_mbe;
    return entries_[a].order < entries_[b].order;
  });
}

void InputBuffer::defer(std::size_t index, Cycle until) {
  MALEC_CHECK(index < entries_.size());
  entries_[index].not_before = until;
}

void InputBuffer::remove(const std::vector<std::size_t>& indices) {
  std::vector<std::size_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  MALEC_DCHECK(std::adjacent_find(sorted.begin(), sorted.end()) ==
               sorted.end());
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    MALEC_CHECK(*it < entries_.size());
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
}

void InputBuffer::saveState(ckpt::StateWriter& w) const {
  w.u64(entries_.size());
  for (const Entry& e : entries_) {
    saveMemOp(w, e.op);
    w.u8(e.is_mbe ? 1 : 0);
    w.u64(e.not_before);
    w.u64(e.arrival);
    w.u64(e.order);
  }
  w.u64(next_order_);
}

void InputBuffer::loadState(ckpt::StateReader& r) {
  const std::uint64_t n = r.u64();
  // Structural bound: carried + newly-computed loads plus the one MBE slot.
  MALEC_CHECK_MSG(n <= carry_slots_ + agu_slots_ + 1u,
                  "input-buffer checkpoint exceeds this capacity");
  entries_.assign(static_cast<std::size_t>(n), Entry{});
  for (Entry& e : entries_) {
    e.op = loadMemOp(r);
    e.is_mbe = r.u8() != 0;
    e.not_before = r.u64();
    e.arrival = r.u64();
    e.order = r.u64();
  }
  next_order_ = r.u64();
}

}  // namespace malec::core
