#include "core/input_buffer.h"

#include <algorithm>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::core {

// ORDER CONTRACT (regression-tested in test_input_buffer.cpp): the packed
// arrays are scanned low-to-high everywhere in this file, and three
// invariants make those scans equivalent to explicit priority sorting:
//   1. Index order IS age order: entries append with strictly increasing
//      order_ values and remove() preserves relative order.
//   2. arrival_ is non-decreasing in index order (appends stamp the current
//      cycle, which never goes backwards), so overCommitted() may stop at
//      the first entry that arrived this cycle.
//   3. The comparator budget in group() is consumed per *valid* entry in
//      index order BEFORE the ready check — hardware wires comparators to
//      storage slots, not to ready entries — so scan order is part of the
//      modelled semantics, not an implementation detail.

InputBuffer::InputBuffer(std::uint32_t carry_slots, std::uint32_t agu_slots,
                         std::uint32_t group_comparators,
                         AddressLayout layout)
    : carry_slots_(carry_slots),
      agu_slots_(agu_slots),
      group_comparators_(group_comparators),
      layout_(layout) {
  MALEC_CHECK(agu_slots >= 1);
}

bool InputBuffer::hasLoadSpace() const {
  return loadCount() < carry_slots_ + agu_slots_;
}

bool InputBuffer::overCommitted(Cycle now) const {
  std::size_t carried = 0;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    // Invariant 2: arrivals are non-decreasing in index order, so the
    // first same-cycle entry ends the carried prefix.
    if (arrival_[i] >= now) break;
    if (i != mbe_pos_) ++carried;
  }
  return carried > carry_slots_;
}

void InputBuffer::addLoad(const MemOp& op, Cycle now) {
  MALEC_CHECK_MSG(hasLoadSpace(), "InputBuffer load overflow");
  MALEC_CHECK(op.is_load);
  MALEC_DCHECK(arrival_.empty() || arrival_.back() <= now);
  ops_.push_back(op);
  not_before_.push_back(now);
  arrival_.push_back(now);
  order_.push_back(next_order_++);
  page_.push_back(layout_.pageId(op.vaddr));
}

void InputBuffer::addMbe(const MemOp& op, Cycle now) {
  MALEC_CHECK_MSG(hasMbeSpace(), "second MBE in InputBuffer");
  MALEC_CHECK(!op.is_load);
  MALEC_DCHECK(arrival_.empty() || arrival_.back() <= now);
  mbe_pos_ = ops_.size();
  ops_.push_back(op);
  not_before_.push_back(now);
  arrival_.push_back(now);
  order_.push_back(next_order_++);
  page_.push_back(layout_.pageId(op.vaddr));
}

std::optional<std::size_t> InputBuffer::selectHead(Cycle now) const {
  // Loads in age order first (invariant 1: index order is age order); the
  // MBE is always lowest priority (its stores already committed, Sec. IV).
  std::optional<std::size_t> mbe;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (not_before_[i] > now) continue;
    if (i == mbe_pos_) {
      mbe = i;
      continue;
    }
    return i;
  }
  return mbe;
}

std::vector<std::size_t> InputBuffer::group(std::size_t head,
                                            Cycle now) const {
  std::vector<std::size_t> g;
  group(head, now, g);
  return g;
}

void InputBuffer::group(std::size_t head, Cycle now,
                        std::vector<std::size_t>& g) const {
  MALEC_CHECK(head < ops_.size());
  const PageId page = page_[head];
  g.clear();
  // The result is priority-ordered without sorting: if the head is a load
  // it is the OLDEST ready load (selectHead), so every ready load matched
  // below has a larger index (invariant 1) and index order is priority
  // order; the MBE, matched or head, always goes last.
  if (head != mbe_pos_) g.push_back(head);
  bool mbe_matched = false;
  std::uint32_t compared = 0;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (i == head) continue;
    if (compared >= group_comparators_) break;
    // Invariant 3: every valid entry consumes a comparator, ready or not.
    ++compared;
    if (not_before_[i] > now) continue;
    if (page_[i] == page) {
      if (i == mbe_pos_) {
        mbe_matched = true;
      } else {
        MALEC_DCHECK(head == mbe_pos_ || i > head);
        g.push_back(i);
      }
    }
  }
  if (mbe_matched) g.push_back(mbe_pos_);
  if (head == mbe_pos_) g.push_back(head);
}

void InputBuffer::defer(std::size_t index, Cycle until) {
  MALEC_CHECK(index < ops_.size());
  not_before_[index] = until;
}

void InputBuffer::remove(const std::vector<std::size_t>& indices) {
  std::vector<std::size_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  MALEC_DCHECK(std::adjacent_find(sorted.begin(), sorted.end()) ==
               sorted.end());
  // Erase descending so lower indices stay valid; relative order of the
  // survivors is preserved (invariant 1 depends on it).
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    const std::size_t i = *it;
    MALEC_CHECK(i < ops_.size());
    ops_.erase(ops_.begin() + static_cast<std::ptrdiff_t>(i));
    not_before_.erase(not_before_.begin() + static_cast<std::ptrdiff_t>(i));
    arrival_.erase(arrival_.begin() + static_cast<std::ptrdiff_t>(i));
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
    page_.erase(page_.begin() + static_cast<std::ptrdiff_t>(i));
    if (i == mbe_pos_) {
      mbe_pos_ = kNoMbe;
    } else if (mbe_pos_ != kNoMbe && i < mbe_pos_) {
      --mbe_pos_;
    }
  }
}

void InputBuffer::saveState(ckpt::StateWriter& w) const {
  w.u64(ops_.size());
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    saveMemOp(w, ops_[i]);
    w.u8(isMbe(i) ? 1 : 0);
    w.u64(not_before_[i]);
    w.u64(arrival_[i]);
    w.u64(order_[i]);
  }
  w.u64(next_order_);
}

void InputBuffer::loadState(ckpt::StateReader& r) {
  const std::uint64_t n = r.u64();
  // Structural bound: carried + newly-computed loads plus the one MBE slot.
  MALEC_CHECK_MSG(n <= carry_slots_ + agu_slots_ + 1u,
                  "input-buffer checkpoint exceeds this capacity");
  ops_.clear();
  not_before_.clear();
  arrival_.clear();
  order_.clear();
  page_.clear();
  mbe_pos_ = kNoMbe;
  for (std::uint64_t i = 0; i < n; ++i) {
    ops_.push_back(loadMemOp(r));
    const bool is_mbe = r.u8() != 0;
    if (is_mbe) {
      MALEC_CHECK_MSG(mbe_pos_ == kNoMbe,
                      "input-buffer checkpoint holds two MBEs");
      mbe_pos_ = static_cast<std::size_t>(i);
    }
    not_before_.push_back(r.u64());
    arrival_.push_back(r.u64());
    order_.push_back(r.u64());
    page_.push_back(layout_.pageId(ops_.back().vaddr));
  }
  next_order_ = r.u64();
}

}  // namespace malec::core
