#include "core/event_queue.h"

#include <atomic>
#include <cstdlib>

#include "ckpt/pq_state.h"
#include "ckpt/state_io.h"

namespace malec::core {

namespace {
/// -1 = not yet seeded from the environment; 0/1 = resolved value. A data
/// race on first seeding is benign: every racer parses the same strict
/// value and stores the same result.
std::atomic<int> g_exec_queue_legacy{-1};
}  // namespace

bool execQueueLegacy() {
  int v = g_exec_queue_legacy.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("MALEC_LEGACY_EXEC_QUEUE");
    int parsed = 0;
    if (env != nullptr) {
      MALEC_CHECK_MSG((env[0] == '0' || env[0] == '1') && env[1] == '\0',
                      "MALEC_LEGACY_EXEC_QUEUE must be exactly '0' or '1'");
      parsed = env[0] - '0';
    }
    g_exec_queue_legacy.store(parsed, std::memory_order_relaxed);
    v = parsed;
  }
  return v != 0;
}

void setExecQueueLegacy(bool legacy) {
  g_exec_queue_legacy.store(legacy ? 1 : 0, std::memory_order_relaxed);
}

EventQueue::EventQueue() : legacy_(execQueueLegacy()) {
  if (!legacy_) buckets_.resize(kBuckets);
}

void EventQueue::saveState(ckpt::StateWriter& w) const {
  if (legacy_) {
    ckpt::savePairQueue(w, legacy_pq_);
    return;
  }
  std::vector<Event> all;
  all.reserve(size_);
  for (const std::vector<Event>& b : buckets_)
    all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.cycle != b.cycle ? a.cycle < b.cycle : a.seq < b.seq;
  });
  w.u64(all.size());
  for (const Event& e : all) {
    w.u64(e.cycle);
    w.u64(e.seq);
  }
}

void EventQueue::loadState(ckpt::StateReader& r) {
  if (legacy_) {
    ckpt::loadPairQueue(r, legacy_pq_);
    size_ = legacy_pq_.size();
    return;
  }
  for (std::vector<Event>& b : buckets_) b.clear();
  const std::uint64_t n = r.u64();
  size_ = static_cast<std::size_t>(n);
  next_ = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Cycle cycle = r.u64();
    const SeqNum seq = r.u64();
    if (i == 0 || cycle < next_) next_ = cycle;
    buckets_[cycle & (kBuckets - 1)].push_back(Event{cycle, seq});
  }
}

}  // namespace malec::core
