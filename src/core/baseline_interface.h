// Baseline L1 data-memory interfaces (paper Table I):
//
//   * Base1ldst  — 1 load OR store address per cycle, single-ported uTLB/
//                  TLB and cache (1 rd/wt port): the energy-oriented design.
//   * Base2ld1st — 2 loads + 1 store per cycle through physical
//                  multi-porting (uTLB/TLB: 1 rd/wt + 2 rd; cache:
//                  1 rd/wt + 1 rd) on top of banking: the performance-
//                  oriented design.
//
// Every load translates individually (multi-ported TLBs) and performs a
// conventional cache access (no way determination). Stores drain through
// the same Store Buffer / Merge Buffer path as MALEC; evicted MB entries
// compete with loads for the cache's rd/wt port.
#pragma once

#include <cstdint>
#include <vector>

#include "core/event_queue.h"
#include "core/interface_config.h"
#include "core/l1_event_ids.h"
#include "core/mem_interface.h"
#include "core/translation_engine.h"
#include "energy/energy_account.h"
#include "lsq/merge_buffer.h"
#include "lsq/store_buffer.h"
#include "mem/l1_cache.h"
#include "mem/l2_cache.h"
#include "mem/memory_hierarchy.h"

namespace malec::core {

class BaselineInterface final : public MemInterface {
 public:
  BaselineInterface(const InterfaceConfig& cfg, const SystemConfig& sys,
                    energy::EnergyAccount& ea);

  void beginCycle(Cycle now) override;
  [[nodiscard]] bool canAcceptLoad() const override;
  [[nodiscard]] bool canAcceptStore() const override;
  bool submit(const MemOp& op) override;
  void notifyStoreCommit(SeqNum seq) override;
  void endCycle(Cycle now) override;
  void drainCompletions(Cycle now, std::vector<SeqNum>& out) override;
  [[nodiscard]] bool quiesced() const override;
  [[nodiscard]] const InterfaceStats& stats() const override { return stats_; }
  void saveState(ckpt::StateWriter& w) const override;
  void loadState(ckpt::StateReader& r) override;

  [[nodiscard]] const TranslationEngine& engine() const { return engine_; }
  [[nodiscard]] const mem::L1Cache& l1() const { return l1_; }
  [[nodiscard]] const mem::MemoryHierarchy& hierarchy() const { return hier_; }
  [[nodiscard]] const lsq::StoreBuffer& storeBuffer() const { return sb_; }
  [[nodiscard]] const lsq::MergeBuffer& mergeBuffer() const { return mb_; }

 private:
  void drainStoreBuffer();
  void serviceLoads(Cycle now);
  Cycle accessL1Load(const MemOp& op, Addr paddr, Cycle now);
  void accessL1Write(Addr vaddr, Cycle now);

  /// Loads serviceable this cycle given the port organisation.
  [[nodiscard]] std::uint32_t loadPortsPerCycle() const;

  InterfaceConfig cfg_;  // lint:no-state(config; restore binds by fingerprint)
  SystemConfig sys_;     // lint:no-state(config; restore binds by fingerprint)
  energy::EnergyAccount& ea_;  // lint:no-state(wiring ref; checkpoints itself)
  /// Event handles resolved once at construction (hot path = integer ids).
  L1EventIds id_;  // lint:no-state(construction-time EventId cache)

  mem::L1Cache l1_;
  mem::L2Cache l2_;
  mem::MemoryHierarchy hier_;
  TranslationEngine engine_;
  lsq::StoreBuffer sb_;
  lsq::MergeBuffer mb_;

  /// Loads waiting for a cache port (small backlog from MBE-write cycles).
  std::vector<MemOp> pending_loads_;
  std::optional<lsq::MergeBuffer::Entry> pending_mbe_;

  EventQueue completions_;  ///< (data-ready cycle, seq) load completions

  InterfaceStats stats_;
  Cycle now_ = 0;
};

}  // namespace malec::core
