// Calendar/bucket event queue for the per-cycle hot path.
//
// The simulator's completion queues (core exec events, interface load
// completions) are (ready_cycle, seq) pairs that are always drained in
// ascending (cycle, seq) order at the current cycle. A binary heap pays
// O(log n) churn per event; this queue instead hashes each event into a
// power-of-two ring of cycle buckets (index = cycle mod kBuckets) and pops
// a bucket per cycle — O(1) amortised push/pop. Events farther out than
// kBuckets cycles alias into an earlier bucket and are filtered by their
// exact cycle at drain time, so arbitrary horizons stay correct.
//
// Pop order is identical to the std::priority_queue it replaces: every
// (cycle, seq) pair is unique (a seq completes at most once per queue), the
// drain cursor visits cycles in ascending order, and each cycle's events
// are emitted sorted by seq. Checkpoints serialize exactly the bytes
// ckpt::savePairQueue produced for the old heap — ascending (cycle, seq)
// pairs after a u64 count — so the format is unchanged and checkpoints
// written by either backend restore into either backend.
//
// The legacy heap backend is kept behind MALEC_LEGACY_EXEC_QUEUE for one
// PR as the differential-test reference (tests/test_differential.cpp) and
// will be removed once the calendar queue has soaked.
#pragma once

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::core {

/// Backend selector, seeded lazily from MALEC_LEGACY_EXEC_QUEUE ("0" or
/// "1"; anything else aborts — sloppy toggle values must not silently pick
/// a backend). false = calendar queue (default), true = std::priority_queue.
[[nodiscard]] bool execQueueLegacy();

/// Test/differential-harness override. Only flip this between runs (each
/// EventQueue binds its backend at construction); runManyParallel batches
/// must not straddle a toggle.
void setExecQueueLegacy(bool legacy);

class EventQueue {
 public:
  EventQueue();

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Enqueue `seq` to pop once the clock reaches `cycle`. Must not be
  /// called from inside a drainReady() callback. Inline: this is the single
  /// hottest call in the run loop (one per completion event).
  void push(Cycle cycle, SeqNum seq) {
    if (legacy_) {
      legacy_pq_.emplace(cycle, seq);
      ++size_;
      return;
    }
    // An empty queue re-anchors the cursor; a push behind it rewinds it
    // (the run loop never does this — events land at now+latency — but
    // restored or fuzzed queues may).
    if (size_ == 0 || cycle < next_) next_ = cycle;
    // lint:allow(hot-alloc: buckets keep their high-water capacity — steady-state pushes reuse retained storage)
    buckets_[cycle & (kBuckets - 1)].push_back(Event{cycle, seq});
    ++size_;
  }

  /// Pop every event with cycle <= now, invoking fn(seq) in ascending
  /// (cycle, seq) order — exactly the pop order of a min-heap on the pair.
  template <class Fn>
  void drainReady(Cycle now, Fn&& fn) {
    if (legacy_) {
      while (!legacy_pq_.empty() && legacy_pq_.top().first <= now) {
        const SeqNum seq = legacy_pq_.top().second;
        legacy_pq_.pop();
        --size_;
        fn(seq);
      }
      return;
    }
    while (size_ > 0 && next_ <= now) {
      std::vector<Event>& b = buckets_[next_ & (kBuckets - 1)];
      if (!b.empty()) {
        // Extract this cycle's events; aliased future events stay put
        // (compacted in place, relative order preserved).
        drain_scratch_.clear();
        std::size_t keep = 0;
        for (const Event& e : b) {
          if (e.cycle == next_) {
            // lint:allow(hot-alloc: drain scratch retains capacity across cycles)
            drain_scratch_.push_back(e);
          } else {
            b[keep++] = e;
          }
        }
        // lint:allow(hot-alloc: shrinking resize — compacts in place, never grows)
        b.resize(keep);
        if (!drain_scratch_.empty()) {
          if (drain_scratch_.size() > 1)
            std::sort(drain_scratch_.begin(), drain_scratch_.end(),
                      [](const Event& a, const Event& e) {
                        return a.seq < e.seq;
                      });
          size_ -= drain_scratch_.size();
          for (const Event& e : drain_scratch_) fn(e.seq);
        }
      }
      ++next_;
    }
  }

  /// Checkpoint/restore. Byte format: u64 count, then ascending
  /// (cycle, seq) u64 pairs — identical to ckpt::savePairQueue on the
  /// legacy heap, so either backend restores a file written by the other.
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct Event {
    Cycle cycle;
    SeqNum seq;
  };
  static constexpr std::size_t kBuckets = 1024;  // power of two (mask index)

  bool legacy_;  // lint:no-state(backend choice, bound at construction)
  std::size_t size_ = 0;
  /// Next cycle the drain cursor will visit; a lower bound on every pending
  /// event's cycle.
  Cycle next_ = 0;  // lint:no-state(derived: recomputed as the min pending cycle in loadState)
  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> drain_scratch_;  // lint:no-state(per-drain scratch)
  std::priority_queue<std::pair<Cycle, SeqNum>,
                      std::vector<std::pair<Cycle, SeqNum>>, std::greater<>>
      legacy_pq_;
};

}  // namespace malec::core
