// Abstract L1 data-memory interface as seen by the out-of-order core.
//
// Concrete implementations: MalecInterface (Page-Based Access Grouping) and
// BaselineInterface (Base1ldst / Base2ld1st port models). The core submits
// memory operations as their address computations finish and receives load
// completions; stores complete architecturally at commit via
// notifyStoreCommit, after which the interface drains them through the
// Store Buffer and Merge Buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::core {

/// A memory operation handed over by an address-computation unit.
struct MemOp {
  SeqNum seq = 0;
  bool is_load = true;
  Addr vaddr = 0;
  std::uint8_t size = 8;
};

/// Shared MemOp checkpoint codec — every holder (input buffer, pending
/// load backlog) serializes through this one field list.
void saveMemOp(ckpt::StateWriter& w, const MemOp& op);
[[nodiscard]] MemOp loadMemOp(ckpt::StateReader& r);

/// Aggregate behavioural counters every interface maintains.
struct InterfaceStats {
  std::uint64_t loads_submitted = 0;
  std::uint64_t stores_submitted = 0;

  std::uint64_t load_l1_accesses = 0;  ///< actual L1 reads (after fwd/merge)
  std::uint64_t load_l1_hits = 0;
  std::uint64_t load_l1_misses = 0;
  std::uint64_t write_l1_accesses = 0;  ///< MBE writes reaching the cache
  std::uint64_t write_l1_misses = 0;

  std::uint64_t reduced_accesses = 0;       ///< tag arrays bypassed
  std::uint64_t conventional_accesses = 0;  ///< full lookup
  std::uint64_t way_lookups = 0;            ///< way-determination queries
  std::uint64_t way_known = 0;              ///< ... answered with a valid way

  std::uint64_t merged_loads = 0;  ///< loads sharing another load's L1 read
  std::uint64_t sb_forwards = 0;
  std::uint64_t mb_forwards = 0;

  std::uint64_t groups = 0;         ///< page groups formed (MALEC)
  std::uint64_t group_entries = 0;  ///< accesses serviced via groups
  std::uint64_t ib_hold_events = 0; ///< entries held for a later cycle
  std::uint64_t ib_stall_cycles = 0;
  std::uint64_t bank_conflicts = 0;
  std::uint64_t bus_rejects = 0;
  std::uint64_t port_conflicts = 0;
  std::uint64_t mbe_writes = 0;

  [[nodiscard]] double wayCoverage() const {
    return way_lookups == 0
               ? 0.0
               : static_cast<double>(way_known) /
                     static_cast<double>(way_lookups);
  }
};

/// Every counter field of InterfaceStats, for code that folds whole stat
/// sets (warmup deltas, the weighted phase combination of sampled replay).
/// A new counter MUST be added here too — a static_assert in
/// mem_interface.cpp pins the listing against sizeof(InterfaceStats).
inline constexpr std::uint64_t InterfaceStats::*kInterfaceCounterFields[] = {
    &InterfaceStats::loads_submitted,
    &InterfaceStats::stores_submitted,
    &InterfaceStats::load_l1_accesses,
    &InterfaceStats::load_l1_hits,
    &InterfaceStats::load_l1_misses,
    &InterfaceStats::write_l1_accesses,
    &InterfaceStats::write_l1_misses,
    &InterfaceStats::reduced_accesses,
    &InterfaceStats::conventional_accesses,
    &InterfaceStats::way_lookups,
    &InterfaceStats::way_known,
    &InterfaceStats::merged_loads,
    &InterfaceStats::sb_forwards,
    &InterfaceStats::mb_forwards,
    &InterfaceStats::groups,
    &InterfaceStats::group_entries,
    &InterfaceStats::ib_hold_events,
    &InterfaceStats::ib_stall_cycles,
    &InterfaceStats::bank_conflicts,
    &InterfaceStats::bus_rejects,
    &InterfaceStats::port_conflicts,
    &InterfaceStats::mbe_writes,
};

/// Counter gate for warmup-aware sampled replay: `after - before`,
/// field by field. The warmup segment's counters are snapshotted when the
/// measurement window opens and subtracted from the final stats, so warmup
/// accesses prime the interface state without entering any reported metric
/// (the EnergyAccount side of the same boundary is energy::StatGate).
[[nodiscard]] InterfaceStats statsDelta(const InterfaceStats& after,
                                        const InterfaceStats& before);

class MemInterface {
 public:
  virtual ~MemInterface() = default;

  /// Start-of-cycle housekeeping (reset port budgets, accept MB evictions).
  virtual void beginCycle(Cycle now) = 0;

  /// May the core submit another load/store this cycle? (structural space)
  [[nodiscard]] virtual bool canAcceptLoad() const = 0;
  [[nodiscard]] virtual bool canAcceptStore() const = 0;

  /// Hand over an op whose address computation finished this cycle.
  /// Returns false on a structural hazard (caller retries next cycle).
  virtual bool submit(const MemOp& op) = 0;

  /// ROB committed this store; it may drain towards the cache.
  virtual void notifyStoreCommit(SeqNum seq) = 0;

  /// End-of-cycle: translation, arbitration and L1 access for this cycle.
  virtual void endCycle(Cycle now) = 0;

  /// Collect loads whose data is available at `now`.
  virtual void drainCompletions(Cycle now, std::vector<SeqNum>& out) = 0;

  /// No in-flight work left (used to drain the pipeline at end of run).
  [[nodiscard]] virtual bool quiesced() const = 0;

  [[nodiscard]] virtual const InterfaceStats& stats() const = 0;

  /// Checkpoint/restore of ALL mutable interface state — input buffers,
  /// arbitration scratch carried across cycles, merge/feedback machinery,
  /// busy windows, caches, TLBs, way structures and counters. The
  /// determinism contract (docs/ARCHITECTURE.md): restoring into a
  /// freshly-constructed interface of the same configuration and
  /// continuing is bit-identical to never having stopped. Any state a
  /// subclass forgets to serialize fails the checkpoint test matrix.
  virtual void saveState(ckpt::StateWriter& w) const = 0;
  virtual void loadState(ckpt::StateReader& r) = 0;
};

}  // namespace malec::core
