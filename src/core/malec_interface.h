// The MALEC L1 data-memory interface: Page-Based Memory Access Grouping
// (Sec. IV) plus optional Page-Based Way Determination (Sec. V) or a
// WDU-based variant (Sec. VI-C).
//
// Per cycle: at most ONE page is translated (single-ported uTLB/TLB); all
// Input Buffer entries on that page form a group; the Arbitration Unit
// spreads the group over the four single-ported cache banks, merges
// same-line loads onto shared data reads and respects the result-bus limit;
// way information from the uWT entry (delivered with the translation)
// selects reduced (tag-bypassing) or conventional cache accesses.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/arbitration_unit.h"
#include "core/event_queue.h"
#include "core/input_buffer.h"
#include "core/interface_config.h"
#include "core/l1_event_ids.h"
#include "core/mem_interface.h"
#include "core/translation_engine.h"
#include "energy/energy_account.h"
#include "lsq/merge_buffer.h"
#include "lsq/store_buffer.h"
#include "mem/l1_cache.h"
#include "mem/l2_cache.h"
#include "mem/memory_hierarchy.h"
#include "waydet/wdu.h"

namespace malec::core {

class MalecInterface final : public MemInterface {
 public:
  MalecInterface(const InterfaceConfig& cfg, const SystemConfig& sys,
                 energy::EnergyAccount& ea);

  void beginCycle(Cycle now) override;
  [[nodiscard]] bool canAcceptLoad() const override;
  [[nodiscard]] bool canAcceptStore() const override;
  bool submit(const MemOp& op) override;
  void notifyStoreCommit(SeqNum seq) override;
  void endCycle(Cycle now) override;
  void drainCompletions(Cycle now, std::vector<SeqNum>& out) override;
  [[nodiscard]] bool quiesced() const override;
  [[nodiscard]] const InterfaceStats& stats() const override { return stats_; }
  void saveState(ckpt::StateWriter& w) const override;
  void loadState(ckpt::StateReader& r) override;

  // --- inspection (tests, reports) -----------------------------------------
  [[nodiscard]] const TranslationEngine& engine() const { return engine_; }
  [[nodiscard]] const mem::L1Cache& l1() const { return l1_; }
  [[nodiscard]] const mem::MemoryHierarchy& hierarchy() const { return hier_; }
  [[nodiscard]] const lsq::StoreBuffer& storeBuffer() const { return sb_; }
  [[nodiscard]] const lsq::MergeBuffer& mergeBuffer() const { return mb_; }
  [[nodiscard]] const InputBuffer& inputBuffer() const { return ib_; }

 private:
  struct GroupMember {
    std::size_t ib_index;
    MemOp op;
    bool is_mbe;
  };

  void drainStoreBuffer(Cycle now);
  void serviceGroup(Cycle now);
  /// Look up way info for an access about to touch the L1.
  WayIdx lookupWay(std::uint32_t uwt_slot, Addr vaddr, Addr paddr);
  /// Record way knowledge gained by a conventional hit.
  void learnWay(PageId vpage, Addr vaddr, Addr paddr, WayIdx way);
  /// Perform the L1 read for a winner load; returns data-ready cycle.
  Cycle accessL1Load(const MemOp& op, PageId vpage, Addr paddr,
                     std::uint32_t uwt_slot, Cycle now);
  /// Perform an MBE write.
  void accessL1Write(const MemOp& op, PageId vpage, Addr paddr,
                     std::uint32_t uwt_slot, Cycle now);
  void complete(SeqNum seq, Cycle ready);

  /// Event handles resolved once at construction (hot path = integer ids):
  /// the shared L1 set plus MALEC's WDU events.
  struct EventIds {
    explicit EventIds(energy::EnergyAccount& ea)
        : l1(ea),
          wdu_search(ea.resolveEvent("wdu.search")),
          wdu_write(ea.resolveEvent("wdu.write")) {}
    L1EventIds l1;
    energy::EnergyAccount::EventId wdu_search;
    energy::EnergyAccount::EventId wdu_write;
  };

  InterfaceConfig cfg_;  // lint:no-state(config; restore binds by fingerprint)
  SystemConfig sys_;     // lint:no-state(config; restore binds by fingerprint)
  energy::EnergyAccount& ea_;  // lint:no-state(wiring ref; checkpoints itself)
  EventIds id_;  // lint:no-state(construction-time EventId cache)

  mem::L1Cache l1_;
  mem::L2Cache l2_;
  mem::MemoryHierarchy hier_;
  TranslationEngine engine_;
  std::unique_ptr<waydet::Wdu> wdu_;
  lsq::StoreBuffer sb_;
  lsq::MergeBuffer mb_;
  InputBuffer ib_;
  ArbitrationUnit arb_;  // lint:no-state(combinational; holds no cycle state)

  /// MB eviction waiting for the Input Buffer's MBE slot.
  std::optional<lsq::MergeBuffer::Entry> pending_mbe_;

  // Per-cycle scratch buffers reused across serviceGroup() calls so the
  // steady state allocates nothing (capacity is retained between cycles).
  std::vector<std::size_t> group_scratch_;   // lint:no-state(per-cycle scratch)
  std::vector<ArbCandidate> cand_scratch_;   // lint:no-state(per-cycle scratch)
  ArbOutcome arb_scratch_;                   // lint:no-state(per-cycle scratch)
  std::vector<std::size_t> serviced_scratch_;  // lint:no-state(per-cycle scratch)
  std::vector<std::size_t> party_scratch_;     // lint:no-state(per-cycle scratch)

  EventQueue completions_;  ///< (data-ready cycle, seq) load completions

  InterfaceStats stats_;
  Cycle now_ = 0;

  // Run-time bypass monitor (adaptive_bypass extension, Sec. VI-D).
  std::uint64_t window_accesses_ = 0;
  std::uint64_t window_misses_ = 0;
  std::uint64_t window_lookups_ = 0;
  std::uint64_t window_known_ = 0;
  std::uint64_t bypass_windows_ = 0;
  std::uint32_t high_miss_windows_ = 0;  ///< consecutive, for hysteresis

 public:
  /// Windows spent with way determination suspended (for reports/tests).
  [[nodiscard]] std::uint64_t bypassWindows() const { return bypass_windows_; }
};

}  // namespace malec::core
