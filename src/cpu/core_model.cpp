#include "cpu/core_model.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::cpu {

// kCoreScaledCounterFields lists every CoreStats field except cycles and
// instructions (derived separately by sampled replay); this trips when a
// field is added to the struct but not the listing, or vice versa.
static_assert(sizeof(CoreStats) ==
                  (std::size(kCoreScaledCounterFields) + 2) *
                      sizeof(std::uint64_t),
              "kCoreScaledCounterFields is out of sync with CoreStats");

CoreModel::CoreModel(const core::SystemConfig& sys,
                     const core::InterfaceConfig& ifc,
                     trace::TraceSource& src, core::MemInterface& mem)
    : sys_(sys),
      ifc_cfg_(ifc),
      src_(src),
      mem_(mem),
      lq_(sys.lq_entries),
      rob_slots_(sys.rob_entries),
      ready_exec_(sys.rob_entries),
      ready_loads_(sys.rob_entries),
      store_order_(sys.rob_entries) {}

bool CoreModel::inRob(SeqNum seq) const {
  return rob_size_ > 0 && seq >= head_seq_ && seq < head_seq_ + rob_size_;
}

CoreModel::RobEntry& CoreModel::entry(SeqNum seq) {
  MALEC_DCHECK(inRob(seq));
  std::size_t i = rob_head_ + static_cast<std::size_t>(seq - head_seq_);
  if (i >= rob_slots_.size()) i -= rob_slots_.size();
  return rob_slots_[i];
}

const CoreModel::RobEntry& CoreModel::slot(std::size_t logical) const {
  MALEC_DCHECK(logical < rob_size_);
  std::size_t i = rob_head_ + logical;
  if (i >= rob_slots_.size()) i -= rob_slots_.size();
  return rob_slots_[i];
}

void CoreModel::enqueueReady(SeqNum seq) {
  RobEntry& e = entry(seq);
  MALEC_DCHECK(e.pending_deps == 0);
  switch (e.instr.kind) {
    case trace::InstrKind::kOther:
      // lint:allow(hot-alloc: FixedRing::push_back writes into a preallocated slab — no allocation)
      ready_exec_.push_back(seq);
      break;
    case trace::InstrKind::kLoad:
      // lint:allow(hot-alloc: FixedRing::push_back writes into a preallocated slab — no allocation)
      ready_loads_.push_back(seq);
      break;
    case trace::InstrKind::kStore:
      // Stores wait in store_order_ (program order); readiness is checked
      // there via pending_deps == 0.
      break;
  }
}

void CoreModel::markCompleted(SeqNum seq) {
  RobEntry& e = entry(seq);
  if (e.completed) return;
  e.completed = true;
  for (SeqNum dep : e.deps) {
    if (!inRob(dep)) continue;  // dependent already retired (cannot happen
                                // for true deps, defensive anyway)
    RobEntry& d = entry(dep);
    MALEC_DCHECK(d.pending_deps > 0);
    if (--d.pending_deps == 0) enqueueReady(dep);
  }
  e.deps.clear();
}

void CoreModel::doCommit() {
  std::uint32_t committed = 0;
  while (committed < sys_.commit_width && rob_size_ > 0) {
    RobEntry& head = rob_slots_[rob_head_];
    if (head.instr.isStore()) {
      if (!head.agu_done) break;  // store not yet buffered
      mem_.notifyStoreCommit(head.instr.seq);
    } else if (!head.completed) {
      break;
    }
    if (head.instr.isLoad()) lq_.release(head.instr.seq);
    // A store's dependents (if any) were woken at submit; make sure the
    // completion bookkeeping is consistent before retiring.
    if (!head.completed) markCompleted(head.instr.seq);
    head.deps.clear();  // defensive; markCompleted already drained it
    ++rob_head_;
    if (rob_head_ == rob_slots_.size()) rob_head_ = 0;
    --rob_size_;
    ++head_seq_;
    ++stats_.instructions;
    ++committed;
  }
}

void CoreModel::doExecute() {
  // Non-memory instructions: single-cycle execution, issue-width limited.
  std::uint32_t issued = 0;
  while (issued < sys_.issue_width && !ready_exec_.empty()) {
    const SeqNum seq = ready_exec_.front();
    ready_exec_.pop_front();
    if (!inRob(seq)) continue;
    exec_events_.push(now_ + 1, seq);
    ++issued;
  }
}

void CoreModel::doAgu() {
  // Loads claim the load-only units plus shared ld/st units; stores use
  // store-only units plus whatever shared units remain (loads are the
  // latency-critical class).
  std::uint32_t shared = ifc_cfg_.agu_load_store;
  std::uint32_t load_units = ifc_cfg_.agu_load_only;
  std::uint32_t store_units = ifc_cfg_.agu_store_only;

  while ((load_units > 0 || shared > 0) && !ready_loads_.empty()) {
    const SeqNum seq = ready_loads_.front();
    if (!mem_.canAcceptLoad()) {
      ++stats_.agu_stall_events;
      break;
    }
    RobEntry& e = entry(seq);
    core::MemOp op{e.instr.seq, true, e.instr.vaddr, e.instr.size};
    const bool ok = mem_.submit(op);
    MALEC_CHECK(ok);
    e.agu_done = true;
    ready_loads_.pop_front();
    if (load_units > 0) {
      --load_units;
    } else {
      --shared;
    }
  }

  while ((store_units > 0 || shared > 0) && !store_order_.empty()) {
    const SeqNum seq = store_order_.front();
    if (!inRob(seq)) {
      store_order_.pop_front();
      continue;
    }
    RobEntry& e = entry(seq);
    if (e.pending_deps != 0) break;  // oldest store not ready: keep order
    if (!mem_.canAcceptStore()) {
      ++stats_.agu_stall_events;
      break;
    }
    core::MemOp op{e.instr.seq, false, e.instr.vaddr, e.instr.size};
    const bool ok = mem_.submit(op);
    MALEC_CHECK(ok);
    e.agu_done = true;
    // Dependents of a store (rare register forwarding) wake at submit.
    markCompleted(seq);
    store_order_.pop_front();
    if (store_units > 0) {
      --store_units;
    } else {
      --shared;
    }
  }
}

void CoreModel::doDispatch() {
  std::uint32_t dispatched = 0;
  bool stalled = false;
  while (dispatched < sys_.fetch_width && !trace_done_) {
    if (rob_size_ >= sys_.rob_entries) {
      ++stats_.rob_full_cycles;
      stalled = true;
      break;
    }
    trace::InstrRecord r;
    if (!src_.next(r)) {
      trace_done_ = true;
      break;
    }
    if (r.isLoad() && lq_.full()) {
      // Put the record back conceptually: we cannot, so we buffer it in a
      // one-slot staging area instead.
      staged_ = r;
      has_staged_ = true;
      ++stats_.lq_stall_cycles;
      stalled = true;
      break;
    }
    dispatchRecord(r);
    ++dispatched;
  }
  if (stalled) ++stats_.dispatch_stall_cycles;
}

void CoreModel::setCheckpointHook(std::uint64_t every,
                                  std::function<void()> cb) {
  MALEC_CHECK_MSG(every > 0, "checkpoint interval must be > 0");
  ckpt_every_ = every;
  ckpt_next_ = stats_.instructions + every;
  ckpt_cb_ = std::move(cb);
}

CoreStats CoreModel::run(Cycle max_cycles, Cycle start_cycle) {
  if (resumed_) {
    // Continuing a restored pipeline: the clock, base and statistics all
    // came from the checkpoint — the caller's start_cycle is meaningless.
    resumed_ = false;
  } else {
    now_ = start_cycle;
    run_base_ = start_cycle;
  }
  while (true) {
    mem_.beginCycle(now_);

    // 1. Collect completions (loads from the interface, ALU events).
    completion_buf_.clear();
    mem_.drainCompletions(now_, completion_buf_);
    for (SeqNum seq : completion_buf_)
      if (inRob(seq)) markCompleted(seq);
    exec_events_.drainReady(now_, [this](SeqNum seq) {
      if (inRob(seq)) markCompleted(seq);
    });

    // 2. Retire.
    doCommit();
    // 3. Execute ALU ops; compute addresses and talk to the interface.
    doExecute();
    doAgu();
    // 4. Bring in new work (staged record first).
    if (has_staged_) {
      if (rob_size_ < sys_.rob_entries &&
          !(staged_.isLoad() && lq_.full())) {
        dispatchRecord(staged_);
        has_staged_ = false;
      } else {
        ++stats_.dispatch_stall_cycles;
      }
    }
    if (!has_staged_) doDispatch();

    // 5. The interface performs this cycle's translation/arbitration/L1.
    mem_.endCycle(now_);

    ++now_;
    if (trace_done_ && !has_staged_ && rob_size_ == 0 && mem_.quiesced())
      break;
    if (max_cycles != 0 && now_ - run_base_ >= max_cycles) break;
    // Checkpoint AFTER the continue decision: the hook only fires at a
    // boundary the uninterrupted run also crosses into, so a resumed run
    // re-enters the loop exactly like the original would have.
    if (ckpt_every_ != 0 && stats_.instructions >= ckpt_next_) {
      while (ckpt_next_ <= stats_.instructions) ckpt_next_ += ckpt_every_;
      ckpt_cb_();
    }
  }
  stats_.cycles = now_ - run_base_;
  return stats_;
}

namespace {

void saveRecord(ckpt::StateWriter& w, const trace::InstrRecord& r) {
  w.u64(r.seq);
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.u64(r.vaddr);
  w.u8(r.size);
  w.u32(r.dep_distance);
  w.u32(r.addr_dep_distance);
}

void loadRecord(ckpt::StateReader& r, trace::InstrRecord& out) {
  out.seq = r.u64();
  out.kind = static_cast<trace::InstrKind>(r.u8());
  out.vaddr = r.u64();
  out.size = r.u8();
  out.dep_distance = r.u32();
  out.addr_dep_distance = r.u32();
}

/// Read a queue length and bounds-check it against the restoring ring's
/// capacity (a hostile or mismatched checkpoint must hard-error, not
/// overflow the slab).
std::uint64_t readBounded(ckpt::StateReader& r,
                          const common::FixedRing<SeqNum>& ring) {
  const std::uint64_t n = r.u64();
  MALEC_CHECK_MSG(n <= ring.capacity(),
                  "queue checkpoint exceeds this capacity");
  return n;
}

}  // namespace

void CoreModel::saveState(ckpt::StateWriter& w) const {
  w.u64(head_seq_);
  w.u64(rob_size_);
  for (std::size_t i = 0; i < rob_size_; ++i) {
    const RobEntry& e = slot(i);
    saveRecord(w, e.instr);
    w.u8(e.pending_deps);
    w.u8(static_cast<std::uint8_t>((e.agu_done ? 1 : 0) |
                                   (e.completed ? 2 : 0)));
  }
  w.u8(trace_done_ ? 1 : 0);
  w.u64(now_);
  w.u64(run_base_);
  w.u8(has_staged_ ? 1 : 0);
  if (has_staged_) saveRecord(w, staged_);
  // Dependency lists: walking the ROB head→tail is ascending producer seq,
  // exactly the sorted-by-producer order the old unordered_map side table
  // serialized. Each list keeps its insertion order (the wakeup order). A
  // producer has a non-empty list only while !completed, matching the old
  // map's erase-on-completion lifetime.
  std::uint64_t producers = 0;
  for (std::size_t i = 0; i < rob_size_; ++i)
    if (!slot(i).deps.empty()) ++producers;
  w.u64(producers);
  for (std::size_t i = 0; i < rob_size_; ++i) {
    const RobEntry& e = slot(i);
    if (e.deps.empty()) continue;
    MALEC_DCHECK(!e.completed);
    w.u64(e.instr.seq);
    w.u64(e.deps.size());
    for (const SeqNum d : e.deps) w.u64(d);
  }
  w.u64(ready_exec_.size());
  for (std::size_t i = 0; i < ready_exec_.size(); ++i) w.u64(ready_exec_[i]);
  w.u64(ready_loads_.size());
  for (std::size_t i = 0; i < ready_loads_.size(); ++i) w.u64(ready_loads_[i]);
  w.u64(store_order_.size());
  for (std::size_t i = 0; i < store_order_.size(); ++i) w.u64(store_order_[i]);
  exec_events_.saveState(w);
  lq_.saveState(w);
  w.u64(stats_.cycles);
  w.u64(stats_.instructions);
  for (const auto field : kCoreScaledCounterFields) w.u64(stats_.*field);
}

// lint:allow(ckpt-symmetry: readBounded() consumes exactly the one u64 length saveState writes inline for each ready ring — lexically unpairable, runtime matrix pins the identity)
void CoreModel::loadState(ckpt::StateReader& r) {
  head_seq_ = r.u64();
  const std::uint64_t rob_n = r.u64();
  MALEC_CHECK_MSG(rob_n <= rob_slots_.size(),
                  "ROB checkpoint exceeds this capacity");
  rob_head_ = 0;
  rob_size_ = static_cast<std::size_t>(rob_n);
  for (std::uint64_t i = 0; i < rob_n; ++i) {
    RobEntry& e = rob_slots_[i];
    loadRecord(r, e.instr);
    e.pending_deps = r.u8();
    const std::uint8_t f = r.u8();
    e.agu_done = (f & 1) != 0;
    e.completed = (f & 2) != 0;
    e.deps.clear();
  }
  trace_done_ = r.u8() != 0;
  now_ = r.u64();
  run_base_ = r.u64();
  has_staged_ = r.u8() != 0;
  if (has_staged_) loadRecord(r, staged_);
  const std::uint64_t producers = r.u64();
  for (std::uint64_t i = 0; i < producers; ++i) {
    const SeqNum seq = r.u64();
    MALEC_CHECK_MSG(inRob(seq), "dependency producer outside the ROB");
    std::vector<SeqNum>& deps = entry(seq).deps;
    deps.resize(static_cast<std::size_t>(r.u64()));
    for (SeqNum& d : deps) d = r.u64();
  }
  ready_exec_.clear();
  for (std::uint64_t i = 0, n = readBounded(r, ready_exec_); i < n; ++i)
    ready_exec_.push_back(r.u64());
  ready_loads_.clear();
  for (std::uint64_t i = 0, n = readBounded(r, ready_loads_); i < n; ++i)
    ready_loads_.push_back(r.u64());
  store_order_.clear();
  for (std::uint64_t i = 0, n = readBounded(r, store_order_); i < n; ++i)
    store_order_.push_back(r.u64());
  exec_events_.loadState(r);
  lq_.loadState(r);
  stats_.cycles = r.u64();
  stats_.instructions = r.u64();
  for (const auto field : kCoreScaledCounterFields) stats_.*field = r.u64();
  ckpt_next_ = stats_.instructions + ckpt_every_;
  resumed_ = true;
}

void CoreModel::dispatchRecord(const trace::InstrRecord& r) {
  MALEC_DCHECK(rob_size_ < rob_slots_.size());
  std::size_t tail = rob_head_ + rob_size_;
  if (tail >= rob_slots_.size()) tail -= rob_slots_.size();
  RobEntry& e = rob_slots_[tail];
  e.instr = r;
  e.pending_deps = 0;
  e.agu_done = false;
  e.completed = false;
  e.deps.clear();  // recycled slot: drop stale list, keep its capacity
  ++rob_size_;
  if (r.isLoad()) {
    lq_.allocate(r.seq);
    ++stats_.loads;
  } else if (r.isStore()) {
    ++stats_.stores;
  }

  // Register dependencies: data input and (for memory ops) address input.
  auto addDep = [&](std::uint32_t distance) {
    if (distance == 0 || distance > r.seq) return;
    const SeqNum target = r.seq - distance;
    if (!inRob(target)) return;           // producer already retired
    RobEntry& t = entry(target);
    if (t.completed) return;              // producer done
    // lint:allow(hot-alloc: dep lists keep their capacity when ROB slots recycle)
    t.deps.push_back(r.seq);
    ++e.pending_deps;
  };
  addDep(r.dep_distance);
  if (r.isMem() && r.addr_dep_distance != r.dep_distance)
    addDep(r.addr_dep_distance);

  // lint:allow(hot-alloc: FixedRing::push_back writes into a preallocated slab — no allocation)
  if (r.isStore()) store_order_.push_back(r.seq);
  if (e.pending_deps == 0) enqueueReady(r.seq);
}

}  // namespace malec::cpu
