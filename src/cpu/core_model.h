// Out-of-order superscalar core model (paper Table II: 168-entry ROB,
// 6-wide fetch/dispatch, 8-wide issue, 6-wide commit, 40-entry LQ).
//
// This is the gem5-O3-equivalent timing substrate: instructions stream in
// from a TraceSource, dispatch into the ROB, execute when their register
// dependencies resolve (event-driven wakeup, no per-cycle ROB scans),
// compute memory addresses on a configurable set of address-computation
// units (Table I) and retire in order. Loads complete when the memory
// interface delivers their data; stores retire once buffered and write the
// cache after commit through the SB/MB path inside the interface.
//
// Branch prediction and fetch effects are abstracted away: the performance
// differences the paper studies come from memory-port structure, load
// latency and dependency-limited ILP, which this model captures.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/fixed_ring.h"
#include "common/types.h"
#include "core/event_queue.h"
#include "core/interface_config.h"
#include "core/mem_interface.h"
#include "lsq/load_queue.h"
#include "trace/record.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::cpu {

struct CoreStats {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t dispatch_stall_cycles = 0;
  std::uint64_t agu_stall_events = 0;
  std::uint64_t lq_stall_cycles = 0;
  std::uint64_t rob_full_cycles = 0;

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
};

/// The CoreStats counters that scale linearly with the instruction window
/// — what sampled replay folds with phase weights (cycles/instructions
/// are derived separately by the combination). A new counter MUST be
/// added here too — a static_assert in core_model.cpp pins the listing
/// against sizeof(CoreStats), so a field added to one but not the other
/// fails the build instead of silently reporting 0 in sampled runs.
inline constexpr std::uint64_t CoreStats::*kCoreScaledCounterFields[] = {
    &CoreStats::loads,
    &CoreStats::stores,
    &CoreStats::dispatch_stall_cycles,
    &CoreStats::agu_stall_events,
    &CoreStats::lq_stall_cycles,
    &CoreStats::rob_full_cycles,
};

class CoreModel {
 public:
  CoreModel(const core::SystemConfig& sys, const core::InterfaceConfig& ifc,
            trace::TraceSource& src, core::MemInterface& mem);

  /// Run until the trace is exhausted and the pipeline drains.
  /// `max_cycles` (0 = unlimited) is a safety bound. `start_cycle` sets the
  /// clock the first cycle runs at — segment replays over a shared memory
  /// interface must continue its timeline, not restart it: the interface
  /// keeps absolute-cycle state (miss ready times, port busy windows), and
  /// a clock jumping back to 0 would stall a fresh segment behind stale
  /// "busy until" timestamps. Reported cycles stay relative to the start.
  CoreStats run(Cycle max_cycles = 0, Cycle start_cycle = 0);

  /// Invoke `cb` at the first end-of-cycle boundary at which at least
  /// `every` further instructions have retired (then re-arm `every`
  /// later, and so on). The callback runs at a consistent instruction
  /// boundary — commit done, interface cycle finished — which is where
  /// the run layer snapshots the full simulation state. The hook never
  /// fires on the run's final cycle: a checkpoint is only taken where
  /// continuing is possible, so a resumed run re-enters the cycle loop
  /// exactly like the uninterrupted run did.
  void setCheckpointHook(std::uint64_t every, std::function<void()> cb);

  /// Checkpoint/restore of the whole pipeline: ROB, staging slot, ready
  /// queues, store order, dependency graph, in-flight execution events,
  /// LQ occupancy, clock and statistics. After loadState, the next run()
  /// call continues the restored cycle (its start_cycle argument is
  /// ignored) — bit-identical to the run that never stopped.
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct RobEntry {
    trace::InstrRecord instr;
    std::uint8_t pending_deps = 0;
    bool agu_done = false;   ///< mem op handed to the interface
    bool completed = false;  ///< result available / retire-eligible
    /// Wakeup list of this producer's dependents. Non-empty only while
    /// !completed (markCompleted drains and clears it); the vector keeps
    /// its capacity across slot reuse, so the steady state allocates
    /// nothing. Replaces the old seq-keyed unordered_map side table.
    std::vector<SeqNum> deps;
  };

  [[nodiscard]] bool inRob(SeqNum seq) const;
  [[nodiscard]] RobEntry& entry(SeqNum seq);
  /// ROB entry by logical position: 0 = oldest (head) — ascending seq.
  [[nodiscard]] const RobEntry& slot(std::size_t logical) const;
  void markCompleted(SeqNum seq);
  void enqueueReady(SeqNum seq);
  void doCommit();
  void doExecute();
  void doAgu();
  void doDispatch();
  void dispatchRecord(const trace::InstrRecord& r);

  core::SystemConfig sys_;  // lint:no-state(config; restore binds by fingerprint)
  core::InterfaceConfig ifc_cfg_;  // lint:no-state(config)
  trace::TraceSource& src_;  // lint:no-state(wiring ref; checkpoints itself)
  core::MemInterface& mem_;  // lint:no-state(wiring ref; checkpoints itself)
  lsq::LoadQueue lq_;

  /// Arena-allocated ROB: a fixed slab of sys_.rob_entries slots used as a
  /// ring. In-flight seqs are consecutive [head_seq_, head_seq_ + rob_size_),
  /// so a seq maps straight to its slot — no per-instruction allocation, no
  /// hashing. Slots are recycled in place (their deps vectors keep their
  /// capacity).
  // lint:no-state(serialized via slot() in logical head-first order)
  std::vector<RobEntry> rob_slots_;
  /// Physical slot of the oldest entry.
  std::size_t rob_head_ = 0;  // lint:no-state(physical origin; checkpoints store logical order, loadState resets it to 0)
  std::size_t rob_size_ = 0;
  SeqNum head_seq_ = 0;  ///< seq of the oldest ROB entry
  bool trace_done_ = false;
  Cycle now_ = 0;
  /// Clock value the (original) run started at — reported cycles and the
  /// max_cycles bound stay relative to it across checkpoint/resume.
  Cycle run_base_ = 0;
  /// Set by loadState: the next run() continues the restored timeline
  /// instead of resetting the clock to its start_cycle argument.
  bool resumed_ = false;  // lint:no-state(restore-side flag set by loadState)
  std::uint64_t ckpt_every_ = 0;  // lint:no-state(hook re-armed by run layer)
  std::uint64_t ckpt_next_ = 0;   // lint:no-state(hook re-armed by run layer)
  std::function<void()> ckpt_cb_;  // lint:no-state(callback re-armed by run layer)
  /// One-slot staging area for a record pulled from the trace that could
  /// not dispatch (LQ full) — re-tried first next cycle.
  trace::InstrRecord staged_{};
  bool has_staged_ = false;

  // Ready/ordering queues are bounded by the ROB (an instruction is queued
  // at most once and leaves the queue no later than it leaves the ROB), so
  // fixed rings sized to the ROB replace the deques.
  common::FixedRing<SeqNum> ready_exec_;   ///< non-mem, deps resolved
  common::FixedRing<SeqNum> ready_loads_;  ///< loads, deps resolved
  common::FixedRing<SeqNum> store_order_;  ///< stores in program order
  core::EventQueue exec_events_;           ///< (ready cycle, seq) wakeups
  std::vector<SeqNum> completion_buf_;  // lint:no-state(per-cycle scratch)

  CoreStats stats_;
};

}  // namespace malec::cpu
