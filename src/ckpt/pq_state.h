// Checkpoint helpers for the (cycle, seq) priority queues the simulator
// uses for completion events. std::priority_queue hides its container, so
// save drains a copy in pop order and load re-pushes element by element.
// That round trip is exact for these queues: every (cycle, seq) pair is
// unique (a sequence number completes at most once), so pop order is a
// total order and independent of the heap's internal array layout.
#pragma once

#include <cstdint>

#include "ckpt/state_io.h"

namespace malec::ckpt {

template <class PQ>
void savePairQueue(StateWriter& w, const PQ& pq) {
  PQ copy = pq;
  w.u64(copy.size());
  while (!copy.empty()) {
    w.u64(copy.top().first);
    w.u64(copy.top().second);
    copy.pop();
  }
}

template <class PQ>
void loadPairQueue(StateReader& r, PQ& pq) {
  pq = PQ();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t first = r.u64();
    const std::uint64_t second = r.u64();
    pq.emplace(first, second);
  }
}

}  // namespace malec::ckpt
