// Checkpoint state I/O: the `.mckpt` v1 container every component
// serializes itself into.
//
// A checkpoint is a full-state snapshot of one running simulation — core,
// interface, caches, TLBs, way tables, energy counters, RNGs and the trace
// position — taken at an instruction boundary so a restored run continues
// bit-identically to the run that never stopped. The byte-level format
// (header, section table, FNV-1a checksum, compatibility rules) is
// specified in docs/FILE_FORMATS.md; like `.mtrace` and `.mplan` it is
// strict: magic, version, size-vs-header and checksum mismatches are hard
// errors at open, never a silently partial restore.
//
// The container is a flat sequence of named sections. StateWriter builds
// the payload in memory (beginSection/endSection around each component's
// saveState) and writes the file atomically (temp + rename) on writeTo().
// StateReader validates the whole file at construction and then serves
// sections by name; reading past a section's end or leaving a section
// half-consumed aborts — a save/load order mismatch must fail loudly at
// the exact field, not desynchronise every field after it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace malec::ckpt {

/// Magic bytes + version identifying a MALEC checkpoint file ("MCKP").
inline constexpr std::uint32_t kCkptMagic = 0x4D434B50;
inline constexpr std::uint32_t kCkptVersion = 1;

class StateWriter {
 public:
  /// The container is shared by every StateIO-style MALEC format; `magic`
  /// and `version` select which one this writer produces (default:
  /// `.mckpt`). Other formats — e.g. the `.mstore` result store — pass
  /// their own magic so their files never masquerade as checkpoints.
  explicit StateWriter(std::uint32_t magic = kCkptMagic,
                       std::uint32_t version = kCkptVersion)
      : magic_(magic), version_(version) {}

  /// Open a named section. Sections must not nest and names must be
  /// unique within one checkpoint.
  void beginSection(const std::string& name);
  void endSection();

  // --- primitive appends (little-endian, fixed width) -----------------------
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Doubles travel as their IEEE-754 bit pattern — bit-exact restore.
  void f64(double v);
  void str(const std::string& s);
  void bytes(const std::uint8_t* p, std::size_t n);

  /// Finalize and write the checkpoint to `path` via a temp file + rename,
  /// so a concurrently restoring reader never sees a half-written file.
  /// Returns false with a message in `err` on I/O failure.
  [[nodiscard]] bool writeTo(const std::string& path, std::string& err) const;

  [[nodiscard]] std::size_t sectionCount() const { return sections_; }

 private:
  std::uint32_t magic_;
  std::uint32_t version_;
  std::vector<std::uint8_t> payload_;
  std::vector<std::string> names_;  ///< for the uniqueness check
  std::size_t sections_ = 0;
  /// Offset of the open section's body-length field; npos-like sentinel
  /// when no section is open.
  std::size_t open_len_at_ = kNone;
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

class StateReader {
 public:
  /// Opens and fully validates `path`: magic, version, file size against
  /// the header's payload length, payload checksum, section-table sanity.
  /// Failures are reported via ok()/error() — callers decide whether a bad
  /// checkpoint aborts (the run layer) or is merely absent (cache probes).
  /// `magic`/`version` select the expected StateIO format (default
  /// `.mckpt`); `kind` is the noun error messages use for it.
  explicit StateReader(const std::string& path,
                       std::uint32_t magic = kCkptMagic,
                       std::uint32_t version = kCkptVersion,
                       const char* kind = "checkpoint");

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  [[nodiscard]] bool hasSection(const std::string& name) const;
  /// Position the cursor at the start of section `name`; aborts when the
  /// section is absent (a checkpoint missing a component IS corruption).
  void openSection(const std::string& name);
  /// Assert the open section was consumed exactly; aborts otherwise.
  void endSection();

  // --- primitive reads (abort past the open section's end) ------------------
  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  void bytes(std::uint8_t* p, std::size_t n);

 private:
  struct Section {
    std::string name;
    std::size_t offset = 0;  ///< body start within payload_
    std::size_t size = 0;
  };

  void need(std::size_t n);  ///< abort unless n bytes remain in the section

  bool ok_ = false;
  std::string error_;
  std::string path_;
  std::string kind_;
  std::vector<std::uint8_t> payload_;
  std::vector<Section> sections_;
  std::size_t cur_ = 0;      ///< read cursor within payload_
  std::size_t cur_end_ = 0;  ///< open section's end
  bool section_open_ = false;
};

}  // namespace malec::ckpt
