#include "ckpt/state_io.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/binio.h"
#include "common/check.h"

namespace malec::ckpt {

using binio::get32;
using binio::get64;
using binio::put32;
using binio::put64;

namespace {

/// Header: magic, version, payload byte count, section count, reserved,
/// payload checksum — 32 bytes (see docs/FILE_FORMATS.md).
constexpr std::size_t kHeaderBytes = 32;

std::uint64_t checksum(const std::uint8_t* p, std::size_t n) {
  return binio::fnv1a(binio::kFnvOffset, p, n);
}

/// Reap temp files a crashed (or SIGKILLed) writer left next to `path`:
/// anything matching `<basename>.tmp.<pid>.<serial>` whose pid no longer
/// exists. A temp belonging to a LIVE process is another writer mid-write
/// of the same checkpoint — racing but healthy — and must be left alone;
/// its atomic rename will win or lose on its own. Cleanup failures are
/// deliberately silent: stale temps waste disk, they never corrupt.
void removeStaleTemps(const std::string& path) {
  const std::filesystem::path target(path);
  const std::string prefix = target.filename().string() + ".tmp.";
  std::filesystem::path dir = target.parent_path();
  if (dir.empty()) dir = ".";
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    const char* rest = name.c_str() + prefix.size();
    char* end = nullptr;
    errno = 0;
    // Scanning arbitrary directory entries: a non-numeric name means
    // "not one of our temps, skip" — never an error, so strict parsing
    // (which aborts) is the wrong tool here.
    // lint:allow(strict-parse: non-numeric filename means skip, not abort)
    const long pid = std::strtol(rest, &end, 10);
    if (errno != 0 || end == rest || *end != '.' || pid <= 0) continue;
    // Signal 0 probes existence without sending anything. EPERM means the
    // pid exists but belongs to someone else — also alive, keep the file.
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) continue;
    std::filesystem::remove(entry.path(), ec);
  }
}

}  // namespace

// --- StateWriter ------------------------------------------------------------

void StateWriter::beginSection(const std::string& name) {
  MALEC_CHECK_MSG(open_len_at_ == kNone,
                  "checkpoint sections must not nest");
  MALEC_CHECK_MSG(!name.empty(), "checkpoint section needs a name");
  for (const std::string& n : names_) {
    if (n == name) {
      const std::string msg = "duplicate checkpoint section '" + name + "'";
      MALEC_CHECK_MSG(false, msg.c_str());
    }
  }
  names_.push_back(name);
  // Inline section header: u32 name length, name bytes, u64 body length
  // (patched in endSection), body bytes.
  const std::size_t at = payload_.size();
  payload_.resize(at + 4 + name.size() + 8);
  put32(payload_.data() + at, static_cast<std::uint32_t>(name.size()));
  std::copy(name.begin(), name.end(), payload_.begin() + at + 4);
  open_len_at_ = at + 4 + name.size();
  ++sections_;
}

void StateWriter::endSection() {
  MALEC_CHECK_MSG(open_len_at_ != kNone, "no checkpoint section is open");
  const std::size_t body = payload_.size() - (open_len_at_ + 8);
  put64(payload_.data() + open_len_at_, static_cast<std::uint64_t>(body));
  open_len_at_ = kNone;
}

void StateWriter::u8(std::uint8_t v) {
  MALEC_CHECK_MSG(open_len_at_ != kNone, "write outside a checkpoint section");
  payload_.push_back(v);
}

void StateWriter::u32(std::uint32_t v) {
  MALEC_CHECK_MSG(open_len_at_ != kNone, "write outside a checkpoint section");
  const std::size_t at = payload_.size();
  payload_.resize(at + 4);
  put32(payload_.data() + at, v);
}

void StateWriter::u64(std::uint64_t v) {
  MALEC_CHECK_MSG(open_len_at_ != kNone, "write outside a checkpoint section");
  const std::size_t at = payload_.size();
  payload_.resize(at + 8);
  put64(payload_.data() + at, v);
}

void StateWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v, "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void StateWriter::str(const std::string& s) {
  u64(s.size());
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void StateWriter::bytes(const std::uint8_t* p, std::size_t n) {
  MALEC_CHECK_MSG(open_len_at_ != kNone, "write outside a checkpoint section");
  payload_.insert(payload_.end(), p, p + n);
}

bool StateWriter::writeTo(const std::string& path, std::string& err) const {
  MALEC_CHECK_MSG(open_len_at_ == kNone,
                  "cannot write a checkpoint with an open section");
  std::uint8_t hdr[kHeaderBytes] = {};
  put32(hdr + 0, magic_);
  put32(hdr + 4, version_);
  put64(hdr + 8, static_cast<std::uint64_t>(payload_.size()));
  put32(hdr + 16, static_cast<std::uint32_t>(sections_));
  put32(hdr + 20, 0);  // reserved
  put64(hdr + 24, checksum(payload_.data(), payload_.size()));

  // Temp + rename: a reader (possibly in another process of a parallel
  // sweep) must only ever see a complete checkpoint under `path`. The temp
  // name is unique per writer — with a shared name, two racing writers of
  // the same checkpoint (e.g. parallel first-runs populating one warmup
  // cache) would interleave writes into one inode and expose a torn file
  // under `path`; with unique temps the last atomic rename simply wins.
  // A worker SIGKILLed mid-write (sweep supervision does exactly that on
  // timeouts) leaves its unique temp behind forever — sweep one up per
  // write so checkpoint directories do not accumulate dead `.tmp.*` files.
  removeStaleTemps(path);
  static std::atomic<std::uint64_t> temp_serial{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(temp_serial.fetch_add(1, std::memory_order_relaxed));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    err = "cannot open '" + tmp + "' for writing";
    return false;
  }
  // Flush AND fsync before the rename replaces the previous checkpoint:
  // this is a crash-recovery feature, so a power loss right after the
  // rename must not leave the only checkpoint as unflushed page cache —
  // the old file is only given up once the new bytes are durable.
  const bool wrote =
      std::fwrite(hdr, 1, sizeof hdr, f) == sizeof hdr &&
      std::fwrite(payload_.data(), 1, payload_.size(), f) == payload_.size() &&
      std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    err = "short write to '" + tmp + "'";
    std::remove(tmp.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    err = "cannot rename '" + tmp + "' to '" + path + "': " + ec.message();
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// --- StateReader ------------------------------------------------------------

StateReader::StateReader(const std::string& path, std::uint32_t magic,
                         std::uint32_t expect_version, const char* kind)
    : path_(path), kind_(kind) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error_ = "cannot open '" + path + "'";
    return;
  }
  std::uint8_t hdr[kHeaderBytes];
  if (std::fread(hdr, 1, sizeof hdr, f) != sizeof hdr) {
    std::fclose(f);
    error_ = "'" + path + "' is too short to hold a " + kind_ + " header";
    return;
  }
  if (get32(hdr + 0) != magic) {
    std::fclose(f);
    error_ = "'" + path + "' is not a MALEC " + kind_ + " (bad magic)";
    return;
  }
  const std::uint32_t version = get32(hdr + 4);
  if (version != expect_version) {
    std::fclose(f);
    error_ = "'" + path + "' has unsupported " + kind_ + " version " +
             std::to_string(version);
    return;
  }
  const std::uint64_t payload_bytes = get64(hdr + 8);
  const std::uint32_t sections = get32(hdr + 16);
  const std::uint64_t expect_sum = get64(hdr + 24);

  // File size must match the header's payload length exactly — truncated
  // or appended-to checkpoints are hard errors, like every MALEC format.
  std::error_code ec;
  const std::uintmax_t fs_size = std::filesystem::file_size(path, ec);
  if (ec) {
    std::fclose(f);
    error_ = "cannot stat '" + path + "': " + ec.message();
    return;
  }
  if (static_cast<std::uint64_t>(fs_size) != kHeaderBytes + payload_bytes) {
    std::fclose(f);
    error_ = "'" + path + "' is truncated or corrupt: header promises " +
             std::to_string(kHeaderBytes + payload_bytes) +
             " bytes but the file holds " + std::to_string(fs_size) +
             " bytes";
    return;
  }

  payload_.resize(static_cast<std::size_t>(payload_bytes));
  const bool read_ok =
      std::fread(payload_.data(), 1, payload_.size(), f) == payload_.size();
  std::fclose(f);
  if (!read_ok) {
    error_ = "short read from '" + path + "'";
    return;
  }
  if (checksum(payload_.data(), payload_.size()) != expect_sum) {
    error_ = "'" + path + "': state checksum mismatch — the " + kind_ +
             " is corrupt";
    return;
  }

  // Scan the section table; every structural inconsistency that survived
  // the checksum (i.e. a buggy producer) still fails here.
  std::size_t at = 0;
  for (std::uint32_t s = 0; s < sections; ++s) {
    if (payload_.size() - at < 4) {
      error_ = "'" + path + "': section table overruns the payload";
      return;
    }
    const std::uint32_t name_len = get32(payload_.data() + at);
    at += 4;
    // Compare in u64: a crafted name length near 2^32 must not wrap the
    // bound check (size_t may be 32-bit) and drive name.assign() past the
    // payload buffer.
    if (static_cast<std::uint64_t>(payload_.size() - at) <
        static_cast<std::uint64_t>(name_len) + 8) {
      error_ = "'" + path + "': section table overruns the payload";
      return;
    }
    Section sec;
    sec.name.assign(reinterpret_cast<const char*>(payload_.data() + at),
                    name_len);
    at += name_len;
    const std::uint64_t body = get64(payload_.data() + at);
    at += 8;
    if (payload_.size() - at < body) {
      error_ = "'" + path + "': section '" + sec.name +
               "' overruns the payload";
      return;
    }
    sec.offset = at;
    sec.size = static_cast<std::size_t>(body);
    at += sec.size;
    sections_.push_back(std::move(sec));
  }
  if (at != payload_.size()) {
    error_ = "'" + path + "': trailing bytes after the last section";
    return;
  }
  ok_ = true;
}

bool StateReader::hasSection(const std::string& name) const {
  for (const Section& s : sections_)
    if (s.name == name) return true;
  return false;
}

void StateReader::openSection(const std::string& name) {
  MALEC_CHECK_MSG(ok_, "cannot read sections of a failed checkpoint");
  MALEC_CHECK_MSG(!section_open_,
                  "previous checkpoint section was not closed");
  for (const Section& s : sections_) {
    if (s.name != name) continue;
    cur_ = s.offset;
    cur_end_ = s.offset + s.size;
    section_open_ = true;
    return;
  }
  const std::string msg = kind_ + " '" + path_ + "' has no section '" +
                          name + "' — it was written by an incompatible or "
                          "differently-configured run";
  MALEC_CHECK_MSG(false, msg.c_str());
}

void StateReader::endSection() {
  MALEC_CHECK_MSG(section_open_, "no checkpoint section is open");
  if (cur_ != cur_end_) {
    const std::string msg =
        kind_ + " '" + path_ + "': " + std::to_string(cur_end_ - cur_) +
        " unconsumed bytes at section end — save/load order mismatch";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
  section_open_ = false;
}

void StateReader::need(std::size_t n) {
  MALEC_CHECK_MSG(section_open_, "read outside a checkpoint section");
  if (cur_end_ - cur_ < n) {
    const std::string msg = kind_ + " '" + path_ +
                            "': read past a section end — save/load order "
                            "mismatch";
    MALEC_CHECK_MSG(false, msg.c_str());
  }
}

std::uint8_t StateReader::u8() {
  need(1);
  return payload_[cur_++];
}

std::uint32_t StateReader::u32() {
  need(4);
  const std::uint32_t v = get32(payload_.data() + cur_);
  cur_ += 4;
  return v;
}

std::uint64_t StateReader::u64() {
  need(8);
  const std::uint64_t v = get64(payload_.data() + cur_);
  cur_ += 8;
  return v;
}

double StateReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string StateReader::str() {
  const std::uint64_t n = u64();
  need(static_cast<std::size_t>(n));
  std::string s(reinterpret_cast<const char*>(payload_.data() + cur_),
                static_cast<std::size_t>(n));
  cur_ += static_cast<std::size_t>(n);
  return s;
}

void StateReader::bytes(std::uint8_t* p, std::size_t n) {
  need(n);
  std::copy(payload_.begin() + static_cast<std::ptrdiff_t>(cur_),
            payload_.begin() + static_cast<std::ptrdiff_t>(cur_ + n), p);
  cur_ += n;
}

}  // namespace malec::ckpt
