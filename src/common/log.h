// Minimal leveled logging. Simulation-scale runs keep this at Warn; unit
// tests and examples may raise verbosity for tracing individual accesses.
#pragma once

#include <string>

namespace malec {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold (default Warn).
void setLogLevel(LogLevel level);
[[nodiscard]] LogLevel logLevel();

/// printf-style logging gated on the global level.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace malec

#define MALEC_LOG_DEBUG(...) ::malec::logf(::malec::LogLevel::Debug, __VA_ARGS__)
#define MALEC_LOG_INFO(...) ::malec::logf(::malec::LogLevel::Info, __VA_ARGS__)
#define MALEC_LOG_WARN(...) ::malec::logf(::malec::LogLevel::Warn, __VA_ARGS__)
#define MALEC_LOG_ERROR(...) ::malec::logf(::malec::LogLevel::Error, __VA_ARGS__)
