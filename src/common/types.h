// Fundamental scalar types shared by every MALEC library.
#pragma once

#include <cstdint>

namespace malec {

/// Byte address. The modelled machine uses a 32-bit virtual and physical
/// address space (paper Table II), but we carry addresses in 64 bits so that
/// arithmetic never silently wraps.
using Addr = std::uint64_t;

/// Simulation time measured in core clock cycles (1 GHz in the paper).
using Cycle = std::uint64_t;

/// Identifier of a 4 KByte page (address >> 12). 20 significant bits.
using PageId = std::uint32_t;

/// Line-granular address (address >> 6 for 64-byte lines).
using LineAddr = std::uint64_t;

/// Monotonically increasing per-instruction sequence number.
using SeqNum = std::uint64_t;

/// Cache way index. kWayUnknown denotes "no way information".
using WayIdx = std::int8_t;
inline constexpr WayIdx kWayUnknown = -1;

/// Cache bank index.
using BankIdx = std::uint8_t;

}  // namespace malec
