#include "common/log.h"

#include <cstdarg>
#include <cstdio>

namespace malec {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = level; }

LogLevel logLevel() { return g_level; }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] ", levelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace malec
