#include "common/address.h"

namespace malec {

std::uint32_t log2Exact(std::uint64_t v) {
  MALEC_CHECK_MSG(isPow2(v), "value must be a non-zero power of two");
  std::uint32_t b = 0;
  while ((v >> b) != 1) ++b;
  return b;
}

AddressLayout::AddressLayout(const Params& p) : p_(p) {
  MALEC_CHECK(isPow2(p.page_bytes));
  MALEC_CHECK(isPow2(p.line_bytes));
  MALEC_CHECK(isPow2(p.sub_block_bytes));
  MALEC_CHECK(isPow2(p.l1_bytes));
  MALEC_CHECK(isPow2(p.l1_assoc));
  MALEC_CHECK(isPow2(p.l1_banks));
  MALEC_CHECK(p.line_bytes < p.page_bytes);
  MALEC_CHECK(p.sub_block_bytes <= p.line_bytes);
  MALEC_CHECK(p.addr_bits >= 20 && p.addr_bits <= 48);

  page_offset_bits_ = log2Exact(p.page_bytes);
  line_offset_bits_ = log2Exact(p.line_bytes);
  sub_block_bits_ = log2Exact(p.sub_block_bytes);
  lines_per_page_ = p.page_bytes / p.line_bytes;
  sub_blocks_per_line_ = p.line_bytes / p.sub_block_bytes;

  const std::uint32_t total_lines = p.l1_bytes / p.line_bytes;
  MALEC_CHECK_MSG(total_lines % p.l1_assoc == 0,
                  "L1 capacity must divide evenly into ways");
  l1_sets_ = total_lines / p.l1_assoc;
  MALEC_CHECK(isPow2(l1_sets_));
  MALEC_CHECK_MSG(l1_sets_ % p.l1_banks == 0,
                  "sets must divide evenly across banks");
  l1_sets_per_bank_ = l1_sets_ / p.l1_banks;
  bank_bits_ = log2Exact(p.l1_banks);
  set_bits_ = log2Exact(l1_sets_);
}

}  // namespace malec
