// Fixed-capacity ring buffer for per-cycle hot-path queues.
//
// The core pipeline's FIFO state (ready queues, store order, load queue,
// ROB) is bounded by structural limits that never change after
// construction, so a flat ring over a pre-sized vector replaces deque /
// node-based containers: zero steady-state allocation, contiguous scans,
// and logical indexing in push order for serialization. Capacity is NOT
// required to be a power of two — wrap uses a compare instead of a mask.
//
// FixedRing deliberately has no saveState/loadState: owners serialize its
// contents inline (count + elements in logical order) so the checkpoint
// bytes stay identical to the deque-based layouts it replaced.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace malec::common {

template <class T>
class FixedRing {
 public:
  explicit FixedRing(std::size_t capacity = 0) { reset(capacity); }

  /// Drop all contents and (re)bind the capacity.
  void reset(std::size_t capacity) {
    buf_.assign(capacity, T{});
    head_ = 0;
    size_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == buf_.size(); }

  void push_back(const T& v) {
    MALEC_DCHECK(!full());
    buf_[physical(size_)] = v;
    ++size_;
  }

  [[nodiscard]] T& front() {
    MALEC_DCHECK(!empty());
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    MALEC_DCHECK(!empty());
    return buf_[head_];
  }

  void pop_front() {
    MALEC_DCHECK(!empty());
    ++head_;
    if (head_ == buf_.size()) head_ = 0;
    --size_;
  }

  /// Logical indexing: [0] is the oldest element (push order).
  [[nodiscard]] T& operator[](std::size_t i) {
    MALEC_DCHECK(i < size_);
    return buf_[physical(i)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    MALEC_DCHECK(i < size_);
    return buf_[physical(i)];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t physical(std::size_t i) const {
    std::size_t p = head_ + i;
    if (p >= buf_.size()) p -= buf_.size();
    return p;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace malec::common
