// Statistics collection: named counters and histograms.
//
// Each simulator component owns its counters directly (plain std::uint64_t
// members) for speed; StatSet is the reporting layer that snapshots them into
// a name->value map for tables, CSV emission and test assertions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace malec {

/// A bucketed histogram with fixed integer bucket edges.
/// Used e.g. for the Fig. 1 consecutive-same-page-access distribution.
class Histogram {
 public:
  /// `edges` are inclusive upper bounds of each bucket; a final overflow
  /// bucket catches everything above the last edge.
  explicit Histogram(std::vector<std::uint64_t> edges);

  void add(std::uint64_t value, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Fraction of total weight in `bucket` (0 if empty histogram).
  [[nodiscard]] double fraction(std::size_t bucket) const;
  /// Fraction of weight in buckets >= `bucket`.
  [[nodiscard]] double fractionAtLeast(std::size_t bucket) const;
  [[nodiscard]] const std::vector<std::uint64_t>& edges() const {
    return edges_;
  }
  void clear();

 private:
  std::vector<std::uint64_t> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Flat snapshot of named statistics. Values are doubles so that both counts
/// and derived ratios/energies fit.
class StatSet {
 public:
  void set(const std::string& name, double value);
  void add(const std::string& name, double delta);
  [[nodiscard]] double get(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, double>& all() const {
    return values_;
  }
  /// Merge another set into this one, prefixing its names.
  void merge(const StatSet& other, const std::string& prefix);
  /// Render as an aligned two-column text table.
  [[nodiscard]] std::string toTable() const;

 private:
  std::map<std::string, double> values_;
};

}  // namespace malec
