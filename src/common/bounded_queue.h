// Fixed-capacity FIFO used for hardware-like buffers (Input Buffer slots,
// last-entry FIFO, MSHR lists). Capacity is a construction-time parameter so
// the sensitivity benches can sweep structure sizes.
#pragma once

#include <cstddef>
#include <deque>

#include "common/check.h"

namespace malec {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    MALEC_CHECK(capacity > 0);
  }

  [[nodiscard]] bool full() const { return q_.size() >= capacity_; }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t freeSlots() const { return capacity_ - q_.size(); }

  /// Push to the back; returns false (and drops nothing) when full.
  bool tryPush(T v) {
    if (full()) return false;
    q_.push_back(std::move(v));
    return true;
  }

  /// Push that asserts there is room (for callers that checked full()).
  void push(T v) {
    MALEC_CHECK_MSG(!full(), "BoundedQueue overflow");
    q_.push_back(std::move(v));
  }

  [[nodiscard]] T& front() {
    MALEC_CHECK(!empty());
    return q_.front();
  }
  [[nodiscard]] const T& front() const {
    MALEC_CHECK(!empty());
    return q_.front();
  }

  T pop() {
    MALEC_CHECK(!empty());
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }

  /// Indexed access front==0 (needed by priority scans over buffer slots).
  [[nodiscard]] T& at(std::size_t i) {
    MALEC_CHECK(i < q_.size());
    return q_[i];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    MALEC_CHECK(i < q_.size());
    return q_[i];
  }

  /// Remove element at index i (front==0), preserving order.
  void erase(std::size_t i) {
    MALEC_CHECK(i < q_.size());
    q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  void clear() { q_.clear(); }

  auto begin() { return q_.begin(); }
  auto end() { return q_.end(); }
  auto begin() const { return q_.begin(); }
  auto end() const { return q_.end(); }

 private:
  std::size_t capacity_;
  std::deque<T> q_;
};

}  // namespace malec
