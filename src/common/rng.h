// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator (trace generators, random
// replacement, page-table hashing) draws from a seeded Xorshift64* stream so
// that all experiments are bit-reproducible across runs and platforms.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace malec {

/// Xorshift64* generator. Small, fast, and plenty good enough for workload
/// synthesis; NOT for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t below(std::uint64_t bound) {
    MALEC_DCHECK(bound > 0);
    // Modulo bias is negligible for the bounds used here (all << 2^64).
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Geometric-ish draw: number of successes before failure, capped.
  std::uint32_t geometric(double p_continue, std::uint32_t cap) {
    std::uint32_t n = 0;
    while (n < cap && chance(p_continue)) ++n;
    return n;
  }

  /// Derive an independent stream (for per-component seeding).
  [[nodiscard]] Rng split(std::uint64_t salt) const {
    return Rng(state_ ^ (salt * 0xBF58476D1CE4E5B9ull) ^ 0x94D049BB133111EBull);
  }

  /// Raw generator state, for checkpoint/restore: setState(state()) makes
  /// another Rng continue this one's stream exactly.
  [[nodiscard]] std::uint64_t state() const { return state_; }
  void setState(std::uint64_t s) {
    MALEC_DCHECK(s != 0);  // xorshift64* has no zero state
    state_ = s;
  }

 private:
  std::uint64_t state_;
};

}  // namespace malec
