// Little-endian byte codec and FNV-1a checksum shared by every on-disk
// format (trace v2, sample plans — see docs/FILE_FORMATS.md). One
// definition keeps the formats' byte order and checksum function in
// lockstep: .mplan binding validation cross-references the trace v2
// checksum, so the two files must never diverge on either.
#pragma once

#include <cstddef>
#include <cstdint>

namespace malec::binio {

inline void put64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline void put32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline std::uint64_t get64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}
inline std::uint32_t get32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

/// FNV-1a 64-bit offset basis — pass as the initial `h` to fnv1a().
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Fold `n` bytes into a running FNV-1a 64-bit hash.
inline std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace malec::binio
