#include "common/stats.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace malec {

Histogram::Histogram(std::vector<std::uint64_t> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1, 0) {
  MALEC_CHECK_MSG(std::is_sorted(edges_.begin(), edges_.end()),
                  "histogram edges must be sorted");
}

void Histogram::add(std::uint64_t value, std::uint64_t weight) {
  // First bucket whose inclusive upper edge holds `value`; binary search —
  // this runs once per simulated access in the locality analyses.
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), value) - edges_.begin());
  counts_[b] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count(std::size_t bucket) const {
  MALEC_CHECK(bucket < counts_.size());
  return counts_[bucket];
}

double Histogram::fraction(std::size_t bucket) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bucket)) / static_cast<double>(total_);
}

double Histogram::fractionAtLeast(std::size_t bucket) const {
  if (total_ == 0) return 0.0;
  std::uint64_t sum = 0;
  for (std::size_t b = bucket; b < counts_.size(); ++b) sum += counts_[b];
  return static_cast<double>(sum) / static_cast<double>(total_);
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

void StatSet::set(const std::string& name, double value) {
  values_[name] = value;
}

void StatSet::add(const std::string& name, double delta) {
  values_[name] += delta;
}

double StatSet::get(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

bool StatSet::has(const std::string& name) const {
  return values_.count(name) != 0;
}

void StatSet::merge(const StatSet& other, const std::string& prefix) {
  for (const auto& [k, v] : other.values_) values_[prefix + k] = v;
}

std::string StatSet::toTable() const {
  std::size_t width = 0;
  for (const auto& [k, v] : values_) width = std::max(width, k.size());
  std::string out;
  out.reserve(values_.size() * (width + 16));
  char buf[256];
  for (const auto& [k, v] : values_) {
    std::snprintf(buf, sizeof buf, "%-*s  %.6g\n", static_cast<int>(width),
                  k.c_str(), v);
    out += buf;
  }
  return out;
}

}  // namespace malec
