// Lightweight invariant checking used across the simulator.
//
// MALEC_CHECK is always on (simulator correctness beats raw speed for this
// reproduction); MALEC_DCHECK compiles out in NDEBUG builds and is meant for
// hot-path assertions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace malec::detail {

[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "MALEC_CHECK failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace malec::detail

#define MALEC_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::malec::detail::checkFailed(#expr, __FILE__, __LINE__,   \
                                              nullptr);                    \
  } while (false)

#define MALEC_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) ::malec::detail::checkFailed(#expr, __FILE__, __LINE__,   \
                                              (msg));                      \
  } while (false)

#ifdef NDEBUG
#define MALEC_DCHECK(expr) ((void)0)
#else
#define MALEC_DCHECK(expr) MALEC_CHECK(expr)
#endif
