// Address decomposition for the modelled 32-bit machine.
//
// The paper's configuration (Table II): 32-bit address space, 4 KByte pages,
// 64-byte cache lines, a 32 KByte 4-way set-associative L1 split into four
// independent banks interleaved on the line address, and 128-bit sub-blocks
// within a line. AddressLayout turns those parameters into bit-field
// accessors used by every other module; keeping it runtime-configurable lets
// the sensitivity benches sweep page size, line size, bank count, etc.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/types.h"

namespace malec {

/// Runtime-configurable address bit layout.
///
/// All widths are powers of two. The default constructor yields the paper's
/// Table II configuration.
class AddressLayout {
 public:
  struct Params {
    std::uint32_t addr_bits = 32;        ///< modelled address-space width
    std::uint32_t page_bytes = 4096;     ///< 4 KByte pages
    std::uint32_t line_bytes = 64;       ///< 64-byte cache lines
    std::uint32_t sub_block_bytes = 16;  ///< 128-bit sub-blocks
    std::uint32_t l1_bytes = 32 * 1024;  ///< 32 KByte L1
    std::uint32_t l1_assoc = 4;          ///< 4-way set-associative
    std::uint32_t l1_banks = 4;          ///< 4 independent banks
  };

  AddressLayout() : AddressLayout(Params{}) {}

  explicit AddressLayout(const Params& p);

  // --- raw parameters -----------------------------------------------------
  [[nodiscard]] std::uint32_t addrBits() const { return p_.addr_bits; }
  [[nodiscard]] std::uint32_t pageBytes() const { return p_.page_bytes; }
  [[nodiscard]] std::uint32_t lineBytes() const { return p_.line_bytes; }
  [[nodiscard]] std::uint32_t subBlockBytes() const {
    return p_.sub_block_bytes;
  }
  [[nodiscard]] std::uint32_t l1Bytes() const { return p_.l1_bytes; }
  [[nodiscard]] std::uint32_t l1Assoc() const { return p_.l1_assoc; }
  [[nodiscard]] std::uint32_t l1Banks() const { return p_.l1_banks; }

  // --- derived widths -----------------------------------------------------
  [[nodiscard]] std::uint32_t pageOffsetBits() const {
    return page_offset_bits_;
  }
  [[nodiscard]] std::uint32_t lineOffsetBits() const {
    return line_offset_bits_;
  }
  /// Width of a page identifier (virtual or physical); 20 bits by default.
  [[nodiscard]] std::uint32_t pageIdBits() const {
    return p_.addr_bits - page_offset_bits_;
  }
  /// Cache lines per page (64 by default) — the per-WT-entry line count.
  [[nodiscard]] std::uint32_t linesPerPage() const { return lines_per_page_; }
  /// Total L1 sets across all banks.
  [[nodiscard]] std::uint32_t l1Sets() const { return l1_sets_; }
  /// Sets within one bank.
  [[nodiscard]] std::uint32_t l1SetsPerBank() const {
    return l1_sets_per_bank_;
  }
  /// Sub-blocks per line (4 by default).
  [[nodiscard]] std::uint32_t subBlocksPerLine() const {
    return sub_blocks_per_line_;
  }
  /// Width of the narrow arbitration comparator: address bits minus page-ID
  /// bits minus line-offset bits (paper Sec. IV).
  [[nodiscard]] std::uint32_t narrowComparatorBits() const {
    return page_offset_bits_ - line_offset_bits_;
  }

  // --- accessors ----------------------------------------------------------
  [[nodiscard]] PageId pageId(Addr a) const {
    return static_cast<PageId>(a >> page_offset_bits_);
  }
  [[nodiscard]] Addr pageOffset(Addr a) const {
    return a & (p_.page_bytes - 1);
  }
  [[nodiscard]] LineAddr lineAddr(Addr a) const {
    return a >> line_offset_bits_;
  }
  [[nodiscard]] Addr lineBase(Addr a) const {
    return a & ~static_cast<Addr>(p_.line_bytes - 1);
  }
  [[nodiscard]] Addr lineOffset(Addr a) const {
    return a & (p_.line_bytes - 1);
  }
  /// Index of the line within its page, 0..linesPerPage()-1.
  [[nodiscard]] std::uint32_t lineInPage(Addr a) const {
    return static_cast<std::uint32_t>((a >> line_offset_bits_) &
                                      (lines_per_page_ - 1));
  }
  /// Bank servicing this address: line-address interleaving, so lines
  /// 0..3 of a page map to banks 0..3 (paper Sec. V).
  [[nodiscard]] BankIdx bankOf(Addr a) const {
    return static_cast<BankIdx>((a >> line_offset_bits_) & (p_.l1_banks - 1));
  }
  /// Global L1 set index.
  [[nodiscard]] std::uint32_t l1Set(Addr a) const {
    return static_cast<std::uint32_t>((a >> line_offset_bits_) &
                                      (l1_sets_ - 1));
  }
  /// Set index within the bank returned by bankOf().
  [[nodiscard]] std::uint32_t l1SetInBank(Addr a) const {
    return static_cast<std::uint32_t>(
        ((a >> line_offset_bits_) >> bank_bits_) & (l1_sets_per_bank_ - 1));
  }
  /// PIPT tag: the address above the set+offset bits.
  [[nodiscard]] std::uint64_t l1Tag(Addr a) const {
    return a >> (line_offset_bits_ + set_bits_);
  }
  /// Sub-block index within the line.
  [[nodiscard]] std::uint32_t subBlockOf(Addr a) const {
    return static_cast<std::uint32_t>((a >> sub_block_bits_) &
                                      (sub_blocks_per_line_ - 1));
  }
  /// Sub-block *pair* index (MALEC reads two adjacent sub-blocks per access).
  [[nodiscard]] std::uint32_t subBlockPairOf(Addr a) const {
    return subBlockOf(a) >> 1;
  }

  /// Rebuild an address from page ID and offset.
  [[nodiscard]] Addr compose(PageId page, Addr offset) const {
    MALEC_DCHECK(offset < p_.page_bytes);
    return (static_cast<Addr>(page) << page_offset_bits_) | offset;
  }

  /// True iff an access of `size` bytes at `a` stays within one sub-block
  /// pair (the merge granularity of sub-blocked MALEC, Sec. IV).
  [[nodiscard]] bool withinSubBlockPair(Addr a, std::uint32_t size) const {
    return subBlockPairOf(a) == subBlockPairOf(a + size - 1);
  }

 private:
  Params p_;
  std::uint32_t page_offset_bits_ = 0;
  std::uint32_t line_offset_bits_ = 0;
  std::uint32_t sub_block_bits_ = 0;
  std::uint32_t lines_per_page_ = 0;
  std::uint32_t sub_blocks_per_line_ = 0;
  std::uint32_t l1_sets_ = 0;
  std::uint32_t l1_sets_per_bank_ = 0;
  std::uint32_t bank_bits_ = 0;
  std::uint32_t set_bits_ = 0;
};

/// log2 for powers of two with checking.
[[nodiscard]] std::uint32_t log2Exact(std::uint64_t v);

/// True iff v is a power of two (and non-zero).
[[nodiscard]] constexpr bool isPow2(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace malec
