#include "tlb/page_table.h"

#include "common/check.h"

namespace malec::tlb {

PageTable::PageTable(std::uint32_t phys_pages, std::uint64_t seed)
    : phys_pages_(phys_pages), seed_(seed) {
  MALEC_CHECK(phys_pages >= 1);
}

PageId PageTable::translate(PageId vpage) {
  auto it = map_.find(vpage);
  if (it != map_.end()) return it->second;
  ++walks_;
  // splitmix-style mix keyed by the seed; collisions are acceptable (two
  // virtual pages sharing a frame is harmless for this study).
  std::uint64_t x = (static_cast<std::uint64_t>(vpage) + seed_) *
                    0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  const PageId ppage = static_cast<PageId>(x % phys_pages_);
  map_.emplace(vpage, ppage);
  return ppage;
}

}  // namespace malec::tlb
