#include "tlb/page_table.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::tlb {

PageTable::PageTable(std::uint32_t phys_pages, std::uint64_t seed)
    : phys_pages_(phys_pages), seed_(seed) {
  MALEC_CHECK(phys_pages >= 1);
}

PageId PageTable::translate(PageId vpage) {
  auto it = map_.find(vpage);
  if (it != map_.end()) return it->second;
  ++walks_;
  // splitmix-style mix keyed by the seed picks the preferred frame...
  std::uint64_t x = (static_cast<std::uint64_t>(vpage) + seed_) *
                    0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  PageId ppage = static_cast<PageId>(x % phys_pages_);
  // ...and linear probing keeps the mapping collision-free while frames
  // remain: two virtual pages sharing a frame is NOT harmless — way-table
  // validity maintenance finds resident pages by physical ID and repairs
  // only the first match, so an aliased frame leaves the other page's way
  // entry stale (a wrong-way reduced access aborts the run). Only an
  // over-subscribed physical space (more mapped pages than frames — far
  // beyond any modelled working set) falls back to sharing.
  if (used_.size() < phys_pages_) {
    while (used_.count(ppage) != 0) {
      ++ppage;
      if (ppage == phys_pages_) ppage = 0;
    }
    used_.insert(ppage);
  }
  map_.emplace(vpage, ppage);
  return ppage;
}


void PageTable::saveState(ckpt::StateWriter& w) const {
  // map_ is an unordered map — serialize sorted by virtual page so the
  // same state always produces the same checkpoint bytes. used_ is NOT
  // stored: it is exactly the set of mapped frames and is rebuilt on load.
  // lint:allow(udc-order: sorted below before any byte is written)
  std::vector<std::pair<PageId, PageId>> entries(map_.begin(), map_.end());
  std::sort(entries.begin(), entries.end());
  w.u64(entries.size());
  for (const auto& [vpage, ppage] : entries) {
    w.u32(vpage);
    w.u32(ppage);
  }
  w.u64(walks_);
}

void PageTable::loadState(ckpt::StateReader& r) {
  map_.clear();
  used_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const PageId vpage = r.u32();
    const PageId ppage = r.u32();
    map_.emplace(vpage, ppage);
    used_.insert(ppage);
  }
  walks_ = r.u64();
}

}  // namespace malec::tlb
