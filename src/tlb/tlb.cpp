#include "tlb/tlb.h"

#include "ckpt/state_io.h"
#include "common/check.h"

namespace malec::tlb {

Tlb::Tlb(const Params& p)
    : slots_(p.entries),
      repl_(mem::makePolicy(p.replacement, 1, p.entries, Rng(p.seed))) {
  MALEC_CHECK(p.entries >= 1);
}

std::optional<std::uint32_t> Tlb::lookupV(PageId vpage) {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].valid && slots_[i].vpage == vpage) {
      repl_->touch(0, i);
      ++hits_;
      return i;
    }
  }
  ++misses_;
  return std::nullopt;
}

std::optional<std::uint32_t> Tlb::probeV(PageId vpage) const {
  for (std::uint32_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].valid && slots_[i].vpage == vpage) return i;
  return std::nullopt;
}

std::optional<std::uint32_t> Tlb::lookupP(PageId ppage) const {
  for (std::uint32_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].valid && slots_[i].ppage == ppage) return i;
  return std::nullopt;
}

std::uint32_t Tlb::insert(PageId vpage, PageId ppage) {
  // Reuse an existing mapping slot for the same vpage if present.
  if (auto slot = probeV(vpage); slot.has_value()) {
    slots_[*slot].ppage = ppage;
    repl_->touch(0, *slot);
    return *slot;
  }
  // Prefer an invalid slot.
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].valid) {
      slots_[i] = Entry{true, vpage, ppage};
      repl_->fill(0, i);
      return i;
    }
  }
  const std::uint64_t all =
      slots_.size() >= 64 ? ~0ull : ((1ull << slots_.size()) - 1);
  const std::uint32_t victim = repl_->victim(0, all);
  if (slots_[victim].valid) {
    ++evictions_;
    if (on_evict_) on_evict_(victim);
  }
  slots_[victim] = Entry{true, vpage, ppage};
  repl_->fill(0, victim);
  return victim;
}

void Tlb::invalidate(std::uint32_t slot) {
  MALEC_CHECK(slot < slots_.size());
  slots_[slot].valid = false;
}

const Tlb::Entry& Tlb::entry(std::uint32_t slot) const {
  MALEC_CHECK(slot < slots_.size());
  return slots_[slot];
}


void Tlb::saveState(ckpt::StateWriter& w) const {
  w.u64(slots_.size());
  for (const Entry& e : slots_) {
    w.u8(e.valid ? 1 : 0);
    w.u32(e.vpage);
    w.u32(e.ppage);
  }
  repl_->saveState(w);
  w.u64(hits_);
  w.u64(misses_);
  w.u64(evictions_);
}

void Tlb::loadState(ckpt::StateReader& r) {
  MALEC_CHECK_MSG(r.u64() == slots_.size(),
                  "TLB checkpoint state does not fit this geometry");
  for (Entry& e : slots_) {
    e.valid = r.u8() != 0;
    e.vpage = r.u32();
    e.ppage = r.u32();
  }
  repl_->loadState(r);
  hits_ = r.u64();
  misses_ = r.u64();
  evictions_ = r.u64();
}

}  // namespace malec::tlb
