// Deterministic flat page table.
//
// Virtual pages map to physical pages through a keyed mixing function plus
// linear probing, so translations are stable across a run and distinct
// pages NEVER collide while free frames remain (way-table validity
// maintenance keys off the physical page and silently breaks under frame
// aliasing). The mapping depends on first-touch order, which is itself
// deterministic for every trace source. Assignments are memoised (needed
// for probing and for reverse lookups in tests).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::tlb {

class PageTable {
 public:
  /// `phys_pages` bounds the physical page space (256 MByte DRAM / 4 KByte
  /// pages = 65536 by default, paper Table II).
  explicit PageTable(std::uint32_t phys_pages = 65536,
                     std::uint64_t seed = 0xA5A5);

  /// Translate a virtual page ID to a physical page ID. Stable per run.
  [[nodiscard]] PageId translate(PageId vpage);

  /// Cycles a hardware page walk takes on a TLB miss.
  [[nodiscard]] Cycle walkLatency() const { return walk_latency_; }
  void setWalkLatency(Cycle c) { walk_latency_ = c; }

  [[nodiscard]] std::uint64_t walks() const { return walks_; }

  /// Checkpoint/restore of all mutable state; restore requires an
  /// a page table built with the same seed and frame count.
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  std::uint32_t phys_pages_;  // lint:no-state(config; restore binds by fingerprint)
  std::uint64_t seed_;        // lint:no-state(config; restore binds by fingerprint)
  Cycle walk_latency_ = 30;   // lint:no-state(config)
  std::unordered_map<PageId, PageId> map_;
  std::unordered_set<PageId> used_;  // lint:no-state(derived; rebuilt from map_ in loadState)
  std::uint64_t walks_ = 0;
};

}  // namespace malec::tlb
