// Translation lookaside buffer with reverse (physical) lookup.
//
// MALEC couples a Way Table entry to every TLB entry, so this TLB exposes
// slot indices, fires an eviction callback when a slot is recycled, and —
// because the L1 is PIPT and line fills/evictions carry physical tags —
// additionally supports lookups by *physical* page ID (paper Sec. V: "the
// uTLB and TLB need to be modified to allow lookups based on physical, in
// addition to virtual, PageIDs"). Energy accounting therefore treats each
// TLB as two fully-associative tag arrays over one payload array (VI-A).
//
// The paper's configuration: 64-entry main TLB with random replacement,
// 16-entry uTLB with second-chance replacement (chosen to keep hot pages —
// and hence their uWT entries — resident, minimising full-entry uWT->WT
// transfers).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "mem/replacement.h"

namespace malec::ckpt {
class StateReader;
class StateWriter;
}  // namespace malec::ckpt

namespace malec::tlb {

class Tlb {
 public:
  struct Params {
    std::uint32_t entries = 64;
    mem::ReplacementKind replacement = mem::ReplacementKind::kRandom;
    std::uint64_t seed = 13;
  };

  struct Entry {
    bool valid = false;
    PageId vpage = 0;
    PageId ppage = 0;
  };

  /// Fired just before a valid slot is recycled for a different page.
  using EvictCallback = std::function<void(std::uint32_t slot)>;

  explicit Tlb(const Params& p);

  void setEvictCallback(EvictCallback cb) { on_evict_ = std::move(cb); }

  /// Forward lookup by virtual page; returns the slot index on a hit and
  /// updates replacement state.
  std::optional<std::uint32_t> lookupV(PageId vpage);

  /// Reverse lookup by physical page; does NOT touch replacement state
  /// (fills/evictions are not locality events). Returns the first match.
  [[nodiscard]] std::optional<std::uint32_t> lookupP(PageId ppage) const;

  /// Probe without updating replacement state (tests, peek paths).
  [[nodiscard]] std::optional<std::uint32_t> probeV(PageId vpage) const;

  /// Replay the bookkeeping of a lookupV hit on an already-known slot
  /// (memoized translation fast path): the identical replacement touch and
  /// hit count, without the associative scan. Caller guarantees the slot
  /// still maps the page it memoized.
  void repeatHit(std::uint32_t slot) {
    repl_->touch(0, slot);
    ++hits_;
  }

  /// Insert a translation; evicts if full. Returns the slot used.
  std::uint32_t insert(PageId vpage, PageId ppage);

  /// Invalidate a slot (tests / shootdowns).
  void invalidate(std::uint32_t slot);

  [[nodiscard]] const Entry& entry(std::uint32_t slot) const;
  [[nodiscard]] std::uint32_t entries() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Checkpoint/restore of all mutable state; restore requires an
  /// identically-configured instance (geometry mismatches abort).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  std::vector<Entry> slots_;
  std::unique_ptr<mem::ReplacementPolicy> repl_;
  EvictCallback on_evict_;  // lint:no-state(wiring callback, rebuilt at construction)
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace malec::tlb
