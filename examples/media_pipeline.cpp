// Media-kernel scenario: the workloads the paper's introduction motivates.
//
// MediaBench2-style kernels issue frequent, highly structured memory
// accesses (wide SIMD-ish loads marching through frame buffers). This is
// MALEC's best case: page groups are large, loads merge onto shared data
// reads, and Page-Based Way Determination coverage is near its ceiling.
// The example runs the MediaBench2 decoders/encoders on Base1ldst vs MALEC
// and breaks down where the speedup and the energy saving come from.
#include <cstdio>
#include <vector>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using namespace malec;
  const std::uint64_t n =
      argc > 1 ? sim::parseU64Strict(argv[1], "instruction count") : 120'000;

  std::printf("Media pipeline study — %llu instructions per kernel\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%-12s %8s %8s %8s %8s %8s %8s\n", "kernel", "speedup%",
              "E_save%", "merged%", "cover%", "grp_size", "missrate%");

  double worst_speedup = 1e9, best_speedup = 0;
  // One runMatrixParallel batch over the whole kernel set: the worker pool
  // sees every (kernel, config) run at once instead of two at a time.
  const auto kernels = trace::workloadsForSuite("MediaBench2");
  const auto all = sim::runMatrixParallel(
      kernels, {sim::presetBase1ldst(), sim::presetMalec()}, n);
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    const auto& wl = kernels[k];
    const auto& outs = all[k];
    const auto& base = outs[0];
    const auto& m = outs[1];
    const double speedup = 100.0 * (static_cast<double>(base.cycles) /
                                        static_cast<double>(m.cycles) -
                                    1.0);
    const double esave = 100.0 * (1.0 - m.total_pj / base.total_pj);
    const double grp =
        m.ifc.groups ? static_cast<double>(m.ifc.group_entries) /
                           static_cast<double>(m.ifc.groups)
                     : 0.0;
    std::printf("%-12s %8.1f %8.1f %8.1f %8.1f %8.2f %9.2f\n",
                wl.name.c_str(), speedup, esave,
                100.0 * m.merged_load_fraction, 100.0 * m.way_coverage, grp,
                100.0 * m.l1_load_miss_rate);
    worst_speedup = std::min(worst_speedup, speedup);
    best_speedup = std::max(best_speedup, speedup);
  }

  std::printf("\nSpeedup range %.1f%%..%.1f%% — the paper reports up to"
              " ~30%% (djpeg, h263dec) and a 21%% suite mean.\n",
              worst_speedup, best_speedup);
  std::printf("Larger page groups => fewer uTLB lookups per load; high\n"
              "coverage => most reads bypass the tag arrays entirely.\n");
  return 0;
}
