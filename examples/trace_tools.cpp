// Trace tooling around the public trace API:
//
//   trace_tools gen <benchmark> <N> <file>   capture a synthetic stream
//   trace_tools analyze <file>               Fig.1-style locality report
//   trace_tools run <file> [config]          simulate a captured trace
//
// Captured traces are the bridge to real-simulator integration: any tool
// that writes the (documented) record format in trace_io.h can drive the
// full MALEC stack instead of the synthetic workload models.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cpu/core_model.h"
#include "energy/energy_account.h"
#include "sim/presets.h"
#include "sim/structures.h"
#include "trace/locality_analyzer.h"
#include "trace/synth_generator.h"
#include "trace/trace_io.h"
#include "trace/workloads.h"

namespace {

using namespace malec;

int cmdGen(const std::string& bench, std::uint64_t n,
           const std::string& path) {
  if (!trace::hasWorkload(bench)) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 1;
  }
  trace::SyntheticTraceGenerator gen(trace::workloadByName(bench),
                                     AddressLayout{}, n, /*seed=*/1);
  trace::TraceWriter w(path);
  if (!w.ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  trace::InstrRecord r;
  while (gen.next(r)) w.write(r);
  if (!w.close()) {
    std::fprintf(stderr, "write failure on %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %llu records to %s\n",
              static_cast<unsigned long long>(w.written()), path.c_str());
  return 0;
}

int cmdAnalyze(const std::string& path) {
  trace::TraceReader rd(path);
  if (!rd.ok()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  const AddressLayout layout;
  trace::LocalityAnalyzer an(layout);
  trace::InstrRecord r;
  std::uint64_t mem = 0, total = 0;
  while (rd.next(r)) {
    an.observe(r);
    ++total;
    mem += r.isMem();
  }
  std::printf("%llu records, %.1f%% memory references\n",
              static_cast<unsigned long long>(total),
              100.0 * static_cast<double>(mem) / static_cast<double>(total));
  std::printf("%-6s %10s %10s\n", "x", "followed%", "grp>8%");
  for (const auto& g : an.pageGroups())
    std::printf("%-6u %10.1f %10.1f\n", g.allowed_intermediates,
                100 * g.frac_followed, 100 * g.frac_group_gt8);
  std::printf("same-line follow rate: %.1f%%\n",
              100 * an.sameLineFollowedFraction());
  return 0;
}

int cmdRun(const std::string& path, const std::string& cfg_name) {
  trace::TraceReader rd(path);
  if (!rd.ok()) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  core::InterfaceConfig cfg;
  if (cfg_name == "Base1ldst") cfg = sim::presetBase1ldst();
  else if (cfg_name == "Base2ld1st") cfg = sim::presetBase2ld1st();
  else cfg = sim::presetMalec();

  const core::SystemConfig sys = sim::defaultSystem();
  energy::EnergyAccount ea;
  sim::defineEnergies(ea, cfg, sys);
  auto ifc = sim::makeInterface(cfg, sys, ea);
  cpu::CoreModel core(sys, cfg, rd, *ifc);
  const auto st = core.run();

  std::printf("%s on %s: %llu instr, %llu cycles, IPC %.2f\n",
              cfg.name.c_str(), path.c_str(),
              static_cast<unsigned long long>(st.instructions),
              static_cast<unsigned long long>(st.cycles), st.ipc());
  std::printf("dynamic %.3f uJ, leakage %.3f uJ, way coverage %.1f%%\n",
              ea.dynamicPj() * 1e-6,
              ea.leakagePj(st.cycles, sys.clock_ghz) * 1e-6,
              100.0 * ifc->stats().wayCoverage());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 5 && std::strcmp(argv[1], "gen") == 0)
    return cmdGen(argv[2], std::strtoull(argv[3], nullptr, 10), argv[4]);
  if (argc >= 3 && std::strcmp(argv[1], "analyze") == 0)
    return cmdAnalyze(argv[2]);
  if (argc >= 3 && std::strcmp(argv[1], "run") == 0)
    return cmdRun(argv[2], argc >= 4 ? argv[3] : "MALEC");

  std::fprintf(stderr,
               "usage:\n"
               "  %s gen <benchmark> <N> <file>\n"
               "  %s analyze <file>\n"
               "  %s run <file> [Base1ldst|Base2ld1st|MALEC]\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
