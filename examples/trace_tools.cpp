// Trace tooling around the public trace API:
//
//   trace_tools gen <benchmark> <N> <file> [--seed S]
//       capture a synthetic stream (v2 format: block-buffered, header
//       carries the AddressLayout and a record checksum)
//   trace_tools analyze <file>
//       Fig.1-style locality report
//   trace_tools run <file> [--config NAME] [--instr N] [--seed S]
//       simulate a captured trace through the shared experiment runner.
//       --ckpt-out PATH [--ckpt-every N] writes a full-state `.mckpt`
//       checkpoint every N retired instructions (N defaults to
//       MALEC_CKPT_EVERY); --from-ckpt PATH resumes one — the resumed
//       run's report is bit-identical to the uninterrupted run. With
//       --sampled, --warmup-ckpt PATH caches the per-pick warm states so
//       repeated sweeps of the same (trace, plan, config) skip warmup.
//   trace_tools synth <benchmark> [--config NAME] [--instr N] [--seed S]
//       the equivalent direct synthetic run, same report — `diff` its
//       output against `run` on a capture of the same benchmark to verify
//       bit-identical replay (CI does exactly this)
//   trace_tools phases <file> [--interval N] [--phases K] [--warmup W]
//                      [--seed S] [--out PATH]
//       profile the trace into BBV-style intervals, cluster them into
//       phases (deterministic k-means) and write a sample plan — by
//       default the `.mplan` sidecar next to the trace, which `run
//       --sampled` and `malec_bench --suite phase_sampled` pick up
//       (a plan written with --out replays via `run --sampled --plan`)
//
// Captured traces are the bridge to real-simulator integration: any tool
// that writes the (documented) record format in trace_io.h can drive the
// full MALEC stack instead of the synthetic workload models. `run`/`synth`
// are thin wrappers over sim::runOne(), so a trace here behaves exactly
// like a `trace:` workload inside `malec_bench --suite trace_replay`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "phase/planner.h"
#include "phase/sample_plan.h"
#include "sim/presets.h"
#include "sim/registry.h"
#include "sim/suite.h"
#include "trace/locality_analyzer.h"
#include "trace/trace_io.h"

namespace {

using namespace malec;

struct RunFlags {
  std::string config = "MALEC";
  std::uint64_t instructions = 0;  ///< 0 = whole trace / runner default
  std::uint64_t seed = 1;
  bool sampled = false;  ///< replay through a sample plan
  std::string plan;      ///< explicit plan path ("" = the .mplan sidecar)
  std::string ckpt_out;  ///< write a .mckpt here every ckpt_every instrs
  std::uint64_t ckpt_every = 0;  ///< 0 = MALEC_CKPT_EVERY
  std::string from_ckpt;     ///< resume from this .mckpt
  std::string warmup_ckpt;   ///< sampled warmup-state cache
};

/// Parse trailing [--config NAME] [--instr N] [--seed S] [--sampled
/// [--plan PATH]] flags (a bare config name is still accepted where the
/// old CLI took one positionally). `gen` passes allow_run_flags = false:
/// it only takes --seed, and must reject the rest instead of silently
/// ignoring a --instr/--config the user believes shaped the capture.
bool parseRunFlags(int argc, char** argv, int first, RunFlags& out,
                   bool allow_run_flags = true) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (allow_run_flags && arg == "--config") out.config = value();
    else if (allow_run_flags && arg == "--instr")
      out.instructions = sim::parseU64Strict(value(), "--instr");
    else if (allow_run_flags && arg == "--sampled") out.sampled = true;
    else if (allow_run_flags && arg == "--plan") out.plan = value();
    else if (allow_run_flags && arg == "--ckpt-out") out.ckpt_out = value();
    else if (allow_run_flags && arg == "--ckpt-every")
      out.ckpt_every = sim::parseU64Strict(value(), "--ckpt-every");
    else if (allow_run_flags && arg == "--from-ckpt") out.from_ckpt = value();
    else if (allow_run_flags && arg == "--warmup-ckpt")
      out.warmup_ckpt = value();
    else if (arg == "--seed") out.seed = sim::parseU64Strict(value(), "--seed");
    else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else if (allow_run_flags) {
      out.config = arg;  // legacy positional config name
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

core::InterfaceConfig configByName(const std::string& name) {
  const sim::PresetFn* fn = sim::presetRegistry().tryGet(name);
  if (fn == nullptr) {
    std::fprintf(stderr, "unknown config '%s' — registered presets:\n",
                 name.c_str());
    for (const auto& known : sim::presetRegistry().names())
      std::fprintf(stderr, "  %s\n", known.c_str());
    std::exit(1);
  }
  return (*fn)();
}

/// The shared report for `run` and `synth`. The workload name is printed on
/// its own line so the rest of the report diffs clean between a replay
/// ("trace:gcc") and its synthetic original ("gcc").
void printRunSummary(const sim::RunOutput& out) {
  std::printf("workload: %s\n", out.benchmark.c_str());
  std::printf("config:   %s\n", out.config.c_str());
  std::printf("%llu instr, %llu cycles, IPC %.6f\n",
              static_cast<unsigned long long>(out.instructions),
              static_cast<unsigned long long>(out.cycles), out.ipc);
  std::printf("dynamic %.6f uJ, leakage %.6f uJ, total %.6f uJ\n",
              out.dynamic_pj * 1e-6, out.leakage_pj * 1e-6,
              out.total_pj * 1e-6);
  std::printf(
      "way coverage %.4f%%, L1 load miss rate %.4f%%, merged loads %.4f%%\n",
      100.0 * out.way_coverage, 100.0 * out.l1_load_miss_rate,
      100.0 * out.merged_load_fraction);
  std::printf("%s", out.energy_detail.toTable().c_str());
}

int runWorkload(const trace::WorkloadProfile& wl, const RunFlags& flags) {
  // A cadence with nowhere to write would silently checkpoint nothing —
  // reject like every other flag misuse. (MALEC_CKPT_EVERY alone is fine:
  // that is ambient configuration, consulted only when an output is set.)
  if (flags.ckpt_every != 0 && flags.ckpt_out.empty()) {
    std::fprintf(stderr, "--ckpt-every needs --ckpt-out\n");
    std::exit(2);
  }
  sim::RunConfig rc;
  rc.workload = wl;
  rc.interface_cfg = configByName(flags.config);
  rc.system = sim::defaultSystem();
  rc.instructions = flags.instructions;
  rc.seed = flags.seed;
  rc.ckpt_out = flags.ckpt_out;
  rc.ckpt_every = flags.ckpt_every;
  rc.start_ckpt = flags.from_ckpt;
  rc.warmup_ckpt = flags.warmup_ckpt;
  printRunSummary(sim::runOne(rc));
  return 0;
}

int cmdGen(const std::string& bench, const std::string& count_str,
           const std::string& path, int argc, char** argv, int first) {
  RunFlags flags;
  if (!parseRunFlags(argc, argv, first, flags, /*allow_run_flags=*/false))
    return 2;
  if (sim::workloadRegistry().tryGet(bench) == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s' — registered workloads:\n",
                 bench.c_str());
    for (const auto& known : sim::workloadRegistry().names())
      std::fprintf(stderr, "  %s\n", known.c_str());
    return 1;
  }
  sim::RunConfig rc;
  rc.workload = sim::workloadRegistry().get(bench);
  rc.system = sim::defaultSystem();
  rc.instructions = sim::parseU64Strict(count_str, "record count");
  if (rc.instructions == 0) {
    std::fprintf(stderr, "record count must be > 0\n");
    return 2;
  }
  rc.seed = flags.seed;
  const std::uint64_t n = sim::captureTrace(rc, path);
  std::printf("wrote %llu records to %s\n",
              static_cast<unsigned long long>(n), path.c_str());
  return 0;
}

int cmdAnalyze(const std::string& path) {
  trace::TraceReader rd(path);
  if (!rd.ok()) {
    std::fprintf(stderr, "%s\n", rd.error().c_str());
    return 1;
  }
  const AddressLayout layout;
  trace::LocalityAnalyzer an(layout);
  trace::InstrRecord r;
  std::uint64_t mem = 0, total = 0;
  while (rd.next(r)) {
    an.observe(r);
    ++total;
    mem += r.isMem();
  }
  if (!rd.ok()) {
    // Partial-trace results are worse than no results: a truncated or
    // corrupt file must fail loudly, never report locality stats quietly.
    std::fprintf(stderr, "%s\n", rd.error().c_str());
    return 1;
  }
  if (total == 0) {
    std::printf("0 records — empty trace, nothing to analyze\n");
    return 0;
  }
  std::printf("%llu records, %.1f%% memory references\n",
              static_cast<unsigned long long>(total),
              100.0 * static_cast<double>(mem) / static_cast<double>(total));
  std::printf("%-6s %10s %10s\n", "x", "followed%", "grp>8%");
  for (const auto& g : an.pageGroups())
    std::printf("%-6u %10.1f %10.1f\n", g.allowed_intermediates,
                100 * g.frac_followed, 100 * g.frac_group_gt8);
  std::printf("same-line follow rate: %.1f%%\n",
              100 * an.sameLineFollowedFraction());
  return 0;
}

int cmdRun(const std::string& path, int argc, char** argv, int first) {
  RunFlags flags;
  if (!parseRunFlags(argc, argv, first, flags)) return 2;
  if (!flags.plan.empty() && !flags.sampled) {
    std::fprintf(stderr, "--plan only makes sense with --sampled\n");
    return 2;
  }
  if (!flags.warmup_ckpt.empty() && !flags.sampled) {
    std::fprintf(stderr,
                 "--warmup-ckpt only makes sense with --sampled (full runs "
                 "use --ckpt-out/--from-ckpt)\n");
    return 2;
  }
  if (flags.sampled && (!flags.ckpt_out.empty() || !flags.from_ckpt.empty())) {
    std::fprintf(stderr,
                 "--sampled does not take --ckpt-out/--from-ckpt — its "
                 "checkpoint reuse is the warmup cache (--warmup-ckpt)\n");
    return 2;
  }
  if (flags.sampled) {
    // A sample plan and an instruction cap do not compose — the plan
    // decides what is simulated, so --instr (and MALEC_INSTR) are rejected
    // here instead of silently shaping nothing.
    if (flags.instructions != 0) {
      std::fprintf(stderr, "--sampled does not take --instr\n");
      return 2;
    }
    if (sim::instructionBudget(0) != 0) {
      std::fprintf(stderr,
                   "--sampled does not honour MALEC_INSTR — unset it (the "
                   "sample plan decides what is simulated)\n");
      return 2;
    }
    return runWorkload(
        sim::sampledWorkload(sim::traceWorkload(path), flags.plan), flags);
  }
  // MALEC_INSTR caps replays exactly like synthetic runs (so `run` and
  // `synth` stay diffable under it); 0 still means the whole file.
  if (flags.instructions == 0) flags.instructions = sim::instructionBudget(0);
  return runWorkload(sim::traceWorkload(path), flags);
}

int cmdPhases(const std::string& path, int argc, char** argv, int first) {
  phase::PlanParams params;
  std::string out_path = phase::planSidecarPath(path);
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--interval")
      params.interval_size = sim::parseU64Strict(value(), "--interval");
    else if (arg == "--phases") {
      const std::uint64_t k = sim::parseU64Strict(value(), "--phases");
      // Range-check before the narrowing cast, like --jobs/MALEC_JOBS: a
      // value past u32 must not silently truncate to a coarser plan.
      if (k > std::numeric_limits<std::uint32_t>::max()) {
        std::fprintf(stderr, "--phases %llu exceeds the supported range\n",
                     static_cast<unsigned long long>(k));
        return 2;
      }
      params.phases = static_cast<std::uint32_t>(k);
    } else if (arg == "--warmup")
      params.warmup_instructions = sim::parseU64Strict(value(), "--warmup");
    else if (arg == "--seed")
      params.seed = sim::parseU64Strict(value(), "--seed");
    else if (arg == "--out")
      out_path = value();
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (params.interval_size == 0 || params.phases == 0) {
    std::fprintf(stderr, "--interval and --phases must be > 0\n");
    return 2;
  }

  phase::PlanSummary summary;
  const phase::SamplePlan plan =
      phase::buildSamplePlan(path, params, &summary);
  std::string err;
  if (!phase::saveSamplePlan(plan, out_path, err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  std::printf("%llu records -> %llu intervals of %llu -> %u phases "
              "(k-means: %u iterations)\n",
              static_cast<unsigned long long>(plan.trace_records),
              static_cast<unsigned long long>(summary.intervals),
              static_cast<unsigned long long>(plan.interval_size),
              summary.clusters, summary.kmeans_iterations);
  for (std::size_t i = 0; i < plan.picks.size(); ++i)
    std::printf("  phase %zu: interval %llu, weight %5.1f%%\n", i,
                static_cast<unsigned long long>(plan.picks[i].interval_index),
                100.0 * plan.weight(i));
  std::printf(
      "sampled replay simulates %llu of %llu instructions (%.1f%%, "
      "warmup %llu per pick)\n",
      static_cast<unsigned long long>(plan.simulatedInstructions()),
      static_cast<unsigned long long>(plan.trace_records),
      100.0 * static_cast<double>(plan.simulatedInstructions()) /
          static_cast<double>(plan.trace_records),
      static_cast<unsigned long long>(plan.warmup_instructions));
  std::printf("wrote sample plan to %s\n", out_path.c_str());
  return 0;
}

int cmdSynth(const std::string& bench, int argc, char** argv, int first) {
  RunFlags flags;
  if (!parseRunFlags(argc, argv, first, flags)) return 2;
  // Synthetic runs have no plan to sample — reject rather than silently
  // print a full run the user believes was sampled.
  if (flags.sampled || !flags.plan.empty() || !flags.warmup_ckpt.empty()) {
    std::fprintf(stderr, "synth does not take --sampled/--plan/--warmup-ckpt\n");
    return 2;
  }
  if (sim::workloadRegistry().tryGet(bench) == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bench.c_str());
    return 1;
  }
  if (flags.instructions == 0)
    flags.instructions = sim::instructionBudget(200'000);
  return runWorkload(sim::workloadRegistry().get(bench), flags);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 5 && std::strcmp(argv[1], "gen") == 0)
    return cmdGen(argv[2], argv[3], argv[4], argc, argv, 5);
  if (argc >= 3 && std::strcmp(argv[1], "analyze") == 0)
    return cmdAnalyze(argv[2]);
  if (argc >= 3 && std::strcmp(argv[1], "run") == 0)
    return cmdRun(argv[2], argc, argv, 3);
  if (argc >= 3 && std::strcmp(argv[1], "synth") == 0)
    return cmdSynth(argv[2], argc, argv, 3);
  if (argc >= 3 && std::strcmp(argv[1], "phases") == 0)
    return cmdPhases(argv[2], argc, argv, 3);

  std::fprintf(stderr,
               "usage:\n"
               "  %s gen <benchmark> <N> <file> [--seed S]\n"
               "  %s analyze <file>\n"
               "  %s run <file> [--config NAME] [--instr N] [--seed S]"
               " [--sampled [--plan PATH] [--warmup-ckpt PATH]]\n"
               "             [--ckpt-out PATH [--ckpt-every N]]"
               " [--from-ckpt PATH]\n"
               "  %s synth <benchmark> [--config NAME] [--instr N]"
               " [--seed S] [--ckpt-out PATH [--ckpt-every N]]"
               " [--from-ckpt PATH]\n"
               "  %s phases <file> [--interval N] [--phases K] [--warmup W]"
               " [--seed S] [--out PATH]\n",
               argv[0], argv[0], argv[0], argv[0], argv[0]);
  return 2;
}
