// Streaming / pointer-chasing scenario: MALEC's worst case (paper VI-D).
//
// mcf-style workloads walk enormous working sets with little reuse: the
// uTLB thrashes, Way Table entries are invalidated before they pay off,
// and load latency — not port bandwidth — bounds performance. This example
// contrasts a cache-friendly benchmark with the two streaming ones and
// shows how way-determination coverage and the energy balance collapse,
// plus what the run-time-bypass discussion in the paper is about.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "trace/workloads.h"

int main(int argc, char** argv) {
  using namespace malec;
  const std::uint64_t n =
      argc > 1 ? sim::parseU64Strict(argv[1], "instruction count") : 120'000;

  std::printf("Streaming vs cache-friendly workloads — %llu instructions\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%-8s %12s %9s %9s %9s %10s %10s\n", "bench", "config",
              "IPC", "miss%", "cover%", "E_norm%", "time%");

  // The full (benchmark x config) grid as one parallel batch.
  const std::vector<std::string> benches = {"eon", "mcf", "art"};
  std::vector<trace::WorkloadProfile> wls;
  for (const auto& b : benches) wls.push_back(trace::workloadByName(b));
  const auto all = sim::runMatrixParallel(
      wls,
      {sim::presetBase1ldst(), sim::presetMalec(),
       sim::presetMalecNoWaydet()},
      n);
  for (std::size_t b = 0; b < benches.size(); ++b) {
    const char* bench = benches[b].c_str();
    const auto& outs = all[b];
    const double base_e = outs[0].total_pj;
    const double base_c = static_cast<double>(outs[0].cycles);
    for (const auto& o : outs) {
      std::printf("%-8s %12s %9.2f %9.2f %9.1f %10.1f %10.1f\n", bench,
                  o.config.c_str(), o.ipc, 100.0 * o.l1_load_miss_rate,
                  100.0 * o.way_coverage, 100.0 * o.total_pj / base_e,
                  100.0 * static_cast<double>(o.cycles) / base_c);
    }
    std::printf("\n");
  }

  std::printf(
      "Observations (matching paper Sec. VI-D):\n"
      " * streaming benchmarks gain almost nothing from MALEC's parallel\n"
      "   banks — latency dominates, not port bandwidth;\n"
      " * way-determination coverage collapses (uTLB/WT churn), so the\n"
      "   MALEC_noWayDet variant shows how much the WT machinery costs\n"
      "   when it cannot help — the run-time cache-bypass schemes the\n"
      "   paper cites would disable it for exactly these phases.\n");
  return 0;
}
