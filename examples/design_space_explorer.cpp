// Design-space exploration with the public API: sweep MALEC's structural
// parameters (result buses, Input Buffer carry slots, merge window, way
// determination scheme) on one benchmark and print a compact
// performance/energy Pareto view.
//
// The whole variant sweep is dispatched as one runConfigsParallel batch, so
// wall clock scales with the core count (override with MALEC_JOBS).
//
//   ./design_space_explorer [benchmark] [instructions]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/registry.h"

namespace {

struct Point {
  std::string name;
  double time_pct;    // vs reference MALEC
  double energy_pct;  // vs reference MALEC
  double coverage;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace malec;
  const std::string bench = argc > 1 ? argv[1] : "gcc";
  const std::uint64_t n =
      argc > 2 ? sim::parseU64Strict(argv[2], "instruction count") : 80'000;
  const trace::WorkloadProfile* wlp = sim::workloadRegistry().tryGet(bench);
  if (wlp == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s' — registered workloads:\n ",
                 bench.c_str());
    for (const auto& name : sim::workloadRegistry().names())
      std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }
  const auto wl = *wlp;

  // Reference point first (the paper's evaluated MALEC configuration,
  // resolved through the preset registry), then the variants — one batch,
  // so the reference run rides in the same parallel sweep.
  const sim::PresetFn& malec_preset = sim::presetRegistry().get("MALEC");
  std::vector<core::InterfaceConfig> variants;
  variants.push_back(malec_preset());
  for (std::uint32_t buses : {1u, 2u, 4u}) {
    auto c = sim::presetMalec();
    c.result_buses = buses;
    c.name = "buses=" + std::to_string(buses);
    variants.push_back(c);
  }
  for (std::uint32_t carry : {0u, 1u, 4u}) {
    auto c = sim::presetMalec();
    c.ib_carry_slots = carry;
    c.name = "carry=" + std::to_string(carry);
    variants.push_back(c);
  }
  for (std::uint32_t window : {0u, 1u, 7u}) {
    auto c = sim::presetMalec();
    c.merge_window = window;
    c.merge_loads = window > 0;
    c.name = "window=" + std::to_string(window);
    variants.push_back(c);
  }
  for (std::uint32_t wdu : {8u, 16u, 32u}) {
    variants.push_back(sim::presetMalecWdu(wdu));
  }
  variants.push_back(sim::presetMalecNoWaydet());
  variants.push_back(sim::presetMalecNoFeedback());
  {
    auto c = sim::presetMalec();
    c.subblocked_pair_read = false;
    c.name = "single-subblock";
    variants.push_back(c);
  }

  std::printf("Design-space exploration on %s (%llu instructions)\n",
              bench.c_str(), static_cast<unsigned long long>(n));

  // One parallel batch over the whole design space, reference included
  // (results in input order, so the reference is outs[0]).
  const auto outs = sim::runConfigsParallel(wl, variants, n);
  const auto& ref = outs[0];

  std::printf("reference: %s -> %llu cycles, %.2f uJ, coverage %.1f%%\n\n",
              ref.config.c_str(),
              static_cast<unsigned long long>(ref.cycles),
              ref.total_pj * 1e-6, 100.0 * ref.way_coverage);
  std::printf("%-18s %10s %10s %9s\n", "variant", "time[%]", "energy[%]",
              "cover[%]");

  std::vector<Point> points;
  for (std::size_t i = 1; i < variants.size(); ++i) {
    const auto& out = outs[i];
    Point p;
    p.name = variants[i].name;
    p.time_pct = 100.0 * static_cast<double>(out.cycles) /
                 static_cast<double>(ref.cycles);
    p.energy_pct = 100.0 * out.total_pj / ref.total_pj;
    p.coverage = 100.0 * out.way_coverage;
    points.push_back(p);
    std::printf("%-18s %10.1f %10.1f %9.1f\n", p.name.c_str(), p.time_pct,
                p.energy_pct, p.coverage);
  }

  // Simple Pareto filter: a variant is dominated if another is at least as
  // good on both axes and strictly better on one.
  std::printf("\nPareto-efficient variants (time, energy):\n");
  for (const auto& a : points) {
    bool dominated = false;
    for (const auto& b : points) {
      if (b.time_pct <= a.time_pct && b.energy_pct <= a.energy_pct &&
          (b.time_pct < a.time_pct || b.energy_pct < a.energy_pct)) {
        dominated = true;
        break;
      }
    }
    if (!dominated)
      std::printf("  %-18s time %.1f%%  energy %.1f%%\n", a.name.c_str(),
                  a.time_pct, a.energy_pct);
  }
  return 0;
}
