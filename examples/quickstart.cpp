// Quickstart: simulate one benchmark on the three Table I interfaces and
// print performance, energy and way-determination headlines.
//
//   ./quickstart [benchmark] [instructions]
//
// Defaults: gcc, 200k instructions. Benchmarks: any SPEC CPU2000 /
// MediaBench2 name from src/trace/workloads.cpp (e.g. mcf, gap, djpeg).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "sim/registry.h"

int main(int argc, char** argv) {
  using namespace malec;

  const std::string bench = argc > 1 ? argv[1] : "gcc";
  const std::uint64_t instructions =
      argc > 2 ? sim::parseU64Strict(argv[2], "instruction count") : 200'000;

  const trace::WorkloadProfile* wl = sim::workloadRegistry().tryGet(bench);
  if (wl == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s' — registered workloads:\n ",
                 bench.c_str());
    for (const auto& name : sim::workloadRegistry().names())
      std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::printf("MALEC quickstart — benchmark %s, %llu instructions\n\n",
              bench.c_str(),
              static_cast<unsigned long long>(instructions));

  const std::vector<core::InterfaceConfig> cfgs = {
      sim::presetBase1ldst(), sim::presetBase2ld1st(), sim::presetMalec()};
  const auto outs = sim::runConfigsParallel(*wl, cfgs, instructions);

  const double base_cycles = static_cast<double>(outs[0].cycles);
  const double base_energy = outs[0].total_pj;

  std::printf("%-12s %10s %6s %9s %9s %9s %8s %8s\n", "config", "cycles",
              "IPC", "dyn[uJ]", "leak[uJ]", "E_norm%", "time%", "cover%");
  for (const auto& o : outs) {
    std::printf("%-12s %10llu %6.2f %9.2f %9.2f %9.1f %8.1f %8.1f\n",
                o.config.c_str(),
                static_cast<unsigned long long>(o.cycles), o.ipc,
                o.dynamic_pj * 1e-6, o.leakage_pj * 1e-6,
                100.0 * o.total_pj / base_energy,
                100.0 * static_cast<double>(o.cycles) / base_cycles,
                100.0 * o.way_coverage);
  }

  const auto& m = outs[2];
  std::printf(
      "\nMALEC detail: %llu loads submitted, %llu L1 load reads "
      "(%.1f%% merged away), %llu reduced / %llu conventional accesses,\n"
      "              L1 load miss rate %.2f%%, %llu page groups "
      "(%.2f accesses/group)\n",
      static_cast<unsigned long long>(m.ifc.loads_submitted),
      static_cast<unsigned long long>(m.ifc.load_l1_accesses),
      100.0 * m.merged_load_fraction,
      static_cast<unsigned long long>(m.ifc.reduced_accesses),
      static_cast<unsigned long long>(m.ifc.conventional_accesses),
      100.0 * m.l1_load_miss_rate,
      static_cast<unsigned long long>(m.ifc.groups),
      m.ifc.groups ? static_cast<double>(m.ifc.group_entries) /
                         static_cast<double>(m.ifc.groups)
                   : 0.0);
  return 0;
}
