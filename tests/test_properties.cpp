// Cross-module property tests: whole-stack invariants swept over
// benchmarks and configurations with randomised inputs.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "trace/workloads.h"

namespace malec::sim {
namespace {

core::InterfaceConfig configByName(const std::string& name) {
  if (name == "Base1ldst") return presetBase1ldst();
  if (name == "Base2ld1st") return presetBase2ld1st();
  if (name == "MALEC") return presetMalec();
  if (name == "MALEC_WDU16") return presetMalecWdu(16);
  if (name == "MALEC_noWayDet") return presetMalecNoWaydet();
  return presetMalec();
}

using Case = std::tuple<std::string, std::string>;  // (benchmark, config)

class StackProperty : public ::testing::TestWithParam<Case> {};

TEST_P(StackProperty, InvariantsHold) {
  const auto& [bench, cfg_name] = GetParam();
  RunConfig rc;
  rc.workload = trace::workloadByName(bench);
  rc.interface_cfg = configByName(cfg_name);
  rc.system = defaultSystem();
  rc.instructions = 15'000;
  rc.seed = 7;
  const auto out = runOne(rc);

  // 1. The run completes: every instruction commits.
  EXPECT_EQ(out.instructions, rc.instructions);

  // 2. IPC is bounded by the commit width.
  EXPECT_LE(out.ipc, static_cast<double>(rc.system.commit_width) + 1e-9);

  // 3. Every submitted load is accounted for: L1 access, SB/MB forward or
  //    merged share.
  const auto& s = out.ifc;
  EXPECT_EQ(s.load_l1_accesses + s.sb_forwards + s.mb_forwards +
                s.merged_loads,
            s.loads_submitted);

  // 4. L1 accesses split exactly into hits and misses.
  EXPECT_EQ(s.load_l1_hits + s.load_l1_misses, s.load_l1_accesses);

  // 5. Access modes partition the L1 accesses.
  EXPECT_EQ(s.reduced_accesses + s.conventional_accesses,
            s.load_l1_accesses + s.write_l1_accesses);

  // 6. Reduced accesses require way determination; they never exceed the
  //    known-way lookups and never appear without a way provider.
  EXPECT_LE(s.reduced_accesses, s.way_known);
  if (rc.interface_cfg.waydet == core::WayDetKind::kNone) {
    EXPECT_EQ(s.reduced_accesses, 0u);
    EXPECT_EQ(s.way_lookups, 0u);
  }

  // 7. Coverage is a valid fraction.
  EXPECT_GE(out.way_coverage, 0.0);
  EXPECT_LE(out.way_coverage, 1.0);

  // 8. Energies are positive and consistent.
  EXPECT_GT(out.dynamic_pj, 0.0);
  EXPECT_GT(out.leakage_pj, 0.0);
  EXPECT_NEAR(out.total_pj, out.dynamic_pj + out.leakage_pj, 1e-6);

  // 9. Stores drain completely (quiesced interface at end of run is
  //    implied by the run finishing; the SB must be empty).
  EXPECT_EQ(s.stores_submitted, out.core.stores);
}

INSTANTIATE_TEST_SUITE_P(
    BenchConfigMatrix, StackProperty,
    ::testing::Combine(
        ::testing::Values("gcc", "mcf", "gap", "mgrid", "equake", "djpeg",
                          "h264enc", "swim"),
        ::testing::Values("Base1ldst", "Base2ld1st", "MALEC", "MALEC_WDU16",
                          "MALEC_noWayDet")),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

// Seed sweep: determinism and seed sensitivity.
class SeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedProperty, DeterministicPerSeed) {
  RunConfig rc;
  rc.workload = trace::workloadByName("vpr");
  rc.interface_cfg = presetMalec();
  rc.system = defaultSystem();
  rc.instructions = 8'000;
  rc.seed = GetParam();
  const auto a = runOne(rc);
  const auto b = runOne(rc);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.dynamic_pj, b.dynamic_pj);
  EXPECT_EQ(a.ifc.merged_loads, b.ifc.merged_loads);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedProperty,
                         ::testing::Values(1, 2, 3, 42, 1234, 99999));

// Latency monotonicity: longer L1 latency never speeds execution up.
class LatencyProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(LatencyProperty, CyclesMonotoneInL1Latency) {
  Cycle prev = 0;
  for (Cycle lat : {1u, 2u, 3u, 4u}) {
    RunConfig rc;
    rc.workload = trace::workloadByName(GetParam());
    rc.interface_cfg = presetMalec();
    rc.interface_cfg.l1_latency = lat;
    rc.system = defaultSystem();
    rc.instructions = 12'000;
    const auto out = runOne(rc);
    EXPECT_GE(out.cycles + out.cycles / 50 + 10, prev)
        << "latency " << lat;  // small tolerance for scheduling noise
    prev = out.cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, LatencyProperty,
                         ::testing::Values("gcc", "gap", "djpeg"));

}  // namespace
}  // namespace malec::sim
