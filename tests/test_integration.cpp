// End-to-end integration tests: whole-stack simulations asserting the
// paper's qualitative results (the quantitative sweeps live in bench/).
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/presets.h"
#include "trace/workloads.h"

namespace malec::sim {
namespace {

constexpr std::uint64_t kInstr = 40'000;

struct Bundle {
  RunOutput base1, base2, malec;
};

Bundle runBundle(const char* bench) {
  const auto outs = runConfigs(
      trace::workloadByName(bench),
      {presetBase1ldst(), presetBase2ld1st(), presetMalec()}, kInstr, 1);
  return Bundle{outs[0], outs[1], outs[2]};
}

TEST(Integration, MalecFasterThanBase1OnLocalWorkloads) {
  for (const char* bench : {"gcc", "gap", "djpeg", "eon"}) {
    const auto b = runBundle(bench);
    EXPECT_LT(b.malec.cycles, b.base1.cycles) << bench;
  }
}

TEST(Integration, MalecCloseToBase2Performance) {
  // Paper VI-B: MALEC is within a few percent of the physically
  // multi-ported Base2ld1st.
  for (const char* bench : {"gcc", "djpeg"}) {
    const auto b = runBundle(bench);
    const double gap = static_cast<double>(b.malec.cycles) /
                       static_cast<double>(b.base2.cycles);
    EXPECT_LT(gap, 1.10) << bench;
  }
}

TEST(Integration, MalecSavesEnergyBase2Wastes) {
  // Paper Fig. 4b: Base2ld1st costs more total energy than Base1ldst;
  // MALEC costs less.
  for (const char* bench : {"gcc", "gap", "djpeg", "eon", "mesa"}) {
    const auto b = runBundle(bench);
    EXPECT_GT(b.base2.total_pj, b.base1.total_pj * 1.15) << bench;
    EXPECT_LT(b.malec.total_pj, b.base1.total_pj * 0.95) << bench;
  }
}

TEST(Integration, WayCoverageHighOnLocalWorkloads) {
  // Paper Sec. V/VI-C: 94 % coverage on average.
  for (const char* bench : {"gcc", "djpeg", "gap"}) {
    const auto out = runOne([&] {
      RunConfig rc;
      rc.workload = trace::workloadByName(bench);
      rc.interface_cfg = presetMalec();
      rc.system = defaultSystem();
      rc.instructions = kInstr;
      return rc;
    }());
    EXPECT_GT(out.way_coverage, 0.80) << bench;
  }
}

TEST(Integration, StreamingWorkloadDefeatsWayDetermination) {
  // Paper VI-D: way prediction efficiency collapses for streaming mcf.
  RunConfig rc;
  rc.workload = trace::workloadByName("mcf");
  rc.interface_cfg = presetMalec();
  rc.system = defaultSystem();
  rc.instructions = kInstr;
  const auto out = runOne(rc);
  EXPECT_LT(out.way_coverage, 0.75);
  EXPECT_GT(out.l1_load_miss_rate, 0.10);  // ~7x the typical rate
}

TEST(Integration, FeedbackRaisesCoverage) {
  // Paper Sec. V: last-entry feedback lifts coverage substantially. Needs
  // enough instructions for TLB churn to build up (the repairs target way
  // information lost to TLB evictions).
  RunConfig rc;
  rc.workload = trace::workloadByName("gcc");
  rc.system = defaultSystem();
  rc.instructions = 60'000;
  rc.interface_cfg = presetMalecNoFeedback();
  const auto without = runOne(rc);
  rc.interface_cfg = presetMalec();
  const auto with = runOne(rc);
  EXPECT_GT(with.way_coverage, without.way_coverage + 0.03);
}

TEST(Integration, WtBeatsWduOnEnergy) {
  // Paper VI-C: substituting the WT with a WDU costs energy.
  RunConfig rc;
  rc.workload = trace::workloadByName("gcc");
  rc.system = defaultSystem();
  rc.instructions = kInstr;
  rc.interface_cfg = presetMalec();
  const auto wt = runOne(rc);
  rc.interface_cfg = presetMalecWdu(16);
  const auto wdu = runOne(rc);
  EXPECT_GT(wdu.total_pj, wt.total_pj);
  EXPECT_LT(wdu.way_coverage, wt.way_coverage);
}

TEST(Integration, MergingContributesSpeedup) {
  // Paper VI-B: disabling load merging costs performance on merge-friendly
  // workloads (gap/equake).
  RunConfig rc;
  rc.workload = trace::workloadByName("gap");
  rc.system = defaultSystem();
  rc.instructions = kInstr;
  rc.interface_cfg = presetMalec();
  const auto with = runOne(rc);
  rc.interface_cfg = presetMalecNoMerge();
  const auto without = runOne(rc);
  EXPECT_GT(with.merged_load_fraction, 0.03);
  EXPECT_GE(without.cycles, with.cycles);
  EXPECT_GT(without.dynamic_pj, with.dynamic_pj);
}

TEST(Integration, LatencyVariantsOrdered) {
  // Fig. 4a: 1-cycle Base2 fastest; 3-cycle MALEC slower than 2-cycle.
  const auto outs = runConfigs(trace::workloadByName("gcc"), fig4Configs(),
                               kInstr, 1);
  EXPECT_LT(outs[1].cycles, outs[2].cycles);  // Base2 1cyc < Base2 2cyc
  EXPECT_LT(outs[3].cycles, outs[4].cycles);  // MALEC 2cyc < MALEC 3cyc
}

TEST(Integration, EnergyAccountingBalances) {
  // The per-event breakdown must sum to the reported dynamic total.
  RunConfig rc;
  rc.workload = trace::workloadByName("eon");
  rc.interface_cfg = presetMalec();
  rc.system = defaultSystem();
  rc.instructions = kInstr;
  const auto out = runOne(rc);
  double sum = 0.0;
  for (const auto& [k, v] : out.energy_detail.all())
    if (k.rfind("dyn_pj.", 0) == 0) sum += v;
  EXPECT_NEAR(sum, out.dynamic_pj, out.dynamic_pj * 1e-9);
}

}  // namespace
}  // namespace malec::sim
