// Differential bit-identity harness for the exec-queue backends
// (tentpole gate of the hot-loop overhaul): the legacy binary-heap event
// queue and the calendar/bucket queue must produce bit-identical results —
// full RunOutput, every counter, byte-exact energy table — over the Table-I
// presets, on synthetic, trace-replay and phase-sampled workloads, serially
// and through runManyParallel. MALEC_LEGACY_EXEC_QUEUE / setExecQueueLegacy
// only ever flips between runs (backends bind at EventQueue construction).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/event_queue.h"
#include "phase/planner.h"
#include "phase/sample_plan.h"
#include "sim/differential.h"
#include "sim/presets.h"
#include "sim/registry.h"
#include "trace/workloads.h"

namespace malec::sim {
namespace {

std::string tmpPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

RunConfig baseConfig(const char* bench, core::InterfaceConfig cfg,
                     std::uint64_t instrs, std::uint64_t seed = 1) {
  RunConfig rc;
  rc.workload = trace::workloadByName(bench);
  rc.interface_cfg = std::move(cfg);
  rc.system = defaultSystem();
  rc.instructions = instrs;
  rc.seed = seed;
  return rc;
}

constexpr std::uint64_t kInstrs = 8000;

TEST(Differential, SyntheticAcrossTableIPresets) {
  for (const auto& make :
       {presetBase1ldst, presetBase2ld1st, presetMalec}) {
    const core::InterfaceConfig cfg = make();
    const std::string diff = diffRuns(baseConfig("gcc", cfg, kInstrs));
    EXPECT_EQ(diff, "") << cfg.name << " diverges on gcc:\n" << diff;
  }
}

TEST(Differential, SyntheticSecondWorkloadAndSeed) {
  const std::string diff =
      diffRuns(baseConfig("gap", presetMalec(), kInstrs, /*seed=*/7));
  EXPECT_EQ(diff, "") << diff;
}

TEST(Differential, TraceReplay) {
  const std::string path = tmpPath("differential_gcc.mtrace");
  captureTrace(baseConfig("gcc", presetMalec(), kInstrs), path);
  for (const auto& make : {presetBase2ld1st, presetMalec}) {
    RunConfig rc;
    rc.workload = traceWorkload(path);
    rc.interface_cfg = make();
    rc.system = defaultSystem();
    rc.instructions = 0;  // whole file
    const std::string diff = diffRuns(rc);
    EXPECT_EQ(diff, "") << rc.interface_cfg.name
                        << " diverges on trace replay:\n" << diff;
  }
  std::remove(path.c_str());
}

TEST(Differential, PhaseSampledReplay) {
  const std::string path = tmpPath("differential_sampled.mtrace");
  captureTrace(baseConfig("gap", presetMalec(), 3 * kInstrs), path);
  phase::PlanParams params;
  params.interval_size = kInstrs / 2;
  params.phases = 2;
  params.warmup_instructions = kInstrs / 4;
  const phase::SamplePlan plan = phase::buildSamplePlan(path, params);
  std::string err;
  ASSERT_TRUE(phase::saveSamplePlan(plan, phase::planSidecarPath(path), err))
      << err;

  RunConfig rc;
  rc.workload = sampledWorkload(traceWorkload(path));
  rc.interface_cfg = presetMalec();
  rc.system = defaultSystem();
  rc.instructions = 0;  // the plan decides what is simulated
  const std::string diff = diffRuns(rc);
  EXPECT_EQ(diff, "") << diff;
  std::remove(phase::planSidecarPath(path).c_str());
  std::remove(path.c_str());
}

TEST(Differential, ParallelBatch) {
  // The whole batch runs under one backend, then the other — the toggle
  // flips between batches, never inside one.
  std::vector<RunConfig> rcs;
  for (const auto& make :
       {presetBase1ldst, presetBase2ld1st, presetMalec}) {
    rcs.push_back(baseConfig("gcc", make(), kInstrs, /*seed=*/1));
    rcs.push_back(baseConfig("gap", make(), kInstrs, /*seed=*/3));
  }
  const std::string diff = diffRunsParallel(rcs, /*jobs=*/4);
  EXPECT_EQ(diff, "") << diff;
}

TEST(Differential, DiffOutputsActuallyDetectsDifferences) {
  // Guard the comparator itself: a harness that can never fail proves
  // nothing. Perturb one field at a time and expect it to be named.
  const RunOutput a = runOne(baseConfig("gcc", presetMalec(), 2000));
  RunOutput b = a;
  EXPECT_EQ(diffOutputs(a, b), "");
  b.cycles += 1;
  EXPECT_NE(diffOutputs(a, b).find("cycles"), std::string::npos);
  b = a;
  b.total_pj += 1.0;
  EXPECT_NE(diffOutputs(a, b).find("total_pj"), std::string::npos);
  b = a;
  b.core.loads += 1;
  EXPECT_NE(diffOutputs(a, b).find("core counter"), std::string::npos);
  b = a;
  b.ifc.loads_submitted += 1;
  EXPECT_NE(diffOutputs(a, b).find("ifc counter"), std::string::npos);
}

TEST(Differential, CheckpointCrossBackendRestore) {
  // The .mckpt format is backend-agnostic (EventQueue serializes the same
  // sorted (cycle, seq) pairs either way): a checkpoint written mid-run
  // under one backend must resume under the other and finish bit-identical
  // to the run that never stopped.
  const bool saved = core::execQueueLegacy();
  for (const bool write_legacy : {true, false}) {
    const std::string ckpt = tmpPath("differential_cross.mckpt");
    RunConfig rc = baseConfig("gcc", presetMalec(), kInstrs);

    core::setExecQueueLegacy(write_legacy);
    const RunOutput straight = runOne(rc);
    RunConfig writing = rc;
    writing.ckpt_out = ckpt;
    writing.ckpt_every = kInstrs / 2;
    (void)runOne(writing);

    core::setExecQueueLegacy(!write_legacy);
    RunConfig resuming = rc;
    resuming.start_ckpt = ckpt;
    const RunOutput resumed = runOne(resuming);
    const std::string diff = diffOutputs(straight, resumed);
    EXPECT_EQ(diff, "")
        << (write_legacy ? "legacy->calendar" : "calendar->legacy")
        << " checkpoint resume diverged:\n" << diff;
    std::remove(ckpt.c_str());
  }
  core::setExecQueueLegacy(saved);
}

TEST(Differential, BackendRestoredAfterDiff) {
  const bool before = core::execQueueLegacy();
  (void)diffRuns(baseConfig("gcc", presetBase1ldst(), 1000));
  EXPECT_EQ(core::execQueueLegacy(), before);
}

}  // namespace
}  // namespace malec::sim
