// Phase subsystem units: the BBV-style interval profiler, the
// deterministic k-means clusterer and the trace -> SamplePlan planner.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "phase/interval_profiler.h"
#include "phase/kmeans.h"
#include "phase/planner.h"
#include "sim/experiment.h"
#include "sim/presets.h"
#include "trace/workloads.h"

namespace malec::phase {
namespace {

std::string tmpPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

trace::InstrRecord load(std::uint64_t seq, Addr vaddr) {
  trace::InstrRecord r;
  r.seq = seq;
  r.kind = trace::InstrKind::kLoad;
  r.vaddr = vaddr;
  r.size = 8;
  return r;
}

trace::InstrRecord alu(std::uint64_t seq) {
  trace::InstrRecord r;
  r.seq = seq;
  r.kind = trace::InstrKind::kOther;
  return r;
}

TEST(IntervalProfiler, CutsFixedIntervalsAndKeepsPartialTail) {
  IntervalProfiler::Params p;
  p.interval_size = 100;
  IntervalProfiler prof(AddressLayout{}, p);
  for (std::uint64_t i = 0; i < 250; ++i)
    prof.observe(i % 2 == 0 ? load(i, 0x1000 + 8 * i) : alu(i));
  const auto intervals = prof.finish();
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0].instructions, 100u);
  EXPECT_EQ(intervals[1].instructions, 100u);
  EXPECT_EQ(intervals[2].instructions, 50u);  // partial tail kept
  EXPECT_EQ(intervals[0].index, 0u);
  EXPECT_EQ(intervals[2].index, 2u);
  EXPECT_EQ(intervals[0].loads, 50u);
  EXPECT_EQ(intervals[0].mem_refs, 50u);
  EXPECT_EQ(intervals[0].stores, 0u);
  // All intervals share one feature dimension; components are fractions.
  const std::size_t dim = intervals[0].vec.size();
  for (const auto& f : intervals) {
    ASSERT_EQ(f.vec.size(), dim);
    for (double v : f.vec) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(IntervalProfiler, DistinguishesAddressRegions) {
  IntervalProfiler::Params p;
  p.interval_size = 64;
  IntervalProfiler prof(AddressLayout{}, p);
  // Interval 0 walks low pages, interval 1 walks far-away pages: their
  // region histograms must differ.
  for (std::uint64_t i = 0; i < 64; ++i)
    prof.observe(load(i, 0x1000 + 64 * i));
  for (std::uint64_t i = 0; i < 64; ++i)
    prof.observe(load(64 + i, 0x40000000 + 64 * i));
  const auto intervals = prof.finish();
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_NE(intervals[0].vec, intervals[1].vec);
}

TEST(KMeans, DeterministicForFixedSeed) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 40; ++i)
    pts.push_back({static_cast<double>(i % 4), static_cast<double>(i % 3)});
  const KMeansResult a = kmeansCluster(pts, {}, 4, 42);
  const KMeansResult b = kmeansCluster(pts, {}, 4, 42);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.representative, b.representative);
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.clusters, b.clusters);
}

TEST(KMeans, ClampsKAndCoversAllPoints) {
  std::vector<std::vector<double>> pts = {{0.0}, {1.0}, {10.0}};
  const KMeansResult r = kmeansCluster(pts, {}, 8, 1);
  EXPECT_LE(r.clusters, 3u);
  ASSERT_EQ(r.assignment.size(), 3u);
  std::uint64_t total = 0;
  for (std::uint64_t w : r.weight) total += w;
  EXPECT_EQ(total, 3u);  // unweighted points count 1 each
  for (std::uint32_t c = 0; c < r.clusters; ++c) {
    ASSERT_LT(r.representative[c], pts.size());
    // A representative belongs to the cluster it represents.
    EXPECT_EQ(r.assignment[r.representative[c]], c);
  }
}

TEST(KMeans, SeparatesObviousClustersAndSumsWeights) {
  std::vector<std::vector<double>> pts;
  std::vector<std::uint64_t> weights;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({0.0 + 0.01 * i});
    weights.push_back(100);
  }
  for (int i = 0; i < 5; ++i) {
    pts.push_back({100.0 + 0.01 * i});
    weights.push_back(7);
  }
  const KMeansResult r = kmeansCluster(pts, weights, 2, 3);
  ASSERT_EQ(r.clusters, 2u);
  // Points 0..9 share a cluster, 10..14 the other.
  for (int i = 1; i < 10; ++i) EXPECT_EQ(r.assignment[i], r.assignment[0]);
  for (int i = 11; i < 15; ++i) EXPECT_EQ(r.assignment[i], r.assignment[10]);
  EXPECT_NE(r.assignment[0], r.assignment[10]);
  std::uint64_t total = 0;
  for (std::uint64_t w : r.weight) total += w;
  EXPECT_EQ(total, 10u * 100u + 5u * 7u);
}

TEST(Planner, BuildsValidatedPlanBoundToTrace) {
  const std::string path = tmpPath("planner.mtrace");
  sim::RunConfig rc;
  rc.workload = trace::workloadByName("gcc");
  rc.interface_cfg = sim::presetMalec();
  rc.system = sim::defaultSystem();
  rc.instructions = 25'000;
  EXPECT_EQ(sim::captureTrace(rc, path), 25'000u);

  PlanParams params;
  params.interval_size = 5'000;
  params.phases = 3;
  params.warmup_instructions = 1'000;
  PlanSummary summary;
  const SamplePlan plan = buildSamplePlan(path, params, &summary);

  EXPECT_EQ(summary.intervals, 5u);
  EXPECT_EQ(plan.trace_records, 25'000u);
  EXPECT_NE(plan.trace_checksum, 0u);
  EXPECT_EQ(plan.interval_size, 5'000u);
  EXPECT_EQ(plan.warmup_instructions, 1'000u);
  EXPECT_EQ(plan.totalIntervals(), 5u);
  ASSERT_GE(plan.picks.size(), 1u);
  ASSERT_LE(plan.picks.size(), 3u);
  std::uint64_t weight_sum = 0;
  for (std::size_t i = 0; i < plan.picks.size(); ++i) {
    EXPECT_LT(plan.picks[i].interval_index, 5u);
    if (i > 0) {
      EXPECT_GT(plan.picks[i].interval_index,
                plan.picks[i - 1].interval_index);
    }
    weight_sum += plan.picks[i].weight_instructions;
  }
  EXPECT_EQ(weight_sum, 25'000u);
  EXPECT_GT(plan.simulatedInstructions(), 0u);
  EXPECT_LE(plan.simulatedInstructions(), 25'000u);

  // Planning is deterministic: same trace + params -> identical plan.
  const SamplePlan again = buildSamplePlan(path, params);
  ASSERT_EQ(again.picks.size(), plan.picks.size());
  for (std::size_t i = 0; i < plan.picks.size(); ++i) {
    EXPECT_EQ(again.picks[i].interval_index, plan.picks[i].interval_index);
    EXPECT_EQ(again.picks[i].weight_instructions,
              plan.picks[i].weight_instructions);
  }
  std::remove(path.c_str());
}

TEST(PlannerDeathTest, MissingTraceAborts) {
  EXPECT_DEATH((void)buildSamplePlan("/nonexistent/x.mtrace", PlanParams{}),
               "cannot open");
}

}  // namespace
}  // namespace malec::phase
