#include "mem/l1_cache.h"

#include <gtest/gtest.h>

#include <set>

namespace malec::mem {
namespace {

L1Cache::Params defaults(bool restrict_ways = false) {
  L1Cache::Params p;
  p.restrict_alloc_ways = restrict_ways;
  return p;
}

TEST(L1Cache, MissThenHitAfterFill) {
  L1Cache l1(defaults());
  const Addr a = 0x1234'5640;
  EXPECT_FALSE(l1.probe(a).has_value());
  const auto fill = l1.fill(a);
  EXPECT_FALSE(fill.evicted);
  const auto way = l1.probe(a);
  ASSERT_TRUE(way.has_value());
  EXPECT_EQ(*way, fill.way);
}

TEST(L1Cache, WholeLineHits) {
  L1Cache l1(defaults());
  const Addr base = 0x4'0000;
  l1.fill(base);
  for (Addr off = 0; off < 64; off += 8)
    EXPECT_TRUE(l1.probe(base + off).has_value());
  EXPECT_FALSE(l1.probe(base + 64).has_value());
}

TEST(L1Cache, FillsSameSetUntilEviction) {
  L1Cache l1(defaults());
  const AddressLayout& L = l1.layout();
  // Five different tags mapping to the same set: 4 fills fit, the fifth
  // evicts the LRU.
  const Addr stride = static_cast<Addr>(L.l1Sets()) * L.lineBytes();
  std::vector<Addr> lines;
  for (int i = 0; i < 5; ++i) lines.push_back(0x10'0000 + i * stride);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(l1.fill(lines[i]).evicted);
  // Touch line 0 so line 1 is LRU.
  l1.touch(lines[0], *l1.probe(lines[0]));
  const auto fill = l1.fill(lines[4]);
  EXPECT_TRUE(fill.evicted);
  EXPECT_EQ(fill.evicted_line_base, lines[1]);
  EXPECT_FALSE(l1.probe(lines[1]).has_value());
}

TEST(L1Cache, EvictedDirtyFlagPropagates) {
  L1Cache l1(defaults());
  const AddressLayout& L = l1.layout();
  const Addr stride = static_cast<Addr>(L.l1Sets()) * L.lineBytes();
  for (int i = 0; i < 4; ++i) {
    const auto f = l1.fill(0x20'0000 + i * stride);
    if (i == 0) l1.markDirty(0x20'0000, f.way);
  }
  // Evicting the dirty line 0 must report dirty.
  const auto fill = l1.fill(0x20'0000 + 4 * stride);
  EXPECT_TRUE(fill.evicted);
  EXPECT_TRUE(fill.evicted_dirty);
}

TEST(L1Cache, InvalidateReportsDirtiness) {
  L1Cache l1(defaults());
  const Addr a = 0x9000;
  const auto f = l1.fill(a);
  l1.markDirty(a, f.way);
  const auto inv = l1.invalidate(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE(*inv);
  EXPECT_FALSE(l1.probe(a).has_value());
  EXPECT_FALSE(l1.invalidate(a).has_value());
}

TEST(L1Cache, ExcludedWayRotatesWithLineAndPage) {
  L1Cache l1(defaults(true));
  const AddressLayout& L = l1.layout();
  // Within one page, lines 0..3 share an exclusion, lines 4..7 the next.
  const Addr page = 0x30'0000;
  const std::uint32_t e0 = l1.excludedWay(page);
  EXPECT_EQ(l1.excludedWay(page + 1 * 64), e0);
  EXPECT_EQ(l1.excludedWay(page + 3 * 64), e0);
  EXPECT_EQ(l1.excludedWay(page + 4 * 64), (e0 + 1) % L.l1Assoc());
  EXPECT_EQ(l1.excludedWay(page + 8 * 64), (e0 + 2) % L.l1Assoc());
  // A different page rotates the exclusion.
  EXPECT_EQ(l1.excludedWay(page + L.pageBytes()),
            (e0 + 1) % L.l1Assoc());
}

TEST(L1Cache, RestrictedFillNeverUsesExcludedWay) {
  L1Cache l1(defaults(true));
  const AddressLayout& L = l1.layout();
  const Addr stride = static_cast<Addr>(L.l1Sets()) * L.lineBytes();
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const Addr a = (0x100'0000 + rng.below(1u << 22)) & ~0x3Full;
    if (l1.probe(a).has_value()) continue;
    const auto f = l1.fill(a);
    ASSERT_NE(static_cast<std::uint32_t>(f.way), l1.excludedWay(a))
        << "line filled into its WT-excluded way";
  }
  (void)stride;
}

TEST(L1Cache, UnrestrictedFillUsesAllWays) {
  L1Cache l1(defaults(false));
  const AddressLayout& L = l1.layout();
  const Addr stride = static_cast<Addr>(L.l1Sets()) * L.lineBytes();
  std::set<WayIdx> ways;
  for (int i = 0; i < 8; ++i) ways.insert(l1.fill(0x50'0000 + i * stride).way);
  EXPECT_EQ(ways.size(), L.l1Assoc());
}

TEST(L1Cache, ValidLineCountTracksFills) {
  L1Cache l1(defaults());
  EXPECT_EQ(l1.validLines(), 0u);
  l1.fill(0x1000);
  l1.fill(0x2000);
  EXPECT_EQ(l1.validLines(), 2u);
  EXPECT_EQ(l1.fills(), 2u);
  l1.invalidate(0x1000);
  EXPECT_EQ(l1.validLines(), 1u);
}

TEST(L1Cache, CapacityNeverExceeded) {
  L1Cache l1(defaults(true));
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const Addr a = (rng.below(1u << 26)) & ~0x3Full;
    if (!l1.probe(a).has_value()) l1.fill(a);
  }
  EXPECT_LE(l1.validLines(), 512u);  // 32 KByte / 64 B
}

// Property: probe(paddr) after fill(paddr) always returns the filled way,
// for both allocation policies.
class L1FillProbeProperty : public ::testing::TestWithParam<bool> {};

TEST_P(L1FillProbeProperty, FillThenProbeConsistent) {
  L1Cache l1(defaults(GetParam()));
  Rng rng(23);
  for (int i = 0; i < 3000; ++i) {
    const Addr a = rng.below(1u << 24) & ~0x3Full;
    const auto pre = l1.probe(a);
    if (pre.has_value()) {
      l1.touch(a, *pre);
      continue;
    }

    const auto f = l1.fill(a);
    const auto post = l1.probe(a);
    ASSERT_TRUE(post.has_value());
    EXPECT_EQ(*post, f.way);
    if (f.evicted) {
      EXPECT_FALSE(l1.probe(f.evicted_line_base).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, L1FillProbeProperty,
                         ::testing::Bool());

}  // namespace
}  // namespace malec::mem
