#include "energy/energy_account.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace malec::energy {
namespace {

TEST(EnergyAccount, CountsTimesEnergy) {
  EnergyAccount ea;
  ea.defineEvent("read", 2.0);
  ea.defineEvent("write", 3.0);
  ea.count("read", 10);
  ea.count("write");
  EXPECT_DOUBLE_EQ(ea.dynamicPj(), 23.0);
  EXPECT_EQ(ea.eventCount("read"), 10u);
  EXPECT_DOUBLE_EQ(ea.eventEnergyPj("write"), 3.0);
}

TEST(EnergyAccount, LeakageIntegratesOverTime) {
  EnergyAccount ea;
  ea.defineLeakage("l1", 2.0);  // mW
  ea.defineLeakage("tlb", 1.0);
  // 1000 cycles at 1 GHz = 1000 ns; 3 mW * 1000 ns = 3000 pJ.
  EXPECT_DOUBLE_EQ(ea.leakagePj(1000, 1.0), 3000.0);
  // At 2 GHz the same cycle count lasts half as long.
  EXPECT_DOUBLE_EQ(ea.leakagePj(1000, 2.0), 1500.0);
  EXPECT_DOUBLE_EQ(ea.leakageMw(), 3.0);
}

TEST(EnergyAccount, TotalCombines) {
  EnergyAccount ea;
  ea.defineEvent("e", 5.0);
  ea.defineLeakage("s", 1.0);
  ea.count("e", 2);
  EXPECT_DOUBLE_EQ(ea.totalPj(100, 1.0), 10.0 + 100.0);
}

TEST(EnergyAccount, PrefixRollups) {
  EnergyAccount ea;
  ea.defineEvent("l1.tag_read", 1.0);
  ea.defineEvent("l1.data_read", 2.0);
  ea.defineEvent("tlb.search", 4.0);
  ea.count("l1.tag_read", 3);
  ea.count("l1.data_read", 3);
  ea.count("tlb.search", 1);
  EXPECT_DOUBLE_EQ(ea.dynamicPjFor("l1."), 9.0);
  EXPECT_DOUBLE_EQ(ea.dynamicPjFor("tlb."), 4.0);
  ea.defineLeakage("l1.tag", 0.5);
  ea.defineLeakage("l1.data", 1.5);
  ea.defineLeakage("wt", 0.25);
  EXPECT_DOUBLE_EQ(ea.leakageMwFor("l1."), 2.0);
}

TEST(EnergyAccount, RedefinitionOverwritesEnergyKeepsCount) {
  EnergyAccount ea;
  ea.defineEvent("e", 1.0);
  ea.count("e", 4);
  ea.defineEvent("e", 2.0);
  EXPECT_EQ(ea.eventCount("e"), 4u);
  EXPECT_DOUBLE_EQ(ea.dynamicPj(), 8.0);
}

TEST(EnergyAccount, ClearCountsKeepsDefinitions) {
  EnergyAccount ea;
  ea.defineEvent("e", 1.0);
  ea.count("e", 4);
  ea.clearCounts();
  EXPECT_EQ(ea.eventCount("e"), 0u);
  EXPECT_TRUE(ea.hasEvent("e"));
  ea.count("e");
  EXPECT_DOUBLE_EQ(ea.dynamicPj(), 1.0);
}

TEST(EnergyAccount, ReportContainsRollups) {
  EnergyAccount ea;
  ea.defineEvent("x", 2.0);
  ea.defineLeakage("s", 1.0);
  ea.count("x", 5);
  const StatSet r = ea.report(200, 1.0);
  EXPECT_DOUBLE_EQ(r.get("count.x"), 5.0);
  EXPECT_DOUBLE_EQ(r.get("dyn_pj.x"), 10.0);
  EXPECT_DOUBLE_EQ(r.get("leak_mw.s"), 1.0);
  EXPECT_DOUBLE_EQ(r.get("total.dynamic_pj"), 10.0);
  EXPECT_DOUBLE_EQ(r.get("total.leakage_pj"), 200.0);
  EXPECT_DOUBLE_EQ(r.get("total.energy_pj"), 210.0);
}

TEST(EnergyAccount, EventIdCountingMatchesStringCounting) {
  // Two accounts with identical definitions, one counted through cached
  // ids, one through the string API: report() must be byte-identical.
  EnergyAccount by_id;
  EnergyAccount by_name;
  const char* names[] = {"l1.ctrl", "l1.tag_read", "utlb.search", "wt.write"};
  std::vector<EnergyAccount::EventId> ids;
  double pj = 0.5;
  for (const char* n : names) {
    ids.push_back(by_id.defineEvent(n, pj));
    by_name.defineEvent(n, pj);
    pj += 1.25;
  }
  by_id.defineLeakage("l1.tag", 0.75);
  by_name.defineLeakage("l1.tag", 0.75);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    by_id.count(ids[i], i + 1);
    by_name.count(names[i], i + 1);
  }
  by_id.count(ids[0]);
  by_name.count(names[0]);
  EXPECT_EQ(by_id.report(1234, 2.0).toTable(),
            by_name.report(1234, 2.0).toTable());
  EXPECT_EQ(by_id.dynamicPj(), by_name.dynamicPj());
}

TEST(EnergyAccount, DefineEventReturnsStableDenseIds) {
  EnergyAccount ea;
  const auto a = ea.defineEvent("a", 1.0);
  const auto b = ea.defineEvent("b", 2.0);
  EXPECT_NE(a, b);
  EXPECT_EQ(ea.eventTypes(), 2u);
  // Redefinition keeps the id and the count, overwrites the energy.
  ea.count(a, 3);
  EXPECT_EQ(ea.defineEvent("a", 5.0), a);
  EXPECT_EQ(ea.eventCount(a), 3u);
  EXPECT_DOUBLE_EQ(ea.eventEnergyPj(a), 5.0);
  EXPECT_EQ(ea.eventTypes(), 2u);
}

TEST(EnergyAccount, ResolveEventDefinesZeroEnergyPlaceholder) {
  // Components resolve their ids at construction; the energy tables may
  // attach the real per-event energies afterwards.
  EnergyAccount ea;
  const auto id = ea.resolveEvent("l1.ctrl");
  EXPECT_TRUE(ea.hasEvent("l1.ctrl"));
  EXPECT_DOUBLE_EQ(ea.eventEnergyPj(id), 0.0);
  ea.count(id, 7);
  EXPECT_EQ(ea.defineEvent("l1.ctrl", 0.45), id);
  EXPECT_EQ(ea.eventCount("l1.ctrl"), 7u);
  EXPECT_DOUBLE_EQ(ea.dynamicPj(), 7 * 0.45);
}

TEST(EnergyAccount, StatGateDropsCountsWhileClosed) {
  EnergyAccount ea;
  const auto id = ea.defineEvent("l1.ctrl", 2.0);
  ea.count(id, 3);
  {
    StatGate gate(ea);  // closes the gate: warmup accesses charge nothing
    EXPECT_FALSE(ea.counting());
    ea.count(id, 100);
    ea.count("l1.ctrl", 100);  // the string path honours the gate too
    EXPECT_EQ(ea.eventCount(id), 3u);
    gate.open();
    EXPECT_TRUE(ea.counting());
    ea.count(id, 4);
  }
  EXPECT_EQ(ea.eventCount(id), 7u);
  EXPECT_DOUBLE_EQ(ea.dynamicPj(), 7 * 2.0);
}

TEST(EnergyAccount, StatGateNestsByRestoringPriorState) {
  EnergyAccount ea;
  const auto id = ea.defineEvent("l1.ctrl", 1.0);
  {
    StatGate outer(ea);
    {
      StatGate inner(ea);
      ea.count(id, 10);
    }  // the inner gate must NOT un-gate the still-closed outer scope
    EXPECT_FALSE(ea.counting());
    ea.count(id, 10);
  }
  EXPECT_TRUE(ea.counting());
  EXPECT_EQ(ea.eventCount(id), 0u);
}

TEST(EnergyAccount, StatGateReopensOnDestruction) {
  EnergyAccount ea;
  const auto id = ea.defineEvent("l1.ctrl", 1.0);
  {
    StatGate gate(ea);
    ea.count(id, 5);
  }  // never opened explicitly — the RAII exit must reopen anyway
  EXPECT_TRUE(ea.counting());
  ea.count(id, 2);
  EXPECT_EQ(ea.eventCount(id), 2u);
}

TEST(EnergyAccountDeath, CountingUndefinedEventAborts) {
  EnergyAccount ea;
  EXPECT_DEATH(ea.count("nope"), "nope");
}

TEST(EnergyAccountDeath, UnknownEventMessageNamesTheEvent) {
  EnergyAccount ea;
  ea.defineEvent("real.event", 1.0);
  // The failure message must carry the offending name (built from storage
  // owned by the failure path, not a dangling c_str of a temporary).
  EXPECT_DEATH(ea.count(std::string("bogus.") + "name"),
               "unknown energy event 'bogus.name'");
}

TEST(EnergyAccountDeath, OutOfRangeEventIdAborts) {
  EnergyAccount ea;
  ea.defineEvent("only", 1.0);
  EXPECT_DEATH(ea.count(static_cast<EnergyAccount::EventId>(99)), "events_");
}

}  // namespace
}  // namespace malec::energy
