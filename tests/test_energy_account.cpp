#include "energy/energy_account.h"

#include <gtest/gtest.h>

namespace malec::energy {
namespace {

TEST(EnergyAccount, CountsTimesEnergy) {
  EnergyAccount ea;
  ea.defineEvent("read", 2.0);
  ea.defineEvent("write", 3.0);
  ea.count("read", 10);
  ea.count("write");
  EXPECT_DOUBLE_EQ(ea.dynamicPj(), 23.0);
  EXPECT_EQ(ea.eventCount("read"), 10u);
  EXPECT_DOUBLE_EQ(ea.eventEnergyPj("write"), 3.0);
}

TEST(EnergyAccount, LeakageIntegratesOverTime) {
  EnergyAccount ea;
  ea.defineLeakage("l1", 2.0);  // mW
  ea.defineLeakage("tlb", 1.0);
  // 1000 cycles at 1 GHz = 1000 ns; 3 mW * 1000 ns = 3000 pJ.
  EXPECT_DOUBLE_EQ(ea.leakagePj(1000, 1.0), 3000.0);
  // At 2 GHz the same cycle count lasts half as long.
  EXPECT_DOUBLE_EQ(ea.leakagePj(1000, 2.0), 1500.0);
  EXPECT_DOUBLE_EQ(ea.leakageMw(), 3.0);
}

TEST(EnergyAccount, TotalCombines) {
  EnergyAccount ea;
  ea.defineEvent("e", 5.0);
  ea.defineLeakage("s", 1.0);
  ea.count("e", 2);
  EXPECT_DOUBLE_EQ(ea.totalPj(100, 1.0), 10.0 + 100.0);
}

TEST(EnergyAccount, PrefixRollups) {
  EnergyAccount ea;
  ea.defineEvent("l1.tag_read", 1.0);
  ea.defineEvent("l1.data_read", 2.0);
  ea.defineEvent("tlb.search", 4.0);
  ea.count("l1.tag_read", 3);
  ea.count("l1.data_read", 3);
  ea.count("tlb.search", 1);
  EXPECT_DOUBLE_EQ(ea.dynamicPjFor("l1."), 9.0);
  EXPECT_DOUBLE_EQ(ea.dynamicPjFor("tlb."), 4.0);
  ea.defineLeakage("l1.tag", 0.5);
  ea.defineLeakage("l1.data", 1.5);
  ea.defineLeakage("wt", 0.25);
  EXPECT_DOUBLE_EQ(ea.leakageMwFor("l1."), 2.0);
}

TEST(EnergyAccount, RedefinitionOverwritesEnergyKeepsCount) {
  EnergyAccount ea;
  ea.defineEvent("e", 1.0);
  ea.count("e", 4);
  ea.defineEvent("e", 2.0);
  EXPECT_EQ(ea.eventCount("e"), 4u);
  EXPECT_DOUBLE_EQ(ea.dynamicPj(), 8.0);
}

TEST(EnergyAccount, ClearCountsKeepsDefinitions) {
  EnergyAccount ea;
  ea.defineEvent("e", 1.0);
  ea.count("e", 4);
  ea.clearCounts();
  EXPECT_EQ(ea.eventCount("e"), 0u);
  EXPECT_TRUE(ea.hasEvent("e"));
  ea.count("e");
  EXPECT_DOUBLE_EQ(ea.dynamicPj(), 1.0);
}

TEST(EnergyAccount, ReportContainsRollups) {
  EnergyAccount ea;
  ea.defineEvent("x", 2.0);
  ea.defineLeakage("s", 1.0);
  ea.count("x", 5);
  const StatSet r = ea.report(200, 1.0);
  EXPECT_DOUBLE_EQ(r.get("count.x"), 5.0);
  EXPECT_DOUBLE_EQ(r.get("dyn_pj.x"), 10.0);
  EXPECT_DOUBLE_EQ(r.get("leak_mw.s"), 1.0);
  EXPECT_DOUBLE_EQ(r.get("total.dynamic_pj"), 10.0);
  EXPECT_DOUBLE_EQ(r.get("total.leakage_pj"), 200.0);
  EXPECT_DOUBLE_EQ(r.get("total.energy_pj"), 210.0);
}

TEST(EnergyAccountDeath, CountingUndefinedEventAborts) {
  EnergyAccount ea;
  EXPECT_DEATH(ea.count("nope"), "nope");
}

}  // namespace
}  // namespace malec::energy
