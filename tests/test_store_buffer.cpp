#include "lsq/store_buffer.h"

#include <gtest/gtest.h>

namespace malec::lsq {
namespace {

StoreBuffer makeSb(std::uint32_t cap = 24) {
  return StoreBuffer(cap, AddressLayout{});
}

TEST(StoreBuffer, InsertAndCapacity) {
  StoreBuffer sb = makeSb(2);
  sb.insert(1, 0x1000, 8);
  EXPECT_FALSE(sb.full());
  sb.insert(2, 0x2000, 8);
  EXPECT_TRUE(sb.full());
  EXPECT_EQ(sb.size(), 2u);
}

TEST(StoreBuffer, CommittedDrainInOrder) {
  StoreBuffer sb = makeSb();
  sb.insert(1, 0x1000, 8);
  sb.insert(2, 0x2000, 8);
  sb.insert(3, 0x3000, 8);
  EXPECT_FALSE(sb.popCommitted().has_value());
  sb.markCommitted(2);
  sb.markCommitted(1);
  // Oldest committed first (buffer order, not commit order).
  auto e = sb.popCommitted();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 1u);
  e = sb.popCommitted();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 2u);
  EXPECT_FALSE(sb.popCommitted().has_value());
  EXPECT_EQ(sb.size(), 1u);  // store 3 still speculative
}

TEST(StoreBuffer, ForwardingRequiresFullContainment) {
  StoreBuffer sb = makeSb();
  sb.insert(1, 0x1000, 8);
  EXPECT_TRUE(sb.coversLoad(0x1000, 8, false));
  EXPECT_TRUE(sb.coversLoad(0x1004, 4, false));
  EXPECT_FALSE(sb.coversLoad(0x1004, 8, false));  // spills past the store
  EXPECT_FALSE(sb.coversLoad(0x0FFC, 8, false));  // starts before it
  EXPECT_FALSE(sb.coversLoad(0x2000, 8, false));
  EXPECT_EQ(sb.forwards(), 2u);
}

TEST(StoreBuffer, SplitLookupSameResultFewerNarrowCompares) {
  StoreBuffer sb = makeSb();
  // Three stores on one page, one on another.
  sb.insert(1, 0x10'1000, 8);
  sb.insert(2, 0x10'1010, 8);
  sb.insert(3, 0x10'1020, 8);
  sb.insert(4, 0x20'0000, 8);

  EXPECT_TRUE(sb.coversLoad(0x10'1010, 8, /*split=*/true));
  EXPECT_TRUE(sb.coversLoad(0x10'1010, 8, /*split=*/false));
  // Split organisation: 4 shared page compares, but only the 3 same-page
  // entries activate the narrow offset comparators (paper Sec. IV).
  EXPECT_EQ(sb.pageCompares(), 4u);
  EXPECT_EQ(sb.offsetCompares(), 3u);
  EXPECT_EQ(sb.fullWidthCompares(), 4u);
}

// ORDER CONTRACT regression: commits arrive in arbitrary order relative to
// buffer (insertion) order, pops interleave with fresh inserts, and
// popCommitted must always yield the lowest-index committed entry — the
// committed bitmask has to shift correctly over every erase, or a later pop
// returns the wrong store (silent wrong-data forwarding downstream).
TEST(StoreBuffer, OrderContractCommitMaskSurvivesInterleavedPops) {
  StoreBuffer sb = makeSb();
  sb.insert(1, 0x1000, 8);
  sb.insert(2, 0x2000, 8);
  sb.insert(3, 0x3000, 8);
  sb.insert(4, 0x4000, 8);
  sb.markCommitted(3);  // out of buffer order
  sb.markCommitted(1);
  auto e = sb.popCommitted();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 1u);  // lowest committed index, not first commit
  sb.insert(5, 0x5000, 8);  // new youngest while 3 is still pending
  sb.markCommitted(4);
  e = sb.popCommitted();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 3u);  // mask shifted over the erase of seq 1
  e = sb.popCommitted();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 4u);
  EXPECT_FALSE(sb.popCommitted().has_value());
  sb.markCommitted(2);
  sb.markCommitted(5);
  e = sb.popCommitted();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 2u);  // still older than 5 in buffer order
  e = sb.popCommitted();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 5u);
  EXPECT_EQ(sb.size(), 0u);
}

TEST(StoreBuffer, OverlapDetection) {
  StoreBuffer sb = makeSb();
  sb.insert(1, 0x1000, 8);
  EXPECT_TRUE(sb.hasOverlap(0x1004, 8));   // partial overlap
  EXPECT_TRUE(sb.hasOverlap(0x0FFC, 8));   // tail overlap
  EXPECT_FALSE(sb.hasOverlap(0x1008, 8));  // adjacent, no overlap
  EXPECT_FALSE(sb.hasOverlap(0x0FF0, 8));
}

TEST(StoreBuffer, TableIICapacityDefault) {
  StoreBuffer sb = makeSb();
  for (std::uint32_t i = 0; i < 24; ++i) sb.insert(i, 0x1000 + i * 8, 8);
  EXPECT_TRUE(sb.full());
}

TEST(StoreBufferDeath, OverflowAborts) {
  StoreBuffer sb = makeSb(1);
  sb.insert(1, 0x1000, 8);
  EXPECT_DEATH(sb.insert(2, 0x2000, 8), "overflow");
}

TEST(StoreBufferDeath, CommitUnknownAborts) {
  StoreBuffer sb = makeSb();
  EXPECT_DEATH(sb.markCommitted(5), "unknown");
}

}  // namespace
}  // namespace malec::lsq
