#include "core/translation_engine.h"

#include <gtest/gtest.h>

namespace malec::core {
namespace {

energy::EnergyAccount makeAccount() {
  energy::EnergyAccount ea;
  for (const char* e : {"utlb.search", "tlb.search", "utlb.psearch",
                        "tlb.psearch", "uwt.read", "uwt.write", "wt.read",
                        "wt.write"})
    ea.defineEvent(e, 1.0);
  return ea;
}

TranslationEngine::Params params(bool way_tables,
                                 std::uint32_t utlb = 16,
                                 std::uint32_t tlb = 64) {
  TranslationEngine::Params p;
  p.way_tables = way_tables;
  p.utlb_entries = utlb;
  p.tlb_entries = tlb;
  p.walk_latency = 30;
  return p;
}

TEST(TranslationEngine, ColdTranslationWalks) {
  auto ea = makeAccount();
  TranslationEngine te(params(true), ea);
  const auto r = te.translate(100);
  EXPECT_FALSE(r.utlb_hit);
  EXPECT_FALSE(r.tlb_hit);
  EXPECT_EQ(r.extra_latency, 30u);
  EXPECT_EQ(ea.eventCount("utlb.search"), 1u);
  EXPECT_EQ(ea.eventCount("tlb.search"), 1u);
}

TEST(TranslationEngine, SecondTranslationHitsUtlb) {
  auto ea = makeAccount();
  TranslationEngine te(params(true), ea);
  const auto first = te.translate(100);
  const auto second = te.translate(100);
  EXPECT_TRUE(second.utlb_hit);
  EXPECT_EQ(second.extra_latency, 0u);
  EXPECT_EQ(second.ppage, first.ppage);
  EXPECT_EQ(ea.eventCount("uwt.read"), 1u);  // delivered with the hit
}

TEST(TranslationEngine, UtlbEvictionFallsBackToTlb) {
  auto ea = makeAccount();
  TranslationEngine te(params(true, /*utlb=*/2, /*tlb=*/64), ea);
  te.translate(1);
  te.translate(2);
  te.translate(3);  // evicts one of {1,2} from the 2-entry uTLB
  // All three pages remain TLB-resident: a re-touch is at worst +1 cycle.
  for (PageId p = 1; p <= 3; ++p) {
    const auto r = te.translate(p);
    EXPECT_LE(r.extra_latency, 1u) << p;
  }
}

TEST(TranslationEngine, TranslationsAreStable) {
  auto ea = makeAccount();
  TranslationEngine te(params(true), ea);
  const PageId p1 = te.translate(500).ppage;
  for (int i = 0; i < 5; ++i) EXPECT_EQ(te.translate(500).ppage, p1);
}

TEST(TranslationEngine, WayFlowFillLookupEvict) {
  auto ea = makeAccount();
  TranslationEngine te(params(true), ea);
  const auto tr = te.translate(100);
  const AddressLayout L;
  const Addr vaddr = L.compose(100, 0x340);
  const Addr paddr = L.compose(tr.ppage, 0x340);

  // Unknown before any fill.
  EXPECT_EQ(te.wayFor(tr.uwt_slot, vaddr), kWayUnknown);
  // Line fill records the way (reverse physical lookup -> uWT).
  te.onLineFill(L.lineBase(paddr), 2);
  EXPECT_EQ(te.wayFor(tr.uwt_slot, vaddr), 2);
  EXPECT_GE(ea.eventCount("utlb.psearch"), 1u);
  // Eviction clears it.
  te.onLineEvict(L.lineBase(paddr));
  EXPECT_EQ(te.wayFor(tr.uwt_slot, vaddr), kWayUnknown);
}

TEST(TranslationEngine, FeedbackRepairsUnknown) {
  auto ea = makeAccount();
  TranslationEngine te(params(true), ea);
  const auto tr = te.translate(100);
  const AddressLayout L;
  const Addr vaddr = L.compose(100, 0x100);

  EXPECT_EQ(te.wayFor(tr.uwt_slot, vaddr), kWayUnknown);
  // A conventional access hit way 1: the last-entry register lets the uWT
  // be repaired without a uTLB lookup (Sec. V).
  te.feedbackConventionalHit(100, vaddr, 1);
  EXPECT_EQ(te.wayFor(tr.uwt_slot, vaddr), 1);
  EXPECT_EQ(te.feedbackUpdates(), 1u);
}

TEST(TranslationEngine, FeedbackDisabledDoesNothing) {
  auto ea = makeAccount();
  auto p = params(true);
  p.last_entry_feedback = false;
  TranslationEngine te(p, ea);
  const auto tr = te.translate(100);
  te.feedbackConventionalHit(100, AddressLayout{}.compose(100, 0), 1);
  EXPECT_EQ(te.wayFor(tr.uwt_slot, AddressLayout{}.compose(100, 0)),
            kWayUnknown);
  EXPECT_EQ(te.feedbackUpdates(), 0u);
}

TEST(TranslationEngine, WithoutWayTablesAlwaysUnknown) {
  auto ea = makeAccount();
  TranslationEngine te(params(false), ea);
  const auto tr = te.translate(100);
  te.onLineFill(0x1000, 2);
  EXPECT_EQ(te.wayFor(tr.uwt_slot, 0x1000), kWayUnknown);
  EXPECT_EQ(ea.eventCount("uwt.read"), 0u);
  EXPECT_EQ(ea.eventCount("utlb.psearch"), 0u);
}

TEST(TranslationEngine, UwtWritebackToWtOnEviction) {
  auto ea = makeAccount();
  TranslationEngine te(params(true, /*utlb=*/1, /*tlb=*/64), ea);
  const AddressLayout L;
  // Page 100: learn a way while uTLB-resident.
  const auto tr1 = te.translate(100);
  const Addr paddr1 = L.compose(tr1.ppage, 0);
  te.onLineFill(L.lineBase(paddr1), 3);
  // Translating page 200 evicts page 100 from the 1-entry uTLB; the entry
  // must be written back to the WT and restored on the next touch.
  te.translate(200);
  EXPECT_GE(ea.eventCount("wt.write"), 1u);
  const auto tr1b = te.translate(100);
  EXPECT_EQ(te.wayFor(tr1b.uwt_slot, L.compose(100, 0)), 3);
}

TEST(TranslationEngine, TlbEvictionLosesWayInformation) {
  auto ea = makeAccount();
  TranslationEngine te(params(true, /*utlb=*/1, /*tlb=*/2), ea);
  const AddressLayout L;
  const auto tr = te.translate(100);
  te.onLineFill(L.lineBase(L.compose(tr.ppage, 0)), 2);
  // Two more pages displace page 100 from the 2-entry TLB entirely.
  te.translate(200);
  te.translate(300);
  // On re-access the page walks again and way info is gone (Sec. V).
  const auto tr2 = te.translate(100);
  EXPECT_EQ(tr2.extra_latency, 30u);
  EXPECT_EQ(te.wayFor(tr2.uwt_slot, L.compose(100, 0)), kWayUnknown);
}

TEST(TranslationEngine, FillForNonResidentPageUpdatesWtOnly) {
  auto ea = makeAccount();
  TranslationEngine te(params(true, /*utlb=*/1, /*tlb=*/64), ea);
  const AddressLayout L;
  const auto tr100 = te.translate(100);
  const Addr paddr100 = L.compose(tr100.ppage, 0);
  te.translate(200);  // 100 leaves the uTLB but stays in the TLB
  const auto uwt_writes = ea.eventCount("uwt.write");
  te.onLineFill(L.lineBase(paddr100), 1);
  // The fill must land in the WT (uWT has no entry for page 100).
  EXPECT_EQ(ea.eventCount("uwt.write"), uwt_writes);
  EXPECT_GE(ea.eventCount("tlb.psearch"), 1u);
  const auto back = te.translate(100);
  EXPECT_EQ(te.wayFor(back.uwt_slot, L.compose(100, 0)), 1);
}

TEST(TranslationEngine, CoverageCountersTrack) {
  auto ea = makeAccount();
  TranslationEngine te(params(true), ea);
  const auto tr = te.translate(100);
  const AddressLayout L;
  te.onLineFill(L.lineBase(L.compose(tr.ppage, 64)), 1);
  te.wayFor(tr.uwt_slot, L.compose(100, 64));   // known
  te.wayFor(tr.uwt_slot, L.compose(100, 128));  // unknown
  EXPECT_EQ(te.wayLookups(), 2u);
  EXPECT_EQ(te.wayKnown(), 1u);
}

}  // namespace
}  // namespace malec::core
