#include "waydet/way_info.h"

#include <gtest/gtest.h>

namespace malec::waydet {
namespace {

constexpr std::uint32_t kBanks = 4;
constexpr std::uint32_t kAssoc = 4;

TEST(WayInfo, ExcludedWayRotatesEveryFourLines) {
  // Paper Sec. V (salt 0): lines 0..3 exclude way 0, 4..7 way 1, ...
  EXPECT_EQ(excludedWay(0, 0, kBanks, kAssoc), 0u);
  EXPECT_EQ(excludedWay(3, 0, kBanks, kAssoc), 0u);
  EXPECT_EQ(excludedWay(4, 0, kBanks, kAssoc), 1u);
  EXPECT_EQ(excludedWay(8, 0, kBanks, kAssoc), 2u);
  EXPECT_EQ(excludedWay(12, 0, kBanks, kAssoc), 3u);
  EXPECT_EQ(excludedWay(16, 0, kBanks, kAssoc), 0u);
  EXPECT_EQ(excludedWay(63, 0, kBanks, kAssoc), 3u);
}

TEST(WayInfo, PageSaltRotatesExclusion) {
  for (std::uint32_t salt = 0; salt < 8; ++salt)
    EXPECT_EQ(excludedWay(0, salt, kBanks, kAssoc), salt % kAssoc);
}

TEST(WayInfo, ExcludedWayEncodesAsUnknown) {
  EXPECT_EQ(encodeWay(0, 0, kAssoc), kCodeUnknown);
  EXPECT_EQ(encodeWay(2, 2, kAssoc), kCodeUnknown);
}

TEST(WayInfo, UnknownDecodesToUnknown) {
  EXPECT_EQ(decodeWay(kCodeUnknown, 0, kAssoc), kWayUnknown);
  EXPECT_EQ(decodeWay(kCodeUnknown, 3, kAssoc), kWayUnknown);
}

TEST(WayInfo, ThreeRepresentableWaysPerExclusion) {
  // With way 1 excluded, codes 1..3 must cover ways {0, 2, 3}.
  EXPECT_EQ(decodeWay(1, 1, kAssoc), 0);
  EXPECT_EQ(decodeWay(2, 1, kAssoc), 2);
  EXPECT_EQ(decodeWay(3, 1, kAssoc), 3);
}

TEST(WayInfo, CodesFitInTwoBits) {
  for (std::uint32_t excl = 0; excl < kAssoc; ++excl)
    for (std::uint32_t way = 0; way < kAssoc; ++way)
      EXPECT_LT(encodeWay(way, excl, kAssoc), 4u);
}

// Property: encode/decode round-trips for every (way, excluded) pair except
// the excluded way itself, which must degrade to unknown — the exact
// invariant the 2-bit combined format relies on (Sec. V).
class WayCodeRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WayCodeRoundTrip, EncodeDecodeConsistent) {
  const auto [way_i, excl_i] = GetParam();
  const auto way = static_cast<std::uint32_t>(way_i);
  const auto excl = static_cast<std::uint32_t>(excl_i);
  const WayCode code = encodeWay(way, excl, kAssoc);
  if (way == excl) {
    EXPECT_EQ(code, kCodeUnknown);
  } else {
    ASSERT_NE(code, kCodeUnknown);
    EXPECT_EQ(decodeWay(code, excl, kAssoc),
              static_cast<WayIdx>(way));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, WayCodeRoundTrip,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

// Property: distinct representable ways get distinct codes.
TEST(WayInfo, EncodingIsInjective) {
  for (std::uint32_t excl = 0; excl < kAssoc; ++excl) {
    bool seen[4] = {};
    for (std::uint32_t way = 0; way < kAssoc; ++way) {
      if (way == excl) continue;
      const WayCode c = encodeWay(way, excl, kAssoc);
      EXPECT_FALSE(seen[c]) << "duplicate code " << int(c);
      seen[c] = true;
    }
  }
}

TEST(WayInfo, TwoWayAssociativityWorksToo) {
  // 2-way cache: 1 bit of way information, one excluded way.
  EXPECT_EQ(encodeWay(0, 0, 2), kCodeUnknown);
  const WayCode c = encodeWay(1, 0, 2);
  EXPECT_EQ(decodeWay(c, 0, 2), 1);
}

}  // namespace
}  // namespace malec::waydet
