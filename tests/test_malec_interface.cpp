#include "core/malec_interface.h"

#include <gtest/gtest.h>

#include "sim/presets.h"
#include "sim/structures.h"

namespace malec::core {
namespace {

struct Rig {
  explicit Rig(InterfaceConfig cfg = sim::presetMalec())
      : config(std::move(cfg)) {
    sim::defineEnergies(ea, config, sys);
    ifc = std::make_unique<MalecInterface>(config, sys, ea);
  }

  /// Run `n` idle cycles (begin+end), collecting completions.
  std::vector<SeqNum> cycles(std::uint32_t n) {
    std::vector<SeqNum> done;
    for (std::uint32_t i = 0; i < n; ++i) {
      ifc->beginCycle(now);
      ifc->drainCompletions(now, done);
      ifc->endCycle(now);
      ++now;
    }
    return done;
  }

  bool submitLoad(SeqNum seq, Addr a) {
    return ifc->submit(MemOp{seq, true, a, 8});
  }
  bool submitStore(SeqNum seq, Addr a) {
    return ifc->submit(MemOp{seq, false, a, 8});
  }

  InterfaceConfig config;
  SystemConfig sys;
  energy::EnergyAccount ea;
  std::unique_ptr<MalecInterface> ifc;
  Cycle now = 0;
};

constexpr Addr kPageA = 0x111 * 4096;
constexpr Addr kPageB = 0x222 * 4096;

TEST(MalecInterface, LoadMissCompletesAfterMemoryLatency) {
  Rig rig;
  rig.ifc->beginCycle(0);
  ASSERT_TRUE(rig.submitLoad(1, kPageA));
  rig.ifc->endCycle(0);
  rig.now = 1;
  // Cold access: page walk (30) defers translation; then L2+DRAM miss.
  const auto done = rig.cycles(150);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1u);
  EXPECT_EQ(rig.ifc->stats().load_l1_misses, 1u);
  EXPECT_TRUE(rig.ifc->quiesced());
}

TEST(MalecInterface, WarmLoadHitCompletesAtL1Latency) {
  Rig rig;
  rig.ifc->beginCycle(0);
  rig.submitLoad(1, kPageA);
  rig.ifc->endCycle(0);
  rig.now = 1;
  rig.cycles(150);

  // Same line again: uTLB hit, L1 hit, 2-cycle latency.
  rig.ifc->beginCycle(rig.now);
  rig.submitLoad(2, kPageA);
  const Cycle submit_cycle = rig.now;
  rig.ifc->endCycle(rig.now);
  ++rig.now;
  std::vector<SeqNum> done;
  while (done.empty() && rig.now < submit_cycle + 10) {
    rig.ifc->beginCycle(rig.now);
    rig.ifc->drainCompletions(rig.now, done);
    rig.ifc->endCycle(rig.now);
    ++rig.now;
  }
  ASSERT_EQ(done.size(), 1u);
  // Completion visible when drained at submit_cycle + l1_latency.
  EXPECT_EQ(rig.now - 1, submit_cycle + rig.config.l1_latency);
}

TEST(MalecInterface, SamePageLoadsServicedTogether) {
  Rig rig;
  // Warm up the page and two lines in different banks.
  rig.ifc->beginCycle(0);
  rig.submitLoad(1, kPageA);
  rig.ifc->endCycle(0);
  rig.now = 1;
  rig.cycles(150);
  rig.ifc->beginCycle(rig.now);
  rig.submitLoad(2, kPageA + 64);
  rig.ifc->endCycle(rig.now);
  ++rig.now;
  rig.cycles(150);

  const auto groups_before = rig.ifc->stats().groups;
  rig.ifc->beginCycle(rig.now);
  rig.submitLoad(3, kPageA);
  rig.submitLoad(4, kPageA + 64);
  rig.ifc->endCycle(rig.now);
  ++rig.now;
  const auto done = rig.cycles(5);
  EXPECT_EQ(done.size(), 2u);
  // Both were serviced in ONE page group (one translation).
  EXPECT_EQ(rig.ifc->stats().groups, groups_before + 1);
}

TEST(MalecInterface, CrossPageLoadsTakeTwoCycles) {
  Rig rig;
  // Warm both pages.
  for (Addr a : {kPageA, kPageB}) {
    rig.ifc->beginCycle(rig.now);
    rig.submitLoad(a == kPageA ? 1 : 2, a);
    rig.ifc->endCycle(rig.now);
    ++rig.now;
    rig.cycles(150);
  }
  // Two loads to different pages in the same cycle: the second page's load
  // must wait a cycle (one page per cycle, Sec. IV).
  rig.ifc->beginCycle(rig.now);
  rig.submitLoad(3, kPageA);
  rig.submitLoad(4, kPageB);
  const Cycle t0 = rig.now;
  rig.ifc->endCycle(rig.now);
  ++rig.now;

  std::vector<SeqNum> done;
  Cycle last_done = 0;
  while (done.size() < 2 && rig.now < t0 + 12) {
    rig.ifc->beginCycle(rig.now);
    const auto before = done.size();
    rig.ifc->drainCompletions(rig.now, done);
    if (done.size() > before) last_done = rig.now;
    rig.ifc->endCycle(rig.now);
    ++rig.now;
  }
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(last_done, t0 + 1 + rig.config.l1_latency);
}

TEST(MalecInterface, MergedLoadsShareOneDataRead) {
  Rig rig;
  rig.ifc->beginCycle(0);
  rig.submitLoad(1, kPageA);
  rig.ifc->endCycle(0);
  rig.now = 1;
  rig.cycles(150);

  const auto reads_before = rig.ea.eventCount("l1.data_read");
  rig.ifc->beginCycle(rig.now);
  rig.submitLoad(2, kPageA);       // same sub-block pair
  rig.submitLoad(3, kPageA + 16);  // adjacent sub-block: merges
  rig.ifc->endCycle(rig.now);
  ++rig.now;
  const auto done = rig.cycles(5);
  EXPECT_EQ(done.size(), 2u);
  EXPECT_EQ(rig.ifc->stats().merged_loads, 1u);
  EXPECT_EQ(rig.ea.eventCount("l1.data_read"), reads_before + 1);
}

TEST(MalecInterface, ReducedAccessAfterWarmup) {
  Rig rig;
  rig.ifc->beginCycle(0);
  rig.submitLoad(1, kPageA);
  rig.ifc->endCycle(0);
  rig.now = 1;
  rig.cycles(150);

  // The fill recorded the way; the next access must bypass the tags.
  const auto tag_before = rig.ea.eventCount("l1.tag_read");
  rig.ifc->beginCycle(rig.now);
  rig.submitLoad(2, kPageA + 8);
  rig.ifc->endCycle(rig.now);
  ++rig.now;
  rig.cycles(5);
  EXPECT_GE(rig.ifc->stats().reduced_accesses, 1u);
  EXPECT_EQ(rig.ea.eventCount("l1.tag_read"), tag_before);
}

TEST(MalecInterface, StoreDrainsThroughSbMbToCache) {
  Rig rig;
  rig.ifc->beginCycle(0);
  ASSERT_TRUE(rig.submitStore(1, kPageA));
  rig.ifc->endCycle(0);
  rig.now = 1;
  EXPECT_EQ(rig.ifc->storeBuffer().size(), 1u);
  rig.ifc->notifyStoreCommit(1);
  rig.cycles(3);
  EXPECT_EQ(rig.ifc->storeBuffer().size(), 0u);
  EXPECT_EQ(rig.ifc->mergeBuffer().size(), 1u);
}

TEST(MalecInterface, MbEvictionWritesL1) {
  Rig rig;
  // Fill the 4-entry Merge Buffer with distinct lines, then one more.
  for (SeqNum s = 1; s <= 5; ++s) {
    rig.ifc->beginCycle(rig.now);
    ASSERT_TRUE(rig.submitStore(s, kPageA + (s - 1) * 64));
    rig.ifc->endCycle(rig.now);
    ++rig.now;
    rig.ifc->notifyStoreCommit(s);
    rig.cycles(2);
  }
  // The evicted MBE flows through the Input Buffer into the cache.
  rig.cycles(200);
  EXPECT_GE(rig.ifc->stats().mbe_writes, 1u);
  EXPECT_TRUE(rig.ifc->quiesced());
}

TEST(MalecInterface, SbForwardingServesLoadWithoutL1) {
  Rig rig;
  rig.ifc->beginCycle(0);
  rig.submitStore(1, kPageA);
  rig.ifc->endCycle(0);
  rig.now = 1;
  // Load overlapping the uncommitted store: must forward from the SB.
  const auto l1_before = rig.ifc->stats().load_l1_accesses;
  rig.ifc->beginCycle(rig.now);
  rig.submitLoad(2, kPageA);
  rig.ifc->endCycle(rig.now);
  ++rig.now;
  const auto done = rig.cycles(40);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(rig.ifc->stats().sb_forwards, 1u);
  EXPECT_EQ(rig.ifc->stats().load_l1_accesses, l1_before);
}

TEST(MalecInterface, BackpressureWhenInputBufferFull) {
  Rig rig;
  rig.ifc->beginCycle(0);
  // Capacity: carry(2) + AGU(3) = 5 loads.
  for (SeqNum s = 1; s <= 5; ++s)
    ASSERT_TRUE(rig.submitLoad(s, kPageA + s * 4096 * 2));
  EXPECT_FALSE(rig.ifc->canAcceptLoad());
  EXPECT_FALSE(rig.submitLoad(6, kPageB));
  rig.ifc->endCycle(0);
  rig.now = 1;
  rig.cycles(400);
  EXPECT_TRUE(rig.ifc->quiesced());
}

TEST(MalecInterface, SbCapacityBackpressure) {
  Rig rig;
  rig.ifc->beginCycle(0);
  for (SeqNum s = 1; s <= rig.sys.sb_entries; ++s)
    ASSERT_TRUE(rig.submitStore(s, kPageA + s * 8));
  EXPECT_FALSE(rig.ifc->canAcceptStore());
  EXPECT_FALSE(rig.submitStore(99, kPageB));
  rig.ifc->endCycle(0);
}

TEST(MalecInterface, WduVariantCoversRepeatedLines) {
  Rig rig{sim::presetMalecWdu(16)};
  rig.ifc->beginCycle(0);
  rig.submitLoad(1, kPageA);
  rig.ifc->endCycle(0);
  rig.now = 1;
  rig.cycles(150);
  rig.ifc->beginCycle(rig.now);
  rig.submitLoad(2, kPageA + 8);
  rig.ifc->endCycle(rig.now);
  ++rig.now;
  rig.cycles(5);
  EXPECT_GE(rig.ifc->stats().way_known, 1u);
  EXPECT_GE(rig.ea.eventCount("wdu.search"), 1u);
}

}  // namespace
}  // namespace malec::core
