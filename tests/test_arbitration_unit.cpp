#include "core/arbitration_unit.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace malec::core {
namespace {

using Action = ArbOutcome::Action;

ArbCandidate ld(std::size_t idx, Addr a) {
  return ArbCandidate{idx, a, 8, false};
}
ArbCandidate mbe(std::size_t idx, Addr a) {
  return ArbCandidate{idx, a, 64, true};
}

ArbitrationUnit makeArb(std::uint32_t buses = 3, std::uint32_t window = 3,
                        bool merge = true, bool pair = true) {
  return ArbitrationUnit(
      ArbitrationUnit::Params{AddressLayout{}, buses, window, merge, pair});
}

// Page base chosen so line k of the page is at kPage + k*64; bank = k%4.
constexpr Addr kPage = 0x300 * 4096;

TEST(Arbitration, DistinctBanksAllWin) {
  ArbitrationUnit arb = makeArb();
  const auto out = arb.arbitrate(
      {ld(0, kPage + 0 * 64), ld(1, kPage + 1 * 64), ld(2, kPage + 2 * 64)});
  EXPECT_EQ(out.action[0], Action::kWinner);
  EXPECT_EQ(out.action[1], Action::kWinner);
  EXPECT_EQ(out.action[2], Action::kWinner);
  EXPECT_EQ(out.bank_conflicts, 0u);
}

TEST(Arbitration, SameBankDifferentLinesConflict) {
  ArbitrationUnit arb = makeArb();
  // Lines 0 and 4 both live in bank 0.
  const auto out =
      arb.arbitrate({ld(0, kPage + 0 * 64), ld(1, kPage + 4 * 64)});
  EXPECT_EQ(out.action[0], Action::kWinner);
  EXPECT_EQ(out.action[1], Action::kHeld);
  EXPECT_EQ(out.bank_conflicts, 1u);
}

TEST(Arbitration, SameSubBlockPairMerges) {
  ArbitrationUnit arb = makeArb();
  // Two loads within the same 32-byte sub-block pair of line 0.
  const auto out =
      arb.arbitrate({ld(0, kPage + 0), ld(1, kPage + 16)});
  EXPECT_EQ(out.action[0], Action::kWinner);
  EXPECT_EQ(out.action[1], Action::kMerged);
  EXPECT_EQ(out.winner_of[1], 0u);
}

TEST(Arbitration, DifferentPairsOfSameLineDoNotMerge) {
  ArbitrationUnit arb = makeArb();
  // Offsets 0 and 32 are in different sub-block pairs (but same line and
  // bank): the second load must wait.
  const auto out = arb.arbitrate({ld(0, kPage + 0), ld(1, kPage + 32)});
  EXPECT_EQ(out.action[1], Action::kHeld);
}

TEST(Arbitration, SingleSubBlockModeHalvesMergeReach) {
  // Without the adjacent-pair read, merging needs the same 128-bit
  // sub-block (paper Sec. IV: pair reads double merge probability).
  ArbitrationUnit arb = makeArb(3, 3, true, /*pair=*/false);
  const auto same_sub = arb.arbitrate({ld(0, kPage + 0), ld(1, kPage + 8)});
  EXPECT_EQ(same_sub.action[1], Action::kMerged);
  const auto next_sub = arb.arbitrate({ld(0, kPage + 0), ld(1, kPage + 16)});
  EXPECT_EQ(next_sub.action[1], Action::kHeld);
}

TEST(Arbitration, MergeWindowLimitsDistance) {
  ArbitrationUnit arb = makeArb(/*buses=*/8, /*window=*/1);
  // Candidate 2 is 2 positions after winner 0: outside a window of 1, and
  // its bank is already claimed, so it holds.
  const auto out = arb.arbitrate(
      {ld(0, kPage + 0), ld(1, kPage + 1 * 64), ld(2, kPage + 16)});
  EXPECT_EQ(out.action[0], Action::kWinner);
  EXPECT_EQ(out.action[2], Action::kHeld);
}

TEST(Arbitration, MergeDisabledHolds) {
  ArbitrationUnit arb = makeArb(3, 3, /*merge=*/false);
  const auto out = arb.arbitrate({ld(0, kPage + 0), ld(1, kPage + 16)});
  EXPECT_EQ(out.action[1], Action::kHeld);
}

TEST(Arbitration, ResultBusLimit) {
  ArbitrationUnit arb = makeArb(/*buses=*/2);
  const auto out = arb.arbitrate({ld(0, kPage + 0 * 64),
                                  ld(1, kPage + 1 * 64),
                                  ld(2, kPage + 2 * 64)});
  EXPECT_EQ(out.action[0], Action::kWinner);
  EXPECT_EQ(out.action[1], Action::kWinner);
  EXPECT_EQ(out.action[2], Action::kHeld);
  EXPECT_EQ(out.bus_rejects, 1u);
}

TEST(Arbitration, MergedLoadsConsumeBuses) {
  ArbitrationUnit arb = makeArb(/*buses=*/2);
  // Winner + merged partner exhaust both buses; the third load holds.
  const auto out = arb.arbitrate(
      {ld(0, kPage + 0), ld(1, kPage + 16), ld(2, kPage + 1 * 64)});
  EXPECT_EQ(out.action[0], Action::kWinner);
  EXPECT_EQ(out.action[1], Action::kMerged);
  EXPECT_EQ(out.action[2], Action::kHeld);
}

TEST(Arbitration, MbeServicedWhenBankFree) {
  ArbitrationUnit arb = makeArb();
  const auto out =
      arb.arbitrate({ld(0, kPage + 0 * 64), mbe(1, kPage + 1 * 64)});
  ASSERT_TRUE(out.mbe.has_value());
  EXPECT_EQ(*out.mbe, 1u);
}

TEST(Arbitration, MbeBlockedByBankConflict) {
  ArbitrationUnit arb = makeArb();
  // MBE targets bank 0, already claimed by the load.
  const auto out =
      arb.arbitrate({ld(0, kPage + 0 * 64), mbe(1, kPage + 4 * 64)});
  EXPECT_FALSE(out.mbe.has_value());
  EXPECT_EQ(out.action[1], Action::kHeld);
  EXPECT_EQ(out.bank_conflicts, 1u);
}

TEST(Arbitration, MbeNeedsNoResultBus) {
  ArbitrationUnit arb = makeArb(/*buses=*/1);
  const auto out =
      arb.arbitrate({ld(0, kPage + 0 * 64), mbe(1, kPage + 1 * 64)});
  EXPECT_EQ(out.action[0], Action::kWinner);
  EXPECT_TRUE(out.mbe.has_value());
}

TEST(Arbitration, EmptyGroupIsEmptyOutcome) {
  ArbitrationUnit arb = makeArb();
  const auto out = arb.arbitrate({});
  EXPECT_TRUE(out.action.empty());
  EXPECT_FALSE(out.mbe.has_value());
}

// Property sweep over bus counts: winners+merged never exceed the buses,
// at most one access per bank, and merged loads always point at a winner.
class ArbProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ArbProperty, StructuralInvariants) {
  const std::uint32_t buses = GetParam();
  ArbitrationUnit arb = makeArb(buses);
  Rng rng(buses * 7 + 1);
  const AddressLayout L;
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<ArbCandidate> cands;
    const std::size_t n = 1 + rng.below(6);
    for (std::size_t i = 0; i < n; ++i)
      cands.push_back(ld(i, kPage + rng.below(4096)));
    const auto out = arb.arbitrate(cands);

    std::uint32_t selected = 0;
    std::vector<int> bank_access(4, 0);
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (out.action[i] == Action::kWinner) {
        ++selected;
        ++bank_access[L.bankOf(cands[i].vaddr)];
      } else if (out.action[i] == Action::kMerged) {
        ++selected;
        const std::size_t w = out.winner_of[i];
        ASSERT_LT(w, cands.size());
        EXPECT_EQ(out.action[w], Action::kWinner);
        EXPECT_EQ(L.lineAddr(cands[w].vaddr), L.lineAddr(cands[i].vaddr));
        EXPECT_LE(i - w, 3u);  // merge window
      }
    }
    EXPECT_LE(selected, buses);
    for (int b : bank_access) EXPECT_LE(b, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(BusSweep, ArbProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

}  // namespace
}  // namespace malec::core
