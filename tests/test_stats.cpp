#include "common/stats.h"

#include <gtest/gtest.h>

namespace malec {
namespace {

TEST(Histogram, BucketEdgesInclusive) {
  Histogram h({1, 2, 4, 8});
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(5);
  h.add(8);
  h.add(9);
  EXPECT_EQ(h.count(0), 1u);  // <=1
  EXPECT_EQ(h.count(1), 1u);  // 2
  EXPECT_EQ(h.count(2), 2u);  // 3..4
  EXPECT_EQ(h.count(3), 2u);  // 5..8
  EXPECT_EQ(h.count(4), 1u);  // >8 overflow
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, WeightedAdds) {
  Histogram h({10});
  h.add(5, 3);
  h.add(11, 7);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.count(1), 7u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.3);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.7);
}

TEST(Histogram, FractionAtLeast) {
  Histogram h({1, 2});
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(3);
  EXPECT_DOUBLE_EQ(h.fractionAtLeast(0), 1.0);
  EXPECT_DOUBLE_EQ(h.fractionAtLeast(1), 0.75);
  EXPECT_DOUBLE_EQ(h.fractionAtLeast(2), 0.5);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h({1});
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.fractionAtLeast(0), 0.0);
}

TEST(Histogram, ClearResets) {
  Histogram h({1});
  h.add(0);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.count(0), 0u);
}

TEST(StatSet, SetAddGet) {
  StatSet s;
  EXPECT_FALSE(s.has("x"));
  EXPECT_DOUBLE_EQ(s.get("x"), 0.0);
  s.set("x", 2.5);
  s.add("x", 1.5);
  EXPECT_TRUE(s.has("x"));
  EXPECT_DOUBLE_EQ(s.get("x"), 4.0);
}

TEST(StatSet, MergeWithPrefix) {
  StatSet a, b;
  b.set("hits", 10);
  b.set("misses", 2);
  a.merge(b, "l1.");
  EXPECT_DOUBLE_EQ(a.get("l1.hits"), 10.0);
  EXPECT_DOUBLE_EQ(a.get("l1.misses"), 2.0);
}

TEST(StatSet, TableRendersAllEntries) {
  StatSet s;
  s.set("alpha", 1);
  s.set("beta", 2);
  const std::string t = s.toTable();
  EXPECT_NE(t.find("alpha"), std::string::npos);
  EXPECT_NE(t.find("beta"), std::string::npos);
}

}  // namespace
}  // namespace malec
