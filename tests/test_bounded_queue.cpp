#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <string>

namespace malec {
namespace {

TEST(BoundedQueue, StartsEmpty) {
  BoundedQueue<int> q(3);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.full());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_EQ(q.freeSlots(), 3u);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, TryPushRejectsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.tryPush(1));
  EXPECT_TRUE(q.tryPush(2));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.tryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, IndexedAccessAndErase) {
  BoundedQueue<std::string> q(4);
  q.push("a");
  q.push("b");
  q.push("c");
  EXPECT_EQ(q.at(1), "b");
  q.erase(1);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.at(0), "a");
  EXPECT_EQ(q.at(1), "c");
}

TEST(BoundedQueue, FrontAccess) {
  BoundedQueue<int> q(2);
  q.push(42);
  EXPECT_EQ(q.front(), 42);
  q.front() = 7;
  EXPECT_EQ(q.pop(), 7);
}

TEST(BoundedQueue, ClearEmpties) {
  BoundedQueue<int> q(2);
  q.push(1);
  q.push(2);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.tryPush(3));
}

TEST(BoundedQueue, IterationInOrder) {
  BoundedQueue<int> q(5);
  for (int i = 0; i < 5; ++i) q.push(i * 10);
  int expect = 0;
  for (int v : q) {
    EXPECT_EQ(v, expect);
    expect += 10;
  }
}

TEST(BoundedQueueDeath, PushOverflowAborts) {
  BoundedQueue<int> q(1);
  q.push(1);
  EXPECT_DEATH(q.push(2), "overflow");
}

TEST(BoundedQueueDeath, PopEmptyAborts) {
  BoundedQueue<int> q(1);
  EXPECT_DEATH(q.pop(), "MALEC_CHECK");
}

}  // namespace
}  // namespace malec
